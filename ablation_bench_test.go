package repro_test

// Ablation benchmarks for the design choices DESIGN.md §7 calls out:
//
//	BenchmarkAblationILPvsHeuristic – exact augmentation ILP (eqs. 1-6)
//	    vs the greedy engine: added-channel counts and runtime.
//	BenchmarkAblationPSOvsRandom    – the paper's guided two-level PSO vs
//	    best-of-N random sharing draws on the same architecture.
//	BenchmarkAblationLeakage        – extends the fault campaign with the
//	    leakage defects the paper mentions but does not evaluate; the cut
//	    vectors must cover them at no extra cost.

import (
	"math"
	"testing"

	"repro/dft"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/testgen"
)

// BenchmarkAblationILPvsHeuristic compares the two augmentation engines on
// the IVD chip. The ILP is provably minimal in added channels; the greedy
// engine trades a few extra channels for three orders of magnitude in
// speed (it runs inside the PSO loop).
func BenchmarkAblationILPvsHeuristic(b *testing.B) {
	b.Run("heuristic", func(b *testing.B) {
		var added int
		for i := 0; i < b.N; i++ {
			aug, err := testgen.AugmentHeuristic(chip.IVD(), testgen.Options{})
			if err != nil {
				b.Fatal(err)
			}
			added = len(aug.AddedEdges)
		}
		b.ReportMetric(float64(added), "added-channels")
	})
	b.Run("ilp", func(b *testing.B) {
		var added int
		for i := 0; i < b.N; i++ {
			aug, err := testgen.AugmentILP(chip.IVD(), testgen.Options{})
			if err != nil {
				b.Fatal(err)
			}
			added = len(aug.AddedEdges)
		}
		b.ReportMetric(float64(added), "added-channels")
	})
}

// BenchmarkAblationPSOvsRandom compares the guided two-level PSO flow
// against drawing random sharing schemes on the unbiased architecture —
// the search-strategy ablation. Reported metrics: best execution time
// found by each strategy (lower is better; 0 means the strategy found no
// valid scheme at all).
func BenchmarkAblationPSOvsRandom(b *testing.B) {
	const samples = 40
	b.Run("pso", func(b *testing.B) {
		var exec int
		for i := 0; i < b.N; i++ {
			res, err := dft.Run(dft.ChipIVD(), dft.AssayCPA(), benchOpts(20))
			if err != nil {
				b.Fatal(err)
			}
			exec = res.ExecPSO
		}
		b.ReportMetric(float64(exec), "best-exec-s")
	})
	b.Run("random", func(b *testing.B) {
		var best int
		for i := 0; i < b.N; i++ {
			best = bestRandomSharing(b, samples)
		}
		b.ReportMetric(float64(best), "best-exec-s")
	})
}

// bestRandomSharing draws `samples` partner assignments uniformly (via a
// simple deterministic LCG) and returns the best valid execution time
// (or 0 when none validates).
func bestRandomSharing(b *testing.B, samples int) int {
	c := chip.IVD()
	a := dft.AssayCPA()
	aug, err := testgen.AugmentHeuristic(c, testgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cuts, err := testgen.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if err != nil {
		b.Fatal(err)
	}
	paths := aug.PathVectors()
	nOrig := aug.Chip.NumOriginalValves()
	nDFT := aug.Chip.NumDFTValves()
	best := math.MaxInt
	state := uint64(benchSeed)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for s := 0; s < samples; s++ {
		partners := make([]int, 0, nDFT)
		used := map[int]bool{}
		for len(partners) < nDFT {
			p := next(nOrig)
			if !used[p] {
				used[p] = true
				partners = append(partners, p)
			}
		}
		ctrl, err := chip.SharedControl(aug.Chip, partners)
		if err != nil {
			continue
		}
		if _, _, full := testgen.RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts); !full {
			continue
		}
		if et, ok := sched.ExecutionTime(aug.Chip, ctrl, a, sched.Params{}); ok && et < best {
			best = et
		}
	}
	if best == math.MaxInt {
		return 0
	}
	return best
}

// BenchmarkAblationWash compares assay execution with the contamination
// wash model ([11]) off (the paper's setting) and on: PID's dilution chain
// reuses channels constantly and pays the most.
func BenchmarkAblationWash(b *testing.B) {
	for _, wash := range []int{0, 10} {
		name := "off"
		if wash > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var exec int
			for i := 0; i < b.N; i++ {
				sch, err := sched.Run(chip.IVD(), nil, dft.AssayPID(), sched.Params{WashTimePerEdge: wash})
				if err != nil {
					b.Fatal(err)
				}
				exec = sch.ExecutionTime
			}
			b.ReportMetric(float64(exec), "exec-s")
		})
	}
}

// BenchmarkAblationLeakage runs the full fault campaign including leakage
// defects (3 faults per valve instead of 2). Coverage must remain 100 %:
// in the pressure abstraction a leaking membrane behaves like a valve that
// cannot close, so the stuck-at-1 cuts already catch it.
func BenchmarkAblationLeakage(b *testing.B) {
	for _, name := range []string{"IVD_chip", "RA30_chip", "mRNA_chip"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				c, _ := dft.ChipByName(name)
				aug, err := dft.Augment(c, false)
				if err != nil {
					b.Fatal(err)
				}
				cuts, err := dft.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
				if err != nil {
					b.Fatal(err)
				}
				sim, err := dft.NewSimulator(aug.Chip, nil)
				if err != nil {
					b.Fatal(err)
				}
				faults := fault.AllFaultsOfKinds(aug.Chip, fault.StuckAt0, fault.StuckAt1, fault.Leakage)
				cov := sim.EvaluateCoverage(append(aug.PathVectors(), cuts...), faults)
				if !cov.Full() {
					b.Fatalf("%s: leakage campaign not fully covered: %v", name, cov)
				}
				ratio = cov.Ratio()
			}
			b.ReportMetric(ratio*100, "coverage-%")
		})
	}
}
