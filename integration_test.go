package repro_test

// Integration tests: the complete pipeline through the public API plus the
// extension subsystems, end to end.

import (
	"bytes"
	"testing"

	"repro/dft"
	"repro/internal/fault"
	"repro/internal/loader"
	"repro/internal/pressure"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/sched"
)

// TestEndToEndPipeline runs flow -> report -> render -> control synthesis
// -> quantitative pressure check on one benchmark, asserting the pieces
// agree with each other.
func TestEndToEndPipeline(t *testing.T) {
	res, err := dft.Run(dft.ChipRA30(), dft.AssayIVD(), benchOpts(10))
	if err != nil {
		t.Fatal(err)
	}

	// Report round-trips and validates.
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	doc, err := report.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Execution.DFTPSO != res.ExecPSO {
		t.Fatal("report execution mismatch")
	}

	// Rendering shows the DFT channels.
	pic := render.Chip(res.Aug.Chip)
	if len(pic) == 0 {
		t.Fatal("empty rendering")
	}

	// Control layer synthesizes; sharing needs no more ports than the
	// original valve count (plus any partial-sharing own lines).
	layer, err := dft.SynthesizeControl(res.Aug.Chip, res.Control, dft.ControlParams{})
	if err != nil {
		t.Fatal(err)
	}
	if s := layer.Stats(); s.UnroutedLines == 0 && s.Ports != res.Control.NumLines() {
		t.Fatalf("control ports %d != lines %d", s.Ports, res.Control.NumLines())
	}

	// Quantitative pressure agrees with every path vector: the meter reads
	// flow on a good chip and loses it under a stuck-at-0 fault on the
	// path. The warm sparse solver chain must agree with the dense
	// baseline on every state along the way.
	src := res.Aug.Chip.Ports[res.Aug.Source].Node
	mtr := res.Aug.Chip.Ports[res.Aug.Meter].Node
	eng, err := pressure.NewEngine(res.Aug.Chip, src, mtr, pressure.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	solver := eng.NewSolver()
	crossCheck := func(cond []float64) pressure.Result {
		t.Helper()
		sparse, err := solver.Solve(cond)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := pressure.SolveBaseline(res.Aug.Chip, cond, src, mtr)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.MeterFlow - dense.MeterFlow; d > 1e-9 || d < -1e-9 {
			t.Fatalf("engine flow %g != baseline %g", sparse.MeterFlow, dense.MeterFlow)
		}
		if sparse.Reads(pressure.Params{}) != dense.Reads(pressure.Params{}) {
			t.Fatal("engine and baseline disagree on the meter decision")
		}
		return sparse
	}
	for _, vec := range res.PathVectors {
		intended := make([]bool, res.Aug.Chip.NumValves())
		for _, v := range vec.Valves {
			intended[v] = true
		}
		open := res.Control.ExpandOpen(intended)
		good := crossCheck(pressure.Conductances(res.Aug.Chip, open, pressure.Params{}, nil))
		if !good.Reads(pressure.Params{}) {
			t.Fatalf("quantitative model sees no flow for path vector %v", vec.Valves)
		}
		bad := crossCheck(pressure.Conductances(res.Aug.Chip, open, pressure.Params{},
			map[int]pressure.Defect{vec.Valves[0]: pressure.StuckClosed}))
		if bad.MeterFlow >= good.MeterFlow {
			t.Fatal("stuck-at-0 on the path did not reduce flow")
		}
	}
	if st := eng.Stats(); st.Solves != int64(2*len(res.PathVectors)) {
		t.Fatalf("engine solve count %d, want %d", st.Solves, 2*len(res.PathVectors))
	}
}

// TestLoadedDesignFullFlow feeds a JSON design through the whole flow.
func TestLoadedDesignFullFlow(t *testing.T) {
	chipJSON := `{
	  "name": "itest_chip", "grid_w": 7, "grid_h": 5,
	  "devices": [
	    {"name": "M1", "kind": "mixer", "x": 1, "y": 1},
	    {"name": "M2", "kind": "mixer", "x": 4, "y": 1},
	    {"name": "D1", "kind": "detector", "x": 4, "y": 3}
	  ],
	  "ports": [
	    {"name": "P0", "x": 0, "y": 1},
	    {"name": "P1", "x": 6, "y": 1},
	    {"name": "P2", "x": 4, "y": 4}
	  ],
	  "channels": [
	    [[0,1],[1,1]],
	    [[1,1],[2,1],[3,1],[4,1]],
	    [[4,1],[5,1],[6,1]],
	    [[4,1],[4,2],[4,3]],
	    [[4,3],[4,4]],
	    [[1,1],[1,2],[2,2],[3,2],[4,2]]
	  ]
	}`
	assayJSON := `{
	  "name": "itest_assay",
	  "ops": [
	    {"name": "mixA", "kind": "mix", "duration": 30},
	    {"name": "mixB", "kind": "mix", "duration": 30},
	    {"name": "combine", "kind": "mix", "duration": 40},
	    {"name": "read", "kind": "detect", "duration": 20}
	  ],
	  "deps": [[0,2],[1,2],[2,3]]
	}`
	c, err := loader.ReadChip(bytes.NewReader([]byte(chipJSON)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := loader.ReadAssay(bytes.NewReader([]byte(assayJSON)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dft.Run(c, a, benchOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	sim := fault.MustSimulator(res.Aug.Chip, res.Control)
	cov := sim.EvaluateCoverage(append(res.PathVectors, res.CutVectors...), fault.AllFaults(res.Aug.Chip))
	if !cov.Full() {
		t.Fatalf("coverage %v", cov)
	}
	sch, err := sched.Run(res.Aug.Chip, res.Control, a, sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateSchedule(res.Aug.Chip, a, sch); err != nil {
		t.Fatal(err)
	}
}

// TestWashedFlowStillTestable: enabling the wash model changes schedules
// but must not affect testability artifacts.
func TestWashedFlowStillTestable(t *testing.T) {
	opts := benchOpts(6)
	opts.Sched = dft.SchedParams{WashTimePerEdge: 5}
	res, err := dft.Run(dft.ChipIVD(), dft.AssayPID(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := dft.NewSimulator(res.Aug.Chip, res.Control)
	if err != nil {
		t.Fatal(err)
	}
	cov := sim.EvaluateCoverage(append(res.PathVectors, res.CutVectors...), dft.AllFaults(res.Aug.Chip))
	if !cov.Full() {
		t.Fatalf("coverage %v", cov)
	}
}
