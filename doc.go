// Package repro is a Go reproduction of "Design-for-Testability for
// Continuous-Flow Microfluidic Biochips" (Liu, Li, Ho, Chakrabarty,
// Schlichtmann — DAC 2018).
//
// The public API lives in package repro/dft; the substrates (connection
// grid, chip netlists, LP/ILP solvers, fault simulator, test generation,
// scheduler, PSO) live under internal/. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package repro
