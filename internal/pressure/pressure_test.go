package pressure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/grid"
)

func allOpen(c *chip.Chip) []bool {
	open := make([]bool, c.NumValves())
	for i := range open {
		open[i] = true
	}
	return open
}

func TestAllOpenFlowPositive(t *testing.T) {
	c := chip.IVD()
	src, mtr := c.Ports[0].Node, c.Ports[2].Node
	cond := Conductances(c, allOpen(c), Params{}, nil)
	res, err := Solve(c, cond, src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeterFlow <= 0 {
		t.Fatalf("meter flow %v, want positive", res.MeterFlow)
	}
	if !res.Reads(Params{}) {
		t.Fatal("meter must register")
	}
	if res.NodePressure[src] != 1 || res.NodePressure[mtr] != 0 {
		t.Fatalf("terminal pressures %v %v", res.NodePressure[src], res.NodePressure[mtr])
	}
}

func TestAllClosedNoFlow(t *testing.T) {
	c := chip.IVD()
	cond := Conductances(c, make([]bool, c.NumValves()), Params{}, nil)
	res, err := Solve(c, cond, c.Ports[0].Node, c.Ports[2].Node)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeterFlow != 0 {
		t.Fatalf("flow through closed chip: %v", res.MeterFlow)
	}
	if res.Reads(Params{}) {
		t.Fatal("meter must stay silent")
	}
}

func TestPressuresWithinBounds(t *testing.T) {
	c := chip.RA30()
	cond := Conductances(c, allOpen(c), Params{}, nil)
	res, err := Solve(c, cond, c.Ports[0].Node, c.Ports[1].Node)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.NodePressure {
		if p < -1e-9 || p > 1+1e-9 {
			t.Fatalf("node %d pressure %v outside [0,1]", i, p)
		}
	}
}

func TestSeriesResistanceHalvesFlow(t *testing.T) {
	// Line chip: P0 -v0- M -v1- (…) -..- P1. Doubling the path length at
	// unit conductance must reduce flow (series resistance adds).
	b := chip.NewBuilder("line2", 7, 3)
	b.AddDevice(chip.Mixer, "M", xy(1, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(6, 1))
	b.AddChannel(xy(0, 1), xy(1, 1), xy(2, 1), xy(3, 1), xy(4, 1), xy(5, 1), xy(6, 1))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cond := Conductances(c, allOpen(c), Params{}, nil)
	res, err := Solve(c, cond, c.Ports[0].Node, c.Ports[1].Node)
	if err != nil {
		t.Fatal(err)
	}
	// 6 unit conductances in series: flow = 1/6.
	if math.Abs(res.MeterFlow-1.0/6) > 1e-9 {
		t.Fatalf("series flow %v, want 1/6", res.MeterFlow)
	}
}

func TestStuckClosedBlocksFlow(t *testing.T) {
	c := chip.IVD()
	open := allOpen(c)
	src, mtr := c.Ports[0].Node, c.Ports[1].Node
	base, _ := Solve(c, Conductances(c, open, Params{}, nil), src, mtr)
	// Stick every valve closed one at a time; flow never increases.
	for v := 0; v < c.NumValves(); v++ {
		res, err := Solve(c, Conductances(c, open, Params{}, map[int]Defect{v: StuckClosed}), src, mtr)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeterFlow > base.MeterFlow+1e-9 {
			t.Fatalf("closing valve %d increased flow", v)
		}
	}
}

func TestLeakyValveGivesWeakSignal(t *testing.T) {
	// All valves closed except a leaky one on the source port's edge: the
	// meter sees a small flow only if the rest of a path is open.
	c := chip.IVD()
	src, mtr := c.Ports[0].Node, c.Ports[1].Node
	// Open a path except one closed-but-leaky valve: use all-open minus
	// valve 0 (P0's edge) marked leaky and intended closed.
	open := allOpen(c)
	open[0] = false
	healthy, err := Solve(c, Conductances(c, open, Params{}, nil), src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.MeterFlow != 0 {
		t.Fatalf("healthy closed valve leaks: %v", healthy.MeterFlow)
	}
	leaky, err := Solve(c, Conductances(c, open, Params{}, map[int]Defect{0: Leaky}), src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.MeterFlow <= 0 {
		t.Fatal("leaky valve must pass some flow")
	}
	full, err := Solve(c, Conductances(c, allOpen(c), Params{}, nil), src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.MeterFlow >= full.MeterFlow {
		t.Fatalf("leak flow %v not weaker than open flow %v", leaky.MeterFlow, full.MeterFlow)
	}
	// A coarse meter misses the leak; a sensitive one catches it.
	if leaky.Reads(Params{MeterThreshold: full.MeterFlow}) {
		t.Fatal("coarse meter should miss the leak")
	}
	if !leaky.Reads(Params{MeterThreshold: leaky.MeterFlow / 2}) {
		t.Fatal("sensitive meter should catch the leak")
	}
}

// Cross-model property: quantitative flow > 0 exactly when the boolean
// model reports reachability, for random valve states on all benchmarks.
func TestQuantMatchesBooleanProperty(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		src, mtr := c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 40; trial++ {
			open := make([]bool, c.NumValves())
			for i := range open {
				open[i] = rng.Intn(2) == 0
			}
			res, err := Solve(c, Conductances(c, open, Params{}, nil), src, mtr)
			if err != nil {
				t.Fatal(err)
			}
			boolReach := c.PressureReachable(src, mtr, open)
			quantReach := res.MeterFlow > 1e-9
			if boolReach != quantReach {
				t.Fatalf("%s trial %d: boolean %v vs quantitative %v (flow %v)",
					c.Name, trial, boolReach, quantReach, res.MeterFlow)
			}
		}
	}
}

func TestBadInputs(t *testing.T) {
	c := chip.IVD()
	cond := Conductances(c, allOpen(c), Params{}, nil)
	for name, solve := range solvers() {
		if _, err := solve(c, make([]float64, 3), 0, 1); err == nil {
			t.Fatalf("%s: wrong conductance length must fail", name)
		}
		if _, err := solve(c, cond, 5, 5); err == nil {
			t.Fatalf("%s: coincident terminals must fail", name)
		}
	}
}

// solvers enumerates both entry points so legacy regressions cover the
// engine path and the preserved dense baseline alike.
func solvers() map[string]func(*chip.Chip, []float64, int, int) (Result, error) {
	return map[string]func(*chip.Chip, []float64, int, int) (Result, error){
		"engine":   Solve,
		"baseline": SolveBaseline,
	}
}

func xy(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }

// Regression for the gauss singularity check: the pivot tolerance is
// scaled by the matrix magnitude, so physically tiny conductances (a
// uniformly low-permeability chip) must solve exactly like unit ones —
// same pressure field, flow scaled linearly — instead of failing as
// "singular".
func TestGaussTinyConductancesSolve(t *testing.T) {
	c := chip.IVD()
	src, mtr := c.Ports[0].Node, c.Ports[2].Node
	unit := Conductances(c, allOpen(c), Params{}, nil)
	for name, solve := range solvers() {
		ref, err := solve(c, unit, src, mtr)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []float64{1e-13, 1e-9, 1e9} {
			cond := make([]float64, len(unit))
			for i, g := range unit {
				cond[i] = g * scale
			}
			res, err := solve(c, cond, src, mtr)
			if err != nil {
				t.Fatalf("%s scale %g: %v", name, scale, err)
			}
			// Pressures depend only on conductance ratios.
			for n, p := range ref.NodePressure {
				q := res.NodePressure[n]
				if math.IsNaN(p) != math.IsNaN(q) {
					t.Fatalf("%s scale %g node %d: NaN mismatch (%v vs %v)", name, scale, n, p, q)
				}
				if !math.IsNaN(p) && math.Abs(p-q) > 1e-6 {
					t.Fatalf("%s scale %g node %d: pressure %v, want %v", name, scale, n, q, p)
				}
			}
			// Flow scales linearly with conductance.
			if rel := math.Abs(res.MeterFlow-ref.MeterFlow*scale) / (ref.MeterFlow * scale); rel > 1e-6 {
				t.Fatalf("%s scale %g: meter flow %v, want %v", name, scale, res.MeterFlow, ref.MeterFlow*scale)
			}
		}
	}
}
