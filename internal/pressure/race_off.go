//go:build !race

package pressure

const raceEnabled = false
