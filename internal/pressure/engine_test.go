package pressure

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/chip"
	"repro/internal/loader"
)

// testChips returns every bundled benchmark chip plus the example design
// from designs/, so the dense-vs-sparse properties cover every chip that
// ships with the repo.
func testChips(t *testing.T) []*chip.Chip {
	t.Helper()
	chips := chip.Benchmarks()
	f, err := os.Open("../../designs/example_chip.json")
	if err != nil {
		t.Fatalf("open example design: %v", err)
	}
	defer f.Close()
	c, err := loader.ReadChip(f)
	if err != nil {
		t.Fatalf("load example design: %v", err)
	}
	return append(chips, c)
}

// randomCond draws a conductance vector with each valve open (1), closed
// (0) or leaky-closed (0.05).
func randomCond(rng *rand.Rand, nv int) []float64 {
	cond := make([]float64, nv)
	for i := range cond {
		switch rng.Intn(3) {
		case 0:
			cond[i] = 1
		case 1:
			cond[i] = 0.05
		}
	}
	return cond
}

// flipSome returns a copy of cond with 1..3 random valves moved to a
// different conductance level — the campaign-shaped workload the warm
// path is built for.
func flipSome(rng *rand.Rand, cond []float64) []float64 {
	out := append([]float64(nil), cond...)
	levels := [3]float64{0, 0.05, 1}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		v := rng.Intn(len(out))
		lv := levels[rng.Intn(3)]
		for lv == out[v] {
			lv = levels[rng.Intn(3)]
		}
		out[v] = lv
	}
	return out
}

func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Abs(got.MeterFlow-want.MeterFlow) > 1e-9 {
		t.Fatalf("%s: meter flow %v, baseline %v", label, got.MeterFlow, want.MeterFlow)
	}
	for n := range want.NodePressure {
		if math.Abs(got.NodePressure[n]-want.NodePressure[n]) > 1e-9 {
			t.Fatalf("%s: node %d pressure %v, baseline %v",
				label, n, got.NodePressure[n], want.NodePressure[n])
		}
	}
	if got.Reads(Params{}) != want.Reads(Params{}) {
		t.Fatalf("%s: threshold decision diverged (flow %v vs %v)",
			label, got.MeterFlow, want.MeterFlow)
	}
}

// TestEngineMatchesBaselineProperty drives warm-chained and cold sparse
// solves along randomized flip sequences on every bundled chip and checks
// both against the dense baseline to 1e-9, pressures included.
func TestEngineMatchesBaselineProperty(t *testing.T) {
	for _, c := range testChips(t) {
		rigs := [][2]int{
			{c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node},
			{c.Ports[0].Node, c.Ports[1].Node},
		}
		for _, rig := range rigs {
			src, mtr := rig[0], rig[1]
			warmEng, err := NewEngine(c, src, mtr, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			coldEng, err := NewEngine(c, src, mtr, EngineOptions{RankBudget: -1})
			if err != nil {
				t.Fatal(err)
			}
			warm := warmEng.NewSolver()
			rng := rand.New(rand.NewSource(int64(17 + src + mtr)))
			cond := randomCond(rng, c.NumValves())
			for step := 0; step < 60; step++ {
				want, err := SolveBaseline(c, cond, src, mtr)
				if err != nil {
					t.Fatalf("%s baseline: %v", c.Name, err)
				}
				got, err := warm.Solve(cond)
				if err != nil {
					t.Fatalf("%s warm: %v", c.Name, err)
				}
				sameResult(t, c.Name+"/warm", got, want)
				got, err = coldEng.Solve(cond)
				if err != nil {
					t.Fatalf("%s cold: %v", c.Name, err)
				}
				sameResult(t, c.Name+"/cold", got, want)
				cond = flipSome(rng, cond)
			}
			if st := warmEng.Stats(); st.Warm == 0 {
				t.Fatalf("%s: flip chain never took the warm path: %+v", c.Name, st)
			} else if st.Solves != st.Warm+st.Cold {
				t.Fatalf("%s: stats don't add up: %+v", c.Name, st)
			}
			if st := coldEng.Stats(); st.Warm != 0 {
				t.Fatalf("%s: rank budget -1 must disable warm solves: %+v", c.Name, st)
			}
		}
	}
}

// TestEvaluateAllMatchesBaseline checks the batch API against the dense
// baseline for several worker counts: flows to 1e-9 and meter-threshold
// decisions bit-equal.
func TestEvaluateAllMatchesBaseline(t *testing.T) {
	p := Params{}.WithDefaults()
	for _, c := range testChips(t) {
		src, mtr := c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node
		rng := rand.New(rand.NewSource(23))
		vectors := make([][]float64, 0, 64)
		cond := randomCond(rng, c.NumValves())
		for i := 0; i < 64; i++ {
			vectors = append(vectors, cond)
			cond = flipSome(rng, cond)
		}
		want := make([]float64, len(vectors))
		for i, v := range vectors {
			res, err := SolveBaseline(c, v, src, mtr)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res.MeterFlow
		}
		for _, workers := range []int{1, 2, 3, 8} {
			eng, err := NewEngine(c, src, mtr, EngineOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			flows, err := eng.EvaluateAll(context.Background(), vectors)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.Name, workers, err)
			}
			for i := range flows {
				if math.Abs(flows[i]-want[i]) > 1e-9 {
					t.Fatalf("%s workers=%d vector %d: flow %v, baseline %v",
						c.Name, workers, i, flows[i], want[i])
				}
				if (flows[i] > p.MeterThreshold) != (want[i] > p.MeterThreshold) {
					t.Fatalf("%s workers=%d vector %d: decision diverged", c.Name, workers, i)
				}
			}
		}
	}
}

func TestEvaluateAllCancel(t *testing.T) {
	c := chip.IVD()
	eng, err := NewEngine(c, c.Ports[0].Node, c.Ports[2].Node, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vectors := [][]float64{Conductances(c, allOpen(c), Params{}, nil)}
	if _, err := eng.EvaluateAll(ctx, vectors); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v", err)
	}
}

func TestEvaluateAllBadVector(t *testing.T) {
	c := chip.IVD()
	eng, err := NewEngine(c, c.Ports[0].Node, c.Ports[2].Node, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	good := Conductances(c, allOpen(c), Params{}, nil)
	vectors := [][]float64{good, good, {1, 2, 3}, good}
	if _, err := eng.EvaluateAll(context.Background(), vectors); err == nil {
		t.Fatal("short vector must fail the batch")
	}
}

// TestRankBudgetFallback forces more simultaneous flips than the budget
// allows and checks the solver refactorizes (and still agrees with the
// baseline).
func TestRankBudgetFallback(t *testing.T) {
	c := chip.RA30()
	src, mtr := c.Ports[0].Node, c.Ports[1].Node
	eng, err := NewEngine(c, src, mtr, EngineOptions{RankBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSolver()
	cond := Conductances(c, allOpen(c), Params{}, nil)
	if _, err := s.Solve(cond); err != nil {
		t.Fatal(err)
	}
	over := append([]float64(nil), cond...)
	over[0], over[1], over[2], over[3] = 0.05, 0.05, 0.05, 0.05
	got, err := s.Solve(over)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveBaseline(c, over, src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "over-budget", got, want)
	st := eng.Stats()
	if st.FallbackRank == 0 || st.Cold != 2 || st.Warm != 0 {
		t.Fatalf("expected a rank-budget fallback: %+v", st)
	}
}

// TestReachChangeFallback isolates an interior node (closing both its
// valves) so the identity-row mask changes; the solver must refactorize
// rather than warm-update, and match the baseline.
func TestReachChangeFallback(t *testing.T) {
	b := chip.NewBuilder("line", 7, 3)
	b.AddDevice(chip.Mixer, "M", xy(3, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(6, 1))
	b.AddChannel(xy(0, 1), xy(1, 1), xy(2, 1), xy(3, 1), xy(4, 1), xy(5, 1), xy(6, 1))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	src, mtr := c.Ports[0].Node, c.Ports[1].Node
	eng, err := NewEngine(c, src, mtr, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSolver()
	cond := Conductances(c, allOpen(c), Params{}, nil)
	if _, err := s.Solve(cond); err != nil {
		t.Fatal(err)
	}
	cut := append([]float64(nil), cond...)
	cut[1], cut[2] = 0, 0 // node between valves 1 and 2 floats
	got, err := s.Solve(cut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveBaseline(c, cut, src, mtr)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "floating-island", got, want)
	if st := eng.Stats(); st.FallbackReach == 0 {
		t.Fatalf("expected a reachability fallback: %+v", st)
	}
}

// TestIsolatedMeter: a meter whose every incident valve is closed is the
// case that would make a naive whole-grid Laplacian singular. Both
// solvers must instead report zero flow without error — the baseline by
// excluding unreachable nodes, the engine via identity rows.
func TestIsolatedMeter(t *testing.T) {
	c := chip.IVD()
	src, mtr := c.Ports[0].Node, c.Ports[2].Node
	cond := Conductances(c, allOpen(c), Params{}, nil)
	g := c.Grid.Graph()
	for _, e := range g.IncidentEdges(mtr) {
		if v, ok := c.ValveOnEdge(e); ok {
			cond[v] = 0
		}
	}
	want, err := SolveBaseline(c, cond, src, mtr)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	got, err := Solve(c, cond, src, mtr)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if want.MeterFlow != 0 || got.MeterFlow != 0 {
		t.Fatalf("isolated meter flows: baseline %v, engine %v", want.MeterFlow, got.MeterFlow)
	}
	sameResult(t, "isolated-meter", got, want)
}

// TestErrSingularTyped locks in the typed sentinel on both elimination
// kernels: errors.Is must see ErrSingular through the dense path's wrap,
// and the sparse numeric kernel must flag the offending pivot column.
func TestErrSingularTyped(t *testing.T) {
	a := [][]float64{{1, 1, 0}, {1, 1, 0}}
	if _, err := gauss(a, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("dense gauss on singular system returned %v", err)
	}

	// 2x2 all-ones matrix in the engine's upper-triangular CSC layout.
	Ap := []int32{0, 1, 3}
	Ai := []int32{0, 0, 1}
	Ax := []float64{1, 1, 1}
	parent, Lp := ldlSymbolic(2, Ap, Ai)
	Li := make([]int32, Lp[2])
	Lx := make([]float64, Lp[2])
	D := make([]float64, 2)
	y := make([]float64, 2)
	ws := [3][]int32{make([]int32, 2), make([]int32, 2), make([]int32, 2)}
	if k := ldlNumeric(2, Ap, Ai, Ax, parent, Lp, Li, Lx, D, y, ws[0], ws[1], ws[2], 1e-12); k != 1 {
		t.Fatalf("ldlNumeric on singular system returned column %d, want 1", k)
	}
}

// TestEngineBadInputs mirrors TestBadInputs for the engine constructor.
func TestEngineBadInputs(t *testing.T) {
	c := chip.IVD()
	if _, err := NewEngine(c, 5, 5, EngineOptions{}); err == nil {
		t.Fatal("coincident terminals must fail")
	}
	if _, err := NewEngine(c, -1, 0, EngineOptions{}); err == nil {
		t.Fatal("out-of-range source must fail")
	}
	if _, err := NewEngine(c, 0, c.Grid.NumNodes(), EngineOptions{}); err == nil {
		t.Fatal("out-of-range meter must fail")
	}
	eng, err := NewEngine(c, c.Ports[0].Node, c.Ports[2].Node, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solve(make([]float64, 3)); err == nil {
		t.Fatal("wrong conductance length must fail")
	}
}

// TestZeroLeakExpressible is the Params zero-value regression: before
// HasLeakConductance, {LeakConductance: 0} silently became the 0.05
// default, so a genuinely airtight-but-flagged valve was inexpressible.
func TestZeroLeakExpressible(t *testing.T) {
	p := Params{LeakConductance: 0, HasLeakConductance: true}.WithDefaults()
	if p.LeakConductance != 0 {
		t.Fatalf("explicit zero leak became %v", p.LeakConductance)
	}
	if d := (Params{}).WithDefaults(); d.LeakConductance != 0.05 {
		t.Fatalf("default leak is %v, want 0.05", d.LeakConductance)
	}
	if d := (Params{LeakConductance: 0.2}).WithDefaults(); d.LeakConductance != 0.2 {
		t.Fatalf("explicit leak overridden to %v", d.LeakConductance)
	}

	c := chip.IVD()
	open := allOpen(c)
	open[0] = false
	zero := Conductances(c, open, Params{HasLeakConductance: true}, map[int]Defect{0: Leaky})
	if zero[0] != 0 {
		t.Fatalf("airtight leaky valve conducts %v", zero[0])
	}
	dflt := Conductances(c, open, Params{}, map[int]Defect{0: Leaky})
	if dflt[0] != 0.05 {
		t.Fatalf("default leaky valve conducts %v, want 0.05", dflt[0])
	}
}

// warmAllocBudget is the allocation ceiling per warm re-solve. The whole
// point of the solver-owned scratch is zero steady-state allocation, so
// the budget is exactly 0.
const warmAllocBudget = 0.0

func TestWarmSolveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget asserted in non-race CI")
	}
	c := chip.MRNA()
	src, mtr := c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node
	eng, err := NewEngine(c, src, mtr, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSolver()
	base := Conductances(c, allOpen(c), Params{}, nil)
	leaky := append([]float64(nil), base...)
	leaky[0] = 0.05
	if _, err := s.Solve(base); err != nil { // factorize once
		t.Fatal(err)
	}
	cur := leaky
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Solve(cur); err != nil {
			t.Fatal(err)
		}
		if &cur[0] == &leaky[0] {
			cur = base
		} else {
			cur = leaky
		}
	})
	st := eng.Stats()
	if st.Warm == 0 || st.Cold != 1 {
		t.Fatalf("alternation was not warm: %+v", st)
	}
	t.Logf("allocs/warm-solve=%v (budget %v)", allocs, warmAllocBudget)
	if allocs > warmAllocBudget {
		t.Fatalf("allocation regression: %v allocs per warm solve, budget %v", allocs, warmAllocBudget)
	}
}

func BenchmarkSolveDense(b *testing.B) {
	c := chip.MRNA()
	src, mtr := c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node
	cond := Conductances(c, allOpen(c), Params{}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBaseline(c, cond, src, mtr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWarm(b *testing.B) {
	c := chip.MRNA()
	src, mtr := c.Ports[0].Node, c.Ports[len(c.Ports)-1].Node
	eng, err := NewEngine(c, src, mtr, EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s := eng.NewSolver()
	base := Conductances(c, allOpen(c), Params{}, nil)
	leaky := append([]float64(nil), base...)
	leaky[0] = 0.05
	if _, err := s.Solve(base); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := base
		if i&1 == 0 {
			v = leaky
		}
		if _, err := s.Solve(v); err != nil {
			b.Fatal(err)
		}
	}
}
