package pressure

// ldl.go implements the sparse LDLᵀ (Cholesky-form) factorization the
// engine caches: the classic up-looking algorithm over an elimination
// tree (Davis's LDL). The pattern of A is fixed per rig, so the symbolic
// phase — elimination tree and column counts — runs once (csr.go calls
// ldlSymbolic at rig construction); the numeric phase refills Lx/D in
// place with zero allocations, which is what makes cold refactorizations
// cheap and the warm Sherman–Morrison–Woodbury path allocation-free.
//
// The assembled matrix is symmetric positive definite (grounded Laplacian
// over the reachable unknowns, identity rows elsewhere), so no pivoting
// is needed and every D entry is positive in exact arithmetic; the
// numeric phase still guards each pivot against a magnitude-relative
// tolerance and reports the offending column for ErrSingular wrapping.

// ldlSymbolic computes the elimination tree and the column pointers of L
// for the m x m upper-triangular pattern (Ap, Ai). Column j of the input
// holds entries with row <= j, diagonal included.
func ldlSymbolic(m int, Ap, Ai []int32) (parent, Lp []int32) {
	parent = make([]int32, m)
	Lp = make([]int32, m+1)
	lnz := make([]int32, m)
	flag := make([]int32, m)
	for k := 0; k < m; k++ {
		parent[k] = -1
		flag[k] = int32(k)
		for p := Ap[k]; p < Ap[k+1]; p++ {
			i := Ai[p]
			for i < int32(k) && flag[i] != int32(k) {
				if parent[i] == -1 {
					parent[i] = int32(k)
				}
				lnz[i]++
				flag[i] = int32(k)
				i = parent[i]
			}
		}
	}
	for k := 0; k < m; k++ {
		Lp[k+1] = Lp[k] + lnz[k]
	}
	return parent, Lp
}

// ldlNumeric factorizes A = L D Lᵀ for the fixed pattern, writing Li, Lx
// and D in place using the caller's workspaces (y, pattern, flag, lnz,
// each of length m). It returns the column of the first pivot whose
// magnitude is <= tol, or -1 on success. No allocation.
func ldlNumeric(m int, Ap, Ai []int32, Ax []float64, parent, Lp []int32,
	Li []int32, Lx, D []float64, y []float64, pattern, flag, lnz []int32, tol float64) int {
	for k := 0; k < m; k++ {
		y[k] = 0
		top := int32(m)
		flag[k] = int32(k)
		lnz[k] = 0
		for p := Ap[k]; p < Ap[k+1]; p++ {
			i := Ai[p]
			if i > int32(k) {
				continue
			}
			y[i] += Ax[p]
			l := int32(0)
			for ; flag[i] != int32(k); i = parent[i] {
				pattern[l] = i
				l++
				flag[i] = int32(k)
			}
			for l > 0 {
				l--
				top--
				pattern[top] = pattern[l]
			}
		}
		D[k] = y[k]
		y[k] = 0
		for ; top < int32(m); top++ {
			i := pattern[top]
			yi := y[i]
			y[i] = 0
			p2 := Lp[i] + lnz[i]
			for p := Lp[i]; p < p2; p++ {
				y[Li[p]] -= Lx[p] * yi
			}
			lki := yi / D[i]
			D[k] -= lki * yi
			Li[p2] = int32(k)
			Lx[p2] = lki
			lnz[i]++
		}
		if D[k] <= tol && D[k] >= -tol {
			return k
		}
	}
	return -1
}

// ldlSolve solves L D Lᵀ x = b in place (x holds b on entry, the solution
// on exit). No allocation.
func ldlSolve(m int, Lp, Li []int32, Lx, D []float64, x []float64) {
	for j := 0; j < m; j++ {
		xj := x[j]
		if xj != 0 {
			for p := Lp[j]; p < Lp[j+1]; p++ {
				x[Li[p]] -= Lx[p] * xj
			}
		}
	}
	for j := 0; j < m; j++ {
		x[j] /= D[j]
	}
	for j := m - 1; j >= 0; j-- {
		xj := x[j]
		for p := Lp[j]; p < Lp[j+1]; p++ {
			xj -= Lx[p] * x[Li[p]]
		}
		x[j] = xj
	}
}
