//go:build race

package pressure

// raceEnabled reports whether the race detector instrumented this build;
// allocation-budget tests skip under it (instrumentation allocates).
const raceEnabled = true
