package pressure

// csr.go builds the immutable sparse structure of one test rig — a
// (chip, source node, meter node) triple. The grounded-Laplacian pattern
// over the rig's unknowns is fixed by the chip topology alone (every valve
// edge is structurally present; closed valves merely contribute zero
// values), so the fill-reducing elimination order and the symbolic LDLᵀ
// analysis run exactly once per rig and are shared read-only by every
// Solver.
//
// Unknowns are the grid nodes incident to at least one valve edge, minus
// the two Dirichlet terminals. Nodes a given valve state leaves without a
// conducting connection to either terminal (floating islands) keep their
// structural slots but are assembled as identity rows, which reproduces
// the dense baseline's semantics exactly: their pressure is 0 and they
// carry no flow, and the remaining block is the baseline's grounded
// Laplacian over the reachable set, which is symmetric positive definite.

import (
	"fmt"

	"repro/internal/chip"
)

// Endpoint sentinels in unknown space.
const (
	endSource = -1
	endMeter  = -2
)

// adjEntry is one incident valve edge of an unknown: the valve and the
// unknown index of the far endpoint.
type adjEntry struct {
	valve int32
	to    int32
}

// system is the immutable per-rig structure shared by all Solvers.
type system struct {
	c      *chip.Chip
	source int
	meter  int

	m        int     // number of unknowns
	unknowns []int32 // unknown index -> grid node
	ends     [][2]int32
	// ends[v] are valve v's endpoints in unknown space (endSource /
	// endMeter for terminals).

	incident [][]int32    // incident[u]: valves on edges touching unknown u
	adj      [][]adjEntry // adj[u]: unknown-to-unknown valve edges
	srcAdj   []adjEntry   // valves touching the source: (valve, unknown)
	mtrAdj   []adjEntry   // valves touching the meter: (valve, unknown)
	direct   []int32      // valves whose edge joins source and meter

	perm  []int32 // elimination order: perm[k] = unknown eliminated k-th
	iperm []int32 // iperm[u] = position of unknown u in the order

	// Upper-triangular CSC pattern of the permuted matrix: column j holds
	// slots Ap[j]..Ap[j+1), each with row Ai[p] <= j. slotValve[p] is the
	// off-diagonal slot's valve, or -1 for the diagonal slot.
	Ap        []int32
	Ai        []int32
	slotValve []int32

	// Symbolic LDLᵀ of the pattern: elimination tree and column pointers.
	parent []int32
	Lp     []int32
	lnz    int // total nonzeros in L
}

// newSystem analyzes the rig: unknown indexing, adjacency, minimum-degree
// ordering and symbolic factorization.
func newSystem(c *chip.Chip, sourceNode, meterNode int) (*system, error) {
	n := c.Grid.NumNodes()
	if sourceNode < 0 || sourceNode >= n || meterNode < 0 || meterNode >= n {
		return nil, fmt.Errorf("pressure: terminal node outside grid (source %d, meter %d, %d nodes)", sourceNode, meterNode, n)
	}
	if sourceNode == meterNode {
		return nil, fmt.Errorf("pressure: source and meter coincide")
	}
	s := &system{c: c, source: sourceNode, meter: meterNode}

	// Unknown indexing over channel nodes (nodes with >=1 valve edge).
	onChannel := make([]bool, n)
	for _, v := range c.Valves() {
		x, y := c.Grid.Graph().Endpoints(v.Edge)
		onChannel[x], onChannel[y] = true, true
	}
	unkOf := make([]int32, n)
	for i := range unkOf {
		unkOf[i] = -3
	}
	unkOf[sourceNode], unkOf[meterNode] = endSource, endMeter
	for node := 0; node < n; node++ {
		if onChannel[node] && node != sourceNode && node != meterNode {
			unkOf[node] = int32(len(s.unknowns))
			s.unknowns = append(s.unknowns, int32(node))
		}
	}
	s.m = len(s.unknowns)

	// Valve endpoints and adjacency.
	s.ends = make([][2]int32, c.NumValves())
	s.incident = make([][]int32, s.m)
	s.adj = make([][]adjEntry, s.m)
	for _, valve := range c.Valves() {
		x, y := c.Grid.Graph().Endpoints(valve.Edge)
		a, b := unkOf[x], unkOf[y]
		v := int32(valve.ID)
		s.ends[valve.ID] = [2]int32{a, b}
		for _, pair := range [2][2]int32{{a, b}, {b, a}} {
			from, to := pair[0], pair[1]
			switch from {
			case endSource:
				if to >= 0 {
					s.srcAdj = append(s.srcAdj, adjEntry{valve: v, to: to})
				}
			case endMeter:
				if to >= 0 {
					s.mtrAdj = append(s.mtrAdj, adjEntry{valve: v, to: to})
				}
			default:
				s.incident[from] = append(s.incident[from], v)
				if to >= 0 {
					s.adj[from] = append(s.adj[from], adjEntry{valve: v, to: to})
				}
			}
		}
		if (a == endSource && b == endMeter) || (a == endMeter && b == endSource) {
			s.direct = append(s.direct, v)
		}
	}

	s.perm = minDegreeOrder(s.m, s.adj)
	s.iperm = make([]int32, s.m)
	for k, u := range s.perm {
		s.iperm[u] = int32(k)
	}
	s.buildPattern()
	s.parent, s.Lp = ldlSymbolic(s.m, s.Ap, s.Ai)
	s.lnz = int(s.Lp[s.m])
	return s, nil
}

// buildPattern assembles the permuted upper-triangular CSC pattern: one
// slot per unknown-to-unknown valve edge plus one diagonal slot per
// column, rows sorted ascending within each column.
func (s *system) buildPattern() {
	type slot struct {
		row   int32
		valve int32
	}
	cols := make([][]slot, s.m)
	for j := int32(0); j < int32(s.m); j++ {
		cols[j] = append(cols[j], slot{row: j, valve: -1})
	}
	for u := 0; u < s.m; u++ {
		pu := s.iperm[u]
		for _, e := range s.adj[u] {
			pv := s.iperm[e.to]
			if pu < pv { // visit each undirected edge once
				cols[pv] = append(cols[pv], slot{row: pu, valve: e.valve})
			}
		}
	}
	s.Ap = make([]int32, s.m+1)
	for j := 0; j < s.m; j++ {
		// Insertion sort by row; columns are tiny (lattice degree <= 4).
		col := cols[j]
		for i := 1; i < len(col); i++ {
			for k := i; k > 0 && col[k-1].row > col[k].row; k-- {
				col[k-1], col[k] = col[k], col[k-1]
			}
		}
		s.Ap[j+1] = s.Ap[j] + int32(len(col))
		for _, sl := range col {
			s.Ai = append(s.Ai, sl.row)
			s.slotValve = append(s.slotValve, sl.valve)
		}
	}
}

// minDegreeOrder computes a fill-reducing elimination order by plain
// minimum degree on the elimination graph (dense connectivity matrix —
// rigs have at most a few hundred unknowns, and this runs once per rig).
// Ties break to the lowest unknown index, keeping the order — and with it
// every downstream factorization — deterministic.
func minDegreeOrder(m int, adj [][]adjEntry) []int32 {
	perm := make([]int32, 0, m)
	if m == 0 {
		return perm
	}
	conn := make([]bool, m*m)
	deg := make([]int, m)
	for u := range adj {
		for _, e := range adj[u] {
			v := int(e.to)
			if u != v && !conn[u*m+v] {
				conn[u*m+v], conn[v*m+u] = true, true
				deg[u]++
				deg[v]++
			}
		}
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	nbrs := make([]int, 0, m)
	for len(perm) < m {
		best := -1
		for u := 0; u < m; u++ {
			if alive[u] && (best < 0 || deg[u] < deg[best]) {
				best = u
			}
		}
		perm = append(perm, int32(best))
		alive[best] = false
		nbrs = nbrs[:0]
		for v := 0; v < m; v++ {
			if alive[v] && conn[best*m+v] {
				nbrs = append(nbrs, v)
				conn[best*m+v], conn[v*m+best] = false, false
				deg[v]--
			}
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				if !conn[a*m+b] {
					conn[a*m+b], conn[b*m+a] = true, true
					deg[a]++
					deg[b]++
				}
			}
		}
	}
	return perm
}
