package pressure

// engine.go is the production pressure solver: a per-rig Engine that
// caches the sparse LDLᵀ factorization of the grounded Laplacian and
// serves repeated solves over a pool of Solvers.
//
// The campaign-defining observation is that consecutive test vectors
// differ in only a few valve states (a leakage sweep flips one valve per
// solve; neighbouring cut vectors share most of their closed set). A
// valve flip is a symmetric rank-1 change of the Laplacian —
// Δg·(e_x−e_y)(e_x−e_y)ᵀ with terminal coordinates folded away — so a
// Solver keeps the factorization of the last refactored state and
// answers nearby states with a Sherman–Morrison–Woodbury correction:
//
//	(A + U C Uᵀ)⁻¹ b = z − W (C⁻¹ + Uᵀ W)⁻¹ (Uᵀ z),
//	z = A⁻¹ b,  W = A⁻¹ U,
//
// at the cost of k+1 triangular-solve pairs plus a k×k dense solve,
// where k (the number of flipped valves vs the factored state) is capped
// by the rank budget. Past the budget — or when a flip changes which
// nodes are reachable from a terminal, which changes the identity-row
// mask and would invalidate the update — the Solver falls back to a full
// refactorization. Both paths reuse preallocated scratch, so steady-state
// solves allocate nothing.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chip"
)

// DefaultRankBudget caps how many valve-state flips (relative to the
// cached factorization) a warm update absorbs before the solver
// refactorizes.
const DefaultRankBudget = 8

// EngineOptions tunes an Engine.
type EngineOptions struct {
	// RankBudget is the maximum SMW update rank (0 = DefaultRankBudget;
	// negative disables warm updates entirely, forcing a refactorization
	// per state change — the "sparse-cold" reference of cmd/bench).
	RankBudget int
	// Workers sizes the EvaluateAll worker pool (0 = runtime.GOMAXPROCS).
	Workers int
}

// EngineStats is a snapshot of an Engine's solve counters.
type EngineStats struct {
	// Solves is the total number of Solver.Solve calls.
	Solves int64
	// Cold counts full numeric refactorizations (including every solver's
	// first solve).
	Cold int64
	// Warm counts solves answered from the cached factorization via a
	// low-rank update (rank 0 = right-hand-side-only re-solve).
	Warm int64
	// RankUpdates is the total rank across all warm solves.
	RankUpdates int64
	// FallbackRank counts cold solves forced by the rank budget,
	// FallbackReach those forced by a terminal-reachability change, and
	// FallbackNumeric those forced by an ill-conditioned update system.
	FallbackRank    int64
	FallbackReach   int64
	FallbackNumeric int64
}

// Add returns the per-field sum of two snapshots.
func (s EngineStats) Add(o EngineStats) EngineStats {
	s.Solves += o.Solves
	s.Cold += o.Cold
	s.Warm += o.Warm
	s.RankUpdates += o.RankUpdates
	s.FallbackRank += o.FallbackRank
	s.FallbackReach += o.FallbackReach
	s.FallbackNumeric += o.FallbackNumeric
	return s
}

type engineCounters struct {
	solves, cold, warm, rankUpdates              atomic.Int64
	fallbackRank, fallbackReach, fallbackNumeric atomic.Int64
}

// Engine solves the node-pressure system of one test rig — a (chip,
// source node, meter node) triple — with a cached sparse factorization.
// An Engine is safe for concurrent use; Solvers drawn from it are not.
type Engine struct {
	sys        *system
	rankBudget int
	workers    int
	pool       sync.Pool // *Solver
	counters   engineCounters
}

// NewEngine analyzes the rig (unknown indexing, fill-reducing elimination
// order, symbolic factorization) once; every Solver shares the analysis.
func NewEngine(c *chip.Chip, sourceNode, meterNode int, opts EngineOptions) (*Engine, error) {
	sys, err := newSystem(c, sourceNode, meterNode)
	if err != nil {
		return nil, err
	}
	budget := opts.RankBudget
	switch {
	case budget == 0:
		budget = DefaultRankBudget
	case budget < 0:
		budget = 0 // warm updates disabled
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sys: sys, rankBudget: budget, workers: workers}, nil
}

// Chip returns the chip the engine solves.
func (e *Engine) Chip() *chip.Chip { return e.sys.c }

// SourceNode and MeterNode return the rig's terminal grid nodes.
func (e *Engine) SourceNode() int { return e.sys.source }

// MeterNode returns the rig's meter grid node.
func (e *Engine) MeterNode() int { return e.sys.meter }

// Unknowns returns the size of the solved system (channel nodes minus the
// two terminals).
func (e *Engine) Unknowns() int { return e.sys.m }

// Stats returns a snapshot of the engine's solve counters, aggregated
// over all its solvers.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Solves:          e.counters.solves.Load(),
		Cold:            e.counters.cold.Load(),
		Warm:            e.counters.warm.Load(),
		RankUpdates:     e.counters.rankUpdates.Load(),
		FallbackRank:    e.counters.fallbackRank.Load(),
		FallbackReach:   e.counters.fallbackReach.Load(),
		FallbackNumeric: e.counters.fallbackNumeric.Load(),
	}
}

// Solve answers one conductance state. It draws a pooled Solver (reusing
// whatever factorization it cached) and copies the pressures out, so the
// Result remains valid indefinitely; hot loops that can tolerate the
// aliasing contract should use a dedicated Solver instead.
func (e *Engine) Solve(conductance []float64) (Result, error) {
	s := e.getSolver()
	res, err := s.Solve(conductance)
	if err == nil {
		res.NodePressure = append([]float64(nil), res.NodePressure...)
	}
	e.putSolver(s)
	return res, err
}

// EvaluateAll solves every conductance vector and returns the meter flow
// of each, fanning contiguous blocks out over the worker pool so each
// worker's solver warm-updates along its block. Flow decisions against
// any Params threshold match the dense baseline for every worker count;
// the flows themselves may differ across worker counts in the last few
// ulps (the warm/cold split depends on the block boundaries).
func (e *Engine) EvaluateAll(ctx context.Context, vectors [][]float64) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	flows := make([]float64, len(vectors))
	workers := e.workers
	if workers > len(vectors) {
		workers = len(vectors)
	}
	if workers <= 1 {
		s := e.getSolver()
		defer e.putSolver(s)
		for i, cond := range vectors {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := s.Solve(cond)
			if err != nil {
				return nil, fmt.Errorf("pressure: vector %d: %w", i, err)
			}
			flows[i] = res.MeterFlow
		}
		return flows, nil
	}

	chunk := (len(vectors) + workers - 1) / workers
	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstAt = len(vectors)
		first   error
	)
	fail := func(i int, err error) {
		stop.Store(true)
		mu.Lock()
		if i < firstAt {
			firstAt, first = i, err
		}
		mu.Unlock()
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(vectors) {
			hi = len(vectors)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := e.getSolver()
			defer e.putSolver(s)
			for i := lo; i < hi; i++ {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				res, err := s.Solve(vectors[i])
				if err != nil {
					fail(i, fmt.Errorf("pressure: vector %d: %w", i, err))
					return
				}
				flows[i] = res.MeterFlow
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if first != nil {
		return nil, first
	}
	return flows, nil
}

// NewSolver returns a fresh dedicated solver for hot loops. Most callers
// should let Engine.Solve / EvaluateAll manage pooled solvers instead.
func (e *Engine) NewSolver() *Solver { return newSolver(e) }

func (e *Engine) getSolver() *Solver {
	if s, ok := e.pool.Get().(*Solver); ok {
		return s
	}
	return newSolver(e)
}

func (e *Engine) putSolver(s *Solver) { e.pool.Put(s) }

// Solver answers pressure solves for one rig, caching the numeric
// factorization of the last refactored conductance state and applying
// Sherman–Morrison–Woodbury updates for nearby states. A Solver must not
// be shared between goroutines; steady-state Solve calls allocate
// nothing.
type Solver struct {
	eng *Engine
	sys *system

	factored      bool
	factoredCond  []float64 // conductance state of the cached factorization
	factoredReach []bool    // terminal reachability of that state

	// Numeric factorization (permuted space).
	Ax []float64
	Li []int32
	Lx []float64
	D  []float64

	// Factorization workspaces.
	y       []float64
	pattern []int32
	flag    []int32
	lnzWork []int32

	// Reachability scratch (epoch-marked BFS over unknowns).
	seen  []int32
	epoch int32
	queue []int32

	// Per-solve scratch.
	x       []float64 // permuted solution
	b       []float64
	changed []int32   // valves flipped vs the factored state
	upA     []int32   // update endpoint A (permuted index, -1 = dropped)
	upB     []int32   // update endpoint B
	delta   []float64 // conductance deltas
	w       []float64 // m x rank update solves, column-major
	small   []float64 // rank x rank capacitance system
	rhs2    []float64
	press   []float64 // node pressures (aliased into Results)
}

func newSolver(e *Engine) *Solver {
	sys := e.sys
	m := sys.m
	budget := e.rankBudget
	return &Solver{
		eng:           e,
		sys:           sys,
		factoredCond:  make([]float64, sys.c.NumValves()),
		factoredReach: make([]bool, m),
		Ax:            make([]float64, len(sys.Ai)),
		Li:            make([]int32, sys.lnz),
		Lx:            make([]float64, sys.lnz),
		D:             make([]float64, m),
		y:             make([]float64, m),
		pattern:       make([]int32, m),
		flag:          make([]int32, m),
		lnzWork:       make([]int32, m),
		seen:          make([]int32, m),
		queue:         make([]int32, 0, m),
		x:             make([]float64, m),
		b:             make([]float64, m),
		changed:       make([]int32, 0, budget+1),
		upA:           make([]int32, 0, budget),
		upB:           make([]int32, 0, budget),
		delta:         make([]float64, 0, budget),
		w:             make([]float64, m*budget),
		small:         make([]float64, budget*budget),
		rhs2:          make([]float64, budget),
		press:         make([]float64, sys.c.Grid.NumNodes()),
	}
}

// Solve computes the steady-state pressures and meter flow for one
// conductance state (indexed by valve ID; 0 = fully closed).
//
// The returned Result's NodePressure aliases solver-owned scratch: it is
// valid until the next Solve call on this solver. Copy it for retention;
// Engine.Solve does so automatically.
func (s *Solver) Solve(conductance []float64) (Result, error) {
	sys := s.sys
	if len(conductance) != sys.c.NumValves() {
		return Result{}, fmt.Errorf("pressure: %d conductances for %d valves", len(conductance), sys.c.NumValves())
	}
	s.eng.counters.solves.Add(1)
	s.computeReach(conductance)

	warm := false
	rank := 0
	if s.factored && s.eng.rankBudget > 0 {
		if k, ok := s.diffWithinBudget(conductance); !ok {
			s.eng.counters.fallbackRank.Add(1)
		} else if !s.reachMatchesFactored() {
			s.eng.counters.fallbackReach.Add(1)
		} else {
			warm, rank = true, k
		}
	}
	if warm {
		if err := s.solveWarm(conductance, rank); err == nil {
			s.eng.counters.warm.Add(1)
			s.eng.counters.rankUpdates.Add(int64(rank))
			return s.result(conductance), nil
		} else if err != errIllConditionedUpdate {
			return Result{}, err
		}
		// Ill-conditioned capacitance system: refactorize instead.
		s.eng.counters.fallbackNumeric.Add(1)
	}
	if err := s.solveCold(conductance); err != nil {
		return Result{}, err
	}
	s.eng.counters.cold.Add(1)
	return s.result(conductance), nil
}

// computeReach BFS-marks (epoch) every unknown reachable from a terminal
// over conducting edges.
func (s *Solver) computeReach(cond []float64) {
	sys := s.sys
	s.epoch++
	epoch := s.epoch
	q := s.queue[:0]
	for _, roots := range [2][]adjEntry{sys.srcAdj, sys.mtrAdj} {
		for _, e := range roots {
			if cond[e.valve] > 0 && s.seen[e.to] != epoch {
				s.seen[e.to] = epoch
				q = append(q, e.to)
			}
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, e := range sys.adj[u] {
			if cond[e.valve] > 0 && s.seen[e.to] != epoch {
				s.seen[e.to] = epoch
				q = append(q, e.to)
			}
		}
	}
	s.queue = q
}

func (s *Solver) reachable(u int32) bool { return s.seen[u] == s.epoch }

func (s *Solver) reachMatchesFactored() bool {
	for u := range s.factoredReach {
		if s.factoredReach[u] != (s.seen[u] == s.epoch) {
			return false
		}
	}
	return true
}

// diffWithinBudget collects the valves whose conductance differs from the
// factored state into s.changed, reporting (rank, false) the moment the
// budget is exceeded.
func (s *Solver) diffWithinBudget(cond []float64) (int, bool) {
	budget := s.eng.rankBudget
	s.changed = s.changed[:0]
	for v := range cond {
		if cond[v] != s.factoredCond[v] {
			if len(s.changed) == budget {
				return budget + 1, false
			}
			s.changed = append(s.changed, int32(v))
		}
	}
	return len(s.changed), true
}

// assemble fills Ax with the grounded-Laplacian values of the state:
// identity rows for unknowns unreachable from both terminals, conductance
// sums and negated couplings elsewhere. Returns the largest magnitude for
// the pivot tolerance.
func (s *Solver) assemble(cond []float64) (maxAbs float64) {
	sys := s.sys
	for j := 0; j < sys.m; j++ {
		u := sys.perm[j]
		uReach := s.reachable(u)
		for p := sys.Ap[j]; p < sys.Ap[j+1]; p++ {
			v := sys.slotValve[p]
			var val float64
			if v < 0 { // diagonal
				if !uReach {
					val = 1
				} else {
					for _, iv := range sys.incident[u] {
						val += cond[iv]
					}
				}
			} else if uReach { // coupling: both ends reachable or value 0
				val = -cond[v]
			}
			s.Ax[p] = val
			if val < 0 {
				val = -val
			}
			if val > maxAbs {
				maxAbs = val
			}
		}
	}
	return maxAbs
}

// buildRHS fills the permuted right-hand side from the source-incident
// conductances of the state.
func (s *Solver) buildRHS(cond []float64) {
	sys := s.sys
	for i := range s.b {
		s.b[i] = 0
	}
	for _, e := range sys.srcAdj {
		s.b[sys.iperm[e.to]] += cond[e.valve]
	}
}

func (s *Solver) solveCold(cond []float64) error {
	sys := s.sys
	maxAbs := s.assemble(cond)
	tol := 1e-12 * maxAbs
	if maxAbs == 0 {
		tol = 1e-12
	}
	if k := ldlNumeric(sys.m, sys.Ap, sys.Ai, s.Ax, sys.parent, sys.Lp,
		s.Li, s.Lx, s.D, s.y, s.pattern, s.flag, s.lnzWork, tol); k >= 0 {
		s.factored = false
		return fmt.Errorf("%w (LDL pivot, column %d)", ErrSingular, k)
	}
	s.buildRHS(cond)
	copy(s.x, s.b)
	ldlSolve(sys.m, sys.Lp, s.Li, s.Lx, s.D, s.x)
	s.factored = true
	copy(s.factoredCond, cond)
	for u := range s.factoredReach {
		s.factoredReach[u] = s.seen[u] == s.epoch
	}
	return nil
}

// errIllConditionedUpdate is the internal signal that the SMW capacitance
// system was too ill-conditioned to trust; the caller refactorizes.
var errIllConditionedUpdate = fmt.Errorf("pressure: ill-conditioned low-rank update")

// solveWarm answers the state from the cached factorization plus a
// rank-k Sherman–Morrison–Woodbury correction built from s.changed.
func (s *Solver) solveWarm(cond []float64, _ int) error {
	sys := s.sys
	m := sys.m

	// Update vectors: one signed incidence vector per flipped valve, with
	// terminal coordinates folded away and island-internal flips (both
	// endpoints unreachable — identity rows, outside the system) skipped.
	s.upA, s.upB, s.delta = s.upA[:0], s.upB[:0], s.delta[:0]
	for _, v := range s.changed {
		ends := sys.ends[v]
		pa, pb := int32(-1), int32(-1)
		if ends[0] >= 0 && s.factoredReach[ends[0]] {
			pa = sys.iperm[ends[0]]
		}
		if ends[1] >= 0 && s.factoredReach[ends[1]] {
			pb = sys.iperm[ends[1]]
		}
		if pa < 0 && pb < 0 {
			continue // source-meter direct edge or island-internal flip
		}
		s.upA = append(s.upA, pa)
		s.upB = append(s.upB, pb)
		s.delta = append(s.delta, cond[v]-s.factoredCond[v])
	}
	k := len(s.delta)

	// z = A⁻¹ b for the NEW right-hand side.
	s.buildRHS(cond)
	copy(s.x, s.b)
	ldlSolve(m, sys.Lp, s.Li, s.Lx, s.D, s.x)
	if k == 0 {
		return nil
	}

	// W column j = A⁻¹ u_j (u_j has at most two nonzeros).
	for j := 0; j < k; j++ {
		col := s.w[j*m : (j+1)*m]
		for i := range col {
			col[i] = 0
		}
		if s.upA[j] >= 0 {
			col[s.upA[j]] = 1
		}
		if s.upB[j] >= 0 {
			col[s.upB[j]] -= 1
		}
		ldlSolve(m, sys.Lp, s.Li, s.Lx, s.D, col)
	}

	// Capacitance system S = C⁻¹ + Uᵀ W, right-hand side Uᵀ z.
	dot := func(j int, vec []float64) float64 {
		d := 0.0
		if s.upA[j] >= 0 {
			d += vec[s.upA[j]]
		}
		if s.upB[j] >= 0 {
			d -= vec[s.upB[j]]
		}
		return d
	}
	small := s.small[:k*k]
	for i := 0; i < k; i++ {
		wi := s.w[i*m : (i+1)*m]
		for j := 0; j < k; j++ {
			small[j*k+i] = dot(j, wi) // S[j][i] = u_jᵀ w_i
		}
		small[i*k+i] += 1 / s.delta[i]
		s.rhs2[i] = dot(i, s.x)
	}
	if !solveDense(small, s.rhs2[:k], k) {
		return errIllConditionedUpdate
	}

	// x ← z − W y.
	for j := 0; j < k; j++ {
		yj := s.rhs2[j]
		if yj == 0 {
			continue
		}
		col := s.w[j*m : (j+1)*m]
		for i := 0; i < m; i++ {
			s.x[i] -= col[i] * yj
		}
	}
	return nil
}

// solveDense solves the k x k system a·x = rhs in place by Gaussian
// elimination with partial pivoting (a is row-major, overwritten; rhs
// holds the solution on exit). Returns false when a pivot is numerically
// zero relative to the matrix magnitude. No allocation.
func solveDense(a []float64, rhs []float64, k int) bool {
	maxAbs := 0.0
	for _, v := range a {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	tol := 1e-13 * maxAbs
	if maxAbs == 0 {
		return false
	}
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r*k+col]) > math.Abs(a[piv*k+col]) {
				piv = r
			}
		}
		if math.Abs(a[piv*k+col]) <= tol {
			return false
		}
		if piv != col {
			for c := 0; c < k; c++ {
				a[col*k+c], a[piv*k+c] = a[piv*k+c], a[col*k+c]
			}
			rhs[col], rhs[piv] = rhs[piv], rhs[col]
		}
		inv := 1 / a[col*k+col]
		for r := col + 1; r < k; r++ {
			f := a[r*k+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				a[r*k+c] -= f * a[col*k+c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	for r := k - 1; r >= 0; r-- {
		v := rhs[r]
		for c := r + 1; c < k; c++ {
			v -= a[r*k+c] * rhs[c]
		}
		rhs[r] = v / a[r*k+r]
	}
	return true
}

// result packages the current permuted solution as a Result. The node
// pressures alias solver scratch.
func (s *Solver) result(cond []float64) Result {
	sys := s.sys
	for i := range s.press {
		s.press[i] = 0
	}
	s.press[sys.source] = 1
	for u, node := range sys.unknowns {
		if s.reachable(int32(u)) {
			s.press[node] = s.x[sys.iperm[u]]
		}
	}
	flow := 0.0
	for _, e := range sys.mtrAdj {
		if g := cond[e.valve]; g > 0 {
			flow += g * s.x[sys.iperm[e.to]]
		}
	}
	for _, v := range sys.direct {
		flow += cond[v] // source held at pressure 1
	}
	return Result{NodePressure: s.press, MeterFlow: flow}
}
