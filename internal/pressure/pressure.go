// Package pressure is a quantitative refinement of the boolean
// pressure-reachability model: it treats the open channel network as a
// resistive network (each open segment has unit pneumatic conductance),
// solves the node-pressure equations with the source held at 1 and the
// meter vented at 0, and reports the air flow arriving at the meter.
//
// The boolean model in package fault answers "does pressure arrive?";
// this package answers "how much", which matters for two things the
// boolean model cannot express:
//
//   - measurement thresholds: a real meter needs a minimum flow to
//     register, so long detour paths give weaker signals;
//   - membrane leakage: a leaky closed valve conducts a little (its
//     conductance is LeakConductance rather than 0), producing a small
//     but nonzero meter flow that only a sufficiently sensitive meter
//     detects — quantifying the paper's remark that leakage faults "can
//     be tested similarly".
//
// Two solvers implement the model. SolveBaseline is the original dense
// Gaussian elimination over the grounded Laplacian, kept verbatim for
// cross-checks. The production path is the sparse Engine (engine.go): CSR
// assembly, a cached LDLᵀ factorization under a fill-reducing elimination
// order, Sherman–Morrison–Woodbury low-rank updates between test vectors
// that differ in only a few valve states, and a batched parallel
// EvaluateAll for whole leakage campaigns.
package pressure

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chip"
)

// ErrSingular reports that the grounded node-pressure system has no
// unique solution. It should not occur for systems assembled by this
// package — unknowns are restricted to nodes reachable from a terminal
// over conducting edges, which grounds every Laplacian block — so seeing
// it means the matrix was degenerate beyond that protection (test with
// errors.Is).
var ErrSingular = errors.New("pressure: singular node-pressure system")

// Params tunes the physical model.
type Params struct {
	// OpenConductance is the pneumatic conductance of an open segment
	// (default 1).
	OpenConductance float64
	// LeakConductance is the residual conductance of a CLOSED valve with a
	// leakage defect (default 0.05 unless HasLeakConductance is set).
	// Healthy closed valves conduct 0.
	LeakConductance float64
	// HasLeakConductance marks LeakConductance as explicitly chosen, making
	// a genuinely zero leak expressible: {LeakConductance: 0} alone would
	// silently become the 0.05 default (the Options.IncumbentObj ambiguity,
	// fixed the same way).
	HasLeakConductance bool
	// MeterThreshold is the minimum inflow the meter registers as
	// "pressure present" (default 1e-6).
	MeterThreshold float64
}

// WithDefaults returns the params with unset fields replaced by the
// documented defaults. A zero LeakConductance is preserved when
// HasLeakConductance is set.
func (p Params) WithDefaults() Params {
	if p.OpenConductance == 0 {
		p.OpenConductance = 1
	}
	if p.LeakConductance == 0 && !p.HasLeakConductance {
		p.LeakConductance = 0.05
		p.HasLeakConductance = true
	}
	if p.MeterThreshold == 0 {
		p.MeterThreshold = 1e-6
	}
	return p
}

// Result of a pressure solve.
type Result struct {
	// NodePressure maps every grid node to its pressure in [0,1] (0 for
	// nodes with no conducting connection to either terminal).
	NodePressure []float64
	// MeterFlow is the air flow arriving at the meter node.
	MeterFlow float64
}

// Reads reports whether the meter registers the flow under the params.
func (r Result) Reads(p Params) bool {
	return r.MeterFlow > p.WithDefaults().MeterThreshold
}

// Solve computes the steady-state pressures for a chip whose valves have
// the given conductances (indexed by valve ID; 0 = fully closed). The
// source node is held at pressure 1, the meter node at 0.
//
// Solve builds a one-shot sparse Engine per call; campaign loops that
// solve many states of the same rig should construct the Engine once and
// reuse it (or its Solvers) so the factorization and the symbolic
// analysis are cached.
func Solve(c *chip.Chip, conductance []float64, sourceNode, meterNode int) (Result, error) {
	eng, err := NewEngine(c, sourceNode, meterNode, EngineOptions{})
	if err != nil {
		return Result{}, err
	}
	return eng.Solve(conductance)
}

// SolveBaseline is the seed's dense Gaussian-elimination solver, kept
// verbatim for cross-checks against the sparse Engine. It computes the
// steady-state pressures for a chip whose valves have the given
// conductances (indexed by valve ID; 0 = fully closed), with the source
// node held at 1 and the meter node at 0.
func SolveBaseline(c *chip.Chip, conductance []float64, sourceNode, meterNode int) (Result, error) {
	if len(conductance) != c.NumValves() {
		return Result{}, fmt.Errorf("pressure: %d conductances for %d valves", len(conductance), c.NumValves())
	}
	if sourceNode == meterNode {
		return Result{}, fmt.Errorf("pressure: source and meter coincide")
	}
	n := c.Grid.NumNodes()
	g := c.Grid.Graph()

	// Floating islands (open sub-networks touching neither terminal) have
	// a singular Laplacian block and carry no flow; exclude them. Keep only
	// nodes reachable from a terminal over conducting edges.
	conducting := func(e int) bool {
		v, ok := c.ValveOnEdge(e)
		return ok && conductance[v] > 0
	}
	reach := make([]bool, n)
	for _, root := range [2]int{sourceNode, meterNode} {
		for node, d := range g.BFSFrom(root, conducting) {
			if d >= 0 {
				reach[node] = true
			}
		}
	}

	// Unknowns: reachable nodes except source and meter (Dirichlet
	// terminals).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	var unknowns []int
	for i := 0; i < n; i++ {
		if i != sourceNode && i != meterNode && reach[i] {
			idx[i] = len(unknowns)
			unknowns = append(unknowns, i)
		}
	}
	m := len(unknowns)
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m+1) // augmented column = RHS
	}
	condOf := func(e int) float64 {
		v, ok := c.ValveOnEdge(e)
		if !ok {
			return 0
		}
		return conductance[v]
	}
	for ui, node := range unknowns {
		diag := 0.0
		for _, e := range g.IncidentEdges(node) {
			gcond := condOf(e)
			if gcond <= 0 {
				continue
			}
			x, y := g.Endpoints(e)
			other := x
			if other == node {
				other = y
			}
			diag += gcond
			switch other {
			case sourceNode:
				a[ui][m] += gcond * 1.0
			case meterNode:
				// pressure 0: contributes nothing to RHS
			default:
				a[ui][idx[other]] -= gcond
			}
		}
		if diag == 0 {
			diag = 1 // isolated node: pressure defined as 0
		}
		a[ui][ui] += diag
	}
	sol, err := gauss(a, m)
	if err != nil {
		return Result{}, err
	}
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 0
	}
	pr[sourceNode] = 1
	for ui, node := range unknowns {
		pr[node] = sol[ui]
	}
	// Meter inflow = sum of conductance * pressure of neighbours.
	flow := 0.0
	for _, e := range g.IncidentEdges(meterNode) {
		gcond := condOf(e)
		if gcond <= 0 {
			continue
		}
		x, y := g.Endpoints(e)
		other := x
		if other == meterNode {
			other = y
		}
		flow += gcond * pr[other]
	}
	return Result{NodePressure: pr, MeterFlow: flow}, nil
}

// gauss solves the m x m system with augmented matrix a (last column RHS)
// by Gaussian elimination with partial pivoting. The singularity threshold
// is relative to the largest coefficient magnitude: an absolute cutoff
// would misclassify well-conditioned systems built from tiny conductance
// scales (e.g. nS-range) as singular.
func gauss(a [][]float64, m int) ([]float64, error) {
	maxAbs := 0.0
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			if v := math.Abs(a[r][c]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	tol := 1e-12 * maxAbs
	if maxAbs == 0 {
		tol = 1e-12 // all-zero coefficient matrix: every pivot is singular
	}
	for col := 0; col < m; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) <= tol {
			return nil, fmt.Errorf("%w (dense elimination, column %d)", ErrSingular, col)
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k <= m; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	sol := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		s := a[r][m]
		for k := r + 1; k < m; k++ {
			s -= a[r][k] * sol[k]
		}
		sol[r] = s / a[r][r]
	}
	return sol, nil
}

// Conductances builds the per-valve conductance vector for a valve state
// under the physical params, with optional defects: stuck-at-1 and leakage
// make a closed valve conduct; stuck-at-0 makes an open valve block.
func Conductances(c *chip.Chip, open []bool, p Params, defects map[int]Defect) []float64 {
	p = p.WithDefaults()
	out := make([]float64, c.NumValves())
	for v := 0; v < c.NumValves(); v++ {
		isOpen := open[v]
		switch defects[v] {
		case StuckOpen:
			isOpen = true
		case StuckClosed:
			isOpen = false
		}
		if isOpen {
			out[v] = p.OpenConductance
		} else if defects[v] == Leaky {
			out[v] = p.LeakConductance
		}
	}
	return out
}

// Defect is a physical defect for the quantitative model.
type Defect int

// Defect kinds. None is the zero value.
const (
	None Defect = iota
	StuckClosed
	StuckOpen
	Leaky
)
