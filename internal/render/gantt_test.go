package render

import (
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/sched"
)

func TestGanttBasics(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch, err := sched.Run(c, nil, g, sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(c, g, sch, 60)
	if !strings.Contains(out, "schedule:") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Every mixer that ran appears as a row.
	used := map[string]bool{}
	for _, r := range sch.Ops {
		if !r.IsPort {
			used[c.Devices[r.Device].Name] = true
		}
	}
	for name := range used {
		if !strings.Contains(out, name+" ") {
			t.Fatalf("row for %s missing:\n%s", name, out)
		}
	}
	// Lines have bounded width.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 60+12 {
			t.Fatalf("line too wide: %q", line)
		}
	}
}

func TestGanttDefaultsAndEmpty(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch, err := sched.Run(c, nil, g, sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if out := Gantt(c, g, sch, 0); !strings.Contains(out, "|") {
		t.Fatal("default width rendering broken")
	}
	empty := &sched.Schedule{}
	if out := Gantt(c, g, empty, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty schedule rendering: %q", out)
	}
}

func TestGanttMentionsStorageMoves(t *testing.T) {
	// CPA on RA30 is the storage-heavy case.
	c := chip.RA30()
	g := assay.CPA()
	sch, err := sched.Run(c, nil, g, sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(c, g, sch, 72)
	moves := 0
	for _, tr := range sch.Transports {
		if tr.ConsumerOp < 0 {
			moves++
		}
	}
	if moves > 0 && !strings.Contains(out, "storage moves") {
		t.Fatal("storage move note missing")
	}
}
