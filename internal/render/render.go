// Package render draws biochip netlists as ASCII diagrams for terminals
// and logs: devices, ports, junctions, original channels and DFT-added
// channels.
package render

import (
	"strings"

	"repro/internal/chip"
	"repro/internal/grid"
)

// Chip renders the chip's connection grid:
//
//	M,D,H,F  devices (first letter of the name)
//	P        external ports
//	+        channel junction
//	-- |     original channels (one valve per segment)
//	== :     DFT-added channels
//	.        free grid node
func Chip(c *chip.Chip) string {
	g := c.Grid
	var sb strings.Builder
	hor := func(a, b grid.Coord) string {
		e, ok := g.EdgeBetweenCoords(a, b)
		if !ok {
			return "  "
		}
		v, valved := c.ValveOnEdge(e)
		switch {
		case !valved:
			return "  "
		case c.Valve(v).DFT:
			return "=="
		default:
			return "--"
		}
	}
	ver := func(a, b grid.Coord) string {
		e, ok := g.EdgeBetweenCoords(a, b)
		if !ok {
			return " "
		}
		v, valved := c.ValveOnEdge(e)
		switch {
		case !valved:
			return " "
		case c.Valve(v).DFT:
			return ":"
		default:
			return "|"
		}
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sb.WriteString(nodeGlyph(c, grid.Coord{X: x, Y: y}))
			if x+1 < g.W {
				sb.WriteString(hor(grid.Coord{X: x, Y: y}, grid.Coord{X: x + 1, Y: y}))
			}
		}
		sb.WriteString("\n")
		if y+1 == g.H {
			break
		}
		for x := 0; x < g.W; x++ {
			sb.WriteString(ver(grid.Coord{X: x, Y: y}, grid.Coord{X: x, Y: y + 1}))
			if x+1 < g.W {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeGlyph(c *chip.Chip, coord grid.Coord) string {
	n := c.Grid.NodeAt(coord)
	if d, ok := c.DeviceAt(n); ok {
		return d.Name[:1]
	}
	if _, ok := c.PortAt(n); ok {
		return "P"
	}
	for _, e := range c.Grid.IncidentEdges(n) {
		if _, valved := c.ValveOnEdge(e); valved {
			return "+"
		}
	}
	return "."
}

// Legend returns the symbol explanation to print under a rendering.
func Legend() string {
	return "legend: M/D=devices P=ports +=junction --,|=channels ==,:=DFT channels .=free"
}
