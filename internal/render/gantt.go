package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/sched"
)

// Gantt renders a schedule as a per-resource timeline. Each row is a
// device or port; each operation occupies its time span, labelled with the
// op name (clipped to the span). Transports are summarized below the
// chart. width is the number of character columns for the time axis
// (default 72 if <= 0).
func Gantt(c *chip.Chip, g *assay.Graph, sch *sched.Schedule, width int) string {
	if width <= 0 {
		width = 72
	}
	if sch.ExecutionTime <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / float64(sch.ExecutionTime)
	col := func(t int) int {
		x := int(float64(t) * scale)
		if x >= width {
			x = width - 1
		}
		return x
	}

	type row struct {
		label string
		cells []rune
	}
	rows := map[string]*row{}
	order := []string{}
	rowFor := func(label string) *row {
		if r, ok := rows[label]; ok {
			return r
		}
		r := &row{label: label, cells: []rune(strings.Repeat(".", width))}
		rows[label] = r
		order = append(order, label)
		return r
	}
	// Pre-create device rows in chip order for a stable layout.
	for _, d := range c.Devices {
		rowFor(d.Name)
	}
	for _, p := range c.Ports {
		rowFor(p.Name)
	}

	recs := append([]sched.OpRecord(nil), sch.Ops...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	for _, r := range recs {
		label := c.Devices[r.Device].Name
		if r.IsPort {
			label = c.Ports[r.Device].Name
		}
		rw := rowFor(label)
		a, b := col(r.Start), col(r.Finish-1)
		if b < a {
			b = a
		}
		name := g.Op(r.Op).Name
		for x := a; x <= b && x < width; x++ {
			idx := x - a
			ch := '#'
			if idx < len(name) {
				ch = rune(name[idx])
			}
			rw.cells[x] = ch
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule: %d s total, %d ops, %d transports\n", sch.ExecutionTime, len(sch.Ops), len(sch.Transports))
	for _, label := range order {
		r := rows[label]
		if strings.Count(string(r.cells), ".") == width {
			continue // resource never used
		}
		fmt.Fprintf(&sb, "%-6s |%s|\n", r.label, string(r.cells))
	}
	fmt.Fprintf(&sb, "%-6s  0%s%d s\n", "", strings.Repeat(" ", width-len(fmt.Sprint(sch.ExecutionTime))-1), sch.ExecutionTime)
	moves := 0
	for _, tr := range sch.Transports {
		if tr.ConsumerOp < 0 {
			moves++
		}
	}
	if moves > 0 {
		fmt.Fprintf(&sb, "(%d of the transports are channel-storage moves)\n", moves)
	}
	return sb.String()
}
