package render

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/testgen"
)

func TestRenderBenchmarks(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		out := Chip(c)
		if !strings.Contains(out, "P") {
			t.Errorf("%s: rendering lost the ports", c.Name)
		}
		if !strings.Contains(out, "M") || !strings.Contains(out, "D") {
			t.Errorf("%s: rendering lost devices", c.Name)
		}
		if !strings.Contains(out, "--") && !strings.Contains(out, "|") {
			t.Errorf("%s: rendering lost channels", c.Name)
		}
		if strings.Contains(out, "==") || strings.Contains(out, ":") {
			t.Errorf("%s: original chip shows DFT glyphs", c.Name)
		}
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 2*c.Grid.H-1 {
			t.Errorf("%s: %d lines for height %d", c.Name, len(lines), c.Grid.H)
		}
	}
}

func TestRenderShowsDFTChannels(t *testing.T) {
	aug, err := testgen.AugmentHeuristic(chip.IVD(), testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Chip(aug.Chip)
	if !strings.Contains(out, "==") && !strings.Contains(out, ":") {
		t.Fatalf("DFT channels missing from rendering:\n%s", out)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, b := Chip(chip.RA30()), Chip(chip.RA30())
	if a != b {
		t.Fatal("rendering must be deterministic")
	}
}

func TestLegendMentionsGlyphs(t *testing.T) {
	l := Legend()
	for _, token := range []string{"devices", "ports", "DFT"} {
		if !strings.Contains(l, token) {
			t.Fatalf("legend missing %q: %s", token, l)
		}
	}
}

func TestDeviceInitials(t *testing.T) {
	out := Chip(chip.IVD())
	// IVD devices are M1..M3, D1, D2: initials M and D must appear.
	if strings.Count(out, "M") < 3 || strings.Count(out, "D") < 2 {
		t.Fatalf("device glyph counts wrong:\n%s", out)
	}
}
