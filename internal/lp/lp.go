// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables.
//
// The DAC'18 DFT paper formulates test-path generation as a 0-1 integer
// linear program (eqs. (1)-(6)); the authors used a commercial solver from
// C++. This module is offline and stdlib-only, so we implement the LP
// relaxation engine from scratch. Package ilp builds a branch-and-bound
// 0-1 solver on top of it.
//
// The solver targets the instance sizes that occur in biochip DFT —
// hundreds of variables and constraints — with numerical robustness
// (Bland's rule fallback, explicit tolerances) and a branch-and-bound
// friendly hot path: the production engine (bounded.go) treats finite
// upper bounds implicitly and solves into a reusable Tableau scratch, so
// a warm re-solve performs no allocations. The seed row-based simplex is
// preserved in baseline.go for benchmarks and cross-checks.
package lp

import (
	"context"
	"fmt"
)

// Sense selects the optimization direction.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// T is a convenience constructor for Term, for compact constraint building.
func T(v int, c float64) Term { return Term{Var: v, Coef: c} }

// Constraint is a linear constraint sum(Terms) Rel RHS.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Problem is a linear program. Construct with NewProblem, add variables and
// constraints, then call Solve.
type Problem struct {
	sense Sense
	obj   []float64
	lb    []float64
	ub    []float64
	cons  []Constraint
	names []string
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// Sense returns the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar adds a variable with objective coefficient obj and bounds [lb, ub]
// (use math.Inf(1) for an unbounded upper limit) and returns its index.
func (p *Problem) AddVar(obj, lb, ub float64, name string) int {
	if lb > ub {
		panic(fmt.Sprintf("lp: variable %q has lb %g > ub %g", name, lb, ub))
	}
	p.obj = append(p.obj, obj)
	p.lb = append(p.lb, lb)
	p.ub = append(p.ub, ub)
	p.names = append(p.names, name)
	return len(p.obj) - 1
}

// AddBinaryVar adds a variable with bounds [0,1]; package ilp enforces
// integrality. Returns the variable index.
func (p *Problem) AddBinaryVar(obj float64, name string) int {
	return p.AddVar(obj, 0, 1, name)
}

// VarName returns the name given at AddVar time.
func (p *Problem) VarName(i int) string { return p.names[i] }

// Bounds returns the bounds of variable i.
func (p *Problem) Bounds(i int) (lb, ub float64) { return p.lb[i], p.ub[i] }

// AddConstraint appends a linear constraint. Terms with out-of-range
// variable indices panic at solve time.
func (p *Problem) AddConstraint(c Constraint) int {
	p.cons = append(p.cons, c)
	return len(p.cons) - 1
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	// Canceled means the solve's context expired mid-simplex; the partial
	// tableau state carries no usable solution. SolveCtx pairs this status
	// with the context's error.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Canceled:
		return "canceled"
	}
	return "unknown"
}

// Solution holds the result of an LP solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const (
	eps          = 1e-9
	pivotEps     = 1e-7
	blandTrip    = 5000 // iterations of Dantzig before switching to Bland's rule
	iterCap      = 200000
	ctxCheckMask = 63 // poll the context every 64 simplex iterations
)

// Solve optimizes the problem. Overrides, if non-nil, replaces the variable
// bounds for this solve only: overrides[i] = [lb, ub] for variable i, or nil
// to keep the problem's own bounds. This is how branch-and-bound fixes
// binaries without copying the model.
func (p *Problem) Solve(overrides [][2]float64) (Solution, error) {
	return p.SolveCtx(context.Background(), overrides)
}

// SolveCtx is Solve with cooperative cancellation: the simplex polls ctx
// every ctxCheckMask+1 pivots and, when the context is cancelled or its
// deadline expires, abandons the solve and returns the context's error with
// Status Canceled. Each call allocates a fresh scratch tableau; hot loops
// that re-solve the same problem use SolveTab with a kept Tableau instead.
func (p *Problem) SolveCtx(ctx context.Context, overrides [][2]float64) (Solution, error) {
	return p.SolveTab(ctx, overrides, NewTableau())
}

// DefaultOverrides returns an override slice pre-filled with the problem's
// own bounds, so callers can tighten selected variables and pass the result
// to Solve.
func (p *Problem) DefaultOverrides() [][2]float64 {
	out := make([][2]float64, len(p.obj))
	for i := range out {
		out[i] = [2]float64{p.lb[i], p.ub[i]}
	}
	return out
}
