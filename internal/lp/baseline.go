package lp

// baseline.go preserves the seed row-based simplex as a reference
// implementation: a classic two-phase dense simplex where every finite
// upper bound becomes an explicit `y_i <= ub-lb` row and every solve
// allocates a fresh tableau. It is kept (like
// fault.EvaluateCoverageBaseline) so cmd/bench can report the production
// engine's speedup against the exact seed behaviour and so equivalence
// tests can cross-check the bounded-variable engine in bounded.go.

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// SolveBaseline optimizes the problem with the seed row-based simplex.
// Semantics match Solve; it exists for benchmarks and cross-checking.
func (p *Problem) SolveBaseline(overrides [][2]float64) (Solution, error) {
	return p.SolveBaselineCtx(context.Background(), overrides)
}

// SolveBaselineCtx is SolveBaseline with cooperative cancellation,
// matching SolveCtx's contract. Every call builds a fresh tableau with
// one explicit row per finite upper bound — the allocation and pivot
// cost the production engine avoids.
func (p *Problem) SolveBaselineCtx(ctx context.Context, overrides [][2]float64) (Solution, error) {
	n := len(p.obj)
	if overrides != nil && len(overrides) != n {
		return Solution{}, errors.New("lp: overrides length mismatch")
	}
	lb := make([]float64, n)
	ub := make([]float64, n)
	copy(lb, p.lb)
	copy(ub, p.ub)
	if overrides != nil {
		// Overrides replace bounds wholesale: callers start from
		// DefaultOverrides() and tighten selected variables, so a [0,0]
		// entry means "fix to zero", not "unset".
		for i, b := range overrides {
			lb[i] = b[0]
			ub[i] = b[1]
			if lb[i] > ub[i]+eps {
				return Solution{Status: Infeasible}, nil
			}
			if lb[i] > ub[i] {
				lb[i] = ub[i]
			}
		}
	}
	for _, c := range p.cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= n {
				return Solution{}, fmt.Errorf("lp: constraint references variable %d of %d", t.Var, n)
			}
		}
	}
	t := newTableau(p, lb, ub)
	t.ctx = ctx
	sol := t.solve()
	if sol.Status == Canceled {
		return sol, ctx.Err()
	}
	return sol, nil
}

// --- seed simplex tableau ---------------------------------------------------

// tableau implements the classic two-phase dense simplex. Variables are
// shifted by their lower bound; finite upper bounds become explicit rows.
// All constraint rows are normalized to nonnegative RHS; artificials are
// added for >= and = rows.
type tableau struct {
	p        *Problem
	ctx      context.Context
	nOrig    int       // original variable count
	lbShift  []float64 // lb used for shifting
	m        int       // rows
	nTot     int       // total columns (orig + slack/surplus + artificial)
	a        [][]float64
	b        []float64
	basis    []int
	artStart int // first artificial column
	objConst float64
}

func newTableau(p *Problem, lb, ub []float64) *tableau {
	n := len(p.obj)
	t := &tableau{p: p, nOrig: n, lbShift: lb}

	type rowSpec struct {
		coefs []float64
		rel   Rel
		rhs   float64
	}
	var rows []rowSpec

	// Original constraints with variables shifted: x = y + lb.
	for _, c := range p.cons {
		coefs := make([]float64, n)
		rhs := c.RHS
		for _, term := range c.Terms {
			coefs[term.Var] += term.Coef
			rhs -= term.Coef * lb[term.Var]
		}
		rows = append(rows, rowSpec{coefs: coefs, rel: c.Rel, rhs: rhs})
	}
	// Finite upper bounds become y_i <= ub - lb.
	for i := 0; i < n; i++ {
		if math.IsInf(ub[i], 1) {
			continue
		}
		coefs := make([]float64, n)
		coefs[i] = 1
		rows = append(rows, rowSpec{coefs: coefs, rel: LE, rhs: ub[i] - lb[i]})
	}
	// Normalize RHS >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}
	m := len(rows)
	// Count slack/surplus and artificial columns.
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t.m = m
	t.artStart = n + nSlack
	t.nTot = n + nSlack + nArt
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	slackCol := n
	artCol := t.artStart
	for i, r := range rows {
		row := make([]float64, t.nTot)
		copy(row, r.coefs)
		t.b[i] = r.rhs
		switch r.rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	// Objective constant from shifting.
	for i := 0; i < n; i++ {
		t.objConst += p.obj[i] * lb[i]
	}
	return t
}

// solve runs phase 1 (if artificials exist) then phase 2.
func (t *tableau) solve() Solution {
	nArt := t.nTot - t.artStart
	if nArt > 0 {
		// Phase-1 objective: minimize sum of artificials.
		c := make([]float64, t.nTot)
		for j := t.artStart; j < t.nTot; j++ {
			c[j] = 1
		}
		obj, status := t.optimize(c, true)
		if status == IterLimit || status == Canceled {
			return Solution{Status: status}
		}
		if obj > 1e-6 {
			return Solution{Status: Infeasible}
		}
		t.driveOutArtificials()
	}
	// Phase-2 objective over original variables (in minimize form).
	c := make([]float64, t.nTot)
	sign := 1.0
	if t.p.sense == Maximize {
		sign = -1
	}
	for j := 0; j < t.nOrig; j++ {
		c[j] = sign * t.p.obj[j]
	}
	obj, status := t.optimize(c, false)
	switch status {
	case Unbounded:
		return Solution{Status: Unbounded}
	case IterLimit:
		return Solution{Status: IterLimit}
	case Canceled:
		return Solution{Status: Canceled}
	}
	x := make([]float64, t.nOrig)
	for i, bi := range t.basis {
		if bi < t.nOrig {
			x[bi] = t.b[i]
		}
	}
	for i := range x {
		x[i] += t.lbShift[i]
	}
	objVal := sign*obj + t.objConst
	_ = objVal
	// Recompute objective from x for numerical cleanliness.
	val := 0.0
	for i := 0; i < t.nOrig; i++ {
		val += t.p.obj[i] * x[i]
	}
	return Solution{Status: Optimal, X: x, Obj: val}
}

// optimize minimizes c·x over the current tableau. phase1 forbids original
// artificial columns from re-entering during phase 2 (enforced by caller
// zeroing them). It returns the objective value and status.
//
// The reduced-cost row z is maintained incrementally across pivots (priced
// out once at entry), which keeps each iteration at one O(m·n) pivot
// instead of an additional O(m·n) pricing pass.
func (t *tableau) optimize(c []float64, phase1 bool) (float64, Status) {
	limit := t.nTot
	if !phase1 {
		limit = t.artStart // artificials may not re-enter in phase 2
	}
	// Price out the initial basis: z = c - sum_i c_{B(i)} * row_i.
	z := make([]float64, t.nTot)
	copy(z, c)
	for i, bi := range t.basis {
		cb := c[bi]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.nTot; j++ {
			if row[j] != 0 {
				z[j] -= cb * row[j]
			}
		}
	}
	basic := make([]bool, t.nTot)
	for _, bi := range t.basis {
		basic[bi] = true
	}
	for iter := 0; iter < iterCap; iter++ {
		if iter&ctxCheckMask == 0 && t.ctx != nil && t.ctx.Err() != nil {
			return 0, Canceled
		}
		useBland := iter > blandTrip
		enter := -1
		best := -eps
		for j := 0; j < limit; j++ {
			if basic[j] {
				continue
			}
			rc := z[j]
			if rc < -eps {
				if useBland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			obj := 0.0
			for i, bi := range t.basis {
				obj += c[bi] * t.b[i]
			}
			return obj, Optimal
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > pivotEps {
				ratio := t.b[i] / aij
				if leave < 0 || ratio < bestRatio-eps ||
					(useBland && math.Abs(ratio-bestRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return 0, Unbounded
		}
		basic[t.basis[leave]] = false
		basic[enter] = true
		t.pivot(leave, enter)
		// Eliminate the entering column from the z row using the (now
		// normalized) pivot row.
		factor := z[enter]
		if factor != 0 {
			row := t.a[leave]
			for j := 0; j < t.nTot; j++ {
				if row[j] != 0 {
					z[j] -= factor * row[j]
				}
			}
			z[enter] = 0
		}
	}
	return 0, IterLimit
}

func (t *tableau) isBasic(j int) bool {
	for _, bi := range t.basis {
		if bi == j {
			return true
		}
	}
	return false
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	for j := 0; j < t.nTot; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j < t.nTot; j++ {
			t.a[i][j] -= factor * t.a[row][j]
		}
		t.b[i] -= factor * t.b[row]
		if math.Abs(t.b[i]) < eps {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial variables that remain basic at
// zero level out of the basis after phase 1 (or zeroes their rows when the
// row is redundant).
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any non-artificial column with a nonzero coefficient.
		swapped := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > pivotEps && !t.isBasic(j) {
				t.pivot(i, j)
				swapped = true
				break
			}
		}
		if !swapped {
			// Redundant row: keep artificial basic at zero; it will not
			// affect phase 2 because its column is excluded from entering
			// and its value is 0.
			t.b[i] = 0
		}
	}
	// Erase artificial columns so they can never carry value again.
	for i := 0; i < t.m; i++ {
		for j := t.artStart; j < t.nTot; j++ {
			if t.basis[i] != j {
				t.a[i][j] = 0
			}
		}
	}
}
