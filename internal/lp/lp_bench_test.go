package lp

import (
	"math/rand"
	"testing"
)

// randomLP builds a feasible maximization with n vars and m <= constraints.
func randomLP(n, m int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(Maximize)
	for i := 0; i < n; i++ {
		p.AddBinaryVar(rng.Float64()*5, "x")
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, T(j, 1+rng.Float64()*2))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(0, 1))
		}
		p.AddConstraint(Constraint{Terms: terms, Rel: LE, RHS: 1 + rng.Float64()*float64(n)/2})
	}
	return p
}

func benchSolve(b *testing.B, n, m int) {
	p := randomLP(n, m, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(nil)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

func BenchmarkSimplexSmall(b *testing.B)  { benchSolve(b, 20, 15) }
func BenchmarkSimplexMedium(b *testing.B) { benchSolve(b, 100, 60) }
func BenchmarkSimplexLarge(b *testing.B)  { benchSolve(b, 300, 180) }
