package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaximizeSimple2D(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
	p := NewProblem(Maximize)
	x := p.AddVar(3, 0, math.Inf(1), "x")
	y := p.AddVar(5, 0, math.Inf(1), "y")
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Rel: LE, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{y, 2}}, Rel: LE, RHS: 12})
	p.AddConstraint(Constraint{Terms: []Term{{x, 3}, {y, 2}}, Rel: LE, RHS: 18})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 36) {
		t.Fatalf("status=%v obj=%v, want optimal 36", sol.Status, sol.Obj)
	}
	if !near(sol.X[x], 2) || !near(sol.X[y], 6) {
		t.Fatalf("x=%v y=%v, want (2,6)", sol.X[x], sol.X[y])
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4-?) LP: put all weight on x
	// since it is cheaper: x=4? but x>=1 only. Optimal x=4, y=0, obj 8.
	p := NewProblem(Minimize)
	x := p.AddVar(2, 1, math.Inf(1), "x")
	y := p.AddVar(3, 0, math.Inf(1), "y")
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Rel: GE, RHS: 4})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 8) {
		t.Fatalf("status=%v obj=%v, want optimal 8", sol.Status, sol.Obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + y = 5, x - y = 1 -> (3,2), obj 5.
	p := NewProblem(Minimize)
	x := p.AddVar(1, 0, math.Inf(1), "x")
	y := p.AddVar(1, 0, math.Inf(1), "y")
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Rel: EQ, RHS: 5})
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, -1}}, Rel: EQ, RHS: 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.X[x], 3) || !near(sol.X[y], 2) {
		t.Fatalf("status=%v x=%v y=%v", sol.Status, sol.X[x], sol.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar(1, 0, 1, "x")
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Rel: GE, RHS: 2})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(1, 0, math.Inf(1), "x")
	_ = x
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded", sol.Status)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// max x + y with x <= 0.5, y <= 0.25 via bounds only.
	p := NewProblem(Maximize)
	p.AddVar(1, 0, 0.5, "x")
	p.AddVar(1, 0, 0.25, "y")
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 0.75) {
		t.Fatalf("status=%v obj=%v, want 0.75", sol.Status, sol.Obj)
	}
}

func TestNonzeroLowerBoundShift(t *testing.T) {
	// min x s.t. x >= 2 via bounds: optimal 2.
	p := NewProblem(Minimize)
	p.AddVar(1, 2, 10, "x")
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 2) || !near(sol.X[0], 2) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Obj, sol.X[0])
	}
}

func TestOverridesFixVariable(t *testing.T) {
	// max x + y, x,y in [0,1]; fix x = 0 via override -> obj 1.
	p := NewProblem(Maximize)
	x := p.AddBinaryVar(1, "x")
	y := p.AddBinaryVar(1, "y")
	ov := p.DefaultOverrides()
	ov[x] = [2]float64{0, 0}
	sol, err := p.Solve(ov)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 1) || !near(sol.X[x], 0) || !near(sol.X[y], 1) {
		t.Fatalf("status=%v obj=%v x=%v y=%v", sol.Status, sol.Obj, sol.X[x], sol.X[y])
	}
}

func TestOverridesInfeasibleBounds(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddBinaryVar(1, "x")
	ov := p.DefaultOverrides()
	ov[0] = [2]float64{1, 0}
	sol, err := p.Solve(ov)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(Minimize)
	x := p.AddVar(1, 0, math.Inf(1), "x")
	p.AddConstraint(Constraint{Terms: []Term{{x, -1}}, Rel: LE, RHS: -3})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.X[x], 3) {
		t.Fatalf("status=%v x=%v, want 3", sol.Status, sol.X[x])
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	p := NewProblem(Minimize)
	x := p.AddVar(1, 0, 10, "x")
	y := p.AddVar(2, 0, 10, "y")
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Rel: EQ, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Rel: EQ, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{x, 2}, {y, 2}}, Rel: EQ, RHS: 8})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 4) {
		t.Fatalf("status=%v obj=%v, want 4 (x=4,y=0)", sol.Status, sol.Obj)
	}
}

func TestPathLPIsIntegral(t *testing.T) {
	// Shortest-path LP on a 4-cycle: nodes 0..3, edges (0-1),(1-2),(2-3),(3-0).
	// min sum(e) s.t. degree(0)=degree(2)=1, degree(1)=degree(3) even (0 or 2
	// relaxed to = 2*n_i with n_i binary). Expect obj 2 (either side).
	p := NewProblem(Minimize)
	e01 := p.AddBinaryVar(1, "e01")
	e12 := p.AddBinaryVar(1, "e12")
	e23 := p.AddBinaryVar(1, "e23")
	e30 := p.AddBinaryVar(1, "e30")
	n1 := p.AddBinaryVar(0, "n1")
	n3 := p.AddBinaryVar(0, "n3")
	p.AddConstraint(Constraint{Terms: []Term{{e01, 1}, {e30, 1}}, Rel: EQ, RHS: 1})
	p.AddConstraint(Constraint{Terms: []Term{{e12, 1}, {e23, 1}}, Rel: EQ, RHS: 1})
	p.AddConstraint(Constraint{Terms: []Term{{e01, 1}, {e12, 1}, {n1, -2}}, Rel: EQ, RHS: 0})
	p.AddConstraint(Constraint{Terms: []Term{{e23, 1}, {e30, 1}, {n3, -2}}, Rel: EQ, RHS: 0})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Obj, 2) {
		t.Fatalf("status=%v obj=%v, want 2", sol.Status, sol.Obj)
	}
}

// Property: for random feasible LPs built as A x <= b with x in [0,1], the
// simplex solution satisfies every constraint and the bounds.
func TestRandomLPFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(Maximize)
		for i := 0; i < n; i++ {
			p.AddBinaryVar(rng.Float64()*4-2, "v")
		}
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, rng.Float64() * 3})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{0, 1})
			}
			// RHS >= 0 keeps x = 0 feasible.
			p.AddConstraint(Constraint{Terms: terms, Rel: LE, RHS: rng.Float64() * 2})
		}
		sol, err := p.Solve(nil)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-7 || sol.X[j] > 1+1e-7 {
				return false
			}
		}
		for _, c := range p.cons {
			lhs := 0.0
			for _, term := range c.Terms {
				lhs += term.Coef * sol.X[term.Var]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimum of a maximization over [0,1]^n with only bound
// constraints equals the sum of positive objective coefficients.
func TestBoxOptimumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		p := NewProblem(Maximize)
		want := 0.0
		for i := 0; i < n; i++ {
			c := rng.Float64()*6 - 3
			p.AddBinaryVar(c, "v")
			if c > 0 {
				want += c
			}
		}
		sol, err := p.Solve(nil)
		return err == nil && sol.Status == Optimal && near(sol.Obj, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVarNameAndCounts(t *testing.T) {
	p := NewProblem(Minimize)
	i := p.AddVar(1, 0, 1, "alpha")
	if p.VarName(i) != "alpha" {
		t.Fatalf("VarName = %q", p.VarName(i))
	}
	if p.NumVars() != 1 || p.NumConstraints() != 0 {
		t.Fatalf("counts: vars=%d cons=%d", p.NumVars(), p.NumConstraints())
	}
	lb, ub := p.Bounds(i)
	if lb != 0 || ub != 1 {
		t.Fatalf("bounds = [%v,%v]", lb, ub)
	}
	if p.Sense() != Minimize {
		t.Fatalf("sense = %v", p.Sense())
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Rel.String mismatch")
	}
	if Rel(99).String() != "?" {
		t.Fatal("unknown Rel should stringify to ?")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(99).String() != "unknown" {
		t.Fatal("unknown status should stringify to unknown")
	}
}
