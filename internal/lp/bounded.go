package lp

// bounded.go is the production simplex: a dense two-phase primal simplex
// with implicit (bounded-variable) upper bounds and a flat, reusable
// Tableau scratch.
//
// The baseline engine (baseline.go) materializes one `y_i <= ub-lb` row
// per finite upper bound, so on the all-binary DFT models every variable
// adds a row and pivots cost O((m+n)·nTot). Here finite bounds are
// handled by the standard nonbasic-at-lower/nonbasic-at-upper technique
// with a bound-flip ratio test, which keeps only the true constraint
// rows — roughly half the rows (and a third of the pivot work) on the
// paper's path and cut ILPs. The scratch is re-populated in place on
// every solve, so a warm Tableau performs no allocations; package ilp
// keeps one per branch-and-bound worker.

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Tableau is reusable scratch storage for SolveTab. The zero value is
// ready to use (NewTableau is provided for clarity); a Tableau grows to
// the largest problem it has seen and is then allocation-free. It is not
// safe for concurrent use — callers that solve in parallel keep one
// Tableau per worker.
type Tableau struct {
	m        int // constraint rows
	nOrig    int // original variable count
	nTot     int // total columns (orig + slack/surplus + artificial)
	artStart int // first artificial column

	a       []float64 // m×nTot tableau matrix, row-major
	b       []float64 // current value of each row's basic variable
	u       []float64 // working upper bound per column (shifted space)
	z       []float64 // reduced costs
	cobj    []float64 // current phase objective
	basis   []int     // basic column per row
	basic   []bool    // column-is-basic flags
	atUpper []bool    // nonbasic-at-upper flags
	lb, ub  []float64 // working bounds of the original variables
	x       []float64 // decoded solution (aliased by Solution.X)
	flip    []bool    // row-negated flags from RHS normalization
	rel     []Rel     // normalized row relations
	rhs     []float64 // normalized row RHS

	ctx context.Context
}

// NewTableau returns an empty scratch tableau for SolveTab.
func NewTableau() *Tableau { return &Tableau{} }

// SolveTab is SolveCtx solving into the given scratch tableau instead of
// allocating a fresh one. The returned Solution's X slice aliases the
// scratch and is valid only until the next SolveTab call on the same
// Tableau; callers that keep a solution copy it first. Passing a nil
// tableau allocates one.
func (p *Problem) SolveTab(ctx context.Context, overrides [][2]float64, t *Tableau) (Solution, error) {
	if t == nil {
		t = NewTableau()
	}
	n := len(p.obj)
	if overrides != nil && len(overrides) != n {
		return Solution{}, errors.New("lp: overrides length mismatch")
	}
	t.lb = growFloats(t.lb, n)
	t.ub = growFloats(t.ub, n)
	copy(t.lb, p.lb)
	copy(t.ub, p.ub)
	if overrides != nil {
		// Overrides replace bounds wholesale: callers start from
		// DefaultOverrides() and tighten selected variables, so a [0,0]
		// entry means "fix to zero", not "unset".
		for i, b := range overrides {
			t.lb[i] = b[0]
			t.ub[i] = b[1]
			if t.lb[i] > t.ub[i]+eps {
				return Solution{Status: Infeasible}, nil
			}
			if t.lb[i] > t.ub[i] {
				t.lb[i] = t.ub[i]
			}
		}
	}
	for _, c := range p.cons {
		for _, term := range c.Terms {
			if term.Var < 0 || term.Var >= n {
				return Solution{}, fmt.Errorf("lp: constraint references variable %d of %d", term.Var, n)
			}
		}
	}
	t.ctx = ctx
	sol := t.run(p)
	if sol.Status == Canceled {
		return sol, ctx.Err()
	}
	return sol, nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growRels(s []Rel, n int) []Rel {
	if cap(s) < n {
		return make([]Rel, n)
	}
	return s[:n]
}

// load rebuilds the tableau in place for problem p under the working
// bounds t.lb/t.ub. Variables are shifted by their lower bound (y = x-lb)
// so every column lives in [0, u]; rows are normalized to nonnegative RHS
// with relation flips; slack/surplus columns are added per row and
// artificial columns for >=/= rows.
func (t *Tableau) load(p *Problem) {
	n := len(p.obj)
	m := len(p.cons)
	t.nOrig = n
	t.m = m
	t.rhs = growFloats(t.rhs, m)
	t.rel = growRels(t.rel, m)
	t.flip = growBools(t.flip, m)
	nSlack, nArt := 0, 0
	for i := range p.cons {
		c := &p.cons[i]
		rhs := c.RHS
		for _, term := range c.Terms {
			rhs -= term.Coef * t.lb[term.Var]
		}
		rel := c.Rel
		flip := rhs < 0
		if flip {
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		t.rhs[i] = rhs
		t.rel[i] = rel
		t.flip[i] = flip
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t.artStart = n + nSlack
	t.nTot = t.artStart + nArt

	t.a = growFloats(t.a, m*t.nTot)
	for i := range t.a {
		t.a[i] = 0
	}
	t.b = growFloats(t.b, m)
	t.u = growFloats(t.u, t.nTot)
	t.basis = growInts(t.basis, m)
	t.basic = growBools(t.basic, t.nTot)
	t.atUpper = growBools(t.atUpper, t.nTot)
	for j := 0; j < n; j++ {
		t.u[j] = t.ub[j] - t.lb[j] // may be +Inf
	}
	for j := n; j < t.nTot; j++ {
		t.u[j] = math.Inf(1)
	}
	for j := 0; j < t.nTot; j++ {
		t.basic[j] = false
		t.atUpper[j] = false
	}

	slackCol := n
	artCol := t.artStart
	for i := range p.cons {
		c := &p.cons[i]
		row := t.a[i*t.nTot : (i+1)*t.nTot]
		sign := 1.0
		if t.flip[i] {
			sign = -1
		}
		for _, term := range c.Terms {
			row[term.Var] += sign * term.Coef
		}
		t.b[i] = t.rhs[i]
		switch t.rel[i] {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.basic[t.basis[i]] = true
	}
}

// run executes phase 1 (when artificials exist) then phase 2 and decodes
// the solution.
func (t *Tableau) run(p *Problem) Solution {
	t.load(p)
	if t.nTot > t.artStart {
		t.cobj = growFloats(t.cobj, t.nTot)
		for j := 0; j < t.artStart; j++ {
			t.cobj[j] = 0
		}
		for j := t.artStart; j < t.nTot; j++ {
			t.cobj[j] = 1
		}
		obj, status := t.optimize(t.nTot)
		if status == IterLimit || status == Canceled {
			return Solution{Status: status}
		}
		if obj > 1e-6 {
			return Solution{Status: Infeasible}
		}
		t.driveOutArtificials()
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	t.cobj = growFloats(t.cobj, t.nTot)
	for j := 0; j < t.nTot; j++ {
		t.cobj[j] = 0
	}
	for j := 0; j < t.nOrig; j++ {
		t.cobj[j] = sign * p.obj[j]
	}
	_, status := t.optimize(t.artStart) // artificials may not re-enter
	switch status {
	case Unbounded:
		return Solution{Status: Unbounded}
	case IterLimit:
		return Solution{Status: IterLimit}
	case Canceled:
		return Solution{Status: Canceled}
	}
	// Decode: nonbasic columns sit at a bound, basic ones carry b.
	t.x = growFloats(t.x, t.nOrig)
	for j := 0; j < t.nOrig; j++ {
		v := 0.0
		if !t.basic[j] && t.atUpper[j] {
			v = t.u[j]
		}
		t.x[j] = v
	}
	for i, bi := range t.basis {
		if bi < t.nOrig {
			t.x[bi] = t.b[i]
		}
	}
	val := 0.0
	for j := 0; j < t.nOrig; j++ {
		t.x[j] += t.lb[j]
		val += p.obj[j] * t.x[j]
	}
	return Solution{Status: Optimal, X: t.x, Obj: val}
}

// objValue evaluates the current phase objective: basic columns carry b,
// nonbasic-at-upper columns carry their bound.
func (t *Tableau) objValue() float64 {
	obj := 0.0
	for i, bi := range t.basis {
		obj += t.cobj[bi] * t.b[i]
	}
	for j := 0; j < t.nTot; j++ {
		if !t.basic[j] && t.atUpper[j] && t.cobj[j] != 0 {
			obj += t.cobj[j] * t.u[j]
		}
	}
	return obj
}

// optimize minimizes t.cobj over the current tableau, with entering
// columns restricted to [0, limit). The reduced-cost row z is maintained
// incrementally across pivots (priced out once at entry); basic-variable
// values in b are updated directly by each step, so pivots touch only the
// matrix. Bound-flip iterations (an entering column crossing from one
// finite bound to the other without a basis change) are what make
// implicit upper bounds work.
func (t *Tableau) optimize(limit int) (float64, Status) {
	n := t.nTot
	t.z = growFloats(t.z, n)
	copy(t.z, t.cobj[:n])
	for i, bi := range t.basis {
		cb := t.cobj[bi]
		if cb == 0 {
			continue
		}
		row := t.a[i*n : (i+1)*n]
		for j, aj := range row {
			if aj != 0 {
				t.z[j] -= cb * aj
			}
		}
	}
	for iter := 0; iter < iterCap; iter++ {
		if iter&ctxCheckMask == 0 && t.ctx != nil && t.ctx.Err() != nil {
			return 0, Canceled
		}
		useBland := iter > blandTrip
		// Entering column: most attractive reduced cost (Dantzig), lowest
		// index on ties; Bland's rule (first improving index) after
		// blandTrip iterations to break degenerate cycles. A column at its
		// lower bound improves when z < 0, one at its upper bound when
		// z > 0; fixed columns (u <= 0) can never move.
		enter := -1
		best := eps
		for j := 0; j < limit; j++ {
			if t.basic[j] || t.u[j] <= 0 {
				continue
			}
			score := -t.z[j]
			if t.atUpper[j] {
				score = t.z[j]
			}
			if score <= eps {
				continue
			}
			if useBland {
				enter = j
				break
			}
			if score > best {
				best = score
				enter = j
			}
		}
		if enter < 0 {
			return t.objValue(), Optimal
		}
		d := 1.0 // direction of travel for the entering variable
		if t.atUpper[enter] {
			d = -1
		}
		// Ratio test: the entering variable moves by step tt, changing row
		// i's basic value at rate -d·a[i][enter]. It is blocked by the
		// first basic variable to hit one of its bounds, or by its own
		// opposite bound (a bound flip).
		rowT := 0.0
		leave := -1
		leaveAtUpper := false
		for i := 0; i < t.m; i++ {
			ae := t.a[i*n+enter]
			if ae < pivotEps && ae > -pivotEps {
				continue
			}
			rate := -d * ae
			var r float64
			var toUpper bool
			if rate < 0 { // basic value decreases toward 0
				r = t.b[i] / -rate
			} else { // basic value increases toward its upper bound
				ubB := t.u[t.basis[i]]
				if math.IsInf(ubB, 1) {
					continue
				}
				r = (ubB - t.b[i]) / rate
				toUpper = true
			}
			if r < 0 {
				r = 0
			}
			switch {
			case leave < 0:
			case r < rowT-eps:
			case useBland && math.Abs(r-rowT) <= eps && t.basis[i] < t.basis[leave]:
			default:
				continue
			}
			rowT = r
			leave = i
			leaveAtUpper = toUpper
		}
		flipT := t.u[enter]
		if leave < 0 {
			if math.IsInf(flipT, 1) {
				return 0, Unbounded
			}
			t.boundFlip(enter, d, flipT)
			continue
		}
		if flipT < rowT-eps {
			t.boundFlip(enter, d, flipT)
			continue
		}
		t.pivotStep(leave, enter, d, rowT, leaveAtUpper)
	}
	return 0, IterLimit
}

// boundFlip moves the entering column across its full range to the
// opposite bound: basic values shift, but the basis (and hence the matrix
// and reduced costs) is unchanged.
func (t *Tableau) boundFlip(enter int, d, step float64) {
	n := t.nTot
	for i := 0; i < t.m; i++ {
		ae := t.a[i*n+enter]
		if ae != 0 {
			t.b[i] -= step * d * ae
		}
	}
	t.clampValues()
	t.atUpper[enter] = !t.atUpper[enter]
}

// pivotStep advances the entering variable by step, retires the blocking
// basic variable to the bound it hit, and performs the Gauss-Jordan pivot
// on the matrix and reduced costs. Basic values are maintained directly,
// so b is not part of the elimination.
func (t *Tableau) pivotStep(leave, enter int, d, step float64, leaveAtUpper bool) {
	n := t.nTot
	if step != 0 {
		for i := 0; i < t.m; i++ {
			ae := t.a[i*n+enter]
			if ae != 0 {
				t.b[i] -= step * d * ae
			}
		}
	}
	vE := d * step
	if t.atUpper[enter] {
		vE = t.u[enter] + d*step
	}
	r := t.basis[leave]
	t.basic[r] = false
	t.atUpper[r] = leaveAtUpper
	t.basic[enter] = true
	t.atUpper[enter] = false
	t.basis[leave] = enter
	t.b[leave] = vE

	row := t.a[leave*n : (leave+1)*n]
	inv := 1 / row[enter]
	for j, rj := range row {
		if rj != 0 {
			row[j] = rj * inv
		}
	}
	row[enter] = 1
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i*n+enter]
		if f == 0 {
			continue
		}
		ri := t.a[i*n : (i+1)*n]
		for j, pj := range row {
			if pj != 0 {
				ri[j] -= f * pj
			}
		}
		ri[enter] = 0
	}
	zf := t.z[enter]
	if zf != 0 {
		for j, pj := range row {
			if pj != 0 {
				t.z[j] -= zf * pj
			}
		}
		t.z[enter] = 0
	}
	t.clampValues()
}

// clampValues snaps tiny negative basic values (numerical drift from the
// manual value updates) back onto the feasible box.
func (t *Tableau) clampValues() {
	for i := 0; i < t.m; i++ {
		v := t.b[i]
		if v < 0 && v > -eps {
			t.b[i] = 0
			continue
		}
		if ub := t.u[t.basis[i]]; !math.IsInf(ub, 1) && v > ub && v < ub+eps {
			t.b[i] = ub
		}
	}
}

// driveOutArtificials exchanges any artificial variable still basic at
// zero level after phase 1 for a structural column (a degenerate t=0
// pivot: no variable changes value), then erases the artificial columns
// so they can never carry value again. Redundant rows keep their
// artificial basic at zero.
func (t *Tableau) driveOutArtificials() {
	n := t.nTot
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		swapped := false
		for j := 0; j < t.artStart; j++ {
			if t.basic[j] {
				continue
			}
			v := t.a[i*n+j]
			if v > pivotEps || v < -pivotEps {
				t.exchangeAtBound(i, j)
				swapped = true
				break
			}
		}
		if !swapped {
			t.b[i] = 0
		}
	}
	for i := 0; i < t.m; i++ {
		base := i * n
		for j := t.artStart; j < n; j++ {
			if t.basis[i] != j {
				t.a[base+j] = 0
			}
		}
	}
}

// exchangeAtBound makes nonbasic column j basic in row i without moving
// any variable: the leaving artificial sits at 0 and j enters at its
// current bound value. Only the matrix needs the Gauss-Jordan update.
func (t *Tableau) exchangeAtBound(i, j int) {
	n := t.nTot
	r := t.basis[i]
	t.basic[r] = false
	t.atUpper[r] = false
	vE := 0.0
	if t.atUpper[j] {
		vE = t.u[j]
	}
	t.basic[j] = true
	t.atUpper[j] = false
	t.basis[i] = j
	t.b[i] = vE

	row := t.a[i*n : (i+1)*n]
	inv := 1 / row[j]
	for k, rk := range row {
		if rk != 0 {
			row[k] = rk * inv
		}
	}
	row[j] = 1
	for i2 := 0; i2 < t.m; i2++ {
		if i2 == i {
			continue
		}
		f := t.a[i2*n+j]
		if f == 0 {
			continue
		}
		ri := t.a[i2*n : (i2+1)*n]
		for k, pk := range row {
			if pk != 0 {
				ri[k] -= f * pk
			}
		}
		ri[j] = 0
	}
}
