package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomMixedLP builds a random feasible-or-not LP mixing senses, relations
// and bound styles (binary, wide, unbounded-above, fixed).
func randomMixedLP(rng *rand.Rand) *Problem {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		obj := rng.Float64()*10 - 5
		switch rng.Intn(4) {
		case 0:
			p.AddBinaryVar(obj, "b")
		case 1:
			p.AddVar(obj, 0, 1+rng.Float64()*5, "w")
		case 2:
			// Unbounded above only with a positive minimize cost (or
			// negative maximize profit), so the LP stays bounded.
			c := 0.1 + rng.Float64()*5
			if sense == Maximize {
				c = -c
			}
			p.AddVar(c, 0, math.Inf(1), "inf")
		default:
			v := rng.Float64() * 2
			p.AddVar(obj, v, v, "fix")
		}
	}
	m := 1 + rng.Intn(4)
	for k := 0; k < m; k++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, T(i, rng.Float64()*4-1))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(rng.Intn(n), 1))
		}
		rel := Rel(rng.Intn(3))
		p.AddConstraint(Constraint{Terms: terms, Rel: rel, RHS: rng.Float64()*6 - 2})
	}
	return p
}

// Property: the production bounded-variable engine agrees with the seed
// baseline simplex on status and optimal objective (optimal vertices may
// legitimately differ when the optimum face is degenerate, so X is only
// checked for feasibility via the matching objective).
func TestBoundedMatchesBaselineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomMixedLP(rng)
		got, gotErr := p.Solve(nil)
		want, wantErr := p.SolveBaseline(nil)
		if (gotErr == nil) != (wantErr == nil) {
			return false
		}
		if got.Status != want.Status {
			return false
		}
		if got.Status != Optimal {
			return true
		}
		return math.Abs(got.Obj-want.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with overrides fixing a random subset of binaries (the
// branch-and-bound access pattern), the engines still agree.
func TestBoundedMatchesBaselineWithOverridesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem(Minimize)
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			p.AddBinaryVar(rng.Float64()*4-1, "b")
		}
		for k := 0; k < 2+rng.Intn(3); k++ {
			var terms []Term
			for i := 0; i < n; i++ {
				terms = append(terms, T(i, rng.Float64()*3-1))
			}
			p.AddConstraint(Constraint{Terms: terms, Rel: Rel(rng.Intn(3)), RHS: rng.Float64() * 2})
		}
		ov := p.DefaultOverrides()
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v := float64(rng.Intn(2))
				ov[i] = [2]float64{v, v}
			}
		}
		got, err1 := p.Solve(ov)
		want, err2 := p.SolveBaseline(ov)
		if (err1 == nil) != (err2 == nil) || got.Status != want.Status {
			return false
		}
		return got.Status != Optimal || math.Abs(got.Obj-want.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A reused Tableau must be fully re-initialized per solve: different
// problems and different override sets through one scratch.
func TestTableauReuseAcrossProblems(t *testing.T) {
	tab := NewTableau()

	p1 := NewProblem(Maximize)
	a := p1.AddBinaryVar(3, "a")
	b := p1.AddBinaryVar(2, "b")
	p1.AddConstraint(Constraint{Terms: []Term{T(a, 1), T(b, 1)}, Rel: LE, RHS: 1})
	sol, err := p1.SolveTab(context.Background(), nil, tab)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-3) > 1e-6 {
		t.Fatalf("p1: sol=%+v err=%v, want optimal 3", sol, err)
	}

	p2 := NewProblem(Minimize)
	x := p2.AddVar(1, 0, 10, "x")
	y := p2.AddVar(2, 0, 10, "y")
	p2.AddConstraint(Constraint{Terms: []Term{T(x, 1), T(y, 1)}, Rel: GE, RHS: 4})
	p2.AddConstraint(Constraint{Terms: []Term{T(x, 1)}, Rel: LE, RHS: 1})
	sol, err = p2.SolveTab(context.Background(), nil, tab)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-7) > 1e-6 {
		t.Fatalf("p2: sol=%+v err=%v, want optimal 7 (x=1, y=3)", sol, err)
	}
	if math.Abs(sol.X[x]-1) > 1e-6 || math.Abs(sol.X[y]-3) > 1e-6 {
		t.Fatalf("p2: X=%v, want [1 3]", sol.X)
	}

	// Same problem again with overrides fixing x to 0.
	ov := p2.DefaultOverrides()
	ov[x] = [2]float64{0, 0}
	sol, err = p2.SolveTab(context.Background(), ov, tab)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-8) > 1e-6 {
		t.Fatalf("p2 fixed: sol=%+v err=%v, want optimal 8 (y=4)", sol, err)
	}
}

// Solutions from SolveTab alias the scratch: the previous X is rewritten
// by the next solve. This pins the documented contract.
func TestSolveTabAliasesScratch(t *testing.T) {
	tab := NewTableau()
	p := NewProblem(Maximize)
	a := p.AddBinaryVar(1, "a")
	p.AddConstraint(Constraint{Terms: []Term{T(a, 1)}, Rel: LE, RHS: 1})
	s1, err := p.SolveTab(context.Background(), nil, tab)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.SolveTab(context.Background(), nil, tab)
	if err != nil {
		t.Fatal(err)
	}
	if &s1.X[0] != &s2.X[0] {
		t.Fatal("SolveTab should reuse the scratch solution buffer")
	}
}

// A warm Tableau re-solving the same problem shape must not allocate.
func TestSolveTabWarmAllocFree(t *testing.T) {
	p := NewProblem(Minimize)
	n := 12
	for i := 0; i < n; i++ {
		p.AddBinaryVar(float64(i%3)+1, "b")
	}
	for k := 0; k < 6; k++ {
		var terms []Term
		for i := 0; i < n; i++ {
			terms = append(terms, T(i, float64((i+k)%4)))
		}
		p.AddConstraint(Constraint{Terms: terms, Rel: GE, RHS: 2})
	}
	tab := NewTableau()
	ov := p.DefaultOverrides()
	ctx := context.Background()
	if _, err := p.SolveTab(ctx, ov, tab); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.SolveTab(ctx, ov, tab); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm SolveTab allocates %v objects per solve, want 0", allocs)
	}
}

func TestSolveTabNilTableau(t *testing.T) {
	p := NewProblem(Maximize)
	a := p.AddBinaryVar(2, "a")
	sol, err := p.SolveTab(context.Background(), nil, nil)
	if err != nil || sol.Status != Optimal || sol.X[a] != 1 {
		t.Fatalf("sol=%+v err=%v, want optimal with a=1", sol, err)
	}
}
