package lp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err() calls, giving deterministic mid-solve cancellation
// without wall-clock races.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// branchy returns an LP with enough variables and constraints that the
// simplex needs a healthy number of pivots.
func branchy(n int) *Problem {
	p := NewProblem(Maximize)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(float64(1+i%7), 0, math.Inf(1), "x")
	}
	for i := 0; i+2 < n; i++ {
		p.AddConstraint(Constraint{
			Terms: []Term{{vars[i], 1}, {vars[i+1], 2}, {vars[i+2], 1}},
			Rel:   LE, RHS: float64(3 + i%5),
		})
	}
	return p
}

func TestSolveCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := branchy(20).SolveCtx(ctx, nil)
	if sol.Status != Canceled {
		t.Fatalf("status = %v, want Canceled", sol.Status)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sol, err := branchy(20).SolveCtx(ctx, nil)
	if sol.Status != Canceled {
		t.Fatalf("status = %v, want Canceled", sol.Status)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// pollCounter counts context polls without ever cancelling.
type pollCounter struct {
	context.Context
	n int
}

func (c *pollCounter) Err() error {
	c.n++
	return nil
}

func TestSolveCtxMidSolveCancellation(t *testing.T) {
	// The simplex polls the context every ctxCheckMask+1 pivots. Probe how
	// often this problem polls, then cancel halfway through: deterministic
	// mid-solve cancellation with no wall-clock dependence.
	p := branchy(200)
	probe := &pollCounter{Context: context.Background()}
	if _, err := p.SolveCtx(probe, nil); err != nil {
		t.Fatal(err)
	}
	if probe.n < 2 {
		t.Fatalf("problem too easy to cancel mid-solve: %d context polls", probe.n)
	}
	ctx := &countdownCtx{Context: context.Background(), remaining: probe.n / 2}
	sol, err := p.SolveCtx(ctx, nil)
	if sol.Status != Canceled {
		t.Fatalf("status = %v, want Canceled", sol.Status)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	p := branchy(20)
	want, errW := p.Solve(nil)
	got, errG := p.SolveCtx(context.Background(), nil)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("Solve err = %v, SolveCtx err = %v", errW, errG)
	}
	if want.Status != got.Status || math.Abs(want.Obj-got.Obj) > 1e-9 {
		t.Fatalf("Solve = (%v, %v), SolveCtx = (%v, %v)", want.Status, want.Obj, got.Status, got.Obj)
	}
}
