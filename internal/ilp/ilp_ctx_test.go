package ilp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/lp"
)

// countdownCtx cancels after a fixed number of Err() polls — deterministic
// mid-search cancellation without wall-clock races.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// pollCounter counts context polls without ever cancelling.
type pollCounter struct {
	context.Context
	n int
}

func (c *pollCounter) Err() error {
	c.n++
	return nil
}

// hardKnapsack builds a correlated 0/1 knapsack: value tracks weight, so
// the LP bound is weak and the branch-and-bound explores many nodes.
func hardKnapsack(n int) *lp.Problem {
	p := lp.NewProblem(lp.Maximize)
	rng := rand.New(rand.NewSource(7))
	var terms []lp.Term
	total := 0
	for i := 0; i < n; i++ {
		w := 10 + rng.Intn(90)
		x := p.AddBinaryVar(float64(w+rng.Intn(10)), fmt.Sprintf("x%d", i))
		terms = append(terms, lp.T(x, float64(w)))
		total += w
	}
	p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: float64(total / 2)})
	return p
}

func TestSolveCtxPreCancelledAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewModel(hardKnapsack(20)).SolveCtx(ctx, Options{})
	if err != nil {
		t.Fatalf("err = %v, want nil (cancellation is a budget, not a failure)", err)
	}
	if res.Status != Aborted {
		t.Fatalf("status = %v, want Aborted", res.Status)
	}
	if res.Nodes != 0 {
		t.Fatalf("explored %d nodes under a pre-cancelled context, want 0", res.Nodes)
	}
}

func TestSolveCtxCancelledKeepsIncumbent(t *testing.T) {
	// A primed incumbent must survive cancellation: the all-zeros vector is
	// feasible for any knapsack, and a dead context means it is returned
	// as-is with Status Feasible.
	p := hardKnapsack(20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inc := make([]float64, p.NumVars())
	res, err := NewModel(p).SolveCtx(ctx, Options{IncumbentObj: 0, IncumbentX: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (incumbent kept)", res.Status)
	}
	for i, v := range res.X {
		if v != 0 {
			t.Fatalf("X[%d] = %v, want the primed incumbent (all zeros)", i, v)
		}
	}
}

func TestSolveCtxMidSearchCancellation(t *testing.T) {
	// Probe how often the search polls the context on this instance, then
	// cancel halfway: the solve must stop within one node, return a nil
	// error, and report Feasible (incumbent found) or Aborted — never hang
	// and never claim Optimal/Infeasible.
	p := hardKnapsack(26)
	m := NewModel(p)
	probe := &pollCounter{Context: context.Background()}
	full, err := m.SolveCtx(probe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("reference solve: status = %v, want Optimal", full.Status)
	}
	if probe.n < 4 {
		t.Fatalf("instance too easy to cancel mid-search: %d context polls", probe.n)
	}

	ctx := &countdownCtx{Context: context.Background(), remaining: probe.n / 2}
	res, err := m.SolveCtx(ctx, Options{})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if res.Status != Feasible && res.Status != Aborted {
		t.Fatalf("status = %v, want Feasible or Aborted", res.Status)
	}
	if res.Nodes == 0 || res.Nodes >= full.Nodes {
		t.Fatalf("explored %d nodes (full search: %d), want a strict mid-search stop", res.Nodes, full.Nodes)
	}
	if res.Status == Feasible && sign(p)*res.Obj < sign(p)*full.Obj-1e-6 {
		t.Fatalf("incumbent obj %v beats the optimum %v", res.Obj, full.Obj)
	}
}

func sign(p *lp.Problem) float64 {
	if p.Sense() == lp.Maximize {
		return -1
	}
	return 1
}

func TestSolveCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := NewModel(hardKnapsack(15)).SolveCtx(ctx, Options{}); err != nil {
			t.Fatal(err)
		}
		ctx2 := &countdownCtx{Context: context.Background(), remaining: 5}
		if _, err := NewModel(hardKnapsack(15)).SolveCtx(ctx2, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across cancelled solves", before, after)
	}
}
