//go:build !race

package ilp

const raceEnabled = false
