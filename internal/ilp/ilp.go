// Package ilp implements a 0-1 integer linear programming solver by
// branch and bound over the LP relaxation from package lp.
//
// The test-path generation ILP of the DAC'18 DFT paper (eqs. (1)-(6)) is a
// pure 0-1 program whose degree constraints admit spurious disjoint cycles;
// the paper removes them lazily with the technique of ref. [16]. The solver
// therefore supports lazy constraints: whenever an integer-feasible point is
// found, a callback may reject it by returning additional constraints,
// which are added to the model before the search continues.
//
// The search (search.go) is a deterministic parallel branch and bound: a
// worker pool explores subtrees from a shared LIFO frontier under an
// atomically shared incumbent bound. Determinism is part of the contract:
// on a fixed model (no lazy cuts) an exhausted search returns bit-identical
// (Status, X, Obj) for every worker count, because nodes are pruned only
// when their relaxation is strictly worse than the bound and equal-objective
// incumbents are resolved to the lexicographically smallest rounded
// solution (see DESIGN.md §11 for the argument). Node counts and parallel
// statistics do vary with scheduling, as do budget-truncated (Feasible/
// Aborted) results. The seed serial solver is preserved in baseline.go for
// benchmarks and cross-checks.
package ilp

import (
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/lp"
)

// Model wraps an lp.Problem whose variables are all binary (bounds must be
// within [0,1]); Solve enforces integrality on every variable. A Model must
// not be copied after first use (it embeds the lock that serializes lazy
// constraint insertion against concurrent LP relaxations).
type Model struct {
	P *lp.Problem

	// mu guards P during a parallel solve: relaxations take the read
	// side, lazy-cut insertion the write side.
	mu sync.RWMutex
}

// NewModel returns a model over the given problem. All variables are
// treated as binaries.
func NewModel(p *lp.Problem) *Model { return &Model{P: p} }

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = default).
	MaxNodes int
	// TimeLimit caps wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// Workers sets the number of concurrent search workers. 0 or 1 runs
	// the search serially on the calling goroutine (no goroutines are
	// spawned). On a fixed model the result is worker-count independent;
	// see the package comment for the exact guarantee.
	Workers int
	// Lazy, if non-nil, is invoked on every integer-feasible candidate. It
	// returns constraints violated by the candidate; returning none accepts
	// the candidate as feasible. Added constraints apply globally. During a
	// parallel solve the callback runs under the model's write lock (so it
	// never races with relaxations) and must not call back into the model.
	Lazy func(x []float64) []lp.Constraint
	// IncumbentObj primes the search with a known objective bound
	// (for minimization: an upper bound). The bound is honoured when
	// IncumbentX is non-nil, when HasIncumbent is set, or — for
	// compatibility — when IncumbentObj is non-zero and finite. Use
	// HasIncumbent to prime a bound of exactly 0 without a solution
	// vector; internally the search starts from a math.Inf(1) sentinel,
	// so the zero Options value still means "none".
	IncumbentObj float64
	// IncumbentX optionally carries the solution achieving IncumbentObj.
	IncumbentX []float64
	// HasIncumbent marks IncumbentObj as meaningful even when it is zero
	// and IncumbentX is nil (the zero-value ambiguity fix).
	HasIncumbent bool
}

// DefaultMaxNodes bounds the search when Options.MaxNodes is zero.
const DefaultMaxNodes = 20000

// SolveStats describes how one branch-and-bound run used its workers.
type SolveStats struct {
	// Workers is the resolved worker count of the solve.
	Workers int
	// NodesPerWorker counts the nodes each worker processed; the entries
	// sum to Result.Nodes.
	NodesPerWorker []int
	// Steals counts frontier pops that took a node pushed by a different
	// worker — cross-worker load balancing events.
	Steals int
	// IdleWaits counts the times a worker blocked on an empty frontier
	// while siblings were still expanding nodes.
	IdleWaits int
	// Requeued counts nodes pushed back after a lazy-cut rejection.
	Requeued int
}

// Result is the outcome of an ILP solve.
type Result struct {
	Status   Status
	X        []float64 // integral values (0/1) when Status is Optimal or Feasible
	Obj      float64
	Nodes    int // branch-and-bound nodes explored
	LazyCuts int // lazy constraints added during the search
	// Stats carries the parallel-search statistics of the solve (Workers
	// is 1 and Steals/IdleWaits are 0 for a serial run).
	Stats SolveStats
}

// Status classifies an ILP result.
type Status int

// ILP statuses. Feasible means the node/time budget expired with an
// incumbent in hand but optimality unproven.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	Aborted // budget expired with no incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

const intTol = 1e-6

// Solve runs branch and bound and returns the best integral solution
// found.
func (m *Model) Solve(opts Options) (Result, error) {
	return m.SolveCtx(context.Background(), opts)
}

// mostFractional is the branching rule: it returns the index of the
// variable farthest from an integer — "most fractional", with ties broken
// by the lowest variable index (the strict > comparison keeps the first
// maximum) — or -1 if all values are integral within tolerance. The rule
// is deterministic in x, which together with the deterministic LP solver
// makes the branch-and-bound tree of a fixed model a function of the model
// alone (the serial-search determinism property pinned by tests).
func mostFractional(x []float64) int {
	best := -1
	bestDist := intTol
	for i, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > bestDist {
			bestDist = f
			best = i
		}
	}
	return best
}

func roundBinary(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
