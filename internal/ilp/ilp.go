// Package ilp implements a 0-1 integer linear programming solver by
// branch and bound over the LP relaxation from package lp.
//
// The test-path generation ILP of the DAC'18 DFT paper (eqs. (1)-(6)) is a
// pure 0-1 program whose degree constraints admit spurious disjoint cycles;
// the paper removes them lazily with the technique of ref. [16]. The solver
// therefore supports lazy constraints: whenever an integer-feasible point is
// found, a callback may reject it by returning additional constraints,
// which are added to the model before the search continues.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// Model wraps an lp.Problem whose variables are all binary (bounds must be
// within [0,1]); Solve enforces integrality on every variable.
type Model struct {
	P *lp.Problem
}

// NewModel returns a model over the given problem. All variables are
// treated as binaries.
func NewModel(p *lp.Problem) *Model { return &Model{P: p} }

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = default).
	MaxNodes int
	// TimeLimit caps wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// Lazy, if non-nil, is invoked on every integer-feasible candidate. It
	// returns constraints violated by the candidate; returning none accepts
	// the candidate as feasible. Added constraints apply globally.
	Lazy func(x []float64) []lp.Constraint
	// IncumbentObj primes the search with a known objective bound
	// (for minimization: an upper bound). Use math.Inf(1) or leave the
	// zero Options value for "none".
	IncumbentObj float64
	// IncumbentX optionally carries the solution achieving IncumbentObj.
	IncumbentX []float64
}

// DefaultMaxNodes bounds the search when Options.MaxNodes is zero.
const DefaultMaxNodes = 20000

// Result is the outcome of an ILP solve.
type Result struct {
	Status   Status
	X        []float64 // integral values (0/1) when Status is Optimal or Feasible
	Obj      float64
	Nodes    int // branch-and-bound nodes explored
	LazyCuts int // lazy constraints added during the search
}

// Status classifies an ILP result.
type Status int

// ILP statuses. Feasible means the node/time budget expired with an
// incumbent in hand but optimality unproven.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	Aborted // budget expired with no incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

const intTol = 1e-6

// Solve runs depth-first branch and bound and returns the best integral
// solution found.
func (m *Model) Solve(opts Options) (Result, error) {
	return m.SolveCtx(context.Background(), opts)
}

// SolveCtx is Solve with cooperative cancellation. The context is checked
// at every branch-and-bound node (and inside each LP relaxation); when it
// expires the search stops within one node and returns the incumbent with
// Status Feasible, or Aborted when no incumbent exists yet. Cancellation is
// treated exactly like an expired node/time budget — the error is nil and
// the Result reports how far the search got.
func (m *Model) SolveCtx(ctx context.Context, opts Options) (Result, error) {
	n := m.P.NumVars()
	for i := 0; i < n; i++ {
		lb, ub := m.P.Bounds(i)
		if lb < -intTol || ub > 1+intTol {
			return Result{}, fmt.Errorf("ilp: variable %d has non-binary bounds [%g,%g]", i, lb, ub)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	sign := 1.0
	if m.P.Sense() == lp.Maximize {
		sign = -1 // compare in minimize space
	}
	bestObj := math.Inf(1)
	var bestX []float64
	if opts.IncumbentX != nil {
		bestObj = sign * opts.IncumbentObj
		bestX = append([]float64(nil), opts.IncumbentX...)
	} else if opts.IncumbentObj != 0 && !math.IsInf(opts.IncumbentObj, 0) {
		bestObj = sign * opts.IncumbentObj
	}

	type node struct {
		fixedVar []int
		fixedVal []float64
	}
	stack := []node{{}}
	res := Result{}

	baseOv := m.P.DefaultOverrides()
	aborted := false
	for len(stack) > 0 {
		if res.Nodes >= maxNodes {
			aborted = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			aborted = true
			break
		}
		if ctx.Err() != nil {
			aborted = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		ov := make([][2]float64, n)
		copy(ov, baseOv)
		for i, v := range nd.fixedVar {
			ov[v] = [2]float64{nd.fixedVal[i], nd.fixedVal[i]}
		}
		sol, err := m.P.SolveCtx(ctx, ov)
		if err != nil {
			if sol.Status == lp.Canceled {
				// Context expired mid-relaxation: stop the search and keep
				// the incumbent, like any other expired budget.
				aborted = true
				break
			}
			return res, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return res, errors.New("ilp: LP relaxation unbounded (binary model should be bounded)")
		case lp.IterLimit:
			continue // treat as prune; rare
		}
		relax := sign * sol.Obj
		if relax >= bestObj-1e-9 {
			continue // bound prune
		}
		frac := mostFractional(sol.X)
		if frac < 0 {
			// Integer feasible. Round to exact binaries.
			x := roundBinary(sol.X)
			if opts.Lazy != nil {
				cuts := opts.Lazy(x)
				if len(cuts) > 0 {
					for _, c := range cuts {
						m.P.AddConstraint(c)
					}
					res.LazyCuts += len(cuts)
					// Re-explore this node under the new constraints.
					stack = append(stack, nd)
					continue
				}
			}
			bestObj = relax
			bestX = x
			continue
		}
		// Branch: explore the rounding-nearest child last so DFS visits it
		// first (stack order).
		v := frac
		if sol.X[v] >= 0.5 {
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 0)})
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 1)})
		} else {
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 1)})
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 0)})
		}
	}

	exhausted := len(stack) == 0 && !aborted
	if bestX == nil {
		if exhausted {
			res.Status = Infeasible
		} else {
			res.Status = Aborted
		}
		return res, nil
	}
	res.X = bestX
	res.Obj = sign * bestObj
	if exhausted {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res, nil
}

// mostFractional returns the index of the variable farthest from an
// integer, or -1 if all are integral within tolerance.
func mostFractional(x []float64) int {
	best := -1
	bestDist := intTol
	for i, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > bestDist {
			bestDist = f
			best = i
		}
	}
	return best
}

func roundBinary(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
