package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 8 -> a=c=1, obj 14
	// (a+b would weigh 9 > 8).
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(10, "a")
	b := p.AddBinaryVar(6, "b")
	c := p.AddBinaryVar(4, "c")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1), lp.T(c, 1)}, Rel: lp.LE, RHS: 2})
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 5), lp.T(b, 4), lp.T(c, 3)}, Rel: lp.LE, RHS: 8})
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-14) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 14", res.Status, res.Obj)
	}
	if res.X[a] != 1 || res.X[b] != 0 || res.X[c] != 1 {
		t.Fatalf("x = %v, want [1 0 1]", res.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := lp.NewProblem(lp.Minimize)
	a := p.AddBinaryVar(1, "a")
	b := p.AddBinaryVar(1, "b")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1)}, Rel: lp.GE, RHS: 3})
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", res.Status)
	}
}

func TestFractionalLPForcesBranching(t *testing.T) {
	// max a+b s.t. a+b <= 1.5: LP gives 1.5 fractional; ILP optimum is 1.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(1, "a")
	b := p.AddBinaryVar(1, "b")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1)}, Rel: lp.LE, RHS: 1.5})
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-1) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 1", res.Status, res.Obj)
	}
}

func TestEvenSumViaEqualityAux(t *testing.T) {
	// min a+b+c s.t. a+b+c = 2k (k binary), a >= 1: forces exactly 2 ones
	// (a plus one more) when minimized with a = 1 fixed by bounds.
	p := lp.NewProblem(lp.Minimize)
	a := p.AddVar(1, 1, 1, "a") // fixed to 1
	b := p.AddBinaryVar(1, "b")
	c := p.AddBinaryVar(1, "c")
	k := p.AddBinaryVar(0, "k")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1), lp.T(c, 1), lp.T(k, -2)}, Rel: lp.EQ, RHS: 0})
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want 2", res.Status, res.Obj)
	}
}

func TestLazyConstraintRejection(t *testing.T) {
	// max a + b, free; lazy callback forbids (1,1), so optimum becomes 1.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(1, "a")
	b := p.AddBinaryVar(1, "b")
	calls := 0
	res, err := NewModel(p).Solve(Options{
		Lazy: func(x []float64) []lp.Constraint {
			calls++
			if x[a] > 0.5 && x[b] > 0.5 {
				return []lp.Constraint{{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1)}, Rel: lp.LE, RHS: 1}}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-1) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 1", res.Status, res.Obj)
	}
	if res.LazyCuts != 1 {
		t.Fatalf("LazyCuts = %d, want 1", res.LazyCuts)
	}
	if calls < 2 {
		t.Fatalf("lazy callback calls = %d, want >= 2", calls)
	}
}

func TestNodeBudgetAborts(t *testing.T) {
	// A model whose LP is fractional everywhere; with MaxNodes=1 the search
	// cannot complete and must not report Optimal.
	p := lp.NewProblem(lp.Maximize)
	var terms []lp.Term
	for i := 0; i < 6; i++ {
		v := p.AddBinaryVar(1, "v")
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 2.5})
	res, err := NewModel(p).Solve(Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("status=%v with MaxNodes=1; optimality cannot be proven", res.Status)
	}
}

func TestIncumbentPruning(t *testing.T) {
	// Supplying the optimal incumbent should still return it.
	p := lp.NewProblem(lp.Minimize)
	a := p.AddBinaryVar(1, "a")
	b := p.AddBinaryVar(2, "b")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1), lp.T(b, 1)}, Rel: lp.GE, RHS: 1})
	res, err := NewModel(p).Solve(Options{IncumbentObj: 1, IncumbentX: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-1) > 1e-6 || res.X[a] != 1 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Obj, res.X)
	}
}

func TestNonBinaryBoundsRejected(t *testing.T) {
	p := lp.NewProblem(lp.Minimize)
	p.AddVar(1, 0, 5, "wide")
	if _, err := NewModel(p).Solve(Options{}); err == nil {
		t.Fatal("expected error for non-binary variable bounds")
	}
}

func TestSetCoverSmall(t *testing.T) {
	// Universe {1,2,3}; sets A={1,2}, B={2,3}, C={3}; min cover = {A,B} = 2.
	p := lp.NewProblem(lp.Minimize)
	A := p.AddBinaryVar(1, "A")
	B := p.AddBinaryVar(1, "B")
	C := p.AddBinaryVar(1, "C")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(A, 1)}, Rel: lp.GE, RHS: 1})             // elem 1
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(A, 1), lp.T(B, 1)}, Rel: lp.GE, RHS: 1}) // elem 2
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(B, 1), lp.T(C, 1)}, Rel: lp.GE, RHS: 1}) // elem 3
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want 2", res.Status, res.Obj)
	}
}

// Property: ILP optimum of a random knapsack matches exhaustive enumeration.
func TestKnapsackMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7) // up to 8 items: enumerable
		value := make([]float64, n)
		weight := make([]float64, n)
		for i := range value {
			value[i] = float64(1 + rng.Intn(20))
			weight[i] = float64(1 + rng.Intn(10))
		}
		capacity := float64(5 + rng.Intn(25))
		p := lp.NewProblem(lp.Maximize)
		var terms []lp.Term
		for i := 0; i < n; i++ {
			v := p.AddBinaryVar(value[i], "x")
			terms = append(terms, lp.Term{Var: v, Coef: weight[i]})
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: capacity})
		res, err := NewModel(p).Solve(Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weight[i]
					v += value[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		return math.Abs(res.Obj-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions returned are always exactly 0/1 and satisfy all
// constraints.
func TestSolutionIntegralityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := lp.NewProblem(lp.Maximize)
		for i := 0; i < n; i++ {
			p.AddBinaryVar(rng.Float64()*5, "x")
		}
		var terms []lp.Term
		for i := 0; i < n; i++ {
			terms = append(terms, lp.Term{Var: i, Coef: 1 + rng.Float64()*2})
		}
		rhs := 1 + rng.Float64()*float64(n)
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: rhs})
		res, err := NewModel(p).Solve(Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		lhs := 0.0
		for i, v := range res.X {
			if v != 0 && v != 1 {
				return false
			}
			lhs += terms[i].Coef * v
		}
		return lhs <= rhs+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible", Aborted: "aborted",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
	if Status(42).String() != "unknown" {
		t.Fatal("unknown status string")
	}
}

func TestTimeLimitStopsSearch(t *testing.T) {
	// A fractional model with a vanishing time limit must stop without
	// claiming optimality.
	p := lp.NewProblem(lp.Maximize)
	var terms []lp.Term
	for i := 0; i < 10; i++ {
		v := p.AddBinaryVar(1, "v")
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 4.5})
	res, err := NewModel(p).Solve(Options{TimeLimit: 1 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("optimality claimed under a 1ns budget (nodes=%d)", res.Nodes)
	}
}

func TestMaximizeSenseRoundTrip(t *testing.T) {
	// Maximization results must come back in maximize space.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(3, "a")
	b := p.AddBinaryVar(2, "b")
	_ = a
	_ = b
	res, err := NewModel(p).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-5) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want 5", res.Status, res.Obj)
	}
}
