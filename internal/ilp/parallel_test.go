package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

// A model whose only feasible point has objective 2: minimize 2a subject to
// a >= 1. Priming the search with a proven bound of 0 must prune that point
// and report infeasibility within the bound.
func onlyPointCostsTwo() *Model {
	p := lp.NewProblem(lp.Minimize)
	a := p.AddBinaryVar(2, "a")
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{lp.T(a, 1)}, Rel: lp.GE, RHS: 1})
	return NewModel(p)
}

// Regression for the IncumbentObj zero-value ambiguity: a bound of exactly 0
// used to be indistinguishable from "no incumbent" when IncumbentX was nil,
// so the solver would ignore it and return Optimal 2. HasIncumbent makes the
// zero bound effective.
func TestIncumbentZeroBoundHonored(t *testing.T) {
	res, err := onlyPointCostsTwo().Solve(Options{IncumbentObj: 0, HasIncumbent: true})
	if err != nil {
		t.Fatal(err)
	}
	// The only feasible point costs 2 > 0, so under the primed bound the
	// search exhausts without an acceptable solution.
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible under primed zero bound", res.Status)
	}
}

// The zero Options value must still mean "no incumbent": without
// HasIncumbent (and without IncumbentX), IncumbentObj == 0 is ignored.
func TestIncumbentZeroWithoutFlagIgnored(t *testing.T) {
	res, err := onlyPointCostsTwo().Solve(Options{IncumbentObj: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-2) > 1e-9 {
		t.Fatalf("res = %+v, want optimal obj 2 (zero bound ignored)", res)
	}
}

// mostFractional must break ties toward the lowest variable index.
func TestMostFractionalTieBreak(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{[]float64{0, 1, 0}, -1},
		{[]float64{0.5, 0.5, 0.5}, 0},
		{[]float64{0.1, 0.5, 0.5}, 1},
		{[]float64{0.6, 0.4, 1}, 0}, // equal distance 0.4: lowest index wins
		{[]float64{0.2, 0.8}, 0},    // equal distance 0.2: lowest index wins
		{[]float64{1, 0.75, 0.25}, 1},
	}
	for _, c := range cases {
		if got := mostFractional(c.x); got != c.want {
			t.Errorf("mostFractional(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// Property: the serial search is deterministic — repeated solves of an
// identical model agree on everything, including the node count and the
// exact solution vector (branching and search order are functions of the
// model alone).
func TestSerialSearchDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		first, err := NewModel(randomCoverModel(seed)).Solve(Options{})
		if err != nil {
			return false
		}
		for rep := 0; rep < 3; rep++ {
			got, err := NewModel(randomCoverModel(seed)).Solve(Options{})
			if err != nil {
				return false
			}
			if got.Status != first.Status || got.Obj != first.Obj || got.Nodes != first.Nodes {
				return false
			}
			for i := range got.X {
				if got.X[i] != first.X[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomCoverModel builds a random set-cover-like minimization with distinct
// costs (so branching has work to do but the optimum is usually unique).
func randomCoverModel(seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem(lp.Minimize)
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		p.AddBinaryVar(1+float64(i)*0.13+rng.Float64(), "s")
	}
	m := 2 + rng.Intn(4)
	for k := 0; k < m; k++ {
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, lp.T(i, 1))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.T(rng.Intn(n), 1))
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.GE, RHS: 1})
	}
	return p
}

// Property: an exhausted search returns identical (Status, X, Obj) for
// every worker count — the tentpole determinism guarantee.
func TestWorkerCountDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		ref, err := NewModel(randomCoverModel(seed)).Solve(Options{Workers: 1})
		if err != nil || ref.Status != Optimal {
			return err == nil && ref.Status == Infeasible
		}
		for _, w := range []int{2, 4, 8} {
			got, err := NewModel(randomCoverModel(seed)).Solve(Options{Workers: w})
			if err != nil {
				return false
			}
			if got.Status != ref.Status || got.Obj != ref.Obj {
				return false
			}
			for i := range got.X {
				if got.X[i] != ref.X[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// A parallel solve on a hard model must agree with the serial solve and
// with the preserved seed engine, bit for bit.
func TestParallelMatchesSerialAndBaselineHardModel(t *testing.T) {
	serial, err := NewModel(hardKnapsack(22)).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewModel(hardKnapsack(22)).SolveBaseline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Status != Optimal || base.Status != Optimal {
		t.Fatalf("status serial=%v baseline=%v, want optimal", serial.Status, base.Status)
	}
	if math.Abs(serial.Obj-base.Obj) > 1e-6 {
		t.Fatalf("obj serial=%v baseline=%v", serial.Obj, base.Obj)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := NewModel(hardKnapsack(22)).Solve(Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if par.Status != serial.Status || par.Obj != serial.Obj {
			t.Fatalf("workers=%d: (status, obj) = (%v, %v), want (%v, %v)",
				w, par.Status, par.Obj, serial.Status, serial.Obj)
		}
		for i := range par.X {
			if par.X[i] != serial.X[i] {
				t.Fatalf("workers=%d: X[%d] = %v, want %v", w, i, par.X[i], serial.X[i])
			}
		}
	}
}

// Lazy cuts under parallelism: the first integer point is rejected by the
// callback, and the search must converge to the same accepted solution at 1
// and 8 workers. The model has distinct costs so the accepted optimum is
// unique (the condition under which the parallel lazy guarantee holds).
func TestLazyCutParallelConvergence(t *testing.T) {
	build := func() (*Model, Options, int) {
		p := lp.NewProblem(lp.Minimize)
		costs := []float64{1, 1.01, 1.02, 1.03}
		for _, c := range costs {
			p.AddBinaryVar(c, "x")
		}
		var terms []lp.Term
		for i := range costs {
			terms = append(terms, lp.T(i, 1))
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.GE, RHS: 2})
		x0 := 0
		lazy := func(x []float64) []lp.Constraint {
			if x[x0] > 0.5 {
				// Reject any solution using x0 by cutting it away.
				return []lp.Constraint{{Terms: []lp.Term{lp.T(x0, 1)}, Rel: lp.LE, RHS: 0}}
			}
			return nil
		}
		return NewModel(p), Options{Lazy: lazy}, x0
	}

	want := []float64{0, 1, 1, 0} // cheapest pair without x0
	for _, w := range []int{1, 8} {
		m, opts, _ := build()
		opts.Workers = w
		res, err := m.Solve(opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status = %v, want optimal", w, res.Status)
		}
		if math.Abs(res.Obj-2.03) > 1e-9 {
			t.Fatalf("workers=%d: obj = %v, want 2.03", w, res.Obj)
		}
		for i := range want {
			if res.X[i] != want[i] {
				t.Fatalf("workers=%d: X = %v, want %v", w, res.X, want)
			}
		}
		if res.LazyCuts < 1 {
			t.Fatalf("workers=%d: LazyCuts = %d, want >= 1", w, res.LazyCuts)
		}
		if res.Stats.Requeued < 1 {
			t.Fatalf("workers=%d: Stats.Requeued = %d, want >= 1", w, res.Stats.Requeued)
		}
	}
}

// Parallel statistics must be internally consistent: the resolved worker
// count is reported and the per-worker node counts sum to Result.Nodes.
func TestParallelStatsConsistent(t *testing.T) {
	res, err := NewModel(hardKnapsack(22)).Solve(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 4 {
		t.Fatalf("Stats.Workers = %d, want 4", res.Stats.Workers)
	}
	if len(res.Stats.NodesPerWorker) != 4 {
		t.Fatalf("len(NodesPerWorker) = %d, want 4", len(res.Stats.NodesPerWorker))
	}
	sum := 0
	for _, c := range res.Stats.NodesPerWorker {
		sum += c
	}
	if sum != res.Nodes {
		t.Fatalf("sum(NodesPerWorker) = %d, want Nodes = %d", sum, res.Nodes)
	}
}

// A serial run reports serial stats.
func TestSerialStats(t *testing.T) {
	res, err := NewModel(hardKnapsack(12)).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 1 || st.Steals != 0 || st.IdleWaits != 0 {
		t.Fatalf("serial stats = %+v, want workers 1, no steals/idle waits", st)
	}
	if len(st.NodesPerWorker) != 1 || st.NodesPerWorker[0] != res.Nodes {
		t.Fatalf("NodesPerWorker = %v, want [%d]", st.NodesPerWorker, res.Nodes)
	}
}

// Cancellation during a parallel solve must behave like the serial budget
// semantics: nil error, incumbent (if any) kept, all workers terminated.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewModel(hardKnapsack(22)).SolveCtx(ctx, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Aborted {
		t.Fatalf("status = %v, want aborted on pre-cancelled parallel solve", res.Status)
	}
}
