package ilp

import (
	"testing"
)

// nodeAllocBudget is the allocation-regression ceiling asserted per
// branch-and-bound node on a warm serial solve. Each expanded node costs at
// most two child bbNode structs plus amortized frontier growth; the seed
// engine spent ~30 allocations per node (copied fixing slices, a fresh
// override slice and a fresh LP tableau per relaxation), so this budget
// also locks in the >=5x reduction the rewrite claims.
const nodeAllocBudget = 6.0

func TestNodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget asserted in non-race CI")
	}
	m := NewModel(hardKnapsack(20))
	// Warm the tableau pool so the measured runs reuse scratch.
	warm, err := m.Solve(Options{})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warmup: %+v err=%v", warm, err)
	}
	var nodes int
	allocs := testing.AllocsPerRun(10, func() {
		res, err := m.Solve(Options{})
		if err != nil || res.Status != Optimal {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		nodes = res.Nodes
	})
	if nodes == 0 {
		t.Fatal("no nodes explored")
	}
	perNode := allocs / float64(nodes)
	t.Logf("allocs/op=%v nodes=%d allocs/node=%.2f (budget %.1f)", allocs, nodes, perNode, nodeAllocBudget)
	if perNode > nodeAllocBudget {
		t.Fatalf("allocation regression: %.2f allocs per node, budget %.1f", perNode, nodeAllocBudget)
	}
}

// BenchmarkSolvePerNode and BenchmarkSolveBaselinePerNode expose the
// per-node cost of the production engine against the preserved seed engine
// on the same model (cmd/bench -ilp reports the same comparison on the
// paper's chips).
func BenchmarkSolvePerNode(b *testing.B) {
	m := NewModel(hardKnapsack(20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := m.Solve(Options{})
		if err != nil || res.Status != Optimal {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

func BenchmarkSolveBaselinePerNode(b *testing.B) {
	m := NewModel(hardKnapsack(20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveBaseline(Options{})
		if err != nil || res.Status != Optimal {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}
