package ilp

// search.go is the production branch-and-bound engine: a worker pool over
// a shared LIFO frontier with an atomically shared incumbent bound.
//
// Hot-path design (the per-node cost is allocation-free up to the two
// child nodes):
//
//   - branch nodes are parent pointers (variable, value, parent) instead
//     of the seed's append-copied fixedVar/fixedVal slices; a node's
//     bound fixings are applied by walking its ancestor chain into a
//     per-worker overrides buffer and undone the same way after the
//     relaxation;
//   - each worker owns an lp.Tableau scratch drawn from a sync.Pool, so
//     LP relaxations re-populate warm storage instead of re-making it;
//   - the incumbent bound is published through an atomic word
//     (math.Float64bits) so pruning never takes a lock.
//
// Determinism rule: a node is pruned only when its relaxation is strictly
// worse than the bound (relax > bound + tol), so subtrees whose bound ties
// the optimum are always explored; among equal-objective incumbents the
// lexicographically smallest rounded solution wins. On a fixed model every
// optimal leaf is therefore visited regardless of scheduling, and an
// exhausted search returns the same (Status, X, Obj) for any worker count.
// Lazy cuts are applied globally under the model's write lock with the
// rejected node re-queued; because cut arrival order can steer later
// relaxations, the bit-identical guarantee then needs a unique accepted
// optimum (the paper's models pin this with their usage costs).

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
)

// SolveCtx is Solve with cooperative cancellation. The context is checked
// at every branch-and-bound node (and inside each LP relaxation); when it
// expires the search stops within one node and returns the incumbent with
// Status Feasible, or Aborted when no incumbent exists yet. Cancellation is
// treated exactly like an expired node/time budget — the error is nil and
// the Result reports how far the search got. With Options.Workers > 1 the
// frontier is explored by that many goroutines, all of which have
// terminated by the time SolveCtx returns.
func (m *Model) SolveCtx(ctx context.Context, opts Options) (Result, error) {
	n := m.P.NumVars()
	for i := 0; i < n; i++ {
		lb, ub := m.P.Bounds(i)
		if lb < -intTol || ub > 1+intTol {
			return Result{}, fmt.Errorf("ilp: variable %d has non-binary bounds [%g,%g]", i, lb, ub)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	s := &search{
		m:        m,
		opts:     opts,
		ctx:      ctx,
		n:        n,
		maxNodes: int64(maxNodes),
		sign:     1.0,
		front:    newFrontier(),
		baseOv:   m.P.DefaultOverrides(),
		bestObj:  math.Inf(1),
	}
	if m.P.Sense() == lp.Maximize {
		s.sign = -1 // compare in minimize space
	}
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
	}
	// Prime the incumbent. The sentinel is +Inf; see Options.IncumbentObj
	// for when a caller-provided bound is honoured.
	if opts.IncumbentX != nil || opts.HasIncumbent ||
		(opts.IncumbentObj != 0 && !math.IsInf(opts.IncumbentObj, 0)) {
		s.bestObj = s.sign * opts.IncumbentObj
	}
	if opts.IncumbentX != nil {
		s.bestX = append([]float64(nil), opts.IncumbentX...)
	}
	s.bound.Store(math.Float64bits(s.bestObj))

	s.workerNodes = make([]int64, workers)
	s.front.push(&bbNode{}, 0)
	if workers == 1 {
		// Serial fast path: the frontier can never be empty while a node
		// is inflight, so the single worker runs inline without spawning
		// a goroutine (and without ever blocking on the condition).
		s.runWorker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(id int) {
				defer wg.Done()
				s.runWorker(id)
			}(w)
		}
		wg.Wait()
	}

	res := Result{
		Nodes:    int(s.nodes.Load()),
		LazyCuts: int(s.lazyCuts.Load()),
	}
	res.Stats = SolveStats{
		Workers:        workers,
		NodesPerWorker: make([]int, workers),
		Steals:         s.front.steals,
		IdleWaits:      s.front.idle,
		Requeued:       int(s.requeued.Load()),
	}
	for i, c := range s.workerNodes {
		res.Stats.NodesPerWorker[i] = int(c)
	}
	if s.err != nil {
		return res, s.err
	}
	exhausted := !s.aborted.Load()
	if s.bestX == nil {
		if exhausted {
			res.Status = Infeasible
		} else {
			res.Status = Aborted
		}
		return res, nil
	}
	res.X = s.bestX
	res.Obj = s.sign * s.bestObj
	if exhausted {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res, nil
}

// bbNode is a branch decision: variable v fixed to val, on top of every
// fixing along the parent chain. The root has a nil parent.
type bbNode struct {
	parent *bbNode
	v      int32
	val    int8
}

// frontierItem tags each queued node with the worker that produced it so
// cross-worker pops can be counted as steals.
type frontierItem struct {
	nd    *bbNode
	owner int
}

// frontier is the shared LIFO work queue. inflight counts popped but
// unfinished nodes: the queue is exhausted only when it is empty AND
// nothing is inflight (an inflight node may still push children).
type frontier struct {
	mu       sync.Mutex
	cond     sync.Cond
	items    []frontierItem
	inflight int
	closed   bool
	idle     int
	steals   int
}

func newFrontier() *frontier {
	f := &frontier{}
	f.cond.L = &f.mu
	return f
}

func (f *frontier) push(nd *bbNode, owner int) {
	f.mu.Lock()
	f.items = append(f.items, frontierItem{nd, owner})
	f.mu.Unlock()
	f.cond.Signal()
}

// pop blocks until a node is available, the search is closed, or the
// frontier is exhausted; it returns nil in the latter two cases.
func (f *frontier) pop(worker int) *bbNode {
	f.mu.Lock()
	for len(f.items) == 0 && f.inflight > 0 && !f.closed {
		f.idle++
		f.cond.Wait()
	}
	if f.closed || len(f.items) == 0 {
		f.mu.Unlock()
		return nil
	}
	it := f.items[len(f.items)-1]
	f.items = f.items[:len(f.items)-1]
	f.inflight++
	if it.owner != worker {
		f.steals++
	}
	f.mu.Unlock()
	return it.nd
}

// finish marks a popped node fully processed and wakes everyone when the
// search space is exhausted.
func (f *frontier) finish() {
	f.mu.Lock()
	f.inflight--
	if f.inflight == 0 && len(f.items) == 0 {
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// close aborts the search: pending items are abandoned and every blocked
// worker wakes up and exits.
func (f *frontier) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// search is the shared state of one SolveCtx run.
type search struct {
	m        *Model
	opts     Options
	ctx      context.Context
	n        int
	sign     float64
	maxNodes int64
	deadline time.Time
	front    *frontier
	baseOv   [][2]float64

	// bound mirrors bestObj (minimize space) as math.Float64bits for
	// lock-free prune reads; incMu guards the authoritative incumbent.
	bound atomic.Uint64

	incMu   sync.Mutex
	bestObj float64
	bestX   []float64

	nodes    atomic.Int64
	lazyCuts atomic.Int64
	requeued atomic.Int64
	aborted  atomic.Bool

	errMu sync.Mutex
	err   error

	workerNodes []int64
}

// tabPool recycles LP scratch tableaus across solves and workers.
var tabPool = sync.Pool{New: func() any { return lp.NewTableau() }}

func (s *search) loadBound() float64 {
	return math.Float64frombits(s.bound.Load())
}

// abort stops the search, keeping the incumbent (budget/cancellation
// semantics).
func (s *search) abort() {
	s.aborted.Store(true)
	s.front.close()
}

// fail stops the search with a hard error.
func (s *search) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.abort()
}

// bbWorker is one worker's private scratch: a pooled LP tableau and the
// reusable overrides buffer the node fixings are applied into.
type bbWorker struct {
	id    int
	tab   *lp.Tableau
	ov    [][2]float64
	nodes int64
}

func (s *search) runWorker(id int) {
	w := &bbWorker{id: id, tab: tabPool.Get().(*lp.Tableau)}
	w.ov = make([][2]float64, s.n)
	copy(w.ov, s.baseOv)
	for {
		nd := s.front.pop(id)
		if nd == nil {
			break
		}
		s.process(w, nd)
		s.front.finish()
	}
	tabPool.Put(w.tab)
	s.workerNodes[id] = w.nodes
}

// process expands one node: budget checks, LP relaxation under the node's
// fixings, prune/candidate/branch.
func (s *search) process(w *bbWorker, nd *bbNode) {
	if s.aborted.Load() {
		return
	}
	if s.ctx.Err() != nil {
		s.abort()
		return
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.abort()
		return
	}
	if s.nodes.Add(1) > s.maxNodes {
		s.nodes.Add(-1) // the node was not processed
		s.abort()
		return
	}
	w.nodes++

	// Apply the node's fixings along the parent chain, relax, undo.
	for p := nd; p.parent != nil; p = p.parent {
		v := float64(p.val)
		w.ov[p.v] = [2]float64{v, v}
	}
	s.m.mu.RLock()
	sol, err := s.m.P.SolveTab(s.ctx, w.ov, w.tab)
	s.m.mu.RUnlock()
	for p := nd; p.parent != nil; p = p.parent {
		w.ov[p.v] = s.baseOv[p.v]
	}
	if err != nil {
		if sol.Status == lp.Canceled {
			// Context expired mid-relaxation: stop the search and keep
			// the incumbent, like any other expired budget.
			s.abort()
			return
		}
		s.fail(err)
		return
	}
	switch sol.Status {
	case lp.Infeasible:
		return
	case lp.Unbounded:
		s.fail(errors.New("ilp: LP relaxation unbounded (binary model should be bounded)"))
		return
	case lp.IterLimit:
		return // treat as prune; rare
	}
	relax := s.sign * sol.Obj
	if relax > s.loadBound()+1e-9 {
		return // bound prune (strict: equal-bound subtrees stay open)
	}
	frac := mostFractional(sol.X)
	if frac < 0 {
		// Integer feasible. Round to exact binaries (sol.X aliases the
		// worker tableau, so the candidate is copied out here).
		x := roundBinary(sol.X)
		if s.opts.Lazy != nil {
			s.m.mu.Lock()
			cuts := s.opts.Lazy(x)
			if len(cuts) > 0 {
				for _, c := range cuts {
					s.m.P.AddConstraint(c)
				}
				s.m.mu.Unlock()
				s.lazyCuts.Add(int64(len(cuts)))
				s.requeued.Add(1)
				// Re-explore this node under the new constraints.
				s.front.push(nd, w.id)
				return
			}
			s.m.mu.Unlock()
		}
		s.offerIncumbent(x, relax)
		return
	}
	// Branch: push the rounding-nearest child last so the LIFO frontier
	// explores it first (the seed's DFS order).
	v := int32(frac)
	lo := &bbNode{parent: nd, v: v, val: 0}
	hi := &bbNode{parent: nd, v: v, val: 1}
	if sol.X[frac] >= 0.5 {
		s.front.push(lo, w.id)
		s.front.push(hi, w.id)
	} else {
		s.front.push(hi, w.id)
		s.front.push(lo, w.id)
	}
}

// offerIncumbent installs x (objective obj, minimize space) when it is
// strictly better than the incumbent, or ties it within tolerance and is
// lexicographically smaller — the rule that makes the final solution
// independent of which worker found it first.
func (s *search) offerIncumbent(x []float64, obj float64) {
	s.incMu.Lock()
	accept := false
	if obj < s.bestObj-1e-9 {
		accept = true
	} else if obj <= s.bestObj+1e-9 && s.bestX != nil && lexLess(x, s.bestX) {
		accept = true
	}
	if accept {
		if obj < s.bestObj {
			s.bestObj = obj
		}
		s.bestX = x
		s.bound.Store(math.Float64bits(s.bestObj))
	}
	s.incMu.Unlock()
}

// lexLess reports whether rounded solution a precedes b lexicographically.
func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
