package ilp

// baseline.go preserves the seed branch-and-bound exactly as shipped: a
// serial DFS whose nodes copy their fixed-variable lists, rebuild the
// override slice and solve the relaxation with the seed row-based simplex
// (lp.SolveBaselineCtx). cmd/bench reports the production engine's
// per-node speedup and allocation reduction against this implementation,
// and equivalence tests cross-check the two searches on models with
// unique optima.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// SolveBaseline runs the seed serial branch-and-bound. Semantics match
// the seed Solve; it exists for benchmarks and cross-checking.
func (m *Model) SolveBaseline(opts Options) (Result, error) {
	return m.SolveBaselineCtx(context.Background(), opts)
}

// SolveBaselineCtx is SolveBaseline with cooperative cancellation,
// matching the seed SolveCtx contract (cancellation is a budget: nil
// error, incumbent kept). Options.Workers and Options.HasIncumbent are
// ignored — the seed solver is serial and carries the seed's
// IncumbentObj zero-value ambiguity on purpose.
func (m *Model) SolveBaselineCtx(ctx context.Context, opts Options) (Result, error) {
	n := m.P.NumVars()
	for i := 0; i < n; i++ {
		lb, ub := m.P.Bounds(i)
		if lb < -intTol || ub > 1+intTol {
			return Result{}, fmt.Errorf("ilp: variable %d has non-binary bounds [%g,%g]", i, lb, ub)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	sign := 1.0
	if m.P.Sense() == lp.Maximize {
		sign = -1 // compare in minimize space
	}
	bestObj := math.Inf(1)
	var bestX []float64
	if opts.IncumbentX != nil {
		bestObj = sign * opts.IncumbentObj
		bestX = append([]float64(nil), opts.IncumbentX...)
	} else if opts.IncumbentObj != 0 && !math.IsInf(opts.IncumbentObj, 0) {
		bestObj = sign * opts.IncumbentObj
	}

	type node struct {
		fixedVar []int
		fixedVal []float64
	}
	stack := []node{{}}
	res := Result{}

	baseOv := m.P.DefaultOverrides()
	aborted := false
	for len(stack) > 0 {
		if res.Nodes >= maxNodes {
			aborted = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			aborted = true
			break
		}
		if ctx.Err() != nil {
			aborted = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		ov := make([][2]float64, n)
		copy(ov, baseOv)
		for i, v := range nd.fixedVar {
			ov[v] = [2]float64{nd.fixedVal[i], nd.fixedVal[i]}
		}
		sol, err := m.P.SolveBaselineCtx(ctx, ov)
		if err != nil {
			if sol.Status == lp.Canceled {
				// Context expired mid-relaxation: stop the search and keep
				// the incumbent, like any other expired budget.
				aborted = true
				break
			}
			return res, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return res, errors.New("ilp: LP relaxation unbounded (binary model should be bounded)")
		case lp.IterLimit:
			continue // treat as prune; rare
		}
		relax := sign * sol.Obj
		if relax >= bestObj-1e-9 {
			continue // bound prune
		}
		frac := mostFractional(sol.X)
		if frac < 0 {
			// Integer feasible. Round to exact binaries.
			x := roundBinary(sol.X)
			if opts.Lazy != nil {
				cuts := opts.Lazy(x)
				if len(cuts) > 0 {
					for _, c := range cuts {
						m.P.AddConstraint(c)
					}
					res.LazyCuts += len(cuts)
					// Re-explore this node under the new constraints.
					stack = append(stack, nd)
					continue
				}
			}
			bestObj = relax
			bestX = x
			continue
		}
		// Branch: explore the rounding-nearest child last so DFS visits it
		// first (stack order).
		v := frac
		if sol.X[v] >= 0.5 {
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 0)})
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 1)})
		} else {
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 1)})
			stack = append(stack, node{append(append([]int(nil), nd.fixedVar...), v), append(append([]float64(nil), nd.fixedVal...), 0)})
		}
	}

	exhausted := len(stack) == 0 && !aborted
	if bestX == nil {
		if exhausted {
			res.Status = Infeasible
		} else {
			res.Status = Aborted
		}
		return res, nil
	}
	res.X = bestX
	res.Obj = sign * bestObj
	if exhausted {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res, nil
}
