package solve

import (
	"reflect"
	"testing"
)

func TestSplitInjections(t *testing.T) {
	in, err := ParseInjections("exact:timeout,diagnose-adaptive:timeout,reconf-strict:panic,heuristic:panic,diagnose-replay:infeasible,reconf-relaxed:infeasible")
	if err != nil {
		t.Fatal(err)
	}
	aug, diag, reconf := SplitInjections(in)
	wantAug := []Injection{{Tier: "exact", Kind: FaultTimeout}, {Tier: "heuristic", Kind: FaultPanic}}
	wantDiag := []Injection{{Tier: "diagnose-adaptive", Kind: FaultTimeout}, {Tier: "diagnose-replay", Kind: FaultInfeasible}}
	wantReconf := []Injection{{Tier: "reconf-strict", Kind: FaultPanic}, {Tier: "reconf-relaxed", Kind: FaultInfeasible}}
	if !reflect.DeepEqual(aug, wantAug) {
		t.Fatalf("augment injections %v, want %v", aug, wantAug)
	}
	if !reflect.DeepEqual(diag, wantDiag) {
		t.Fatalf("diagnose injections %v, want %v", diag, wantDiag)
	}
	if !reflect.DeepEqual(reconf, wantReconf) {
		t.Fatalf("reconfig injections %v, want %v", reconf, wantReconf)
	}
}

func TestSplitInjectionsEmpty(t *testing.T) {
	aug, diag, reconf := SplitInjections(nil)
	if aug != nil || diag != nil || reconf != nil {
		t.Fatalf("want all nil, got %v %v %v", aug, diag, reconf)
	}
}
