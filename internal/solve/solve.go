// Package solve orchestrates tiered solver pipelines with graceful
// degradation. A Runner tries a chain of tiers — typically exact ILP,
// then a fast heuristic, then a best-effort greedy repair — giving each
// tier its own time budget, converting panics into structured errors, and
// recording full provenance (which tier produced the result, why the
// earlier tiers failed, and how long each attempt took).
//
// The package also provides deterministic fault injection: a test or a
// CLI flag can force tier N to time out, panic, or report infeasibility,
// exercising the exact degradation paths that real overload would take.
package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// Reason classifies why a tier attempt ended.
type Reason string

const (
	// ReasonOK: the tier produced a result.
	ReasonOK Reason = "ok"
	// ReasonTimeout: the tier's own budget expired.
	ReasonTimeout Reason = "timeout"
	// ReasonCancelled: the caller's context was cancelled (Ctrl-C or an
	// enclosing deadline), which stops the whole chain, not just the tier.
	ReasonCancelled Reason = "cancelled"
	// ReasonPanic: the tier panicked; the panic was recovered and
	// converted into a *PanicError.
	ReasonPanic Reason = "panic"
	// ReasonInfeasible: the tier proved its formulation infeasible.
	ReasonInfeasible Reason = "infeasible"
	// ReasonError: any other tier failure.
	ReasonError Reason = "error"
)

// FaultKind selects what an Injection forces a tier to do.
type FaultKind string

const (
	// FaultTimeout hands the tier an already-expired deadline, so the
	// tier's real cooperative-cancellation path runs and must return
	// promptly.
	FaultTimeout FaultKind = "timeout"
	// FaultPanic makes the tier panic inside the Runner's recover scope.
	FaultPanic FaultKind = "panic"
	// FaultInfeasible makes the tier report infeasibility without running.
	FaultInfeasible FaultKind = "infeasible"
)

// Injection deterministically forces a fault at the named tier. Tier
// matching is by TierSpec.Name.
type Injection struct {
	Tier string    `json:"tier"`
	Kind FaultKind `json:"kind"`
}

// ParseInjections parses a CLI spec like "exact:timeout,heuristic:panic"
// into injections.
func ParseInjections(spec string) ([]Injection, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Injection
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tier, kind, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("solve: bad injection %q (want tier:kind)", part)
		}
		k := FaultKind(strings.TrimSpace(kind))
		switch k {
		case FaultTimeout, FaultPanic, FaultInfeasible:
		default:
			return nil, fmt.Errorf("solve: bad injection kind %q (want timeout|panic|infeasible)", kind)
		}
		out = append(out, Injection{Tier: strings.TrimSpace(tier), Kind: k})
	}
	return out, nil
}

// Tier-name prefixes of the post-finalize chains. The augmentation chain
// keeps its unprefixed names ("exact", "heuristic", "repair"); the
// diagnosis chain's tiers are "diagnose-adaptive", "diagnose-greedy",
// "diagnose-replay"; the reconfiguration chain's are "reconf-strict",
// "reconf-reroute", "reconf-relaxed". One CLI -inject spec can therefore
// target any chain of a flow unambiguously.
const (
	DiagnoseTierPrefix = "diagnose-"
	ReconfigTierPrefix = "reconf-"
)

// SplitInjections routes a mixed injection list to the chain each entry
// targets, by tier-name prefix: "diagnose-*" to the diagnosis chain,
// "reconf-*" to the reconfiguration chain, everything else to the
// augmentation chain. Each chain's Runner still validates that its
// injections name tiers it actually has.
func SplitInjections(inject []Injection) (augment, diagnose, reconfig []Injection) {
	for _, inj := range inject {
		switch {
		case strings.HasPrefix(inj.Tier, DiagnoseTierPrefix):
			diagnose = append(diagnose, inj)
		case strings.HasPrefix(inj.Tier, ReconfigTierPrefix):
			reconfig = append(reconfig, inj)
		default:
			augment = append(augment, inj)
		}
	}
	return augment, diagnose, reconfig
}

// TierSpec describes one tier of a degradation chain.
type TierSpec[T any] struct {
	// Tier is the position in the chain (0 = most exact), recorded in
	// provenance.
	Tier int
	// Name identifies the tier ("exact", "heuristic", "repair") for
	// provenance and fault injection.
	Name string
	// Budget caps the tier's wall-clock time; 0 means no per-tier cap
	// (the caller's context still applies).
	Budget time.Duration
	// Run executes the tier. It must honor ctx cooperatively.
	Run func(ctx context.Context) (T, error)
}

// Attempt records one tier execution for provenance.
type Attempt struct {
	Tier    int           `json:"tier"`
	Name    string        `json:"name"`
	Budget  time.Duration `json:"budget"`
	Elapsed time.Duration `json:"elapsed"`
	Reason  Reason        `json:"reason"`
	// Err is nil for the successful attempt.
	Err error `json:"-"`
	// Error is Err's message, for JSON provenance.
	Error string `json:"error,omitempty"`
	// Injected notes a deterministically injected fault, "" otherwise.
	Injected FaultKind `json:"injected,omitempty"`

	// value holds the tier's result on success.
	value any
}

// Provenance records how an Outcome was produced.
type Provenance struct {
	// Tier and Name identify the tier that produced the result.
	Tier int    `json:"tier"`
	Name string `json:"name"`
	// Budget is the producing tier's budget.
	Budget time.Duration `json:"budget"`
	// Reason is ReasonOK on success; on total failure it is the last
	// attempt's reason.
	Reason Reason `json:"reason"`
	// Degraded is true when any tier before the producing one failed.
	Degraded bool `json:"degraded"`
	// Attempts lists every tier tried, in order.
	Attempts []Attempt `json:"attempts"`
}

// Outcome is a chain result with provenance.
type Outcome[T any] struct {
	Value T
	Provenance
}

// PanicError is a recovered tier panic.
type PanicError struct {
	Tier  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("solve: tier %q panicked: %v", e.Tier, e.Value)
}

// ExhaustedError reports that no tier of a chain produced a result.
// Tiers is the chain length; cancellation may stop the chain with fewer
// attempts than tiers.
type ExhaustedError struct {
	Tiers    int
	Attempts []Attempt
}

func (e *ExhaustedError) Error() string {
	parts := make([]string, 0, len(e.Attempts))
	for _, a := range e.Attempts {
		parts = append(parts, fmt.Sprintf("%s: %s", a.Name, a.Reason))
	}
	return fmt.Sprintf("solve: no tier produced a result, %d of %d attempted (%s)",
		len(e.Attempts), e.Tiers, strings.Join(parts, ", "))
}

// Unwrap exposes the last attempt's error for errors.Is/As.
func (e *ExhaustedError) Unwrap() error {
	if len(e.Attempts) == 0 {
		return nil
	}
	return e.Attempts[len(e.Attempts)-1].Err
}

// Runner executes a degradation chain.
type Runner[T any] struct {
	Tiers []TierSpec[T]
	// Inject lists deterministic faults to force, matched by tier name.
	Inject []Injection
	// InfeasibleErr, if non-nil, is the domain's infeasibility sentinel:
	// tier errors matching it (errors.Is) classify as ReasonInfeasible,
	// and FaultInfeasible injections wrap it.
	InfeasibleErr error
	// OnAttempt, when non-nil, is called after every tier attempt (in
	// chain order, including the final cancellation pseudo-attempt) — the
	// observability hook for chain tier transitions. The attempt's value
	// is not exposed; the callback must not block.
	OnAttempt func(Attempt)
}

// injectionFor returns the injection targeting the named tier, if any.
func (r *Runner[T]) injectionFor(name string) (Injection, bool) {
	for _, inj := range r.Inject {
		if inj.Tier == name {
			return inj, true
		}
	}
	return Injection{}, false
}

// classify maps a tier error to a Reason.
func (r *Runner[T]) classify(err error) Reason {
	switch {
	case err == nil:
		return ReasonOK
	case errors.As(err, new(*PanicError)):
		return ReasonPanic
	case errors.Is(err, context.DeadlineExceeded):
		return ReasonTimeout
	case errors.Is(err, context.Canceled):
		return ReasonCancelled
	case r.InfeasibleErr != nil && errors.Is(err, r.InfeasibleErr):
		return ReasonInfeasible
	default:
		return ReasonError
	}
}

// ErrUnknownInjectionTier reports a fault injection naming a tier that is
// not in the chain (a typo, or "exact" without the exact tier enabled).
// Callers map it to a usage error.
var ErrUnknownInjectionTier = errors.New("solve: injection targets unknown tier")

// errInjectedInfeasible backs FaultInfeasible when the Runner has no
// domain sentinel configured.
var errInjectedInfeasible = errors.New("solve: injected infeasibility")

// Run tries each tier in order until one succeeds. The caller's ctx
// cancels the whole chain: once it is done, no further tier starts and
// Run returns the context's error wrapped in an *ExhaustedError. If every
// tier fails for its own reasons, Run returns an *ExhaustedError listing
// all attempts. Panics inside a tier are recovered into *PanicError and
// treated as that tier's failure.
func (r *Runner[T]) Run(ctx context.Context) (Outcome[T], error) {
	var zero T
	out := Outcome[T]{Value: zero}
	for _, inj := range r.Inject {
		found := false
		for _, tier := range r.Tiers {
			if tier.Name == inj.Tier {
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(r.Tiers))
			for i, tier := range r.Tiers {
				names[i] = tier.Name
			}
			return out, fmt.Errorf("%w: %q (chain has %s)",
				ErrUnknownInjectionTier, inj.Tier, strings.Join(names, ", "))
		}
	}
	for i, tier := range r.Tiers {
		if err := ctx.Err(); err != nil {
			att := Attempt{
				Tier: tier.Tier, Name: tier.Name, Budget: tier.Budget,
				Reason: ReasonCancelled, Err: err, Error: err.Error(),
			}
			out.Attempts = append(out.Attempts, att)
			if r.OnAttempt != nil {
				r.OnAttempt(att)
			}
			break
		}
		att := r.runTier(ctx, tier)
		out.Attempts = append(out.Attempts, att)
		if r.OnAttempt != nil {
			r.OnAttempt(att)
		}
		if att.Err == nil {
			out.Tier = tier.Tier
			out.Name = tier.Name
			out.Budget = tier.Budget
			out.Reason = ReasonOK
			out.Degraded = i > 0
			out.Value = att.value.(T)
			return out, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; trying cheaper tiers is pointless.
			break
		}
	}
	last := out.Attempts[len(out.Attempts)-1]
	out.Tier = last.Tier
	out.Name = last.Name
	out.Budget = last.Budget
	out.Reason = last.Reason
	out.Degraded = len(out.Attempts) > 1
	return out, &ExhaustedError{Tiers: len(r.Tiers), Attempts: out.Attempts}
}

// runTier executes one tier with its budget, injection, and panic
// recovery.
func (r *Runner[T]) runTier(ctx context.Context, tier TierSpec[T]) (att Attempt) {
	att = Attempt{Tier: tier.Tier, Name: tier.Name, Budget: tier.Budget}
	start := time.Now()
	defer func() {
		att.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			att.Err = &PanicError{Tier: tier.Name, Value: p, Stack: debug.Stack()}
		}
		att.Reason = r.classify(att.Err)
		if att.Err != nil {
			att.Error = att.Err.Error()
		}
	}()

	runCtx := ctx
	var cancel context.CancelFunc
	if inj, ok := r.injectionFor(tier.Name); ok {
		att.Injected = inj.Kind
		switch inj.Kind {
		case FaultInfeasible:
			if r.InfeasibleErr != nil {
				att.Err = fmt.Errorf("injected: %w", r.InfeasibleErr)
			} else {
				att.Err = errInjectedInfeasible
			}
			return att
		case FaultPanic:
			// Panic inside the recover scope above: the conversion to
			// *PanicError is the real production path.
			panic(fmt.Sprintf("injected panic at tier %q", tier.Name))
		case FaultTimeout:
			// Pre-expired deadline: the tier's genuine cooperative
			// cancellation path must notice and return promptly.
			runCtx, cancel = context.WithDeadline(ctx, time.Now().Add(-time.Second))
		}
	} else if tier.Budget > 0 {
		runCtx, cancel = context.WithTimeout(ctx, tier.Budget)
	}
	if cancel != nil {
		defer cancel()
	}

	v, err := tier.Run(runCtx)
	if err != nil {
		att.Err = err
		return att
	}
	att.value = v
	return att
}
