package solve

import (
	"context"
	"time"

	"repro/internal/chip"
	"repro/internal/testgen"
)

// ChainConfig tunes AugmentChain.
type ChainConfig struct {
	// Exact enables the tier-0 exact ILP. When false the chain starts at
	// the heuristic tier (the PSO inner loop never pays for the ILP).
	Exact bool
	// ExactBudget, HeuristicBudget, RepairBudget cap each tier's
	// wall-clock time; 0 picks the defaults below.
	ExactBudget     time.Duration
	HeuristicBudget time.Duration
	RepairBudget    time.Duration
	// Options is forwarded to every testgen engine. Options.Workers sizes
	// the branch-and-bound worker pool of the exact tier's ILP solves
	// (0 = all CPU cores).
	Options testgen.Options
	// Inject lists deterministic faults for the chain's Runner.
	Inject []Injection
	// OnAttempt is forwarded to the Runner's per-tier attempt hook.
	OnAttempt func(Attempt)
}

// Default per-tier budgets for AugmentChain.
const (
	DefaultExactBudget     = 30 * time.Second
	DefaultHeuristicBudget = 10 * time.Second
	DefaultRepairBudget    = 5 * time.Second
)

func pick(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

// AugmentChain builds the DFT-augmentation degradation chain for a chip:
// exact ILP (optional) → greedy heuristic → best-effort repair. The
// repair tier records any original edges it could not cover in
// Augmentation.Uncovered rather than failing, so the chain only exhausts
// when even a partial configuration is impossible.
func AugmentChain(c *chip.Chip, cfg ChainConfig) *Runner[*testgen.Augmentation] {
	r := &Runner[*testgen.Augmentation]{
		Inject:        cfg.Inject,
		InfeasibleErr: testgen.ErrInfeasible,
		OnAttempt:     cfg.OnAttempt,
	}
	tier := 0
	if cfg.Exact {
		r.Tiers = append(r.Tiers, TierSpec[*testgen.Augmentation]{
			Tier: tier, Name: "exact", Budget: pick(cfg.ExactBudget, DefaultExactBudget),
			Run: func(ctx context.Context) (*testgen.Augmentation, error) {
				return testgen.AugmentILPCtx(ctx, c, cfg.Options)
			},
		})
		tier++
	}
	r.Tiers = append(r.Tiers, TierSpec[*testgen.Augmentation]{
		Tier: tier, Name: "heuristic", Budget: pick(cfg.HeuristicBudget, DefaultHeuristicBudget),
		Run: func(ctx context.Context) (*testgen.Augmentation, error) {
			return testgen.AugmentHeuristicCtx(ctx, c, cfg.Options)
		},
	})
	tier++
	r.Tiers = append(r.Tiers, TierSpec[*testgen.Augmentation]{
		Tier: tier, Name: "repair", Budget: pick(cfg.RepairBudget, DefaultRepairBudget),
		Run: func(ctx context.Context) (*testgen.Augmentation, error) {
			return testgen.AugmentRepair(ctx, c, cfg.Options)
		},
	})
	return r
}
