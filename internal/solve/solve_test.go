package solve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chip"
)

func ok(v int) TierSpec[int] {
	return TierSpec[int]{Tier: 0, Name: "exact", Run: func(ctx context.Context) (int, error) { return v, nil }}
}

func named(name string, tier int, run func(ctx context.Context) (int, error)) TierSpec[int] {
	return TierSpec[int]{Tier: tier, Name: name, Run: run}
}

func TestRunnerFirstTierSucceeds(t *testing.T) {
	r := &Runner[int]{Tiers: []TierSpec[int]{ok(42)}}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 42 || out.Degraded || out.Name != "exact" || out.Tier != 0 {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
	if len(out.Attempts) != 1 || out.Attempts[0].Reason != ReasonOK {
		t.Fatalf("bad attempts: %+v", out.Attempts)
	}
}

func TestRunnerFallsBackOnError(t *testing.T) {
	boom := errors.New("boom")
	r := &Runner[int]{Tiers: []TierSpec[int]{
		named("exact", 0, func(ctx context.Context) (int, error) { return 0, boom }),
		named("heuristic", 1, func(ctx context.Context) (int, error) { return 7, nil }),
	}}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 7 || !out.Degraded || out.Name != "heuristic" || out.Tier != 1 {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
	if len(out.Attempts) != 2 || out.Attempts[0].Reason != ReasonError {
		t.Fatalf("bad attempts: %+v", out.Attempts)
	}
}

func TestRunnerInjectedTimeoutUsesRealCancellationPath(t *testing.T) {
	sawExpired := false
	r := &Runner[int]{
		Inject: []Injection{{Tier: "exact", Kind: FaultTimeout}},
		Tiers: []TierSpec[int]{
			named("exact", 0, func(ctx context.Context) (int, error) {
				// The tier must see an already-expired deadline.
				if err := ctx.Err(); err != nil {
					sawExpired = true
					return 0, fmt.Errorf("solver stopped: %w", err)
				}
				return 1, nil
			}),
			named("heuristic", 1, func(ctx context.Context) (int, error) { return 2, nil }),
		},
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sawExpired {
		t.Fatal("injected timeout did not expire the tier's context")
	}
	if out.Value != 2 || !out.Degraded {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
	a := out.Attempts[0]
	if a.Reason != ReasonTimeout || a.Injected != FaultTimeout {
		t.Fatalf("bad attempt: %+v", a)
	}
}

func TestRunnerInjectedPanicIsRecovered(t *testing.T) {
	r := &Runner[int]{
		Inject: []Injection{{Tier: "exact", Kind: FaultPanic}},
		Tiers: []TierSpec[int]{
			named("exact", 0, func(ctx context.Context) (int, error) { return 1, nil }),
			named("heuristic", 1, func(ctx context.Context) (int, error) { return 2, nil }),
		},
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 2 || !out.Degraded {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
	a := out.Attempts[0]
	if a.Reason != ReasonPanic {
		t.Fatalf("bad reason: %+v", a)
	}
	var pe *PanicError
	if !errors.As(a.Err, &pe) || pe.Tier != "exact" || len(pe.Stack) == 0 {
		t.Fatalf("bad panic error: %+v", a.Err)
	}
}

func TestRunnerRealPanicIsRecovered(t *testing.T) {
	r := &Runner[int]{Tiers: []TierSpec[int]{
		named("exact", 0, func(ctx context.Context) (int, error) { panic("kaboom") }),
		named("heuristic", 1, func(ctx context.Context) (int, error) { return 2, nil }),
	}}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 2 || out.Attempts[0].Reason != ReasonPanic {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
}

func TestRunnerInjectedInfeasible(t *testing.T) {
	sentinel := errors.New("domain infeasible")
	ran := false
	r := &Runner[int]{
		InfeasibleErr: sentinel,
		Inject:        []Injection{{Tier: "exact", Kind: FaultInfeasible}},
		Tiers: []TierSpec[int]{
			named("exact", 0, func(ctx context.Context) (int, error) { ran = true; return 1, nil }),
			named("heuristic", 1, func(ctx context.Context) (int, error) { return 2, nil }),
		},
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("FaultInfeasible must not run the tier")
	}
	a := out.Attempts[0]
	if a.Reason != ReasonInfeasible || !errors.Is(a.Err, sentinel) {
		t.Fatalf("bad attempt: %v %v", a.Reason, a.Err)
	}
}

func TestRunnerAllTiersFail(t *testing.T) {
	boom := errors.New("boom")
	r := &Runner[int]{Tiers: []TierSpec[int]{
		named("exact", 0, func(ctx context.Context) (int, error) { return 0, boom }),
		named("heuristic", 1, func(ctx context.Context) (int, error) { panic("dead") }),
	}}
	out, err := r.Run(context.Background())
	var ex *ExhaustedError
	if !errors.As(err, &ex) || len(ex.Attempts) != 2 {
		t.Fatalf("want ExhaustedError with 2 attempts, got %v", err)
	}
	if out.Reason != ReasonPanic || !out.Degraded {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
}

func TestRunnerCallerCancellationStopsChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	r := &Runner[int]{Tiers: []TierSpec[int]{
		named("exact", 0, func(ctx context.Context) (int, error) { ran++; return 1, nil }),
		named("heuristic", 1, func(ctx context.Context) (int, error) { ran++; return 2, nil }),
	}}
	_, err := r.Run(ctx)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("no tier should run under a dead context, ran=%d", ran)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error chain should expose context.Canceled: %v", err)
	}
	if len(ex.Attempts) != 1 || ex.Attempts[0].Reason != ReasonCancelled {
		t.Fatalf("bad attempts: %+v", ex.Attempts)
	}
}

func TestRunnerMidChainCancellationSkipsCheaperTiers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	r := &Runner[int]{Tiers: []TierSpec[int]{
		named("exact", 0, func(ctx context.Context) (int, error) {
			cancel() // the user hits Ctrl-C while tier 0 runs
			return 0, fmt.Errorf("stopped: %w", ctx.Err())
		}),
		named("heuristic", 1, func(ctx context.Context) (int, error) { ran++; return 2, nil }),
	}}
	_, err := r.Run(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if ran != 0 {
		t.Fatal("cheaper tier must not run after caller cancellation")
	}
}

func TestRunnerBudgetExpires(t *testing.T) {
	r := &Runner[int]{Tiers: []TierSpec[int]{
		{Tier: 0, Name: "slow", Budget: 5 * time.Millisecond,
			Run: func(ctx context.Context) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			}},
		named("fast", 1, func(ctx context.Context) (int, error) { return 9, nil }),
	}}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 9 || out.Attempts[0].Reason != ReasonTimeout {
		t.Fatalf("bad outcome: %+v", out.Provenance)
	}
}

func TestParseInjections(t *testing.T) {
	inj, err := ParseInjections(" exact:timeout, heuristic:panic ,repair:infeasible")
	if err != nil {
		t.Fatal(err)
	}
	want := []Injection{
		{Tier: "exact", Kind: FaultTimeout},
		{Tier: "heuristic", Kind: FaultPanic},
		{Tier: "repair", Kind: FaultInfeasible},
	}
	if len(inj) != len(want) {
		t.Fatalf("got %+v", inj)
	}
	for i := range want {
		if inj[i] != want[i] {
			t.Fatalf("got %+v want %+v", inj[i], want[i])
		}
	}
	if _, err := ParseInjections("exact"); err == nil {
		t.Fatal("want error for missing kind")
	}
	if _, err := ParseInjections("exact:fire"); err == nil {
		t.Fatal("want error for bad kind")
	}
	if inj, err := ParseInjections("  "); err != nil || inj != nil {
		t.Fatalf("blank spec should be empty, got %v %v", inj, err)
	}
}

// TestAugmentChainDegradation walks the real chain on a benchmark chip
// through every tier.
func TestAugmentChainDegradation(t *testing.T) {
	c := chip.IVD()

	t.Run("exact-succeeds", func(t *testing.T) {
		out, err := AugmentChain(c, ChainConfig{Exact: true}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if out.Degraded || out.Name != "exact" || out.Value.Method != "ilp" {
			t.Fatalf("bad outcome: %+v method=%q", out.Provenance, out.Value.Method)
		}
	})

	t.Run("timeout-to-heuristic", func(t *testing.T) {
		out, err := AugmentChain(c, ChainConfig{
			Exact:  true,
			Inject: []Injection{{Tier: "exact", Kind: FaultTimeout}},
		}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Degraded || out.Name != "heuristic" || out.Value.Method != "heuristic" {
			t.Fatalf("bad outcome: %+v method=%q", out.Provenance, out.Value.Method)
		}
		if out.Attempts[0].Reason != ReasonTimeout {
			t.Fatalf("tier 0 should have timed out: %+v", out.Attempts[0])
		}
	})

	t.Run("panic-to-repair", func(t *testing.T) {
		out, err := AugmentChain(c, ChainConfig{
			Exact: true,
			Inject: []Injection{
				{Tier: "exact", Kind: FaultTimeout},
				{Tier: "heuristic", Kind: FaultPanic},
			},
		}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Degraded || out.Name != "repair" || out.Value.Method != "repair" {
			t.Fatalf("bad outcome: %+v method=%q", out.Provenance, out.Value.Method)
		}
		if out.Attempts[1].Reason != ReasonPanic {
			t.Fatalf("tier 1 should have panicked: %+v", out.Attempts[1])
		}
		// IVD is fully routable: even the repair tier covers everything.
		if len(out.Value.Uncovered) != 0 {
			t.Fatalf("repair left %d edges uncovered on IVD", len(out.Value.Uncovered))
		}
	})

	t.Run("repair-partial-under-timeout", func(t *testing.T) {
		out, err := AugmentChain(c, ChainConfig{
			Exact: true,
			Inject: []Injection{
				{Tier: "exact", Kind: FaultInfeasible},
				{Tier: "heuristic", Kind: FaultPanic},
				{Tier: "repair", Kind: FaultTimeout},
			},
		}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// The repair tier never fails on timeout: it returns a partial
		// configuration with the remaining targets recorded.
		if out.Name != "repair" || len(out.Value.Uncovered) == 0 {
			t.Fatalf("want partial repair result, got %+v uncovered=%d", out.Provenance, len(out.Value.Uncovered))
		}
		if out.Attempts[0].Reason != ReasonInfeasible {
			t.Fatalf("tier 0 should be infeasible: %+v", out.Attempts[0])
		}
	})
}

func TestRunRejectsUnknownInjectionTier(t *testing.T) {
	r := &Runner[int]{
		Tiers: []TierSpec[int]{
			{Tier: 0, Name: "heuristic", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		},
		Inject: []Injection{{Tier: "exact", Kind: FaultTimeout}},
	}
	_, err := r.Run(context.Background())
	if !errors.Is(err, ErrUnknownInjectionTier) {
		t.Fatalf("err = %v, want ErrUnknownInjectionTier", err)
	}
}
