// Package control synthesizes and analyzes the control layer of a
// continuous-flow biochip: the air channels that actuate each microvalve
// from off-chip control ports. The paper's valve-sharing scheme claims "no
// additional control ports are required"; this package quantifies that
// claim by actually routing the control channels — one boundary control
// port and one channel tree per control line — and reporting channel
// length, actuation delay (the concern of ref. [12]) and the skew between
// valves that share a line (the length-matching concern of ref. [14]).
//
// The control layer lives on its own routing grid of the same dimensions
// as the flow layer (the two layers are separate PDMS levels; a valve
// forms where a control channel crosses above its flow channel). Control
// channels of different lines must not overlap; they may touch at nodes
// (cross in separate sub-layers).
package control

import (
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/grid"
)

// Params tunes the synthesis.
type Params struct {
	// DelayPerEdge is the pressure-propagation delay per control channel
	// segment, in microseconds (default 5).
	DelayPerEdge int
	// PortTries bounds how many candidate boundary ports are tried per
	// line before reporting it unroutable (default 8).
	PortTries int
}

func (p Params) withDefaults() Params {
	if p.DelayPerEdge <= 0 {
		p.DelayPerEdge = 5
	}
	if p.PortTries <= 0 {
		p.PortTries = 8
	}
	return p
}

// LineRoute is the synthesized control tree of one control line.
type LineRoute struct {
	Line     int
	PortNode int   // boundary node carrying the external control port
	Edges    []int // control-grid edges of the routed tree
	// Valves lists the actuated valves with their terminal nodes and
	// delays.
	Valves []ValveTap
}

// ValveTap is one valve actuated by a line.
type ValveTap struct {
	Valve    int
	Terminal int // control-grid node above the valve's flow segment
	Delay    int // port-to-valve pressure propagation delay
}

// Layer is a synthesized control layer. GridW/GridH are the dimensions of
// the control routing grid (twice the flow pitch).
type Layer struct {
	Routes     []LineRoute
	Unroutable []int // control lines that could not be routed
	GridW      int
	GridH      int
	params     Params
}

// PortOnBoundary reports whether a node lies on the control grid boundary.
func (l *Layer) PortOnBoundary(node int) bool {
	x, y := node%l.GridW, node/l.GridW
	return x == 0 || y == 0 || x == l.GridW-1 || y == l.GridH-1
}

// Stats summarizes a layer for reports and experiments.
type Stats struct {
	Lines         int
	Ports         int
	TotalLength   int // total control channel segments
	MaxDelay      int
	MaxSkew       int // worst delay difference within a shared line
	UnroutedLines int
}

// Stats computes summary statistics.
func (l *Layer) Stats() Stats {
	s := Stats{Lines: len(l.Routes) + len(l.Unroutable), Ports: len(l.Routes), UnroutedLines: len(l.Unroutable)}
	for _, r := range l.Routes {
		s.TotalLength += len(r.Edges)
		lo, hi := -1, -1
		for _, t := range r.Valves {
			if t.Delay > s.MaxDelay {
				s.MaxDelay = t.Delay
			}
			if lo < 0 || t.Delay < lo {
				lo = t.Delay
			}
			if t.Delay > hi {
				hi = t.Delay
			}
		}
		if len(r.Valves) > 1 && hi-lo > s.MaxSkew {
			s.MaxSkew = hi - lo
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("control layer: %d lines on %d ports, %d segments, max delay %d, max skew %d, %d unrouted",
		s.Lines, s.Ports, s.TotalLength, s.MaxDelay, s.MaxSkew, s.UnroutedLines)
}

// Synthesize routes the control layer for a chip under a control
// assignment. Lines with more taps (shared lines) are routed first; each
// line gets the nearest free boundary port and a BFS-grown tree reaching
// every valve it actuates. An error is returned only for structural
// impossibilities; lines that simply cannot be routed in the remaining
// space are reported in Layer.Unroutable.
func Synthesize(c *chip.Chip, ctrl *chip.Control, params Params) (*Layer, error) {
	if ctrl.Chip() != c {
		return nil, fmt.Errorf("control: assignment belongs to a different chip")
	}
	params = params.withDefaults()
	// The control layer is routed at twice the flow-layer pitch (control
	// channels are much thinner than flow channels), which gives the
	// router room for the one-tree-per-line wiring.
	cw, ch := 2*c.Grid.W-1, 2*c.Grid.H-1
	g := grid.New(cw, ch)
	layer := &Layer{params: params, GridW: cw, GridH: ch}

	// Group valves by line; the terminal of a valve sits directly above
	// the midpoint of its flow segment (where the membrane forms).
	taps := map[int][]ValveTap{}
	for _, v := range c.Valves() {
		u, w := c.Grid.Graph().Endpoints(v.Edge)
		cu, cwd := c.Grid.CoordOf(u), c.Grid.CoordOf(w)
		mid := grid.Coord{X: cu.X + cwd.X, Y: cu.Y + cwd.Y} // doubled coords: midpoint
		term := g.NodeAt(mid)
		line := ctrl.LineOf(v.ID)
		taps[line] = append(taps[line], ValveTap{Valve: v.ID, Terminal: term})
	}
	lines := make([]int, 0, len(taps))
	for l := range taps {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool {
		if len(taps[lines[i]]) != len(taps[lines[j]]) {
			return len(taps[lines[i]]) > len(taps[lines[j]])
		}
		return lines[i] < lines[j]
	})

	occupied := make([]int, g.NumEdges()) // edge -> line+1, 0 free
	portUsed := map[int]bool{}

	for _, line := range lines {
		route, ok := routeLine(g, line, taps[line], occupied, portUsed, params)
		if !ok {
			layer.Unroutable = append(layer.Unroutable, line)
			continue
		}
		for _, e := range route.Edges {
			occupied[e] = line + 1
		}
		portUsed[route.PortNode] = true
		layer.Routes = append(layer.Routes, route)
	}
	sort.Slice(layer.Routes, func(i, j int) bool { return layer.Routes[i].Line < layer.Routes[j].Line })
	sort.Ints(layer.Unroutable)
	return layer, nil
}

// routeLine grows a tree from a boundary port to every terminal of a line.
func routeLine(g *grid.Grid, line int, valveTaps []ValveTap, occupied []int, portUsed map[int]bool, params Params) (LineRoute, bool) {
	gg := g.Graph()
	free := func(e int) bool { return occupied[e] == 0 }

	// Candidate boundary ports, nearest to the first terminal first.
	first := valveTaps[0].Terminal
	type cand struct {
		node, dist int
	}
	var cands []cand
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			c := grid.Coord{X: x, Y: y}
			if !g.OnBoundary(c) {
				continue
			}
			n := g.NodeAt(c)
			if portUsed[n] {
				continue
			}
			cands = append(cands, cand{n, grid.Manhattan(c, g.CoordOf(first))})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].node < cands[j].node
	})
	tries := params.PortTries
	if tries > len(cands) {
		tries = len(cands)
	}

	for t := 0; t < tries; t++ {
		port := cands[t].node
		treeNodes := map[int]bool{port: true}
		var treeEdges []int
		ok := true
		// Connect terminals one at a time, each via the nearest tree node
		// (a BFS Steiner heuristic).
		for _, tap := range valveTaps {
			if treeNodes[tap.Terminal] {
				continue
			}
			edges, found := connectToTree(gg, treeNodes, tap.Terminal, func(e int) bool {
				return free(e) || containsEdge(treeEdges, e)
			})
			if !found {
				ok = false
				break
			}
			for _, e := range edges {
				if !containsEdge(treeEdges, e) {
					treeEdges = append(treeEdges, e)
				}
				u, v := gg.Endpoints(e)
				treeNodes[u] = true
				treeNodes[v] = true
			}
		}
		if !ok {
			continue
		}
		// Delays: BFS over the tree from the port.
		route := LineRoute{Line: line, PortNode: port, Edges: treeEdges}
		inTree := map[int]bool{}
		for _, e := range treeEdges {
			inTree[e] = true
		}
		dist := gg.BFSFrom(port, func(e int) bool { return inTree[e] })
		for _, tap := range valveTaps {
			d := dist[tap.Terminal]
			if d < 0 {
				ok = false
				break
			}
			tap.Delay = d * params.DelayPerEdge
			route.Valves = append(route.Valves, tap)
		}
		if !ok {
			continue
		}
		return route, true
	}
	return LineRoute{}, false
}

// connectToTree finds the shortest path from any tree node to target over
// allowed edges.
func connectToTree(gg interface {
	BFSFrom(int, func(int) bool) []int
	ShortestPath(int, int, func(int) bool) ([]int, []int, bool)
}, treeNodes map[int]bool, target int, allow func(int) bool) ([]int, bool) {
	bestLen := -1
	var best []int
	for n := range treeNodes {
		_, edges, ok := gg.ShortestPath(n, target, allow)
		if !ok {
			continue
		}
		if bestLen < 0 || len(edges) < bestLen {
			bestLen = len(edges)
			best = edges
		}
	}
	return best, bestLen >= 0
}

func containsEdge(s []int, e int) bool {
	for _, v := range s {
		if v == e {
			return true
		}
	}
	return false
}

// CompareSharingOverhead synthesizes the control layer twice — once with
// the given sharing assignment and once with independent control — and
// returns both stats. This quantifies the paper's "no additional control
// ports" claim: sharing keeps the port count at the original valve count,
// while independent control needs one extra port and channel per DFT
// valve.
func CompareSharingOverhead(c *chip.Chip, shared *chip.Control, params Params) (sharedStats, indepStats Stats, err error) {
	sl, err := Synthesize(c, shared, params)
	if err != nil {
		return Stats{}, Stats{}, err
	}
	il, err := Synthesize(c, chip.IndependentControl(c), params)
	if err != nil {
		return Stats{}, Stats{}, err
	}
	return sl.Stats(), il.Stats(), nil
}
