package control

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/testgen"
)

func TestSynthesizeIndependentIVD(t *testing.T) {
	c := chip.IVD()
	layer, err := Synthesize(c, chip.IndependentControl(c), Params{})
	if err != nil {
		t.Fatal(err)
	}
	s := layer.Stats()
	if s.UnroutedLines != 0 {
		t.Fatalf("%d unrouted lines on the IVD chip: %v", s.UnroutedLines, layer.Unroutable)
	}
	if s.Lines != c.NumValves() {
		t.Fatalf("lines = %d, want %d", s.Lines, c.NumValves())
	}
	if s.Ports != c.NumValves() {
		t.Fatalf("ports = %d, want one per line", s.Ports)
	}
	if s.MaxSkew != 0 {
		t.Fatalf("independent lines have one tap each; skew must be 0, got %d", s.MaxSkew)
	}
	if s.TotalLength == 0 || s.MaxDelay == 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
}

func TestRoutesDoNotOverlap(t *testing.T) {
	c := chip.RA30()
	layer, err := Synthesize(c, chip.IndependentControl(c), Params{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, r := range layer.Routes {
		for _, e := range r.Edges {
			if prev, ok := seen[e]; ok && prev != r.Line {
				t.Fatalf("edge %d used by lines %d and %d", e, prev, r.Line)
			}
			seen[e] = r.Line
		}
	}
}

func TestPortsAreUniqueBoundaryNodes(t *testing.T) {
	c := chip.IVD()
	layer, err := Synthesize(c, chip.IndependentControl(c), Params{})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, r := range layer.Routes {
		if used[r.PortNode] {
			t.Fatalf("port node %d reused", r.PortNode)
		}
		used[r.PortNode] = true
		if !layer.PortOnBoundary(r.PortNode) {
			t.Fatalf("port node %d not on control-grid boundary", r.PortNode)
		}
	}
}

func TestEveryValveTapped(t *testing.T) {
	c := chip.MRNA()
	layer, err := Synthesize(c, chip.IndependentControl(c), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(layer.Unroutable) > 0 {
		t.Skipf("mRNA congestion left %d lines unrouted (acceptable)", len(layer.Unroutable))
	}
	tapped := map[int]bool{}
	for _, r := range layer.Routes {
		for _, tap := range r.Valves {
			tapped[tap.Valve] = true
			if tap.Delay < 0 {
				t.Fatalf("valve %d has negative delay", tap.Valve)
			}
		}
	}
	for v := 0; v < c.NumValves(); v++ {
		if !tapped[v] {
			t.Fatalf("valve %d has no control tap", v)
		}
	}
}

func TestSharingSavesPortsOnDFTChip(t *testing.T) {
	c := chip.IVD()
	aug, err := testgen.AugmentHeuristic(c, testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	partners := make([]int, aug.Chip.NumDFTValves())
	for i := range partners {
		partners[i] = i
	}
	ctrl, err := chip.SharedControl(aug.Chip, partners)
	if err != nil {
		t.Fatal(err)
	}
	sharedStats, indepStats, err := CompareSharingOverhead(aug.Chip, ctrl, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sharedStats.UnroutedLines > 0 || indepStats.UnroutedLines > 0 {
		t.Skip("congestion; port comparison not meaningful")
	}
	if sharedStats.Ports != aug.Chip.NumOriginalValves() {
		t.Fatalf("shared control needs %d ports, want %d (the original count)",
			sharedStats.Ports, aug.Chip.NumOriginalValves())
	}
	if indepStats.Ports != aug.Chip.NumValves() {
		t.Fatalf("independent control needs %d ports, want %d", indepStats.Ports, aug.Chip.NumValves())
	}
	if indepStats.Ports <= sharedStats.Ports {
		t.Fatal("sharing must save control ports")
	}
	// Shared lines reach two valves, so skew becomes visible.
	if sharedStats.MaxSkew < 0 {
		t.Fatal("negative skew")
	}
}

func TestStatsString(t *testing.T) {
	c := chip.IVD()
	layer, err := Synthesize(c, chip.IndependentControl(c), Params{})
	if err != nil {
		t.Fatal(err)
	}
	s := layer.Stats().String()
	if !strings.Contains(s, "control layer") || !strings.Contains(s, "lines") {
		t.Fatalf("Stats.String = %q", s)
	}
}

func TestWrongChipRejected(t *testing.T) {
	a, b := chip.IVD(), chip.IVD()
	if _, err := Synthesize(a, chip.IndependentControl(b), Params{}); err == nil {
		t.Fatal("control assignment for another chip must be rejected")
	}
}

func TestDelayScalesWithParams(t *testing.T) {
	c := chip.IVD()
	l1, err := Synthesize(c, chip.IndependentControl(c), Params{DelayPerEdge: 1})
	if err != nil {
		t.Fatal(err)
	}
	l10, err := Synthesize(c, chip.IndependentControl(c), Params{DelayPerEdge: 10})
	if err != nil {
		t.Fatal(err)
	}
	if l10.Stats().MaxDelay != 10*l1.Stats().MaxDelay {
		t.Fatalf("delay scaling broken: %d vs %d", l10.Stats().MaxDelay, l1.Stats().MaxDelay)
	}
}
