package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/solve"
)

// ReconfigSummary aggregates the test-around-fault reconfiguration
// campaign: for every diagnosed suspect set (deduplicated by the valve
// bans it implies), whether the assay still completes with the suspects
// banned, at what execution-time penalty, and through which tier of the
// reconf-strict → reconf-reroute → reconf-relaxed chain.
type ReconfigSummary struct {
	// SuspectSets is the number of diagnosed suspect sets fed in;
	// Groups is the number of distinct ban groups after deduplication.
	SuspectSets int
	Groups      int
	// Feasible counts groups with a validated fault-avoiding schedule;
	// Infeasible counts typed infeasibilities (errors.Is ErrInfeasible);
	// Failed counts anything else (only possible under injected faults
	// at every tier).
	Feasible   int
	Infeasible int
	Failed     int
	// Relaxed counts feasible groups that needed the last-resort tier
	// (stuck-open seal requirement waived).
	Relaxed int
	// Degraded counts feasible groups produced below the strict tier.
	Degraded int
	// Baseline is the fault-free makespan the penalties are relative to.
	Baseline int
	// MaxPenalty and MeanPenalty summarize the execution-time penalties
	// over the feasible groups.
	MaxPenalty  int
	MeanPenalty float64
	// Entries is the full per-group detail, in first-seen order.
	Entries []diagnose.SetReconfig
}

// runReconfigureStage reschedules the assay around every diagnosed
// suspect set through the reconfiguration chain. It consumes
// Result.Diagnosis, so it skips gracefully (Result.Reconfiguration stays
// nil) when diagnosis was itself skipped or when the context has died.
func (f *flow) runReconfigureStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)
	obs := f.observer()
	res := f.final.Get()

	skip := func() error {
		st.Count("reconf_skipped", 1)
		res.Interrupted = true
		return nil
	}
	if ctx.Err() != nil || res.Diagnosis == nil {
		return skip()
	}

	sets := make([][]fault.Fault, 0, len(res.Diagnosis.Entries))
	for _, d := range res.Diagnosis.Entries {
		if d.Result != nil && len(d.Result.Suspects) > 0 {
			sets = append(sets, d.Result.Suspects)
		}
	}
	r := &diagnose.Reconfigurer{
		Chip:    res.Aug.Chip,
		Ctrl:    res.Control,
		Assay:   f.graph,
		Params:  f.opts.Sched,
		Inject:  f.reconfInject,
		Metrics: f.schedMetrics,
		OnAttempt: func(att solve.Attempt) {
			st.Count("reconf_chain_attempts", 1)
			obs.ChainAttempt(st.Name, att.Tier, att.Name, string(att.Reason), att.Elapsed)
		},
	}
	groups, err := r.Campaign(ctx, sets, f.opts.Workers)
	if err != nil {
		if ctx.Err() != nil {
			return skip()
		}
		return fmt.Errorf("core: reconfiguration campaign failed on %s: %w", res.Aug.Chip.Name, err)
	}

	sum := &ReconfigSummary{
		SuspectSets: len(sets),
		Groups:      len(groups),
		Entries:     groups,
	}
	totPenalty := 0
	for _, g := range groups {
		switch {
		case g.Err == nil && g.Reconfig != nil:
			sum.Feasible++
			if g.Reconfig.Relaxed {
				sum.Relaxed++
			}
			if g.Provenance.Degraded {
				sum.Degraded++
			}
			sum.Baseline = g.Reconfig.Baseline
			totPenalty += g.Reconfig.Penalty
			if g.Reconfig.Penalty > sum.MaxPenalty {
				sum.MaxPenalty = g.Reconfig.Penalty
			}
		case errors.Is(g.Err, diagnose.ErrInfeasible):
			sum.Infeasible++
		default:
			sum.Failed++
		}
	}
	if sum.Feasible > 0 {
		sum.MeanPenalty = float64(totPenalty) / float64(sum.Feasible)
	}

	st.Count("reconf_sets", int64(sum.SuspectSets))
	st.Count("reconf_groups", int64(sum.Groups))
	st.Count("reconf_feasible", int64(sum.Feasible))
	st.Count("reconf_infeasible", int64(sum.Infeasible))
	st.Count("reconf_failed", int64(sum.Failed))
	st.Count("reconf_relaxed", int64(sum.Relaxed))
	st.Count("reconf_degraded", int64(sum.Degraded))
	st.Count("reconf_max_penalty", int64(sum.MaxPenalty))
	res.Reconfiguration = sum
	return nil
}
