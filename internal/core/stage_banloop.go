package core

import (
	"context"

	"repro/internal/flowstage"
)

// runBanLoopStage diversifies configurations ("ban loop"): whenever a
// configuration admits no valid sharing at all, its added edges are
// penalized heavily and the augmentation re-solved, forcing the next DFT
// channels somewhere structurally different. This seeds the outer PSO
// with genuinely distinct configurations — the heuristic's weight
// response is quantized, so random particle positions alone explore only
// a handful. The stage never fails: it only warms the evaluation caches.
func (f *flow) runBanLoopStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)

	refAug := f.chainOut.Get().Value
	banWeights := make([]float64, f.orig.Grid.NumEdges())
	for round := 0; round < 2*len(refAug.AddedEdges)+8; round++ {
		aug, err := f.augment(banWeights)
		if err != nil {
			break
		}
		st.Count("ban_rounds", 1)
		ev := f.evalAug(aug)
		if f.bestSharingFitness(ev) < validThreshold {
			break
		}
		st.Count("banned_configs", 1)
		for _, e := range ev.aug.AddedEdges {
			banWeights[e] += 16
		}
	}
	return nil
}
