package core

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// StageArtifact is the synthesized stage name a cache-served (or
// cache-stored) run reports in Result.Stats: art_mem_hits / art_disk_hits
// mark a hit tier, art_miss + art_store mark a solved-and-stored run.
const StageArtifact = "artifact"

// resultSchema versions the canonical Result encoding; a mismatch reads
// as a miss, never as a decode of stale semantics.
const resultSchema = 1

// Cache is the content-addressed artifact cache the flow and suite
// entrypoints consult: a memory-bounded tier of canonical encodings plus
// an optional cross-run disk tier (CacheConfig.Dir). Values are payload
// bytes in the canonical codec — every hit decodes a fresh copy, so
// callers never share mutable results — and keys are artifact digests,
// so identical submissions cost one solve.
//
// The hit/miss counters are deterministic for any worker count because
// batch deduplication happens before jobs reach a worker pool
// (RunBatch) and each unique digest performs exactly one lookup and at
// most one store.
type Cache struct {
	mem   *artifact.Cache[[]byte]
	store *artifact.Store

	memHits  atomic.Int64
	diskHits atomic.Int64
	misses   atomic.Int64
	stores   atomic.Int64
}

// CacheConfig configures NewCache.
type CacheConfig struct {
	// Dir enables the cross-run disk tier rooted there ("" = memory only).
	Dir string
	// BudgetBytes bounds the memory tier (0 = DefaultCacheBudget).
	BudgetBytes int64
}

// DefaultCacheBudget is the memory tier's byte budget when unset.
const DefaultCacheBudget int64 = 256 << 20

// CacheMetrics is a point-in-time snapshot of cache traffic.
type CacheMetrics struct {
	MemHits  int64                `json:"mem_hits"`
	DiskHits int64                `json:"disk_hits"`
	Misses   int64                `json:"misses"`
	Stores   int64                `json:"stores"`
	Mem      artifact.CacheStats  `json:"mem"`
	Disk     *artifact.StoreStats `json:"disk,omitempty"`
}

// NewCache builds an artifact cache. With a Dir the disk tier is opened
// (created if missing); errors only come from that.
func NewCache(cfg CacheConfig) (*Cache, error) {
	budget := cfg.BudgetBytes
	if budget == 0 {
		budget = DefaultCacheBudget
	}
	c := &Cache{
		mem: artifact.NewCache[[]byte](budget, func(b []byte) int64 { return int64(len(b)) }),
	}
	if cfg.Dir != "" {
		store, err := artifact.OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.store = store
	}
	return c, nil
}

// Store exposes the disk tier (nil when memory-only) so sibling engines
// (template persistence) can share it.
func (c *Cache) Store() *artifact.Store { return c.store }

// Trim advances the memory tier's recency epoch and evicts to budget.
// Call from serial points only (between runs, after a batch fan-in).
func (c *Cache) Trim() { c.mem.AdvanceEpoch() }

// Metrics snapshots the counters.
func (c *Cache) Metrics() CacheMetrics {
	m := CacheMetrics{
		MemHits:  c.memHits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Stores:   c.stores.Load(),
		Mem:      c.mem.Stats(),
	}
	if c.store != nil {
		ds := c.store.Stats()
		m.Disk = &ds
	}
	return m
}

// lookup returns the canonical payload for (kind, digest) and the tier
// that served it ("mem" or "disk"), or (nil, "") on a miss. Disk hits
// populate the memory tier.
func (c *Cache) lookup(kind string, d artifact.Digest) ([]byte, string) {
	key := kind + ":" + d.Hex()
	if b, ok := c.mem.Get(key); ok {
		c.memHits.Add(1)
		return b, "mem"
	}
	if c.store != nil {
		if b, ok := c.store.Get(kind, d); ok {
			c.diskHits.Add(1)
			c.mem.Do(key, func() []byte { return b })
			return b, "disk"
		}
	}
	c.misses.Add(1)
	return nil, ""
}

// add stores the canonical payload in both tiers. Disk failures are
// swallowed: the store is an accelerator, never the source of truth.
func (c *Cache) add(kind string, d artifact.Digest, payload []byte) {
	key := kind + ":" + d.Hex()
	c.mem.Do(key, func() []byte { return payload })
	if c.store != nil {
		_ = c.store.Put(kind, d, payload)
	}
	c.stores.Add(1)
}

// flowCacheable reports whether a flow's options describe a pure
// (chip, assay, options) → Result function the cache may serve:
// injection drills, optional diagnosis/reconfiguration stages, and the
// bench A/B baseline modes are excluded (they must actually run).
func flowCacheable(opts Options) bool {
	return len(opts.Inject) == 0 && !opts.Diagnose && !opts.Reconfigure &&
		!opts.PSOBaseline && !opts.PSORecompute && !opts.SchedBaseline
}

// flowDigest is the content address of a flow submission. Semantic
// inputs only: Workers, Observer, Cache, MemoBytes and the baseline
// flags never change the Result (worker-count invariance is the
// engines' defining property), so they are excluded — two submissions
// differing only in execution knobs share one solve.
func flowDigest(c *chip.Chip, g *assay.Graph, opts Options) artifact.Digest {
	h := artifact.NewHasher("flow")
	h.Digest(artifact.HashChip(c))
	h.Digest(artifact.HashAssay(g))
	outer, inner := opts.Outer, opts.Inner
	outer.Seed, inner.Seed = 0, 0 // the flow overrides PSO seeds with opts.Seed
	h.Digest(artifact.HashPSOConfig(outer))
	h.Digest(artifact.HashPSOConfig(inner))
	h.Digest(artifact.HashSchedParams(opts.Sched))
	h.Bool(opts.UseILP)
	h.Int(opts.Seed)
	h.Int(int64(opts.ExactBudget))
	return h.Sum()
}

// resultDisk is the canonical Result encoding: the semantic payload of a
// finalized flow, without wall-clock noise (runtimes, stage stats,
// per-attempt solver timings). It doubles as the bit-identity envelope —
// cached-vs-recomputed equality is byte equality of this encoding — and
// as the disk schema.
type resultDisk struct {
	Schema          int            `json:"schema"`
	AddedEdges      []int          `json:"added_edges"`
	Source          int            `json:"source"`
	Meter           int            `json:"meter"`
	Paths           [][]int        `json:"paths"`
	Method          string         `json:"method"`
	ILPNodes        int            `json:"ilp_nodes"`
	LazyCuts        int            `json:"lazy_cuts"`
	AugUncovered    []int          `json:"aug_uncovered,omitempty"`
	Partners        []int          `json:"partners"`
	PathVectors     []fault.Vector `json:"path_vectors"`
	CutVectors      []fault.Vector `json:"cut_vectors"`
	ExecOriginal    int            `json:"exec_original"`
	ExecNoPSO       int            `json:"exec_no_pso"`
	ExecPSO         int            `json:"exec_pso"`
	ExecIndependent int            `json:"exec_independent"`
	Trace           []float64      `json:"trace,omitempty"`
	NumDFTValves    int            `json:"num_dft_valves"`
	NumShared       int            `json:"num_shared"`
	NumTestVectors  int            `json:"num_test_vectors"`
	SolveTier       int            `json:"solve_tier"`
	SolveName       string         `json:"solve_name"`
	SolveReason     string         `json:"solve_reason"`
	SolveDegraded   bool           `json:"solve_degraded"`
	Leakage         *leakDisk      `json:"leakage,omitempty"`
	CoverageFull    bool           `json:"coverage_full"`
}

type leakDisk struct {
	Examined     int   `json:"examined"`
	Detectable   int   `json:"detectable"`
	Undetectable []int `json:"undetectable,omitempty"`
	Vectors      int   `json:"vectors"`
}

// EncodeResult renders a Result in the canonical encoding the cache
// stores and the bit-identity gates compare. Deterministic: the same
// semantic Result always encodes to the same bytes.
func EncodeResult(res *Result) ([]byte, error) {
	d := resultDisk{
		Schema:          resultSchema,
		AddedEdges:      res.Aug.AddedEdges,
		Source:          res.Aug.Source,
		Meter:           res.Aug.Meter,
		Paths:           res.Aug.Paths,
		Method:          res.Aug.Method,
		ILPNodes:        res.Aug.ILPNodes,
		LazyCuts:        res.Aug.LazyCuts,
		AugUncovered:    res.Aug.Uncovered,
		Partners:        res.Partners,
		PathVectors:     res.PathVectors,
		CutVectors:      res.CutVectors,
		ExecOriginal:    res.ExecOriginal,
		ExecNoPSO:       res.ExecNoPSO,
		ExecPSO:         res.ExecPSO,
		ExecIndependent: res.ExecIndependent,
		Trace:           res.Trace,
		NumDFTValves:    res.NumDFTValves,
		NumShared:       res.NumShared,
		NumTestVectors:  res.NumTestVectors,
		SolveTier:       res.Solve.Tier,
		SolveName:       res.Solve.Name,
		SolveReason:     string(res.Solve.Reason),
		SolveDegraded:   res.Solve.Degraded,
		CoverageFull:    res.CoverageFull,
	}
	if res.Leakage != nil {
		d.Leakage = &leakDisk{
			Examined:     res.Leakage.Examined,
			Detectable:   res.Leakage.Detectable,
			Undetectable: res.Leakage.Undetectable,
			Vectors:      res.Leakage.Vectors,
		}
	}
	return json.Marshal(d)
}

// DecodeResult rebuilds a Result from the canonical encoding against the
// original (unaugmented) chip: the augmented chip is reconstructed by
// replaying the added edges on a clone and the control assignment by
// re-deriving the sharing, so a decoded Result is as live as a solved
// one. Any structural mismatch (foreign chip, stale schema, corrupt
// payload) returns an error and the caller treats it as a miss.
func DecodeResult(orig *chip.Chip, payload []byte) (*Result, error) {
	var d resultDisk
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	if d.Schema != resultSchema {
		return nil, fmt.Errorf("core: decode result: schema %d (want %d)", d.Schema, resultSchema)
	}
	c := orig.Clone()
	for _, e := range d.AddedEdges {
		if _, err := c.AddDFTChannel(e); err != nil {
			return nil, fmt.Errorf("core: decode result: replay edge %d: %w", e, err)
		}
	}
	ctrl, err := chip.SharedControl(c, d.Partners)
	if err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	aug := &testgen.Augmentation{
		Chip:       c,
		AddedEdges: d.AddedEdges,
		Paths:      d.Paths,
		Source:     d.Source,
		Meter:      d.Meter,
		Method:     d.Method,
		ILPNodes:   d.ILPNodes,
		LazyCuts:   d.LazyCuts,
		Uncovered:  d.AugUncovered,
	}
	res := &Result{
		Aug:             aug,
		Control:         ctrl,
		Partners:        d.Partners,
		PathVectors:     d.PathVectors,
		CutVectors:      d.CutVectors,
		ExecOriginal:    d.ExecOriginal,
		ExecNoPSO:       d.ExecNoPSO,
		ExecPSO:         d.ExecPSO,
		ExecIndependent: d.ExecIndependent,
		Trace:           d.Trace,
		NumDFTValves:    d.NumDFTValves,
		NumShared:       d.NumShared,
		NumTestVectors:  d.NumTestVectors,
		Solve: solve.Provenance{
			Tier:     d.SolveTier,
			Name:     d.SolveName,
			Reason:   solve.Reason(d.SolveReason),
			Degraded: d.SolveDegraded,
		},
		CoverageFull: d.CoverageFull,
	}
	if d.Leakage != nil {
		res.Leakage = &fault.LeakageReport{
			Examined:     d.Leakage.Examined,
			Detectable:   d.Leakage.Detectable,
			Undetectable: d.Leakage.Undetectable,
			Vectors:      d.Leakage.Vectors,
		}
	}
	return res, nil
}

// artifactStats synthesizes the single-stage Stats of a cache-served run
// and emits the stage bracket to the observer, so live observers see
// cache traffic exactly like any other stage.
func artifactStats(obs flowstage.Observer, dur time.Duration, counters map[string]int64) *flowstage.Stats {
	o := flowstage.OrNop(obs)
	o.StageStart(StageArtifact)
	st := flowstage.StageStats{Name: StageArtifact, Duration: dur, Counters: counters}
	for k, v := range counters {
		switch k {
		case "art_mem_hits", "art_disk_hits":
			st.CacheHits += v
		case "art_miss":
			st.CacheMisses += v
		}
	}
	o.StageEnd(StageArtifact, st)
	return &flowstage.Stats{Total: dur, Stages: []flowstage.StageStats{st}}
}

// appendArtifactStage tacks the store-side artifact stage onto a solved
// run's stats (art_miss + art_store) and emits it to the observer.
func appendArtifactStage(stats *flowstage.Stats, obs flowstage.Observer, counters map[string]int64) {
	o := flowstage.OrNop(obs)
	o.StageStart(StageArtifact)
	st := flowstage.StageStats{Name: StageArtifact, Counters: counters}
	st.CacheMisses += counters["art_miss"]
	o.StageEnd(StageArtifact, st)
	if stats != nil {
		stats.Stages = append(stats.Stages, st)
	}
}

// suiteDigest is the content address of a suite submission: chip plus
// engine. Workers and cache warmth never change the vectors (the
// engine's defining property), so they are excluded.
func suiteDigest(c *chip.Chip, engine SuiteEngine) artifact.Digest {
	if engine == "" {
		engine = SuiteEngineTemplate
	}
	h := artifact.NewHasher("suite")
	h.Digest(artifact.HashChip(c))
	h.Str(string(engine))
	return h.Sum()
}

// suiteDisk is the canonical suite encoding (see resultDisk for the
// envelope semantics). Stats are informational and cache-warmth
// dependent, so only the semantic payload is stored.
type suiteDisk struct {
	Schema       int            `json:"schema"`
	Engine       string         `json:"engine"`
	Paths        []fault.Vector `json:"paths"`
	Cuts         []fault.Vector `json:"cuts"`
	PathOf       []int          `json:"path_of"`
	CutOf        []int          `json:"cut_of"`
	Uncovered    []int          `json:"uncovered,omitempty"`
	CovTotal     int            `json:"cov_total"`
	CovDetected  int            `json:"cov_detected"`
	CovUndetated []fault.Fault  `json:"cov_undetected,omitempty"`
}

// EncodeSuite renders a suite run in the canonical encoding.
func EncodeSuite(s *testgen.Suite, cov fault.Coverage) ([]byte, error) {
	return json.Marshal(suiteDisk{
		Schema:       resultSchema,
		Engine:       s.Stats.Engine,
		Paths:        s.Paths,
		Cuts:         s.Cuts,
		PathOf:       s.PathOf,
		CutOf:        s.CutOf,
		Uncovered:    s.Uncovered,
		CovTotal:     cov.Total,
		CovDetected:  cov.Detected,
		CovUndetated: cov.Undetected,
	})
}

// DecodeSuite rebuilds a suite and its coverage from the canonical
// encoding against the requesting chip.
func DecodeSuite(c *chip.Chip, payload []byte) (*testgen.Suite, fault.Coverage, error) {
	var d suiteDisk
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fault.Coverage{}, fmt.Errorf("core: decode suite: %w", err)
	}
	if d.Schema != resultSchema {
		return nil, fault.Coverage{}, fmt.Errorf("core: decode suite: schema %d (want %d)", d.Schema, resultSchema)
	}
	if len(d.PathOf) != c.NumValves() || len(d.CutOf) != c.NumValves() {
		return nil, fault.Coverage{}, fmt.Errorf("core: decode suite: valve count mismatch (%d vectors-of for %d valves)", len(d.PathOf), c.NumValves())
	}
	s := &testgen.Suite{
		Chip:      c,
		Paths:     d.Paths,
		Cuts:      d.Cuts,
		PathOf:    d.PathOf,
		CutOf:     d.CutOf,
		Uncovered: d.Uncovered,
		Stats: testgen.SuiteStats{
			Engine: d.Engine,
			Valves: c.NumValves(),
		},
	}
	cov := fault.Coverage{Total: d.CovTotal, Detected: d.CovDetected, Undetected: d.CovUndetated}
	return s, cov, nil
}
