package core

import (
	"context"
	"fmt"

	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/solve"
)

// DiagnosisSummary aggregates the adaptive fault-diagnosis campaign over
// the final test set: how tightly each modeled fault was localized and
// how many test applications that cost, against the exhaustive-replay
// baseline.
type DiagnosisSummary struct {
	// Faults is the campaign size (every stuck-at-0/1 fault of the
	// augmented chip).
	Faults int
	// Localized counts faults whose true identity ended up among the
	// suspects.
	Localized int
	// ExhaustiveVectors is what an exhaustive replay applies per fault —
	// the baseline the adaptive engine is measured against.
	ExhaustiveVectors int
	// TotalVectors, MaxVectors and MeanVectors summarize the applied
	// vector counts across the campaign.
	TotalVectors int
	MaxVectors   int
	MeanVectors  float64
	// MaxSuspects and MeanSuspects summarize the suspect-set sizes (1.0
	// mean = every fault uniquely identified).
	MaxSuspects  int
	MeanSuspects float64
	// Degraded counts faults whose diagnosis fell past the adaptive tier
	// (vector budget or injected faults).
	Degraded int
	// Entries is the full per-fault detail, in fault order.
	Entries []diagnose.FaultDiagnosis
}

// runDiagnoseStage builds the detection matrix of the final test set
// under the chosen sharing scheme and runs the diagnosis campaign: every
// modeled fault is localized through the adaptive → greedy → replay
// chain. A context that dies before or during the campaign skips the
// stage gracefully (Result.Diagnosis stays nil, the result is marked
// Interrupted) — an interrupted flow still returns the finalize stage's
// complete Result.
func (f *flow) runDiagnoseStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)
	obs := f.observer()
	res := f.final.Get()

	skip := func() error {
		st.Count("diagnose_skipped", 1)
		res.Interrupted = true
		return nil
	}
	if ctx.Err() != nil {
		return skip()
	}

	c := res.Aug.Chip
	sim, err := f.newSimulator(c, res.Control)
	if err != nil {
		return err
	}
	vectors := append(append([]fault.Vector{}, res.PathVectors...), res.CutVectors...)
	m, err := fault.NewEngine(sim, f.opts.Workers).DetectionMatrix(ctx, vectors, fault.AllFaults(c))
	if err != nil {
		if ctx.Err() != nil {
			return skip()
		}
		return fmt.Errorf("core: detection matrix failed on %s: %w", c.Name, err)
	}

	planner := &diagnose.Planner{
		Matrix:       m,
		VectorBudget: f.opts.DiagnoseBudget,
		Inject:       f.diagInject,
		OnAttempt: func(att solve.Attempt) {
			st.Count("diagnose_chain_attempts", 1)
			obs.ChainAttempt(st.Name, att.Tier, att.Name, string(att.Reason), att.Elapsed)
		},
	}
	diags, err := planner.Campaign(ctx, f.opts.Workers)
	if err != nil {
		if ctx.Err() != nil {
			return skip()
		}
		return fmt.Errorf("core: diagnosis campaign failed on %s: %w", c.Name, err)
	}

	sum := &DiagnosisSummary{
		Faults:            len(diags),
		ExhaustiveVectors: m.NumUsable(),
		Entries:           diags,
	}
	totSuspects := 0
	for _, d := range diags {
		if d.Localized() {
			sum.Localized++
		}
		if d.Provenance.Degraded {
			sum.Degraded++
		}
		if d.Result == nil {
			continue
		}
		v := d.Result.VectorsApplied()
		sum.TotalVectors += v
		if v > sum.MaxVectors {
			sum.MaxVectors = v
		}
		ns := len(d.Result.Suspects)
		totSuspects += ns
		if ns > sum.MaxSuspects {
			sum.MaxSuspects = ns
		}
	}
	if len(diags) > 0 {
		sum.MeanVectors = float64(sum.TotalVectors) / float64(len(diags))
		sum.MeanSuspects = float64(totSuspects) / float64(len(diags))
	}

	st.Count("diagnose_faults", int64(sum.Faults))
	st.Count("diagnose_localized", int64(sum.Localized))
	st.Count("diagnose_vectors_applied", int64(sum.TotalVectors))
	st.Count("diagnose_exhaustive", int64(sum.ExhaustiveVectors))
	st.Count("diagnose_degraded", int64(sum.Degraded))
	res.Diagnosis = sum
	return nil
}
