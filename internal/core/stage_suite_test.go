package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/testgen"
)

// TestRunSuiteTemplateFullCoverage: the template pipeline fully covers a
// generated FPVA grid and reports its work through the stage counters.
func TestRunSuiteTemplateFullCoverage(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 8, H: 8, Seed: 3})
	res, err := RunSuite(c, SuiteRunOptions{Engine: SuiteEngineTemplate, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suite.Uncovered) != 0 {
		t.Fatalf("uncovered valves: %v", res.Suite.Uncovered)
	}
	if !res.Coverage.Full() {
		t.Fatalf("coverage not full: %v", res.Coverage)
	}
	gen := res.Stats.Stage(StageSuiteGen)
	if gen == nil {
		t.Fatalf("missing %s stage", StageSuiteGen)
	}
	if gen.Counter("tmpl_classes") == 0 {
		t.Fatal("tmpl_classes counter not recorded")
	}
	if gen.Counter("suite_vectors") != int64(len(res.Suite.Vectors())) {
		t.Fatalf("suite_vectors=%d, want %d", gen.Counter("suite_vectors"), len(res.Suite.Vectors()))
	}
	camp := res.Stats.Stage(StageSuiteCampaign)
	if camp == nil {
		t.Fatalf("missing %s stage", StageSuiteCampaign)
	}
	if camp.Counter("fault_campaigns") == 0 {
		t.Fatal("fault_campaigns counter not recorded")
	}
	if camp.Counter("cov_total") != int64(res.Coverage.Total) {
		t.Fatalf("cov_total=%d, want %d", camp.Counter("cov_total"), res.Coverage.Total)
	}
	if res.Metrics.BridgeChecks == 0 || res.Metrics.ReachChecks == 0 {
		t.Fatalf("fast-path rules unused: %+v", res.Metrics)
	}
}

// TestRunSuiteEnginesAgree: baseline and template pipelines produce the
// same coverage on the same chip.
func TestRunSuiteEnginesAgree(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 6, H: 8, Seed: 11})
	tmpl, err := RunSuite(c, SuiteRunOptions{Engine: SuiteEngineTemplate, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunSuite(c, SuiteRunOptions{Engine: SuiteEngineBaseline, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tmpl.Coverage, base.Coverage) {
		t.Fatalf("coverage mismatch: template %v, baseline %v", tmpl.Coverage, base.Coverage)
	}
	if !reflect.DeepEqual(tmpl.Suite.Uncovered, base.Suite.Uncovered) {
		t.Fatalf("uncovered mismatch: template %v, baseline %v",
			tmpl.Suite.Uncovered, base.Suite.Uncovered)
	}
}

// TestRunSuiteSharedTemplateEngine: a shared engine re-serves its cached
// classes to a second identical chip.
func TestRunSuiteSharedTemplateEngine(t *testing.T) {
	eng := testgen.NewTemplateEngine()
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 8, H: 8, Seed: 5})
	first, err := RunSuite(c, SuiteRunOptions{Workers: 1, Templates: eng})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSuite(c, SuiteRunOptions{Workers: 1, Templates: eng})
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Stats.Stage(StageSuiteGen).Counter("tmpl_cache_hits"); got != 0 {
		t.Fatalf("first run hit the cache %d times", got)
	}
	hits := second.Stats.Stage(StageSuiteGen).Counter("tmpl_cache_hits")
	classes := second.Stats.Stage(StageSuiteGen).Counter("tmpl_classes")
	if hits != classes || classes == 0 {
		t.Fatalf("second run: %d hits for %d classes", hits, classes)
	}
	if !reflect.DeepEqual(first.Suite.Paths, second.Suite.Paths) {
		t.Fatal("cached run produced different path vectors")
	}
}

// TestRunSuiteUnknownEngine rejects a bad engine name up front.
func TestRunSuiteUnknownEngine(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 6, H: 6, Seed: 1})
	if _, err := RunSuite(c, SuiteRunOptions{Engine: "ilp"}); err == nil {
		t.Fatal("expected error for unknown engine")
	}
}

// TestRunSuiteCancelled: an expired context aborts the pipeline.
func TestRunSuiteCancelled(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 8, H: 8, Seed: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuiteCtx(ctx, c, SuiteRunOptions{Workers: 2}); err == nil {
		t.Fatal("expected cancellation error")
	}
}
