package core

import (
	"sort"
	"sync"
)

// onceMap is the flow's concurrency-safe content-keyed memoization
// primitive: a sharded string-keyed map whose entries are computed exactly
// once. The first caller of Do for a key runs the compute function;
// concurrent callers for the same key block until it finishes and then
// share the value, so a cache records exactly one miss per unique key no
// matter how many workers race on it. Values must be pure functions of
// their key — then the cache contents (and every hit/miss total) are
// deterministic for any worker count, which is what keeps the parallel
// two-level PSO bit-identical to the serial run.
type onceMap[V any] struct {
	shards [cacheShards]cacheShard[V]
}

const cacheShards = 16

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

func newOnceMap[V any]() *onceMap[V] {
	c := &onceMap[V]{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry[V]{}
	}
	return c
}

func (c *onceMap[V]) shard(key string) *cacheShard[V] {
	// FNV-1a, folded to a shard index.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Do returns the value for key, computing it with compute on first sight.
// The second result reports whether the value was already present (a cache
// hit). Concurrent calls for the same key run compute exactly once; the
// losers block until the winner's compute returns. compute must not call
// back into Do with the same key.
func (c *onceMap[V]) Do(key string, compute func() V) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, hit := s.m[key]
	if !hit {
		e = &cacheEntry[V]{}
		s.m[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val, hit
}

// Get returns the value stored for key, if any. It must only be called
// from serial sections of the flow (stage boundaries, post-barrier code):
// it does not wait for an in-flight compute.
func (c *onceMap[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Len returns the number of entries across all shards.
func (c *onceMap[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Iteration order
// is unspecified; like Get, Range belongs in serial sections only.
func (c *onceMap[V]) Range(fn func(key string, v V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.m {
			if !fn(k, e.val) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// SortedKeys returns every key in lexicographic order — the deterministic
// iteration order for selection decisions (bestEvalSeen's tie-break, the
// partial-sharing retry list).
func (c *onceMap[V]) SortedKeys() []string {
	keys := make([]string, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			keys = append(keys, k)
		}
		s.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}
