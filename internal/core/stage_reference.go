package core

import (
	"context"
	"fmt"

	"repro/internal/flowstage"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// runReferenceStage produces the unbiased reference configuration via the
// degradation chain: exact ILP if requested, then the greedy heuristic,
// then best-effort repair. This is also the "DFT without PSO"
// architecture. The chain outcome (with provenance) and the reference's
// evaluation are published as the chainOut and refEval artifacts.
func (f *flow) runReferenceStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)
	obs := f.observer()

	chainOut, err := solve.AugmentChain(f.orig, solve.ChainConfig{
		Exact:       f.opts.UseILP,
		ExactBudget: f.opts.ExactBudget,
		Inject:      f.opts.Inject,
		Options: testgen.Options{
			Workers: f.opts.Workers,
			OnILPAttempt: func(paths, nodes, lazyCuts int) {
				st.Count("ilp_attempts", 1)
				st.Count("ilp_nodes", int64(nodes))
				st.Count("ilp_lazy_cuts", int64(lazyCuts))
				obs.ILPAttempt(st.Name, paths, nodes, lazyCuts)
			},
			OnILPStats: func(workers, steals, idleWaits, requeued int) {
				// The resolved worker count is a configuration fact, not an
				// accumulating quantity: record it once per stage.
				if st.Counter("ilp_workers") == 0 {
					st.Count("ilp_workers", int64(workers))
				}
				st.Count("ilp_steals", int64(steals))
				st.Count("ilp_idle_waits", int64(idleWaits))
				st.Count("ilp_requeued", int64(requeued))
			},
		},
		OnAttempt: func(att solve.Attempt) {
			st.Count("chain_attempts", 1)
			obs.ChainAttempt(st.Name, att.Tier, att.Name, string(att.Reason), att.Elapsed)
		},
	}).Run(ctx)
	if err != nil {
		return fmt.Errorf("core: no DFT configuration for %s: %w", f.orig.Name, err)
	}
	refEval := f.evalAug(chainOut.Value)
	if refEval.cutsErr != nil {
		return fmt.Errorf("core: cut generation failed on %s: %w", f.orig.Name, refEval.cutsErr)
	}
	st.Count("added_edges", int64(len(chainOut.Value.AddedEdges)))
	f.chainOut.Set(chainOut)
	f.refEval.Set(refEval)
	return nil
}
