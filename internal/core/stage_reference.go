package core

import (
	"context"
	"fmt"

	"repro/internal/flowstage"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// runReferenceStage produces the unbiased reference configuration via the
// degradation chain: exact ILP if requested, then the greedy heuristic,
// then best-effort repair. This is also the "DFT without PSO"
// architecture. The chain outcome (with provenance) and the reference's
// evaluation are published as the chainOut and refEval artifacts.
func (f *flow) runReferenceStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)
	obs := f.observer()

	chainOut, err := solve.AugmentChain(f.orig, solve.ChainConfig{
		Exact:       f.opts.UseILP,
		ExactBudget: f.opts.ExactBudget,
		Inject:      f.opts.Inject,
		Options: testgen.Options{
			OnILPAttempt: func(paths, nodes, lazyCuts int) {
				st.Count("ilp_attempts", 1)
				st.Count("ilp_nodes", int64(nodes))
				st.Count("ilp_lazy_cuts", int64(lazyCuts))
				obs.ILPAttempt(st.Name, paths, nodes, lazyCuts)
			},
		},
		OnAttempt: func(att solve.Attempt) {
			st.Count("chain_attempts", 1)
			obs.ChainAttempt(st.Name, att.Tier, att.Name, string(att.Reason), att.Elapsed)
		},
	}).Run(ctx)
	if err != nil {
		return fmt.Errorf("core: no DFT configuration for %s: %w", f.orig.Name, err)
	}
	refEval := f.evalAug(chainOut.Value)
	if refEval.cutsErr != nil {
		return fmt.Errorf("core: cut generation failed on %s: %w", f.orig.Name, refEval.cutsErr)
	}
	st.Count("added_edges", int64(len(chainOut.Value.AddedEdges)))
	f.chainOut.Set(chainOut)
	f.refEval.Set(refEval)
	return nil
}
