package core

import (
	"context"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/solve"
)

func TestFlowDegradesOnInjectedTimeout(t *testing.T) {
	opts := smallOpts(11)
	opts.UseILP = true
	opts.Inject = []solve.Injection{{Tier: "exact", Kind: solve.FaultTimeout}}
	res, err := RunDFTFlowCtx(context.Background(), chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solve.Degraded {
		t.Fatal("injected exact-tier timeout did not mark the result Degraded")
	}
	if res.Solve.Name != "heuristic" {
		t.Fatalf("configuration came from tier %q, want the heuristic fallback", res.Solve.Name)
	}
	if res.Interrupted {
		t.Fatal("uncancelled flow marked Interrupted")
	}
	if !res.CoverageFull {
		t.Fatal("heuristic fallback on IVD should still reach full coverage")
	}
	if len(res.Solve.Attempts) < 2 {
		t.Fatalf("Attempts = %+v, want the failed exact try recorded", res.Solve.Attempts)
	}
	first := res.Solve.Attempts[0]
	if first.Name != "exact" || first.Reason != solve.ReasonTimeout || first.Injected != solve.FaultTimeout {
		t.Fatalf("first attempt = %+v, want an injected exact-tier timeout", first)
	}
}

func TestFlowDegradesToRepairOnDoubleFault(t *testing.T) {
	opts := smallOpts(12)
	opts.UseILP = true
	opts.Inject = []solve.Injection{
		{Tier: "exact", Kind: solve.FaultPanic},
		{Tier: "heuristic", Kind: solve.FaultInfeasible},
	}
	res, err := RunDFTFlowCtx(context.Background(), chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solve.Name != "repair" {
		t.Fatalf("configuration came from tier %q, want repair after panic+infeasible", res.Solve.Name)
	}
	if res.Solve.Attempts[0].Reason != solve.ReasonPanic {
		t.Fatalf("exact attempt reason = %q, want panic", res.Solve.Attempts[0].Reason)
	}
	if res.Solve.Attempts[1].Reason != solve.ReasonInfeasible {
		t.Fatalf("heuristic attempt reason = %q, want infeasible", res.Solve.Attempts[1].Reason)
	}
	if res.NumTestVectors == 0 {
		t.Fatal("repair tier produced no test vectors on IVD")
	}
}

func TestFlowCleanRunNotDegraded(t *testing.T) {
	res, err := RunDFTFlowCtx(context.Background(), chip.IVD(), assay.IVD(), smallOpts(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solve.Degraded || res.Interrupted || !res.CoverageFull {
		t.Fatalf("clean run reported degraded=%v interrupted=%v full=%v",
			res.Solve.Degraded, res.Interrupted, res.CoverageFull)
	}
	if res.Solve.Name != "heuristic" {
		t.Fatalf("default flow tier = %q, want heuristic (UseILP off skips the exact tier)", res.Solve.Name)
	}
}
