package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/testgen"
)

// Stage names of the standalone test-suite pipeline (RunSuite), in
// execution order. They deliberately do not collide with the DFT flow's
// stage names so observers can tell the two pipelines apart.
const (
	// StageSuiteGen generates the per-valve path/cut vector suite with
	// the selected engine (template by default, baseline for A/B runs).
	StageSuiteGen = "suitegen"
	// StageSuiteCampaign fault-simulates the generated suite against
	// every stuck-at fault of the chip and records the coverage.
	StageSuiteCampaign = "suitecampaign"
)

// SuiteEngine selects RunSuite's test-generation engine.
type SuiteEngine string

const (
	// SuiteEngineTemplate is the symmetry-exploiting template engine:
	// valves are grouped into translation-equivalence classes (closed-form
	// line classes plus combinatorial tile classes) and each class is
	// solved once.
	SuiteEngineTemplate SuiteEngine = "template"
	// SuiteEngineBaseline solves every valve independently — the
	// reference the template engine is benchmarked and equivalence-tested
	// against.
	SuiteEngineBaseline SuiteEngine = "baseline"
)

// SuiteRunOptions tunes RunSuite.
type SuiteRunOptions struct {
	// Engine picks the generator ("" defaults to SuiteEngineTemplate).
	Engine SuiteEngine
	// Workers sets the worker-pool size of both generation and the
	// coverage campaign (0 = runtime.GOMAXPROCS). Results are
	// bit-identical for any worker count.
	Workers int
	// Templates optionally supplies a shared template engine so the
	// content-keyed class cache persists across chips (scaling sweeps).
	// Ignored by the baseline engine; nil means a fresh engine.
	Templates *testgen.TemplateEngine
	// Observer receives live stage/cache/counter events; nil for none.
	Observer flowstage.Observer
	// Cache is the optional content-addressed artifact cache: hits skip
	// both stages and return a decoded suite bit-identical to a fresh
	// generation; the synthesized Stats carry an "artifact" stage with
	// art_* counters. The suite's vectors never depend on cache warmth,
	// so every engine/worker combination is cacheable.
	Cache *Cache
}

// SuiteRunResult is the outcome of one RunSuite pipeline.
type SuiteRunResult struct {
	// Suite is the generated per-valve vector suite.
	Suite *testgen.Suite
	// Coverage is the suite's stuck-at coverage under independent
	// control.
	Coverage fault.Coverage
	// Metrics is the fault-simulation metrics delta of the whole run
	// (campaign fast-path rule traffic included).
	Metrics fault.MetricsSnapshot
	// Stats carries the per-stage wall-clock and counters.
	Stats *flowstage.Stats
	// Runtime is the total pipeline wall-clock.
	Runtime time.Duration
}

// suiteRun is the mutable state threaded through the pipeline stages.
type suiteRun struct {
	chip    *chip.Chip
	opts    SuiteRunOptions
	metrics *fault.Metrics
	suite   flowstage.Artifact[*testgen.Suite]
	cov     flowstage.Artifact[fault.Coverage]
}

// RunSuite is RunSuiteCtx without cancellation.
func RunSuite(c *chip.Chip, opts SuiteRunOptions) (*SuiteRunResult, error) {
	return RunSuiteCtx(context.Background(), c, opts)
}

// RunSuiteCtx generates a complete per-valve test suite for the chip and
// fault-simulates it, as an observable two-stage flowstage pipeline
// (suitegen → suitecampaign). Stage counters attribute the template
// engine's class/cache/fallback traffic and the campaign's fast-path rule
// usage, so scaling sweeps (cmd/bench -fpva) can report where time goes.
func RunSuiteCtx(ctx context.Context, c *chip.Chip, opts SuiteRunOptions) (*SuiteRunResult, error) {
	switch opts.Engine {
	case "", SuiteEngineTemplate, SuiteEngineBaseline:
	default:
		return nil, fmt.Errorf("core: unknown suite engine %q", opts.Engine)
	}
	start := time.Now()
	var digest artifact.Digest
	if cc := opts.Cache; cc != nil {
		digest = suiteDigest(c, opts.Engine)
		if payload, tier := cc.lookup("suite", digest); payload != nil {
			if suite, cov, err := DecodeSuite(c, payload); err == nil {
				dur := time.Since(start)
				return &SuiteRunResult{
					Suite:    suite,
					Coverage: cov,
					Stats: artifactStats(opts.Observer, dur,
						map[string]int64{"art_" + tier + "_hits": 1}),
					Runtime: dur,
				}, nil
			}
		}
	}
	r := &suiteRun{chip: c, opts: opts, metrics: fault.NewMetrics()}
	pipe := &flowstage.Pipeline{
		Observer: opts.Observer,
		Stages: []flowstage.Stage{
			{Name: StageSuiteGen, Run: r.runGenerateStage},
			{Name: StageSuiteCampaign, Run: r.runCampaignStage},
		},
	}
	stats, err := pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := &SuiteRunResult{
		Suite:    r.suite.Get(),
		Coverage: r.cov.Get(),
		Metrics:  r.metrics.Snapshot(),
		Stats:    stats,
		Runtime:  time.Since(start),
	}
	if cc := opts.Cache; cc != nil {
		counters := map[string]int64{"art_miss": 1}
		if payload, encErr := EncodeSuite(res.Suite, res.Coverage); encErr == nil {
			cc.add("suite", digest, payload)
			counters["art_store"] = 1
		}
		appendArtifactStage(res.Stats, opts.Observer, counters)
	}
	return res, nil
}

// runGenerateStage runs the selected suite generator and folds its
// SuiteStats into the stage counters.
func (r *suiteRun) runGenerateStage(ctx context.Context, st *flowstage.StageStats) error {
	sopts := testgen.SuiteOptions{Workers: r.opts.Workers}
	var s *testgen.Suite
	var err error
	if r.opts.Engine == SuiteEngineBaseline {
		s, err = testgen.GenerateBaselineCtx(ctx, r.chip, sopts)
	} else {
		eng := r.opts.Templates
		if eng == nil {
			eng = testgen.NewTemplateEngine()
		}
		if cc := r.opts.Cache; cc != nil && cc.Store() != nil {
			// Share the artifact cache's disk tier so solved tile classes
			// persist across processes even when the whole-suite entry
			// misses (e.g. a new chip size reusing known classes).
			eng.SetStore(cc.Store())
		}
		s, err = eng.GenerateCtx(ctx, r.chip, sopts)
		if err == nil {
			st.Count("tmpl_classes", int64(s.Stats.Classes))
			st.Count("tmpl_line_classes", int64(s.Stats.LineClasses))
			st.Count("tmpl_cache_hits", s.Stats.TemplateHits)
			st.Count("tmpl_disk_hits", s.Stats.TemplateDiskHits)
			st.Count("tmpl_instantiated", s.Stats.Instantiated)
			st.Count("tmpl_fallbacks", s.Stats.Fallbacks)
			st.CacheHits += s.Stats.TemplateHits
			st.CacheMisses += int64(s.Stats.Classes)
			if s.Stats.TemplateHits != 0 || s.Stats.Classes != 0 {
				flowstage.OrNop(r.opts.Observer).CacheDelta(st.Name, "template_cache",
					s.Stats.TemplateHits, int64(s.Stats.Classes))
			}
		}
	}
	if err != nil {
		return err
	}
	st.Count("suite_vectors", int64(len(s.Paths)+len(s.Cuts)))
	st.Count("suite_raw_vectors", int64(s.Stats.RawVectors))
	st.Count("suite_path_solves", s.Stats.PathSolves)
	st.Count("suite_cut_solves", s.Stats.CutSolves)
	st.Count("suite_uncovered", int64(len(s.Uncovered)))
	r.suite.Set(s)
	return nil
}

// runCampaignStage fault-simulates the generated suite against every
// stuck-at fault under independent control, with the run's shared metrics
// attached so the stage counters expose the fast-path rule traffic.
func (r *suiteRun) runCampaignStage(ctx context.Context, st *flowstage.StageStats) error {
	s := r.suite.Get()
	sim, err := fault.NewSimulator(r.chip, chip.IndependentControl(r.chip))
	if err != nil {
		return err
	}
	sim.SetMetrics(r.metrics)
	base := r.metrics.Snapshot()
	cov, err := fault.NewEngine(sim, r.opts.Workers).
		EvaluateCoverageCtx(ctx, s.Vectors(), fault.AllFaults(r.chip))
	if err != nil {
		return err
	}
	delta := r.metrics.Snapshot().Sub(base)
	st.CacheHits += delta.MemoHits
	st.CacheMisses += delta.MemoMisses
	st.Count("fault_memo_hits", delta.MemoHits)
	st.Count("fault_memo_misses", delta.MemoMisses)
	st.Count("fault_campaigns", delta.Campaigns)
	st.Count("fault_screen_skips", delta.ScreenSkips)
	st.Count("fault_reach_checks", delta.ReachChecks)
	st.Count("fault_bridge_checks", delta.BridgeChecks)
	st.Count("cov_detected", int64(cov.Detected))
	st.Count("cov_total", int64(cov.Total))
	if delta.MemoHits != 0 || delta.MemoMisses != 0 {
		flowstage.OrNop(r.opts.Observer).CacheDelta(st.Name, "fault_memo",
			delta.MemoHits, delta.MemoMisses)
	}
	r.cov.Set(cov)
	return nil
}
