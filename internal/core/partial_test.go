package core

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/pso"
)

// tinyChip reproduces the structure where no full sharing scheme validates:
// one mixer, one detector, a single trunk channel and a dead-end port
// pocket whose DFT bypass valves sit in series.
func tinyChip(t *testing.T) *chip.Chip {
	t.Helper()
	b := chip.NewBuilder("tiny_pocket", 6, 4)
	b.AddDevice(chip.Mixer, "M1", grid.Coord{X: 1, Y: 1})
	b.AddDevice(chip.Detector, "D1", grid.Coord{X: 4, Y: 1})
	b.AddPort("P0", grid.Coord{X: 0, Y: 1})
	b.AddPort("P1", grid.Coord{X: 5, Y: 1})
	b.AddPort("P2", grid.Coord{X: 1, Y: 3})
	b.AddChannel(grid.Coord{X: 0, Y: 1}, grid.Coord{X: 1, Y: 1})
	b.AddChannel(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 2, Y: 1}, grid.Coord{X: 3, Y: 1}, grid.Coord{X: 4, Y: 1})
	b.AddChannel(grid.Coord{X: 4, Y: 1}, grid.Coord{X: 5, Y: 1})
	b.AddChannel(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 1, Y: 2}, grid.Coord{X: 1, Y: 3})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tinyAssay() *assay.Graph {
	g := assay.New("tiny")
	m := g.AddOp(assay.Mix, "m", 40)
	d := g.AddOp(assay.Detect, "d", 20)
	g.AddDep(m, d)
	return g
}

func TestPartialSharingFallback(t *testing.T) {
	res, err := RunDFTFlow(tinyChip(t), tinyAssay(), Options{
		Outer: pso.Config{Particles: 3, Iterations: 4},
		Inner: pso.Config{Particles: 3, Iterations: 4},
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// On this chip full sharing may or may not exist depending on the
	// augmentation; what MUST hold: the flow succeeds, the result is
	// internally consistent, and coverage is complete under the returned
	// control assignment.
	if res.NumShared > res.NumDFTValves {
		t.Fatalf("shared %d of %d", res.NumShared, res.NumDFTValves)
	}
	unshared := 0
	for _, p := range res.Partners {
		if p == -1 {
			unshared++
		}
	}
	if res.NumDFTValves-res.NumShared != unshared {
		t.Fatalf("NumShared %d inconsistent with partners %v", res.NumShared, res.Partners)
	}
	if res.Control.NumLines() != res.Aug.Chip.NumOriginalValves()+unshared {
		t.Fatalf("lines %d for %d unshared", res.Control.NumLines(), unshared)
	}
	sim := fault.MustSimulator(res.Aug.Chip, res.Control)
	cov := sim.EvaluateCoverage(append(res.PathVectors, res.CutVectors...), fault.AllFaults(res.Aug.Chip))
	if !cov.Full() {
		t.Fatalf("coverage %v", cov)
	}
}

func TestBenchmarksStayFullyShared(t *testing.T) {
	// The partial-sharing fallback must never fire on the paper's
	// benchmarks (full sharing exists and dominates).
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumShared != res.NumDFTValves {
		t.Fatalf("benchmark lost full sharing: %d/%d", res.NumShared, res.NumDFTValves)
	}
	for _, p := range res.Partners {
		if p < 0 {
			t.Fatal("own-line partner on a benchmark")
		}
	}
}

func TestSharedControlOwnLine(t *testing.T) {
	c := chip.IVD()
	for e, n := 0, 0; e < c.Grid.NumEdges() && n < 2; e++ {
		if _, occ := c.ValveOnEdge(e); !occ {
			if _, err := c.AddDFTChannel(e); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	ctrl, err := chip.SharedControl(c, []int{4, -1})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.NumLines() != 13 { // 12 original + 1 own
		t.Fatalf("lines = %d, want 13", ctrl.NumLines())
	}
	if ctrl.NumShared() != 1 {
		t.Fatalf("NumShared = %d, want 1", ctrl.NumShared())
	}
	if got := ctrl.SharedWith(13); len(got) != 0 {
		t.Fatalf("own-line valve shares with %v", got)
	}
}
