// Incremental sharing-scheme revalidation.
//
// The dominant cost of one inner-PSO fitness evaluation is proving that
// the base test set still detects every fault under a candidate sharing
// scheme (testgen.RepairVectors re-simulates vectors against faults). But
// a sharing scheme only perturbs a vector's behaviour through control-line
// expansion: applying vector V drives exactly the lines of V's valves, so
// the expanded valve states — and therefore every meter reading and every
// detection verdict — differ from the independent-control evaluation only
// when some valve of V is paired with a valve outside V. A vector with no
// such pair is "clean": its verdicts under the sharing are bit-identical
// to independent control.
//
// The screen exploits this in two tiers. At build time it records one
// witness per fault — the first vector that detects it under independent
// control (a single early-exit scan, about the cost of one coverage
// evaluation). A candidate scheme that leaves every witness clean
// provably preserves full coverage with zero fault simulations — the
// structural fast path. When some witnesses are dirty, the recheck tier
// re-simulates exactly those witness/fault pairs under the candidate's
// shared control: if every fault's witness still detects it, coverage is
// again proven and the repair pass skipped, at the cost of one targeted
// simulation per dirty-witness fault instead of a full repair-and-
// coverage campaign. Any failure falls through to the unchanged slow
// path. Fitness values are therefore bit-identical with and without the
// screen — a passing check implies the slow path would have concluded
// full coverage too; the screen only decides whether the slow path can
// be skipped, never what a fitness is.
package core

import (
	"repro/internal/chip"
	"repro/internal/fault"
)

// sharingScreen holds one configuration's incremental revalidation state:
// per-fault witness vectors under independent control and the vector
// membership tables the clean/dirty classification needs.
type sharingScreen struct {
	chip    *chip.Chip
	nOrig   int
	vectors []fault.Vector // paths then cuts, the RepairVectors order
	faults  []fault.Fault  // fault.AllFaults order, indexed by witness
	// witness[fi] is the index of a vector that detects fault fi under
	// independent control, or -1 when none does (the configuration's
	// intrinsic coverage gap; such configurations never take the fast
	// path).
	witness []int
	inVec   [][]bool // inVec[v][valve]: valve appears in vectors[v].Valves
}

// screenFor returns the configuration's revalidation screen, building it
// on first use. It returns nil when the screen is unavailable: the
// baseline A/B mode disables it, and a failed build degrades every check
// to the slow path.
func (f *flow) screenFor(ev *augEval) *sharingScreen {
	ev.screenOnce.Do(func() {
		if f.opts.PSOBaseline || f.opts.PSORecompute {
			return
		}
		ev.screen = f.newSharingScreen(ev)
	})
	return ev.screen
}

func (f *flow) newSharingScreen(ev *augEval) *sharingScreen {
	c := ev.aug.Chip
	sim, err := f.newSimulator(c, chip.IndependentControl(c))
	if err != nil {
		return nil
	}
	vectors := append(append([]fault.Vector{}, ev.paths...), ev.cuts...)
	if len(vectors) == 0 {
		return nil
	}
	faults := fault.AllFaults(c)
	s := &sharingScreen{
		chip:    c,
		nOrig:   c.NumOriginalValves(),
		vectors: vectors,
		faults:  faults,
		witness: make([]int, len(faults)),
		inVec:   make([][]bool, len(vectors)),
	}
	usable := make([]bool, len(vectors))
	for v, vec := range vectors {
		usable[v] = sim.FaultFreeOK(vec)
		member := make([]bool, c.NumValves())
		for _, val := range vec.Valves {
			member[val] = true
		}
		s.inVec[v] = member
	}
	for fi, ft := range faults {
		s.witness[fi] = -1
		for v, vec := range vectors {
			if usable[v] && sim.Detects(vec, ft) {
				s.witness[fi] = v
				break
			}
		}
	}
	return s
}

// fullCoverage reports whether the base vectors provably keep detecting
// every fault under the sharing scheme. It first classifies each vector
// clean/dirty from the partner assignment alone; every witness clean
// proves coverage with zero simulations (reval_fastpath). Otherwise it
// re-simulates only the dirty witness/fault pairs under the candidate's
// shared control (reval_recheck_pass) — the incremental recheck of
// exactly the vectors the partner change touched. A false return means
// "not proven", not "broken" — the caller must fall back to the full
// repair pass. Safe for concurrent callers (the inner swarm evaluates
// several schemes of one configuration at once): all scratch state is
// per-call.
func (s *sharingScreen) fullCoverage(f *flow, ctrl *chip.Control, partners []int) bool {
	// Invert the assignment: original valve -> its DFT partner (or -1).
	inv := make([]int, s.nOrig)
	for i := range inv {
		inv[i] = -1
	}
	for i, p := range partners {
		if p >= 0 {
			inv[p] = s.nOrig + i
		}
	}
	dirty := make([]bool, len(s.vectors))
	var clean, dirtyCount int64
	for v := range s.vectors {
		// V is dirty iff some valve of V is paired with a valve outside V
		// — exactly the condition under which V's control-line expansion
		// (and hence any verdict about V) can differ from independent
		// control.
		member := s.inVec[v]
		d := false
		for _, val := range s.vectors[v].Valves {
			partner := -1
			if val >= s.nOrig {
				partner = partners[val-s.nOrig]
			} else {
				partner = inv[val]
			}
			if partner >= 0 && !member[partner] {
				d = true
				break
			}
		}
		dirty[v] = d
		if d {
			dirtyCount++
		} else {
			clean++
		}
	}
	f.countStage("reval_clean_vectors", clean)
	f.countStage("reval_dirty_vectors", dirtyCount)
	recheck := false
	for _, w := range s.witness {
		if w < 0 {
			// Intrinsic coverage gap: the screen cannot reason about "no
			// worse than baseline", only about full coverage.
			return false
		}
		if dirty[w] {
			recheck = true
		}
	}
	if !recheck {
		f.countStage("reval_fastpath", 1)
		return true
	}
	// Recheck tier: simulate only the dirty witnesses under the actual
	// shared control. A witness that is masked (not fault-free usable) or
	// no longer detects its fault does not disprove coverage — another
	// vector or a repaired one may still detect it — so any failure just
	// defers to the slow path.
	sim, err := f.newSimulator(s.chip, ctrl)
	if err != nil {
		return false
	}
	usable := make(map[int]bool, len(dirty))
	sims := int64(0)
	for fi, w := range s.witness {
		if !dirty[w] {
			continue
		}
		ok, seen := usable[w]
		if !seen {
			ok = sim.FaultFreeOK(s.vectors[w])
			usable[w] = ok
		}
		if !ok {
			return false
		}
		sims++
		if !sim.Detects(s.vectors[w], s.faults[fi]) {
			return false
		}
	}
	f.countStage("reval_recheck_sims", sims)
	f.countStage("reval_recheck_pass", 1)
	return true
}
