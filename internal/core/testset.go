package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/testgen"
)

// TestSet is the standalone test-generation artifact the fault-simulation
// and inspection CLIs (faultsim, chipinfo) consume: a heuristic DFT
// augmentation plus the stuck-at-1 cut cover between its source and
// meter. It is the third cacheable kind next to flow Results and suites —
// the -optimal ILP cut cover in particular is worth persisting.
type TestSet struct {
	// Aug is the heuristic augmentation (added channels, test paths).
	Aug *testgen.Augmentation
	// Cuts is the stuck-at-1 cut cover (greedy, or exact when Optimal).
	Cuts []fault.Vector
	// Optimal records whether Cuts came from the exact set cover.
	Optimal bool
	// Tier reports how the set was obtained: "mem" or "disk" for a cache
	// hit, "" for a fresh solve.
	Tier string
}

// testSetDigest is the content address of a test-set request: chip plus
// the cut engine choice. Workers never change the vectors.
func testSetDigest(c *chip.Chip, optimal bool) artifact.Digest {
	h := artifact.NewHasher("testset")
	h.Digest(artifact.HashChip(c))
	h.Bool(optimal)
	return h.Sum()
}

// testSetDisk is the canonical test-set encoding (see resultDisk for the
// envelope semantics).
type testSetDisk struct {
	Schema     int            `json:"schema"`
	AddedEdges []int          `json:"added_edges"`
	Source     int            `json:"source"`
	Meter      int            `json:"meter"`
	Paths      [][]int        `json:"paths"`
	Method     string         `json:"method"`
	Uncovered  []int          `json:"uncovered,omitempty"`
	Cuts       []fault.Vector `json:"cuts"`
	Optimal    bool           `json:"optimal"`
}

// EncodeTestSet renders a test set in the canonical encoding.
func EncodeTestSet(ts *TestSet) ([]byte, error) {
	return json.Marshal(testSetDisk{
		Schema:     resultSchema,
		AddedEdges: ts.Aug.AddedEdges,
		Source:     ts.Aug.Source,
		Meter:      ts.Aug.Meter,
		Paths:      ts.Aug.Paths,
		Method:     ts.Aug.Method,
		Uncovered:  ts.Aug.Uncovered,
		Cuts:       ts.Cuts,
		Optimal:    ts.Optimal,
	})
}

// DecodeTestSet rebuilds a test set against the original chip by
// replaying the added edges on a clone (exactly like DecodeResult).
func DecodeTestSet(orig *chip.Chip, payload []byte) (*TestSet, error) {
	var d testSetDisk
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("core: decode test set: %w", err)
	}
	if d.Schema != resultSchema {
		return nil, fmt.Errorf("core: decode test set: schema %d (want %d)", d.Schema, resultSchema)
	}
	c := orig.Clone()
	for _, e := range d.AddedEdges {
		if _, err := c.AddDFTChannel(e); err != nil {
			return nil, fmt.Errorf("core: decode test set: replay edge %d: %w", e, err)
		}
	}
	return &TestSet{
		Aug: &testgen.Augmentation{
			Chip:       c,
			AddedEdges: d.AddedEdges,
			Paths:      d.Paths,
			Source:     d.Source,
			Meter:      d.Meter,
			Method:     d.Method,
			Uncovered:  d.Uncovered,
		},
		Cuts:    d.Cuts,
		Optimal: d.Optimal,
	}, nil
}

// BuildTestSet is BuildTestSetCtx with background context.
func BuildTestSet(c *chip.Chip, optimal bool, workers int, cc *Cache) (*TestSet, error) {
	return BuildTestSetCtx(context.Background(), c, optimal, workers, cc)
}

// BuildTestSetCtx augments the chip with the heuristic engine and
// generates its cut cover (exact set cover when optimal), consulting the
// artifact cache when one is supplied: a hit skips both solves and
// returns a decoded set bit-identical to a fresh one under the canonical
// encoding. The result is a pure function of (chip, optimal), so every
// worker count shares one entry.
func BuildTestSetCtx(ctx context.Context, c *chip.Chip, optimal bool, workers int, cc *Cache) (*TestSet, error) {
	var digest artifact.Digest
	if cc != nil {
		digest = testSetDigest(c, optimal)
		if payload, tier := cc.lookup("testset", digest); payload != nil {
			if ts, err := DecodeTestSet(c, payload); err == nil {
				ts.Tier = tier
				return ts, nil
			}
		}
	}
	aug, err := testgen.AugmentHeuristicCtx(ctx, c, testgen.Options{})
	if err != nil {
		return nil, err
	}
	var cuts []fault.Vector
	if optimal {
		cuts, err = testgen.GenerateCutsOptimalCtx(ctx, aug.Chip, aug.Source, aug.Meter,
			testgen.Options{Workers: workers})
	} else {
		cuts, err = testgen.GenerateCutsCtx(ctx, aug.Chip, aug.Source, aug.Meter)
	}
	if err != nil {
		return nil, err
	}
	ts := &TestSet{Aug: aug, Cuts: cuts, Optimal: optimal}
	if cc != nil {
		if payload, encErr := EncodeTestSet(ts); encErr == nil {
			cc.add("testset", digest, payload)
		}
	}
	return ts, nil
}
