package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/assay"
	"repro/internal/chip"
)

// ErrBatchSaturated rejects jobs beyond BatchOptions.MaxPending unique
// solves — the admission-control backpressure a serving layer maps to
// HTTP 503.
var ErrBatchSaturated = errors.New("core: batch queue saturated")

// BatchJob is one (chip, assay, options) flow submission.
type BatchJob struct {
	Chip  *chip.Chip
	Assay *assay.Graph
	Opts  Options
}

// BatchResult is one job's outcome, at the submission's index.
type BatchResult struct {
	// Result is the flow result (nil when Err is set).
	Result *Result
	// Err is the job's failure: the solve's error, or ErrBatchSaturated
	// when admission control rejected it.
	Err error
	// Key is the job's content digest (hex), "" for uncacheable options
	// (injections, optional stages, baseline modes — those never dedup).
	Key string
	// Shared marks a deduplicated job: its Result was decoded from the
	// canonical encoding of an identical earlier submission's solve
	// instead of solving again.
	Shared bool
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Parallel bounds concurrent solves (0 = runtime.GOMAXPROCS). Results
	// and cache hit/miss counters are bit-identical for any value.
	Parallel int
	// MaxPending is the admission-control bound on unique solves accepted
	// per batch (0 = unlimited); jobs collapsing onto an admitted solve
	// are always accepted — duplicates are free.
	MaxPending int
	// Cache, when set, overrides every job's Options.Cache: lookups and
	// stores go through it, so a batch warms the cross-run tiers.
	Cache *Cache
}

// RunBatch is RunBatchCtx with background context.
func RunBatch(jobs []BatchJob, bo BatchOptions) []BatchResult {
	return RunBatchCtx(context.Background(), jobs, bo)
}

// RunBatchCtx runs N flow submissions as one batch: every job is
// digested up front, identical submissions collapse to one solve, and
// the unique solves run on a bounded worker pool. Results fan back in
// submission order and are bit-identical to N serial runs under the
// canonical encoding (EncodeResult) — deduplicated jobs receive an
// independently decoded copy, never a shared mutable pointer. Dedup
// happens before the pool, so the cache's hit/miss counters are
// deterministic for any Parallel value.
func RunBatchCtx(ctx context.Context, jobs []BatchJob, bo BatchOptions) []BatchResult {
	n := len(jobs)
	out := make([]BatchResult, n)
	type group struct {
		key     string
		members []int
	}
	groups := make(map[string]*group, n)
	var order []*group
	for i := range jobs {
		opts := jobs[i].Opts.withDefaults()
		var key string
		if flowCacheable(opts) {
			key = flowDigest(jobs[i].Chip, jobs[i].Assay, opts).Hex()
		} else {
			// Uncacheable jobs never dedup: their semantics (drills,
			// optional stages) are outside the canonical envelope.
			key = fmt.Sprintf("!uncacheable-%d", i)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{key: key}
			groups[key] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}
	admitted := order
	if bo.MaxPending > 0 && len(order) > bo.MaxPending {
		admitted = order[:bo.MaxPending]
		for _, g := range order[bo.MaxPending:] {
			for _, i := range g.members {
				out[i] = BatchResult{Err: ErrBatchSaturated, Key: publicKey(g.key)}
			}
		}
	}
	par := bo.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, g := range admitted {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			first := g.members[0]
			opts := jobs[first].Opts
			if bo.Cache != nil {
				opts.Cache = bo.Cache
			}
			res, err := RunDFTFlowCtx(ctx, jobs[first].Chip, jobs[first].Assay, opts)
			var payload []byte
			if err == nil && len(g.members) > 1 {
				if p, e := EncodeResult(res); e == nil {
					payload = p
				}
			}
			for idx, i := range g.members {
				r := BatchResult{Key: publicKey(g.key), Err: err}
				if err == nil {
					r.Result = res
					if idx > 0 {
						r.Shared = true
						if payload != nil {
							if cp, e := DecodeResult(jobs[i].Chip, payload); e == nil {
								r.Result = cp
							}
						}
					}
				}
				out[i] = r
			}
		}(g)
	}
	wg.Wait()
	if bo.Cache != nil {
		// The fan-in barrier is the batch's serial point: trim the shared
		// memory tier to budget deterministically.
		bo.Cache.Trim()
	}
	return out
}

// publicKey hides the internal uncacheable sentinel from callers.
func publicKey(key string) string {
	if len(key) > 0 && key[0] == '!' {
		return ""
	}
	return key
}
