package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/pso"
	"repro/internal/solve"
)

// fastDiagnoseOpts returns small-but-real flow options with the optional
// stages enabled.
func fastDiagnoseOpts() Options {
	return Options{
		Outer:       pso.Config{Particles: 4, Iterations: 6},
		Inner:       pso.Config{Particles: 4, Iterations: 4},
		Seed:        7,
		Diagnose:    true,
		Reconfigure: true,
	}
}

// The full flow with diagnosis and reconfiguration enabled must localize
// every fault and reconfigure (or prove infeasible) every suspect set,
// with the new stages' counters visible in the stats.
func TestFlowDiagnoseReconfigureStages(t *testing.T) {
	rec := &flowstage.Recorder{}
	opts := fastDiagnoseOpts()
	opts.Observer = rec
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("RunDFTFlow: %v", err)
	}
	if res.Diagnosis == nil || res.Reconfiguration == nil {
		t.Fatal("missing diagnosis/reconfiguration blocks")
	}
	d := res.Diagnosis
	if d.Localized != d.Faults {
		t.Fatalf("localized %d of %d faults", d.Localized, d.Faults)
	}
	if d.MaxVectors >= d.ExhaustiveVectors {
		t.Fatalf("adaptive max %d vectors >= exhaustive %d: no saving", d.MaxVectors, d.ExhaustiveVectors)
	}
	r := res.Reconfiguration
	if r.Groups == 0 || r.Feasible+r.Infeasible+r.Failed != r.Groups {
		t.Fatalf("inconsistent reconfiguration summary %+v", r)
	}
	if r.Failed != 0 {
		t.Fatalf("%d untyped reconfiguration failures", r.Failed)
	}
	// Stage stats must carry the new stages with their counters.
	var sawDiag, sawReconf bool
	for _, st := range res.Stats.Stages {
		switch st.Name {
		case StageDiagnose:
			sawDiag = true
			if st.Counter("diagnose_faults") != int64(d.Faults) || st.Counter("diagnose_localized") != int64(d.Localized) {
				t.Fatalf("diagnose counters inconsistent: %v", st.Counters)
			}
		case StageReconfigure:
			sawReconf = true
			if st.Counter("reconf_groups") != int64(r.Groups) {
				t.Fatalf("reconf counters inconsistent: %v", st.Counters)
			}
		}
	}
	if !sawDiag || !sawReconf {
		t.Fatal("optional stages missing from stats")
	}
	// Observer saw the stage boundaries and chain attempts.
	events := rec.Events()
	var sawStart, sawChain bool
	for _, e := range events {
		if e == "start:"+StageDiagnose {
			sawStart = true
		}
		if e == "chain:"+StageDiagnose+":0:diagnose-adaptive:ok" {
			sawChain = true
		}
	}
	if !sawStart || !sawChain {
		t.Fatalf("observer missed diagnose events (start=%v chain=%v)", sawStart, sawChain)
	}
}

// Without the options the optional stages must not run: base StageNames
// only, nil blocks.
func TestFlowWithoutDiagnoseUnchanged(t *testing.T) {
	opts := fastDiagnoseOpts()
	opts.Diagnose, opts.Reconfigure = false, false
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("RunDFTFlow: %v", err)
	}
	if res.Diagnosis != nil || res.Reconfiguration != nil {
		t.Fatal("optional blocks present without the options")
	}
	if len(res.Stats.Stages) != len(StageNames) {
		t.Fatalf("%d stages, want %d", len(res.Stats.Stages), len(StageNames))
	}
}

// Injections targeting the optional chains without the stages enabled
// are usage errors; with the stages enabled they must ride the chain.
func TestFlowInjectionRouting(t *testing.T) {
	inject, err := solve.ParseInjections("diagnose-adaptive:timeout")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastDiagnoseOpts()
	opts.Diagnose, opts.Reconfigure = false, false
	opts.Inject = inject
	if _, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts); !errors.Is(err, solve.ErrUnknownInjectionTier) {
		t.Fatalf("err %v, want ErrUnknownInjectionTier", err)
	}

	// Enabled: the injected timeout degrades every diagnosis to greedy,
	// and an injected reconf panic degrades reconfiguration — the flow
	// still completes.
	opts = fastDiagnoseOpts()
	opts.Inject, err = solve.ParseInjections("diagnose-adaptive:timeout,reconf-strict:panic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("RunDFTFlow with injections: %v", err)
	}
	if res.Diagnosis.Degraded != res.Diagnosis.Faults {
		t.Fatalf("injected timeout should degrade all %d diagnoses, got %d", res.Diagnosis.Faults, res.Diagnosis.Degraded)
	}
	if res.Diagnosis.Localized != res.Diagnosis.Faults {
		t.Fatal("degraded diagnoses must still localize")
	}
	if res.Reconfiguration.Feasible > 0 && res.Reconfiguration.Degraded != res.Reconfiguration.Feasible {
		t.Fatalf("injected strict panic should degrade all feasible groups: %+v", res.Reconfiguration)
	}
}

// A context that dies before the optional stages must skip them
// gracefully: complete Result, nil blocks, Interrupted set — never an
// error. The stages are driven directly so the cancellation point is
// deterministic.
func TestFlowDiagnoseSkippedOnDeadCtx(t *testing.T) {
	opts := fastDiagnoseOpts()
	opts.Diagnose, opts.Reconfigure = false, false
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("RunDFTFlow: %v", err)
	}
	f := &flow{
		orig:    chip.IVD(),
		graph:   assay.IVD(),
		opts:    fastDiagnoseOpts().withDefaults(),
		metrics: fault.NewMetrics(),
	}
	f.final.Set(res)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stD := flowstage.StageStats{Name: StageDiagnose}
	if err := f.runDiagnoseStage(ctx, &stD); err != nil {
		t.Fatalf("diagnose stage must skip, not fail: %v", err)
	}
	if res.Diagnosis != nil || !res.Interrupted || stD.Counter("diagnose_skipped") != 1 {
		t.Fatalf("diagnose not skipped gracefully (block=%v interrupted=%v counter=%d)",
			res.Diagnosis, res.Interrupted, stD.Counter("diagnose_skipped"))
	}
	stR := flowstage.StageStats{Name: StageReconfigure}
	if err := f.runReconfigureStage(ctx, &stR); err != nil {
		t.Fatalf("reconfigure stage must skip, not fail: %v", err)
	}
	if res.Reconfiguration != nil || stR.Counter("reconf_skipped") != 1 {
		t.Fatal("reconfigure not skipped gracefully")
	}
	// Even with a live context, reconfigure must skip when diagnosis was
	// skipped (it consumes the suspect sets).
	stR2 := flowstage.StageStats{Name: StageReconfigure}
	if err := f.runReconfigureStage(context.Background(), &stR2); err != nil {
		t.Fatalf("reconfigure without diagnosis must skip, not fail: %v", err)
	}
	if res.Reconfiguration != nil || stR2.Counter("reconf_skipped") != 1 {
		t.Fatal("reconfigure did not skip without diagnosis")
	}
}
