// Package core implements the paper's primary contribution: the two-level
// particle-swarm-optimized design-for-testability flow (Section 4.2).
//
// The outer PSO explores DFT configurations — which free connection-grid
// edges become DFT channels so that a single pressure source and a single
// pressure meter suffice for a complete test. The inner (sub-)PSO explores
// valve-sharing schemes — which original valve each DFT valve borrows its
// control line from. A position is valid only if the test-vector set still
// detects every stuck-at-0/1 fault under the sharing (Section 4.1) and the
// application remains schedulable; its quality is the application's
// execution time, ∞ otherwise.
//
// The flow runs as an explicit flowstage.Pipeline of five stages —
// schedule → reference → banloop → outer → finalize (one file per stage,
// stage_*.go) — so wall-clock, solver iterations and cache traffic are
// attributable per stage (Result.Stats) and observable live
// (Options.Observer). The staged pipeline is bit-identical to the
// original monolithic flow for any fixed seed.
//
// Both PSO levels run the batch-synchronous engine: each generation's
// fitness evaluations fan out over the Options.Workers pool and the
// pbest/gbest updates apply in particle-index order after a barrier, so
// the whole flow's Result is bit-identical for any worker count. The
// fitness caches (augCache per configuration, innerCache per sharing
// scheme) are concurrency-safe content-keyed once-maps whose values are
// pure functions of their keys, and each configuration carries an
// incremental revalidation screen (reval.go) that rechecks a scheme only
// when a vector whose expansion it changed is load-bearing for coverage.
// Options.PSOBaseline restores the seed's serial asynchronous engines for
// A/B benchmarks (cmd/bench -pso).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/pso"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// Stage names of the DFT flow pipeline, in execution order.
const (
	// StageSchedule checks the assay on the unmodified chip and records
	// the original execution time.
	StageSchedule = "schedule"
	// StageReference produces the unbiased reference configuration via
	// the exact→heuristic→repair degradation chain.
	StageReference = "reference"
	// StageBanLoop diversifies configurations by banning edges of
	// configurations that admit no valid sharing.
	StageBanLoop = "banloop"
	// StageOuter runs the outer PSO over edge biases (each fitness call
	// runs the inner sharing sub-PSO) and picks the best configuration.
	StageOuter = "outer"
	// StageFinalize decodes the chosen configuration: unoptimized-sharing
	// baseline, control assignment, schedules, repaired vectors, Result.
	StageFinalize = "finalize"
	// StageDiagnose (optional, Options.Diagnose) runs the adaptive
	// fault-diagnosis campaign over the final test set: every modeled
	// fault is localized to its minimal suspect set via the
	// diagnose-adaptive → diagnose-greedy → diagnose-replay chain.
	StageDiagnose = "diagnose"
	// StageReconfigure (optional, Options.Reconfigure) reschedules the
	// assay around every diagnosed suspect set through the reconf-strict →
	// reconf-reroute → reconf-relaxed chain.
	StageReconfigure = "reconfigure"
)

// StageNames lists the always-on pipeline stages in execution order (the
// optional diagnose/reconfigure stages are appended when enabled).
var StageNames = []string{StageSchedule, StageReference, StageBanLoop, StageOuter, StageFinalize}

// Options tunes the DFT flow.
type Options struct {
	// Outer configures the configuration-level PSO (paper: 5 particles,
	// 100 iterations).
	Outer pso.Config
	// Inner configures the valve-sharing sub-PSO (paper: 5 particles).
	Inner pso.Config
	// Sched sets the execution-time model parameters.
	Sched sched.Params
	// UseILP solves the augmentation ILP (eqs. (5)-(6)) for the unbiased
	// reference configuration; the PSO itself always uses the heuristic
	// engine for speed. ILP and heuristic produce compatible
	// configurations, and the exact one seeds the search.
	UseILP bool
	// Seed makes the whole flow deterministic.
	Seed int64
	// Inject forces deterministic faults in the flow's degradation chains
	// (fault-injection drills and tests). Tier names route by prefix:
	// "diagnose-*" to the diagnosis chain, "reconf-*" to the
	// reconfiguration chain, everything else ("exact", "heuristic",
	// "repair") to the augmentation chain. Targeting a disabled stage's
	// chain is a usage error (ErrUnknownInjectionTier).
	Inject []solve.Injection
	// Diagnose appends the adaptive fault-diagnosis stage: after
	// finalize, every modeled fault is localized against the final test
	// set and the campaign summary lands in Result.Diagnosis.
	Diagnose bool
	// DiagnoseBudget caps the vectors the adaptive and greedy diagnosis
	// tiers may apply per fault (0 = unlimited); exceeding it degrades
	// the chain down to the exhaustive replay tier.
	DiagnoseBudget int
	// Reconfigure appends the test-around-fault reconfiguration stage
	// (implies Diagnose): the assay is rescheduled around every diagnosed
	// suspect set and the summary lands in Result.Reconfiguration.
	Reconfigure bool
	// ExactBudget caps the exact-ILP augmentation tier's wall-clock time
	// (0 = solve.DefaultExactBudget). Only meaningful with UseILP.
	ExactBudget time.Duration
	// Workers sets the worker-pool size shared by every coverage check in
	// the flow, by the branch-and-bound search of the exact-ILP tiers, and
	// by both PSO levels' batch-synchronous generation evaluation
	// (0 = runtime.GOMAXPROCS). Coverage results are bit-identical for any
	// worker count, and so are exhausted ILP solves (see package ilp for
	// the exact guarantee) and the PSO trajectories (see package pso) —
	// the whole Result is worker-count invariant.
	Workers int
	// PSOBaseline routes both PSO levels through the seed's serial
	// asynchronous engine (pso.MinimizeBaselineCtx) and disables the
	// incremental sharing-scheme revalidation screen — the A/B reference
	// cmd/bench -pso measures the batch engine against. The baseline
	// trajectory differs from the batch engine's (asynchronous gbest
	// updates), so results are comparable in quality, not bit-equal.
	PSOBaseline bool
	// PSORecompute disables every reuse layer of the fitness engine — the
	// sharing-scheme memo is never consulted, a configuration's inner
	// search is re-run on every encounter, and the revalidation screen is
	// off — so each evaluation pays its full augment+inner-PSO+schedule
	// cost. The caches are still populated (the flow's selection logic
	// reads them) and every value is a pure function of its key, so the
	// Result is bit-identical with or without this flag; only wall-clock
	// changes. This is cmd/bench -pso's serial recomputation leg, the
	// denominator of the engine's speedup — not a mode end users want.
	PSORecompute bool
	// SchedBaseline routes every schedule evaluation through the seed's
	// cold scheduler path (sched.RunProgressBaseline), which rebuilds its
	// routing and validation state per call, instead of the flow's cached
	// warm engines. Schedules are bit-identical either way (the engine's
	// defining property), so the whole Result is too; only wall-clock
	// changes. This is cmd/bench -sched's A/B reference leg.
	SchedBaseline bool
	// Observer receives live pipeline events: stage boundaries, solver
	// iteration ticks, chain tier transitions, cache-hit deltas. nil
	// disables observation. Observers never affect the search — results
	// are bit-identical with or without one.
	Observer flowstage.Observer
	// Cache is the optional content-addressed artifact cache: when set
	// (and the options are cacheable — no injections, drills or optional
	// stages), RunDFTFlowCtx consults it by (chip, assay, options) digest
	// before solving and stores the finalized Result after. Hits return a
	// decoded copy that is bit-identical to a fresh solve under the
	// canonical result encoding; the synthesized Stats carry an
	// "artifact" stage with art_* counters instead of the solve stages.
	// Caches never affect solved results — only whether the solve runs.
	Cache *Cache
	// MemoBytes bounds the flow's in-flight memoization (the
	// per-configuration artifact cache and the sharing-fitness memo)
	// to an approximate byte budget; cold entries evict at stage
	// boundaries, deterministically for any worker count, and evicted
	// values are recomputed on next use (pure functions of their keys,
	// so the Result never changes). 0 = unbounded (the historical
	// behavior).
	MemoBytes int64
}

func (o Options) withDefaults() Options {
	if o.Outer.Particles == 0 {
		o.Outer.Particles = 5
	}
	if o.Outer.Iterations == 0 {
		o.Outer.Iterations = 100
	}
	if o.Inner.Particles == 0 {
		o.Inner.Particles = 5
	}
	if o.Inner.Iterations == 0 {
		o.Inner.Iterations = 8
	}
	if o.Reconfigure {
		o.Diagnose = true
	}
	return o
}

// Result is the output of the DFT flow: the augmented architecture, the
// sharing scheme, the test vectors, and the execution-time comparison the
// paper's Table 1 reports.
type Result struct {
	// Aug is the best DFT configuration found.
	Aug *testgen.Augmentation
	// Control is the valve-sharing control assignment for Aug.Chip.
	Control *chip.Control
	// Partners[i] is the original valve whose control line DFT valve i
	// shares.
	Partners []int
	// PathVectors and CutVectors form the complete single-source
	// single-meter test set of the augmented chip.
	PathVectors []fault.Vector
	CutVectors  []fault.Vector

	// ExecOriginal is the assay execution time on the unmodified chip.
	ExecOriginal int
	// ExecNoPSO is the execution time with DFT valves and the first valid
	// sharing scheme found without optimization (Table 1's middle column).
	ExecNoPSO int
	// ExecPSO is the execution time with the PSO-optimized sharing.
	ExecPSO int
	// ExecIndependent is the execution time when DFT valves get their own
	// control lines (Fig. 7's comparison).
	ExecIndependent int

	// Trace is the outer PSO's global-best execution time after each
	// iteration (Fig. 9's convergence curves).
	Trace []float64

	// NumDFTValves and NumShared reproduce Table 1's first-row counts.
	NumDFTValves int
	NumShared    int
	// NumTestVectors is len(PathVectors)+len(CutVectors) (Fig. 8's DFT
	// bars).
	NumTestVectors int

	// Runtime is the wall-clock time of the flow (Table 1's runtime
	// column).
	Runtime time.Duration

	// Stats is the per-stage breakdown of Runtime: where wall-clock,
	// solver iterations and cache hits went. Stats.Total equals Runtime;
	// Stats.StageSum() accounts for all of it minus inter-stage glue.
	Stats *flowstage.Stats

	// Solve records which tier of the augmentation degradation chain
	// produced the reference configuration and why earlier tiers failed.
	Solve solve.Provenance
	// Leakage quantifies the membrane-leakage extension over the final
	// cut vectors on the sparse pressure engine: which closed-valve leaks
	// push a meter past its threshold. nil only when the final set has no
	// cut vectors to evaluate.
	Leakage *fault.LeakageReport

	// Diagnosis summarizes the adaptive fault-diagnosis campaign. nil
	// unless Options.Diagnose — or when the context died before the
	// stage could run (the flow then skips diagnosis gracefully and
	// marks the result Interrupted instead of failing).
	Diagnosis *DiagnosisSummary
	// Reconfiguration summarizes the test-around-fault reconfiguration
	// campaign. nil unless Options.Reconfigure, and nil whenever
	// Diagnosis is (reconfiguration consumes the diagnosed suspect
	// sets).
	Reconfiguration *ReconfigSummary

	// Interrupted is true when the flow's context expired or was
	// cancelled before the search finished; the result is then valid but
	// less optimized than a full run's.
	Interrupted bool
	// CoverageFull reports whether the final test set detects every
	// stuck-at-0/1 fault. It is false only for degraded (repair-tier)
	// configurations that left some channels untestable.
	CoverageFull bool
}

type flow struct {
	ctx   context.Context
	orig  *chip.Chip
	graph *assay.Graph
	opts  Options

	// obs receives pipeline events (may be nil for hand-built flows in
	// tests; every emit site guards). metrics aggregates fault-simulation
	// counters across all simulators the flow creates; cur is the stats
	// sink of the stage currently running, memoBase its metrics baseline.
	obs      flowstage.Observer
	metrics  *fault.Metrics
	cur      *flowstage.StageStats
	memoBase fault.MetricsSnapshot

	// schedMetrics aggregates warm-scheduler counters across every engine
	// the flow builds; schedBase is the running stage's baseline snapshot.
	// schedEngines caches one warm engine per augmented chip (the ban-set
	// and model parameters are fixed by opts.Sched for the whole flow);
	// entries are once-built so concurrent PSO workers racing on a new
	// chip construct its engine exactly once.
	schedMetrics *sched.Metrics
	schedBase    sched.MetricsSnapshot
	schedMu      sync.Mutex
	schedEngines map[*chip.Chip]*schedEngineEntry

	execOriginal int

	// diagInject and reconfInject are the Options.Inject entries routed
	// (by tier-name prefix) to the optional diagnosis and reconfiguration
	// chains; f.opts.Inject keeps only the augmentation-chain entries.
	diagInject   []solve.Injection
	reconfInject []solve.Injection

	// allowPartial permits DFT valves without a sharing partner (own
	// control line). Off during the main search — the paper requires full
	// sharing — and enabled only for the fallback retry when no full
	// sharing scheme validates anywhere.
	allowPartial bool

	// statMu serializes stage-counter and observer updates that arrive
	// from the PSO worker goroutines during the search stages. Stage
	// boundaries themselves are serial (workers are joined at every
	// generation barrier before a stage ends).
	statMu sync.Mutex

	// augCache memoizes per-configuration artifacts by content key
	// (augKey); innerCache memoizes sharing fitnesses by
	// configuration+partner key. Both are bounded singleflight caches
	// (internal/artifact): concurrent swarm workers racing on a key
	// compute it exactly once, and since every value is a pure function
	// of its key the cache contents are deterministic for any worker
	// count. Under Options.MemoBytes cold entries evict at stage
	// boundaries and are transparently recomputed on next use — the
	// flow's selection state lives in the non-evictable summaries
	// registry below, so eviction never changes a Result.
	augCache   *artifact.Cache[*augEval]
	innerCache *artifact.Cache[float64]

	// summaries is the non-evictable per-configuration search registry:
	// one light augSummary per configuration ever evaluated, holding the
	// inner-search outcome (searched/bestFit/bestPartners) and the worst
	// valid full-sharing fitness seen. The selection logic (bestEvalSeen,
	// the partial-sharing retry, worstValidSharing) reads only this
	// registry, never cache residency, so a bounded augCache/innerCache
	// is invisible to the flow's choices.
	sumMu     sync.Mutex
	summaries map[string]*augSummary

	// Typed artifacts handed between pipeline stages.
	chainOut flowstage.Artifact[solve.Outcome[*testgen.Augmentation]]
	refEval  flowstage.Artifact[*augEval]
	outer    flowstage.Artifact[pso.Result]
	bestEval flowstage.Artifact[*augEval]
	final    flowstage.Artifact[*Result]
}

// augEval caches the expensive per-configuration artifacts.
type augEval struct {
	aug     *testgen.Augmentation
	key     string // the augCache content key (augKey(aug))
	paths   []fault.Vector
	cuts    []fault.Vector
	cutsErr error

	// baselineUndetected is the number of faults the base vectors miss
	// under independent control — the configuration's intrinsic coverage
	// gap (non-zero only for partial repair-tier configurations). Sharing
	// schemes are penalized only for coverage lost beyond this gap.
	baselineUndetected int

	// screen is the configuration's incremental revalidation state
	// (reval.go), built once on first fitness evaluation; nil when
	// disabled or unavailable.
	screenOnce sync.Once
	screen     *sharingScreen

	// sum is the configuration's non-evictable search summary. Every
	// augEval instance for one content key (the original and any
	// recomputed-after-eviction successor) shares the same summary.
	sum *augSummary
}

// augSummary is the per-configuration search state that must survive
// cache eviction: which configurations were inner-searched and with what
// outcome. It is a few dozen bytes plus the configuration itself —
// the heavy artifacts (test vectors, revalidation screens) stay in the
// evictable augEval.
type augSummary struct {
	key string
	aug *testgen.Augmentation

	// mu guards the inner-search fields: concurrent outer particles that
	// land on the same configuration serialize on it, so the inner
	// sub-PSO runs exactly once per configuration.
	mu           sync.Mutex
	searched     bool
	bestFit      float64
	bestPartners []int

	// vmu guards the worst-valid tracker separately: it is updated from
	// inside sharing-fitness computes, which run while mu is held by the
	// inner search.
	vmu        sync.Mutex
	worstValid float64
	hasValid   bool
}

// noteValid records a computed sharing fitness when it is a valid FULL
// sharing (below the partial band): worstValidSharing reports the
// maximum such value as the unoptimized reference. Recording at compute
// time (rather than scanning innerCache at finalize) keeps the value
// exact even after the memo evicts entries.
func (s *augSummary) noteValid(fit float64) {
	if fit >= partialBand {
		return
	}
	s.vmu.Lock()
	if !s.hasValid || fit > s.worstValid {
		s.worstValid, s.hasValid = fit, true
	}
	s.vmu.Unlock()
}

// summaryFor returns the configuration's summary, creating it on first
// sight. Safe from concurrent PSO workers; hand-built flows (tests) may
// leave f.summaries nil.
func (f *flow) summaryFor(key string, aug *testgen.Augmentation) *augSummary {
	f.sumMu.Lock()
	defer f.sumMu.Unlock()
	if f.summaries == nil {
		f.summaries = make(map[string]*augSummary)
	}
	s, ok := f.summaries[key]
	if !ok {
		s = &augSummary{key: key, aug: aug, bestFit: math.Inf(1)}
		f.summaries[key] = s
	}
	return s
}

// summary returns the configuration's summary, or nil when it was never
// evaluated.
func (f *flow) summary(key string) *augSummary {
	f.sumMu.Lock()
	defer f.sumMu.Unlock()
	return f.summaries[key]
}

// sortedSummaryKeys returns every evaluated configuration key in
// lexicographic order — the deterministic iteration order the selection
// logic uses.
func (f *flow) sortedSummaryKeys() []string {
	f.sumMu.Lock()
	keys := make([]string, 0, len(f.summaries))
	for k := range f.summaries {
		keys = append(keys, k)
	}
	f.sumMu.Unlock()
	sort.Strings(keys)
	return keys
}

// numSummaries returns how many configurations were ever evaluated.
func (f *flow) numSummaries() int {
	f.sumMu.Lock()
	defer f.sumMu.Unlock()
	return len(f.summaries)
}

// newAugCache and newInnerCache build the flow's bounded memo caches;
// budget is Options.MemoBytes (0 = unbounded). The per-configuration
// cache gets three quarters of the budget (its entries carry the test
// vectors), the fitness memo the rest.
func newAugCache(budget int64) *artifact.Cache[*augEval] {
	return artifact.NewCache[*augEval](budget*3/4, augEvalSize)
}

func newInnerCache(budget int64) *artifact.Cache[float64] {
	return artifact.NewCache[float64](budget/4, func(float64) int64 { return 8 })
}

// augEvalSize approximates an augEval's resident bytes (vector payloads
// dominate; the lazily-built revalidation screen is not counted).
func augEvalSize(ev *augEval) int64 {
	size := int64(256)
	for i := range ev.paths {
		v := &ev.paths[i]
		size += 80 + 8*int64(len(v.Valves)+len(v.Sources)+len(v.Meters))
	}
	for i := range ev.cuts {
		v := &ev.cuts[i]
		size += 80 + 8*int64(len(v.Valves)+len(v.Sources)+len(v.Meters))
	}
	return size
}

// RunDFTFlow runs the complete two-level PSO DFT flow for one chip-assay
// combination.
func RunDFTFlow(c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	return RunDFTFlowCtx(context.Background(), c, g, opts)
}

// RunDFTFlowCtx is RunDFTFlow with cooperative cancellation and graceful
// degradation. The context bounds the search phases (augmentation chain,
// ban loop, outer and inner PSO): when it expires mid-search the flow
// finishes with the best configuration found so far and marks the result
// Interrupted, rather than failing. Finalization (decoding, scheduling,
// vector repair) always runs to completion so an interrupted flow still
// returns a complete, valid result. Only a context that dies before any
// configuration exists makes the flow fail with the context's error.
//
// The flow is an explicit five-stage pipeline (see StageNames); the
// returned Result.Stats carries the per-stage breakdown and
// opts.Observer, when set, receives every stage and solver event live.
func RunDFTFlowCtx(ctx context.Context, c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	cc := opts.Cache
	if cc == nil || !flowCacheable(opts) {
		return runDFTFlowSolve(ctx, c, g, opts, start)
	}
	d := flowDigest(c, g, opts)
	if payload, tier := cc.lookup("flow", d); payload != nil {
		if res, err := DecodeResult(c, payload); err == nil {
			res.Runtime = time.Since(start)
			res.Stats = artifactStats(opts.Observer, res.Runtime,
				map[string]int64{"art_" + tier + "_hits": 1})
			return res, nil
		}
		// Undecodable payload (stale schema, foreign chip): solve fresh;
		// the store below overwrites it.
	}
	res, err := runDFTFlowSolve(ctx, c, g, opts, start)
	if err != nil {
		return nil, err
	}
	counters := map[string]int64{"art_miss": 1}
	if !res.Interrupted {
		// Interrupted results are valid but less optimized — never the
		// canonical value for this digest, so never cached.
		if payload, encErr := EncodeResult(res); encErr == nil {
			cc.add("flow", d, payload)
			counters["art_store"] = 1
		}
	}
	appendArtifactStage(res.Stats, opts.Observer, counters)
	return res, nil
}

// runDFTFlowSolve is the uncached flow: the full five-stage pipeline.
func runDFTFlowSolve(ctx context.Context, c *chip.Chip, g *assay.Graph, opts Options, start time.Time) (*Result, error) {
	augInject, diagInject, reconfInject := solve.SplitInjections(opts.Inject)
	if len(diagInject) > 0 && !opts.Diagnose {
		return nil, fmt.Errorf("%w: %q (diagnosis stage not enabled)",
			solve.ErrUnknownInjectionTier, diagInject[0].Tier)
	}
	if len(reconfInject) > 0 && !opts.Reconfigure {
		return nil, fmt.Errorf("%w: %q (reconfiguration stage not enabled)",
			solve.ErrUnknownInjectionTier, reconfInject[0].Tier)
	}
	opts.Inject = augInject
	f := &flow{
		ctx:          ctx,
		orig:         c,
		graph:        g,
		opts:         opts,
		obs:          opts.Observer,
		metrics:      fault.NewMetrics(),
		diagInject:   diagInject,
		reconfInject: reconfInject,
		augCache:     newAugCache(opts.MemoBytes),
		innerCache:   newInnerCache(opts.MemoBytes),
		summaries:    make(map[string]*augSummary),
		schedMetrics: sched.NewMetrics(),
		schedEngines: make(map[*chip.Chip]*schedEngineEntry),
	}
	stages := []flowstage.Stage{
		{Name: StageSchedule, Run: f.runScheduleStage},
		{Name: StageReference, Run: f.runReferenceStage},
		{Name: StageBanLoop, Run: f.runBanLoopStage},
		{Name: StageOuter, Run: f.runOuterStage},
		{Name: StageFinalize, Run: f.runFinalizeStage},
	}
	if opts.Diagnose {
		stages = append(stages, flowstage.Stage{Name: StageDiagnose, Run: f.runDiagnoseStage})
	}
	if opts.Reconfigure {
		stages = append(stages, flowstage.Stage{Name: StageReconfigure, Run: f.runReconfigureStage})
	}
	pipe := &flowstage.Pipeline{
		Observer: f.obs,
		Stages:   stages,
	}
	stats, err := pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := f.final.Get()
	res.Runtime = time.Since(start)
	stats.Total = res.Runtime
	res.Stats = stats
	return res, nil
}

// --- per-stage instrumentation ---------------------------------------------

// observer returns the flow's observer, never nil.
func (f *flow) observer() flowstage.Observer { return flowstage.OrNop(f.obs) }

// stageName returns the running stage's name ("" outside a stage).
func (f *flow) stageName() string {
	if f.cur == nil {
		return ""
	}
	return f.cur.Name
}

// enterStage binds the stage's stats sink and snapshots the shared fault
// metrics so leaveStage can attribute the deltas.
func (f *flow) enterStage(st *flowstage.StageStats) {
	f.cur = st
	f.memoBase = f.metrics.Snapshot()
	f.schedBase = f.schedMetrics.Snapshot()
}

// leaveStage folds the stage's fault-simulation memo traffic into its
// stats and emits the per-cache deltas to the observer.
func (f *flow) leaveStage(st *flowstage.StageStats) {
	delta := f.metrics.Snapshot().Sub(f.memoBase)
	st.CacheHits += delta.MemoHits
	st.CacheMisses += delta.MemoMisses
	st.Count("fault_memo_hits", delta.MemoHits)
	st.Count("fault_memo_misses", delta.MemoMisses)
	st.Count("fault_campaigns", delta.Campaigns)
	st.Count("fault_screen_skips", delta.ScreenSkips)
	st.Count("fault_reach_checks", delta.ReachChecks)
	st.Count("fault_bridge_checks", delta.BridgeChecks)
	obs := f.observer()
	if delta.MemoHits != 0 || delta.MemoMisses != 0 {
		obs.CacheDelta(st.Name, "fault_memo", delta.MemoHits, delta.MemoMisses)
	}
	for _, cache := range []string{"aug_cache", "inner_cache"} {
		if h, m := st.Counter(cache+"_hits"), st.Counter(cache+"_misses"); h != 0 || m != 0 {
			obs.CacheDelta(st.Name, cache, h, m)
		}
	}
	sd := f.schedMetrics.Snapshot().Sub(f.schedBase)
	st.Count("sched_engine_builds", sd.EngineBuilds)
	st.Count("sched_warm_runs", sd.WarmRuns)
	st.Count("sched_candidate_hits", sd.CandidateHits)
	st.Count("sched_fallback_reroutes", sd.FallbackReroutes)
	// Stage boundaries are the flow's serial points: advance the memo
	// caches' recency epoch and trim them to the MemoBytes budget
	// (no-ops when unbounded). Evictions never change the Result — the
	// selection state lives in the summaries registry and every cached
	// value is a pure function of its key.
	if f.augCache != nil && f.innerCache != nil {
		f.augCache.AdvanceEpoch()
		f.innerCache.AdvanceEpoch()
		if ev := f.augCache.Stats().Evictions + f.innerCache.Stats().Evictions; ev > 0 {
			if st.Counters == nil {
				st.Counters = map[string]int64{}
			}
			st.Counters["memo_evictions"] = ev // cumulative, not a delta
		}
	}
	f.cur = nil
}

// noteCache attributes one flow-level cache lookup to the running stage.
// Safe to call from PSO worker goroutines: counter updates serialize on
// statMu (f.cur itself only changes at stage boundaries, when no workers
// run).
func (f *flow) noteCache(cache string, hit bool) {
	if f.cur == nil {
		return
	}
	f.statMu.Lock()
	defer f.statMu.Unlock()
	if hit {
		f.cur.CacheHits++
		f.cur.Count(cache+"_hits", 1)
	} else {
		f.cur.CacheMisses++
		f.cur.Count(cache+"_misses", 1)
	}
}

// countStage adds delta to the running stage's named counter; like
// noteCache it is safe from worker goroutines.
func (f *flow) countStage(name string, delta int64) {
	if f.cur == nil || delta == 0 {
		return
	}
	f.statMu.Lock()
	f.cur.Count(name, delta)
	f.statMu.Unlock()
}

// solverTick is the pso.Config.OnIteration adapter: it counts the
// iteration on the running stage and forwards the tick to the observer.
// Inner sub-PSO ticks may arrive from outer-swarm worker goroutines;
// statMu keeps the counter updates and observer emissions serialized
// (observers never see concurrent calls).
func (f *flow) solverTick(iteration int, best float64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	if f.cur != nil {
		f.cur.SolverIters++
	}
	if f.obs != nil {
		f.obs.SolverTick(f.stageName(), iteration, best)
	}
}

// newSimulator builds a fault simulator wired to the flow's shared
// metrics, so memo-cache traffic is attributable per stage.
func (f *flow) newSimulator(c *chip.Chip, ctrl *chip.Control) (*fault.Simulator, error) {
	sim, err := fault.NewSimulator(c, ctrl)
	if err == nil && f.metrics != nil {
		sim.SetMetrics(f.metrics)
	}
	return sim, err
}

// workers resolves Options.Workers the way the solver engines do: 0
// selects all CPU cores.
func (f *flow) workers() int {
	if f.opts.Workers > 0 {
		return f.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// minimize routes a PSO run through the batch-synchronous engine, or the
// seed's serial asynchronous baseline when Options.PSOBaseline is set.
func (f *flow) minimize(ctx context.Context, dim int, fitness func([]float64) float64, cfg pso.Config) pso.Result {
	if f.opts.PSOBaseline {
		return pso.MinimizeBaselineCtx(ctx, dim, fitness, cfg)
	}
	return pso.MinimizeCtx(ctx, dim, fitness, cfg)
}

// --- shared search machinery (used by the banloop/outer/finalize stages) ----

// augment produces a DFT configuration for the given edge-weight bias
// with the fast greedy engine (the search loops never pay for the ILP;
// the unbiased reference goes through solve.AugmentChain instead).
func (f *flow) augment(weights []float64) (*testgen.Augmentation, error) {
	return testgen.AugmentHeuristicCtx(f.ctx, f.orig, testgen.Options{EdgeWeights: weights})
}

// evalAug returns the cached per-configuration artifacts, generating paths
// and cuts on first sight. Concurrent swarm workers that land on the same
// configuration compute it exactly once (the losers block on the winner);
// since the artifacts are pure functions of the content key, the cache is
// deterministic for any worker count.
func (f *flow) evalAug(aug *testgen.Augmentation) *augEval {
	key := augKey(aug)
	ev, hit := f.augCache.Do(key, func() *augEval {
		ev := &augEval{aug: aug, key: key, sum: f.summaryFor(key, aug)}
		ev.paths = aug.PathVectors()
		ev.cuts, ev.cutsErr = testgen.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
		if ev.cutsErr != nil && len(aug.Uncovered) > 0 {
			// Partial repair-tier configuration: a complete stuck-at-1 cover
			// may be impossible. Keep the paths' coverage instead of failing —
			// the intrinsic gap is accounted for in baselineUndetected.
			ev.cuts, ev.cutsErr = nil, nil
		}
		if len(aug.Uncovered) > 0 {
			if sim, err := f.newSimulator(aug.Chip, chip.IndependentControl(aug.Chip)); err == nil {
				vectors := append(append([]fault.Vector{}, ev.paths...), ev.cuts...)
				cov := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverage(vectors, fault.AllFaults(aug.Chip))
				ev.baselineUndetected = len(cov.Undetected)
			}
		}
		return ev
	})
	f.noteCache("aug_cache", hit)
	return ev
}

// bestSharingFitness runs the inner sub-PSO for a configuration and
// returns the minimum execution time over valid sharing schemes (∞ if
// none). Results are cached per configuration.
func (f *flow) bestSharingFitness(ev *augEval) float64 {
	if ev.cutsErr != nil {
		return math.Inf(1)
	}
	sum := ev.sum
	sum.mu.Lock()
	defer sum.mu.Unlock()
	if sum.searched && !f.opts.PSORecompute {
		return sum.bestFit
	}
	// Under PSORecompute the search below re-runs on every encounter; the
	// inner seed derives from the configuration key, so it reproduces the
	// same result and the <-guarded updates are idempotent.
	sum.searched = true
	nDFT := ev.aug.Chip.NumDFTValves()
	innerCfg := f.opts.Inner
	innerCfg.Seed = f.opts.Seed ^ int64(len(ev.key)) ^ hashString(ev.key)
	innerCfg.OnIteration = f.solverTick
	innerCfg.Workers = f.workers()
	res := f.minimize(f.ctx, nDFT, func(x []float64) float64 {
		partners := f.decodePartners(ev.aug.Chip, x)
		return f.sharingFitness(ev, partners)
	}, innerCfg)
	f.countStage("pso_inner_evals", int64(res.Evaluations))
	if res.BestFitness < sum.bestFit {
		sum.bestFit = res.BestFitness
		sum.bestPartners = f.decodePartners(ev.aug.Chip, res.BestX)
	}
	if f.allowPartial {
		// Guaranteed baseline: every DFT valve on its own line is always
		// test-valid (the base vectors were generated under independent
		// control); the swarm may miss this corner of the position space.
		allOwn := make([]int, nDFT)
		for i := range allOwn {
			allOwn[i] = -1
		}
		if fit := f.sharingFitness(ev, allOwn); fit < sum.bestFit {
			sum.bestFit = fit
			sum.bestPartners = allOwn
		}
	}
	return sum.bestFit
}

// decodePartners maps a continuous inner-PSO position to an injective
// partner assignment (eq. (10)): component i selects an original valve,
// or — the last slot of the range — an own control line (-1, partial
// sharing, heavily penalized by the fitness so it only survives when no
// full sharing validates). Collisions on original valves are repaired by
// walking to the next free one.
func (f *flow) decodePartners(c *chip.Chip, x []float64) []int {
	nOrig := c.NumOriginalValves()
	used := make([]bool, nOrig)
	partners := make([]int, len(x))
	span := nOrig
	if f.allowPartial {
		span = nOrig + 1
	}
	nUsed := 0
	for i, xi := range x {
		p := pso.MapToPartner(xi, span)
		// Own line when the position selects the partial-sharing slot, or
		// when no free original line remains — a chip with no original
		// valves (nOrig == 0, MapToPartner collapses to slot 0 == nOrig)
		// or more DFT valves than originals would otherwise send the
		// collision walk below into an endless loop over all-used lines.
		if p == nOrig || nUsed == nOrig {
			partners[i] = -1 // own line
			continue
		}
		for used[p] {
			p = (p + 1) % nOrig
		}
		used[p] = true
		nUsed++
		partners[i] = p
	}
	return partners
}

// sharingFitness is the paper's position quality: ∞ if the sharing scheme
// breaks the test set or the schedule, otherwise the execution time.
// Memoized per (configuration, partner assignment); swarms revisit
// schemes constantly, and concurrent workers racing on one compute it
// exactly once.
func (f *flow) sharingFitness(ev *augEval, partners []int) float64 {
	if f.opts.PSORecompute {
		// Serial recomputation leg: pay the full cost on every call, but
		// still record the (identical, pure-function) value so the
		// finalize stage's selection reads see the same population.
		fit := f.computeSharingFitness(ev, partners)
		ev.sum.noteValid(fit)
		f.innerCache.Do(innerKey(ev, partners), func() float64 { return fit })
		f.noteCache("inner_cache", false)
		return fit
	}
	fit, hit := f.innerCache.Do(innerKey(ev, partners), func() float64 {
		fit := f.computeSharingFitness(ev, partners)
		ev.sum.noteValid(fit)
		return fit
	})
	f.noteCache("inner_cache", hit)
	return fit
}

// innerKey is the innerCache content key of a sharing scheme; the
// configuration key prefix keeps worstValidSharing's per-configuration
// scan possible (see innerKeyPrefix).
func innerKey(ev *augEval, partners []int) string {
	return innerKeyPrefix(ev) + intsKey(partners)
}

// innerKeyPrefix returns the key prefix shared by every sharing scheme of
// one configuration. The "|p" separator cannot occur inside augKey's own
// structure (path segments start with "|["), so no configuration key is a
// prefix of another configuration's scheme keys.
func innerKeyPrefix(ev *augEval) string { return ev.key + "|p" }

// Invalid positions get graded penalties above penaltyBase instead of a
// flat ∞, so the swarm can climb towards validity (fewer uncovered faults
// first, then schedulability). Anything at or above validThreshold counts
// as "quality ∞" in the paper's sense. Valid schemes that leave some DFT
// valves on their own control lines (partial sharing, the fallback for
// chips where no full sharing validates) are penalized per unshared valve
// in the partialBand, so any full sharing always dominates them.
const (
	penaltyBase    = 1e9
	validThreshold = 1e8
	partialBand    = 1e6
)

// schedEngineEntry is one once-built warm scheduler engine in the flow's
// per-chip cache.
type schedEngineEntry struct {
	once sync.Once
	eng  *sched.Engine
	err  error
}

// schedEngine returns the flow's warm scheduler engine for chip c, building
// it at most once per chip. Augmented chips are distinct pointers, so the
// pointer key separates configurations; the ban-set and model parameters
// are fixed by opts.Sched for the whole flow, so one engine per chip is
// exhaustive. Safe from concurrent PSO workers.
func (f *flow) schedEngine(c *chip.Chip) (*sched.Engine, error) {
	f.schedMu.Lock()
	if f.schedEngines == nil {
		// Hand-built flows (tests) skip RunDFTFlowCtx's initialization.
		f.schedEngines = make(map[*chip.Chip]*schedEngineEntry)
	}
	ent, ok := f.schedEngines[c]
	if !ok {
		ent = &schedEngineEntry{}
		f.schedEngines[c] = ent
	}
	f.schedMu.Unlock()
	ent.once.Do(func() {
		ent.eng, ent.err = sched.NewEngine(c, f.graph, f.opts.Sched)
		if ent.err == nil {
			ent.eng.SetMetrics(f.schedMetrics)
		}
	})
	return ent.eng, ent.err
}

// runSched schedules the assay on c under ctrl through the flow's warm
// engine for that chip — or through the preserved cold path when
// Options.SchedBaseline is set. Both paths return bit-identical schedules.
func (f *flow) runSched(c *chip.Chip, ctrl *chip.Control) (*sched.Schedule, int, error) {
	if f.opts.SchedBaseline {
		return sched.RunProgressBaseline(c, ctrl, f.graph, f.opts.Sched)
	}
	eng, err := f.schedEngine(c)
	if err != nil {
		return nil, 0, err
	}
	return eng.RunProgress(ctrl, f.opts.Sched)
}

// execTime is the makespan-only convenience over runSched; ok is false for
// unschedulable combinations.
func (f *flow) execTime(c *chip.Chip, ctrl *chip.Control) (int, bool) {
	sch, _, err := f.runSched(c, ctrl)
	if err != nil {
		return 0, false
	}
	return sch.ExecutionTime, true
}

func (f *flow) computeSharingFitness(ev *augEval, partners []int) float64 {
	c := ev.aug.Chip
	ctrl, err := chip.SharedControl(c, partners)
	if err != nil {
		return math.Inf(1)
	}
	// Incremental revalidation (reval.go): when the screen proves the base
	// vectors keep full coverage under this sharing — structurally, or by
	// re-simulating only the witnesses the partner change touched — the
	// full repair pass is provably redundant and is skipped. Fitness
	// values are bit-identical with and without the screen.
	full := false
	if scr := f.screenFor(ev); scr != nil && scr.fullCoverage(f, ctrl, partners) {
		full = true
	}
	// Test validation (Section 4.1): every stuck-at-0 and stuck-at-1 fault
	// must remain detectable under the sharing. Vectors masked by the
	// sharing are repaired with sharing-immune replacements ("test vectors
	// considering valve sharing").
	if !full {
		f.countStage("reval_slowpath", 1)
		var rPaths, rCuts []fault.Vector
		rPaths, rCuts, full = testgen.RepairVectors(c, ctrl, ev.aug.Source, ev.aug.Meter, ev.paths, ev.cuts)
		if !full {
			sim, simErr := f.newSimulator(c, ctrl)
			if simErr != nil {
				return math.Inf(1)
			}
			vectors := append(append([]fault.Vector{}, rPaths...), rCuts...)
			cov, covErr := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverageCtx(f.ctx, vectors, fault.AllFaults(c))
			if covErr != nil {
				// Cancelled mid-campaign: the surrounding PSO is unwinding, so
				// any finite fitness here would be discarded anyway.
				return math.Inf(1)
			}
			if len(cov.Undetected) > ev.baselineUndetected {
				return penaltyBase + 1e6*float64(len(cov.Undetected))
			}
			// The sharing loses nothing beyond the configuration's intrinsic
			// gap (partial repair-tier config): judge it on schedulability.
		}
	}
	// Application validation: the assay must still complete; quality is
	// its execution time. Wedged schedules are graded by how far they got,
	// giving the swarm a slope towards schedulability.
	sch, opsDone, err := f.runSched(c, ctrl)
	if err != nil {
		return penaltyBase + 1e5 - 100*float64(opsDone)
	}
	fit := float64(sch.ExecutionTime)
	for _, p := range partners {
		if p == -1 {
			fit += partialBand
		}
	}
	return fit
}

// bestEvalSeen returns the configuration with the lowest sharing fitness
// among all configurations evaluated so far (falling back to ref).
// Iteration follows the lexicographic order of the configuration content
// keys and only a strictly better fitness displaces the incumbent, so
// ties resolve deterministically — ref first, then the smallest key —
// instead of by Go's randomized map order.
func (f *flow) bestEvalSeen(ref *augEval) *augEval {
	best := ref
	bestFit := f.bestSharingFitness(ref)
	var bestSum *augSummary
	for _, k := range f.sortedSummaryKeys() {
		sum := f.summary(k)
		sum.mu.Lock()
		searched, fit := sum.searched, sum.bestFit
		sum.mu.Unlock()
		if !searched {
			continue
		}
		if fit < bestFit {
			bestSum, bestFit = sum, fit
		}
	}
	if bestSum != nil {
		// Re-materialize the winner's artifacts: the resident entry when
		// cached, a pure recompute when the memo evicted them.
		if ev, ok := f.augCache.Get(bestSum.key); ok {
			return ev
		}
		best = f.evalAug(bestSum.aug)
	}
	return best
}

func (f *flow) freeEdges() []int {
	var out []int
	for e := 0; e < f.orig.Grid.NumEdges(); e++ {
		if _, occupied := f.orig.ValveOnEdge(e); !occupied {
			out = append(out, e)
		}
	}
	return out
}

// augKey is the content key of a configuration: the added edges, the test
// ports and the full path routing. Paths are part of the key because the
// greedy engine can realize the same edge set with different routings
// under different weight biases, and cached artifacts must be pure
// functions of their key for the concurrent caches to stay deterministic.
func augKey(aug *testgen.Augmentation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%v|s%d|m%d", aug.AddedEdges, aug.Source, aug.Meter)
	for _, p := range aug.Paths {
		fmt.Fprintf(&b, "|%v", p)
	}
	return b.String()
}

func intsKey(s []int) string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
