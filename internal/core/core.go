// Package core implements the paper's primary contribution: the two-level
// particle-swarm-optimized design-for-testability flow (Section 4.2).
//
// The outer PSO explores DFT configurations — which free connection-grid
// edges become DFT channels so that a single pressure source and a single
// pressure meter suffice for a complete test. The inner (sub-)PSO explores
// valve-sharing schemes — which original valve each DFT valve borrows its
// control line from. A position is valid only if the test-vector set still
// detects every stuck-at-0/1 fault under the sharing (Section 4.1) and the
// application remains schedulable; its quality is the application's
// execution time, ∞ otherwise.
//
// The flow runs as an explicit flowstage.Pipeline of five stages —
// schedule → reference → banloop → outer → finalize (one file per stage,
// stage_*.go) — so wall-clock, solver iterations and cache traffic are
// attributable per stage (Result.Stats) and observable live
// (Options.Observer). The staged pipeline is bit-identical to the
// original monolithic flow for any fixed seed.
package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/pso"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// Stage names of the DFT flow pipeline, in execution order.
const (
	// StageSchedule checks the assay on the unmodified chip and records
	// the original execution time.
	StageSchedule = "schedule"
	// StageReference produces the unbiased reference configuration via
	// the exact→heuristic→repair degradation chain.
	StageReference = "reference"
	// StageBanLoop diversifies configurations by banning edges of
	// configurations that admit no valid sharing.
	StageBanLoop = "banloop"
	// StageOuter runs the outer PSO over edge biases (each fitness call
	// runs the inner sharing sub-PSO) and picks the best configuration.
	StageOuter = "outer"
	// StageFinalize decodes the chosen configuration: unoptimized-sharing
	// baseline, control assignment, schedules, repaired vectors, Result.
	StageFinalize = "finalize"
	// StageDiagnose (optional, Options.Diagnose) runs the adaptive
	// fault-diagnosis campaign over the final test set: every modeled
	// fault is localized to its minimal suspect set via the
	// diagnose-adaptive → diagnose-greedy → diagnose-replay chain.
	StageDiagnose = "diagnose"
	// StageReconfigure (optional, Options.Reconfigure) reschedules the
	// assay around every diagnosed suspect set through the reconf-strict →
	// reconf-reroute → reconf-relaxed chain.
	StageReconfigure = "reconfigure"
)

// StageNames lists the always-on pipeline stages in execution order (the
// optional diagnose/reconfigure stages are appended when enabled).
var StageNames = []string{StageSchedule, StageReference, StageBanLoop, StageOuter, StageFinalize}

// Options tunes the DFT flow.
type Options struct {
	// Outer configures the configuration-level PSO (paper: 5 particles,
	// 100 iterations).
	Outer pso.Config
	// Inner configures the valve-sharing sub-PSO (paper: 5 particles).
	Inner pso.Config
	// Sched sets the execution-time model parameters.
	Sched sched.Params
	// UseILP solves the augmentation ILP (eqs. (5)-(6)) for the unbiased
	// reference configuration; the PSO itself always uses the heuristic
	// engine for speed. ILP and heuristic produce compatible
	// configurations, and the exact one seeds the search.
	UseILP bool
	// Seed makes the whole flow deterministic.
	Seed int64
	// Inject forces deterministic faults in the flow's degradation chains
	// (fault-injection drills and tests). Tier names route by prefix:
	// "diagnose-*" to the diagnosis chain, "reconf-*" to the
	// reconfiguration chain, everything else ("exact", "heuristic",
	// "repair") to the augmentation chain. Targeting a disabled stage's
	// chain is a usage error (ErrUnknownInjectionTier).
	Inject []solve.Injection
	// Diagnose appends the adaptive fault-diagnosis stage: after
	// finalize, every modeled fault is localized against the final test
	// set and the campaign summary lands in Result.Diagnosis.
	Diagnose bool
	// DiagnoseBudget caps the vectors the adaptive and greedy diagnosis
	// tiers may apply per fault (0 = unlimited); exceeding it degrades
	// the chain down to the exhaustive replay tier.
	DiagnoseBudget int
	// Reconfigure appends the test-around-fault reconfiguration stage
	// (implies Diagnose): the assay is rescheduled around every diagnosed
	// suspect set and the summary lands in Result.Reconfiguration.
	Reconfigure bool
	// ExactBudget caps the exact-ILP augmentation tier's wall-clock time
	// (0 = solve.DefaultExactBudget). Only meaningful with UseILP.
	ExactBudget time.Duration
	// Workers sets the worker-pool size shared by every coverage check in
	// the flow and by the branch-and-bound search of the exact-ILP tiers
	// (0 = runtime.GOMAXPROCS). Coverage results are bit-identical for any
	// worker count, and so are exhausted ILP solves (see package ilp for
	// the exact guarantee).
	Workers int
	// Observer receives live pipeline events: stage boundaries, solver
	// iteration ticks, chain tier transitions, cache-hit deltas. nil
	// disables observation. Observers never affect the search — results
	// are bit-identical with or without one.
	Observer flowstage.Observer
}

func (o Options) withDefaults() Options {
	if o.Outer.Particles == 0 {
		o.Outer.Particles = 5
	}
	if o.Outer.Iterations == 0 {
		o.Outer.Iterations = 100
	}
	if o.Inner.Particles == 0 {
		o.Inner.Particles = 5
	}
	if o.Inner.Iterations == 0 {
		o.Inner.Iterations = 8
	}
	if o.Reconfigure {
		o.Diagnose = true
	}
	return o
}

// Result is the output of the DFT flow: the augmented architecture, the
// sharing scheme, the test vectors, and the execution-time comparison the
// paper's Table 1 reports.
type Result struct {
	// Aug is the best DFT configuration found.
	Aug *testgen.Augmentation
	// Control is the valve-sharing control assignment for Aug.Chip.
	Control *chip.Control
	// Partners[i] is the original valve whose control line DFT valve i
	// shares.
	Partners []int
	// PathVectors and CutVectors form the complete single-source
	// single-meter test set of the augmented chip.
	PathVectors []fault.Vector
	CutVectors  []fault.Vector

	// ExecOriginal is the assay execution time on the unmodified chip.
	ExecOriginal int
	// ExecNoPSO is the execution time with DFT valves and the first valid
	// sharing scheme found without optimization (Table 1's middle column).
	ExecNoPSO int
	// ExecPSO is the execution time with the PSO-optimized sharing.
	ExecPSO int
	// ExecIndependent is the execution time when DFT valves get their own
	// control lines (Fig. 7's comparison).
	ExecIndependent int

	// Trace is the outer PSO's global-best execution time after each
	// iteration (Fig. 9's convergence curves).
	Trace []float64

	// NumDFTValves and NumShared reproduce Table 1's first-row counts.
	NumDFTValves int
	NumShared    int
	// NumTestVectors is len(PathVectors)+len(CutVectors) (Fig. 8's DFT
	// bars).
	NumTestVectors int

	// Runtime is the wall-clock time of the flow (Table 1's runtime
	// column).
	Runtime time.Duration

	// Stats is the per-stage breakdown of Runtime: where wall-clock,
	// solver iterations and cache hits went. Stats.Total equals Runtime;
	// Stats.StageSum() accounts for all of it minus inter-stage glue.
	Stats *flowstage.Stats

	// Solve records which tier of the augmentation degradation chain
	// produced the reference configuration and why earlier tiers failed.
	Solve solve.Provenance
	// Leakage quantifies the membrane-leakage extension over the final
	// cut vectors on the sparse pressure engine: which closed-valve leaks
	// push a meter past its threshold. nil only when the final set has no
	// cut vectors to evaluate.
	Leakage *fault.LeakageReport

	// Diagnosis summarizes the adaptive fault-diagnosis campaign. nil
	// unless Options.Diagnose — or when the context died before the
	// stage could run (the flow then skips diagnosis gracefully and
	// marks the result Interrupted instead of failing).
	Diagnosis *DiagnosisSummary
	// Reconfiguration summarizes the test-around-fault reconfiguration
	// campaign. nil unless Options.Reconfigure, and nil whenever
	// Diagnosis is (reconfiguration consumes the diagnosed suspect
	// sets).
	Reconfiguration *ReconfigSummary

	// Interrupted is true when the flow's context expired or was
	// cancelled before the search finished; the result is then valid but
	// less optimized than a full run's.
	Interrupted bool
	// CoverageFull reports whether the final test set detects every
	// stuck-at-0/1 fault. It is false only for degraded (repair-tier)
	// configurations that left some channels untestable.
	CoverageFull bool
}

// evalCacheKey identifies an (augmentation, sharing) pair.
type evalCacheKey struct {
	augKey   string
	partners string
}

type flow struct {
	ctx   context.Context
	orig  *chip.Chip
	graph *assay.Graph
	opts  Options

	// obs receives pipeline events (may be nil for hand-built flows in
	// tests; every emit site guards). metrics aggregates fault-simulation
	// counters across all simulators the flow creates; cur is the stats
	// sink of the stage currently running, memoBase its metrics baseline.
	obs      flowstage.Observer
	metrics  *fault.Metrics
	cur      *flowstage.StageStats
	memoBase fault.MetricsSnapshot

	execOriginal int

	// diagInject and reconfInject are the Options.Inject entries routed
	// (by tier-name prefix) to the optional diagnosis and reconfiguration
	// chains; f.opts.Inject keeps only the augmentation-chain entries.
	diagInject   []solve.Injection
	reconfInject []solve.Injection

	// allowPartial permits DFT valves without a sharing partner (own
	// control line). Off during the main search — the paper requires full
	// sharing — and enabled only for the fallback retry when no full
	// sharing scheme validates anywhere.
	allowPartial bool

	augCache   map[string]*augEval
	innerCache map[evalCacheKey]float64

	// Typed artifacts handed between pipeline stages.
	chainOut flowstage.Artifact[solve.Outcome[*testgen.Augmentation]]
	refEval  flowstage.Artifact[*augEval]
	outer    flowstage.Artifact[pso.Result]
	bestEval flowstage.Artifact[*augEval]
	final    flowstage.Artifact[*Result]
}

// augEval caches the expensive per-configuration artifacts.
type augEval struct {
	aug     *testgen.Augmentation
	paths   []fault.Vector
	cuts    []fault.Vector
	cutsErr error

	// baselineUndetected is the number of faults the base vectors miss
	// under independent control — the configuration's intrinsic coverage
	// gap (non-zero only for partial repair-tier configurations). Sharing
	// schemes are penalized only for coverage lost beyond this gap.
	baselineUndetected int

	searched     bool
	bestFit      float64
	bestPartners []int
}

// RunDFTFlow runs the complete two-level PSO DFT flow for one chip-assay
// combination.
func RunDFTFlow(c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	return RunDFTFlowCtx(context.Background(), c, g, opts)
}

// RunDFTFlowCtx is RunDFTFlow with cooperative cancellation and graceful
// degradation. The context bounds the search phases (augmentation chain,
// ban loop, outer and inner PSO): when it expires mid-search the flow
// finishes with the best configuration found so far and marks the result
// Interrupted, rather than failing. Finalization (decoding, scheduling,
// vector repair) always runs to completion so an interrupted flow still
// returns a complete, valid result. Only a context that dies before any
// configuration exists makes the flow fail with the context's error.
//
// The flow is an explicit five-stage pipeline (see StageNames); the
// returned Result.Stats carries the per-stage breakdown and
// opts.Observer, when set, receives every stage and solver event live.
func RunDFTFlowCtx(ctx context.Context, c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	augInject, diagInject, reconfInject := solve.SplitInjections(opts.Inject)
	if len(diagInject) > 0 && !opts.Diagnose {
		return nil, fmt.Errorf("%w: %q (diagnosis stage not enabled)",
			solve.ErrUnknownInjectionTier, diagInject[0].Tier)
	}
	if len(reconfInject) > 0 && !opts.Reconfigure {
		return nil, fmt.Errorf("%w: %q (reconfiguration stage not enabled)",
			solve.ErrUnknownInjectionTier, reconfInject[0].Tier)
	}
	opts.Inject = augInject
	f := &flow{
		ctx:          ctx,
		orig:         c,
		graph:        g,
		opts:         opts,
		obs:          opts.Observer,
		metrics:      fault.NewMetrics(),
		diagInject:   diagInject,
		reconfInject: reconfInject,
		augCache:     map[string]*augEval{},
		innerCache:   map[evalCacheKey]float64{},
	}
	stages := []flowstage.Stage{
		{Name: StageSchedule, Run: f.runScheduleStage},
		{Name: StageReference, Run: f.runReferenceStage},
		{Name: StageBanLoop, Run: f.runBanLoopStage},
		{Name: StageOuter, Run: f.runOuterStage},
		{Name: StageFinalize, Run: f.runFinalizeStage},
	}
	if opts.Diagnose {
		stages = append(stages, flowstage.Stage{Name: StageDiagnose, Run: f.runDiagnoseStage})
	}
	if opts.Reconfigure {
		stages = append(stages, flowstage.Stage{Name: StageReconfigure, Run: f.runReconfigureStage})
	}
	pipe := &flowstage.Pipeline{
		Observer: f.obs,
		Stages:   stages,
	}
	stats, err := pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := f.final.Get()
	res.Runtime = time.Since(start)
	stats.Total = res.Runtime
	res.Stats = stats
	return res, nil
}

// --- per-stage instrumentation ---------------------------------------------

// observer returns the flow's observer, never nil.
func (f *flow) observer() flowstage.Observer { return flowstage.OrNop(f.obs) }

// stageName returns the running stage's name ("" outside a stage).
func (f *flow) stageName() string {
	if f.cur == nil {
		return ""
	}
	return f.cur.Name
}

// enterStage binds the stage's stats sink and snapshots the shared fault
// metrics so leaveStage can attribute the deltas.
func (f *flow) enterStage(st *flowstage.StageStats) {
	f.cur = st
	f.memoBase = f.metrics.Snapshot()
}

// leaveStage folds the stage's fault-simulation memo traffic into its
// stats and emits the per-cache deltas to the observer.
func (f *flow) leaveStage(st *flowstage.StageStats) {
	delta := f.metrics.Snapshot().Sub(f.memoBase)
	st.CacheHits += delta.MemoHits
	st.CacheMisses += delta.MemoMisses
	st.Count("fault_memo_hits", delta.MemoHits)
	st.Count("fault_memo_misses", delta.MemoMisses)
	st.Count("fault_campaigns", delta.Campaigns)
	obs := f.observer()
	if delta.MemoHits != 0 || delta.MemoMisses != 0 {
		obs.CacheDelta(st.Name, "fault_memo", delta.MemoHits, delta.MemoMisses)
	}
	for _, cache := range []string{"aug_cache", "inner_cache"} {
		if h, m := st.Counter(cache+"_hits"), st.Counter(cache+"_misses"); h != 0 || m != 0 {
			obs.CacheDelta(st.Name, cache, h, m)
		}
	}
	f.cur = nil
}

// noteCache attributes one flow-level cache lookup to the running stage.
func (f *flow) noteCache(cache string, hit bool) {
	if f.cur == nil {
		return
	}
	if hit {
		f.cur.CacheHits++
		f.cur.Count(cache+"_hits", 1)
	} else {
		f.cur.CacheMisses++
		f.cur.Count(cache+"_misses", 1)
	}
}

// solverTick is the pso.Config.OnIteration adapter: it counts the
// iteration on the running stage and forwards the tick to the observer.
func (f *flow) solverTick(iteration int, best float64) {
	if f.cur != nil {
		f.cur.SolverIters++
	}
	if f.obs != nil {
		f.obs.SolverTick(f.stageName(), iteration, best)
	}
}

// newSimulator builds a fault simulator wired to the flow's shared
// metrics, so memo-cache traffic is attributable per stage.
func (f *flow) newSimulator(c *chip.Chip, ctrl *chip.Control) (*fault.Simulator, error) {
	sim, err := fault.NewSimulator(c, ctrl)
	if err == nil && f.metrics != nil {
		sim.SetMetrics(f.metrics)
	}
	return sim, err
}

// --- shared search machinery (used by the banloop/outer/finalize stages) ----

// augment produces a DFT configuration for the given edge-weight bias
// with the fast greedy engine (the search loops never pay for the ILP;
// the unbiased reference goes through solve.AugmentChain instead).
func (f *flow) augment(weights []float64) (*testgen.Augmentation, error) {
	return testgen.AugmentHeuristicCtx(f.ctx, f.orig, testgen.Options{EdgeWeights: weights})
}

// evalAug returns the cached per-configuration artifacts, generating paths
// and cuts on first sight.
func (f *flow) evalAug(aug *testgen.Augmentation) *augEval {
	key := augKey(aug)
	if ev, ok := f.augCache[key]; ok {
		f.noteCache("aug_cache", true)
		return ev
	}
	f.noteCache("aug_cache", false)
	ev := &augEval{aug: aug, bestFit: math.Inf(1)}
	ev.paths = aug.PathVectors()
	ev.cuts, ev.cutsErr = testgen.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if ev.cutsErr != nil && len(aug.Uncovered) > 0 {
		// Partial repair-tier configuration: a complete stuck-at-1 cover
		// may be impossible. Keep the paths' coverage instead of failing —
		// the intrinsic gap is accounted for in baselineUndetected.
		ev.cuts, ev.cutsErr = nil, nil
	}
	if len(aug.Uncovered) > 0 {
		if sim, err := f.newSimulator(aug.Chip, chip.IndependentControl(aug.Chip)); err == nil {
			vectors := append(append([]fault.Vector{}, ev.paths...), ev.cuts...)
			cov := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverage(vectors, fault.AllFaults(aug.Chip))
			ev.baselineUndetected = len(cov.Undetected)
		}
	}
	f.augCache[key] = ev
	return ev
}

// bestSharingFitness runs the inner sub-PSO for a configuration and
// returns the minimum execution time over valid sharing schemes (∞ if
// none). Results are cached per configuration.
func (f *flow) bestSharingFitness(ev *augEval) float64 {
	if ev.cutsErr != nil {
		return math.Inf(1)
	}
	if ev.searched {
		return ev.bestFit
	}
	ev.searched = true
	nDFT := ev.aug.Chip.NumDFTValves()
	innerCfg := f.opts.Inner
	innerCfg.Seed = f.opts.Seed ^ int64(len(augKey(ev.aug))) ^ hashString(augKey(ev.aug))
	innerCfg.OnIteration = f.solverTick
	res := pso.MinimizeCtx(f.ctx, nDFT, func(x []float64) float64 {
		partners := f.decodePartners(ev.aug.Chip, x)
		return f.sharingFitness(ev, partners)
	}, innerCfg)
	if res.BestFitness < ev.bestFit {
		ev.bestFit = res.BestFitness
		ev.bestPartners = f.decodePartners(ev.aug.Chip, res.BestX)
	}
	if f.allowPartial {
		// Guaranteed baseline: every DFT valve on its own line is always
		// test-valid (the base vectors were generated under independent
		// control); the swarm may miss this corner of the position space.
		allOwn := make([]int, nDFT)
		for i := range allOwn {
			allOwn[i] = -1
		}
		if fit := f.sharingFitness(ev, allOwn); fit < ev.bestFit {
			ev.bestFit = fit
			ev.bestPartners = allOwn
		}
	}
	return ev.bestFit
}

// decodePartners maps a continuous inner-PSO position to an injective
// partner assignment (eq. (10)): component i selects an original valve,
// or — the last slot of the range — an own control line (-1, partial
// sharing, heavily penalized by the fitness so it only survives when no
// full sharing validates). Collisions on original valves are repaired by
// walking to the next free one.
func (f *flow) decodePartners(c *chip.Chip, x []float64) []int {
	nOrig := c.NumOriginalValves()
	used := make([]bool, nOrig)
	partners := make([]int, len(x))
	span := nOrig
	if f.allowPartial {
		span = nOrig + 1
	}
	for i, xi := range x {
		p := pso.MapToPartner(xi, span)
		if p == nOrig {
			partners[i] = -1 // own line
			continue
		}
		for used[p] {
			p = (p + 1) % nOrig
		}
		used[p] = true
		partners[i] = p
	}
	return partners
}

// sharingFitness is the paper's position quality: ∞ if the sharing scheme
// breaks the test set or the schedule, otherwise the execution time.
func (f *flow) sharingFitness(ev *augEval, partners []int) float64 {
	key := evalCacheKey{augKey: augKey(ev.aug), partners: intsKey(partners)}
	if v, ok := f.innerCache[key]; ok {
		f.noteCache("inner_cache", true)
		return v
	}
	f.noteCache("inner_cache", false)
	fit := f.computeSharingFitness(ev, partners)
	f.innerCache[key] = fit
	return fit
}

// Invalid positions get graded penalties above penaltyBase instead of a
// flat ∞, so the swarm can climb towards validity (fewer uncovered faults
// first, then schedulability). Anything at or above validThreshold counts
// as "quality ∞" in the paper's sense. Valid schemes that leave some DFT
// valves on their own control lines (partial sharing, the fallback for
// chips where no full sharing validates) are penalized per unshared valve
// in the partialBand, so any full sharing always dominates them.
const (
	penaltyBase    = 1e9
	validThreshold = 1e8
	partialBand    = 1e6
)

func (f *flow) computeSharingFitness(ev *augEval, partners []int) float64 {
	c := ev.aug.Chip
	ctrl, err := chip.SharedControl(c, partners)
	if err != nil {
		return math.Inf(1)
	}
	// Test validation (Section 4.1): every stuck-at-0 and stuck-at-1 fault
	// must remain detectable under the sharing. Vectors masked by the
	// sharing are repaired with sharing-immune replacements ("test vectors
	// considering valve sharing").
	rPaths, rCuts, full := testgen.RepairVectors(c, ctrl, ev.aug.Source, ev.aug.Meter, ev.paths, ev.cuts)
	if !full {
		sim, simErr := f.newSimulator(c, ctrl)
		if simErr != nil {
			return math.Inf(1)
		}
		vectors := append(append([]fault.Vector{}, rPaths...), rCuts...)
		cov, covErr := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverageCtx(f.ctx, vectors, fault.AllFaults(c))
		if covErr != nil {
			// Cancelled mid-campaign: the surrounding PSO is unwinding, so
			// any finite fitness here would be discarded anyway.
			return math.Inf(1)
		}
		if len(cov.Undetected) > ev.baselineUndetected {
			return penaltyBase + 1e6*float64(len(cov.Undetected))
		}
		// The sharing loses nothing beyond the configuration's intrinsic
		// gap (partial repair-tier config): judge it on schedulability.
	}
	// Application validation: the assay must still complete; quality is
	// its execution time. Wedged schedules are graded by how far they got,
	// giving the swarm a slope towards schedulability.
	sch, opsDone, err := sched.RunProgress(c, ctrl, f.graph, f.opts.Sched)
	if err != nil {
		return penaltyBase + 1e5 - 100*float64(opsDone)
	}
	fit := float64(sch.ExecutionTime)
	for _, p := range partners {
		if p == -1 {
			fit += partialBand
		}
	}
	return fit
}

// bestEvalSeen returns the configuration with the lowest sharing fitness
// among all configurations evaluated so far (falling back to ref).
func (f *flow) bestEvalSeen(ref *augEval) *augEval {
	best := ref
	bestFit := f.bestSharingFitness(ref)
	for _, ev := range f.augCache {
		if !ev.searched {
			continue
		}
		if ev.bestFit < bestFit {
			best, bestFit = ev, ev.bestFit
		}
	}
	return best
}

func (f *flow) freeEdges() []int {
	var out []int
	for e := 0; e < f.orig.Grid.NumEdges(); e++ {
		if _, occupied := f.orig.ValveOnEdge(e); !occupied {
			out = append(out, e)
		}
	}
	return out
}

func augKey(aug *testgen.Augmentation) string { return intsKey(aug.AddedEdges) }

func intsKey(s []int) string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
