// Package core implements the paper's primary contribution: the two-level
// particle-swarm-optimized design-for-testability flow (Section 4.2).
//
// The outer PSO explores DFT configurations — which free connection-grid
// edges become DFT channels so that a single pressure source and a single
// pressure meter suffice for a complete test. The inner (sub-)PSO explores
// valve-sharing schemes — which original valve each DFT valve borrows its
// control line from. A position is valid only if the test-vector set still
// detects every stuck-at-0/1 fault under the sharing (Section 4.1) and the
// application remains schedulable; its quality is the application's
// execution time, ∞ otherwise.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/pso"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/testgen"
)

// Options tunes the DFT flow.
type Options struct {
	// Outer configures the configuration-level PSO (paper: 5 particles,
	// 100 iterations).
	Outer pso.Config
	// Inner configures the valve-sharing sub-PSO (paper: 5 particles).
	Inner pso.Config
	// Sched sets the execution-time model parameters.
	Sched sched.Params
	// UseILP solves the augmentation ILP (eqs. (5)-(6)) for the unbiased
	// reference configuration; the PSO itself always uses the heuristic
	// engine for speed. ILP and heuristic produce compatible
	// configurations, and the exact one seeds the search.
	UseILP bool
	// Seed makes the whole flow deterministic.
	Seed int64
	// Inject forces deterministic faults in the augmentation degradation
	// chain (fault-injection drills and tests). Tier names: "exact",
	// "heuristic", "repair".
	Inject []solve.Injection
	// ExactBudget caps the exact-ILP augmentation tier's wall-clock time
	// (0 = solve.DefaultExactBudget). Only meaningful with UseILP.
	ExactBudget time.Duration
	// Workers sets the fault-simulation worker-pool size used by every
	// coverage check in the flow (0 = runtime.GOMAXPROCS). Coverage
	// results are bit-identical for any worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Outer.Particles == 0 {
		o.Outer.Particles = 5
	}
	if o.Outer.Iterations == 0 {
		o.Outer.Iterations = 100
	}
	if o.Inner.Particles == 0 {
		o.Inner.Particles = 5
	}
	if o.Inner.Iterations == 0 {
		o.Inner.Iterations = 8
	}
	return o
}

// Result is the output of the DFT flow: the augmented architecture, the
// sharing scheme, the test vectors, and the execution-time comparison the
// paper's Table 1 reports.
type Result struct {
	// Aug is the best DFT configuration found.
	Aug *testgen.Augmentation
	// Control is the valve-sharing control assignment for Aug.Chip.
	Control *chip.Control
	// Partners[i] is the original valve whose control line DFT valve i
	// shares.
	Partners []int
	// PathVectors and CutVectors form the complete single-source
	// single-meter test set of the augmented chip.
	PathVectors []fault.Vector
	CutVectors  []fault.Vector

	// ExecOriginal is the assay execution time on the unmodified chip.
	ExecOriginal int
	// ExecNoPSO is the execution time with DFT valves and the first valid
	// sharing scheme found without optimization (Table 1's middle column).
	ExecNoPSO int
	// ExecPSO is the execution time with the PSO-optimized sharing.
	ExecPSO int
	// ExecIndependent is the execution time when DFT valves get their own
	// control lines (Fig. 7's comparison).
	ExecIndependent int

	// Trace is the outer PSO's global-best execution time after each
	// iteration (Fig. 9's convergence curves).
	Trace []float64

	// NumDFTValves and NumShared reproduce Table 1's first-row counts.
	NumDFTValves int
	NumShared    int
	// NumTestVectors is len(PathVectors)+len(CutVectors) (Fig. 8's DFT
	// bars).
	NumTestVectors int

	// Runtime is the wall-clock time of the flow (Table 1's runtime
	// column).
	Runtime time.Duration

	// Solve records which tier of the augmentation degradation chain
	// produced the reference configuration and why earlier tiers failed.
	Solve solve.Provenance
	// Interrupted is true when the flow's context expired or was
	// cancelled before the search finished; the result is then valid but
	// less optimized than a full run's.
	Interrupted bool
	// CoverageFull reports whether the final test set detects every
	// stuck-at-0/1 fault. It is false only for degraded (repair-tier)
	// configurations that left some channels untestable.
	CoverageFull bool
}

// evalCacheKey identifies an (augmentation, sharing) pair.
type evalCacheKey struct {
	augKey   string
	partners string
}

type flow struct {
	ctx   context.Context
	orig  *chip.Chip
	graph *assay.Graph
	opts  Options

	execOriginal int

	// allowPartial permits DFT valves without a sharing partner (own
	// control line). Off during the main search — the paper requires full
	// sharing — and enabled only for the fallback retry when no full
	// sharing scheme validates anywhere.
	allowPartial bool

	augCache   map[string]*augEval
	innerCache map[evalCacheKey]float64
}

// augEval caches the expensive per-configuration artifacts.
type augEval struct {
	aug     *testgen.Augmentation
	paths   []fault.Vector
	cuts    []fault.Vector
	cutsErr error

	// baselineUndetected is the number of faults the base vectors miss
	// under independent control — the configuration's intrinsic coverage
	// gap (non-zero only for partial repair-tier configurations). Sharing
	// schemes are penalized only for coverage lost beyond this gap.
	baselineUndetected int

	searched     bool
	bestFit      float64
	bestPartners []int
}

// RunDFTFlow runs the complete two-level PSO DFT flow for one chip-assay
// combination.
func RunDFTFlow(c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	return RunDFTFlowCtx(context.Background(), c, g, opts)
}

// RunDFTFlowCtx is RunDFTFlow with cooperative cancellation and graceful
// degradation. The context bounds the search phases (augmentation chain,
// ban loop, outer and inner PSO): when it expires mid-search the flow
// finishes with the best configuration found so far and marks the result
// Interrupted, rather than failing. Finalization (decoding, scheduling,
// vector repair) always runs to completion so an interrupted flow still
// returns a complete, valid result. Only a context that dies before any
// configuration exists makes the flow fail with the context's error.
func RunDFTFlowCtx(ctx context.Context, c *chip.Chip, g *assay.Graph, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	f := &flow{
		ctx:        ctx,
		orig:       c,
		graph:      g,
		opts:       opts,
		augCache:   map[string]*augEval{},
		innerCache: map[evalCacheKey]float64{},
	}

	execOrig, ok := sched.ExecutionTime(c, nil, g, opts.Sched)
	if !ok {
		return nil, fmt.Errorf("core: assay %s is unschedulable on the original chip %s", g.Name, c.Name)
	}
	f.execOriginal = execOrig

	// Reference configuration (unbiased) via the degradation chain: exact
	// ILP if requested, then the greedy heuristic, then best-effort
	// repair. This is also the "DFT without PSO" architecture.
	chainOut, err := solve.AugmentChain(c, solve.ChainConfig{
		Exact:       opts.UseILP,
		ExactBudget: opts.ExactBudget,
		Inject:      opts.Inject,
	}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: no DFT configuration for %s: %w", c.Name, err)
	}
	refAug := chainOut.Value
	refEval := f.evalAug(refAug)
	if refEval.cutsErr != nil {
		return nil, fmt.Errorf("core: cut generation failed on %s: %w", c.Name, refEval.cutsErr)
	}

	// Configuration diversification ("ban loop"): whenever a configuration
	// admits no valid sharing at all, penalize its added edges heavily and
	// re-solve, forcing the next DFT channels somewhere structurally
	// different. This seeds the outer PSO with genuinely distinct
	// configurations — the heuristic's weight response is quantized, so
	// random particle positions alone explore only a handful.
	banWeights := make([]float64, c.Grid.NumEdges())
	for round := 0; round < 2*len(refAug.AddedEdges)+8; round++ {
		aug, err := f.augment(banWeights)
		if err != nil {
			break
		}
		ev := f.evalAug(aug)
		if f.bestSharingFitness(ev) < validThreshold {
			break
		}
		for _, e := range ev.aug.AddedEdges {
			banWeights[e] += 16
		}
	}

	// Outer PSO over free-edge bias weights.
	freeEdges := f.freeEdges()
	outerCfg := opts.Outer
	outerCfg.Seed = opts.Seed
	outer := pso.MinimizeCtx(ctx, len(freeEdges), func(x []float64) float64 {
		weights := make([]float64, c.Grid.NumEdges())
		for i, e := range freeEdges {
			weights[e] = x[i] * 4 // bias scale
		}
		aug, err := f.augment(weights)
		if err != nil {
			return math.Inf(1)
		}
		ev := f.evalAug(aug)
		return f.bestSharingFitness(ev)
	}, outerCfg)

	// Decode the best configuration.
	bestWeights := make([]float64, c.Grid.NumEdges())
	for i, e := range freeEdges {
		bestWeights[e] = outer.BestX[i] * 4
	}
	bestAug, err := f.augment(bestWeights)
	if err != nil {
		bestAug = refAug
	}
	_ = f.bestSharingFitness(f.evalAug(bestAug)) // ensure the PSO's pick is searched
	// Final choice: the best configuration seen anywhere — the PSO's best
	// position, the ban-loop seeds, or the reference.
	bestEval := f.bestEvalSeen(refEval)
	if f.bestSharingFitness(bestEval) >= validThreshold {
		// No full sharing scheme validates anywhere. Fall back to partial
		// sharing: DFT valves that cannot share get their own control
		// lines (still penalized, so every shareable valve shares).
		f.allowPartial = true
		keys := make([]string, 0, len(f.augCache))
		for k, ev := range f.augCache {
			ev.searched = false
			ev.bestFit = math.Inf(1)
			ev.bestPartners = nil
			keys = append(keys, k)
		}
		sort.Strings(keys)
		const retryConfigs = 8
		for i, k := range keys {
			if i >= retryConfigs {
				break
			}
			f.bestSharingFitness(f.augCache[k])
		}
		bestEval = f.bestEvalSeen(refEval)
		if f.bestSharingFitness(bestEval) >= validThreshold {
			return nil, fmt.Errorf("core: no valid sharing scheme found for %s/%s", c.Name, g.Name)
		}
	}

	// Table 1 middle column: the same final architecture with the first
	// valid sharing scheme found without optimization. Run this before
	// extracting the final scheme — if a blind draw happens to beat the
	// swarm's best, the flow keeps it (the framework reports the best
	// scheme it ever validated).
	noPSOExec, noPSOPartners, noPSOerr := f.firstValidSharing(bestEval)
	if noPSOerr != nil {
		// Valid sharings are too rare for blind draws (the PSO needed its
		// guided search to find one); report the worst valid scheme the
		// search encountered as the unoptimized reference.
		noPSOExec = f.worstValidSharing(bestEval)
	} else if float64(noPSOExec) < bestEval.bestFit {
		bestEval.bestFit = float64(noPSOExec)
		bestEval.bestPartners = noPSOPartners
	}

	partners := bestEval.bestPartners
	ctrl, err := chip.SharedControl(bestEval.aug.Chip, partners)
	if err != nil {
		return nil, err
	}
	// Fitness values may carry partial-sharing penalties; report the real
	// schedule length.
	execPSO, okPSO := sched.ExecutionTime(bestEval.aug.Chip, ctrl, g, opts.Sched)
	if !okPSO {
		return nil, fmt.Errorf("core: internal error: chosen sharing unschedulable on %s/%s", c.Name, g.Name)
	}

	execIndep, ok := sched.ExecutionTime(bestEval.aug.Chip, chip.IndependentControl(bestEval.aug.Chip), g, opts.Sched)
	if !ok {
		execIndep = -1
	}

	// Final test set: the base vectors repaired for the chosen sharing
	// scheme ("test vectors considering valve sharing").
	finalPaths, finalCuts, full := testgen.RepairVectors(bestEval.aug.Chip, ctrl, bestEval.aug.Source, bestEval.aug.Meter, bestEval.paths, bestEval.cuts)
	if !full {
		// Tolerable only for a partial repair-tier configuration whose
		// intrinsic gap explains the miss; anything else is a bug.
		und := -1
		if sim, simErr := fault.NewSimulator(bestEval.aug.Chip, ctrl); simErr == nil {
			all := append(append([]fault.Vector{}, finalPaths...), finalCuts...)
			// Finalization always runs to completion, so no ctx here.
			cov := fault.NewEngine(sim, opts.Workers).EvaluateCoverage(all, fault.AllFaults(bestEval.aug.Chip))
			und = len(cov.Undetected)
		}
		if len(bestEval.aug.Uncovered) == 0 || und < 0 || und > bestEval.baselineUndetected {
			return nil, fmt.Errorf("core: internal error: chosen sharing lost coverage on %s/%s", c.Name, g.Name)
		}
	}

	// The trace records the outer swarm's global best per iteration; the
	// framework's final choice may come from the ban-loop seeds or the
	// post-PSO search, so close the trace with the best value actually
	// achieved (the paper's Fig. 9 plots the framework result).
	trace := append([]float64(nil), outer.Trace...)
	if n := len(trace); n > 0 && bestEval.bestFit < trace[n-1] {
		trace[n-1] = bestEval.bestFit
	}

	res := &Result{
		Aug:             bestEval.aug,
		Control:         ctrl,
		Partners:        partners,
		PathVectors:     finalPaths,
		CutVectors:      finalCuts,
		ExecOriginal:    execOrig,
		ExecNoPSO:       noPSOExec,
		ExecPSO:         execPSO,
		ExecIndependent: execIndep,
		Trace:           outer.Trace,
		NumDFTValves:    bestEval.aug.Chip.NumDFTValves(),
		NumShared:       ctrl.NumShared(),
		NumTestVectors:  len(finalPaths) + len(finalCuts),
		Runtime:         time.Since(start),
		Solve:           chainOut.Provenance,
		Interrupted:     ctx.Err() != nil,
		CoverageFull:    full,
	}
	return res, nil
}

// augment produces a DFT configuration for the given edge-weight bias
// with the fast greedy engine (the search loops never pay for the ILP;
// the unbiased reference goes through solve.AugmentChain instead).
func (f *flow) augment(weights []float64) (*testgen.Augmentation, error) {
	return testgen.AugmentHeuristicCtx(f.ctx, f.orig, testgen.Options{EdgeWeights: weights})
}

// evalAug returns the cached per-configuration artifacts, generating paths
// and cuts on first sight.
func (f *flow) evalAug(aug *testgen.Augmentation) *augEval {
	key := augKey(aug)
	if ev, ok := f.augCache[key]; ok {
		return ev
	}
	ev := &augEval{aug: aug, bestFit: math.Inf(1)}
	ev.paths = aug.PathVectors()
	ev.cuts, ev.cutsErr = testgen.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if ev.cutsErr != nil && len(aug.Uncovered) > 0 {
		// Partial repair-tier configuration: a complete stuck-at-1 cover
		// may be impossible. Keep the paths' coverage instead of failing —
		// the intrinsic gap is accounted for in baselineUndetected.
		ev.cuts, ev.cutsErr = nil, nil
	}
	if len(aug.Uncovered) > 0 {
		if sim, err := fault.NewSimulator(aug.Chip, chip.IndependentControl(aug.Chip)); err == nil {
			vectors := append(append([]fault.Vector{}, ev.paths...), ev.cuts...)
			cov := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverage(vectors, fault.AllFaults(aug.Chip))
			ev.baselineUndetected = len(cov.Undetected)
		}
	}
	f.augCache[key] = ev
	return ev
}

// bestSharingFitness runs the inner sub-PSO for a configuration and
// returns the minimum execution time over valid sharing schemes (∞ if
// none). Results are cached per configuration.
func (f *flow) bestSharingFitness(ev *augEval) float64 {
	if ev.cutsErr != nil {
		return math.Inf(1)
	}
	if ev.searched {
		return ev.bestFit
	}
	ev.searched = true
	nDFT := ev.aug.Chip.NumDFTValves()
	innerCfg := f.opts.Inner
	innerCfg.Seed = f.opts.Seed ^ int64(len(augKey(ev.aug))) ^ hashString(augKey(ev.aug))
	res := pso.MinimizeCtx(f.ctx, nDFT, func(x []float64) float64 {
		partners := f.decodePartners(ev.aug.Chip, x)
		return f.sharingFitness(ev, partners)
	}, innerCfg)
	if res.BestFitness < ev.bestFit {
		ev.bestFit = res.BestFitness
		ev.bestPartners = f.decodePartners(ev.aug.Chip, res.BestX)
	}
	if f.allowPartial {
		// Guaranteed baseline: every DFT valve on its own line is always
		// test-valid (the base vectors were generated under independent
		// control); the swarm may miss this corner of the position space.
		allOwn := make([]int, nDFT)
		for i := range allOwn {
			allOwn[i] = -1
		}
		if fit := f.sharingFitness(ev, allOwn); fit < ev.bestFit {
			ev.bestFit = fit
			ev.bestPartners = allOwn
		}
	}
	return ev.bestFit
}

// decodePartners maps a continuous inner-PSO position to an injective
// partner assignment (eq. (10)): component i selects an original valve,
// or — the last slot of the range — an own control line (-1, partial
// sharing, heavily penalized by the fitness so it only survives when no
// full sharing validates). Collisions on original valves are repaired by
// walking to the next free one.
func (f *flow) decodePartners(c *chip.Chip, x []float64) []int {
	nOrig := c.NumOriginalValves()
	used := make([]bool, nOrig)
	partners := make([]int, len(x))
	span := nOrig
	if f.allowPartial {
		span = nOrig + 1
	}
	for i, xi := range x {
		p := pso.MapToPartner(xi, span)
		if p == nOrig {
			partners[i] = -1 // own line
			continue
		}
		for used[p] {
			p = (p + 1) % nOrig
		}
		used[p] = true
		partners[i] = p
	}
	return partners
}

// sharingFitness is the paper's position quality: ∞ if the sharing scheme
// breaks the test set or the schedule, otherwise the execution time.
func (f *flow) sharingFitness(ev *augEval, partners []int) float64 {
	key := evalCacheKey{augKey: augKey(ev.aug), partners: intsKey(partners)}
	if v, ok := f.innerCache[key]; ok {
		return v
	}
	fit := f.computeSharingFitness(ev, partners)
	f.innerCache[key] = fit
	return fit
}

// Invalid positions get graded penalties above penaltyBase instead of a
// flat ∞, so the swarm can climb towards validity (fewer uncovered faults
// first, then schedulability). Anything at or above validThreshold counts
// as "quality ∞" in the paper's sense. Valid schemes that leave some DFT
// valves on their own control lines (partial sharing, the fallback for
// chips where no full sharing validates) are penalized per unshared valve
// in the partialBand, so any full sharing always dominates them.
const (
	penaltyBase    = 1e9
	validThreshold = 1e8
	partialBand    = 1e6
)

func (f *flow) computeSharingFitness(ev *augEval, partners []int) float64 {
	c := ev.aug.Chip
	ctrl, err := chip.SharedControl(c, partners)
	if err != nil {
		return math.Inf(1)
	}
	// Test validation (Section 4.1): every stuck-at-0 and stuck-at-1 fault
	// must remain detectable under the sharing. Vectors masked by the
	// sharing are repaired with sharing-immune replacements ("test vectors
	// considering valve sharing").
	rPaths, rCuts, full := testgen.RepairVectors(c, ctrl, ev.aug.Source, ev.aug.Meter, ev.paths, ev.cuts)
	if !full {
		sim, simErr := fault.NewSimulator(c, ctrl)
		if simErr != nil {
			return math.Inf(1)
		}
		vectors := append(append([]fault.Vector{}, rPaths...), rCuts...)
		cov, covErr := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverageCtx(f.ctx, vectors, fault.AllFaults(c))
		if covErr != nil {
			// Cancelled mid-campaign: the surrounding PSO is unwinding, so
			// any finite fitness here would be discarded anyway.
			return math.Inf(1)
		}
		if len(cov.Undetected) > ev.baselineUndetected {
			return penaltyBase + 1e6*float64(len(cov.Undetected))
		}
		// The sharing loses nothing beyond the configuration's intrinsic
		// gap (partial repair-tier config): judge it on schedulability.
	}
	// Application validation: the assay must still complete; quality is
	// its execution time. Wedged schedules are graded by how far they got,
	// giving the swarm a slope towards schedulability.
	sch, opsDone, err := sched.RunProgress(c, ctrl, f.graph, f.opts.Sched)
	if err != nil {
		return penaltyBase + 1e5 - 100*float64(opsDone)
	}
	fit := float64(sch.ExecutionTime)
	for _, p := range partners {
		if p == -1 {
			fit += partialBand
		}
	}
	return fit
}

// firstValidSharing emulates "DFT without PSO optimization" (Table 1's
// middle column): it walks seeded-random partner permutations and returns
// the first scheme that passes the test-validity and schedulability
// checks, with NO attempt to minimize execution time — exactly a DFT
// insertion whose control sharing was picked for test validity alone.
func (f *flow) firstValidSharing(ev *augEval) (int, []int, error) {
	c := ev.aug.Chip
	nOrig := c.NumOriginalValves()
	nDFT := c.NumDFTValves()
	rng := rand.New(rand.NewSource(f.opts.Seed*2654435761 + 17))
	const attempts = 64
	for try := 0; try < attempts; try++ {
		perm := rng.Perm(nOrig)
		partners := perm[:nDFT]
		fit := f.sharingFitness(ev, partners)
		if fit < validThreshold {
			return int(fit), append([]int(nil), partners...), nil
		}
	}
	return 0, nil, fmt.Errorf("no valid sharing scheme in %d random draws (%d DFT valves, %d originals)", attempts, nDFT, nOrig)
}

// worstValidSharing returns the highest execution time among the FULL
// sharing schemes evaluated for this configuration during the search —
// i.e. a valid but unoptimized scheme. When only partial-sharing schemes
// validated, the best one's penalty is stripped to recover its schedule
// length.
func (f *flow) worstValidSharing(ev *augEval) int {
	key := augKey(ev.aug)
	worst := -1.0
	for k, v := range f.innerCache {
		if k.augKey == key && v < partialBand && v > worst {
			worst = v
		}
	}
	if worst < 0 {
		w := ev.bestFit
		for w >= partialBand && w < validThreshold {
			w -= partialBand
		}
		return int(w)
	}
	return int(worst)
}

// bestEvalSeen returns the configuration with the lowest sharing fitness
// among all configurations evaluated so far (falling back to ref).
func (f *flow) bestEvalSeen(ref *augEval) *augEval {
	best := ref
	bestFit := f.bestSharingFitness(ref)
	for _, ev := range f.augCache {
		if !ev.searched {
			continue
		}
		if ev.bestFit < bestFit {
			best, bestFit = ev, ev.bestFit
		}
	}
	return best
}

func (f *flow) freeEdges() []int {
	var out []int
	for e := 0; e < f.orig.Grid.NumEdges(); e++ {
		if _, occupied := f.orig.ValveOnEdge(e); !occupied {
			out = append(out, e)
		}
	}
	return out
}

func augKey(aug *testgen.Augmentation) string { return intsKey(aug.AddedEdges) }

func intsKey(s []int) string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
