package core

import (
	"context"
	"fmt"

	"repro/internal/flowstage"
)

// runScheduleStage checks that the assay is schedulable on the unmodified
// chip and records its execution time — the baseline every DFT variant is
// compared against (Table 1's first column). An unschedulable assay fails
// the whole flow: there is nothing to make testable.
func (f *flow) runScheduleStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)

	execOrig, ok := f.execTime(f.orig, nil)
	if !ok {
		return fmt.Errorf("core: assay %s is unschedulable on the original chip %s", f.graph.Name, f.orig.Name)
	}
	f.execOriginal = execOrig
	st.Count("exec_original", int64(execOrig))
	return nil
}
