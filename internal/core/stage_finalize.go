package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/flowstage"
	"repro/internal/testgen"
)

// runFinalizeStage decodes the chosen configuration into the flow's
// deliverables: the unoptimized-sharing baseline (Table 1's middle
// column), the shared control assignment, the execution-time comparison,
// and the final repaired test-vector set. Finalization deliberately
// ignores the context — an interrupted search still produces a complete,
// valid Result (marked Interrupted) — so this stage must stay cheap
// relative to the search stages. The assembled Result is published as the
// final artifact.
func (f *flow) runFinalizeStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)

	c, g := f.orig, f.graph
	bestEval := f.bestEval.Get()
	outer := f.outer.Get()
	chainOut := f.chainOut.Get()

	// Table 1 middle column: the same final architecture with the first
	// valid sharing scheme found without optimization. Run this before
	// extracting the final scheme — if a blind draw happens to beat the
	// swarm's best, the flow keeps it (the framework reports the best
	// scheme it ever validated).
	noPSOExec, noPSOPartners, noPSOerr := f.firstValidSharing(bestEval)
	if noPSOerr != nil {
		// Valid sharings are too rare for blind draws (the PSO needed its
		// guided search to find one); report the worst valid scheme the
		// search encountered as the unoptimized reference.
		noPSOExec = f.worstValidSharing(bestEval)
	} else if float64(noPSOExec) < bestEval.sum.bestFit {
		bestEval.sum.bestFit = float64(noPSOExec)
		bestEval.sum.bestPartners = noPSOPartners
	}

	partners := bestEval.sum.bestPartners
	ctrl, err := chip.SharedControl(bestEval.aug.Chip, partners)
	if err != nil {
		return err
	}
	// Fitness values may carry partial-sharing penalties; report the real
	// schedule length.
	execPSO, okPSO := f.execTime(bestEval.aug.Chip, ctrl)
	if !okPSO {
		return fmt.Errorf("core: internal error: chosen sharing unschedulable on %s/%s", c.Name, g.Name)
	}

	execIndep, ok := f.execTime(bestEval.aug.Chip, chip.IndependentControl(bestEval.aug.Chip))
	if !ok {
		execIndep = -1
	}

	// Final test set: the base vectors repaired for the chosen sharing
	// scheme ("test vectors considering valve sharing").
	finalPaths, finalCuts, full := testgen.RepairVectors(bestEval.aug.Chip, ctrl, bestEval.aug.Source, bestEval.aug.Meter, bestEval.paths, bestEval.cuts)
	if !full {
		// Tolerable only for a partial repair-tier configuration whose
		// intrinsic gap explains the miss; anything else is a bug.
		und := -1
		if sim, simErr := f.newSimulator(bestEval.aug.Chip, ctrl); simErr == nil {
			all := append(append([]fault.Vector{}, finalPaths...), finalCuts...)
			// Finalization always runs to completion, so no ctx here.
			cov := fault.NewEngine(sim, f.opts.Workers).EvaluateCoverage(all, fault.AllFaults(bestEval.aug.Chip))
			und = len(cov.Undetected)
		}
		if len(bestEval.aug.Uncovered) == 0 || und < 0 || und > bestEval.baselineUndetected {
			return fmt.Errorf("core: internal error: chosen sharing lost coverage on %s/%s", c.Name, g.Name)
		}
	}

	// Quantitative leakage campaign (the paper's "can be tested similarly"
	// extension) over the final cut vectors, batched through the sparse
	// pressure engine. Finalization always runs to completion, so no ctx.
	var leakage *fault.LeakageReport
	if len(finalCuts) > 0 {
		sim, simErr := f.newSimulator(bestEval.aug.Chip, ctrl)
		if simErr != nil {
			return simErr
		}
		leakage, err = fault.QuantifyLeakage(context.Background(), sim, finalCuts,
			fault.LeakageOptions{Workers: f.opts.Workers})
		if err != nil {
			return err
		}
		ps := leakage.Solves
		st.Count("pressure_solves", ps.Solves)
		st.Count("pressure_cold", ps.Cold)
		st.Count("pressure_warm", ps.Warm)
		st.Count("pressure_rank_updates", ps.RankUpdates)
		st.Count("pressure_fallback_rank", ps.FallbackRank)
		st.Count("pressure_fallback_reach", ps.FallbackReach)
		st.Count("pressure_fallback_numeric", ps.FallbackNumeric)
		st.Count("leakage_examined", int64(leakage.Examined))
		st.Count("leakage_detectable", int64(leakage.Detectable))
	}

	// The trace records the outer swarm's global best per iteration; the
	// framework's final choice may come from the ban-loop seeds or the
	// post-PSO search, so close the trace with the best value actually
	// achieved (the paper's Fig. 9 plots the framework result).
	trace := append([]float64(nil), outer.Trace...)
	if n := len(trace); n > 0 && bestEval.sum.bestFit < trace[n-1] {
		trace[n-1] = bestEval.sum.bestFit
	}

	st.Count("final_vectors", int64(len(finalPaths)+len(finalCuts)))
	f.final.Set(&Result{
		Aug:             bestEval.aug,
		Control:         ctrl,
		Partners:        partners,
		PathVectors:     finalPaths,
		CutVectors:      finalCuts,
		ExecOriginal:    f.execOriginal,
		ExecNoPSO:       noPSOExec,
		ExecPSO:         execPSO,
		ExecIndependent: execIndep,
		Trace:           outer.Trace,
		NumDFTValves:    bestEval.aug.Chip.NumDFTValves(),
		NumShared:       ctrl.NumShared(),
		NumTestVectors:  len(finalPaths) + len(finalCuts),
		Leakage:         leakage,
		Solve:           chainOut.Provenance,
		Interrupted:     ctx.Err() != nil,
		CoverageFull:    full,
	})
	return nil
}

// firstValidSharing emulates "DFT without PSO optimization" (Table 1's
// middle column): it walks seeded-random partner permutations and returns
// the first scheme that passes the test-validity and schedulability
// checks, with NO attempt to minimize execution time — exactly a DFT
// insertion whose control sharing was picked for test validity alone.
func (f *flow) firstValidSharing(ev *augEval) (int, []int, error) {
	c := ev.aug.Chip
	nOrig := c.NumOriginalValves()
	nDFT := c.NumDFTValves()
	rng := rand.New(rand.NewSource(f.opts.Seed*2654435761 + 17))
	const attempts = 64
	for try := 0; try < attempts; try++ {
		perm := rng.Perm(nOrig)
		partners := perm[:nDFT]
		fit := f.sharingFitness(ev, partners)
		if fit < validThreshold {
			return int(fit), append([]int(nil), partners...), nil
		}
	}
	return 0, nil, fmt.Errorf("no valid sharing scheme in %d random draws (%d DFT valves, %d originals)", attempts, nDFT, nOrig)
}

// worstValidSharing returns the highest execution time among the FULL
// sharing schemes evaluated for this configuration during the search —
// i.e. a valid but unoptimized scheme. When only partial-sharing schemes
// validated, the best one's penalty is stripped to recover its schedule
// length.
func (f *flow) worstValidSharing(ev *augEval) int {
	s := ev.sum
	s.vmu.Lock()
	worst, has := s.worstValid, s.hasValid
	s.vmu.Unlock()
	if !has {
		s.mu.Lock()
		w := s.bestFit
		s.mu.Unlock()
		for w >= partialBand && w < validThreshold {
			w -= partialBand
		}
		return int(w)
	}
	return int(worst)
}
