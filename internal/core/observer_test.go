package core

import (
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/flowstage"
	"repro/internal/pso"
)

// TestObserverEventOrdering runs a small flow with a recording observer
// and checks the event stream's shape: the five stages bracket in
// pipeline order, solver ticks only fire inside the stages that search,
// and ticks carry the stage they belong to.
func TestObserverEventOrdering(t *testing.T) {
	rec := &flowstage.Recorder{}
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), Options{
		Outer:    pso.Config{Particles: 4, Iterations: 6},
		Inner:    pso.Config{Particles: 4, Iterations: 4},
		Seed:     7,
		Observer: rec,
	})
	if err != nil {
		t.Fatalf("RunDFTFlow: %v", err)
	}
	events := rec.Events()

	// Stage brackets appear in pipeline order, properly nested.
	var brackets []string
	for _, e := range events {
		if strings.HasPrefix(e, "start:") || strings.HasPrefix(e, "end:") {
			brackets = append(brackets, e)
		}
	}
	want := []string{
		"start:" + StageSchedule, "end:" + StageSchedule,
		"start:" + StageReference, "end:" + StageReference,
		"start:" + StageBanLoop, "end:" + StageBanLoop,
		"start:" + StageOuter, "end:" + StageOuter,
		"start:" + StageFinalize, "end:" + StageFinalize,
	}
	if len(brackets) != len(want) {
		t.Fatalf("stage brackets = %v, want %v", brackets, want)
	}
	for i := range want {
		if brackets[i] != want[i] {
			t.Fatalf("bracket %d = %q, want %q (all: %v)", i, brackets[i], want[i], brackets)
		}
	}

	// Every event between a stage's start and end names that stage;
	// solver ticks only occur in the searching stages.
	cur := ""
	ticks := map[string]int{}
	for _, e := range events {
		switch {
		case strings.HasPrefix(e, "start:"):
			if cur != "" {
				t.Fatalf("nested stage start %q inside %q", e, cur)
			}
			cur = strings.TrimPrefix(e, "start:")
		case strings.HasPrefix(e, "end:"):
			if got := strings.TrimPrefix(e, "end:"); got != cur {
				t.Fatalf("end:%s while in stage %q", got, cur)
			}
			cur = ""
		default:
			parts := strings.SplitN(e, ":", 3)
			if len(parts) < 2 || parts[1] != cur {
				t.Fatalf("event %q emitted outside its stage (current %q)", e, cur)
			}
			if parts[0] == "tick" {
				ticks[cur]++
			}
		}
	}
	if cur != "" {
		t.Fatalf("stage %q never ended", cur)
	}
	if ticks[StageSchedule] != 0 || ticks[StageFinalize] != 0 {
		t.Fatalf("solver ticks in non-search stages: %v", ticks)
	}
	if ticks[StageOuter] == 0 {
		t.Fatalf("no solver ticks in the outer stage: %v", ticks)
	}
	if ticks[StageBanLoop] == 0 {
		t.Fatalf("no solver ticks in the ban loop (inner PSO): %v", ticks)
	}

	// The chain attempt of the reference stage is visible.
	found := false
	for _, e := range events {
		if strings.HasPrefix(e, "chain:"+StageReference+":") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no chain attempt event from the reference stage; events: %v", events)
	}

	// Stats mirror the pipeline: five stages in order, iteration counts
	// matching the observer's ticks, and stage durations accounting for
	// (almost) the whole runtime.
	if res.Stats == nil {
		t.Fatal("Result.Stats is nil")
	}
	if len(res.Stats.Stages) != len(StageNames) {
		t.Fatalf("got %d stage stats, want %d", len(res.Stats.Stages), len(StageNames))
	}
	for i, name := range StageNames {
		if res.Stats.Stages[i].Name != name {
			t.Fatalf("stats stage %d = %q, want %q", i, res.Stats.Stages[i].Name, name)
		}
	}
	for name, n := range ticks {
		if got := res.Stats.Stage(name).SolverIters; got != int64(n) {
			t.Fatalf("stage %s SolverIters = %d, observer saw %d ticks", name, got, n)
		}
	}
	if sum, total := res.Stats.StageSum(), res.Stats.Total; sum > total {
		t.Fatalf("StageSum %v exceeds Total %v", sum, total)
	}
}

// TestObserverDoesNotPerturbResults pins the tentpole invariant: a flow
// with an observer attached returns bit-identical results to one without.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	opts := Options{
		Outer: pso.Config{Particles: 4, Iterations: 6},
		Inner: pso.Config{Particles: 4, Iterations: 4},
		Seed:  99,
	}
	plain, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	opts.Observer = &flowstage.Recorder{}
	observed, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}
	if got, want := canonicalResult(observed), canonicalResult(plain); got != want {
		t.Errorf("observer changed the result:\n--- plain ---\n%s\n--- observed ---\n%s", want, got)
	}
}

// TestStatsStageSumCoversRuntime asserts the -stats acceptance criterion:
// the per-stage durations sum to within 5%% of the flow's total runtime.
func TestStatsStageSumCoversRuntime(t *testing.T) {
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), Options{
		Outer: pso.Config{Particles: 5, Iterations: 20},
		Inner: pso.Config{Particles: 5, Iterations: 8},
		Seed:  2018,
	})
	if err != nil {
		t.Fatalf("RunDFTFlow: %v", err)
	}
	sum, total := res.Stats.StageSum(), res.Stats.Total
	if total <= 0 {
		t.Fatalf("non-positive total runtime %v", total)
	}
	if ratio := float64(sum) / float64(total); ratio < 0.95 || ratio > 1.0 {
		t.Errorf("stage sum %v is %.1f%% of total %v, want within [95%%, 100%%]", sum, 100*ratio, total)
	}
	if res.Stats.Total != res.Runtime {
		t.Errorf("Stats.Total %v != Runtime %v", res.Stats.Total, res.Runtime)
	}
}
