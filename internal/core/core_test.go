package core

import (
	"math"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/pso"
	"repro/internal/sched"
	"repro/internal/testgen"
)

// smallOpts keeps unit-test runtimes low; the experiment harness uses the
// paper's 5x100 configuration.
func smallOpts(seed int64) Options {
	return Options{
		Outer: pso.Config{Particles: 3, Iterations: 6},
		Inner: pso.Config{Particles: 4, Iterations: 5},
		Seed:  seed,
	}
}

func TestFlowIVDOnIVD(t *testing.T) {
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDFTValves <= 0 {
		t.Fatal("no DFT valves added")
	}
	if res.NumShared != res.NumDFTValves {
		t.Fatalf("shared %d of %d DFT valves; all must share (no extra control ports)", res.NumShared, res.NumDFTValves)
	}
	if res.Control.NumLines() != chip.IVD().NumOriginalValves() {
		t.Fatalf("control lines = %d, want %d (original count)", res.Control.NumLines(), chip.IVD().NumOriginalValves())
	}
	if res.ExecOriginal <= 0 || res.ExecPSO <= 0 || res.ExecNoPSO <= 0 {
		t.Fatalf("non-positive exec times: %+v", res)
	}
	// PSO sharing can only improve on the first-valid sharing.
	if res.ExecPSO > res.ExecNoPSO {
		t.Fatalf("PSO result %d worse than unoptimized %d", res.ExecPSO, res.ExecNoPSO)
	}
	if res.NumTestVectors != len(res.PathVectors)+len(res.CutVectors) {
		t.Fatal("vector count mismatch")
	}
	if len(res.Trace) == 0 {
		t.Fatal("missing convergence trace")
	}
	t.Logf("IVD/IVD: orig=%d noPSO=%d pso=%d indep=%d dft=%d vectors=%d runtime=%v",
		res.ExecOriginal, res.ExecNoPSO, res.ExecPSO, res.ExecIndependent,
		res.NumDFTValves, res.NumTestVectors, res.Runtime)
}

// The flow's finalize stage runs the quantitative leakage campaign over
// the final cut vectors on the sparse pressure engine and attributes its
// solve counters to the stage.
func TestFlowQuantifiesLeakage(t *testing.T) {
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CutVectors) == 0 {
		t.Fatal("no cut vectors to quantify")
	}
	l := res.Leakage
	if l == nil {
		t.Fatal("missing leakage report")
	}
	if l.Vectors != len(res.CutVectors) || l.Examined == 0 {
		t.Fatalf("leakage campaign incomplete: %+v over %d cuts", l, len(res.CutVectors))
	}
	if l.Detectable+len(l.Undetectable) != l.Examined {
		t.Fatalf("leakage counts don't add up: %+v", l)
	}
	if l.Solves.Solves == 0 {
		t.Fatalf("no pressure solves recorded: %+v", l.Solves)
	}
	final := res.Stats.Stages[len(res.Stats.Stages)-1]
	if final.Counter("pressure_solves") != l.Solves.Solves {
		t.Fatalf("finalize stage counter %d, report %d", final.Counter("pressure_solves"), l.Solves.Solves)
	}
	if final.Counter("leakage_examined") != int64(l.Examined) {
		t.Fatalf("finalize stage examined counter %d, report %d", final.Counter("leakage_examined"), l.Examined)
	}
}

// The headline property: the returned architecture + sharing + vectors
// achieve full fault coverage with a single source and a single meter.
func TestFlowFullCoverageSingleSourceSingleMeter(t *testing.T) {
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sim := fault.MustSimulator(res.Aug.Chip, res.Control)
	vectors := append(append([]fault.Vector{}, res.PathVectors...), res.CutVectors...)
	cov := sim.EvaluateCoverage(vectors, fault.AllFaults(res.Aug.Chip))
	if !cov.Full() {
		t.Fatalf("coverage %v under returned sharing; undetected: %v", cov, cov.Undetected)
	}
	for _, v := range vectors {
		if len(v.Sources) != 1 || len(v.Meters) != 1 {
			t.Fatalf("vector needs multiple instruments: %v", v)
		}
		if v.Sources[0] != res.Aug.Source || v.Meters[0] != res.Aug.Meter {
			t.Fatalf("vector uses wrong ports: %v", v)
		}
	}
}

// The returned schedule quality must equal an actual scheduler run.
func TestFlowExecTimeReproducible(t *testing.T) {
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	et, ok := sched.ExecutionTime(res.Aug.Chip, res.Control, assay.IVD(), Options{}.Sched)
	if !ok {
		t.Fatal("returned sharing unschedulable")
	}
	if et != res.ExecPSO {
		t.Fatalf("re-run exec %d != reported %d", et, res.ExecPSO)
	}
}

func TestFlowDeterministicForSeed(t *testing.T) {
	a, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecPSO != b.ExecPSO || a.NumDFTValves != b.NumDFTValves {
		t.Fatalf("nondeterministic flow: (%d,%d) vs (%d,%d)", a.ExecPSO, a.NumDFTValves, b.ExecPSO, b.NumDFTValves)
	}
}

func TestTraceNonIncreasing(t *testing.T) {
	res, err := RunDFTFlow(chip.RA30(), assay.IVD(), smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-9 {
			t.Fatalf("trace increased at %d: %v -> %v", i, res.Trace[i-1], res.Trace[i])
		}
	}
	if math.IsInf(res.Trace[len(res.Trace)-1], 1) {
		t.Fatal("final trace entry is ∞; flow should have failed instead")
	}
}

func TestDecodePartnersInjective(t *testing.T) {
	c := chip.IVD()
	for e, added := 0, 0; e < c.Grid.NumEdges() && added < 5; e++ {
		if _, occ := c.ValveOnEdge(e); !occ {
			if _, err := c.AddDFTChannel(e); err != nil {
				t.Fatal(err)
			}
			added++
		}
	}
	f := &flow{orig: c}
	x := []float64{0.1, 0.1, 0.1, 0.9, 0.9} // deliberate collisions
	partners := f.decodePartners(c, x)
	seen := map[int]bool{}
	for _, p := range partners {
		if p < 0 || p >= c.NumOriginalValves() {
			t.Fatalf("partner %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("duplicate partner %d in %v", p, partners)
		}
		seen[p] = true
	}
}

func TestFirstValidSharingRotation(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	aug, err := testgen.AugmentHeuristic(c, testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := &flow{
		orig: c, graph: g, opts: Options{}.withDefaults(),
		augCache:   newAugCache(0),
		innerCache: newInnerCache(0),
	}
	ev := f.evalAug(aug)
	if ev.cutsErr != nil {
		t.Fatal(ev.cutsErr)
	}
	et, partners, err := f.firstValidSharing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if et <= 0 || len(partners) != aug.Chip.NumDFTValves() {
		t.Fatalf("et=%d partners=%v", et, partners)
	}
}
