package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/pso"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden flow fixtures")

// goldenOpts is the fixed configuration the golden fixtures were captured
// with. Any change to the flow that alters the result for these seeds is a
// behavioural change and must be deliberate (regenerate with -update).
func goldenOpts() Options {
	return Options{
		Outer: pso.Config{Particles: 5, Iterations: 40},
		Inner: pso.Config{Particles: 5, Iterations: 8},
		Seed:  2018,
	}
}

// canonicalResult renders every deterministic field of a Result in a fixed
// order. Wall-clock fields (Runtime, solver attempt timings) are excluded.
func canonicalResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chip: %s\n", res.Aug.Chip.Name)
	fmt.Fprintf(&b, "added_edges: %v\n", res.Aug.AddedEdges)
	fmt.Fprintf(&b, "source: %d meter: %d\n", res.Aug.Source, res.Aug.Meter)
	fmt.Fprintf(&b, "partners: %v\n", res.Partners)
	fmt.Fprintf(&b, "exec: orig=%d nopso=%d pso=%d indep=%d\n",
		res.ExecOriginal, res.ExecNoPSO, res.ExecPSO, res.ExecIndependent)
	fmt.Fprintf(&b, "counts: dft=%d shared=%d vectors=%d\n",
		res.NumDFTValves, res.NumShared, res.NumTestVectors)
	fmt.Fprintf(&b, "coverage_full: %v interrupted: %v tier: %s\n",
		res.CoverageFull, res.Interrupted, res.Solve.Name)
	writeVectors := func(kind string, vs []fault.Vector) {
		for i, v := range vs {
			fmt.Fprintf(&b, "%s[%d]: valves=%v src=%v met=%v\n", kind, i, v.Valves, v.Sources, v.Meters)
		}
	}
	writeVectors("path", res.PathVectors)
	writeVectors("cut", res.CutVectors)
	for i, tr := range res.Trace {
		fmt.Fprintf(&b, "trace[%d]: %.6g\n", i, tr)
	}
	return b.String()
}

// TestGoldenFlowResults pins dft.Run's output bit-for-bit for a fixed seed
// on the smallest (IVD) and largest (mRNA) bundled designs. The fixtures
// were captured from the pre-pipeline monolithic flow; the staged pipeline
// must reproduce them exactly.
func TestGoldenFlowResults(t *testing.T) {
	combos := []struct {
		name  string
		chip  *chip.Chip
		assay *assay.Graph
		long  bool
	}{
		{"ivd_ivd", chip.IVD(), assay.IVD(), false},
		{"mrna_cpa", chip.MRNA(), assay.CPA(), true},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			if combo.long && testing.Short() {
				t.Skip("multi-second PSO flow")
			}
			res, err := RunDFTFlow(combo.chip, combo.assay, goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalResult(res)
			path := filepath.Join("testdata", "golden_"+combo.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run go test ./internal/core -run Golden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("flow result diverged from the golden fixture %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
