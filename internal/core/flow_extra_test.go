package core

import (
	"math"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/pso"
	"repro/internal/sched"
	"repro/internal/testgen"
)

// TestRA30CPAFlowSucceeds covers the hardest Table 1 cell: the reference
// configuration for CPA on RA30 admits no valid sharing at all, so the
// flow must diversify configurations (ban loop) to succeed.
func TestRA30CPAFlowSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second PSO flow")
	}
	res, err := RunDFTFlow(chip.RA30(), assay.CPA(), Options{
		Outer: pso.Config{Particles: 5, Iterations: 30},
		Inner: pso.Config{Particles: 5, Iterations: 8},
		Seed:  2018,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen configuration must differ from the (invalid) reference.
	ref, err := testgen.AugmentHeuristic(chip.RA30(), testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	same := len(ref.AddedEdges) == len(res.Aug.AddedEdges)
	if same {
		for i := range ref.AddedEdges {
			if ref.AddedEdges[i] != res.Aug.AddedEdges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("flow kept the reference configuration although it admits no valid sharing")
	}
	// And the result must hold up end to end.
	sim := fault.MustSimulator(res.Aug.Chip, res.Control)
	cov := sim.EvaluateCoverage(append(res.PathVectors, res.CutVectors...), fault.AllFaults(res.Aug.Chip))
	if !cov.Full() {
		t.Fatalf("coverage %v", cov)
	}
	sch, err := sched.Run(res.Aug.Chip, res.Control, assay.CPA(), Options{}.Sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateSchedule(res.Aug.Chip, assay.CPA(), sch); err != nil {
		t.Fatal(err)
	}
	if sch.ExecutionTime != res.ExecPSO {
		t.Fatalf("schedule %d != reported %d", sch.ExecutionTime, res.ExecPSO)
	}
}

func TestNoPSONeverBeatsPSO(t *testing.T) {
	if testing.Short() {
		t.Skip("several flows")
	}
	for _, seed := range []int64{1, 2, 3} {
		res, err := RunDFTFlow(chip.IVD(), assay.CPA(), Options{
			Outer: pso.Config{Particles: 4, Iterations: 10},
			Inner: pso.Config{Particles: 4, Iterations: 6},
			Seed:  seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecPSO > res.ExecNoPSO {
			t.Fatalf("seed %d: PSO %d worse than unoptimized %d", seed, res.ExecPSO, res.ExecNoPSO)
		}
	}
}

func TestWorstValidSharing(t *testing.T) {
	c := chip.IVD()
	g := assay.CPA()
	f := &flow{orig: c, graph: g, opts: Options{}.withDefaults(),
		augCache: newAugCache(0), innerCache: newInnerCache(0)}
	aug, err := testgen.AugmentHeuristic(c, testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := f.evalAug(aug)
	fit := f.bestSharingFitness(ev)
	if fit >= validThreshold {
		t.Skip("no valid sharing for this configuration")
	}
	worst := f.worstValidSharing(ev)
	if float64(worst) < fit {
		t.Fatalf("worst valid %d below best %v", worst, fit)
	}
	if float64(worst) >= validThreshold {
		t.Fatalf("worst valid sharing leaked a penalty value: %d", worst)
	}
}

func TestGradedPenaltiesOrdering(t *testing.T) {
	// Coverage failures must rank worse than schedulability failures,
	// which rank worse than any real execution time.
	covFail := penaltyBase + 1e6*3
	schedFail := penaltyBase + 1e5 - 100*20
	real := 2000.0
	if !(covFail > schedFail && schedFail > real) {
		t.Fatal("penalty ordering broken")
	}
	if real >= validThreshold || schedFail < validThreshold {
		t.Fatal("threshold misplaced")
	}
	if math.IsInf(covFail, 1) {
		t.Fatal("graded penalty must stay finite")
	}
}

func TestFlowOnAllCombosSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("9 flows")
	}
	for _, c := range chip.Benchmarks() {
		for _, g := range assay.Benchmarks() {
			res, err := RunDFTFlow(c, g, Options{
				Outer: pso.Config{Particles: 4, Iterations: 12},
				Inner: pso.Config{Particles: 4, Iterations: 6},
				Seed:  2018,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", c.Name, g.Name, err)
				continue
			}
			if res.NumShared != res.NumDFTValves {
				t.Errorf("%s/%s: %d of %d DFT valves share", c.Name, g.Name, res.NumShared, res.NumDFTValves)
			}
			if res.ExecPSO > res.ExecNoPSO {
				t.Errorf("%s/%s: PSO %d > noPSO %d", c.Name, g.Name, res.ExecPSO, res.ExecNoPSO)
			}
		}
	}
}
