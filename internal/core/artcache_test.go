package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/solve"
)

// A cached flow result must be byte-identical to a fresh solve under the
// canonical encoding, from both the memory and the disk tier.
func TestFlowCacheBitIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts(11)

	fresh, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(fresh)
	if err != nil {
		t.Fatal(err)
	}

	cc, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cc
	cold, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	coldEnc, _ := EncodeResult(cold)
	if !bytes.Equal(coldEnc, want) {
		t.Fatal("cold cached run differs from uncached run")
	}
	memHit, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	memEnc, _ := EncodeResult(memHit)
	if !bytes.Equal(memEnc, want) {
		t.Fatal("memory-tier hit differs from fresh solve")
	}
	if memHit.Stats == nil || len(memHit.Stats.Stages) != 1 || memHit.Stats.Stages[0].Name != StageArtifact {
		t.Fatalf("memory hit should report a single artifact stage, got %+v", memHit.Stats)
	}
	if memHit.Stats.Stages[0].Counters["art_mem_hits"] != 1 {
		t.Fatalf("missing art_mem_hits counter: %+v", memHit.Stats.Stages[0].Counters)
	}

	// A second process: fresh cache over the same directory = disk tier.
	cc2, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cc2
	diskHit, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	diskEnc, _ := EncodeResult(diskHit)
	if !bytes.Equal(diskEnc, want) {
		t.Fatal("disk-tier hit differs from fresh solve")
	}
	if diskHit.Stats.Stages[0].Counters["art_disk_hits"] != 1 {
		t.Fatalf("missing art_disk_hits counter: %+v", diskHit.Stats.Stages[0].Counters)
	}
	m := cc2.Metrics()
	if m.DiskHits != 1 || m.MemHits != 0 || m.Misses != 0 {
		t.Fatalf("unexpected warm-run metrics: %+v", m)
	}
}

// Uncacheable option sets (injections, optional stages) must bypass the
// cache entirely.
func TestFlowCacheSkipsUncacheable(t *testing.T) {
	cc, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(12)
	opts.Cache = cc
	opts.Inject = []solve.Injection{{Tier: "heuristic", Kind: solve.FaultTimeout}}
	if _, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts); err != nil {
		t.Fatal(err)
	}
	m := cc.Metrics()
	if m.Misses != 0 || m.Stores != 0 || m.MemHits != 0 {
		t.Fatalf("uncacheable run touched the cache: %+v", m)
	}
}

// Memo eviction under a tiny MemoBytes budget must not change the Result:
// all selection state lives in the non-evictable summary registry and
// recomputes are pure.
func TestFlowMemoEvictionInvariant(t *testing.T) {
	unbounded, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(13))
	if err != nil {
		t.Fatal(err)
	}
	tight := smallOpts(13)
	tight.MemoBytes = 4 << 10 // a few entries at most
	bounded, err := RunDFTFlow(chip.IVD(), assay.IVD(), tight)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := EncodeResult(unbounded)
	b, _ := EncodeResult(bounded)
	if !bytes.Equal(a, b) {
		t.Fatal("bounded-memo run differs from unbounded run")
	}
	evicted := false
	for _, st := range bounded.Stats.Stages {
		if st.Counters["memo_evictions"] > 0 {
			evicted = true
		}
	}
	if !evicted {
		t.Skip("budget did not trigger eviction on this design; invariant vacuous")
	}
}

// RunBatch must collapse duplicate submissions to one solve and fan out
// results bit-identical to serial runs, for every worker count, with
// identical deterministic cache counters.
func TestRunBatchDedupDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seeds := []int64{21, 22}
	var jobs []BatchJob
	for i := 0; i < 12; i++ {
		jobs = append(jobs, BatchJob{Chip: chip.IVD(), Assay: assay.IVD(), Opts: smallOpts(seeds[i%len(seeds)])})
	}
	// Serial reference.
	want := make([][]byte, len(jobs))
	for i, j := range jobs {
		res, err := RunDFTFlow(j.Chip, j.Assay, j.Opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = EncodeResult(res)
	}
	var wantMetrics *CacheMetrics
	for _, par := range []int{1, 2, 4, 8} {
		cc, err := NewCache(CacheConfig{})
		if err != nil {
			t.Fatal(err)
		}
		out := RunBatch(jobs, BatchOptions{Parallel: par, Cache: cc})
		shared := 0
		for i, r := range out {
			if r.Err != nil {
				t.Fatalf("par=%d job %d: %v", par, i, r.Err)
			}
			enc, _ := EncodeResult(r.Result)
			if !bytes.Equal(enc, want[i]) {
				t.Fatalf("par=%d job %d differs from serial run", par, i)
			}
			if r.Key == "" {
				t.Fatalf("par=%d job %d: missing digest key", par, i)
			}
			if r.Shared {
				shared++
			}
		}
		if shared != len(jobs)-len(seeds) {
			t.Fatalf("par=%d: %d shared results, want %d", par, shared, len(jobs)-len(seeds))
		}
		m := cc.Metrics()
		if wantMetrics == nil {
			wantMetrics = &m
		} else if m.MemHits != wantMetrics.MemHits || m.DiskHits != wantMetrics.DiskHits ||
			m.Misses != wantMetrics.Misses || m.Stores != wantMetrics.Stores {
			t.Fatalf("par=%d: metrics %+v differ from par=1 %+v", par, m, *wantMetrics)
		}
	}
	if wantMetrics.Misses != int64(len(seeds)) || wantMetrics.Stores != int64(len(seeds)) {
		t.Fatalf("batch should miss+store once per unique digest: %+v", *wantMetrics)
	}
}

// Admission control: unique solves beyond MaxPending are rejected with
// ErrBatchSaturated; duplicates of admitted solves always pass.
func TestRunBatchSaturation(t *testing.T) {
	jobs := []BatchJob{
		{Chip: chip.IVD(), Assay: assay.IVD(), Opts: smallOpts(31)},
		{Chip: chip.IVD(), Assay: assay.IVD(), Opts: smallOpts(31)}, // dup of 0
		{Chip: chip.IVD(), Assay: assay.IVD(), Opts: smallOpts(32)}, // 2nd unique: rejected
	}
	out := RunBatch(jobs, BatchOptions{MaxPending: 1})
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("admitted jobs failed: %v / %v", out[0].Err, out[1].Err)
	}
	if !out[1].Shared {
		t.Fatal("duplicate job not marked shared")
	}
	if !errors.Is(out[2].Err, ErrBatchSaturated) {
		t.Fatalf("job 2: got %v, want ErrBatchSaturated", out[2].Err)
	}
}

// Dup-heavy concurrent batch for the -race detector: duplicates share
// one solve and fan out decoded copies.
func TestRunBatchDupHeavyRace(t *testing.T) {
	var jobs []BatchJob
	for i := 0; i < 16; i++ {
		jobs = append(jobs, BatchJob{Chip: chip.IVD(), Assay: assay.IVD(), Opts: smallOpts(int64(41 + i%4))})
	}
	cc, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := RunBatchCtx(context.Background(), jobs, BatchOptions{Parallel: 8, Cache: cc})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Result == nil {
			t.Fatalf("job %d: nil result", i)
		}
	}
}

// The suite pipeline's cache hits must decode to the same vectors as a
// fresh generation, across both tiers.
func TestSuiteCacheRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "art")
	cc, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := chip.IVD()
	fresh, err := RunSuite(c, SuiteRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := EncodeSuite(fresh.Suite, fresh.Coverage)

	cold, err := RunSuite(c, SuiteRunOptions{Cache: cc})
	if err != nil {
		t.Fatal(err)
	}
	coldEnc, _ := EncodeSuite(cold.Suite, cold.Coverage)
	if !bytes.Equal(coldEnc, want) {
		t.Fatal("cold cached suite differs from fresh")
	}
	hit, err := RunSuite(c, SuiteRunOptions{Cache: cc})
	if err != nil {
		t.Fatal(err)
	}
	hitEnc, _ := EncodeSuite(hit.Suite, hit.Coverage)
	if !bytes.Equal(hitEnc, want) {
		t.Fatal("memory-tier suite hit differs from fresh")
	}
	if len(hit.Stats.Stages) != 1 || hit.Stats.Stages[0].Name != StageArtifact {
		t.Fatalf("suite hit should report single artifact stage: %+v", hit.Stats)
	}

	cc2, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := RunSuite(c, SuiteRunOptions{Cache: cc2})
	if err != nil {
		t.Fatal(err)
	}
	diskEnc, _ := EncodeSuite(disk.Suite, disk.Coverage)
	if !bytes.Equal(diskEnc, want) {
		t.Fatal("disk-tier suite hit differs from fresh")
	}
}

// The standalone test-set artifact (faultsim/chipinfo) round-trips
// through both tiers.
func TestBuildTestSetCache(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildTestSet(chip.IVD(), false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := EncodeTestSet(fresh)

	cold, err := BuildTestSet(chip.IVD(), false, 0, cc)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Tier != "" {
		t.Fatalf("cold run reported tier %q", cold.Tier)
	}
	coldEnc, _ := EncodeTestSet(cold)
	if !bytes.Equal(coldEnc, want) {
		t.Fatal("cold cached test set differs from fresh")
	}
	mem, err := BuildTestSet(chip.IVD(), false, 0, cc)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Tier != "mem" {
		t.Fatalf("second run tier %q, want mem", mem.Tier)
	}
	memEnc, _ := EncodeTestSet(mem)
	if !bytes.Equal(memEnc, want) {
		t.Fatal("memory-tier test set differs from fresh")
	}
	cc2, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := BuildTestSet(chip.IVD(), false, 0, cc2)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Tier != "disk" {
		t.Fatalf("fresh-process run tier %q, want disk", disk.Tier)
	}
	diskEnc, _ := EncodeTestSet(disk)
	if !bytes.Equal(diskEnc, want) {
		t.Fatal("disk-tier test set differs from fresh")
	}
	// The optimal flag is part of the digest: no false sharing.
	opt, err := BuildTestSet(chip.IVD(), true, 0, cc2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Tier != "" {
		t.Fatalf("optimal run must not hit the greedy entry (tier %q)", opt.Tier)
	}
	if !opt.Optimal {
		t.Fatal("optimal flag lost")
	}
}
