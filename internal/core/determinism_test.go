package core

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

// TestBestEvalSeenDeterministicTieBreak pins the selection rule that
// replaced the randomized map-order iteration: only a strictly better
// fitness displaces the incumbent, iteration follows the lexicographic
// content-key order, so ties resolve to the reference first and to the
// smallest key among cached configurations.
func TestBestEvalSeenDeterministicTieBreak(t *testing.T) {
	f := &flow{augCache: newAugCache(0), innerCache: newInnerCache(0)}
	mk := func(key string, fit float64) *augEval {
		sum := f.summaryFor(key, nil)
		sum.searched, sum.bestFit = true, fit
		ev := &augEval{key: key, sum: sum}
		f.augCache.Do(key, func() *augEval { return ev })
		return ev
	}
	ref := &augEval{key: "zz-ref", sum: &augSummary{key: "zz-ref", searched: true, bestFit: 100}}
	b := mk("b-key", 100)
	a := mk("a-key", 100)
	// Three-way tie: the reference wins.
	for i := 0; i < 20; i++ {
		if got := f.bestEvalSeen(ref); got != ref {
			t.Fatalf("tie not broken in favour of the reference: got %q", got.key)
		}
	}
	// Two cached configurations tied strictly below the reference: the
	// lexicographically smallest key wins, on every call.
	a.sum.bestFit, b.sum.bestFit = 90, 90
	for i := 0; i < 20; i++ {
		if got := f.bestEvalSeen(ref); got != a {
			t.Fatalf("call %d: tie broke to %q, want %q", i, got.key, a.key)
		}
	}
	// A strictly better configuration always displaces the incumbent.
	b.sum.bestFit = 80
	if got := f.bestEvalSeen(ref); got != b {
		t.Fatalf("strictly best configuration not selected: got %q", got.key)
	}
	// Unsearched entries never participate.
	c := mk("0-key", 1)
	c.sum.searched = false
	if got := f.bestEvalSeen(ref); got != b {
		t.Fatalf("unsearched configuration selected: got %q", got.key)
	}
}

// TestFlowRepeatable is the regression test for the nondeterministic
// best-configuration selection: two runs of the full flow with identical
// options must return bit-identical results — in particular the same
// added edges and the same partner assignment, which the old map-order
// tie-break could flip between runs.
func TestFlowRepeatable(t *testing.T) {
	first, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDFTFlow(chip.IVD(), assay.IVD(), smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalResult(second), canonicalResult(first); got != want {
		t.Errorf("flow result changed between identical runs\n--- second ---\n%s--- first ---\n%s", got, want)
	}
}

// TestDecodePartnersMoreDFTThanOriginals covers the overflow that used to
// spin forever: once every original control line is claimed, the collision
// walk cycles over all-used lines. Excess DFT valves must fall back to
// their own lines (-1) instead.
func TestDecodePartnersMoreDFTThanOriginals(t *testing.T) {
	c := chip.IVD()
	f := &flow{orig: c}
	nOrig := c.NumOriginalValves()
	x := make([]float64, nOrig+3)
	for i := range x {
		x[i] = float64(i%10) / 10
	}
	partners := f.decodePartners(c, x)
	seen := map[int]bool{}
	own := 0
	for _, p := range partners {
		if p == -1 {
			own++
			continue
		}
		if p < 0 || p >= nOrig {
			t.Fatalf("partner %d out of range in %v", p, partners)
		}
		if seen[p] {
			t.Fatalf("duplicate partner %d in %v", p, partners)
		}
		seen[p] = true
	}
	if own != 3 {
		t.Fatalf("expected exactly 3 own-line fallbacks, got %d in %v", own, partners)
	}
}

// TestDecodePartnersNoOriginalValves covers the degenerate chip with no
// original valves: MapToPartner collapses every position to slot 0, which
// must decode as an own line rather than indexing an empty used[] table.
func TestDecodePartnersNoOriginalValves(t *testing.T) {
	c := &chip.Chip{}
	f := &flow{orig: c}
	partners := f.decodePartners(c, []float64{0.1, 0.5, 0.99})
	for i, p := range partners {
		if p != -1 {
			t.Fatalf("partner[%d] = %d, want -1 on a chip with no original valves", i, p)
		}
	}
}

// TestFlowWorkerCountInvariance is the property test for the batch-
// synchronous engine: the full flow's Result must be bit-identical for
// 1, 2, 4 and 8 workers on every bundled design.
func TestFlowWorkerCountInvariance(t *testing.T) {
	combos := []struct {
		name  string
		chip  *chip.Chip
		assay *assay.Graph
		long  bool
	}{
		{"ivd_ivd", chip.IVD(), assay.IVD(), false},
		{"ra30_pid", chip.RA30(), assay.PID(), true},
		{"mrna_cpa", chip.MRNA(), assay.CPA(), true},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			if combo.long && testing.Short() {
				t.Skip("multi-second PSO flow")
			}
			var want string
			for _, workers := range []int{1, 2, 4, 8} {
				opts := smallOpts(11)
				opts.Workers = workers
				res, err := RunDFTFlow(combo.chip, combo.assay, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := canonicalResult(res)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d diverged from workers=1\n--- got ---\n%s--- want ---\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestFlowBaselineMode smoke-tests the serial asynchronous A/B path: the
// baseline engine must still drive the flow to a valid, fully-shared
// result (its trajectory differs from the batch engine by design).
func TestFlowBaselineMode(t *testing.T) {
	opts := smallOpts(5)
	opts.PSOBaseline = true
	res, err := RunDFTFlow(chip.IVD(), assay.IVD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumShared != res.NumDFTValves {
		t.Fatalf("baseline mode lost full sharing: %d/%d", res.NumShared, res.NumDFTValves)
	}
	if res.ExecPSO <= 0 || res.ExecPSO > res.ExecNoPSO {
		t.Fatalf("baseline exec inconsistent: pso=%d nopso=%d", res.ExecPSO, res.ExecNoPSO)
	}
}

// TestFlowRecomputeMatchesMemoized pins the purity contract behind the
// memo caches and the revalidation screen: the serial recomputation leg
// (every reuse layer disabled) must return a bit-identical Result to the
// memoized asynchronous engine — the caches and the screen change
// wall-clock, never the answer.
func TestFlowRecomputeMatchesMemoized(t *testing.T) {
	memo := smallOpts(9)
	memo.PSOBaseline = true
	first, err := RunDFTFlow(chip.IVD(), assay.IVD(), memo)
	if err != nil {
		t.Fatal(err)
	}
	recompute := memo
	recompute.PSORecompute = true
	second, err := RunDFTFlow(chip.IVD(), assay.IVD(), recompute)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalResult(second), canonicalResult(first); got != want {
		t.Errorf("recompute leg diverged from the memoized engine\n--- recompute ---\n%s--- memoized ---\n%s", got, want)
	}
}

// TestExplicitZeroOmegaPlumbsThrough pins the Options-level plumbing of
// the pso.Config zero-value fix: an explicit ω=0 (HasOmega set) must
// survive Options.withDefaults untouched so the engine can honour it
// instead of rewriting it to the 0.7 default. (The engine-level semantics
// are pinned by the pso package's own zero-coefficient tests.)
func TestExplicitZeroOmegaPlumbsThrough(t *testing.T) {
	opts := smallOpts(5)
	opts.Outer.Omega = 0
	opts.Outer.HasOmega = true
	out := opts.withDefaults().Outer
	if !out.HasOmega || out.Omega != 0 {
		t.Fatalf("explicit ω=0 flag lost through withDefaults: %+v", out)
	}
	if implicit := opts.withDefaults().Inner; implicit.HasOmega {
		t.Fatalf("implicit config grew a HasOmega flag: %+v", implicit)
	}
}
