package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/flowstage"
)

// runOuterStage runs the outer PSO over free-edge bias weights — each
// fitness call augments the chip under the biased weights and runs the
// inner sharing sub-PSO — then picks the best configuration seen anywhere
// (the PSO's best position, the ban-loop seeds, or the reference). When no
// full sharing scheme validates, it retries a bounded set of
// configurations with partial sharing allowed before giving up. The
// winning evaluation is published as the bestEval artifact.
func (f *flow) runOuterStage(ctx context.Context, st *flowstage.StageStats) error {
	f.enterStage(st)
	defer f.leaveStage(st)

	c := f.orig
	freeEdges := f.freeEdges()
	outerCfg := f.opts.Outer
	outerCfg.Seed = f.opts.Seed
	outerCfg.OnIteration = f.solverTick
	outerCfg.Workers = f.workers()
	outer := f.minimize(ctx, len(freeEdges), func(x []float64) float64 {
		weights := make([]float64, c.Grid.NumEdges())
		for i, e := range freeEdges {
			weights[e] = x[i] * 4 // bias scale
		}
		aug, err := f.augment(weights)
		if err != nil {
			return math.Inf(1)
		}
		ev := f.evalAug(aug)
		return f.bestSharingFitness(ev)
	}, outerCfg)
	f.outer.Set(outer)
	st.Count("pso_outer_evals", int64(outer.Evaluations))
	st.Count("pso_workers", int64(f.workers()))

	// Decode the best configuration.
	bestWeights := make([]float64, c.Grid.NumEdges())
	for i, e := range freeEdges {
		bestWeights[e] = outer.BestX[i] * 4
	}
	bestAug, err := f.augment(bestWeights)
	if err != nil {
		bestAug = f.chainOut.Get().Value
	}
	_ = f.bestSharingFitness(f.evalAug(bestAug)) // ensure the PSO's pick is searched
	// Final choice: the best configuration seen anywhere — the PSO's best
	// position, the ban-loop seeds, or the reference.
	refEval := f.refEval.Get()
	bestEval := f.bestEvalSeen(refEval)
	if f.bestSharingFitness(bestEval) >= validThreshold {
		// No full sharing scheme validates anywhere. Fall back to partial
		// sharing: DFT valves that cannot share get their own control
		// lines (still penalized, so every shareable valve shares).
		f.allowPartial = true
		st.Count("partial_fallback", 1)
		keys := f.sortedSummaryKeys()
		for _, k := range keys {
			if sum := f.summary(k); sum != nil {
				sum.mu.Lock()
				sum.searched = false
				sum.bestFit = math.Inf(1)
				sum.bestPartners = nil
				sum.mu.Unlock()
			}
		}
		const retryConfigs = 8
		for i, k := range keys {
			if i >= retryConfigs {
				break
			}
			if sum := f.summary(k); sum != nil {
				f.bestSharingFitness(f.evalAug(sum.aug))
			}
		}
		bestEval = f.bestEvalSeen(refEval)
		if f.bestSharingFitness(bestEval) >= validThreshold {
			return fmt.Errorf("core: no valid sharing scheme found for %s/%s", c.Name, f.graph.Name)
		}
	}
	st.Count("configs_evaluated", int64(f.numSummaries()))
	f.bestEval.Set(bestEval)
	return nil
}
