// Package pso implements particle swarm optimization (Kennedy & Eberhart,
// ref. [20] of the paper), the search engine of the paper's two-level DFT
// flow (Section 4.2).
//
// Particles move through [0,1]^dim under the velocity update of eqs.
// (7)-(8):
//
//	v_i = ω·v_i + c1·rand1·(pbest_i − x_i) + c2·rand2·(gbest − x_i)
//	x_i = x_i + v_i
//
// (the paper prints the attraction terms with the sign flipped, which would
// repel particles from the best positions; we use the standard attractive
// form). Fitness is minimized; +Inf marks invalid positions, matching the
// paper's "quality ∞" for configurations that fail validation. A NaN
// fitness is treated as +Inf too — NaN compares false against everything,
// so left unclamped it would freeze a particle's attractor on an invalid
// position forever.
//
// Minimize runs the batch-synchronous engine: every random draw happens on
// the orchestrating goroutine, each generation's fitness evaluations fan
// out over Config.Workers goroutines, and pbest/gbest updates are applied
// in particle-index order after a barrier. The search trajectory is
// therefore bit-identical for any worker count. The seed's asynchronous
// serial engine (gbest updated immediately after each particle, so later
// particles in the same iteration see it) is preserved as MinimizeBaseline
// for A/B benchmarks and property tests.
package pso

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Config tunes the swarm.
type Config struct {
	// Particles is the swarm size (the paper uses 5 per level).
	Particles int
	// Iterations is the number of velocity/position updates (the paper
	// uses 100).
	Iterations int
	// Omega is the inertia weight ω, C1 the cognitive and C2 the social
	// acceleration constants. Zero values select 0.7, 1.5, 1.5 unless the
	// corresponding Has* flag is set — a legitimate zero coefficient
	// (e.g. ω=0, no inertia) needs HasOmega: true to disambiguate it from
	// an unset field.
	Omega, C1, C2 float64
	// HasOmega, HasC1, HasC2 mark the corresponding coefficient as
	// explicitly configured, so a zero value means zero rather than "use
	// the default".
	HasOmega, HasC1, HasC2 bool
	// VMax clamps velocity components (default 0.5; set HasVMax for a
	// literal zero, which pins every particle to its initial position).
	VMax float64
	// HasVMax marks VMax as explicitly configured.
	HasVMax bool
	// Seed makes runs reproducible.
	Seed int64
	// Workers sets the number of goroutines that evaluate one
	// generation's particles concurrently in Minimize/MinimizeCtx.
	// 0 or 1 evaluate serially on the calling goroutine. The search
	// trajectory is identical for every value; with Workers > 1 the
	// fitness function must be safe for concurrent calls.
	// MinimizeBaseline ignores Workers.
	Workers int
	// OnIteration, when non-nil, is called with the global-best fitness
	// after initialization (iteration 0) and after every velocity/position
	// update — the instrumentation hook the DFT flow's observer rides on.
	// The callback must not mutate swarm state; it never affects the
	// search (the RNG stream and iteration order are identical with or
	// without it). It is always invoked from the calling goroutine, after
	// the generation barrier.
	OnIteration func(iteration int, best float64)
}

func (c Config) withDefaults() Config {
	if c.Particles <= 0 {
		c.Particles = 5
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.Omega == 0 && !c.HasOmega {
		c.Omega = 0.7
	}
	if c.C1 == 0 && !c.HasC1 {
		c.C1 = 1.5
	}
	if c.C2 == 0 && !c.HasC2 {
		c.C2 = 1.5
	}
	if c.VMax == 0 && !c.HasVMax {
		c.VMax = 0.5
	}
	return c
}

// Canonical returns the semantic part of the configuration in
// fully-defaulted form: search-shaping fields resolved to their
// defaults, execution-only fields (Workers, OnIteration) cleared —
// they never change the search result. Content-addressed cache keys
// (internal/artifact) hash the canonical form, so a zero config and an
// explicitly-defaulted one key identically.
func (c Config) Canonical() Config {
	c = c.withDefaults()
	c.HasOmega, c.HasC1, c.HasC2, c.HasVMax = true, true, true, true
	c.Workers = 0
	c.OnIteration = nil
	return c
}

// Result reports the best position found.
type Result struct {
	BestX       []float64
	BestFitness float64
	// Trace holds the global-best fitness after every iteration (entry 0
	// is after initialization); it reproduces the convergence curves of
	// the paper's Fig. 9.
	Trace []float64
	// Evaluations counts fitness calls.
	Evaluations int
	// Interrupted reports that the context expired before the configured
	// iterations completed; BestX/BestFitness still hold the best position
	// found so far (graceful degradation, never a lost search).
	Interrupted bool
}

// Minimize runs batch-synchronous PSO over [0,1]^dim. fitness returns the
// quality of a position (lower is better; +Inf for invalid; NaN is treated
// as +Inf). The search is fully deterministic for a fixed Config.Seed and
// bit-identical for any Config.Workers value.
func Minimize(dim int, fitness func(x []float64) float64, cfg Config) Result {
	return MinimizeCtx(context.Background(), dim, fitness, cfg)
}

// MinimizeCtx is Minimize with cooperative cancellation: the context is
// checked between particle evaluations, and on expiry the best position
// found so far is returned with Interrupted set. At least one particle is
// always evaluated, so BestX is usable even under an already-cancelled
// context.
//
// Each generation runs in three phases: velocity/position updates for the
// whole swarm on the calling goroutine (one RNG stream, one draw order),
// fitness evaluation of the generation over Config.Workers goroutines, and
// pbest/gbest updates applied in particle-index order after all
// evaluations return. Particle i's update therefore always sees the
// global best of the previous generation, regardless of which worker
// evaluated which particle first.
func MinimizeCtx(ctx context.Context, dim int, fitness func(x []float64) float64, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if dim <= 0 {
		// Degenerate: a single empty position.
		f := clampNaN(fitness(nil))
		if cfg.OnIteration != nil {
			cfg.OnIteration(0, f)
		}
		return Result{BestX: nil, BestFitness: f, Trace: fill(cfg.Iterations+1, f), Evaluations: 1}
	}

	type particle struct {
		x, v, pbestX []float64
		pbestF       float64
	}
	swarm := make([]particle, cfg.Particles)
	for i := range swarm {
		p := particle{
			x:      make([]float64, dim),
			v:      make([]float64, dim),
			pbestF: math.Inf(1),
		}
		for d := 0; d < dim; d++ {
			p.x[d] = rng.Float64()
			p.v[d] = (rng.Float64()*2 - 1) * cfg.VMax
		}
		swarm[i] = p
	}
	gbestX := make([]float64, dim)
	gbestF := math.Inf(1)
	evals := 0
	fs := make([]float64, len(swarm))
	done := make([]bool, len(swarm))
	workers := cfg.Workers
	if workers > len(swarm) {
		workers = len(swarm)
	}

	// evalGen evaluates the current generation into fs, serially or over
	// the worker pool, and reports whether any particle was skipped
	// because the context expired. During initialization (init) the first
	// particle is always evaluated so the result carries a real position.
	evalGen := func(init bool) bool {
		for i := range done {
			done[i] = false
		}
		if workers > 1 && ctx.Err() == nil {
			var next int64 = -1
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ctx.Err() == nil {
						i := int(atomic.AddInt64(&next, 1))
						if i >= len(swarm) {
							return
						}
						fs[i] = clampNaN(fitness(swarm[i].x))
						done[i] = true
					}
				}()
			}
			wg.Wait()
		} else if workers <= 1 {
			for i := range swarm {
				if ctx.Err() != nil && !(init && i == 0) {
					break
				}
				fs[i] = clampNaN(fitness(swarm[i].x))
				done[i] = true
			}
		}
		if init && !done[0] {
			fs[0] = clampNaN(fitness(swarm[0].x))
			done[0] = true
		}
		interrupted := false
		for i := range done {
			if done[i] {
				evals++
			} else {
				interrupted = true
			}
		}
		return interrupted
	}

	// applyGen folds the generation's fitnesses into pbest/gbest in
	// particle-index order — the barrier that makes the trajectory
	// worker-count independent. Evaluated particles are applied even when
	// the generation was interrupted, so the result is never worse than
	// the best position actually seen.
	applyGen := func(init bool) {
		for i := range swarm {
			if !done[i] {
				continue
			}
			p := &swarm[i]
			f := fs[i]
			if init {
				p.pbestX = append([]float64(nil), p.x...)
				p.pbestF = f
			} else if f < p.pbestF {
				p.pbestF = f
				copy(p.pbestX, p.x)
			}
			if f < gbestF {
				gbestF = f
				copy(gbestX, p.x)
			}
		}
	}

	interrupted := evalGen(true)
	applyGen(true)
	trace := make([]float64, 0, cfg.Iterations+1)
	trace = append(trace, gbestF)
	if cfg.OnIteration != nil {
		cfg.OnIteration(0, gbestF)
	}

	for it := 0; it < cfg.Iterations && !interrupted; it++ {
		for i := range swarm {
			p := &swarm[i]
			for d := 0; d < dim; d++ {
				r1, r2 := rng.Float64(), rng.Float64()
				p.v[d] = cfg.Omega*p.v[d] +
					cfg.C1*r1*(p.pbestX[d]-p.x[d]) +
					cfg.C2*r2*(gbestX[d]-p.x[d])
				if p.v[d] > cfg.VMax {
					p.v[d] = cfg.VMax
				}
				if p.v[d] < -cfg.VMax {
					p.v[d] = -cfg.VMax
				}
				p.x[d] += p.v[d]
				if p.x[d] < 0 {
					p.x[d] = 0
					p.v[d] = -p.v[d] * 0.5
				}
				if p.x[d] > 1 {
					p.x[d] = 1
					p.v[d] = -p.v[d] * 0.5
				}
			}
		}
		interrupted = evalGen(false)
		applyGen(false)
		trace = append(trace, gbestF)
		if cfg.OnIteration != nil {
			cfg.OnIteration(it+1, gbestF)
		}
	}
	return Result{BestX: gbestX, BestFitness: gbestF, Trace: trace, Evaluations: evals, Interrupted: interrupted}
}

// clampNaN maps a NaN fitness to +Inf so it can never win a pbest/gbest
// comparison (f < NaN is false for every f, which would otherwise freeze
// the particle's attractor on the invalid position).
func clampNaN(f float64) float64 {
	if math.IsNaN(f) {
		return math.Inf(1)
	}
	return f
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// MapToPartner converts a continuous position component in [0,1] to a
// categorical choice in [0,n): the inner PSO uses this to map positions to
// valve-sharing partners (eq. (10)'s X^s).
func MapToPartner(x float64, n int) int {
	if n <= 0 {
		return 0
	}
	i := int(x * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}
