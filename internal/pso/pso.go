// Package pso implements particle swarm optimization (Kennedy & Eberhart,
// ref. [20] of the paper), the search engine of the paper's two-level DFT
// flow (Section 4.2).
//
// Particles move through [0,1]^dim under the velocity update of eqs.
// (7)-(8):
//
//	v_i = ω·v_i + c1·rand1·(pbest_i − x_i) + c2·rand2·(gbest − x_i)
//	x_i = x_i + v_i
//
// (the paper prints the attraction terms with the sign flipped, which would
// repel particles from the best positions; we use the standard attractive
// form). Fitness is minimized; +Inf marks invalid positions, matching the
// paper's "quality ∞" for configurations that fail validation.
package pso

import (
	"context"
	"math"
	"math/rand"
)

// Config tunes the swarm.
type Config struct {
	// Particles is the swarm size (the paper uses 5 per level).
	Particles int
	// Iterations is the number of velocity/position updates (the paper
	// uses 100).
	Iterations int
	// Omega is the inertia weight ω, C1 the cognitive and C2 the social
	// acceleration constants. Zero values select 0.7, 1.5, 1.5.
	Omega, C1, C2 float64
	// VMax clamps velocity components (default 0.5).
	VMax float64
	// Seed makes runs reproducible.
	Seed int64
	// OnIteration, when non-nil, is called with the global-best fitness
	// after initialization (iteration 0) and after every velocity/position
	// update — the instrumentation hook the DFT flow's observer rides on.
	// The callback must not mutate swarm state; it never affects the
	// search (the RNG stream and iteration order are identical with or
	// without it).
	OnIteration func(iteration int, best float64)
}

func (c Config) withDefaults() Config {
	if c.Particles <= 0 {
		c.Particles = 5
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.Omega == 0 {
		c.Omega = 0.7
	}
	if c.C1 == 0 {
		c.C1 = 1.5
	}
	if c.C2 == 0 {
		c.C2 = 1.5
	}
	if c.VMax == 0 {
		c.VMax = 0.5
	}
	return c
}

// Result reports the best position found.
type Result struct {
	BestX       []float64
	BestFitness float64
	// Trace holds the global-best fitness after every iteration (entry 0
	// is after initialization); it reproduces the convergence curves of
	// the paper's Fig. 9.
	Trace []float64
	// Evaluations counts fitness calls.
	Evaluations int
	// Interrupted reports that the context expired before the configured
	// iterations completed; BestX/BestFitness still hold the best position
	// found so far (graceful degradation, never a lost search).
	Interrupted bool
}

// Minimize runs PSO over [0,1]^dim. fitness returns the quality of a
// position (lower is better; +Inf for invalid). The search is fully
// deterministic for a fixed Config.Seed.
func Minimize(dim int, fitness func(x []float64) float64, cfg Config) Result {
	return MinimizeCtx(context.Background(), dim, fitness, cfg)
}

// MinimizeCtx is Minimize with cooperative cancellation: the context is
// checked between particle updates, and on expiry the best position found
// so far is returned with Interrupted set. At least one particle is always
// evaluated, so BestX is usable even under an already-cancelled context.
func MinimizeCtx(ctx context.Context, dim int, fitness func(x []float64) float64, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if dim <= 0 {
		// Degenerate: a single empty position.
		f := fitness(nil)
		if cfg.OnIteration != nil {
			cfg.OnIteration(0, f)
		}
		return Result{BestX: nil, BestFitness: f, Trace: fill(cfg.Iterations+1, f), Evaluations: 1}
	}

	type particle struct {
		x, v, pbestX []float64
		pbestF       float64
	}
	swarm := make([]particle, cfg.Particles)
	gbestX := make([]float64, dim)
	gbestF := math.Inf(1)
	evals := 0

	interrupted := false
	for i := range swarm {
		p := particle{
			x: make([]float64, dim),
			v: make([]float64, dim),
		}
		for d := 0; d < dim; d++ {
			p.x[d] = rng.Float64()
			p.v[d] = (rng.Float64()*2 - 1) * cfg.VMax
		}
		// The first particle is always evaluated so the result carries a
		// real position; afterwards an expired context stops initialization.
		if i > 0 && ctx.Err() != nil {
			interrupted = true
			swarm = swarm[:i]
			break
		}
		f := fitness(p.x)
		evals++
		p.pbestX = append([]float64(nil), p.x...)
		p.pbestF = f
		if f < gbestF {
			gbestF = f
			copy(gbestX, p.x)
		}
		swarm[i] = p
	}
	trace := make([]float64, 0, cfg.Iterations+1)
	trace = append(trace, gbestF)
	if cfg.OnIteration != nil {
		cfg.OnIteration(0, gbestF)
	}

	for it := 0; it < cfg.Iterations && !interrupted; it++ {
		for i := range swarm {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			p := &swarm[i]
			for d := 0; d < dim; d++ {
				r1, r2 := rng.Float64(), rng.Float64()
				p.v[d] = cfg.Omega*p.v[d] +
					cfg.C1*r1*(p.pbestX[d]-p.x[d]) +
					cfg.C2*r2*(gbestX[d]-p.x[d])
				if p.v[d] > cfg.VMax {
					p.v[d] = cfg.VMax
				}
				if p.v[d] < -cfg.VMax {
					p.v[d] = -cfg.VMax
				}
				p.x[d] += p.v[d]
				if p.x[d] < 0 {
					p.x[d] = 0
					p.v[d] = -p.v[d] * 0.5
				}
				if p.x[d] > 1 {
					p.x[d] = 1
					p.v[d] = -p.v[d] * 0.5
				}
			}
			f := fitness(p.x)
			evals++
			if f < p.pbestF {
				p.pbestF = f
				copy(p.pbestX, p.x)
			}
			if f < gbestF {
				gbestF = f
				copy(gbestX, p.x)
			}
		}
		trace = append(trace, gbestF)
		if cfg.OnIteration != nil {
			cfg.OnIteration(it+1, gbestF)
		}
	}
	return Result{BestX: gbestX, BestFitness: gbestF, Trace: trace, Evaluations: evals, Interrupted: interrupted}
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// MapToPartner converts a continuous position component in [0,1] to a
// categorical choice in [0,n): the inner PSO uses this to map positions to
// valve-sharing partners (eq. (10)'s X^s).
func MapToPartner(x float64, n int) int {
	if n <= 0 {
		return 0
	}
	i := int(x * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}
