package pso

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
)

// The batch-synchronous trajectory must be bit-identical for any worker
// count — the property every level above (core flow, golden fixtures)
// relies on.
func TestMinimizeWorkerCountInvariance(t *testing.T) {
	base := Minimize(4, sphere, Config{Particles: 7, Iterations: 60, Seed: 5, Workers: 1})
	for _, w := range []int{0, 2, 4, 8} {
		res := Minimize(4, sphere, Config{Particles: 7, Iterations: 60, Seed: 5, Workers: w})
		if res.BestFitness != base.BestFitness || res.Evaluations != base.Evaluations {
			t.Fatalf("workers=%d: fitness %v (%d evals), want %v (%d evals)",
				w, res.BestFitness, res.Evaluations, base.BestFitness, base.Evaluations)
		}
		for d := range base.BestX {
			if res.BestX[d] != base.BestX[d] {
				t.Fatalf("workers=%d: BestX[%d] = %v, want %v", w, d, res.BestX[d], base.BestX[d])
			}
		}
		if len(res.Trace) != len(base.Trace) {
			t.Fatalf("workers=%d: trace length %d, want %d", w, len(res.Trace), len(base.Trace))
		}
		for i := range base.Trace {
			if res.Trace[i] != base.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] = %v, want %v", w, i, res.Trace[i], base.Trace[i])
			}
		}
	}
}

// Parallel evaluation must call fitness exactly Evaluations times and run
// concurrently without losing results (the fitness here is concurrency-safe
// by construction, as the Workers > 1 contract requires).
func TestMinimizeParallelEvaluationCount(t *testing.T) {
	var calls int64
	fit := func(x []float64) float64 {
		atomic.AddInt64(&calls, 1)
		return sphere(x)
	}
	cfg := Config{Particles: 6, Iterations: 15, Seed: 2, Workers: 4}
	res := Minimize(3, fit, cfg)
	want := 6 + 6*15
	if res.Evaluations != want {
		t.Fatalf("Evaluations = %d, want %d", res.Evaluations, want)
	}
	if got := atomic.LoadInt64(&calls); got != int64(want) {
		t.Fatalf("fitness called %d times, want %d", got, want)
	}
}

// An explicit zero coefficient must mean zero, not "use the default"
// (the ilp.HasIncumbent / pressure.HasLeakConductance convention).
func TestConfigExplicitZeroCoefficients(t *testing.T) {
	// HasVMax with VMax 0 pins every particle to its initial position:
	// velocities are clamped into [-0, 0], so the trace is flat.
	res := Minimize(3, sphere, Config{Particles: 5, Iterations: 20, Seed: 4, VMax: 0, HasVMax: true})
	for i, v := range res.Trace {
		if v != res.Trace[0] {
			t.Fatalf("trace[%d] = %v under VMax=0, want constant %v (particles must not move)", i, v, res.Trace[0])
		}
	}

	// ω=0 (no inertia) must be configurable and behave differently from
	// the ω=0.7 default on the same seed.
	zero := Minimize(3, sphere, Config{Particles: 5, Iterations: 30, Seed: 4, Omega: 0, HasOmega: true})
	def := Minimize(3, sphere, Config{Particles: 5, Iterations: 30, Seed: 4})
	same := zero.BestFitness == def.BestFitness
	for i := range zero.Trace {
		if zero.Trace[i] != def.Trace[i] {
			same = false
		}
	}
	if same {
		t.Fatal("HasOmega+Omega=0 produced the identical trajectory to the 0.7 default — the flag is ignored")
	}

	// Without the flag a zero field still selects the default
	// (backwards compatibility).
	implicit := Minimize(3, sphere, Config{Particles: 5, Iterations: 30, Seed: 4, Omega: 0})
	if implicit.BestFitness != def.BestFitness {
		t.Fatalf("Omega=0 without HasOmega: fitness %v, want default-behavior %v", implicit.BestFitness, def.BestFitness)
	}

	// C1/C2 explicit zeros: purely social and purely cognitive swarms
	// must each differ from the default.
	c1zero := Minimize(3, sphere, Config{Particles: 5, Iterations: 30, Seed: 4, C1: 0, HasC1: true})
	c2zero := Minimize(3, sphere, Config{Particles: 5, Iterations: 30, Seed: 4, C2: 0, HasC2: true})
	if c1zero.BestFitness == def.BestFitness && c2zero.BestFitness == def.BestFitness {
		t.Fatal("HasC1/HasC2 zero coefficients did not change the trajectory")
	}
}

// A NaN fitness must clamp to +Inf instead of freezing a particle's
// attractor (f < NaN is false for every f).
func TestNaNFitnessClamped(t *testing.T) {
	engines := map[string]func(int, func([]float64) float64, Config) Result{
		"batch":    Minimize,
		"baseline": MinimizeBaseline,
	}
	for name, minimize := range engines {
		// Everywhere-NaN: the result must be +Inf, never NaN.
		res := minimize(2, func(x []float64) float64 { return math.NaN() }, Config{Particles: 5, Iterations: 10, Seed: 1})
		if !math.IsInf(res.BestFitness, 1) {
			t.Fatalf("%s: all-NaN fitness gave BestFitness %v, want +Inf", name, res.BestFitness)
		}
		for i, v := range res.Trace {
			if math.IsNaN(v) {
				t.Fatalf("%s: trace[%d] is NaN", name, i)
			}
		}

		// NaN region next to a valid region: the swarm must escape the
		// poison and converge — with the pre-fix behavior a particle
		// initialized in the NaN region kept pbestF = NaN forever.
		f := func(x []float64) float64 {
			if x[0] < 0.5 {
				return math.NaN()
			}
			return math.Abs(x[0] - 0.75)
		}
		res = minimize(1, f, Config{Particles: 8, Iterations: 100, Seed: 6})
		if math.IsNaN(res.BestFitness) || math.IsInf(res.BestFitness, 1) {
			t.Fatalf("%s: swarm never escaped the NaN region: %v", name, res.BestFitness)
		}
		if res.BestFitness > 0.05 {
			t.Fatalf("%s: poor convergence beside a NaN region: %v", name, res.BestFitness)
		}
	}
}

// The preserved baseline engine must keep the seed's semantics: serial
// asynchronous updates, deterministic per seed, same evaluation count.
func TestBaselinePreservesSeedSemantics(t *testing.T) {
	a := MinimizeBaseline(4, sphere, Config{Particles: 10, Iterations: 200, Seed: 1})
	if a.BestFitness > 1e-3 {
		t.Fatalf("baseline sphere minimum not found: %v", a.BestFitness)
	}
	b := MinimizeBaseline(4, sphere, Config{Particles: 10, Iterations: 200, Seed: 1})
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("baseline is not deterministic for a fixed seed")
	}
	if want := 10 + 10*200; a.Evaluations != want {
		t.Fatalf("baseline evaluations = %d, want %d", a.Evaluations, want)
	}
	// Workers is ignored: the trajectory is the evaluation order.
	c := MinimizeBaseline(4, sphere, Config{Particles: 10, Iterations: 200, Seed: 1, Workers: 8})
	if c.BestFitness != a.BestFitness || c.Evaluations != a.Evaluations {
		t.Fatal("baseline with Workers set diverged from the serial run")
	}
}

// Cancellation semantics of the batch engine under a worker pool: the
// result reflects every evaluation that completed, and Interrupted is set.
func TestMinimizeCtxParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var evals int64
	fit := func(x []float64) float64 {
		if atomic.AddInt64(&evals, 1) == 20 {
			cancel()
		}
		return sphere(x)
	}
	res := MinimizeCtx(ctx, 3, fit, Config{Particles: 6, Iterations: 100, Seed: 8, Workers: 4})
	if !res.Interrupted {
		t.Fatal("Interrupted = false after mid-run cancel")
	}
	full := 6 + 6*100
	if res.Evaluations >= full {
		t.Fatalf("Evaluations = %d, want an early stop (< %d)", res.Evaluations, full)
	}
	if math.IsInf(res.BestFitness, 1) || math.IsNaN(res.BestFitness) {
		t.Fatalf("BestFitness = %v, want a real evaluated value", res.BestFitness)
	}
}
