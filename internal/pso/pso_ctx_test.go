package pso

import (
	"context"
	"math"
	"testing"
)

func TestMinimizeCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := MinimizeCtx(ctx, 3, sphere, Config{Particles: 5, Iterations: 40})
	if !res.Interrupted {
		t.Fatal("Interrupted = false under a pre-cancelled context")
	}
	if res.Evaluations < 1 {
		t.Fatalf("Evaluations = %d, want at least the first particle", res.Evaluations)
	}
	if len(res.BestX) != 3 {
		t.Fatalf("BestX = %v, want a usable 3-dim position", res.BestX)
	}
	if math.IsInf(res.BestFitness, 0) || math.IsNaN(res.BestFitness) {
		t.Fatalf("BestFitness = %v, want a real evaluated value", res.BestFitness)
	}
}

func TestMinimizeCtxMidRunCancellation(t *testing.T) {
	// Cancel from inside the fitness function after a fixed number of
	// evaluations: the swarm must stop early and keep the best-so-far.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 7
	evals := 0
	best := math.Inf(1)
	fit := func(x []float64) float64 {
		evals++
		if evals == stopAt {
			cancel()
		}
		f := sphere(x)
		if f < best {
			best = f
		}
		return f
	}
	cfg := Config{Particles: 5, Iterations: 100}
	res := MinimizeCtx(ctx, 4, fit, cfg)
	if !res.Interrupted {
		t.Fatal("Interrupted = false after mid-run cancel")
	}
	full := cfg.Particles * (cfg.Iterations + 1)
	if res.Evaluations >= full {
		t.Fatalf("Evaluations = %d, want an early stop (< %d)", res.Evaluations, full)
	}
	if res.BestFitness != best {
		t.Fatalf("BestFitness = %v, want best seen %v", res.BestFitness, best)
	}
}

func TestMinimizeCtxNilAndBackground(t *testing.T) {
	a := MinimizeCtx(nil, 2, sphere, Config{Particles: 4, Iterations: 10, Seed: 3})
	b := MinimizeCtx(context.Background(), 2, sphere, Config{Particles: 4, Iterations: 10, Seed: 3})
	if a.Interrupted || b.Interrupted {
		t.Fatal("uncancelled runs reported Interrupted")
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatalf("nil ctx run (%v, %d evals) differs from Background run (%v, %d evals)",
			a.BestFitness, a.Evaluations, b.BestFitness, b.Evaluations)
	}
}
