// The seed's asynchronous serial PSO engine, preserved verbatim (plus the
// NaN clamp both engines share) as the A/B reference for cmd/bench -pso
// and the batch-vs-baseline property tests — the same convention as
// lp/ilp SolveBaseline, pressure.SolveBaseline and
// fault.EvaluateCoverageBaseline.
//
// The baseline updates gbest immediately after each particle's
// evaluation, so later particles in the same iteration are attracted to a
// best position found moments earlier. That asynchronous update order is
// inherently serial: evaluating particles concurrently would make the
// trajectory depend on completion order. The batch-synchronous engine in
// MinimizeCtx trades that same-iteration freshness for a barrier that
// makes the trajectory worker-count independent.

package pso

import (
	"context"
	"math"
	"math/rand"
)

// MinimizeBaseline runs the seed's asynchronous serial PSO over [0,1]^dim.
// Config.Workers is ignored — the evaluation order is the trajectory, so
// the baseline cannot parallelize.
func MinimizeBaseline(dim int, fitness func(x []float64) float64, cfg Config) Result {
	return MinimizeBaselineCtx(context.Background(), dim, fitness, cfg)
}

// MinimizeBaselineCtx is MinimizeBaseline with cooperative cancellation:
// the context is checked between particle updates, and on expiry the best
// position found so far is returned with Interrupted set. At least one
// particle is always evaluated, so BestX is usable even under an
// already-cancelled context.
func MinimizeBaselineCtx(ctx context.Context, dim int, fitness func(x []float64) float64, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if dim <= 0 {
		// Degenerate: a single empty position.
		f := clampNaN(fitness(nil))
		if cfg.OnIteration != nil {
			cfg.OnIteration(0, f)
		}
		return Result{BestX: nil, BestFitness: f, Trace: fill(cfg.Iterations+1, f), Evaluations: 1}
	}

	type particle struct {
		x, v, pbestX []float64
		pbestF       float64
	}
	swarm := make([]particle, cfg.Particles)
	gbestX := make([]float64, dim)
	gbestF := math.Inf(1)
	evals := 0

	interrupted := false
	for i := range swarm {
		p := particle{
			x: make([]float64, dim),
			v: make([]float64, dim),
		}
		for d := 0; d < dim; d++ {
			p.x[d] = rng.Float64()
			p.v[d] = (rng.Float64()*2 - 1) * cfg.VMax
		}
		// The first particle is always evaluated so the result carries a
		// real position; afterwards an expired context stops initialization.
		if i > 0 && ctx.Err() != nil {
			interrupted = true
			swarm = swarm[:i]
			break
		}
		f := clampNaN(fitness(p.x))
		evals++
		p.pbestX = append([]float64(nil), p.x...)
		p.pbestF = f
		if f < gbestF {
			gbestF = f
			copy(gbestX, p.x)
		}
		swarm[i] = p
	}
	trace := make([]float64, 0, cfg.Iterations+1)
	trace = append(trace, gbestF)
	if cfg.OnIteration != nil {
		cfg.OnIteration(0, gbestF)
	}

	for it := 0; it < cfg.Iterations && !interrupted; it++ {
		for i := range swarm {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			p := &swarm[i]
			for d := 0; d < dim; d++ {
				r1, r2 := rng.Float64(), rng.Float64()
				p.v[d] = cfg.Omega*p.v[d] +
					cfg.C1*r1*(p.pbestX[d]-p.x[d]) +
					cfg.C2*r2*(gbestX[d]-p.x[d])
				if p.v[d] > cfg.VMax {
					p.v[d] = cfg.VMax
				}
				if p.v[d] < -cfg.VMax {
					p.v[d] = -cfg.VMax
				}
				p.x[d] += p.v[d]
				if p.x[d] < 0 {
					p.x[d] = 0
					p.v[d] = -p.v[d] * 0.5
				}
				if p.x[d] > 1 {
					p.x[d] = 1
					p.v[d] = -p.v[d] * 0.5
				}
			}
			f := clampNaN(fitness(p.x))
			evals++
			if f < p.pbestF {
				p.pbestF = f
				copy(p.pbestX, p.x)
			}
			if f < gbestF {
				gbestF = f
				copy(gbestX, p.x)
			}
		}
		trace = append(trace, gbestF)
		if cfg.OnIteration != nil {
			cfg.OnIteration(it+1, gbestF)
		}
	}
	return Result{BestX: gbestX, BestFitness: gbestF, Trace: trace, Evaluations: evals, Interrupted: interrupted}
}
