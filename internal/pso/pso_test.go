package pso

import (
	"math"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		d := v - 0.5
		s += d * d
	}
	return s
}

func TestMinimizeSphere(t *testing.T) {
	res := Minimize(4, sphere, Config{Particles: 10, Iterations: 200, Seed: 1})
	if res.BestFitness > 1e-3 {
		t.Fatalf("sphere minimum not found: %v at %v", res.BestFitness, res.BestX)
	}
	for _, v := range res.BestX {
		if math.Abs(v-0.5) > 0.1 {
			t.Fatalf("best position %v far from optimum", res.BestX)
		}
	}
}

func TestTraceMonotoneNonIncreasing(t *testing.T) {
	res := Minimize(6, sphere, Config{Seed: 7})
	if len(res.Trace) != 101 {
		t.Fatalf("trace length %d, want 101 (init + 100 iterations)", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-12 {
			t.Fatalf("gbest increased at iteration %d: %v -> %v", i, res.Trace[i-1], res.Trace[i])
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Minimize(5, sphere, Config{Seed: 42})
	b := Minimize(5, sphere, Config{Seed: 42})
	if a.BestFitness != b.BestFitness {
		t.Fatalf("same seed, different results: %v vs %v", a.BestFitness, b.BestFitness)
	}
	c := Minimize(5, sphere, Config{Seed: 43})
	if a.BestFitness == c.BestFitness && a.BestX[0] == c.BestX[0] {
		t.Log("different seeds converged identically (possible but unusual)")
	}
}

func TestInfinityPositionsSkipped(t *testing.T) {
	// Only a narrow valid region around x=0.25; everything else invalid.
	f := func(x []float64) float64 {
		if math.Abs(x[0]-0.25) > 0.2 {
			return math.Inf(1)
		}
		return math.Abs(x[0] - 0.25)
	}
	res := Minimize(1, f, Config{Particles: 20, Iterations: 150, Seed: 3})
	if math.IsInf(res.BestFitness, 1) {
		t.Fatal("PSO never found the valid region")
	}
	if res.BestFitness > 0.05 {
		t.Fatalf("poor convergence: %v", res.BestFitness)
	}
}

func TestZeroDimension(t *testing.T) {
	res := Minimize(0, func(x []float64) float64 { return 7 }, Config{Seed: 1})
	if res.BestFitness != 7 || res.Evaluations != 1 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestEvaluationCount(t *testing.T) {
	cfg := Config{Particles: 5, Iterations: 10, Seed: 9}
	res := Minimize(2, sphere, cfg)
	want := 5 + 5*10
	if res.Evaluations != want {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestPositionsStayInUnitBox(t *testing.T) {
	seen := true
	f := func(x []float64) float64 {
		for _, v := range x {
			if v < 0 || v > 1 {
				seen = false
			}
		}
		return sphere(x)
	}
	Minimize(3, f, Config{Particles: 8, Iterations: 60, Seed: 11})
	if !seen {
		t.Fatal("a particle escaped [0,1]^n")
	}
}

func TestMapToPartner(t *testing.T) {
	if MapToPartner(0, 5) != 0 {
		t.Fatal("0 -> 0")
	}
	if MapToPartner(1, 5) != 4 {
		t.Fatal("1 -> n-1")
	}
	if MapToPartner(0.5, 4) != 2 {
		t.Fatal("0.5*4 -> 2")
	}
	if MapToPartner(0.3, 0) != 0 {
		t.Fatal("n=0 -> 0")
	}
}

// Property: MapToPartner always lands in [0, n).
func TestMapToPartnerRangeProperty(t *testing.T) {
	f := func(x float64, n uint8) bool {
		if n == 0 {
			return MapToPartner(x, 0) == 0
		}
		// Clamp x into [0,1] as PSO positions are.
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		got := MapToPartner(x, int(n))
		return got >= 0 && got < int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: more iterations never hurt the final gbest for a fixed seed.
func TestMoreIterationsNotWorseProperty(t *testing.T) {
	f := func(seed int64) bool {
		short := Minimize(3, sphere, Config{Particles: 6, Iterations: 20, Seed: seed})
		long := Minimize(3, sphere, Config{Particles: 6, Iterations: 80, Seed: seed})
		return long.BestFitness <= short.BestFitness+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
