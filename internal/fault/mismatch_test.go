package fault

import (
	"errors"
	"testing"

	"repro/internal/chip"
)

func TestNewSimulatorControlMismatch(t *testing.T) {
	a := chip.IVD()
	b := chip.RA30()
	ctrl := chip.IndependentControl(a)
	sim, err := NewSimulator(b, ctrl)
	if sim != nil {
		t.Fatal("got a simulator for a mismatched chip/control pair")
	}
	if !errors.Is(err, ErrControlMismatch) {
		t.Fatalf("err = %v, want ErrControlMismatch", err)
	}
}

func TestNewSimulatorMatchingControl(t *testing.T) {
	c := chip.IVD()
	sim, err := NewSimulator(c, chip.IndependentControl(c))
	if err != nil || sim == nil {
		t.Fatalf("NewSimulator = (%v, %v), want a simulator", sim, err)
	}
}

func TestMustSimulatorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSimulator did not panic on a mismatched control assignment")
		}
	}()
	MustSimulator(chip.RA30(), chip.IndependentControl(chip.IVD()))
}
