package fault

import "repro/internal/chip"

// This file preserves the seed's serial recomputation path: Detects
// re-derived the fault-free valve states and meter readings for every
// (vector, fault) pair. It is the comparison baseline for the memoized
// engine — benchmarks (internal and cmd/bench) measure it, and tests pin
// result equivalence against it. It is not used by the production flow.

func (s *Simulator) detectsNoMemo(v Vector, f Fault) bool {
	base := s.OpenStates(v)
	good := s.meterReadings(v, base)
	bad := s.meterReadings(v, withFault(base, f))
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}

func (s *Simulator) faultFreeOKNoMemo(v Vector) bool {
	return usableReadings(v.Kind, s.meterReadings(v, s.OpenStates(v)))
}

// EvaluateCoverageBaseline runs a coverage campaign with the seed's
// serial, memo-free algorithm. Results are bit-identical to the engine's
// (including Undetected order); only the cost differs.
func EvaluateCoverageBaseline(s *Simulator, vectors []Vector, faults []Fault) Coverage {
	cov := Coverage{Total: len(faults)}
	usable := make([]Vector, 0, len(vectors))
	for _, v := range vectors {
		if s.faultFreeOKNoMemo(v) {
			usable = append(usable, v)
		}
	}
	for _, f := range faults {
		detected := false
		for _, v := range usable {
			if s.detectsNoMemo(v, f) {
				detected = true
				break
			}
		}
		if detected {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f)
		}
	}
	return cov
}

// BenchCampaignVectors builds the representative small campaign the
// fault benchmarks use: an all-open path vector plus one single-valve cut
// per port-adjacent valve.
func BenchCampaignVectors(c *chip.Chip) []Vector {
	var all []int
	for v := 0; v < c.NumValves(); v++ {
		all = append(all, v)
	}
	vectors := []Vector{{Kind: PathVector, Valves: all, Sources: []int{0}, Meters: []int{1}}}
	for _, p := range c.Ports {
		for _, e := range c.Grid.IncidentEdges(p.Node) {
			if v, ok := c.ValveOnEdge(e); ok {
				vectors = append(vectors, Vector{Kind: CutVector, Valves: []int{v}, Sources: []int{0}, Meters: []int{1}})
			}
		}
	}
	return vectors
}
