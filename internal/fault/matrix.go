// Detection matrix: the precomputed (vector, fault) detection relation the
// adaptive-diagnosis engine selects test vectors from.
//
// A row is one vector's detection signature over the fault list, stored as
// a []uint64 bitset so candidate-set updates and split counting in the
// diagnosis hot loop are word-parallel and allocation-free. Rows are
// independent of each other, so the build fans vectors out over the
// engine's worker pool and the result is bit-identical for any worker
// count.
package fault

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
)

// DetectionMatrix is the dense (vector, fault) detection relation of a
// campaign. It is immutable after construction and safe for concurrent
// reads.
type DetectionMatrix struct {
	vectors []Vector
	faults  []Fault
	usable  []bool
	words   int        // uint64 words per row
	rows    [][]uint64 // rows[v] bit f set iff vector v detects fault f
}

// NumVectors returns the number of vectors (rows).
func (m *DetectionMatrix) NumVectors() int { return len(m.vectors) }

// NumFaults returns the number of faults (columns).
func (m *DetectionMatrix) NumFaults() int { return len(m.faults) }

// Vector returns vector v.
func (m *DetectionMatrix) Vector(v int) Vector { return m.vectors[v] }

// Fault returns fault f.
func (m *DetectionMatrix) Fault(f int) Fault { return m.faults[f] }

// Usable reports whether vector v behaves as specified on a defect-free
// chip. Unusable vectors have all-zero rows: they detect nothing and the
// diagnosis engine never applies them.
func (m *DetectionMatrix) Usable(v int) bool { return m.usable[v] }

// NumUsable returns the number of usable vectors — the cost of an
// exhaustive replay (the baseline adaptive diagnosis is measured against).
func (m *DetectionMatrix) NumUsable() int {
	n := 0
	for _, u := range m.usable {
		if u {
			n++
		}
	}
	return n
}

// Detects reports whether vector v detects fault f.
func (m *DetectionMatrix) Detects(v, f int) bool {
	return m.rows[v][f>>6]&(1<<uint(f&63)) != 0
}

// Row returns vector v's detection signature as a bitset over faults. The
// returned slice is shared and must not be modified.
func (m *DetectionMatrix) Row(v int) []uint64 { return m.rows[v] }

// Words returns the number of uint64 words per row — the buffer size a
// caller-owned candidate bitset needs.
func (m *DetectionMatrix) Words() int { return m.words }

// RowPopCount returns the number of faults vector v detects.
func (m *DetectionMatrix) RowPopCount(v int) int {
	n := 0
	for _, w := range m.rows[v] {
		n += bits.OnesCount64(w)
	}
	return n
}

// DetectionMatrix fault-simulates every (vector, fault) pair across the
// worker pool and returns the dense detection relation. Vectors that fail
// FaultFreeOK get all-zero rows and Usable(v) == false. Cancelling the
// context stops the build within one vector and returns the context's
// error. The matrix is bit-identical for any worker count.
func (e *Engine) DetectionMatrix(ctx context.Context, vectors []Vector, faults []Fault) (*DetectionMatrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.sim.metrics.noteCampaign(len(faults))
	words := (len(faults) + 63) / 64
	m := &DetectionMatrix{
		vectors: append([]Vector(nil), vectors...),
		faults:  append([]Fault(nil), faults...),
		usable:  make([]bool, len(vectors)),
		words:   words,
		rows:    make([][]uint64, len(vectors)),
	}
	// One backing array for all rows: |vectors| x words.
	backing := make([]uint64, len(vectors)*words)
	for v := range vectors {
		m.rows[v] = backing[v*words : (v+1)*words : (v+1)*words]
	}

	// Phase 1: memoized fault-free evaluation per vector (serial, shared
	// with the simulator's memo cache).
	evals := make([]*vectorEval, len(vectors))
	for v := range vectors {
		evals[v] = e.sim.evalVector(vectors[v])
		m.usable[v] = evals[v].usable
	}

	// Phase 2: per-vector detection rows over the worker pool. Each row
	// depends only on its own vector, so assembly order is fixed by the
	// vector index and the result is worker-count independent.
	fillRow := func(v int, sc *campaignScratch) {
		if !evals[v].usable {
			return
		}
		row := m.rows[v]
		for f := range faults {
			if e.sim.detectsEval(vectors[v], evals[v], faults[f], sc) {
				row[f>>6] |= 1 << uint(f&63)
			}
		}
	}
	workers := e.workers
	if workers > len(vectors) {
		workers = len(vectors)
	}
	if workers <= 1 {
		sc := e.sim.getScratch()
		for v := range vectors {
			if err := ctx.Err(); err != nil {
				e.sim.putScratch(sc)
				return nil, err
			}
			fillRow(v, sc)
		}
		e.sim.putScratch(sc)
		return m, nil
	}
	var next atomic.Int64
	var stopped atomic.Bool
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := e.sim.getScratch()
			defer e.sim.putScratch(sc)
			for {
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				v := int(next.Add(1)) - 1
				if v >= len(vectors) {
					return
				}
				fillRow(v, sc)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return nil, ctx.Err()
	}
	return m, nil
}
