package fault

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
)

// randomVector draws a vector with random kind, valve set, and port sets,
// including multi-source/multi-meter and degenerate (unusable) shapes.
func randomVector(rng *rand.Rand, c *chip.Chip) Vector {
	kind := PathVector
	if rng.Intn(2) == 1 {
		kind = CutVector
	}
	nv := rng.Intn(c.NumValves() + 1)
	seen := map[int]bool{}
	var valves []int
	for len(valves) < nv {
		v := rng.Intn(c.NumValves())
		if !seen[v] {
			seen[v] = true
			valves = append(valves, v)
		}
	}
	pick := func(n int) []int {
		var out []int
		used := map[int]bool{}
		for len(out) < n {
			p := rng.Intn(len(c.Ports))
			if !used[p] {
				used[p] = true
				out = append(out, p)
			}
		}
		return out
	}
	nSrc := 1 + rng.Intn(2)
	nMet := 1 + rng.Intn(2)
	if nSrc+nMet > len(c.Ports) {
		nSrc, nMet = 1, 1
	}
	return Vector{Kind: kind, Valves: valves, Sources: pick(nSrc), Meters: pick(nMet)}
}

// TestDetectsFastPathEquivalence pins the campaign fast path (saturation
// screen + single-edge reach rule) to the seed's memo-free simulation on
// random chips, random vectors and every fault kind, under independent
// and shared control.
func TestDetectsFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		c := chip.Random(rng)
		ctrls := []*chip.Control{chip.IndependentControl(c)}
		// A chip with DFT valves exercises sharing-induced masking too.
		aug := c.Clone()
		added := 0
		for e := 0; e < aug.Grid.NumEdges() && added < 3; e++ {
			if _, ok := aug.ValveOnEdge(e); !ok {
				if _, err := aug.AddDFTChannel(e); err == nil {
					added++
				}
			}
		}
		partners := make([]int, aug.NumDFTValves())
		for i := range partners {
			partners[i] = i % aug.NumOriginalValves()
		}
		if sc, err := chip.SharedControl(aug, partners); err == nil {
			ctrls = append(ctrls, sc)
		}
		for _, ctrl := range ctrls {
			cc := ctrl.Chip()
			sim := MustSimulator(cc, ctrl)
			for i := 0; i < 30; i++ {
				v := randomVector(rng, cc)
				for _, kind := range []Kind{StuckAt0, StuckAt1, Leakage} {
					valve := rng.Intn(cc.NumValves())
					f := Fault{Kind: kind, Valve: valve}
					got := sim.Detects(v, f)
					want := sim.detectsNoMemo(v, f)
					if got != want {
						t.Fatalf("chip %s trial %d: Detects(%v, %v) = %v, memo-free says %v",
							cc.Name, trial, v, f, got, want)
					}
				}
			}
		}
	}
}

// TestFastPathCoverageMatchesBaseline runs whole campaigns on the bundled
// designs and checks the engine (with the fast path) still produces
// bit-identical Coverage to the serial memo-free baseline.
func TestFastPathCoverageMatchesBaseline(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		vectors := BenchCampaignVectors(c)
		faults := AllFaultsOfKinds(c, StuckAt0, StuckAt1, Leakage)
		simA := MustSimulator(c, chip.IndependentControl(c))
		simB := MustSimulator(c, chip.IndependentControl(c))
		want := EvaluateCoverageBaseline(simA, vectors, faults)
		for _, workers := range []int{1, 4} {
			got := NewEngine(simB, workers).EvaluateCoverage(vectors, faults)
			if got.Total != want.Total || got.Detected != want.Detected || len(got.Undetected) != len(want.Undetected) {
				t.Fatalf("%s workers=%d: coverage %+v != baseline %+v", c.Name, workers, got, want)
			}
			for i := range got.Undetected {
				if got.Undetected[i] != want.Undetected[i] {
					t.Fatalf("%s workers=%d: Undetected[%d] = %v != %v", c.Name, workers, i, got.Undetected[i], want.Undetected[i])
				}
			}
		}
	}
}

// TestFastPathMetrics checks the screen/reach-rule counters move during a
// campaign (the scaling bench reports them as "pressure solves avoided").
func TestFastPathMetrics(t *testing.T) {
	c := chip.IVD()
	m := NewMetrics()
	sim := MustSimulator(c, chip.IndependentControl(c))
	sim.SetMetrics(m)
	NewEngine(sim, 1).EvaluateCoverage(BenchCampaignVectors(c), AllFaults(c))
	snap := m.Snapshot()
	if snap.ScreenSkips+snap.ReachChecks == 0 {
		t.Fatalf("fast path never engaged: %+v", snap)
	}
}
