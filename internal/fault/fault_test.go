package fault

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/grid"
)

// pathVectorBetween builds a path vector along the shortest channel path
// between two ports of c.
func pathVectorBetween(t *testing.T, c *chip.Chip, src, dst int) Vector {
	t.Helper()
	g := c.Grid.Graph()
	_, edges, ok := g.ShortestPath(c.Ports[src].Node, c.Ports[dst].Node, func(e int) bool {
		_, valved := c.ValveOnEdge(e)
		return valved
	})
	if !ok {
		t.Fatalf("no channel path between ports %d and %d", src, dst)
	}
	var valves []int
	for _, e := range edges {
		v, _ := c.ValveOnEdge(e)
		valves = append(valves, v)
	}
	return Vector{Kind: PathVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}
}

func indepSim(c *chip.Chip) *Simulator {
	return MustSimulator(c, chip.IndependentControl(c))
}

func TestPathVectorFaultFree(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	v := pathVectorBetween(t, c, 0, 2)
	if !s.FaultFreeOK(v) {
		t.Fatal("good chip must pass a valid path vector")
	}
}

func TestPathVectorDetectsStuckAt0OnPath(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	v := pathVectorBetween(t, c, 0, 2)
	for _, valve := range v.Valves {
		if !s.Detects(v, Fault{Kind: StuckAt0, Valve: valve}) {
			t.Errorf("stuck-at-0 on path valve %d undetected", valve)
		}
	}
}

func TestPathVectorMissesStuckAt0OffPath(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	v := pathVectorBetween(t, c, 0, 2)
	onPath := make(map[int]bool)
	for _, valve := range v.Valves {
		onPath[valve] = true
	}
	for valve := 0; valve < c.NumValves(); valve++ {
		if onPath[valve] {
			continue
		}
		if s.Detects(v, Fault{Kind: StuckAt0, Valve: valve}) {
			t.Errorf("stuck-at-0 on off-path valve %d should be invisible to this path", valve)
		}
	}
}

func TestPathVectorMissesStuckAt1(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	v := pathVectorBetween(t, c, 0, 2)
	for valve := 0; valve < c.NumValves(); valve++ {
		if s.Detects(v, Fault{Kind: StuckAt1, Valve: valve}) {
			t.Errorf("path vectors cannot detect stuck-at-1 (valve %d)", valve)
		}
	}
}

func TestCutVectorDetectsStuckAt1(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	// Port P0's single incident channel edge forms a minimal cut.
	var v0 int = -1
	for _, e := range c.Grid.IncidentEdges(c.Ports[0].Node) {
		if valve, ok := c.ValveOnEdge(e); ok {
			v0 = valve
		}
	}
	if v0 < 0 {
		t.Fatal("port P0 has no incident valve")
	}
	cut := Vector{Kind: CutVector, Valves: []int{v0}, Sources: []int{0}, Meters: []int{1}}
	if !s.FaultFreeOK(cut) {
		t.Fatal("cut must isolate source from meter on a good chip")
	}
	if !s.Detects(cut, Fault{Kind: StuckAt1, Valve: v0}) {
		t.Fatal("stuck-at-1 on the cut valve must leak pressure and be detected")
	}
	if !s.Detects(cut, Fault{Kind: Leakage, Valve: v0}) {
		t.Fatal("leakage behaves like stuck-at-1 and must be detected")
	}
}

func TestCutVectorRejectedWhenNotSeparating(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	// A cut of one interior valve does not separate P0 from P2 if a bypass
	// exists. Use a valve on the D1 side, which leaves P0->M1->M2->P2 open.
	path := pathVectorBetween(t, c, 0, 2)
	onPath := make(map[int]bool)
	for _, valve := range path.Valves {
		onPath[valve] = true
	}
	var off int = -1
	for valve := 0; valve < c.NumValves(); valve++ {
		if !onPath[valve] {
			off = valve
			break
		}
	}
	cut := Vector{Kind: CutVector, Valves: []int{off}, Sources: []int{0}, Meters: []int{2}}
	if s.FaultFreeOK(cut) {
		t.Fatal("non-separating cut must fail the fault-free check")
	}
}

func TestAllFaultsEnumeration(t *testing.T) {
	c := chip.IVD()
	fs := AllFaults(c)
	if len(fs) != 2*c.NumValves() {
		t.Fatalf("faults = %d, want %d", len(fs), 2*c.NumValves())
	}
	n0, n1 := 0, 0
	for _, f := range fs {
		switch f.Kind {
		case StuckAt0:
			n0++
		case StuckAt1:
			n1++
		}
	}
	if n0 != c.NumValves() || n1 != c.NumValves() {
		t.Fatalf("stuck0=%d stuck1=%d", n0, n1)
	}
}

func TestCoverageAggregation(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	v := pathVectorBetween(t, c, 0, 2)
	faults := []Fault{
		{Kind: StuckAt0, Valve: v.Valves[0]}, // detectable
		{Kind: StuckAt1, Valve: v.Valves[0]}, // not detectable by a path
	}
	cov := s.EvaluateCoverage([]Vector{v}, faults)
	if cov.Total != 2 || cov.Detected != 1 || len(cov.Undetected) != 1 {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.Full() {
		t.Fatal("coverage must not be full")
	}
	if cov.Ratio() != 0.5 {
		t.Fatalf("ratio = %v", cov.Ratio())
	}
	if !strings.Contains(cov.String(), "1/2") {
		t.Fatalf("String = %q", cov.String())
	}
}

func TestCoverageSkipsUnusableVectors(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	// Fabricate a broken path vector (opens nothing).
	broken := Vector{Kind: PathVector, Valves: nil, Sources: []int{0}, Meters: []int{2}}
	cov := s.EvaluateCoverage([]Vector{broken}, AllFaults(c))
	if cov.Detected != 0 {
		t.Fatalf("unusable vector produced %d detections", cov.Detected)
	}
}

func TestEmptyFaultListIsFullCoverage(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	cov := s.EvaluateCoverage(nil, nil)
	if !cov.Full() || cov.Ratio() != 1 {
		t.Fatalf("empty campaign: %+v", cov)
	}
}

// Valve-sharing masking, the scenario of Fig. 6: closing a test cut forces
// a shared partner valve closed as well; the partner sits on the leak path
// that would have revealed a stuck-at-1 defect, so the defect is masked.
func TestSharingMasksCutDetection(t *testing.T) {
	// Chip: P0(0,0) -v0- M(1,0) -v1- (2,0) -v2- P1(3,0), plus one DFT stub
	// edge v3 at (1,0)-(1,1).
	b := chip.NewBuilder("mask", 4, 3)
	b.AddDevice(chip.Mixer, "M", chipXY(1, 0))
	b.AddPort("P0", chipXY(0, 0))
	b.AddPort("P1", chipXY(3, 0))
	b.AddChannel(chipXY(0, 0), chipXY(1, 0), chipXY(2, 0), chipXY(3, 0)) // v0 v1 v2
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.Grid.EdgeBetweenCoords(chipXY(1, 0), chipXY(1, 1))
	if !ok {
		t.Fatal("missing grid edge")
	}
	if _, err := c.AddDFTChannel(e); err != nil {
		t.Fatal(err)
	}
	// Share DFT valve v3 with original v2 and apply cut {v1, v3}. Closing
	// v3 forces v2 closed on the same line. The cut still separates
	// (fault-free OK), but stuck-at-1 on v1 is masked: its leak path
	// P0-v0-v1-v2-P1 is blocked at the forced-closed v2.
	ctrl, err := chip.SharedControl(c, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	shared := MustSimulator(c, ctrl)
	cut := Vector{Kind: CutVector, Valves: []int{1, 3}, Sources: []int{0}, Meters: []int{1}}
	if !shared.FaultFreeOK(cut) {
		t.Fatal("cut must still separate under sharing")
	}
	if shared.Detects(cut, Fault{Kind: StuckAt1, Valve: 1}) {
		t.Fatal("sharing should mask stuck-at-1 on v1 for this cut")
	}
	// The same fault IS detected with independent control.
	indep := MustSimulator(c, chip.IndependentControl(c))
	if !indep.FaultFreeOK(cut) {
		t.Fatal("cut must separate under independent control")
	}
	if !indep.Detects(cut, Fault{Kind: StuckAt1, Valve: 1}) {
		t.Fatal("independent control must detect the fault")
	}
}

func TestStringers(t *testing.T) {
	if StuckAt0.String() != "stuck-at-0" || StuckAt1.String() != "stuck-at-1" || Leakage.String() != "leakage" {
		t.Fatal("Kind strings")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown Kind")
	}
	f := Fault{Kind: StuckAt0, Valve: 3}
	if f.String() != "stuck-at-0@v3" {
		t.Fatalf("Fault.String = %q", f.String())
	}
	v := Vector{Kind: PathVector, Valves: []int{1, 2}, Sources: []int{0}, Meters: []int{1}}
	if !strings.Contains(v.String(), "path vector") {
		t.Fatalf("Vector.String = %q", v.String())
	}
	if CutVector.String() != "cut" {
		t.Fatal("VectorKind string")
	}
}

func TestMultiMeterVector(t *testing.T) {
	c := chip.IVD()
	s := indepSim(c)
	// Open everything: pressure from P0 reaches both P1 and P2.
	var all []int
	for v := 0; v < c.NumValves(); v++ {
		all = append(all, v)
	}
	v := Vector{Kind: PathVector, Valves: all, Sources: []int{0}, Meters: []int{1, 2}}
	if !s.FaultFreeOK(v) {
		t.Fatal("all-open vector must pressurize both meters")
	}
}

func chipXY(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }
