// Engine: the parallel, memoized fault-simulation campaign runner.
//
// A campaign evaluates |faults| x |vectors| pairs; the fault-free chip
// behaviour depends only on the vector, so the engine computes it exactly
// once per vector (phase 1, serial, shared with the Simulator's memo
// cache) and then fans the per-fault detection scans out over a worker
// pool (phase 2). Each worker owns its scratch buffers (faulty-state copy,
// meter readings, BFS state), so the hot loop allocates nothing.
//
// Determinism: faults are indexed, each fault's verdict is independent of
// every other fault, and the Coverage is assembled in fault order after
// all workers finish — the result is bit-identical to the serial
// Simulator.EvaluateCoverage for any worker count.
package fault

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine runs fault-simulation campaigns over a worker pool, memoizing
// per-vector fault-free state. An Engine is safe for concurrent use; it is
// cheap to construct and may be created per campaign.
type Engine struct {
	sim     *Simulator
	workers int
}

// NewEngine returns a campaign engine over sim with the given worker-pool
// size. workers <= 0 selects runtime.GOMAXPROCS(0). Results are
// bit-identical for every worker count.
func NewEngine(sim *Simulator, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sim: sim, workers: workers}
}

// Simulator returns the simulator the engine drives.
func (e *Engine) Simulator() *Simulator { return e.sim }

// Workers returns the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// EvaluateCoverage is EvaluateCoverageCtx without cancellation.
func (e *Engine) EvaluateCoverage(vectors []Vector, faults []Fault) Coverage {
	cov, _ := e.EvaluateCoverageCtx(context.Background(), vectors, faults)
	return cov
}

// usableVector pairs a vector with its memoized fault-free evaluation.
type usableVector struct {
	vec Vector
	ev  *vectorEval
}

// EvaluateCoverageCtx fault-simulates every (vector, fault) pair across
// the worker pool and returns the aggregate coverage. Vectors that fail
// FaultFreeOK contribute no detections. Cancelling the context stops the
// campaign within one fault and returns the context's error.
func (e *Engine) EvaluateCoverageCtx(ctx context.Context, vectors []Vector, faults []Fault) (Coverage, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Coverage{}, err
	}
	e.sim.metrics.noteCampaign(len(faults))
	// Phase 1: fault-free valve states and meter readings, once per
	// vector. Hits the simulator's memo cache, so repeated campaigns over
	// the same vector set skip this entirely.
	usable := make([]usableVector, 0, len(vectors))
	for _, v := range vectors {
		if ev := e.sim.evalVector(v); ev.usable {
			usable = append(usable, usableVector{vec: v, ev: ev})
		}
	}

	// Phase 2: per-fault detection scans, one fault at a time per worker.
	detected := make([]bool, len(faults))
	workers := e.workers
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		sc := e.sim.getScratch()
		for i, f := range faults {
			if err := ctx.Err(); err != nil {
				e.sim.putScratch(sc)
				return Coverage{}, err
			}
			detected[i] = detectAny(e.sim, usable, f, sc)
		}
		e.sim.putScratch(sc)
	} else {
		var next atomic.Int64
		var stopped atomic.Bool
		done := ctx.Done()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := e.sim.getScratch()
				defer e.sim.putScratch(sc)
				for {
					select {
					case <-done:
						stopped.Store(true)
						return
					default:
					}
					i := int(next.Add(1)) - 1
					if i >= len(faults) {
						return
					}
					detected[i] = detectAny(e.sim, usable, faults[i], sc)
				}
			}()
		}
		wg.Wait()
		if stopped.Load() {
			return Coverage{}, ctx.Err()
		}
	}

	cov := Coverage{Total: len(faults)}
	for i, f := range faults {
		if detected[i] {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f)
		}
	}
	return cov, nil
}

// detectAny reports whether any usable vector detects f, scanning vectors
// in campaign order (first detection wins, exactly like the serial path).
func detectAny(s *Simulator, usable []usableVector, f Fault, sc *campaignScratch) bool {
	for _, uv := range usable {
		if s.detectsEval(uv.vec, uv.ev, f, sc) {
			return true
		}
	}
	return false
}
