// Package fault implements the paper's fault model for continuous-flow
// biochips and a pressure-propagation simulator used to validate test
// vectors, compute fault coverage, and detect the masking effects of valve
// sharing (Fig. 6 of the paper).
//
// Fault model (Section 2):
//
//   - stuck-at-0: a valve that cannot open, or a blocked channel. Since
//     every channel edge is guarded by exactly one valve, both manifest as
//     "this edge never conducts pressure".
//   - stuck-at-1: a valve that cannot close; the edge always conducts.
//   - leakage (extension, mentioned but not evaluated in the paper): a
//     defective membrane lets pressure cross a closed valve. Observationally
//     identical to stuck-at-1 in the pressure abstraction, but reported as
//     its own class.
//
// Pressure is simulated as reachability: air applied at source ports
// propagates through every channel edge whose valve is open; a meter reads
// "pressure" iff its port node is reachable from any source.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/chip"
)

// Kind classifies manufacturing defects.
type Kind int

// Defect kinds.
const (
	StuckAt0 Kind = iota // valve cannot open / channel blocked
	StuckAt1             // valve cannot close
	Leakage              // pressure leaks across a closed valve (extension)
)

func (k Kind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case Leakage:
		return "leakage"
	}
	return "unknown"
}

// Fault is a single defect at a valve.
type Fault struct {
	Kind  Kind
	Valve int
}

func (f Fault) String() string { return fmt.Sprintf("%v@v%d", f.Kind, f.Valve) }

// AllFaults enumerates the stuck-at-0 and stuck-at-1 faults of every valve
// (the fault list the paper's test sets must cover).
func AllFaults(c *chip.Chip) []Fault {
	return AllFaultsOfKinds(c, StuckAt0, StuckAt1)
}

// AllFaultsOfKinds enumerates faults of the given kinds for every valve.
// Passing Leakage extends the campaign to the membrane-leakage defects the
// paper mentions but does not evaluate; in the pressure abstraction they
// behave like stuck-at-1 and are covered by the same cut vectors.
func AllFaultsOfKinds(c *chip.Chip, kinds ...Kind) []Fault {
	out := make([]Fault, 0, len(kinds)*c.NumValves())
	for _, k := range kinds {
		for v := 0; v < c.NumValves(); v++ {
			out = append(out, Fault{Kind: k, Valve: v})
		}
	}
	return out
}

// VectorKind distinguishes the two test vector families.
type VectorKind int

// Vector kinds: a path vector opens one source→meter path (detects
// stuck-at-0 on its valves); a cut vector closes a separating valve set
// (detects stuck-at-1 on its valves).
const (
	PathVector VectorKind = iota
	CutVector
)

func (k VectorKind) String() string {
	if k == PathVector {
		return "path"
	}
	return "cut"
}

// Vector is one test vector. Valves lists the distinguished set: for a
// PathVector the valves driven open (everything else is driven closed);
// for a CutVector the valves driven closed (everything else driven open).
// Sources and Meters are port IDs. Single-source single-meter DFT vectors
// have exactly one of each; the multi-instrument baseline may use several.
type Vector struct {
	Kind    VectorKind
	Valves  []int
	Sources []int
	Meters  []int
}

func (v Vector) String() string {
	return fmt.Sprintf("%v vector: %d valves, src %v, meters %v", v.Kind, len(v.Valves), v.Sources, v.Meters)
}

// Simulator evaluates test vectors on a chip under a control assignment.
// The control assignment captures valve sharing: intended valve states are
// expanded to actual states line by line before simulation.
//
// The simulator memoizes the fault-free artifacts of every vector it sees
// (actual valve states after sharing expansion, meter readings, usability),
// keyed by vector identity, so repeated Detects/FaultFreeOK calls and whole
// campaigns never re-derive the good-chip behaviour. All methods are safe
// for concurrent use.
type Simulator struct {
	chip *chip.Chip
	ctrl *chip.Control

	mu    sync.Mutex
	cache map[string]*vectorEval

	// metrics, when attached via SetMetrics, counts memo-cache traffic.
	metrics *Metrics

	scratch sync.Pool // *campaignScratch
}

// vectorEval memoizes the fault-free artifacts of one vector. It is
// immutable once stored in the cache (the lazy reach-set analysis is
// built under analyzeOnce) and may be read concurrently.
type vectorEval struct {
	open     []bool // actual valve states after sharing expansion
	readings []bool // defect-free meter readings
	usable   bool   // FaultFreeOK
	anyTrue  bool   // some defect-free reading is true
	anyFalse bool   // some defect-free reading is false

	analyzeOnce sync.Once
	analysis    *vectorAnalysis // fault-free reach sets (see fastpath.go)

	bridgeOnce sync.Once
	bridges    *bridgeAnalysis // bridge structure of the open subgraph
}

// ErrControlMismatch reports a control assignment built for a different
// chip than the one under simulation.
var ErrControlMismatch = errors.New("fault: control assignment belongs to a different chip")

// NewSimulator returns a simulator for the chip under the given control
// layer. Pass chip.IndependentControl for a sharing-free chip. It returns
// ErrControlMismatch (test with errors.Is) when the control assignment was
// built for a different chip.
func NewSimulator(c *chip.Chip, ctrl *chip.Control) (*Simulator, error) {
	if ctrl.Chip() != c {
		return nil, fmt.Errorf("%w: control is for %q, chip is %q", ErrControlMismatch, ctrl.Chip().Name, c.Name)
	}
	return &Simulator{chip: c, ctrl: ctrl, cache: map[string]*vectorEval{}}, nil
}

// MustSimulator is NewSimulator for call sites where the chip/control pair
// is constructed together and a mismatch is a programming error; it panics
// on ErrControlMismatch (the regexp.MustCompile idiom).
func MustSimulator(c *chip.Chip, ctrl *chip.Control) *Simulator {
	s, err := NewSimulator(c, ctrl)
	if err != nil {
		panic(err)
	}
	return s
}

// Chip returns the chip under simulation.
func (s *Simulator) Chip() *chip.Chip { return s.chip }

// OpenStates computes the actual fault-free valve states when vector v is
// applied, including valves forced by control sharing.
func (s *Simulator) OpenStates(v Vector) []bool {
	intended := make([]bool, s.chip.NumValves())
	for _, val := range v.Valves {
		intended[val] = true
	}
	if v.Kind == PathVector {
		return s.ctrl.ExpandOpen(intended)
	}
	return s.ctrl.ExpandClosed(intended)
}

// withFault returns the states with fault f injected.
func withFault(open []bool, f Fault) []bool {
	out := append([]bool(nil), open...)
	switch f.Kind {
	case StuckAt0:
		out[f.Valve] = false
	case StuckAt1, Leakage:
		out[f.Valve] = true
	}
	return out
}

// meterReadingsInto appends, for each meter in v, whether it reads pressure
// under the given valve states. It reuses the caller's reachability scratch
// and readings buffer, so campaign-loop calls allocate nothing.
func (s *Simulator) meterReadingsInto(v Vector, open []bool, rs *chip.ReachScratch, out []bool) []bool {
	for _, m := range v.Meters {
		mNode := s.chip.Ports[m].Node
		read := false
		for _, src := range v.Sources {
			if s.chip.PressureReachableScratch(rs, s.chip.Ports[src].Node, mNode, open) {
				read = true
				break
			}
		}
		out = append(out, read)
	}
	return out
}

// meterReadings returns, for each meter in v, whether it reads pressure
// under the given valve states.
func (s *Simulator) meterReadings(v Vector, open []bool) []bool {
	var rs chip.ReachScratch
	return s.meterReadingsInto(v, open, &rs, make([]bool, 0, len(v.Meters)))
}

// usableReadings reports whether defect-free readings satisfy the vector's
// specification: a path vector must deliver pressure to every meter; a cut
// vector must isolate every meter from every source.
func usableReadings(k VectorKind, readings []bool) bool {
	for _, r := range readings {
		if k == PathVector && !r {
			return false
		}
		if k == CutVector && r {
			return false
		}
	}
	return len(readings) > 0
}

// vectorKey is a compact content key identifying a vector in the
// memoization cache.
func vectorKey(v Vector) string {
	buf := make([]byte, 0, 8+4*(len(v.Valves)+len(v.Sources)+len(v.Meters)))
	buf = strconv.AppendInt(buf, int64(v.Kind), 10)
	for _, x := range v.Valves {
		buf = append(buf, 'v')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	for _, x := range v.Sources {
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	for _, x := range v.Meters {
		buf = append(buf, 'm')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return string(buf)
}

// evalVector returns the memoized fault-free evaluation of v, computing it
// on first sight. The returned value is immutable.
func (s *Simulator) evalVector(v Vector) *vectorEval {
	key := vectorKey(v)
	s.mu.Lock()
	ev, ok := s.cache[key]
	s.mu.Unlock()
	s.metrics.noteMemo(ok)
	if ok {
		return ev
	}
	open := s.OpenStates(v)
	readings := s.meterReadings(v, open)
	ev = &vectorEval{open: open, readings: readings, usable: usableReadings(v.Kind, readings)}
	for _, r := range readings {
		if r {
			ev.anyTrue = true
		} else {
			ev.anyFalse = true
		}
	}
	s.mu.Lock()
	if prev, raced := s.cache[key]; raced {
		ev = prev // another goroutine computed it first; keep one instance
	} else {
		s.cache[key] = ev
	}
	s.mu.Unlock()
	return ev
}

// campaignScratch holds the per-worker reusable buffers of a campaign: the
// faulty valve-state copy, the faulty meter readings and the BFS state.
// One scratch must not be shared between goroutines.
type campaignScratch struct {
	open     []bool
	readings []bool
	reach    chip.ReachScratch
}

func (s *Simulator) getScratch() *campaignScratch {
	if sc, ok := s.scratch.Get().(*campaignScratch); ok {
		return sc
	}
	return &campaignScratch{}
}

func (s *Simulator) putScratch(sc *campaignScratch) { s.scratch.Put(sc) }

// FaultFreeOK reports whether the vector behaves as specified on a
// defect-free chip: a path vector must deliver pressure to every meter; a
// cut vector must isolate every meter from every source. A vector that
// fails this check is unusable (e.g. sharing forced open a valve that
// bypasses a cut).
func (s *Simulator) FaultFreeOK(v Vector) bool {
	return s.evalVector(v).usable
}

// Detects reports whether vector v detects fault f: some meter reading
// differs between the defect-free chip and the faulty chip. This general
// definition automatically accounts for sharing-induced masking — if a
// forced-open partner valve provides a bypass around a stuck-at-0 valve,
// or a forced-closed partner blocks the leak path of a stuck-at-1 valve,
// the readings do not differ and the fault goes undetected.
//
// The fault-free states and readings are memoized per vector, so repeated
// calls with the same vector only simulate the faulty chip.
func (s *Simulator) Detects(v Vector, f Fault) bool {
	ev := s.evalVector(v)
	sc := s.getScratch()
	det := s.detectsEval(v, ev, f, sc)
	s.putScratch(sc)
	return det
}

// Coverage summarizes a fault-simulation campaign.
type Coverage struct {
	Total      int
	Detected   int
	Undetected []Fault
}

// Full reports whether every fault was detected.
func (c Coverage) Full() bool { return c.Detected == c.Total }

// Ratio returns detected/total in [0,1].
func (c Coverage) Ratio() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.Total)
}

func (c Coverage) String() string {
	return fmt.Sprintf("coverage %d/%d (%.1f%%)", c.Detected, c.Total, 100*c.Ratio())
}

// EvaluateCoverage fault-simulates every (vector, fault) pair and returns
// the aggregate coverage. Vectors that fail FaultFreeOK contribute no
// detections (a vector that misbehaves on a good chip would reject good
// chips, so it must not be counted on).
//
// The campaign runs serially; use an Engine for the parallel worker pool.
// Both paths produce bit-identical Coverage, including Undetected order.
func (s *Simulator) EvaluateCoverage(vectors []Vector, faults []Fault) Coverage {
	return NewEngine(s, 1).EvaluateCoverage(vectors, faults)
}
