// Campaign fast path: exact structural rules for single-valve faults.
//
// Pressure is simulated as reachability over the open-valve edge set, so
// meter readings are monotone in that set: opening one more valve can only
// turn readings from "no pressure" to "pressure", and closing one can only
// do the reverse. Three exact consequences replace the faulty-chip BFS of
// a campaign:
//
//   - Saturation screen. An opening fault (stuck-at-1, leakage) on a vector
//     whose fault-free readings are all true cannot change any reading;
//     a closing fault (stuck-at-0) on a vector whose readings are all false
//     cannot either. Both verdicts are "undetected" with no simulation.
//
//   - Single-edge reach rule. An opening fault adds exactly one edge (u,w)
//     to the conducting set. A meter whose fault-free reading is false
//     becomes reachable iff some source→meter path crosses the new edge,
//     and a simple such path decomposes into a prefix and suffix that use
//     only old edges — so the meter flips iff u is source-reachable and w
//     is meter-reachable in the *fault-free* state, or vice versa. The
//     fault-free reach sets are computed once per vector (lazily, under a
//     sync.Once on the memoized evaluation) and answer every opening fault
//     of the campaign in O(meters) bitset probes.
//
//   - Bridge rule. A closing fault removes exactly one edge from the
//     conducting set, which changes reachability iff that edge is a bridge
//     of the open subgraph. One Tarjan bridge pass per vector (again lazy,
//     under a sync.Once) labels every open edge; a bridge removal splits
//     its component into the DFS subtree under the bridge and the rest, so
//     a true reading flips to false iff the meter sits in the split
//     component and every source of that component lands on the opposite
//     side — an O(sources) interval probe per meter.
//
// Together the three rules answer every (vector, single-valve-fault) query
// of a campaign in amortized O(1) simulation work after one BFS/DFS pass
// per distinct vector, which is what keeps FPVA-scale campaigns (10x the
// bundled valve counts) near-linear. Exactness is pinned against the
// unmemoized full simulation by the equivalence property tests.
package fault

// bitset is a fixed-size node set; campaigns keep one per vector analysis.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// vectorAnalysis caches the fault-free reach sets of one vector: the nodes
// reachable from any source and, per meter, the nodes reachable from the
// meter port, both over the open channel edges. Immutable once built.
type vectorAnalysis struct {
	srcReach   bitset
	meterReach []bitset
}

// analysisOf lazily builds (once, concurrency-safe) the reach sets of a
// memoized vector evaluation.
func (s *Simulator) analysisOf(v Vector, ev *vectorEval) *vectorAnalysis {
	ev.analyzeOnce.Do(func() {
		g := s.chip.Grid.Graph()
		allow := func(e int) bool {
			vv, ok := s.chip.ValveOnEdge(e)
			return ok && ev.open[vv]
		}
		a := &vectorAnalysis{srcReach: newBitset(g.NumNodes())}
		for _, src := range v.Sources {
			for n, d := range g.BFSFrom(s.chip.Ports[src].Node, allow) {
				if d >= 0 {
					a.srcReach.set(n)
				}
			}
		}
		a.meterReach = make([]bitset, len(v.Meters))
		for i, m := range v.Meters {
			bs := newBitset(g.NumNodes())
			for n, d := range g.BFSFrom(s.chip.Ports[m].Node, allow) {
				if d >= 0 {
					bs.set(n)
				}
			}
			a.meterReach[i] = bs
		}
		ev.analysis = a
	})
	return ev.analysis
}

// bridgeAnalysis is the Tarjan bridge decomposition of a vector's open
// subgraph: per-node DFS component, entry/exit times, the tree edge to the
// parent, and a flag marking parent edges that are bridges. The DFS subtree
// of a node c is exactly {x : tin[c] <= tin[x] < tout[c]}, so "which side
// of a removed bridge" is an O(1) interval probe. Immutable once built.
type bridgeAnalysis struct {
	comp       []int32
	tin, tout  []int32
	parentEdge []int32
	bridge     bitset // node's parent edge is a bridge
	srcNodes   []int
	meterNodes []int
}

// inSubtree reports whether node x lies in the DFS subtree rooted at c.
func (a *bridgeAnalysis) inSubtree(c, x int) bool {
	return a.tin[c] <= a.tin[x] && a.tin[x] < a.tout[c]
}

// bridgesOf lazily builds (once, concurrency-safe) the bridge structure of
// a memoized vector evaluation. One O(V+E) iterative DFS; parallel edges
// are handled by skipping only the entering edge ID, so a doubled channel
// correctly shields both copies from being bridges.
func (s *Simulator) bridgesOf(v Vector, ev *vectorEval) *bridgeAnalysis {
	ev.bridgeOnce.Do(func() {
		g := s.chip.Grid.Graph()
		n := g.NumNodes()
		a := &bridgeAnalysis{
			comp:       make([]int32, n),
			tin:        make([]int32, n),
			tout:       make([]int32, n),
			parentEdge: make([]int32, n),
			bridge:     newBitset(n),
		}
		low := make([]int32, n)
		for i := range a.comp {
			a.comp[i] = -1
			a.parentEdge[i] = -1
		}
		open := func(e int) bool {
			if g.EdgeDeleted(e) {
				return false
			}
			vv, ok := s.chip.ValveOnEdge(e)
			return ok && ev.open[vv]
		}
		type frame struct {
			node int32
			idx  int32
		}
		var stack []frame
		var timer, compID int32
		for root := 0; root < n; root++ {
			if a.comp[root] >= 0 {
				continue
			}
			a.comp[root] = compID
			a.tin[root], low[root] = timer, timer
			timer++
			stack = append(stack[:0], frame{node: int32(root)})
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				adj := g.Adjacency(int(f.node))
				advanced := false
				for int(f.idx) < len(adj) {
					arc := adj[f.idx]
					f.idx++
					if int32(arc.Edge) == a.parentEdge[f.node] || !open(arc.Edge) {
						continue
					}
					if a.comp[arc.To] >= 0 {
						if a.tin[arc.To] < low[f.node] {
							low[f.node] = a.tin[arc.To]
						}
						continue
					}
					a.comp[arc.To] = compID
					a.tin[arc.To], low[arc.To] = timer, timer
					timer++
					a.parentEdge[arc.To] = int32(arc.Edge)
					stack = append(stack, frame{node: int32(arc.To)})
					advanced = true
					break
				}
				if advanced {
					continue
				}
				node := f.node
				a.tout[node] = timer
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].node
					if low[node] < low[p] {
						low[p] = low[node]
					}
					if low[node] > a.tin[p] {
						a.bridge.set(int(node))
					}
				}
			}
			compID++
		}
		a.srcNodes = make([]int, len(v.Sources))
		for i, src := range v.Sources {
			a.srcNodes[i] = s.chip.Ports[src].Node
		}
		a.meterNodes = make([]int, len(v.Meters))
		for i, m := range v.Meters {
			a.meterNodes[i] = s.chip.Ports[m].Node
		}
		ev.bridges = a
	})
	return ev.bridges
}

// detectsClose applies the bridge rule: does removing open edge e (with
// endpoints u, w) flip any currently-true reading to false?
func (a *bridgeAnalysis) detectsClose(readings []bool, e, u, w int) bool {
	c := -1
	switch {
	case a.parentEdge[u] == int32(e):
		c = u
	case a.parentEdge[w] == int32(e):
		c = w
	default:
		return false // back edge of the DFS: on a cycle, never a bridge
	}
	if !a.bridge.has(c) {
		return false // tree edge on a cycle: removal changes nothing
	}
	ce := a.comp[c]
	for i, good := range readings {
		if !good {
			continue
		}
		m := a.meterNodes[i]
		if a.comp[m] != ce {
			continue // meter's component keeps all its sources
		}
		mSide := a.inSubtree(c, m)
		stays := false
		for _, sn := range a.srcNodes {
			if a.comp[sn] == ce && a.inSubtree(c, sn) == mSide {
				stays = true
				break
			}
		}
		if !stays {
			return true
		}
	}
	return false
}

// detectsEval is Detects over a memoized fault-free evaluation — the
// campaign hot path. It is exact: the rules above never change a verdict
// relative to the full simulation (see detectsNoMemo and the equivalence
// property tests). The scratch parameter is kept for the campaign loops
// that own per-worker scratch; the structural rules no longer need it.
func (s *Simulator) detectsEval(v Vector, ev *vectorEval, f Fault, _ *campaignScratch) bool {
	faulty := ev.open[f.Valve]
	switch f.Kind {
	case StuckAt0:
		faulty = false
	case StuckAt1, Leakage:
		faulty = true
	}
	if faulty == ev.open[f.Valve] {
		// The fault does not change the applied states, so no reading can
		// differ.
		return false
	}
	if faulty {
		// Opening fault. True readings cannot change; if no reading is
		// false the fault is undetectable by this vector.
		if !ev.anyFalse {
			s.metrics.noteScreen()
			return false
		}
		a := s.analysisOf(v, ev)
		u, w := s.chip.Grid.Graph().Endpoints(s.chip.Valve(f.Valve).Edge)
		s.metrics.noteReachRule()
		for i, good := range ev.readings {
			if good {
				continue
			}
			if (a.srcReach.has(u) && a.meterReach[i].has(w)) ||
				(a.srcReach.has(w) && a.meterReach[i].has(u)) {
				return true
			}
		}
		return false
	}
	// Closing fault. False readings cannot change; if no reading is true
	// the fault is undetectable by this vector.
	if !ev.anyTrue {
		s.metrics.noteScreen()
		return false
	}
	edge := s.chip.Valve(f.Valve).Edge
	u, w := s.chip.Grid.Graph().Endpoints(edge)
	s.metrics.noteBridgeRule()
	return s.bridgesOf(v, ev).detectsClose(ev.readings, edge, u, w)
}
