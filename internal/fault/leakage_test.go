// External test package: the leakage campaign is exercised through
// testgen-generated cut vectors, and testgen imports fault.
package fault_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/pressure"
	"repro/internal/testgen"
)

// leakageFixture augments a benchmark chip and returns its simulator and
// cut vectors — the inputs QuantifyLeakage sees in the DFT flow.
func leakageFixture(t *testing.T, c *chip.Chip) (*fault.Simulator, []fault.Vector) {
	t.Helper()
	aug, err := testgen.AugmentHeuristic(c, testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := testgen.GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if err != nil {
		t.Fatal(err)
	}
	return fault.MustSimulator(aug.Chip, chip.IndependentControl(aug.Chip)), cuts
}

func TestQuantifyLeakage(t *testing.T) {
	sim, cuts := leakageFixture(t, chip.IVD())
	rep, err := fault.QuantifyLeakage(context.Background(), sim, cuts, fault.LeakageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vectors != len(cuts) {
		t.Fatalf("evaluated %d of %d cut vectors", rep.Vectors, len(cuts))
	}
	if rep.Examined == 0 || rep.Detectable == 0 {
		t.Fatalf("degenerate campaign: %+v", rep)
	}
	if rep.Detectable+len(rep.Undetectable) != rep.Examined {
		t.Fatalf("counts don't add up: %+v", rep)
	}
	if rep.Solves.Solves == 0 || rep.Solves.Warm == 0 {
		t.Fatalf("campaign never hit the engine's warm path: %+v", rep.Solves)
	}
	if r := rep.Ratio(); r < 0 || r > 1 {
		t.Fatalf("ratio %v outside [0,1]", r)
	}
}

// TestQuantifyLeakageZeroLeak: with HasLeakConductance an airtight "leak"
// is expressible, and nothing can be detectable.
func TestQuantifyLeakageZeroLeak(t *testing.T) {
	sim, cuts := leakageFixture(t, chip.IVD())
	rep, err := fault.QuantifyLeakage(context.Background(), sim, cuts, fault.LeakageOptions{
		Params: pressure.Params{HasLeakConductance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detectable != 0 {
		t.Fatalf("zero-conductance leaks detected: %+v", rep)
	}
}

// TestQuantifyLeakageMeterSensitivity: a more sensitive meter can only
// widen the detectable set.
func TestQuantifyLeakageMeterSensitivity(t *testing.T) {
	sim, cuts := leakageFixture(t, chip.RA30())
	coarse, err := fault.QuantifyLeakage(context.Background(), sim, cuts, fault.LeakageOptions{
		Params: pressure.Params{MeterThreshold: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := fault.QuantifyLeakage(context.Background(), sim, cuts, fault.LeakageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Detectable < coarse.Detectable {
		t.Fatalf("sensitive meter detects less: fine %+v, coarse %+v", fine, coarse)
	}
}

// TestQuantifyLeakageWorkerInvariance: the report is identical for any
// worker count (the acceptance bar for threshold decisions).
func TestQuantifyLeakageWorkerInvariance(t *testing.T) {
	sim, cuts := leakageFixture(t, chip.MRNA())
	var ref *fault.LeakageReport
	for _, workers := range []int{1, 3, 8} {
		rep, err := fault.QuantifyLeakage(context.Background(), sim, cuts, fault.LeakageOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep.Solves = pressure.EngineStats{} // solve counters vary with chunking
		if ref == nil {
			ref = rep
			continue
		}
		if rep.Examined != ref.Examined || rep.Detectable != ref.Detectable ||
			!reflect.DeepEqual(rep.Undetectable, ref.Undetectable) {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, rep, ref)
		}
	}
}

func TestQuantifyLeakageCancel(t *testing.T) {
	sim, cuts := leakageFixture(t, chip.IVD())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fault.QuantifyLeakage(ctx, sim, cuts, fault.LeakageOptions{}); err == nil {
		t.Fatal("cancelled campaign must fail")
	}
}
