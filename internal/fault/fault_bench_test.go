package fault

import (
	"testing"

	"repro/internal/chip"
)

// benchVectors builds an all-open path vector plus one single-valve cut
// per port-adjacent valve — a representative small campaign.
func benchVectors(c *chip.Chip) []Vector {
	var all []int
	for v := 0; v < c.NumValves(); v++ {
		all = append(all, v)
	}
	vectors := []Vector{{Kind: PathVector, Valves: all, Sources: []int{0}, Meters: []int{1}}}
	for _, p := range c.Ports {
		for _, e := range c.Grid.IncidentEdges(p.Node) {
			if v, ok := c.ValveOnEdge(e); ok {
				vectors = append(vectors, Vector{Kind: CutVector, Valves: []int{v}, Sources: []int{0}, Meters: []int{1}})
			}
		}
	}
	return vectors
}

func BenchmarkFaultCampaignIVD(b *testing.B) {
	c := chip.IVD()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := benchVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkFaultCampaignMRNA(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := benchVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkSingleDetect(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	v := benchVectors(c)[0]
	f := Fault{Kind: StuckAt0, Valve: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detects(v, f)
	}
}
