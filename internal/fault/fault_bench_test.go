package fault

import (
	"testing"

	"repro/internal/chip"
)

// benchVectors builds an all-open path vector plus one single-valve cut
// per port-adjacent valve — a representative small campaign.
func benchVectors(c *chip.Chip) []Vector {
	var all []int
	for v := 0; v < c.NumValves(); v++ {
		all = append(all, v)
	}
	vectors := []Vector{{Kind: PathVector, Valves: all, Sources: []int{0}, Meters: []int{1}}}
	for _, p := range c.Ports {
		for _, e := range c.Grid.IncidentEdges(p.Node) {
			if v, ok := c.ValveOnEdge(e); ok {
				vectors = append(vectors, Vector{Kind: CutVector, Valves: []int{v}, Sources: []int{0}, Meters: []int{1}})
			}
		}
	}
	return vectors
}

func BenchmarkFaultCampaignIVD(b *testing.B) {
	c := chip.IVD()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := benchVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkFaultCampaignMRNA(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := benchVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkSingleDetect(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	v := benchVectors(c)[0]
	f := Fault{Kind: StuckAt0, Valve: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detects(v, f)
	}
}

// --- seed-equivalent recomputation baseline ---------------------------------
//
// The seed's Detects re-derived the fault-free valve states and meter
// readings for every (vector, fault) pair. These helpers preserve that
// behaviour so benchmarks can compare it against the memoized engine and
// tests can pin result equivalence.

func (s *Simulator) detectsNoMemo(v Vector, f Fault) bool {
	base := s.OpenStates(v)
	good := s.meterReadings(v, base)
	bad := s.meterReadings(v, withFault(base, f))
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}

func (s *Simulator) faultFreeOKNoMemo(v Vector) bool {
	return usableReadings(v.Kind, s.meterReadings(v, s.OpenStates(v)))
}

func (s *Simulator) evaluateCoverageNoMemo(vectors []Vector, faults []Fault) Coverage {
	cov := Coverage{Total: len(faults)}
	usable := make([]Vector, 0, len(vectors))
	for _, v := range vectors {
		if s.faultFreeOKNoMemo(v) {
			usable = append(usable, v)
		}
	}
	for _, f := range faults {
		detected := false
		for _, v := range usable {
			if s.detectsNoMemo(v, f) {
				detected = true
				break
			}
		}
		if detected {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f)
		}
	}
	return cov
}

// BenchmarkEvaluateCoverage compares one cold campaign on the largest
// bundled design (mRNA) across the three paths: the seed's serial
// recomputation, the memoized single-worker engine, and the full parallel
// worker pool. A fresh simulator per iteration keeps every campaign cold.
func BenchmarkEvaluateCoverage(b *testing.B) {
	c := chip.MRNA()
	vectors := benchVectors(c)
	faults := AllFaults(c)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			sim.evaluateCoverageNoMemo(vectors, faults)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			NewEngine(sim, 1).EvaluateCoverage(vectors, faults)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			NewEngine(sim, 0).EvaluateCoverage(vectors, faults)
		}
	})
}
