package fault

import (
	"testing"

	"repro/internal/chip"
)

func BenchmarkFaultCampaignIVD(b *testing.B) {
	c := chip.IVD()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := BenchCampaignVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkFaultCampaignMRNA(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	vectors := BenchCampaignVectors(c)
	faults := AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.EvaluateCoverage(vectors, faults)
	}
}

func BenchmarkSingleDetect(b *testing.B) {
	c := chip.MRNA()
	sim := MustSimulator(c, chip.IndependentControl(c))
	v := BenchCampaignVectors(c)[0]
	f := Fault{Kind: StuckAt0, Valve: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detects(v, f)
	}
}

// BenchmarkEvaluateCoverage compares one cold campaign on the largest
// bundled design (mRNA) across the three paths: the seed's serial
// recomputation (EvaluateCoverageBaseline), the memoized single-worker
// engine, and the full parallel worker pool. A fresh simulator per
// iteration keeps every campaign cold.
func BenchmarkEvaluateCoverage(b *testing.B) {
	c := chip.MRNA()
	vectors := BenchCampaignVectors(c)
	faults := AllFaults(c)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			EvaluateCoverageBaseline(sim, vectors, faults)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			NewEngine(sim, 1).EvaluateCoverage(vectors, faults)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := MustSimulator(c, chip.IndependentControl(c))
			NewEngine(sim, 0).EvaluateCoverage(vectors, faults)
		}
	})
}
