package fault

import (
	"context"
	"testing"

	"repro/internal/chip"
)

// matrixFixture builds a campaign (chip, vectors, faults) for matrix tests.
func matrixFixture(t *testing.T) (*Simulator, []Vector, []Fault) {
	t.Helper()
	c := chip.IVD()
	vectors := BenchCampaignVectors(c)
	if len(vectors) == 0 {
		t.Fatal("no campaign vectors for IVD")
	}
	sim, err := NewSimulator(c, chip.IndependentControl(c))
	if err != nil {
		t.Fatal(err)
	}
	return sim, vectors, AllFaults(c)
}

// TestDetectionMatrixMatchesDetects checks every matrix cell against the
// scalar Detects oracle and the usable flags against FaultFreeOK.
func TestDetectionMatrixMatchesDetects(t *testing.T) {
	sim, vectors, faults := matrixFixture(t)
	m, err := NewEngine(sim, 0).DetectionMatrix(context.Background(), vectors, faults)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVectors() != len(vectors) || m.NumFaults() != len(faults) {
		t.Fatalf("matrix %dx%d, want %dx%d", m.NumVectors(), m.NumFaults(), len(vectors), len(faults))
	}
	for v := range vectors {
		if m.Usable(v) != sim.FaultFreeOK(vectors[v]) {
			t.Fatalf("vector %d: usable=%v, FaultFreeOK=%v", v, m.Usable(v), sim.FaultFreeOK(vectors[v]))
		}
		for f := range faults {
			want := m.Usable(v) && sim.Detects(vectors[v], faults[f])
			if got := m.Detects(v, f); got != want {
				t.Fatalf("cell (%d,%d): got %v want %v", v, f, got, want)
			}
		}
	}
}

// TestDetectionMatrixWorkerCountInvariant proves the matrix is
// bit-identical for 1/2/4/8 workers.
func TestDetectionMatrixWorkerCountInvariant(t *testing.T) {
	sim, vectors, faults := matrixFixture(t)
	ref, err := NewEngine(sim, 1).DetectionMatrix(context.Background(), vectors, faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		m, err := NewEngine(sim, workers).DetectionMatrix(context.Background(), vectors, faults)
		if err != nil {
			t.Fatal(err)
		}
		for v := range vectors {
			if m.Usable(v) != ref.Usable(v) {
				t.Fatalf("workers=%d: usable[%d] differs", workers, v)
			}
			rw, rr := m.Row(v), ref.Row(v)
			for w := range rw {
				if rw[w] != rr[w] {
					t.Fatalf("workers=%d: row %d word %d differs", workers, v, w)
				}
			}
		}
	}
}

// TestDetectionMatrixUnusableVectorRowIsZero: a vector that misbehaves on
// the good chip must detect nothing.
func TestDetectionMatrixUnusableVectorRowIsZero(t *testing.T) {
	c := chip.IVD()
	sim, err := NewSimulator(c, chip.IndependentControl(c))
	if err != nil {
		t.Fatal(err)
	}
	// A path vector with no opened valves delivers no pressure: unusable.
	src, mtr := c.MaxDistantPortPair()
	bad := Vector{Kind: PathVector, Sources: []int{src}, Meters: []int{mtr}}
	if sim.FaultFreeOK(bad) {
		t.Skip("degenerate vector unexpectedly usable on this chip")
	}
	m, err := NewEngine(sim, 0).DetectionMatrix(context.Background(), []Vector{bad}, AllFaults(c))
	if err != nil {
		t.Fatal(err)
	}
	if m.Usable(0) {
		t.Fatal("unusable vector reported usable")
	}
	if n := m.RowPopCount(0); n != 0 {
		t.Fatalf("unusable vector detects %d faults, want 0", n)
	}
	if m.NumUsable() != 0 {
		t.Fatalf("NumUsable=%d, want 0", m.NumUsable())
	}
}

// TestDetectionMatrixCancelled: an expired context fails the build.
func TestDetectionMatrixCancelled(t *testing.T) {
	sim, vectors, faults := matrixFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewEngine(sim, 4).DetectionMatrix(ctx, vectors, faults); err == nil {
		t.Fatal("expected context error")
	}
}
