package fault

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/chip"
)

// campaignVectors builds a representative campaign for equivalence tests:
// shortest-channel-path vectors between every connected port pair, one
// single-valve cut per port-incident valve, an all-open multi-meter
// vector, and one deliberately unusable vector (exercises the FaultFreeOK
// filter).
func campaignVectors(c *chip.Chip) []Vector {
	g := c.Grid.Graph()
	channel := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	var out []Vector
	for i := 0; i < len(c.Ports); i++ {
		for j := i + 1; j < len(c.Ports); j++ {
			_, edges, ok := g.ShortestPath(c.Ports[i].Node, c.Ports[j].Node, channel)
			if !ok {
				continue
			}
			var valves []int
			for _, e := range edges {
				v, _ := c.ValveOnEdge(e)
				valves = append(valves, v)
			}
			out = append(out, Vector{Kind: PathVector, Valves: valves, Sources: []int{i}, Meters: []int{j}})
		}
	}
	for _, p := range c.Ports {
		for _, e := range c.Grid.IncidentEdges(p.Node) {
			if v, ok := c.ValveOnEdge(e); ok {
				out = append(out, Vector{Kind: CutVector, Valves: []int{v}, Sources: []int{0}, Meters: []int{1}})
			}
		}
	}
	var all []int
	for v := 0; v < c.NumValves(); v++ {
		all = append(all, v)
	}
	meters := []int{1}
	if len(c.Ports) > 2 {
		meters = append(meters, 2)
	}
	out = append(out, Vector{Kind: PathVector, Valves: all, Sources: []int{0}, Meters: meters})
	out = append(out, Vector{Kind: PathVector, Valves: nil, Sources: []int{0}, Meters: []int{1}}) // unusable
	return out
}

// TestEngineMatchesSerialOnBenchmarks checks that the parallel engine is
// bit-identical to the serial path on every bundled benchmark chip.
func TestEngineMatchesSerialOnBenchmarks(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		vectors := campaignVectors(c)
		faults := AllFaultsOfKinds(c, StuckAt0, StuckAt1, Leakage)
		want := MustSimulator(c, chip.IndependentControl(c)).EvaluateCoverage(vectors, faults)
		for _, workers := range []int{1, 2, 3, 8} {
			sim := MustSimulator(c, chip.IndependentControl(c)) // fresh cache
			got := NewEngine(sim, workers).EvaluateCoverage(vectors, faults)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s workers=%d: coverage %+v, want %+v", c.Name, workers, got, want)
			}
		}
	}
}

// TestEngineParallelSerialEquivalenceRandom is the property test of the
// determinism guarantee: over random chips, EvaluateCoverage with 1 worker
// and N workers return identical Coverage including Undetected order.
func TestEngineParallelSerialEquivalenceRandom(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	for seed := int64(0); seed < 12; seed++ {
		c := chip.Random(rand.New(rand.NewSource(seed)))
		vectors := campaignVectors(c)
		faults := AllFaultsOfKinds(c, StuckAt0, StuckAt1, Leakage)
		one := NewEngine(MustSimulator(c, chip.IndependentControl(c)), 1).EvaluateCoverage(vectors, faults)
		for _, workers := range []int{2, n, n + 3} {
			sim := MustSimulator(c, chip.IndependentControl(c))
			got := NewEngine(sim, workers).EvaluateCoverage(vectors, faults)
			if !reflect.DeepEqual(one, got) {
				t.Fatalf("seed %d workers=%d: coverage diverges\n got %+v\nwant %+v", seed, workers, got, one)
			}
			// Re-running on the warmed cache must not change the result.
			again := NewEngine(sim, workers).EvaluateCoverage(vectors, faults)
			if !reflect.DeepEqual(one, again) {
				t.Fatalf("seed %d workers=%d: warmed-cache rerun diverges", seed, workers)
			}
		}
	}
}

// TestEngineUnderSharingMatchesSerial covers the sharing-expansion path:
// a DFT valve sharing an original valve's line can mask faults, and the
// parallel engine must agree with the serial simulator about it.
func TestEngineUnderSharingMatchesSerial(t *testing.T) {
	c := chip.IVD().Clone()
	free := -1
	for e := 0; e < c.Grid.NumEdges(); e++ {
		if _, occupied := c.ValveOnEdge(e); !occupied {
			free = e
			break
		}
	}
	if free < 0 {
		t.Fatal("IVD has no free edge")
	}
	if _, err := c.AddDFTChannel(free); err != nil {
		t.Fatal(err)
	}
	ctrl, err := chip.SharedControl(c, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	vectors := campaignVectors(c)
	faults := AllFaults(c)
	want := MustSimulator(c, ctrl).EvaluateCoverage(vectors, faults)
	got := NewEngine(MustSimulator(c, ctrl), 4).EvaluateCoverage(vectors, faults)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sharing: parallel %+v, serial %+v", got, want)
	}
}

// TestMemoizedDetectsMatchesRecompute pins the Detects memoization fix:
// cached fault-free readings must give exactly the per-call recomputation
// results, on first sight and on cache hits.
func TestMemoizedDetectsMatchesRecompute(t *testing.T) {
	c := chip.MRNA()
	sim := indepSim(c)
	vectors := campaignVectors(c)
	faults := AllFaultsOfKinds(c, StuckAt0, StuckAt1, Leakage)
	for round := 0; round < 2; round++ { // round 2 hits the cache
		for _, v := range vectors {
			for _, f := range faults {
				if got, want := sim.Detects(v, f), sim.detectsNoMemo(v, f); got != want {
					t.Fatalf("round %d: Detects(%v, %v) = %v, recompute = %v", round, v, f, got, want)
				}
			}
			if got, want := sim.FaultFreeOK(v), sim.faultFreeOKNoMemo(v); got != want {
				t.Fatalf("round %d: FaultFreeOK(%v) = %v, recompute = %v", round, v, got, want)
			}
		}
	}
}

// TestSimulatorConcurrentUse exercises the memo cache and scratch pool
// from many goroutines (meaningful under -race).
func TestSimulatorConcurrentUse(t *testing.T) {
	c := chip.IVD()
	sim := indepSim(c)
	vectors := campaignVectors(c)
	faults := AllFaults(c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range vectors {
				for _, f := range faults {
					sim.Detects(v, f)
				}
			}
		}()
	}
	wg.Wait()
}

func TestEngineCancelledContext(t *testing.T) {
	c := chip.IVD()
	sim := indepSim(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := NewEngine(sim, workers).EvaluateCoverageCtx(ctx, campaignVectors(c), AllFaults(c))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestEngineCancelMidCampaign cancels concurrently with a running pool;
// the campaign must either finish with the exact serial result or report
// the context error — never a torn result.
func TestEngineCancelMidCampaign(t *testing.T) {
	c := chip.MRNA()
	vectors := campaignVectors(c)
	faults := AllFaultsOfKinds(c, StuckAt0, StuckAt1, Leakage)
	want := MustSimulator(c, chip.IndependentControl(c)).EvaluateCoverage(vectors, faults)
	for round := 0; round < 20; round++ {
		sim := MustSimulator(c, chip.IndependentControl(c))
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		got, err := NewEngine(sim, 4).EvaluateCoverageCtx(ctx, vectors, faults)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: err = %v", round, err)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: completed campaign diverges: %+v want %+v", round, got, want)
		}
	}
}

func TestEngineDefaults(t *testing.T) {
	sim := indepSim(chip.IVD())
	if got := NewEngine(sim, 0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewEngine(sim, 3).Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	if NewEngine(sim, 1).Simulator() != sim {
		t.Fatal("Simulator accessor")
	}
	// Empty campaign over no faults is full coverage, like the serial path.
	cov := NewEngine(sim, 2).EvaluateCoverage(nil, nil)
	if !cov.Full() || cov.Total != 0 {
		t.Fatalf("empty campaign: %+v", cov)
	}
}
