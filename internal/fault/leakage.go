package fault

// leakage.go quantifies the membrane-leakage defects the paper mentions
// but does not evaluate ("can be tested similarly"). The boolean
// simulator treats a leaky closed valve like stuck-at-1 — pressure either
// crosses or it doesn't — which overstates a real meter: a leak conducts
// only a little, so the arriving flow may sit below the meter's
// threshold. This file reruns the cut vectors through the quantitative
// model of package pressure and reports which valves' leaks actually
// register.
//
// The workload is exactly what the sparse pressure engine is built for:
// per cut vector, the fault-free conductance state followed by one
// single-valve perturbation per closed valve — consecutive solves differ
// in at most two entries, so almost every solve takes the engine's warm
// Sherman–Morrison–Woodbury path.

import (
	"context"
	"fmt"

	"repro/internal/pressure"
)

// LeakageOptions tunes a leakage quantification campaign.
type LeakageOptions struct {
	// Params sets the physical model (open/leak conductance, meter
	// threshold); the zero value uses the pressure package defaults.
	Params pressure.Params
	// Workers sizes the per-rig batch worker pool (0 = all CPU cores).
	Workers int
}

// LeakageReport summarizes which closed-valve leaks the cut vectors
// expose under the quantitative pressure model.
type LeakageReport struct {
	// Examined counts the valves driven closed by at least one usable
	// single-source single-meter cut vector — the leaks the test set gets
	// a chance to see.
	Examined int
	// Detectable counts examined valves whose leak pushes some cut
	// vector's meter flow above the threshold.
	Detectable int
	// Undetectable lists the examined valves whose leak never registers
	// (ascending valve IDs). These leaks pass the test plan unnoticed at
	// the configured meter sensitivity.
	Undetectable []int
	// Vectors counts the cut vectors evaluated.
	Vectors int
	// Solves aggregates the pressure-engine counters of the campaign
	// (total/cold/warm solves, update ranks, fallbacks).
	Solves pressure.EngineStats
}

// Ratio returns Detectable/Examined in [0,1] (1 when nothing was
// examined).
func (r *LeakageReport) Ratio() float64 {
	if r.Examined == 0 {
		return 1
	}
	return float64(r.Detectable) / float64(r.Examined)
}

func (r *LeakageReport) String() string {
	return fmt.Sprintf("leakage %d/%d detectable (%.1f%%)", r.Detectable, r.Examined, 100*r.Ratio())
}

// QuantifyLeakage runs the quantitative leakage campaign: for every
// usable single-source single-meter cut vector, it solves the fault-free
// pressure system plus one leaky variant per closed valve, batched
// through a cached-factorization pressure engine per rig. A leak is
// detectable when its flow exceeds the meter threshold while the
// fault-free flow does not. Sharing-forced valve states are honoured via
// the simulator's control expansion.
func QuantifyLeakage(ctx context.Context, sim *Simulator, cuts []Vector, opts LeakageOptions) (*LeakageReport, error) {
	p := opts.Params.WithDefaults()
	c := sim.Chip()
	nv := c.NumValves()
	examined := make([]bool, nv)
	detected := make([]bool, nv)

	type rigKey struct{ src, mtr int }
	engines := map[rigKey]*pressure.Engine{}
	rep := &LeakageReport{}

	batch := make([][]float64, 0, nv+1)
	valves := make([]int, 0, nv)
	for _, v := range cuts {
		if v.Kind != CutVector || len(v.Sources) != 1 || len(v.Meters) != 1 {
			continue // leakage crosses closed valves; need a single rig
		}
		if !sim.FaultFreeOK(v) {
			continue
		}
		key := rigKey{src: c.Ports[v.Sources[0]].Node, mtr: c.Ports[v.Meters[0]].Node}
		eng, ok := engines[key]
		if !ok {
			var err error
			eng, err = pressure.NewEngine(c, key.src, key.mtr, pressure.EngineOptions{Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
			engines[key] = eng
		}
		open := sim.OpenStates(v)
		base := pressure.Conductances(c, open, p, nil)
		batch, valves = batch[:0], valves[:0]
		batch = append(batch, base)
		for valve, isOpen := range open {
			if isOpen {
				continue
			}
			leaky := append([]float64(nil), base...)
			leaky[valve] = p.LeakConductance
			batch = append(batch, leaky)
			valves = append(valves, valve)
		}
		flows, err := eng.EvaluateAll(ctx, batch)
		if err != nil {
			return nil, err
		}
		rep.Vectors++
		if flows[0] > p.MeterThreshold {
			// The quantitative model disagrees with the boolean usability
			// check (cannot happen: both are exact on the same graph) —
			// detections against a non-silent baseline would be meaningless.
			return nil, fmt.Errorf("fault: cut vector %v reads %g on a fault-free chip", v, flows[0])
		}
		for i, valve := range valves {
			examined[valve] = true
			if flows[i+1] > p.MeterThreshold {
				detected[valve] = true
			}
		}
	}

	for valve := 0; valve < nv; valve++ {
		if !examined[valve] {
			continue
		}
		rep.Examined++
		if detected[valve] {
			rep.Detectable++
		} else {
			rep.Undetectable = append(rep.Undetectable, valve)
		}
	}
	for _, eng := range engines {
		rep.Solves = rep.Solves.Add(eng.Stats())
	}
	return rep, nil
}
