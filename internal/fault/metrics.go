package fault

import "sync/atomic"

// Metrics aggregates fault-simulation counters across every Simulator and
// Engine it is attached to. One Metrics instance is typically shared by
// all simulators of a flow run, so the flow can report its memo-cache hit
// rate per stage. All counters are atomic; a nil *Metrics is a valid
// no-op receiver for the increment methods used on hot paths.
type Metrics struct {
	memoHits     atomic.Int64
	memoMisses   atomic.Int64
	campaigns    atomic.Int64
	faultScans   atomic.Int64
	screenSkips  atomic.Int64
	reachChecks  atomic.Int64
	bridgeChecks atomic.Int64
}

// NewMetrics returns a zeroed Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) noteMemo(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.memoHits.Add(1)
	} else {
		m.memoMisses.Add(1)
	}
}

func (m *Metrics) noteCampaign(faults int) {
	if m == nil {
		return
	}
	m.campaigns.Add(1)
	m.faultScans.Add(int64(faults))
}

// noteScreen counts a (vector, fault) verdict settled by the saturation
// screen; noteReachRule one settled by the single-edge reach rule. Both
// replace a full faulty-chip simulation (see fastpath.go).
func (m *Metrics) noteScreen() {
	if m == nil {
		return
	}
	m.screenSkips.Add(1)
}

func (m *Metrics) noteReachRule() {
	if m == nil {
		return
	}
	m.reachChecks.Add(1)
}

func (m *Metrics) noteBridgeRule() {
	if m == nil {
		return
	}
	m.bridgeChecks.Add(1)
}

// MetricsSnapshot is a point-in-time copy of the counters; subtract two
// snapshots to attribute traffic to a phase.
type MetricsSnapshot struct {
	// MemoHits and MemoMisses count vector-memo cache lookups across all
	// attached simulators.
	MemoHits, MemoMisses int64
	// Campaigns counts EvaluateCoverage campaigns; FaultScans the faults
	// those campaigns examined.
	Campaigns, FaultScans int64
	// ScreenSkips counts (vector, fault) verdicts settled by the saturation
	// screen; ReachChecks those settled by the single-edge reach rule;
	// BridgeChecks those settled by the bridge rule. All three replace a
	// full faulty-chip BFS.
	ScreenSkips, ReachChecks, BridgeChecks int64
}

// Snapshot returns the current counter values. Snapshot on a nil Metrics
// returns zeros.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		MemoHits:     m.memoHits.Load(),
		MemoMisses:   m.memoMisses.Load(),
		Campaigns:    m.campaigns.Load(),
		FaultScans:   m.faultScans.Load(),
		ScreenSkips:  m.screenSkips.Load(),
		ReachChecks:  m.reachChecks.Load(),
		BridgeChecks: m.bridgeChecks.Load(),
	}
}

// Sub returns the counter deltas since base.
func (s MetricsSnapshot) Sub(base MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		MemoHits:     s.MemoHits - base.MemoHits,
		MemoMisses:   s.MemoMisses - base.MemoMisses,
		Campaigns:    s.Campaigns - base.Campaigns,
		FaultScans:   s.FaultScans - base.FaultScans,
		ScreenSkips:  s.ScreenSkips - base.ScreenSkips,
		ReachChecks:  s.ReachChecks - base.ReachChecks,
		BridgeChecks: s.BridgeChecks - base.BridgeChecks,
	}
}

// SetMetrics attaches a shared metrics aggregator to the simulator; every
// subsequent memo-cache lookup is counted on it. Attach before the
// simulator is used concurrently (the pointer itself is unsynchronized).
func (s *Simulator) SetMetrics(m *Metrics) { s.metrics = m }
