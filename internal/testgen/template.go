// Template test generation for regular valve arrays.
//
// On an FPVA almost every valve sees the same local world as thousands of
// others, and the engine exploits that symmetry through two families of
// translation-equivalence classes:
//
//   - Line classes. A valve whose full grid row (horizontal valves) or
//     column (vertical valves) is uniformly valved, with boundary ports
//     closing both ends of the line, is tested by straight-line vectors:
//     the path vector opens the whole line plus the two port stubs, and
//     the cut vector closes every channel crossing the valve's lattice
//     gap. Both are closed-form — no routing or max-flow solve — and every
//     valve on the same line shares the same absolute vectors, so the
//     simulator's vector memo collapses their certification cost. The
//     class key is the line orientation plus the stub offsets, so a whole
//     FPVA typically folds into a few dozen classes.
//
//   - Tile classes. For valves that are locally regular but not on a
//     uniform line, classSignature captures the exact neighbourhood: the
//     channel occupancy window, the clamped distance to the boundary, and
//     the candidate test ports at their relative offsets. Valves with
//     equal signatures form a class whose path/cut pair is solved once
//     (on the first-seen valve), stored in anchor-relative form, and
//     instantiated for every other member by translating the template.
//
// Classes of both families live in a content-keyed once-map shared across
// Generate calls. Every instantiation is structurally validated (edges in
// bounds and valved, ports present) and certified by the same
// reach/pressure check the full solve uses; a failed validation falls back
// to the full per-valve solve, so class reuse is purely a performance
// property — never a correctness one.
package testgen

import (
	"context"
	"encoding/json"
	"sort"
	"strconv"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/grid"
)

const (
	// sigBoundaryClamp caps the per-side boundary distances recorded in a
	// class signature: tiles deeper than this see the boundary identically.
	sigBoundaryClamp = 4
	// sigWindow is the radius of the local occupancy window.
	sigWindow = 2
)

// portSideAlong encodes a candidate test port relative to a valve anchor.
// Boundary ports are encoded by their side ('W','E','N','S', first match
// in that fixed order) plus the along-boundary offset from the anchor —
// NOT by their absolute anchor-relative coordinates — so two valves at
// the same boundary proximity share a signature even when the grid
// dimensions behind them differ (the irregular-chip class collapse).
// Interior ports fall back to 'I' with both offsets.
func portSideAlong(gr *grid.Grid, c, anchor grid.Coord) (side byte, along, along2 int) {
	switch {
	case c.X == 0:
		return 'W', c.Y - anchor.Y, 0
	case c.X == gr.W-1:
		return 'E', c.Y - anchor.Y, 0
	case c.Y == 0:
		return 'N', c.X - anchor.X, 0
	case c.Y == gr.H-1:
		return 'S', c.X - anchor.X, 0
	default:
		return 'I', c.X - anchor.X, c.Y - anchor.Y
	}
}

// resolvePort maps a (side, along) encoding back to an absolute
// coordinate on the resolving chip's own grid.
func resolvePort(gr *grid.Grid, anchor grid.Coord, side byte, along, along2 int) grid.Coord {
	switch side {
	case 'W':
		return grid.Coord{X: 0, Y: anchor.Y + along}
	case 'E':
		return grid.Coord{X: gr.W - 1, Y: anchor.Y + along}
	case 'N':
		return grid.Coord{X: anchor.X + along, Y: 0}
	case 'S':
		return grid.Coord{X: anchor.X + along, Y: gr.H - 1}
	default:
		return grid.Coord{X: anchor.X + along, Y: anchor.Y + along2}
	}
}

// classSignature returns the tile-class key of a valve and its anchor (the
// top-left endpoint of its edge). Valves with equal signatures have
// translation-identical local neighbourhoods and candidate test ports at
// equal relative positions. legacyPorts selects the pre-collapse
// anchor-relative port encoding (kept for ClassCounts A/B accounting).
func (p *suitePre) classSignature(valve int, legacyPorts bool) (string, grid.Coord) {
	gr := p.c.Grid
	anchor, other := gr.EdgeEndpoints(p.c.Valve(valve).Edge)
	buf := make([]byte, 0, 96)
	if anchor.X == other.X {
		buf = append(buf, 'V')
	} else {
		buf = append(buf, 'H')
	}
	clamp := func(d int) byte {
		if d > sigBoundaryClamp {
			d = sigBoundaryClamp
		}
		return byte('0' + d)
	}
	buf = append(buf, clamp(anchor.X), clamp(anchor.Y), clamp(gr.W-1-anchor.X), clamp(gr.H-1-anchor.Y))
	for dy := -sigWindow; dy <= sigWindow; dy++ {
		for dx := -sigWindow; dx <= sigWindow; dx++ {
			co := grid.Coord{X: anchor.X + dx, Y: anchor.Y + dy}
			if !gr.InBounds(co) {
				buf = append(buf, '#')
				continue
			}
			n := gr.NodeAt(co)
			bits := byte(0)
			if p.portAt[n] >= 0 {
				bits |= 1
			}
			if right := (grid.Coord{X: co.X + 1, Y: co.Y}); gr.InBounds(right) {
				if e, ok := gr.EdgeBetweenCoords(co, right); ok && p.channelOnly(e) {
					bits |= 2
				}
			}
			if down := (grid.Coord{X: co.X, Y: co.Y + 1}); gr.InBounds(down) {
				if e, ok := gr.EdgeBetweenCoords(co, down); ok && p.channelOnly(e) {
					bits |= 4
				}
			}
			buf = append(buf, 'a'+bits)
		}
	}
	// The candidate test ports: class members must agree on where their
	// solve would look, or the template ports would not translate.
	// Boundary ports use the side+along encoding (see portSideAlong);
	// legacyPorts keeps the anchor-relative coordinates instead.
	u, w := p.g.Endpoints(p.c.Valve(valve).Edge)
	for _, pr := range p.candidatePairs(u, w) {
		sc := gr.CoordOf(p.c.Ports[pr[0]].Node)
		dc := gr.CoordOf(p.c.Ports[pr[1]].Node)
		if legacyPorts {
			for _, d := range []int{sc.X - anchor.X, sc.Y - anchor.Y, dc.X - anchor.X, dc.Y - anchor.Y} {
				buf = append(buf, ';')
				buf = strconv.AppendInt(buf, int64(d), 10)
			}
			continue
		}
		for _, co := range []grid.Coord{sc, dc} {
			side, a1, a2 := portSideAlong(gr, co, anchor)
			buf = append(buf, ';', side, ';')
			buf = strconv.AppendInt(buf, int64(a1), 10)
			if side == 'I' {
				buf = append(buf, ';')
				buf = strconv.AppendInt(buf, int64(a2), 10)
			}
		}
	}
	return string(buf), anchor
}

// ClassCounts classifies every valve of the chip under both candidate-port
// encodings and returns the distinct class counts: the port-relative
// (side+along) encoding in use, and the legacy anchor-relative encoding.
// On irregular chips the port-relative count is at most the legacy count —
// the class-collapse the FPVA benchmarks record.
func ClassCounts(c *chip.Chip) (portRel, legacy int) {
	pre := newSuitePre(c)
	count := func(legacyPorts bool) int {
		seen := make(map[string]struct{})
		for v := 0; v < c.NumValves(); v++ {
			if lsig, ok := pre.lineSignature(v); ok {
				seen[lsig] = struct{}{}
				continue
			}
			sig, _ := pre.classSignature(v, legacyPorts)
			seen[sig] = struct{}{}
		}
		return len(seen)
	}
	return count(false), count(true)
}

// lineInfo describes the straight test line through a valve: the fully
// valved grid row (horizontal valves) or column (vertical valves) the
// valve lies on, the boundary ports closing both ends, and the two
// closed-form vectors built from them.
type lineInfo struct {
	horiz            bool
	srcPort, dstPort int
	srcOff, dstOff   int   // port offset along the boundary from the line end
	pathValves       []int // stubs + full line, sorted
	cutValves        []int // every channel crossing the valve's lattice gap, sorted
}

// straightPort finds the boundary port closing a line end: among the ports
// on the given boundary column (horiz) or row (!horiz), the one nearest to
// the line's coordinate whose stub — the straight boundary run from the
// port to the line end — is fully valved. Ties go to the lower coordinate.
// Returns the port, its offset from the line end, the stub valves, and
// whether one exists.
func (p *suitePre) straightPort(horiz bool, fixed, along int) (port, off int, stub []int, ok bool) {
	gr := p.c.Grid
	type cand struct{ port, coord int }
	var cands []cand
	for _, pt := range p.c.Ports {
		co := gr.CoordOf(pt.Node)
		if horiz && co.X == fixed {
			cands = append(cands, cand{pt.ID, co.Y})
		} else if !horiz && co.Y == fixed {
			cands = append(cands, cand{pt.ID, co.X})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		di, dj := abs(cands[i].coord-along), abs(cands[j].coord-along)
		if di != dj {
			return di < dj
		}
		return cands[i].coord < cands[j].coord
	})
	for _, cd := range cands {
		lo, hi := along, cd.coord
		if lo > hi {
			lo, hi = hi, lo
		}
		valves := make([]int, 0, hi-lo)
		good := true
		for a := lo; a < hi; a++ {
			c0 := grid.Coord{X: fixed, Y: a}
			c1 := grid.Coord{X: fixed, Y: a + 1}
			if !horiz {
				c0 = grid.Coord{X: a, Y: fixed}
				c1 = grid.Coord{X: a + 1, Y: fixed}
			}
			v, okV := p.valveBetween(c0, c1)
			if !okV {
				good = false
				break
			}
			valves = append(valves, v)
		}
		if good {
			return cd.port, cd.coord - along, valves, true
		}
	}
	return 0, 0, nil, false
}

// valveBetween returns the valve on the channel between two adjacent
// coordinates, if that channel exists.
func (p *suitePre) valveBetween(c0, c1 grid.Coord) (int, bool) {
	e, ok := p.c.Grid.EdgeBetweenCoords(c0, c1)
	if !ok {
		return 0, false
	}
	return p.c.ValveOnEdge(e)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// lineOf builds the straight-line test structure through a valve, or
// reports false when the valve's grid line is not uniformly valved or
// lacks straight boundary ports on both ends.
func (p *suitePre) lineOf(valve int) (lineInfo, bool) {
	gr := p.c.Grid
	a, b := gr.EdgeEndpoints(p.c.Valve(valve).Edge)
	li := lineInfo{horiz: a.Y == b.Y}
	if li.horiz {
		// The full row must be valved channels.
		lineValves := make([]int, 0, gr.W-1)
		for x := 0; x+1 < gr.W; x++ {
			v, ok := p.valveBetween(grid.Coord{X: x, Y: a.Y}, grid.Coord{X: x + 1, Y: a.Y})
			if !ok {
				return lineInfo{}, false
			}
			lineValves = append(lineValves, v)
		}
		srcPort, srcOff, srcStub, ok := p.straightPort(true, 0, a.Y)
		if !ok {
			return lineInfo{}, false
		}
		dstPort, dstOff, dstStub, ok := p.straightPort(true, gr.W-1, a.Y)
		if !ok || srcPort == dstPort {
			return lineInfo{}, false
		}
		li.srcPort, li.dstPort, li.srcOff, li.dstOff = srcPort, dstPort, srcOff, dstOff
		li.pathValves = append(append(lineValves, srcStub...), dstStub...)
		// Cut: every channel crossing the vertical gap the valve spans.
		for y := 0; y < gr.H; y++ {
			if v, ok := p.valveBetween(grid.Coord{X: a.X, Y: y}, grid.Coord{X: a.X + 1, Y: y}); ok {
				li.cutValves = append(li.cutValves, v)
			}
		}
	} else {
		lineValves := make([]int, 0, gr.H-1)
		for y := 0; y+1 < gr.H; y++ {
			v, ok := p.valveBetween(grid.Coord{X: a.X, Y: y}, grid.Coord{X: a.X, Y: y + 1})
			if !ok {
				return lineInfo{}, false
			}
			lineValves = append(lineValves, v)
		}
		srcPort, srcOff, srcStub, ok := p.straightPort(false, 0, a.X)
		if !ok {
			return lineInfo{}, false
		}
		dstPort, dstOff, dstStub, ok := p.straightPort(false, gr.H-1, a.X)
		if !ok || srcPort == dstPort {
			return lineInfo{}, false
		}
		li.srcPort, li.dstPort, li.srcOff, li.dstOff = srcPort, dstPort, srcOff, dstOff
		li.pathValves = append(append(lineValves, srcStub...), dstStub...)
		for x := 0; x < gr.W; x++ {
			if v, ok := p.valveBetween(grid.Coord{X: x, Y: a.Y}, grid.Coord{X: x, Y: a.Y + 1}); ok {
				li.cutValves = append(li.cutValves, v)
			}
		}
	}
	sort.Ints(li.pathValves)
	sort.Ints(li.cutValves)
	return li, true
}

// lineSignature returns the line-class key of a valve: the orientation and
// the stub offsets of its straight boundary ports. Every valve whose line
// shares these is tested by a translate of the same straight recipe; the
// key is chip-independent, so an engine sweeping growing FPVA sizes reuses
// the classes.
func (p *suitePre) lineSignature(valve int) (string, bool) {
	li, ok := p.lineOf(valve)
	if !ok {
		return "", false
	}
	buf := make([]byte, 0, 16)
	buf = append(buf, 'L', ';')
	if li.horiz {
		buf = append(buf, 'H')
	} else {
		buf = append(buf, 'V')
	}
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(li.srcOff), 10)
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(li.dstOff), 10)
	return string(buf), true
}

// instantiateLine materializes one closed-form line vector for a valve and
// certifies it. Every valve on the same line produces the same absolute
// vector, so the simulator's memo makes certification O(1) amortized.
func (p *suitePre) instantiateLine(valve int, kind fault.VectorKind) (fault.Vector, bool) {
	li, ok := p.lineOf(valve)
	if !ok {
		return fault.Vector{}, false
	}
	valves := li.pathValves
	if kind == fault.CutVector {
		valves = li.cutValves
	}
	vec := fault.Vector{Kind: kind, Valves: valves, Sources: []int{li.srcPort}, Meters: []int{li.dstPort}}
	if !p.certify(vec, kind, valve) {
		return fault.Vector{}, false
	}
	return vec, true
}

// tmplEdge is one channel edge in anchor-relative form: the edge from
// anchor+(DX,DY) to its right (horizontal) or down (vertical) neighbour.
type tmplEdge struct {
	DX, DY int
	Vert   bool
}

// tmplVec is one vector in anchor-relative form. Ports use the same
// side+along encoding as the class signature (portSideAlong), so an
// instantiation resolves boundary ports against its own chip's grid
// dimensions; interior ports ('I') keep both anchor-relative offsets in
// SrcAlong/SrcAlong2.
type tmplVec struct {
	Edges               []tmplEdge
	SrcSide, DstSide    byte
	SrcAlong, SrcAlong2 int
	DstAlong, DstAlong2 int
}

// template is one solved symmetry class. Line templates carry no stored
// vectors — the straight recipe is re-derived per chip and valve, which is
// what makes them safe to share across chips of different sizes. For tile
// templates, HasPath/HasCut mirror the solve outcome of the class
// representative; a missing side sends every class member to the full
// per-valve solve, exactly like the baseline.
type template struct {
	Line            bool
	HasPath, HasCut bool
	Path, Cut       tmplVec
}

// relativize converts a solved vector into anchor-relative form.
func (p *suitePre) relativize(vec fault.Vector, anchor grid.Coord) tmplVec {
	gr := p.c.Grid
	var tv tmplVec
	tv.SrcSide, tv.SrcAlong, tv.SrcAlong2 = portSideAlong(gr, gr.CoordOf(p.c.Ports[vec.Sources[0]].Node), anchor)
	tv.DstSide, tv.DstAlong, tv.DstAlong2 = portSideAlong(gr, gr.CoordOf(p.c.Ports[vec.Meters[0]].Node), anchor)
	tv.Edges = make([]tmplEdge, 0, len(vec.Valves))
	for _, v := range vec.Valves {
		a, b := gr.EdgeEndpoints(p.c.Valve(v).Edge)
		tv.Edges = append(tv.Edges, tmplEdge{DX: a.X - anchor.X, DY: a.Y - anchor.Y, Vert: a.X == b.X})
	}
	return tv
}

// instantiate translates a template to the given anchor and certifies the
// result: every edge must be in bounds and valved, both ports must exist,
// and the vector must pass the fault-free check and detect the target
// fault of the valve it is stamped for. Reports false on any failure.
func (p *suitePre) instantiate(tv tmplVec, anchor grid.Coord, kind fault.VectorKind, valve int) (fault.Vector, bool) {
	gr := p.c.Grid
	valves := make([]int, 0, len(tv.Edges))
	for _, te := range tv.Edges {
		c0 := grid.Coord{X: anchor.X + te.DX, Y: anchor.Y + te.DY}
		c1 := grid.Coord{X: c0.X + 1, Y: c0.Y}
		if te.Vert {
			c1 = grid.Coord{X: c0.X, Y: c0.Y + 1}
		}
		if !gr.InBounds(c0) || !gr.InBounds(c1) {
			return fault.Vector{}, false
		}
		e, ok := gr.EdgeBetweenCoords(c0, c1)
		if !ok {
			return fault.Vector{}, false
		}
		v, ok := p.c.ValveOnEdge(e)
		if !ok {
			return fault.Vector{}, false
		}
		valves = append(valves, v)
	}
	srcC := resolvePort(gr, anchor, tv.SrcSide, tv.SrcAlong, tv.SrcAlong2)
	dstC := resolvePort(gr, anchor, tv.DstSide, tv.DstAlong, tv.DstAlong2)
	if !gr.InBounds(srcC) || !gr.InBounds(dstC) {
		return fault.Vector{}, false
	}
	src, dst := p.portAt[gr.NodeAt(srcC)], p.portAt[gr.NodeAt(dstC)]
	if src < 0 || dst < 0 || src == dst {
		return fault.Vector{}, false
	}
	// Valve IDs are edge-ID ordered, but translation does not preserve
	// that order across the row-major edge numbering; re-sort.
	sort.Ints(valves)
	vec := fault.Vector{Kind: kind, Valves: valves, Sources: []int{src}, Meters: []int{dst}}
	if !p.certify(vec, kind, valve) {
		return fault.Vector{}, false
	}
	return vec, true
}

// solveTemplate runs the full solve on a class representative and stores
// the result in relative form.
func (p *suitePre) solveTemplate(rep int, anchor grid.Coord) *template {
	t := &template{}
	if vec, ok := p.solvePathFor(rep); ok {
		t.HasPath, t.Path = true, p.relativize(vec, anchor)
	}
	if vec, ok := p.solveCutFor(rep); ok {
		t.HasCut, t.Cut = true, p.relativize(vec, anchor)
	}
	return t
}

// templateSize estimates a solved template's resident bytes for the
// bounded once-map.
func templateSize(t *template) int64 {
	if t == nil {
		return 16
	}
	return 64 + int64(len(t.Path.Edges)+len(t.Cut.Edges))*24
}

// tmplSchema versions the on-disk template encoding (inside the store's
// own container framing).
const tmplSchema = 1

// tmplDisk is the persisted template with its schema stamp.
type tmplDisk struct {
	Schema int      `json:"schema"`
	T      template `json:"t"`
}

// TemplateEngine generates per-valve suites by tile-class templates. The
// template cache persists across Generate calls, so a sweep over growing
// FPVA sizes re-solves only the classes it has not seen; every reused
// template is still validated and certified on the new chip before use.
// With SetStore, solved tile classes additionally persist across
// processes in an artifact store. An engine is safe for concurrent use.
// For byte-reproducible output across processes use a fresh engine per
// chip (cache warmth can change which — equally certified — vectors an
// instantiation produces).
type TemplateEngine struct {
	cache *artifact.Cache[*template]
	store atomic.Pointer[artifact.Store]
}

// NewTemplateEngine returns an engine with an empty unbounded template
// cache (class populations are small; bound with NewTemplateEngineBudget
// for open-ended sweeps).
func NewTemplateEngine() *TemplateEngine { return NewTemplateEngineBudget(0) }

// NewTemplateEngineBudget bounds the engine's class cache to roughly
// budget bytes (<= 0 = unbounded). Eviction never changes generated
// suites: templates are pure functions of their signature and evicted
// classes are re-solved on next use.
func NewTemplateEngineBudget(budget int64) *TemplateEngine {
	return &TemplateEngine{cache: artifact.NewCache[*template](budget, templateSize)}
}

// SetStore attaches a disk tier: solved tile classes are persisted and
// future engines (processes) with the same store skip those solves.
func (e *TemplateEngine) SetStore(s *artifact.Store) { e.store.Store(s) }

// CachedTemplates returns the number of solved classes resident in the
// memory cache.
func (e *TemplateEngine) CachedTemplates() int { return e.cache.Len() }

// Trim advances the class cache's recency epoch and evicts to budget.
// Call between Generate calls (serial points), never during one.
func (e *TemplateEngine) Trim() { e.cache.AdvanceEpoch() }

// loadTemplate fetches a persisted class solve; any miss or corruption
// just re-solves.
func (e *TemplateEngine) loadTemplate(sig string) (*template, bool) {
	s := e.store.Load()
	if s == nil {
		return nil, false
	}
	payload, ok := s.Get("tmpl", artifact.SumBytes("tmpl", []byte(sig)))
	if !ok {
		return nil, false
	}
	var d tmplDisk
	if err := json.Unmarshal(payload, &d); err != nil || d.Schema != tmplSchema {
		return nil, false
	}
	t := d.T
	return &t, true
}

// saveTemplate persists a class solve; failures are ignored (the store
// is an accelerator).
func (e *TemplateEngine) saveTemplate(sig string, t *template) {
	s := e.store.Load()
	if s == nil || t == nil {
		return
	}
	if payload, err := json.Marshal(tmplDisk{Schema: tmplSchema, T: *t}); err == nil {
		_ = s.Put("tmpl", artifact.SumBytes("tmpl", []byte(sig)), payload)
	}
}

// Generate builds the suite for c. Results are bit-identical for any
// worker count and reach the same coverage as GenerateBaseline.
func (e *TemplateEngine) Generate(c *chip.Chip, opts SuiteOptions) (*Suite, error) {
	return e.GenerateCtx(context.Background(), c, opts)
}

// GenerateCtx is Generate with cooperative cancellation, checked once per
// class solve and once per valve instantiation.
func (e *TemplateEngine) GenerateCtx(ctx context.Context, c *chip.Chip, opts SuiteOptions) (*Suite, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pre := newSuitePre(c)
	nv := c.NumValves()

	// Classify every valve: line classes when the valve sits on a fully
	// valved grid line with straight boundary ports, tile classes
	// otherwise. Class representatives are first-seen valves, so the
	// solved templates are independent of worker count.
	sigs := make([]string, nv)
	anchors := make([]grid.Coord, nv)
	repOf := make(map[string]int, nv/8)
	var classes []string
	lineClasses := 0
	for v := 0; v < nv; v++ {
		if lsig, ok := pre.lineSignature(v); ok {
			sigs[v] = lsig
		} else {
			sigs[v], anchors[v] = pre.classSignature(v, false)
		}
		if _, ok := repOf[sigs[v]]; !ok {
			repOf[sigs[v]] = v
			classes = append(classes, sigs[v])
			if sigs[v][0] == 'L' {
				lineClasses++
			}
		}
	}

	// Solve one template per class, racing workers deduplicated by the
	// once-map (cache hits are classes solved by an earlier Generate).
	// Line classes need no solve: their recipe is closed-form.
	tmpls := make([]*template, len(classes))
	var hits, diskHits atomic.Int64
	err := forEachIndex(ctx, opts.workers(len(classes)), len(classes), func(i int) {
		rep := repOf[classes[i]]
		t, hit := e.cache.Do(classes[i], func() *template {
			if classes[i][0] == 'L' {
				return &template{Line: true, HasPath: true, HasCut: true}
			}
			if tl, ok := e.loadTemplate(classes[i]); ok {
				diskHits.Add(1)
				return tl
			}
			t := pre.solveTemplate(rep, anchors[rep])
			e.saveTemplate(classes[i], t)
			return t
		})
		if hit {
			hits.Add(1)
		}
		tmpls[i] = t
	})
	if err != nil {
		return nil, err
	}
	tmplOf := make(map[string]*template, len(classes))
	for i, sig := range classes {
		tmplOf[sig] = tmpls[i]
	}

	// Instantiate per valve: translate, validate, certify; fall back to
	// the full solve when any step fails.
	slots := make([]valveVectors, nv)
	var instantiated, fallbacks atomic.Int64
	err = forEachIndex(ctx, opts.workers(nv), nv, func(v int) {
		t := tmplOf[sigs[v]]
		vv := &slots[v]
		if t.HasPath {
			vec, ok := fault.Vector{}, false
			if t.Line {
				vec, ok = pre.instantiateLine(v, fault.PathVector)
			} else {
				vec, ok = pre.instantiate(t.Path, anchors[v], fault.PathVector, v)
			}
			if ok {
				vv.path, vv.hasPath = vec, true
				instantiated.Add(1)
			}
		}
		if !vv.hasPath {
			if vec, ok := pre.solvePathFor(v); ok {
				vv.path, vv.hasPath = vec, true
				fallbacks.Add(1)
			}
		}
		if t.HasCut {
			vec, ok := fault.Vector{}, false
			if t.Line {
				vec, ok = pre.instantiateLine(v, fault.CutVector)
			} else {
				vec, ok = pre.instantiate(t.Cut, anchors[v], fault.CutVector, v)
			}
			if ok {
				vv.cut, vv.hasCut = vec, true
				instantiated.Add(1)
			}
		}
		if !vv.hasCut {
			if vec, ok := pre.solveCutFor(v); ok {
				vv.cut, vv.hasCut = vec, true
				fallbacks.Add(1)
			}
		}
	})
	if err != nil {
		return nil, err
	}

	s := assembleSuite(c, slots)
	s.Stats.Engine = "template"
	s.Stats.Classes = len(classes)
	s.Stats.LineClasses = lineClasses
	s.Stats.TemplateHits = hits.Load()
	s.Stats.TemplateDiskHits = diskHits.Load()
	s.Stats.Instantiated = instantiated.Load()
	s.Stats.Fallbacks = fallbacks.Load()
	s.Stats.PathSolves = pre.pathSolves.Load()
	s.Stats.CutSolves = pre.cutSolves.Load()
	s.Stats.SimEvals = pre.metrics.Snapshot().MemoMisses
	return s, nil
}

// GenerateTemplates is a one-shot convenience over a fresh engine.
func GenerateTemplates(c *chip.Chip, opts SuiteOptions) (*Suite, error) {
	return NewTemplateEngine().Generate(c, opts)
}
