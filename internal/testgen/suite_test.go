package testgen

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

// suiteChips returns the designs the suite property tests sweep: the three
// bundled chips plus generated FPVA grids.
func suiteChips(t *testing.T) []*chip.Chip {
	t.Helper()
	chips := append([]*chip.Chip(nil), chip.Benchmarks()...)
	chips = append(chips, chip.FPVA(6, 6))
	chips = append(chips, chip.MustGenerateFPVA(chip.FPVAParams{W: 8, H: 8, Seed: 1}))
	chips = append(chips, chip.MustGenerateFPVA(chip.FPVAParams{W: 12, H: 10, Seed: 5, Ports: 9}))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2; i++ {
		chips = append(chips, chip.Random(rng))
	}
	return chips
}

// canonical strips the non-invariant stats so suites can be compared
// bit-for-bit.
func canonical(s *Suite) *Suite {
	return &Suite{Paths: s.Paths, Cuts: s.Cuts, PathOf: s.PathOf, CutOf: s.CutOf, Uncovered: s.Uncovered}
}

// TestSuiteEnginesCoverageEqual: the template engine must reach coverage
// equal to GenerateBaseline on every design — the acceptance gate of the
// scaling bench.
func TestSuiteEnginesCoverageEqual(t *testing.T) {
	for _, c := range suiteChips(t) {
		base, err := GenerateBaseline(c, SuiteOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.Name, err)
		}
		tmpl, err := GenerateTemplates(c, SuiteOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: template: %v", c.Name, err)
		}
		covB, covT := base.Coverage(4), tmpl.Coverage(4)
		if !reflect.DeepEqual(covB, covT) {
			t.Fatalf("%s: coverage differs: baseline %+v, template %+v", c.Name, covB, covT)
		}
		if !reflect.DeepEqual(base.Uncovered, tmpl.Uncovered) {
			t.Fatalf("%s: uncovered differs: %v vs %v", c.Name, base.Uncovered, tmpl.Uncovered)
		}
	}
}

// TestFPVASuiteFullCoverage: on dense FPVA grids every valve must get both
// vectors and the suite must detect every stuck-at fault.
func TestFPVASuiteFullCoverage(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 10, H: 10, Seed: 2})
	for _, gen := range []func() (*Suite, error){
		func() (*Suite, error) { return GenerateBaseline(c, SuiteOptions{Workers: 4}) },
		func() (*Suite, error) { return GenerateTemplates(c, SuiteOptions{Workers: 4}) },
	} {
		s, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Uncovered) != 0 {
			t.Fatalf("%s suite left valves uncovered: %v", s.Stats.Engine, s.Uncovered)
		}
		if cov := s.Coverage(4); !cov.Full() {
			t.Fatalf("%s suite coverage %v", s.Stats.Engine, cov)
		}
		for v := 0; v < c.NumValves(); v++ {
			if s.PathOf[v] < 0 || s.PathOf[v] >= len(s.Paths) || s.CutOf[v] < 0 || s.CutOf[v] >= len(s.Cuts) {
				t.Fatalf("%s: valve %d has bad vector indexes %d/%d", s.Stats.Engine, v, s.PathOf[v], s.CutOf[v])
			}
		}
	}
}

// TestSuiteWorkerCountInvariance: both engines must produce bit-identical
// suites for any worker count (fresh engine per run).
func TestSuiteWorkerCountInvariance(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 10, H: 8, Seed: 3})
	var wantB, wantT *Suite
	for _, workers := range []int{1, 2, 4, 8} {
		b, err := GenerateBaseline(c, SuiteOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s, err := GenerateTemplates(c, SuiteOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if wantB == nil {
			wantB, wantT = b, s
			continue
		}
		if !reflect.DeepEqual(canonical(b), canonical(wantB)) {
			t.Fatalf("baseline suite differs at %d workers", workers)
		}
		if !reflect.DeepEqual(canonical(s), canonical(wantT)) {
			t.Fatalf("template suite differs at %d workers", workers)
		}
	}
}

// TestTemplateMemoPurity: re-generating on the same engine must hit the
// cache for every class and return the same suite.
func TestTemplateMemoPurity(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 10, H: 10, Seed: 2})
	e := NewTemplateEngine()
	first, err := e.Generate(c, SuiteOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.TemplateHits != 0 {
		t.Fatalf("fresh engine reported %d cache hits", first.Stats.TemplateHits)
	}
	second, err := e.Generate(c, SuiteOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.TemplateHits != int64(second.Stats.Classes) {
		t.Fatalf("rerun hit %d/%d classes", second.Stats.TemplateHits, second.Stats.Classes)
	}
	if !reflect.DeepEqual(canonical(first), canonical(second)) {
		t.Fatal("memoized rerun changed the suite")
	}
	if e.CachedTemplates() != first.Stats.Classes {
		t.Fatalf("cache holds %d templates for %d classes", e.CachedTemplates(), first.Stats.Classes)
	}
}

// TestTemplateClassCompression: the point of the engine — class count must
// be far below valve count on a regular grid, with most vectors stamped
// from templates rather than solved.
func TestTemplateClassCompression(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 16, H: 16, Seed: 1})
	s, err := GenerateTemplates(c, SuiteOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	nv := c.NumValves()
	if s.Stats.Classes*2 >= nv {
		t.Fatalf("no compression: %d classes for %d valves", s.Stats.Classes, nv)
	}
	if s.Stats.Instantiated < int64(nv) {
		t.Fatalf("only %d of %d vector slots instantiated (fallbacks %d)",
			s.Stats.Instantiated, 2*nv, s.Stats.Fallbacks)
	}
	if s.Stats.PathSolves+s.Stats.CutSolves >= int64(2*nv) {
		t.Fatalf("template engine solved %d times for %d valves",
			s.Stats.PathSolves+s.Stats.CutSolves, nv)
	}
}

// TestSuiteGenerationCancellation: a dead context aborts both engines.
func TestSuiteGenerationCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := chip.FPVA(6, 6)
	if _, err := GenerateBaselineCtx(ctx, c, SuiteOptions{Workers: 1}); err == nil {
		t.Fatal("baseline ignored a cancelled context")
	}
	if _, err := NewTemplateEngine().GenerateCtx(ctx, c, SuiteOptions{Workers: 1}); err == nil {
		t.Fatal("template engine ignored a cancelled context")
	}
}

// TestSuiteVectorsCertified: every suite vector must be usable and detect
// the target fault of every valve mapped to it.
func TestSuiteVectorsCertified(t *testing.T) {
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: 8, H: 8, Seed: 7})
	s, err := GenerateTemplates(c, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := fault.MustSimulator(c, chip.IndependentControl(c))
	for v := 0; v < c.NumValves(); v++ {
		pv, cv := s.Paths[s.PathOf[v]], s.Cuts[s.CutOf[v]]
		if !sim.FaultFreeOK(pv) || !sim.Detects(pv, fault.Fault{Kind: fault.StuckAt0, Valve: v}) {
			t.Fatalf("path vector of valve %d fails certification", v)
		}
		if !sim.FaultFreeOK(cv) || !sim.Detects(cv, fault.Fault{Kind: fault.StuckAt1, Valve: v}) {
			t.Fatalf("cut vector of valve %d fails certification", v)
		}
	}
}
