package testgen

import "repro/internal/fault"

// TestTimeParams models the physical timing of applying one test vector on
// the single-source single-meter platform.
type TestTimeParams struct {
	// ActuationTime is the seconds to drive all control lines to the
	// vector's states and let pressure settle (default 2).
	ActuationTime int
	// MeasureTime is the seconds the pressure meter integrates before the
	// pass/fail decision (default 3).
	MeasureTime int
}

func (p TestTimeParams) withDefaults() TestTimeParams {
	if p.ActuationTime <= 0 {
		p.ActuationTime = 2
	}
	if p.MeasureTime <= 0 {
		p.MeasureTime = 3
	}
	return p
}

// EstimateTestTime returns the total seconds to run a vector set on the
// test platform. The paper argues the larger DFT vector count is
// affordable because test time "is still not a problem in today's
// biochemical laboratories" — this estimator quantifies that claim (tens
// of seconds even for the largest chip).
func EstimateTestTime(vectors []fault.Vector, p TestTimeParams) int {
	p = p.withDefaults()
	return len(vectors) * (p.ActuationTime + p.MeasureTime)
}
