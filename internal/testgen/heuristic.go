package testgen

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chip"
)

// AugmentHeuristic computes a DFT configuration greedily: for every
// original channel edge not yet covered, it routes a simple source→meter
// path through that edge, preferring already-existing channels (near-zero
// cost) over new edges (unit cost plus the PSO bias from
// Options.EdgeWeights). The result is feasible by construction — every
// original and added edge lies on a simple s-t path — but not necessarily
// minimal in added edges. The two-level PSO uses this engine to evaluate
// many configurations quickly; AugmentILP provides the exact optimum.
func AugmentHeuristic(c *chip.Chip, opts Options) (*Augmentation, error) {
	return AugmentHeuristicCtx(context.Background(), c, opts)
}

// AugmentHeuristicCtx is AugmentHeuristic with cooperative cancellation,
// checked once per covered target edge. A cancelled run fails with the
// context's error; an uncoverable edge fails with an error wrapping
// ErrInfeasible.
func AugmentHeuristicCtx(ctx context.Context, c *chip.Chip, opts Options) (*Augmentation, error) {
	return augmentGreedy(ctx, c, opts, false)
}

// AugmentRepair is the last-resort degradation tier: the same greedy
// engine in best-effort mode. Targets that cannot be routed — or that
// remain when the context expires — are skipped and recorded in
// Augmentation.Uncovered instead of failing the whole configuration, so
// the tier always returns a usable (possibly partial) DFT configuration.
// It fails only when even a partial configuration cannot be built.
func AugmentRepair(ctx context.Context, c *chip.Chip, opts Options) (*Augmentation, error) {
	return augmentGreedy(ctx, c, opts, true)
}

// augmentGreedy is the shared greedy engine. With bestEffort=false every
// original edge must be covered and cancellation aborts the run; with
// bestEffort=true unroutable or out-of-budget targets are collected in
// Augmentation.Uncovered and the partial configuration is returned.
func augmentGreedy(ctx context.Context, c *chip.Chip, opts Options, bestEffort bool) (*Augmentation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	srcPort, dstPort, srcNode, dstNode := testPorts(c)
	g := c.Grid.Graph()
	nEdges := g.NumEdges()

	isOriginal := make([]bool, nEdges)
	for _, e := range c.OriginalEdges() {
		isOriginal[e] = true
	}
	chosen := make([]bool, nEdges) // free edges committed to the DFT config
	covered := make([]bool, nEdges)

	// Edge traversal costs: original channels are nearly free (they exist),
	// already-chosen DFT edges are cheap, fresh free edges cost 1 plus the
	// PSO bias.
	cost := func(e int) float64 {
		switch {
		case isOriginal[e]:
			return 0.01
		case chosen[e]:
			return 0.05
		default:
			w := 1.0
			if opts.EdgeWeights != nil && e < len(opts.EdgeWeights) && opts.EdgeWeights[e] > 0 {
				w += opts.EdgeWeights[e]
			}
			return w
		}
	}

	// Deterministic order: cover original edges farthest from the source
	// first; their paths tend to sweep up closer edges for free.
	targets := append([]int(nil), c.OriginalEdges()...)
	distFromSrc := g.BFSFrom(srcNode, nil)
	sort.SliceStable(targets, func(i, j int) bool {
		ui, vi := g.Endpoints(targets[i])
		uj, vj := g.Endpoints(targets[j])
		di := min(distFromSrc[ui], distFromSrc[vi])
		dj := min(distFromSrc[uj], distFromSrc[vj])
		if di != dj {
			return di > dj
		}
		return targets[i] < targets[j]
	})

	var paths [][]int
	var uncovered []int
	expired := false
	for _, target := range targets {
		if covered[target] {
			continue
		}
		if !expired && ctx.Err() != nil {
			if !bestEffort {
				return nil, fmt.Errorf("testgen: heuristic cancelled with %d targets left: %w", remainingTargets(targets, covered, target), ctx.Err())
			}
			expired = true
		}
		if expired {
			uncovered = append(uncovered, target)
			continue
		}
		path, err := routeThrough(c, srcNode, dstNode, target, cost)
		if err != nil {
			if bestEffort {
				uncovered = append(uncovered, target)
				continue
			}
			return nil, fmt.Errorf("testgen: heuristic cannot cover edge %d: %w (%w)", target, err, ErrInfeasible)
		}
		for _, e := range path {
			covered[e] = true
			if !isOriginal[e] {
				chosen[e] = true
			}
		}
		paths = append(paths, path)
	}

	var added []int
	for e := 0; e < nEdges; e++ {
		if chosen[e] {
			added = append(added, e)
		}
	}
	aug, err := applyAugmentation(c, added)
	if err != nil {
		return nil, err
	}
	method := "heuristic"
	if bestEffort {
		method = "repair"
	}
	return &Augmentation{
		Chip:       aug,
		AddedEdges: added,
		Paths:      paths,
		Source:     srcPort,
		Meter:      dstPort,
		Method:     method,
		Uncovered:  uncovered,
	}, nil
}

// remainingTargets counts not-yet-covered targets from `from` onward
// (inclusive), for cancellation diagnostics.
func remainingTargets(targets []int, covered []bool, from int) int {
	n := 0
	seen := false
	for _, t := range targets {
		if t == from {
			seen = true
		}
		if seen && !covered[t] {
			n++
		}
	}
	return n
}

// routeThrough finds a simple s-t path through the edge `through`,
// minimizing the summed edge cost. It tries both orientations: a shortest
// s→a leg, then a b→t leg that avoids every node of the first leg (keeping
// the whole path simple).
func routeThrough(c *chip.Chip, s, t, through int, cost func(int) float64) ([]int, error) {
	g := c.Grid.Graph()
	u, v := g.Endpoints(through)
	type candidate struct {
		edges []int
		cost  float64
	}
	var best *candidate
	for _, orient := range [2][2]int{{u, v}, {v, u}} {
		a, b := orient[0], orient[1]
		// Leg 1: s -> a, avoiding `through` and node t (t must stay free
		// for the second leg's endpoint) and node b (the path must cross
		// `through` exactly once).
		w1 := func(e int) float64 {
			if e == through {
				return -1
			}
			x, y := g.Endpoints(e)
			if a != t && (x == t || y == t) {
				return -1
			}
			if x == b || y == b {
				return -1
			}
			return cost(e)
		}
		nodes1, edges1, cost1, ok := g.WeightedShortestPath(s, a, w1)
		if !ok {
			continue
		}
		onLeg1 := make(map[int]bool, len(nodes1))
		for _, n := range nodes1 {
			onLeg1[n] = true
		}
		// Leg 2: b -> t avoiding all leg-1 nodes and `through`.
		w2 := func(e int) float64 {
			if e == through {
				return -1
			}
			x, y := g.Endpoints(e)
			if (onLeg1[x] && x != b) || (onLeg1[y] && y != b) {
				return -1
			}
			_ = x
			return cost(e)
		}
		_, edges2, cost2, ok := g.WeightedShortestPath(b, t, w2)
		if !ok {
			continue
		}
		total := cost1 + cost(through) + cost2
		if best == nil || total < best.cost {
			all := append(append(append([]int(nil), edges1...), through), edges2...)
			best = &candidate{edges: all, cost: total}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no simple path from %d to %d through edge %d", s, t, through)
	}
	return best.edges, nil
}
