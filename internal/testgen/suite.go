// Per-valve test suites: for every valve, one path vector certifying its
// stuck-at-0 fault and one cut vector certifying its stuck-at-1 fault,
// deduplicated in valve order. GenerateBaseline solves each valve from
// scratch (the reference engine); the TemplateEngine in template.go solves
// one representative per translation-equivalence class and instantiates
// the rest by index translation, falling back to the full solve when the
// structural validation fails. Both engines produce equal coverage; the
// property tests in suite_test.go pin it.
package testgen

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/graphalg"
)

// SuiteOptions configure suite generation.
type SuiteOptions struct {
	// Workers sizes the per-valve worker pool; <= 0 selects GOMAXPROCS.
	// Results are bit-identical for any worker count.
	Workers int
}

func (o SuiteOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Suite is a per-valve test suite over one chip.
type Suite struct {
	Chip *chip.Chip
	// Paths and Cuts are the deduplicated vectors, in first-use valve
	// order. PathOf/CutOf map a valve to its vector's index, -1 when no
	// certified vector exists for that valve (possible on irregular chips
	// where a valve lies on no simple port-port channel path).
	Paths  []fault.Vector
	Cuts   []fault.Vector
	PathOf []int
	CutOf  []int
	// Uncovered lists valves missing a path or cut vector, ascending.
	Uncovered []int
	// Stats describe how the suite was produced. Stats are informational
	// and may depend on cache warmth; the vectors above never do.
	Stats SuiteStats
}

// SuiteStats summarize the generation work. All fields except SimEvals are
// worker-count invariant.
type SuiteStats struct {
	Engine     string // "baseline" or "template"
	Valves     int
	RawVectors int // certified per-valve vectors before dedup

	// PathSolves/CutSolves count full combinatorial solve attempts
	// (route-through / leak-preserving-cut calls).
	PathSolves int64
	CutSolves  int64

	// Template-engine only: distinct symmetry classes (LineClasses of them
	// closed-form line classes, the rest combinatorially solved tile
	// classes), template-cache hits (classes reused from an earlier run of
	// the same engine), vectors instantiated from a class, and
	// instantiations that failed validation and fell back to a full solve.
	Classes      int
	LineClasses  int
	TemplateHits int64
	// TemplateDiskHits counts classes loaded from a persistent artifact
	// store (SetStore) instead of solved.
	TemplateDiskHits int64
	Instantiated     int64
	Fallbacks        int64

	// SimEvals counts distinct fault-free vector evaluations (the
	// pressure solves of certification). Not worker-count invariant:
	// racing workers may both miss the simulator's memo cache.
	SimEvals int64
}

// Vectors returns the deduplicated suite vectors, paths before cuts — the
// campaign order shared by both engines.
func (s *Suite) Vectors() []fault.Vector {
	out := make([]fault.Vector, 0, len(s.Paths)+len(s.Cuts))
	out = append(out, s.Paths...)
	return append(out, s.Cuts...)
}

// Coverage runs the suite against every stuck-at fault of its chip under
// independent control.
func (s *Suite) Coverage(workers int) fault.Coverage {
	sim := fault.MustSimulator(s.Chip, chip.IndependentControl(s.Chip))
	return fault.NewEngine(sim, workers).EvaluateCoverage(s.Vectors(), fault.AllFaults(s.Chip))
}

// valveVectors is one valve's solved (or instantiated) vectors.
type valveVectors struct {
	path, cut       fault.Vector
	hasPath, hasCut bool
}

// suitePre holds the chip-wide precomputed state both suite engines share:
// per-port BFS distance tables over the channel network, the node→port
// index, and a certification simulator under independent control.
type suitePre struct {
	c       *chip.Chip
	g       *graphalg.Graph
	sim     *fault.Simulator
	metrics *fault.Metrics

	channelOnly func(int) bool
	cost        func(int) float64
	portDist    [][]int
	portAt      []int

	pathSolves, cutSolves atomic.Int64
}

func newSuitePre(c *chip.Chip) *suitePre {
	p := &suitePre{c: c, g: c.Grid.Graph(), metrics: fault.NewMetrics()}
	p.sim = fault.MustSimulator(c, chip.IndependentControl(c))
	p.sim.SetMetrics(p.metrics)
	p.channelOnly = func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	// Suite vectors use only existing channels: free lattice edges are
	// forbidden (negative weight), channel edges cost one hop.
	p.cost = func(e int) float64 {
		if p.channelOnly(e) {
			return 1
		}
		return -1
	}
	p.portDist = make([][]int, len(c.Ports))
	for i, port := range c.Ports {
		p.portDist[i] = p.g.BFSFrom(port.Node, p.channelOnly)
	}
	p.portAt = make([]int, p.g.NumNodes())
	for i := range p.portAt {
		p.portAt[i] = -1
	}
	for _, port := range c.Ports {
		p.portAt[port.Node] = port.ID
	}
	return p
}

// nearestPorts returns up to k ports reachable from node, nearest first,
// ties towards lower port IDs. Deterministic O(k·ports) selection.
func (p *suitePre) nearestPorts(node, k int) []int {
	var out []int
	for len(out) < k {
		best, bestD := -1, -1
		for id := range p.portDist {
			d := p.portDist[id][node]
			if d < 0 || containsInt(out, id) {
				continue
			}
			if best < 0 || d < bestD {
				best, bestD = id, d
			}
		}
		if best < 0 {
			break
		}
		out = append(out, best)
	}
	return out
}

// candidatePairs returns the deterministic (source, meter) port pairs a
// valve solve tries, ordered by proximity to the valve's endpoints: the
// nearest ports to each endpoint in both orientations. Every valve whose
// tile class matches shares the same pairs relative to its anchor, which
// is what lets one solved template serve the whole class.
func (p *suitePre) candidatePairs(u, w int) [][2]int {
	var out [][2]int
	add := func(s, d int) {
		if s < 0 || d < 0 || s == d {
			return
		}
		for _, pr := range out {
			if pr[0] == s && pr[1] == d {
				return
			}
		}
		out = append(out, [2]int{s, d})
	}
	topU := p.nearestPorts(u, 3)
	topW := p.nearestPorts(w, 3)
	for _, s := range topU {
		for _, d := range topW {
			add(s, d)
		}
	}
	for _, s := range topW {
		for _, d := range topU {
			add(s, d)
		}
	}
	return out
}

// allPairsRanked returns every ordered reachable port pair, ranked by the
// best-orientation distance to the valve endpoints (then by IDs) — the
// exhaustive fallback when no proximity candidate solves.
func (p *suitePre) allPairsRanked(u, w int) [][2]int {
	type ranked struct{ d, s, m int }
	var all []ranked
	for s := range p.portDist {
		for m := range p.portDist {
			if s == m {
				continue
			}
			du, dw := p.portDist[s][u], p.portDist[m][w]
			dw2, du2 := p.portDist[s][w], p.portDist[m][u]
			best := -1
			if du >= 0 && dw >= 0 {
				best = du + dw
			}
			if du2 >= 0 && dw2 >= 0 && (best < 0 || dw2+du2 < best) {
				best = dw2 + du2
			}
			if best < 0 {
				continue
			}
			all = append(all, ranked{best, s, m})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		if all[i].s != all[j].s {
			return all[i].s < all[j].s
		}
		return all[i].m < all[j].m
	})
	out := make([][2]int, len(all))
	for i, r := range all {
		out[i] = [2]int{r.s, r.m}
	}
	return out
}

// certify reports whether a candidate vector behaves fault-free as
// specified and detects the target stuck-at fault of the valve it is
// stamped for — the shared acceptance check of every engine and class
// family.
func (p *suitePre) certify(vec fault.Vector, kind fault.VectorKind, valve int) bool {
	target := fault.Fault{Kind: fault.StuckAt0, Valve: valve}
	if kind == fault.CutVector {
		target = fault.Fault{Kind: fault.StuckAt1, Valve: valve}
	}
	return p.sim.FaultFreeOK(vec) && p.sim.Detects(vec, target)
}

// solvePathAt routes a simple src→dst channel path through the valve's
// edge and certifies that the resulting vector detects the valve's
// stuck-at-0 fault.
func (p *suitePre) solvePathAt(valve, src, dst int) (fault.Vector, bool) {
	p.pathSolves.Add(1)
	edge := p.c.Valve(valve).Edge
	edges, err := routeThrough(p.c, p.c.Ports[src].Node, p.c.Ports[dst].Node, edge, p.cost)
	if err != nil {
		return fault.Vector{}, false
	}
	valves := make([]int, 0, len(edges))
	for _, e := range edges {
		v, ok := p.c.ValveOnEdge(e)
		if !ok {
			return fault.Vector{}, false
		}
		valves = append(valves, v)
	}
	sort.Ints(valves)
	vec := fault.Vector{Kind: fault.PathVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}
	if !p.certify(vec, fault.PathVector, valve) {
		return fault.Vector{}, false
	}
	return vec, true
}

// solveCutAt finds a leak-preserving separating valve set through the
// valve's edge and certifies detection of its stuck-at-1 fault.
func (p *suitePre) solveCutAt(valve, src, dst int) (fault.Vector, bool) {
	p.cutSolves.Add(1)
	edge := p.c.Valve(valve).Edge
	cutEdges, err := cutThroughWithLeak(p.g, p.c.Ports[src].Node, p.c.Ports[dst].Node, edge, p.channelOnly)
	if err != nil {
		return fault.Vector{}, false
	}
	valves := make([]int, 0, len(cutEdges))
	for _, e := range cutEdges {
		v, ok := p.c.ValveOnEdge(e)
		if !ok {
			return fault.Vector{}, false
		}
		valves = append(valves, v)
	}
	sort.Ints(valves)
	vec := fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}
	if !p.certify(vec, fault.CutVector, valve) {
		return fault.Vector{}, false
	}
	return vec, true
}

// solvePathFor tries the proximity candidates, then the exhaustive pair
// ranking.
func (p *suitePre) solvePathFor(valve int) (fault.Vector, bool) {
	u, w := p.g.Endpoints(p.c.Valve(valve).Edge)
	for _, pr := range p.candidatePairs(u, w) {
		if vec, ok := p.solvePathAt(valve, pr[0], pr[1]); ok {
			return vec, true
		}
	}
	for _, pr := range p.allPairsRanked(u, w) {
		if vec, ok := p.solvePathAt(valve, pr[0], pr[1]); ok {
			return vec, true
		}
	}
	return fault.Vector{}, false
}

func (p *suitePre) solveCutFor(valve int) (fault.Vector, bool) {
	u, w := p.g.Endpoints(p.c.Valve(valve).Edge)
	for _, pr := range p.candidatePairs(u, w) {
		if vec, ok := p.solveCutAt(valve, pr[0], pr[1]); ok {
			return vec, true
		}
	}
	for _, pr := range p.allPairsRanked(u, w) {
		if vec, ok := p.solveCutAt(valve, pr[0], pr[1]); ok {
			return vec, true
		}
	}
	return fault.Vector{}, false
}

// solveValve runs the full per-valve solve: one certified path and one
// certified cut vector (either may be absent on irregular chips).
func (p *suitePre) solveValve(valve int) valveVectors {
	var vv valveVectors
	vv.path, vv.hasPath = p.solvePathFor(valve)
	vv.cut, vv.hasCut = p.solveCutFor(valve)
	return vv
}

// forEachIndex fans fn over [0, n) with an atomic index claim, exactly the
// fault engine's pool shape: results keyed by index are bit-identical for
// any worker count.
func forEachIndex(ctx context.Context, workers, n int, fn func(int)) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var stopped atomic.Bool
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// suiteKey is the content key a suite dedups vectors by.
func suiteKey(v fault.Vector) string {
	buf := make([]byte, 0, 8+4*(len(v.Valves)+2))
	buf = strconv.AppendInt(buf, int64(v.Kind), 10)
	for _, x := range v.Valves {
		buf = append(buf, 'v')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	for _, x := range v.Sources {
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	for _, x := range v.Meters {
		buf = append(buf, 'm')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return string(buf)
}

// assembleSuite dedups the per-valve vectors in valve order.
func assembleSuite(c *chip.Chip, slots []valveVectors) *Suite {
	s := &Suite{
		Chip:   c,
		PathOf: make([]int, len(slots)),
		CutOf:  make([]int, len(slots)),
	}
	seenP := map[string]int{}
	seenC := map[string]int{}
	for v, vv := range slots {
		s.PathOf[v], s.CutOf[v] = -1, -1
		if vv.hasPath {
			s.Stats.RawVectors++
			key := suiteKey(vv.path)
			idx, ok := seenP[key]
			if !ok {
				idx = len(s.Paths)
				s.Paths = append(s.Paths, vv.path)
				seenP[key] = idx
			}
			s.PathOf[v] = idx
		}
		if vv.hasCut {
			s.Stats.RawVectors++
			key := suiteKey(vv.cut)
			idx, ok := seenC[key]
			if !ok {
				idx = len(s.Cuts)
				s.Cuts = append(s.Cuts, vv.cut)
				seenC[key] = idx
			}
			s.CutOf[v] = idx
		}
		if !vv.hasPath || !vv.hasCut {
			s.Uncovered = append(s.Uncovered, v)
		}
	}
	s.Stats.Valves = len(slots)
	return s
}

// GenerateBaseline builds the suite with one full solve per valve — the
// reference engine the template engine is measured and property-tested
// against.
func GenerateBaseline(c *chip.Chip, opts SuiteOptions) (*Suite, error) {
	return GenerateBaselineCtx(context.Background(), c, opts)
}

// GenerateBaselineCtx is GenerateBaseline with cooperative cancellation,
// checked once per valve.
func GenerateBaselineCtx(ctx context.Context, c *chip.Chip, opts SuiteOptions) (*Suite, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pre := newSuitePre(c)
	slots := make([]valveVectors, c.NumValves())
	err := forEachIndex(ctx, opts.workers(len(slots)), len(slots), func(v int) {
		slots[v] = pre.solveValve(v)
	})
	if err != nil {
		return nil, err
	}
	s := assembleSuite(c, slots)
	s.Stats.Engine = "baseline"
	s.Stats.PathSolves = pre.pathSolves.Load()
	s.Stats.CutSolves = pre.cutSolves.Load()
	s.Stats.SimEvals = pre.metrics.Snapshot().MemoMisses
	return s, nil
}
