// Package testgen implements the paper's test-generation algorithms:
//
//   - DFT augmentation (Section 3): select free connection-grid edges so
//     that every original channel lies on a simple path between a single
//     pressure-source port and a single pressure-meter port, minimizing the
//     number of added channels. Implemented exactly as the paper's ILP
//     (eqs. (1)-(6)) with lazy loop exclusion (technique of ref. [16]), and
//     as a fast greedy heuristic used inside the PSO inner loop.
//   - Test-path vectors for stuck-at-0 defects and test-cut vectors for
//     stuck-at-1 defects (Sections 2-3) on the augmented single-source
//     single-meter chip.
//   - A multi-source multi-meter baseline on the original chip in the style
//     of refs. [15]/[16], used to reproduce Fig. 8.
package testgen

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
)

// Augmentation is a DFT configuration: the augmented chip plus the test
// paths that certify single-source single-meter stuck-at-0 coverage.
type Augmentation struct {
	// Chip is an augmented clone of the input chip; the original is not
	// modified.
	Chip *chip.Chip
	// AddedEdges are the free grid edges turned into DFT channels, sorted.
	AddedEdges []int
	// Paths hold the test paths as ordered grid-edge ID slices from Source
	// to Meter.
	Paths [][]int
	// Source and Meter are port IDs on Chip (the paper's fixed test pair:
	// the two most distant ports).
	Source, Meter int
	// Method records which engine produced the configuration ("ilp",
	// "heuristic" or "repair").
	Method string
	// ILPNodes and LazyCuts are solver statistics (zero for heuristic).
	ILPNodes, LazyCuts int
	// Uncovered lists original edges the best-effort repair engine could
	// not place on any test path (unroutable, or the budget expired).
	// Always nil for the "ilp" and "heuristic" engines, whose results
	// cover every original edge by construction.
	Uncovered []int
}

// NumPaths returns the number of test paths.
func (a *Augmentation) NumPaths() int { return len(a.Paths) }

// PathVectors converts the augmentation's paths into test vectors for
// stuck-at-0 defects.
func (a *Augmentation) PathVectors() []fault.Vector {
	out := make([]fault.Vector, 0, len(a.Paths))
	for _, p := range a.Paths {
		valves := make([]int, 0, len(p))
		for _, e := range p {
			v, ok := a.Chip.ValveOnEdge(e)
			if !ok {
				panic(fmt.Sprintf("testgen: path edge %d has no valve", e))
			}
			valves = append(valves, v)
		}
		out = append(out, fault.Vector{
			Kind:    fault.PathVector,
			Valves:  valves,
			Sources: []int{a.Source},
			Meters:  []int{a.Meter},
		})
	}
	return out
}

// Options tunes augmentation.
type Options struct {
	// MaxPaths caps the path count |P| (the paper starts at 2 and
	// increments); 0 means the default of 8.
	MaxPaths int
	// EdgeWeights biases the objective: weight w>=0 of a free edge is added
	// to its unit cost, steering the optimizer away from (large w) or
	// towards (w=0) specific edges. Indexed by grid edge ID; nil = no bias.
	// This is the hook the outer PSO uses to explore alternative DFT
	// configurations.
	EdgeWeights []float64
	// ILPMaxNodes caps branch-and-bound nodes per |P| iteration (0 =
	// default).
	ILPMaxNodes int
	// OnILPAttempt, when non-nil, is called after every ILP |P|-iteration
	// with the branch-and-bound node and lazy-cut counts of that solve —
	// the observability hook for the exact engine. It never affects the
	// solve.
	OnILPAttempt func(paths, nodes, lazyCuts int)
	// Workers sets the branch-and-bound worker-pool size for the ILP
	// solves (0 = all CPU cores, mirroring core.Options.Workers; 1 =
	// serial). The result is worker-count independent — see package ilp.
	Workers int
	// OnILPStats, when non-nil, is called after every ILP solve with the
	// parallel-search statistics of that solve (resolved worker count,
	// cross-worker steals, idle waits and lazy-cut requeues). It never
	// affects the solve.
	OnILPStats func(workers, steals, idleWaits, requeued int)
}

// DefaultMaxPaths caps the |P| iteration when Options.MaxPaths is 0.
const DefaultMaxPaths = 8

func (o Options) maxPaths() int {
	if o.MaxPaths > 0 {
		return o.MaxPaths
	}
	return DefaultMaxPaths
}

// ilpWorkers resolves Options.Workers the same way fault.NewEngine resolves
// its pool size: 0 means one worker per CPU core.
func (o Options) ilpWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// testPorts returns the paper's test port pair (most distant ports) and
// their grid nodes.
func testPorts(c *chip.Chip) (srcPort, dstPort, srcNode, dstNode int) {
	srcPort, dstPort = c.MaxDistantPortPair()
	return srcPort, dstPort, c.Ports[srcPort].Node, c.Ports[dstPort].Node
}

// applyAugmentation clones the chip and adds DFT channels for the given
// free edges, returning the augmented clone.
func applyAugmentation(c *chip.Chip, added []int) (*chip.Chip, error) {
	out := c.Clone()
	sorted := append([]int(nil), added...)
	sort.Ints(sorted)
	for _, e := range sorted {
		if _, err := out.AddDFTChannel(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Verify fault-simulates the augmentation's path vectors (plus the given
// cut vectors, if any) under the control assignment and reports coverage of
// all stuck-at-0 and stuck-at-1 faults. Pass a nil control for independent
// control. It returns an error when the control assignment belongs to a
// different chip.
func (a *Augmentation) Verify(ctrl *chip.Control, cuts []fault.Vector) (fault.Coverage, error) {
	if ctrl == nil {
		ctrl = chip.IndependentControl(a.Chip)
	}
	sim, err := fault.NewSimulator(a.Chip, ctrl)
	if err != nil {
		return fault.Coverage{}, err
	}
	vectors := append(a.PathVectors(), cuts...)
	return fault.NewEngine(sim, 0).EvaluateCoverage(vectors, fault.AllFaults(a.Chip)), nil
}
