package testgen

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chip"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// AugmentILP computes a DFT configuration with the paper's ILP
// (eqs. (1)-(6)). The number of test paths |P| starts at 2 and is
// incremented whenever the current count admits no feasible cover, exactly
// as described in Section 3. Loops in path solutions are excluded lazily
// with subtour-elimination constraints (technique of ref. [16]).
func AugmentILP(c *chip.Chip, opts Options) (*Augmentation, error) {
	return AugmentILPCtx(context.Background(), c, opts)
}

// AugmentILPCtx is AugmentILP with cooperative cancellation: the context is
// threaded into every branch-and-bound node and LP relaxation, so an
// expired deadline or a Ctrl-C stops the solve within one node. A
// cancelled solve returns the context's error (wrapped); an instance that
// is genuinely uncoverable returns an error wrapping ErrInfeasible.
func AugmentILPCtx(ctx context.Context, c *chip.Chip, opts Options) (*Augmentation, error) {
	srcPort, dstPort, srcNode, dstNode := testPorts(c)
	var lastErr error = ErrInfeasible
	for nPaths := 2; nPaths <= opts.maxPaths(); nPaths++ {
		aug, err := solvePathILP(ctx, c, srcPort, dstPort, srcNode, dstNode, nPaths, opts)
		if err == nil {
			return aug, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The budget is gone; retrying with more paths cannot help.
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("testgen: no DFT configuration with up to %d paths: %w", opts.maxPaths(), lastErr)
}

// ErrInfeasible marks augmentation instances (or |P| values) that admit no
// cover. Callers distinguish "genuinely infeasible" from "budget expired"
// with errors.Is(err, ErrInfeasible).
var ErrInfeasible = errors.New("testgen: infeasible")

// pathILPVars maps the path ILP's decision variables back to the grid:
// eVar[r][j] is edge j on path r, sVar[j] the kept-free-edge selector (or
// -1 for original edges).
type pathILPVars struct {
	eVar [][]int
	sVar []int
}

// buildPathILP constructs the test-path generation ILP (eqs. (1)-(6)) for
// |P| = nPaths between srcNode and dstNode, together with the lazy
// loop-exclusion callback (technique of ref. [16]). The callback adds
// subtour-elimination cuts, i.e. it mutates the problem across solves.
func buildPathILP(c *chip.Chip, srcNode, dstNode, nPaths int, opts Options) (*lp.Problem, *pathILPVars, func(x []float64) []lp.Constraint) {
	g := c.Grid.Graph()
	nEdges := g.NumEdges()
	nNodes := g.NumNodes()

	isOriginal := make([]bool, nEdges)
	for _, e := range c.OriginalEdges() {
		isOriginal[e] = true
	}

	prob := lp.NewProblem(lp.Minimize)

	// Variables: eVar[r][j] edge-on-path-r, nVar[r][i] node-on-path-r
	// (interior nodes only), sVar[j] free-edge-kept.
	const usageCost = 1e-3 // slight preference for short paths
	eVar := make([][]int, nPaths)
	nVar := make([][]int, nPaths)
	for r := 0; r < nPaths; r++ {
		eVar[r] = make([]int, nEdges)
		for j := 0; j < nEdges; j++ {
			eVar[r][j] = prob.AddBinaryVar(usageCost, fmt.Sprintf("e_%d_%d", j, r))
		}
		nVar[r] = make([]int, nNodes)
		for i := 0; i < nNodes; i++ {
			if i == srcNode || i == dstNode {
				nVar[r][i] = -1
				continue
			}
			nVar[r][i] = prob.AddBinaryVar(0, fmt.Sprintf("n_%d_%d", i, r))
		}
	}
	sVar := make([]int, nEdges)
	for j := 0; j < nEdges; j++ {
		if isOriginal[j] {
			sVar[j] = -1
			continue
		}
		cost := 1.0
		if opts.EdgeWeights != nil && j < len(opts.EdgeWeights) && opts.EdgeWeights[j] > 0 {
			cost += opts.EdgeWeights[j]
		}
		sVar[j] = prob.AddBinaryVar(cost, fmt.Sprintf("s_%d", j))
	}

	// (1)-(2): degree constraints per path.
	for r := 0; r < nPaths; r++ {
		for i := 0; i < nNodes; i++ {
			var terms []lp.Term
			for _, e := range g.IncidentEdges(i) {
				terms = append(terms, lp.T(eVar[r][e], 1))
			}
			if len(terms) == 0 {
				continue
			}
			if i == srcNode || i == dstNode {
				prob.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.EQ, RHS: 1}) // (2)
			} else {
				terms = append(terms, lp.T(nVar[r][i], -2))
				prob.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.EQ, RHS: 0}) // (1)
			}
		}
	}
	// (3): every original edge covered by at least one path.
	for j := 0; j < nEdges; j++ {
		if !isOriginal[j] {
			continue
		}
		var terms []lp.Term
		for r := 0; r < nPaths; r++ {
			terms = append(terms, lp.T(eVar[r][j], 1))
		}
		prob.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.GE, RHS: 1})
	}
	// (4): kept-edge linking for free edges.
	for j := 0; j < nEdges; j++ {
		if isOriginal[j] {
			continue
		}
		for r := 0; r < nPaths; r++ {
			prob.AddConstraint(lp.Constraint{
				Terms: []lp.Term{lp.T(sVar[j], 1), lp.T(eVar[r][j], -1)},
				Rel:   lp.GE, RHS: 0,
			})
		}
	}

	// Lazy loop exclusion: reject integer candidates whose per-path edge
	// sets contain disjoint cycles.
	lazy := func(x []float64) []lp.Constraint {
		var cuts []lp.Constraint
		for r := 0; r < nPaths; r++ {
			var sel []int
			for j := 0; j < nEdges; j++ {
				if x[eVar[r][j]] > 0.5 {
					sel = append(sel, j)
				}
			}
			if len(sel) == 0 {
				continue
			}
			_, extras, ok := g.PathDecomposition(srcNode, dstNode, sel)
			if !ok {
				// No s-t component at all: forbid this exact selection on
				// path r (cannot happen with degree constraints, but be
				// safe).
				var terms []lp.Term
				for _, j := range sel {
					terms = append(terms, lp.T(eVar[r][j], 1))
				}
				cuts = append(cuts, lp.Constraint{Terms: terms, Rel: lp.LE, RHS: float64(len(sel) - 1)})
				continue
			}
			for _, cyc := range extras {
				// Subtour elimination on this path: a 2-regular component
				// of k edges may keep at most k-1 of them.
				var terms []lp.Term
				for _, j := range cyc {
					terms = append(terms, lp.T(eVar[r][j], 1))
				}
				cuts = append(cuts, lp.Constraint{Terms: terms, Rel: lp.LE, RHS: float64(len(cyc) - 1)})
			}
		}
		return cuts
	}
	return prob, &pathILPVars{eVar: eVar, sVar: sVar}, lazy
}

// PathILPModel builds the test-path generation ILP of the chip's paper
// test-port pair with |P| = nPaths, returning the model and its lazy
// loop-exclusion callback. It exists for benchmarking the branch-and-bound
// engine on the paper's real models (cmd/bench -ilp); the lazy callback
// adds cuts to the model, so callers must build a fresh model per solve.
func PathILPModel(c *chip.Chip, nPaths int) (*ilp.Model, func(x []float64) []lp.Constraint) {
	_, _, srcNode, dstNode := testPorts(c)
	prob, _, lazy := buildPathILP(c, srcNode, dstNode, nPaths, Options{})
	return ilp.NewModel(prob), lazy
}

func solvePathILP(ctx context.Context, c *chip.Chip, srcPort, dstPort, srcNode, dstNode, nPaths int, opts Options) (*Augmentation, error) {
	g := c.Grid.Graph()
	nEdges := g.NumEdges()
	prob, vars, lazy := buildPathILP(c, srcNode, dstNode, nPaths, opts)
	eVar, sVar := vars.eVar, vars.sVar

	maxNodes := opts.ILPMaxNodes
	if maxNodes <= 0 {
		maxNodes = 4000
	}
	res, err := ilp.NewModel(prob).SolveCtx(ctx, ilp.Options{
		MaxNodes: maxNodes,
		Workers:  opts.ilpWorkers(),
		Lazy:     lazy,
	})
	if err != nil {
		return nil, err
	}
	if opts.OnILPAttempt != nil {
		opts.OnILPAttempt(nPaths, res.Nodes, res.LazyCuts)
	}
	if opts.OnILPStats != nil {
		st := res.Stats
		opts.OnILPStats(st.Workers, st.Steals, st.IdleWaits, st.Requeued)
	}
	switch res.Status {
	case ilp.Infeasible:
		return nil, fmt.Errorf("%w: |P|=%d", ErrInfeasible, nPaths)
	case ilp.Aborted:
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("testgen: ILP cancelled at |P|=%d after %d nodes: %w", nPaths, res.Nodes, ctxErr)
		}
		return nil, fmt.Errorf("testgen: ILP aborted at |P|=%d after %d nodes", nPaths, res.Nodes)
	}

	// Decode: added edges and ordered paths.
	var added []int
	for j := 0; j < nEdges; j++ {
		if sVar[j] >= 0 && res.X[sVar[j]] > 0.5 {
			added = append(added, j)
		}
	}
	aug, err := applyAugmentation(c, added)
	if err != nil {
		return nil, err
	}
	paths := make([][]int, 0, nPaths)
	for r := 0; r < nPaths; r++ {
		var sel []int
		for j := 0; j < nEdges; j++ {
			if res.X[eVar[r][j]] > 0.5 {
				sel = append(sel, j)
			}
		}
		main, extras, ok := g.PathDecomposition(srcNode, dstNode, sel)
		if !ok || len(extras) > 0 {
			return nil, fmt.Errorf("testgen: path %d decoded with loops despite lazy cuts", r)
		}
		paths = append(paths, main)
	}
	return &Augmentation{
		Chip:       aug,
		AddedEdges: added,
		Paths:      paths,
		Source:     srcPort,
		Meter:      dstPort,
		Method:     "ilp",
		ILPNodes:   res.Nodes,
		LazyCuts:   res.LazyCuts,
	}, nil
}
