package testgen

import (
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/graphalg"
)

// RepairVectors makes a test-vector set valid under a valve-sharing
// control assignment — the paper's "test vectors considering valve
// sharing". The base paths and cuts were generated sharing-blind; control
// sharing can mask faults (Fig. 6): closing a cut also force-closes the
// partners of its valves, possibly sealing the leak path that would reveal
// a stuck-at-1 valve, and opening a path also force-opens partners,
// possibly bypassing a stuck-at-0 valve.
//
// For every fault the base set misses under ctrl, a replacement vector is
// generated whose critical structure avoids shared control lines entirely:
//
//   - stuck-at-1 at v: a cut through v whose leak-path witness uses only
//     unshared lines, so no partner closure can seal it;
//   - stuck-at-0 at v: an extra source→meter path through v using only
//     unshared lines (apart from v itself), so no partner opening can
//     bypass it.
//
// It returns the (possibly extended) vector sets and whether full coverage
// of all stuck-at-0/1 faults was achieved.
func RepairVectors(c *chip.Chip, ctrl *chip.Control, src, meter int, basePaths, baseCuts []fault.Vector) (paths, cuts []fault.Vector, ok bool) {
	sim, err := fault.NewSimulator(c, ctrl)
	if err != nil {
		// A mismatched control assignment cannot certify coverage.
		return basePaths, baseCuts, false
	}
	paths = append([]fault.Vector(nil), basePaths...)
	cuts = append([]fault.Vector(nil), baseCuts...)

	eng := fault.NewEngine(sim, 0)
	all := append(append([]fault.Vector{}, paths...), cuts...)
	cov := eng.EvaluateCoverage(all, fault.AllFaults(c))
	if cov.Full() {
		return paths, cuts, true
	}

	// sharedLine[v] is true when valve v's control line actuates more than
	// one valve.
	sharedLine := make([]bool, c.NumValves())
	for v := 0; v < c.NumValves(); v++ {
		sharedLine[v] = len(ctrl.SharedWith(v)) > 0
	}
	g := c.Grid.Graph()
	srcNode, meterNode := c.Ports[src].Node, c.Ports[meter].Node

	allOK := true
	for _, f := range cov.Undetected {
		switch f.Kind {
		case fault.StuckAt1:
			vec, found := repairCut(c, sim, ctrl, g, srcNode, meterNode, src, meter, f.Valve, sharedLine)
			if !found {
				allOK = false
				continue
			}
			cuts = append(cuts, vec)
		case fault.StuckAt0:
			vec, found := repairPath(c, sim, g, srcNode, meterNode, src, meter, f.Valve, sharedLine)
			if !found {
				allOK = false
				continue
			}
			paths = append(paths, vec)
		default:
			allOK = false
		}
	}
	if !allOK {
		return paths, cuts, false
	}
	// Re-verify end to end: the repairs must actually close the gap.
	all = append(append([]fault.Vector{}, paths...), cuts...)
	cov = eng.EvaluateCoverage(all, fault.AllFaults(c))
	return paths, cuts, cov.Full()
}

// repairCut builds a sharing-aware cut for a stuck-at-1 fault at valve v.
// It tries two strategies: (a) a leak-path witness avoiding every
// shared-line edge, so no partner closure can touch it; (b) an
// unrestricted witness whose valves' entire control lines (including
// partners on the same line) are protected from entering the cut, so
// closing the cut cannot force any witness edge shut.
func repairCut(c *chip.Chip, sim *fault.Simulator, ctrl *chip.Control, g *graphalg.Graph, srcNode, meterNode, src, meter, v int, sharedLine []bool) (fault.Vector, bool) {
	edge := c.Valve(v).Edge
	anyChannel := func(e int) bool {
		_, okV := c.ValveOnEdge(e)
		return okV
	}
	channelUnshared := func(e int) bool {
		cv, okV := c.ValveOnEdge(e)
		if !okV {
			return false
		}
		return !sharedLine[cv] || cv == v
	}
	// expandProtect widens a protected edge set to every edge whose valve
	// sits on the same control line as a protected valve.
	expandProtect := func(edges map[int]bool) {
		var lines []int
		for e := range edges {
			if cv, okV := c.ValveOnEdge(e); okV {
				lines = append(lines, ctrl.LineOf(cv))
			}
		}
		for _, cv2 := range c.Valves() {
			for _, l := range lines {
				if ctrl.LineOf(cv2.ID) == l {
					edges[cv2.Edge] = true
				}
			}
		}
	}
	for _, legFilter := range []func(int) bool{channelUnshared, anyChannel} {
		cutEdges, err := cutThroughWithLeakAvoiding(g, srcNode, meterNode, edge, legFilter, anyChannel, expandProtect)
		if err != nil {
			continue
		}
		valves := make([]int, 0, len(cutEdges))
		okAll := true
		for _, e := range cutEdges {
			cv, okV := c.ValveOnEdge(e)
			if !okV {
				okAll = false
				break
			}
			valves = append(valves, cv)
		}
		if !okAll {
			continue
		}
		sort.Ints(valves)
		vec := fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{src}, Meters: []int{meter}}
		if sim.FaultFreeOK(vec) && sim.Detects(vec, fault.Fault{Kind: fault.StuckAt1, Valve: v}) {
			return vec, true
		}
	}
	return fault.Vector{}, false
}

// repairPath builds a sharing-immune path vector for a stuck-at-0 fault at
// valve v: the whole path uses unshared lines (apart from v), so no forced
// partner opening can build a bypass.
func repairPath(c *chip.Chip, sim *fault.Simulator, g *graphalg.Graph, srcNode, meterNode, src, meter, v int, sharedLine []bool) (fault.Vector, bool) {
	edge := c.Valve(v).Edge
	strict := func(e int) float64 {
		cv, okV := c.ValveOnEdge(e)
		if !okV {
			return -1
		}
		if sharedLine[cv] && cv != v {
			return -1
		}
		return 1
	}
	// Permissive fallback: shared edges allowed but expensive; the
	// simulator has the final word on whether a bypass masks the fault.
	permissive := func(e int) float64 {
		cv, okV := c.ValveOnEdge(e)
		if !okV {
			return -1
		}
		if sharedLine[cv] && cv != v {
			return 8
		}
		return 1
	}
	for _, cost := range []func(int) float64{strict, permissive} {
		pathEdges, err := routeThrough(c, srcNode, meterNode, edge, cost)
		if err != nil {
			continue
		}
		valves := make([]int, 0, len(pathEdges))
		for _, e := range pathEdges {
			cv, _ := c.ValveOnEdge(e)
			valves = append(valves, cv)
		}
		vec := fault.Vector{Kind: fault.PathVector, Valves: valves, Sources: []int{src}, Meters: []int{meter}}
		if sim.FaultFreeOK(vec) && sim.Detects(vec, fault.Fault{Kind: fault.StuckAt0, Valve: v}) {
			return vec, true
		}
	}
	return fault.Vector{}, false
}

// cutThroughWithLeakAvoiding is cutThroughWithLeak with a separate filter
// for the leak-path witness legs (legAllow) and the cuttable edge set
// (allow). expandProtect, if non-nil, widens the protected edge set before
// the min-cut (e.g. to whole control lines under sharing).
func cutThroughWithLeakAvoiding(g *graphalg.Graph, s, t, through int, legAllow, allow func(int) bool, expandProtect func(map[int]bool)) ([]int, error) {
	u, v := g.Endpoints(through)
	const big = 1 << 20
	legExcept := func(e int) bool { return e != through && legAllow(e) }
	allowExcept := func(e int) bool { return e != through && allow(e) }
	var lastErr error = errNoLeakCut
	for _, orient := range [2][2]int{{u, v}, {v, u}} {
		a, b := orient[0], orient[1]
		nodes1, leg1, ok1 := g.ShortestPath(s, a, legExcept)
		if !ok1 {
			continue
		}
		onLeg1 := make(map[int]bool, len(nodes1))
		for _, n := range nodes1 {
			onLeg1[n] = true
		}
		disjoint := func(e int) bool {
			if !legExcept(e) {
				return false
			}
			x, y := g.Endpoints(e)
			return !onLeg1[x] && !onLeg1[y]
		}
		_, leg2, ok2 := g.ShortestPath(b, t, disjoint)
		if !ok2 {
			_, leg2, ok2 = g.ShortestPath(b, t, legExcept)
		}
		if !ok2 {
			continue
		}
		protect := make(map[int]bool, len(leg1)+len(leg2))
		for _, e := range leg1 {
			protect[e] = true
		}
		for _, e := range leg2 {
			protect[e] = true
		}
		if expandProtect != nil {
			expandProtect(protect)
			if protect[through] {
				delete(protect, through) // excluded from the network anyway
			}
		}
		f := graphalg.NewFlowNetwork(g.NumNodes())
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeDeleted(e) || !allowExcept(e) {
				continue
			}
			capacity := 1
			if protect[e] {
				capacity = big
			}
			x, y := g.Endpoints(e)
			f.AddArc(x, y, capacity, e)
			f.AddArc(y, x, capacity, e)
		}
		if f.MaxFlow(s, t) >= big {
			continue
		}
		cut := f.MinCutArcs(s)
		cut = append(cut, through)
		sort.Ints(cut)
		return cut, nil
	}
	return nil, lastErr
}
