package testgen

import (
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
)

// BaselineVectors generates a multi-source multi-meter test set for the
// original (unaugmented) chip, in the style of refs. [15]/[16]: every port
// may carry a pressure source or a meter, path vectors may run between any
// port pair, and node-disjoint paths are packed into a single vector (one
// instrument pair each, applied simultaneously). This is the comparison
// point of the paper's Fig. 8 — the baseline needs fewer vectors but a
// full rack of instruments, while the DFT chip needs one source and one
// meter but more vectors.
//
// It returns the path vectors and cut vectors separately; the total vector
// count is len(paths)+len(cuts).
func BaselineVectors(c *chip.Chip) (paths, cuts []fault.Vector, err error) {
	paths, err = baselinePathVectors(c)
	if err != nil {
		return nil, nil, err
	}
	cuts, err = baselineCutVectors(c)
	if err != nil {
		return nil, nil, err
	}
	return paths, cuts, nil
}

// baselinePathVectors greedily covers every valve with port-to-port paths
// (any pair), then packs node-disjoint paths into shared vectors.
func baselinePathVectors(c *chip.Chip) ([]fault.Vector, error) {
	g := c.Grid.Graph()
	channelOnly := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	covered := make([]bool, c.NumValves())

	type rawPath struct {
		edges    []int
		nodes    map[int]bool
		src, dst int // port IDs
	}
	var raw []rawPath

	for valve := 0; valve < c.NumValves(); valve++ {
		if covered[valve] {
			continue
		}
		edge := c.Valve(valve).Edge
		// Best simple port-to-port path through this valve's edge: try all
		// port pairs, keep the shortest.
		var best *rawPath
		for i := 0; i < len(c.Ports); i++ {
			for j := 0; j < len(c.Ports); j++ {
				if i == j {
					continue
				}
				p, perr := routeThrough(c, c.Ports[i].Node, c.Ports[j].Node, edge, func(e int) float64 {
					if !channelOnly(e) {
						return -1
					}
					return 1
				})
				if perr != nil {
					continue
				}
				if best == nil || len(p) < len(best.edges) {
					nodes := pathNodes(g, p)
					best = &rawPath{edges: p, nodes: nodes, src: i, dst: j}
				}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("testgen: baseline cannot cover valve %d with any port pair", valve)
		}
		for _, e := range best.edges {
			if v, ok := c.ValveOnEdge(e); ok {
				covered[v] = true
			}
		}
		raw = append(raw, *best)
	}

	// Pack paths into vectors (first-fit decreasing). Two paths may share a
	// vector when they are node-disjoint, or when they share only their
	// source port: one pressure source feeding a tree whose branches end at
	// distinct meters (the Fig. 4(a) scenario). A stuck-at-0 valve on one
	// branch then silences exactly that branch's meter.
	sort.SliceStable(raw, func(i, j int) bool { return len(raw[i].edges) > len(raw[j].edges) })
	type bundle struct {
		paths  []rawPath
		nodes  map[int]bool
		srcs   map[int]bool // port IDs used as sources
		meters map[int]bool // port IDs used as meters
	}
	var bundles []*bundle
	for _, rp := range raw {
		placed := false
		for _, b := range bundles {
			// Port feasibility: a port is either a source or a meter.
			if b.meters[rp.src] || b.srcs[rp.dst] || b.meters[rp.dst] {
				continue
			}
			newSrc := 0
			if !b.srcs[rp.src] {
				newSrc = 1
			}
			if len(b.srcs)+newSrc+len(b.meters)+1 > len(c.Ports) {
				continue // not enough physical ports for the instruments
			}
			// Node disjointness, except the shared source node.
			srcNode := c.Ports[rp.src].Node
			overlap := false
			for n := range rp.nodes {
				if b.nodes[n] && !(n == srcNode && b.srcs[rp.src]) {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			b.paths = append(b.paths, rp)
			for n := range rp.nodes {
				b.nodes[n] = true
			}
			b.srcs[rp.src] = true
			b.meters[rp.dst] = true
			placed = true
			break
		}
		if !placed {
			b := &bundle{nodes: map[int]bool{}, srcs: map[int]bool{}, meters: map[int]bool{}}
			b.paths = []rawPath{rp}
			for n := range rp.nodes {
				b.nodes[n] = true
			}
			b.srcs[rp.src] = true
			b.meters[rp.dst] = true
			bundles = append(bundles, b)
		}
	}

	out := make([]fault.Vector, 0, len(bundles))
	for _, b := range bundles {
		var valves []int
		for _, rp := range b.paths {
			for _, e := range rp.edges {
				v, _ := c.ValveOnEdge(e)
				valves = append(valves, v)
			}
		}
		srcs := sortedKeys(b.srcs)
		meters := sortedKeys(b.meters)
		sort.Ints(valves)
		out = append(out, fault.Vector{Kind: fault.PathVector, Valves: valves, Sources: srcs, Meters: meters})
	}
	return out, nil
}

// baselineCutVectors generates cuts per valve using the best port pair for
// each valve, then greedily covers all valves.
func baselineCutVectors(c *chip.Chip) ([]fault.Vector, error) {
	sim := fault.MustSimulator(c, chip.IndependentControl(c))
	g := c.Grid.Graph()
	channelOnly := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	type candidate struct {
		vector  fault.Vector
		detects []int
	}
	var cands []candidate
	for valve := 0; valve < c.NumValves(); valve++ {
		edge := c.Valve(valve).Edge
		var best *candidate
		for i := 0; i < len(c.Ports); i++ {
			for j := 0; j < len(c.Ports); j++ {
				if i == j {
					continue
				}
				cutEdges, err := cutThroughWithLeak(g, c.Ports[i].Node, c.Ports[j].Node, edge, channelOnly)
				if err != nil {
					continue
				}
				var valves []int
				for _, e := range cutEdges {
					cv, _ := c.ValveOnEdge(e)
					valves = append(valves, cv)
				}
				sort.Ints(valves)
				vec := fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{i}, Meters: []int{j}}
				if !sim.FaultFreeOK(vec) {
					continue
				}
				var det []int
				for _, cv := range valves {
					if sim.Detects(vec, fault.Fault{Kind: fault.StuckAt1, Valve: cv}) {
						det = append(det, cv)
					}
				}
				if !containsInt(det, valve) {
					continue
				}
				if best == nil || len(det) > len(best.detects) {
					best = &candidate{vector: vec, detects: det}
				}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("testgen: baseline has no detecting cut for valve %d", valve)
		}
		cands = append(cands, *best)
	}
	// Greedy cover.
	covered := make([]bool, c.NumValves())
	var out []fault.Vector
	for {
		bestIdx, bestGain := -1, 0
		for i, cand := range cands {
			gain := 0
			for _, v := range cand.detects {
				if !covered[v] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		for _, v := range cands[bestIdx].detects {
			covered[v] = true
		}
		out = append(out, cands[bestIdx].vector)
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("testgen: baseline cuts leave valve %d uncovered", v)
		}
	}
	return out, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func pathNodes(g interface{ Endpoints(int) (int, int) }, edges []int) map[int]bool {
	nodes := make(map[int]bool, len(edges)+1)
	for _, e := range edges {
		u, v := g.Endpoints(e)
		nodes[u] = true
		nodes[v] = true
	}
	return nodes
}
