package testgen

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chip"
	"repro/internal/grid"
)

func cxy(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }

// starChip has three channel edges incident to the test source P0. Each
// test path leaves the source over exactly one edge (eq. (2)), so any
// cover needs at least three paths: |P| = 2 is genuinely infeasible.
func starChip() *chip.Chip {
	b := chip.NewBuilder("star", 3, 3)
	b.AddChannel(cxy(0, 0), cxy(0, 1), cxy(0, 2))
	b.AddChannel(cxy(0, 1), cxy(1, 1), cxy(2, 1))
	b.AddDevice(chip.Mixer, "M1", cxy(1, 1))
	b.AddPort("P0", cxy(0, 1))
	b.AddPort("P1", cxy(2, 1))
	return b.MustBuild()
}

func TestAugmentILPInfeasibleSentinel(t *testing.T) {
	_, err := AugmentILPCtx(context.Background(), starChip(), Options{MaxPaths: 2})
	if err == nil {
		t.Fatal("|P| = 2 on a three-spoke source was reported feasible")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want errors.Is(err, ErrInfeasible)", err)
	}
}

func TestAugmentILPGrowsPathCountPastInfeasible(t *testing.T) {
	aug, err := AugmentILPCtx(context.Background(), starChip(), Options{MaxPaths: 4})
	if err != nil {
		t.Fatal(err)
	}
	if aug.NumPaths() < 3 {
		t.Fatalf("cover uses %d paths, the three-spoke source needs at least 3", aug.NumPaths())
	}
	checkAugmentation(t, starChip(), aug)
}

func TestAugmentILPCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AugmentILPCtx(ctx, chip.IVD(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAugmentHeuristicCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AugmentHeuristicCtx(ctx, chip.IVD(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAugmentRepairFullCoverage(t *testing.T) {
	// With no pressure the repair tier covers everything: same result
	// quality as the heuristic, but tagged with its own method.
	aug, err := AugmentRepair(context.Background(), chip.IVD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aug.Method != "repair" {
		t.Fatalf("Method = %q, want \"repair\"", aug.Method)
	}
	if len(aug.Uncovered) != 0 {
		t.Fatalf("Uncovered = %v, want none on an unconstrained run", aug.Uncovered)
	}
	checkAugmentation(t, chip.IVD(), aug)
}

func TestAugmentRepairPartialUnderCancellation(t *testing.T) {
	// A dead context must not fail the repair tier: it returns whatever it
	// covered (possibly nothing) and lists the rest as Uncovered.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	aug, err := AugmentRepair(ctx, chip.IVD(), Options{})
	if err != nil {
		t.Fatalf("best-effort repair failed under cancellation: %v", err)
	}
	if len(aug.Uncovered) == 0 {
		t.Fatal("cancelled repair reported full coverage")
	}
	if aug.Method != "repair" {
		t.Fatalf("Method = %q, want \"repair\"", aug.Method)
	}
}

func TestGenerateCutsCtxCancelled(t *testing.T) {
	c := chip.IVD()
	src, dst := c.MaxDistantPortPair()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateCutsCtx(ctx, c, src, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCutILPMaxNodesPlumbing(t *testing.T) {
	// A one-node budget cannot prove optimality; the optimal generator must
	// fall back to the greedy cover instead of failing.
	aug, err := AugmentHeuristic(chip.IVD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, src, dst := aug.Chip, aug.Source, aug.Meter
	tiny, err := GenerateCutsOptimalCtx(context.Background(), c, src, dst, Options{ILPMaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GenerateCuts(c, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) != len(greedy) {
		t.Fatalf("1-node budget produced %d cuts, greedy fallback has %d", len(tiny), len(greedy))
	}
	full, err := GenerateCutsOptimalCtx(context.Background(), c, src, dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) > len(greedy) {
		t.Fatalf("default budget produced %d cuts, worse than greedy's %d", len(full), len(greedy))
	}
}
