package testgen

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

func TestOptimalCutsCoverAllBenchmarks(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		aug, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		cuts, err := GenerateCutsOptimal(aug.Chip, aug.Source, aug.Meter)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sim := fault.MustSimulator(aug.Chip, chip.IndependentControl(aug.Chip))
		var faults []fault.Fault
		for v := 0; v < aug.Chip.NumValves(); v++ {
			faults = append(faults, fault.Fault{Kind: fault.StuckAt1, Valve: v})
		}
		cov := sim.EvaluateCoverage(cuts, faults)
		if !cov.Full() {
			t.Errorf("%s: optimal cuts coverage %v (undetected %v)", c.Name, cov, cov.Undetected)
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		aug, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		greedy, err := GenerateCuts(aug.Chip, aug.Source, aug.Meter)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		optimal, err := GenerateCutsOptimal(aug.Chip, aug.Source, aug.Meter)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(optimal) > len(greedy) {
			t.Errorf("%s: optimal %d cuts > greedy %d", c.Name, len(optimal), len(greedy))
		}
		t.Logf("%s: greedy %d cuts, optimal %d cuts", c.Name, len(greedy), len(optimal))
	}
}

func TestCandidateEnumerationProducesAlternatives(t *testing.T) {
	c := chip.RA30()
	aug, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := enumerateCutCandidates(aug.Chip, aug.Source, aug.Meter, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At least one candidate per valve; usually more.
	if len(cands) < aug.Chip.NumValves() {
		t.Fatalf("%d candidates for %d valves", len(cands), aug.Chip.NumValves())
	}
}
