package testgen

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

func TestEstimateTestTimeDefaults(t *testing.T) {
	vectors := make([]fault.Vector, 10)
	if got := EstimateTestTime(vectors, TestTimeParams{}); got != 10*(2+3) {
		t.Fatalf("EstimateTestTime = %d, want 50", got)
	}
}

func TestEstimateTestTimeCustom(t *testing.T) {
	vectors := make([]fault.Vector, 4)
	if got := EstimateTestTime(vectors, TestTimeParams{ActuationTime: 1, MeasureTime: 1}); got != 8 {
		t.Fatalf("EstimateTestTime = %d, want 8", got)
	}
}

func TestDFTTestTimeStaysAffordable(t *testing.T) {
	// The paper's affordability claim: even the largest DFT test program
	// finishes within minutes.
	for _, c := range chip.Benchmarks() {
		aug, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cuts, err := GenerateCuts(aug.Chip, aug.Source, aug.Meter)
		if err != nil {
			t.Fatal(err)
		}
		total := EstimateTestTime(append(aug.PathVectors(), cuts...), TestTimeParams{})
		if total <= 0 || total > 600 {
			t.Fatalf("%s: test time %d s outside plausible range", c.Name, total)
		}
		t.Logf("%s: %d s of test time", c.Name, total)
	}
}
