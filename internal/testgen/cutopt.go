package testgen

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// DefaultCutILPMaxNodes caps the set-cover branch-and-bound when
// Options.ILPMaxNodes is 0.
const DefaultCutILPMaxNodes = 4000

// GenerateCutsOptimal produces a minimum-cardinality set of test-cut
// vectors between ports src and dst covering the stuck-at-1 fault of every
// valve. The paper notes that finding the minimum set of test cuts is "a
// complementary problem of the test path generation" solved with the same
// machinery; this implementation enumerates several candidate cuts per
// valve (the greedy generator's plus structural alternatives) and solves
// the exact set-cover ILP with the same branch-and-bound engine as the
// path ILP. GenerateCuts remains the fast greedy variant used inside the
// PSO loop.
func GenerateCutsOptimal(c *chip.Chip, src, dst int) ([]fault.Vector, error) {
	return GenerateCutsOptimalCtx(context.Background(), c, src, dst, Options{})
}

// GenerateCutsOptimalCtx is GenerateCutsOptimal with cooperative
// cancellation and tunable solver budget (Options.ILPMaxNodes; 0 means
// DefaultCutILPMaxNodes). When the set-cover ILP runs out of budget it
// falls back to the greedy cover; when the context is cancelled it returns
// the context's error.
func GenerateCutsOptimalCtx(ctx context.Context, c *chip.Chip, src, dst int, opts Options) ([]fault.Vector, error) {
	cands, err := enumerateCutCandidates(c, src, dst, 3)
	if err != nil {
		return nil, err
	}
	sim := fault.MustSimulator(c, chip.IndependentControl(c))

	// Detection sets.
	type scored struct {
		vector  fault.Vector
		detects []int
	}
	var pool []scored
	seen := map[string]bool{}
	for _, vec := range cands {
		key := intsKeyLocal(vec.Valves)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !sim.FaultFreeOK(vec) {
			continue
		}
		var det []int
		for _, v := range vec.Valves {
			if sim.Detects(vec, fault.Fault{Kind: fault.StuckAt1, Valve: v}) {
				det = append(det, v)
			}
		}
		if len(det) > 0 {
			pool = append(pool, scored{vector: vec, detects: det})
		}
	}

	// Coverage feasibility check.
	covered := make([]bool, c.NumValves())
	for _, s := range pool {
		for _, v := range s.detects {
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("testgen: no candidate cut detects valve %d", v)
		}
	}

	// Exact set cover.
	p := lp.NewProblem(lp.Minimize)
	vars := make([]int, len(pool))
	for i := range pool {
		vars[i] = p.AddBinaryVar(1, fmt.Sprintf("cut_%d", i))
	}
	for v := 0; v < c.NumValves(); v++ {
		var terms []lp.Term
		for i, s := range pool {
			for _, dv := range s.detects {
				if dv == v {
					terms = append(terms, lp.T(vars[i], 1))
					break
				}
			}
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.GE, RHS: 1})
	}
	maxNodes := opts.ILPMaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultCutILPMaxNodes
	}
	res, err := ilp.NewModel(p).SolveCtx(ctx, ilp.Options{MaxNodes: maxNodes})
	if err != nil {
		return nil, err
	}
	if res.Status == ilp.Aborted {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("testgen: cut set-cover cancelled: %w", ctxErr)
		}
	}
	if res.Status == ilp.Infeasible || res.Status == ilp.Aborted {
		return GenerateCuts(c, src, dst) // greedy fallback
	}
	var out []fault.Vector
	for i := range pool {
		if res.X[vars[i]] > 0.5 {
			out = append(out, pool[i].vector)
		}
	}
	return out, nil
}

// enumerateCutCandidates returns up to k candidate cuts per valve: the
// default leak-preserving cut plus alternatives obtained by forbidding one
// member of the previous candidate at a time.
func enumerateCutCandidates(c *chip.Chip, src, dst, k int) ([]fault.Vector, error) {
	g := c.Grid.Graph()
	srcNode, dstNode := c.Ports[src].Node, c.Ports[dst].Node
	channelOnly := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	toVector := func(cutEdges []int) (fault.Vector, bool) {
		valves := make([]int, 0, len(cutEdges))
		for _, e := range cutEdges {
			v, ok := c.ValveOnEdge(e)
			if !ok {
				return fault.Vector{}, false
			}
			valves = append(valves, v)
		}
		sort.Ints(valves)
		return fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}, true
	}

	var out []fault.Vector
	for valve := 0; valve < c.NumValves(); valve++ {
		through := c.Valve(valve).Edge
		base, err := cutThroughWithLeak(g, srcNode, dstNode, through, channelOnly)
		if err != nil {
			return nil, fmt.Errorf("testgen: valve %d: %w", valve, err)
		}
		if vec, ok := toVector(base); ok {
			out = append(out, vec)
		}
		// Alternatives: ban one non-through member at a time.
		alts := 0
		for _, banned := range base {
			if banned == through || alts >= k-1 {
				continue
			}
			allow := func(e int) bool { return e != banned && channelOnly(e) }
			alt, err := cutThroughWithLeakAvoiding(g, srcNode, dstNode, through, allow, allow, nil)
			if err != nil {
				continue
			}
			if vec, ok := toVector(alt); ok {
				out = append(out, vec)
				alts++
			}
		}
	}
	return out, nil
}

func intsKeyLocal(s []int) string {
	out := make([]byte, 0, len(s)*3)
	for _, v := range s {
		out = append(out, byte(v), byte(v>>8), ',')
	}
	return string(out)
}
