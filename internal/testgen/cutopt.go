package testgen

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// DefaultCutILPMaxNodes caps the set-cover branch-and-bound when
// Options.ILPMaxNodes is 0.
const DefaultCutILPMaxNodes = 4000

// GenerateCutsOptimal produces a minimum-cardinality set of test-cut
// vectors between ports src and dst covering the stuck-at-1 fault of every
// valve. The paper notes that finding the minimum set of test cuts is "a
// complementary problem of the test path generation" solved with the same
// machinery; this implementation enumerates several candidate cuts per
// valve (the greedy generator's plus structural alternatives) and solves
// the exact set-cover ILP with the same branch-and-bound engine as the
// path ILP. GenerateCuts remains the fast greedy variant used inside the
// PSO loop.
func GenerateCutsOptimal(c *chip.Chip, src, dst int) ([]fault.Vector, error) {
	return GenerateCutsOptimalCtx(context.Background(), c, src, dst, Options{})
}

// GenerateCutsOptimalCtx is GenerateCutsOptimal with cooperative
// cancellation and tunable solver budget (Options.ILPMaxNodes; 0 means
// DefaultCutILPMaxNodes). When the set-cover ILP runs out of budget it
// falls back to the greedy cover; when the context is cancelled it returns
// the context's error.
func GenerateCutsOptimalCtx(ctx context.Context, c *chip.Chip, src, dst int, opts Options) ([]fault.Vector, error) {
	p, pool, vars, err := buildCutCoverILP(c, src, dst)
	if err != nil {
		return nil, err
	}
	maxNodes := opts.ILPMaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultCutILPMaxNodes
	}
	res, err := ilp.NewModel(p).SolveCtx(ctx, ilp.Options{
		MaxNodes: maxNodes,
		Workers:  opts.ilpWorkers(),
	})
	if err != nil {
		return nil, err
	}
	if opts.OnILPStats != nil {
		st := res.Stats
		opts.OnILPStats(st.Workers, st.Steals, st.IdleWaits, st.Requeued)
	}
	if res.Status == ilp.Aborted {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("testgen: cut set-cover cancelled: %w", ctxErr)
		}
	}
	if res.Status == ilp.Infeasible || res.Status == ilp.Aborted {
		return GenerateCuts(c, src, dst) // greedy fallback
	}
	var out []fault.Vector
	for i := range pool {
		if res.X[vars[i]] > 0.5 {
			out = append(out, pool[i].vector)
		}
	}
	return out, nil
}

// cutCandidate is a fault-simulated candidate test cut: the vector plus
// the set of valves whose stuck-at-1 faults it detects.
type cutCandidate struct {
	vector  fault.Vector
	detects []int
}

// buildCutCoverILP enumerates candidate cuts between ports src and dst,
// fault-simulates their detection sets and constructs the exact set-cover
// ILP. It returns the problem, the candidate pool and the pool's variable
// indices (vars[i] selects pool[i]).
func buildCutCoverILP(c *chip.Chip, src, dst int) (*lp.Problem, []cutCandidate, []int, error) {
	cands, err := enumerateCutCandidates(c, src, dst, 3)
	if err != nil {
		return nil, nil, nil, err
	}
	sim := fault.MustSimulator(c, chip.IndependentControl(c))

	// Detection sets.
	var pool []cutCandidate
	seen := map[string]bool{}
	for _, vec := range cands {
		key := intsKeyLocal(vec.Valves)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !sim.FaultFreeOK(vec) {
			continue
		}
		var det []int
		for _, v := range vec.Valves {
			if sim.Detects(vec, fault.Fault{Kind: fault.StuckAt1, Valve: v}) {
				det = append(det, v)
			}
		}
		if len(det) > 0 {
			pool = append(pool, cutCandidate{vector: vec, detects: det})
		}
	}

	// Coverage feasibility check.
	covered := make([]bool, c.NumValves())
	for _, s := range pool {
		for _, v := range s.detects {
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return nil, nil, nil, fmt.Errorf("testgen: no candidate cut detects valve %d", v)
		}
	}

	// Exact set cover.
	p := lp.NewProblem(lp.Minimize)
	vars := make([]int, len(pool))
	for i := range pool {
		vars[i] = p.AddBinaryVar(1, fmt.Sprintf("cut_%d", i))
	}
	for v := 0; v < c.NumValves(); v++ {
		var terms []lp.Term
		for i, s := range pool {
			for _, dv := range s.detects {
				if dv == v {
					terms = append(terms, lp.T(vars[i], 1))
					break
				}
			}
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.GE, RHS: 1})
	}
	return p, pool, vars, nil
}

// CutCoverILPModel builds the test-cut set-cover ILP between ports src and
// dst. Like PathILPModel it exists for benchmarking the branch-and-bound
// engine on the paper's real models (cmd/bench -ilp).
func CutCoverILPModel(c *chip.Chip, src, dst int) (*ilp.Model, error) {
	p, _, _, err := buildCutCoverILP(c, src, dst)
	if err != nil {
		return nil, err
	}
	return ilp.NewModel(p), nil
}

// enumerateCutCandidates returns up to k candidate cuts per valve: the
// default leak-preserving cut plus alternatives obtained by forbidding one
// member of the previous candidate at a time.
func enumerateCutCandidates(c *chip.Chip, src, dst, k int) ([]fault.Vector, error) {
	g := c.Grid.Graph()
	srcNode, dstNode := c.Ports[src].Node, c.Ports[dst].Node
	channelOnly := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}
	toVector := func(cutEdges []int) (fault.Vector, bool) {
		valves := make([]int, 0, len(cutEdges))
		for _, e := range cutEdges {
			v, ok := c.ValveOnEdge(e)
			if !ok {
				return fault.Vector{}, false
			}
			valves = append(valves, v)
		}
		sort.Ints(valves)
		return fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}, true
	}

	var out []fault.Vector
	for valve := 0; valve < c.NumValves(); valve++ {
		through := c.Valve(valve).Edge
		base, err := cutThroughWithLeak(g, srcNode, dstNode, through, channelOnly)
		if err != nil {
			return nil, fmt.Errorf("testgen: valve %d: %w", valve, err)
		}
		if vec, ok := toVector(base); ok {
			out = append(out, vec)
		}
		// Alternatives: ban one non-through member at a time.
		alts := 0
		for _, banned := range base {
			if banned == through || alts >= k-1 {
				continue
			}
			allow := func(e int) bool { return e != banned && channelOnly(e) }
			alt, err := cutThroughWithLeakAvoiding(g, srcNode, dstNode, through, allow, allow, nil)
			if err != nil {
				continue
			}
			if vec, ok := toVector(alt); ok {
				out = append(out, vec)
				alts++
			}
		}
	}
	return out, nil
}

func intsKeyLocal(s []int) string {
	out := make([]byte, 0, len(s)*3)
	for _, v := range s {
		out = append(out, byte(v), byte(v>>8), ',')
	}
	return string(out)
}
