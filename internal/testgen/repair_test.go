package testgen

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

// repairFixture returns an augmented RA30 chip with its base vectors —
// the configuration whose DFT valves sit in series at the P0 pocket, the
// known-hard case for sharing-aware repair.
func repairFixture(t *testing.T) (*Augmentation, []fault.Vector, []fault.Vector) {
	t.Helper()
	aug, err := AugmentHeuristic(chip.RA30(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if err != nil {
		t.Fatal(err)
	}
	return aug, aug.PathVectors(), cuts
}

func TestRepairNoopUnderIndependentControl(t *testing.T) {
	aug, paths, cuts := repairFixture(t)
	ctrl := chip.IndependentControl(aug.Chip)
	p2, c2, full := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
	if !full {
		t.Fatal("independent control must already be fully covered")
	}
	if len(p2) != len(paths) || len(c2) != len(cuts) {
		t.Fatalf("repair changed vector counts without need: %d/%d -> %d/%d",
			len(paths), len(cuts), len(p2), len(c2))
	}
}

func TestRepairFixesMaskedCuts(t *testing.T) {
	aug, paths, cuts := repairFixture(t)
	// Partner pair (8, 9) couples the DFT valves to the redundant D1-D2
	// channel; the base cuts mask the DFT valves' stuck-at-1 faults, and
	// repair must regenerate sharing-aware ones.
	ctrl, err := chip.SharedControl(aug.Chip, []int{8, 9})
	if err != nil {
		t.Fatal(err)
	}
	sim := fault.MustSimulator(aug.Chip, ctrl)
	base := append(append([]fault.Vector{}, paths...), cuts...)
	covBefore := sim.EvaluateCoverage(base, fault.AllFaults(aug.Chip))
	p2, c2, full := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
	if !full {
		t.Fatalf("repair failed; before-coverage was %v (undetected %v)", covBefore, covBefore.Undetected)
	}
	after := append(append([]fault.Vector{}, p2...), c2...)
	covAfter := sim.EvaluateCoverage(after, fault.AllFaults(aug.Chip))
	if !covAfter.Full() {
		t.Fatalf("repair reported full but coverage is %v", covAfter)
	}
	if covBefore.Full() && len(c2) > len(cuts) {
		t.Fatal("repair added cuts although coverage was already full")
	}
}

func TestRepairedVectorsUseSingleInstrumentPair(t *testing.T) {
	aug, paths, cuts := repairFixture(t)
	ctrl, err := chip.SharedControl(aug.Chip, []int{8, 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, full := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
	if !full {
		t.Skip("pair (8,9) not repairable on this configuration")
	}
	for _, v := range append(append([]fault.Vector{}, p2...), c2...) {
		if len(v.Sources) != 1 || len(v.Meters) != 1 ||
			v.Sources[0] != aug.Source || v.Meters[0] != aug.Meter {
			t.Fatalf("repaired vector escaped the single instrument pair: %v", v)
		}
	}
}

func TestRepairReportsUnfixable(t *testing.T) {
	// Structural impossibility: sharing the P0-pocket DFT valve with v0
	// (P0's only original edge) makes the DFT valve's stuck-at-1
	// undetectable — every leak through it must cross the auto-closed
	// partner. Repair must report failure, not fake coverage.
	aug, paths, cuts := repairFixture(t)
	nOrig := aug.Chip.NumOriginalValves()
	if aug.Chip.NumDFTValves() < 2 {
		t.Skip("fixture changed")
	}
	// Find the partner assignment coupling a DFT valve to v0 plus the
	// M1-M2 chain (v1), the known-unfixable combination from the analysis.
	ctrl, err := chip.SharedControl(aug.Chip, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, _, full := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
	if full {
		// Not fatal — the exact geometry depends on the heuristic's pick —
		// but verify the claimed coverage honestly.
		sim := fault.MustSimulator(aug.Chip, ctrl)
		p2, c2, _ := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
		cov := sim.EvaluateCoverage(append(append([]fault.Vector{}, p2...), c2...), fault.AllFaults(aug.Chip))
		if !cov.Full() {
			t.Fatal("repair claimed full coverage falsely")
		}
	}
	_ = nOrig
}

func TestRepairAgreesWithSimulatorAcrossPairs(t *testing.T) {
	// Property over a sample of sharing pairs: whenever RepairVectors
	// reports full coverage, the simulator confirms it; whenever it
	// reports failure, the base vectors were indeed incomplete.
	aug, paths, cuts := repairFixture(t)
	nOrig := aug.Chip.NumOriginalValves()
	if aug.Chip.NumDFTValves() != 2 {
		t.Skip("fixture expects 2 DFT valves")
	}
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}, {14, 15}, {3, 12}, {9, 6}}
	for _, pr := range pairs {
		if pr[0] >= nOrig || pr[1] >= nOrig {
			continue
		}
		ctrl, err := chip.SharedControl(aug.Chip, []int{pr[0], pr[1]})
		if err != nil {
			t.Fatal(err)
		}
		sim := fault.MustSimulator(aug.Chip, ctrl)
		p2, c2, full := RepairVectors(aug.Chip, ctrl, aug.Source, aug.Meter, paths, cuts)
		cov := sim.EvaluateCoverage(append(append([]fault.Vector{}, p2...), c2...), fault.AllFaults(aug.Chip))
		if full != cov.Full() {
			t.Fatalf("pair %v: repair says full=%v but simulator says %v", pr, full, cov)
		}
	}
}
