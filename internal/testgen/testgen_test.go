package testgen

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

// checkAugmentation validates the structural invariants of a DFT
// configuration: every path is a simple source→meter path over channel
// edges, every original edge is covered by at least one path, and every
// added edge lies on at least one path.
func checkAugmentation(t *testing.T, orig *chip.Chip, a *Augmentation) {
	t.Helper()
	g := a.Chip.Grid.Graph()
	srcNode := a.Chip.Ports[a.Source].Node
	dstNode := a.Chip.Ports[a.Meter].Node

	coveredEdges := make(map[int]bool)
	for i, p := range a.Paths {
		if !g.IsSimplePath(srcNode, dstNode, p) {
			t.Fatalf("path %d is not a simple s-t path: %v", i, p)
		}
		for _, e := range p {
			if _, ok := a.Chip.ValveOnEdge(e); !ok {
				t.Fatalf("path %d uses unvalved edge %d", i, e)
			}
			coveredEdges[e] = true
		}
	}
	for _, e := range orig.OriginalEdges() {
		if !coveredEdges[e] {
			t.Errorf("original edge %d not covered by any test path", e)
		}
	}
	for _, e := range a.AddedEdges {
		if !coveredEdges[e] {
			t.Errorf("added DFT edge %d not on any test path", e)
		}
	}
	if a.Chip.NumDFTValves() != len(a.AddedEdges) {
		t.Errorf("DFT valves %d != added edges %d", a.Chip.NumDFTValves(), len(a.AddedEdges))
	}
}

func TestHeuristicAugmentIVD(t *testing.T) {
	c := chip.IVD()
	a, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, c, a)
	if a.Method != "heuristic" {
		t.Fatalf("method = %q", a.Method)
	}
}

func TestHeuristicAugmentAllBenchmarks(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		a, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		checkAugmentation(t, c, a)
		// The paper reports 4-7 added DFT valves per chip; the heuristic
		// should stay in a comparable range.
		if n := len(a.AddedEdges); n < 1 || n > 16 {
			t.Errorf("%s: added %d DFT edges, outside plausible range", c.Name, n)
		}
	}
}

func TestILPAugmentIVD(t *testing.T) {
	c := chip.IVD()
	a, err := AugmentILP(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, c, a)
	if a.Method != "ilp" {
		t.Fatalf("method = %q", a.Method)
	}
	// The ILP is optimal in added edges: it can never add more than the
	// heuristic.
	h, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.AddedEdges) > len(h.AddedEdges) {
		t.Fatalf("ILP added %d edges > heuristic %d", len(a.AddedEdges), len(h.AddedEdges))
	}
}

func TestPathVectorsDetectAllStuckAt0(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		a, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sim := fault.MustSimulator(a.Chip, chip.IndependentControl(a.Chip))
		vectors := a.PathVectors()
		var faults []fault.Fault
		for v := 0; v < a.Chip.NumValves(); v++ {
			faults = append(faults, fault.Fault{Kind: fault.StuckAt0, Valve: v})
		}
		cov := sim.EvaluateCoverage(vectors, faults)
		if !cov.Full() {
			t.Errorf("%s: stuck-at-0 coverage %v, undetected %v", c.Name, cov, cov.Undetected)
		}
	}
}

func TestCutsDetectAllStuckAt1(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		a, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		cuts, err := GenerateCuts(a.Chip, a.Source, a.Meter)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sim := fault.MustSimulator(a.Chip, chip.IndependentControl(a.Chip))
		var faults []fault.Fault
		for v := 0; v < a.Chip.NumValves(); v++ {
			faults = append(faults, fault.Fault{Kind: fault.StuckAt1, Valve: v})
		}
		cov := sim.EvaluateCoverage(cuts, faults)
		if !cov.Full() {
			t.Errorf("%s: stuck-at-1 coverage %v, undetected %v", c.Name, cov, cov.Undetected)
		}
	}
}

func TestVerifyFullCoverageSingleSourceSingleMeter(t *testing.T) {
	c := chip.IVD()
	a, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := GenerateCuts(a.Chip, a.Source, a.Meter)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := a.Verify(nil, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Full() {
		t.Fatalf("full single-source single-meter coverage expected: %v (undetected %v)", cov, cov.Undetected)
	}
	// Every vector uses the single test port pair.
	for _, v := range append(a.PathVectors(), cuts...) {
		if len(v.Sources) != 1 || len(v.Meters) != 1 || v.Sources[0] != a.Source || v.Meters[0] != a.Meter {
			t.Fatalf("vector uses extra instruments: %v", v)
		}
	}
}

func TestEdgeWeightsSteerHeuristic(t *testing.T) {
	c := chip.IVD()
	base, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Penalize the edges the base solution chose; the heuristic should
	// avoid at least one of them (or pay the cost, but on grids an
	// alternative normally exists).
	weights := make([]float64, c.Grid.NumEdges())
	for _, e := range base.AddedEdges {
		weights[e] = 50
	}
	alt, err := AugmentHeuristic(c, Options{EdgeWeights: weights})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, c, alt)
	same := true
	if len(alt.AddedEdges) != len(base.AddedEdges) {
		same = false
	} else {
		for i := range alt.AddedEdges {
			if alt.AddedEdges[i] != base.AddedEdges[i] {
				same = false
			}
		}
	}
	if same {
		t.Log("warning: weights did not change the configuration (acceptable but unusual)")
	}
}

func TestBaselineVectorsCoverOriginalChip(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		paths, cuts, err := BaselineVectors(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sim := fault.MustSimulator(c, chip.IndependentControl(c))
		cov := sim.EvaluateCoverage(append(append([]fault.Vector{}, paths...), cuts...), fault.AllFaults(c))
		if !cov.Full() {
			t.Errorf("%s: baseline coverage %v, undetected %v", c.Name, cov, cov.Undetected)
		}
	}
}

func TestBaselineUsesFewerVectorsThanDFT(t *testing.T) {
	// Fig. 8's qualitative claim: the single-source single-meter DFT chip
	// needs at least as many vectors as the multi-instrument baseline.
	for _, c := range chip.Benchmarks() {
		bp, bc, err := BaselineVectors(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		a, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		cuts, err := GenerateCuts(a.Chip, a.Source, a.Meter)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		baseline := len(bp) + len(bc)
		dft := len(a.Paths) + len(cuts)
		if dft < baseline {
			t.Errorf("%s: DFT vectors %d < baseline %d; Fig. 8 shape violated", c.Name, dft, baseline)
		}
	}
}

func TestAugmentationDoesNotMutateInput(t *testing.T) {
	c := chip.IVD()
	before := c.NumValves()
	if _, err := AugmentHeuristic(c, Options{}); err != nil {
		t.Fatal(err)
	}
	if c.NumValves() != before {
		t.Fatal("augmentation mutated the input chip")
	}
}

func TestGenerateCutsSingleSourceMeters(t *testing.T) {
	c := chip.IVD()
	a, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := GenerateCuts(a.Chip, a.Source, a.Meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts generated")
	}
	sim := fault.MustSimulator(a.Chip, chip.IndependentControl(a.Chip))
	for _, cut := range cuts {
		if !sim.FaultFreeOK(cut) {
			t.Fatalf("cut %v does not separate on a good chip", cut)
		}
	}
}
