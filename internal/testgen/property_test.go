package testgen

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
)

// The pipeline-level property behind the paper's headline claim: for ANY
// valid chip (not just the three benchmarks), heuristic augmentation plus
// cut generation yields a complete single-source single-meter test set.
func TestRandomChipsSingleSourceSingleMeterProperty(t *testing.T) {
	okCount := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := chip.Random(rng)
		aug, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Errorf("seed %d (%s): augmentation failed: %v", seed, c.Name, err)
			continue
		}
		cuts, err := GenerateCuts(aug.Chip, aug.Source, aug.Meter)
		if err != nil {
			t.Errorf("seed %d (%s): cut generation failed: %v", seed, c.Name, err)
			continue
		}
		cov, err := aug.Verify(nil, cuts)
		if err != nil {
			t.Errorf("seed %d (%s): verify failed: %v", seed, c.Name, err)
			continue
		}
		if !cov.Full() {
			t.Errorf("seed %d (%s): coverage %v, undetected %v", seed, c.Name, cov, cov.Undetected)
			continue
		}
		okCount++
	}
	if okCount < 25 {
		t.Fatalf("only %d/25 random chips passed", okCount)
	}
}

// FPVA is the no-free-edge limiting case: augmentation must succeed
// without adding anything (the dense mesh already routes every channel
// onto a source-meter path).
func TestFPVANeedsNoAugmentation(t *testing.T) {
	c := chip.FPVA(5, 5)
	aug, err := AugmentHeuristic(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(aug.AddedEdges) != 0 {
		t.Fatalf("FPVA has no free edges, yet %d were 'added'", len(aug.AddedEdges))
	}
	cuts, err := GenerateCuts(aug.Chip, aug.Source, aug.Meter)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := aug.Verify(nil, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Full() {
		t.Fatalf("FPVA coverage %v, undetected %v", cov, cov.Undetected)
	}
}

// ILP validity on a random chip. Note the ILP is optimal in added edges
// only for its chosen path count |P| (the paper stops at the first
// feasible |P|); a heuristic solution with more paths may legitimately
// need fewer added edges, so no ≤ comparison is asserted here — that
// comparison holds at matched |P| and is asserted on the IVD benchmark in
// TestILPAugmentIVD.
func TestILPOnRandomChipIsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP solves are slow")
	}
	rng := rand.New(rand.NewSource(1))
	c := chip.Random(rng)
	exact, err := AugmentILP(c, Options{ILPMaxNodes: 1500})
	if err != nil {
		t.Skipf("ILP gave up on this instance (%v) — the heuristic engine covers it", err)
	}
	checkAugmentation(t, c, exact)
	cuts, err := GenerateCuts(exact.Chip, exact.Source, exact.Meter)
	if err != nil {
		t.Fatal(err)
	}
	if cov, err := exact.Verify(nil, cuts); err != nil || !cov.Full() {
		t.Fatalf("ILP augmentation coverage %v (err %v)", cov, err)
	}
}

// Every augmentation keeps the original chip untouched and marks exactly
// the added edges as DFT valves.
func TestAugmentationAccountingProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		c := chip.Random(rng)
		before := c.NumValves()
		aug, err := AugmentHeuristic(c, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.NumValves() != before {
			t.Fatalf("seed %d: input chip mutated", seed)
		}
		if aug.Chip.NumDFTValves() != len(aug.AddedEdges) {
			t.Fatalf("seed %d: %d DFT valves vs %d added edges", seed, aug.Chip.NumDFTValves(), len(aug.AddedEdges))
		}
		if aug.Chip.NumOriginalValves() != before {
			t.Fatalf("seed %d: original valve count changed", seed)
		}
		for _, v := range fault.AllFaults(aug.Chip) {
			_ = v // fault enumeration must not panic on augmented chips
		}
	}
}
