package testgen

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/graphalg"
)

// GenerateCuts produces a set of test-cut vectors between ports src and dst
// that together detect a stuck-at-1 fault on every valve of the chip. For
// each valve the generator finds a separating valve set containing it whose
// closure still leaves a pressure leak path through the valve (otherwise
// the defect would be undetectable); a greedy set cover then minimizes the
// number of cut vectors, the complementary problem the paper describes in
// Section 3.
//
// Detection is certified by fault simulation under independent control;
// sharing-induced masking is re-checked by the caller with its own control
// assignment.
func GenerateCuts(c *chip.Chip, src, dst int) ([]fault.Vector, error) {
	return GenerateCutsCtx(context.Background(), c, src, dst)
}

// GenerateCutsCtx is GenerateCuts with cooperative cancellation, checked
// once per valve during candidate generation.
func GenerateCutsCtx(ctx context.Context, c *chip.Chip, src, dst int) ([]fault.Vector, error) {
	sim := fault.MustSimulator(c, chip.IndependentControl(c))
	srcNode, dstNode := c.Ports[src].Node, c.Ports[dst].Node
	g := c.Grid.Graph()
	channelOnly := func(e int) bool {
		_, ok := c.ValveOnEdge(e)
		return ok
	}

	// One candidate cut per valve, then greedy cover.
	type candidate struct {
		vector  fault.Vector
		detects []int // valves whose stuck-at-1 this cut provably detects
	}
	var cands []candidate
	covered := make([]bool, c.NumValves())

	detectsOf := func(v fault.Vector) []int {
		var out []int
		for _, valve := range v.Valves {
			if sim.Detects(v, fault.Fault{Kind: fault.StuckAt1, Valve: valve}) {
				out = append(out, valve)
			}
		}
		return out
	}

	for valve := 0; valve < c.NumValves(); valve++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("testgen: cut generation cancelled at valve %d/%d: %w", valve, c.NumValves(), err)
		}
		edge := c.Valve(valve).Edge
		cutEdges, err := cutThroughWithLeak(g, srcNode, dstNode, edge, channelOnly)
		if err != nil {
			return nil, fmt.Errorf("testgen: no detecting cut for valve %d: %w", valve, err)
		}
		valves := make([]int, 0, len(cutEdges))
		for _, e := range cutEdges {
			cv, ok := c.ValveOnEdge(e)
			if !ok {
				return nil, fmt.Errorf("testgen: cut edge %d has no valve", e)
			}
			valves = append(valves, cv)
		}
		sort.Ints(valves)
		vec := fault.Vector{Kind: fault.CutVector, Valves: valves, Sources: []int{src}, Meters: []int{dst}}
		if !sim.FaultFreeOK(vec) {
			return nil, fmt.Errorf("testgen: cut for valve %d does not separate", valve)
		}
		det := detectsOf(vec)
		if !containsInt(det, valve) {
			return nil, fmt.Errorf("testgen: cut for valve %d does not detect it", valve)
		}
		cands = append(cands, candidate{vector: vec, detects: det})
	}

	// Greedy set cover over candidate cuts.
	var out []fault.Vector
	for {
		bestIdx, bestGain := -1, 0
		for i, cand := range cands {
			gain := 0
			for _, v := range cand.detects {
				if !covered[v] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		for _, v := range cands[bestIdx].detects {
			covered[v] = true
		}
		out = append(out, cands[bestIdx].vector)
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("testgen: valve %d left uncovered by cuts", v)
		}
	}
	return out, nil
}

// errNoLeakCut marks valves for which no leak-preserving cut exists.
var errNoLeakCut = fmt.Errorf("no leak-preserving cut exists")

// cutThroughWithLeak finds a set of channel edges containing `through` that
// separates s from t, such that closing the set minus `through` still
// leaves an s-t leak path across `through` (the detection condition for a
// stuck-at-1 valve on `through`). It protects a witness leak path with
// large flow capacities so the min cut cannot sever it anywhere except at
// `through` itself.
func cutThroughWithLeak(g *graphalg.Graph, s, t, through int, allow func(int) bool) ([]int, error) {
	return cutThroughWithLeakAvoiding(g, s, t, through, allow, allow, nil)
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
