package testgen

import (
	"testing"

	"repro/internal/chip"
)

func benchSuite(b *testing.B, w, h int, gen func(*chip.Chip) (*Suite, error)) {
	b.Helper()
	c := chip.MustGenerateFPVA(chip.FPVAParams{W: w, H: h, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := gen(c)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Uncovered) != 0 {
			b.Fatalf("uncovered valves: %v", s.Uncovered)
		}
	}
}

func BenchmarkSuiteBaseline16(b *testing.B) {
	benchSuite(b, 16, 16, func(c *chip.Chip) (*Suite, error) {
		return GenerateBaseline(c, SuiteOptions{Workers: 1})
	})
}

func BenchmarkSuiteTemplate16(b *testing.B) {
	benchSuite(b, 16, 16, func(c *chip.Chip) (*Suite, error) {
		return GenerateTemplates(c, SuiteOptions{Workers: 1})
	})
}

func BenchmarkSuiteBaseline32(b *testing.B) {
	benchSuite(b, 32, 32, func(c *chip.Chip) (*Suite, error) {
		return GenerateBaseline(c, SuiteOptions{Workers: 1})
	})
}

func BenchmarkSuiteTemplate32(b *testing.B) {
	benchSuite(b, 32, 32, func(c *chip.Chip) (*Suite, error) {
		return GenerateTemplates(c, SuiteOptions{Workers: 1})
	})
}
