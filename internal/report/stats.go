package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/flowstage"
)

// StatsDocument is the serialized per-stage runtime breakdown of a flow
// (the -stats output of the CLIs).
type StatsDocument struct {
	// TotalMS is the flow's wall-clock runtime in milliseconds.
	TotalMS float64 `json:"total_ms"`
	// StageSumMS is the sum of the stage durations; the gap to TotalMS is
	// inter-stage glue (artifact plumbing, result assembly).
	StageSumMS float64          `json:"stage_sum_ms"`
	Stages     []StageStatsJSON `json:"stages"`
}

// StageStatsJSON is one stage's share of the flow's work.
type StageStatsJSON struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	// PercentOfTotal is DurationMS as a share of TotalMS (0 when the
	// total is zero).
	PercentOfTotal float64 `json:"percent_of_total"`
	// SolverIters counts PSO iterations executed while the stage ran
	// (outer and inner swarms combined).
	SolverIters int64 `json:"solver_iters,omitempty"`
	// CacheHits/CacheMisses aggregate every cache the stage touched
	// (flow-level augmentation/sharing caches plus the fault simulator's
	// memo); CacheHitRate is hits/(hits+misses).
	CacheHits    int64   `json:"cache_hits,omitempty"`
	CacheMisses  int64   `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// Counters carries the stage's named counters (ban_rounds, ilp_nodes,
	// ilp_workers, ilp_steals, ilp_idle_waits, ilp_requeued,
	// fault_memo_hits, pressure_solves, pressure_warm, pressure_cold,
	// leakage_examined, ...), sorted by name in table output.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Error is set when the stage failed (the pipeline stops there).
	Error string `json:"error,omitempty"`
}

// BuildStats assembles the stats document from a flow's breakdown. A nil
// stats value yields an empty document.
func BuildStats(stats *flowstage.Stats) StatsDocument {
	doc := StatsDocument{}
	if stats == nil {
		return doc
	}
	doc.TotalMS = float64(stats.Total.Microseconds()) / 1e3
	doc.StageSumMS = float64(stats.StageSum().Microseconds()) / 1e3
	for _, st := range stats.Stages {
		s := StageStatsJSON{
			Name:         st.Name,
			DurationMS:   float64(st.Duration.Microseconds()) / 1e3,
			SolverIters:  st.SolverIters,
			CacheHits:    st.CacheHits,
			CacheMisses:  st.CacheMisses,
			CacheHitRate: st.CacheHitRate(),
			Error:        st.Err,
		}
		if doc.TotalMS > 0 {
			s.PercentOfTotal = 100 * s.DurationMS / doc.TotalMS
		}
		if len(st.Counters) > 0 {
			s.Counters = make(map[string]int64, len(st.Counters))
			for k, v := range st.Counters {
				s.Counters[k] = v
			}
		}
		doc.Stages = append(doc.Stages, s)
	}
	return doc
}

// WriteStatsJSON writes the per-stage breakdown as indented JSON.
func WriteStatsJSON(w io.Writer, stats *flowstage.Stats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildStats(stats))
}

// WriteStatsTable writes the per-stage breakdown as an aligned text
// table: one row per stage with duration, share of total, solver
// iterations and cache traffic, a sum row, and the stage counters.
func WriteStatsTable(w io.Writer, stats *flowstage.Stats) {
	doc := BuildStats(stats)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tDURATION\tSHARE\tSOLVER ITERS\tCACHE HIT/MISS\tHIT RATE")
	for _, s := range doc.Stages {
		rate := "-"
		if s.CacheHits+s.CacheMisses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*s.CacheHitRate)
		}
		name := s.Name
		if s.Error != "" {
			name += " (failed)"
		}
		fmt.Fprintf(tw, "%s\t%.1fms\t%.1f%%\t%d\t%d/%d\t%s\n",
			name, s.DurationMS, s.PercentOfTotal, s.SolverIters, s.CacheHits, s.CacheMisses, rate)
	}
	share := 0.0
	if doc.TotalMS > 0 {
		share = 100 * doc.StageSumMS / doc.TotalMS
	}
	fmt.Fprintf(tw, "sum\t%.1fms\t%.1f%%\t\t\t(total %.1fms)\n", doc.StageSumMS, share, doc.TotalMS)
	tw.Flush()
	for _, s := range doc.Stages {
		if len(s.Counters) == 0 {
			continue
		}
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  %s:", s.Name)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, s.Counters[k])
		}
		fmt.Fprintln(w)
	}
}
