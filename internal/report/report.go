// Package report serializes DFT flow results for downstream consumption:
// a JSON document with the augmented architecture, the valve-sharing
// scheme and the complete test program, suitable for driving an actual
// test setup or for archiving experiment outputs.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fault"
)

// Document is the serialized form of a DFT flow result.
type Document struct {
	Chip        ChipInfo     `json:"chip"`
	TestPorts   TestPorts    `json:"test_ports"`
	Sharing     []SharePair  `json:"valve_sharing"`
	PathVectors []TestVector `json:"path_vectors"`
	CutVectors  []TestVector `json:"cut_vectors"`
	Execution   Execution    `json:"execution_times_s"`
	RuntimeMS   int64        `json:"flow_runtime_ms"`
	Solver      SolverInfo   `json:"solver"`
	// Leakage, when present, summarizes the quantitative leakage campaign
	// over the final cut vectors (sparse pressure engine).
	Leakage *LeakageInfo `json:"leakage,omitempty"`
	// Diagnosis, when present, summarizes the adaptive fault-diagnosis
	// campaign over the final test set.
	Diagnosis *DiagnosisInfo `json:"diagnosis,omitempty"`
	// Reconfiguration, when present, summarizes the test-around-fault
	// reconfiguration campaign over the diagnosed suspect sets.
	Reconfiguration *ReconfigInfo `json:"reconfiguration,omitempty"`
	// Stats, when present, is the flow's per-stage runtime breakdown
	// (populated by the CLIs' -stats flag; see BuildStats).
	Stats *StatsDocument `json:"stage_stats,omitempty"`
}

// DiagnosisInfo is the serialized core.DiagnosisSummary: how tightly the
// adaptive campaign localized each modeled fault and what it cost
// against the exhaustive-replay baseline.
type DiagnosisInfo struct {
	Faults            int     `json:"faults"`
	Localized         int     `json:"localized"`
	ExhaustiveVectors int     `json:"exhaustive_vectors"`
	TotalVectors      int     `json:"total_vectors_applied"`
	MaxVectors        int     `json:"max_vectors_per_fault"`
	MeanVectors       float64 `json:"mean_vectors_per_fault"`
	MaxSuspects       int     `json:"max_suspect_set"`
	MeanSuspects      float64 `json:"mean_suspect_set"`
	Degraded          int     `json:"degraded"`
}

// ReconfigInfo is the serialized core.ReconfigSummary: whether the assay
// survives each diagnosed fault with the suspects banned, and at what
// execution-time penalty.
type ReconfigInfo struct {
	SuspectSets int     `json:"suspect_sets"`
	Groups      int     `json:"ban_groups"`
	Feasible    int     `json:"feasible"`
	Infeasible  int     `json:"infeasible"`
	Failed      int     `json:"failed"`
	Relaxed     int     `json:"relaxed"`
	Degraded    int     `json:"degraded"`
	Baseline    int     `json:"baseline_s"`
	MaxPenalty  int     `json:"max_penalty_s"`
	MeanPenalty float64 `json:"mean_penalty_s"`
}

// SolverInfo records the degradation provenance of the flow: which tier
// of the augmentation chain produced the configuration, whether the flow
// degraded or was interrupted, and what every tier attempt did.
type SolverInfo struct {
	Tier         int             `json:"tier"`
	TierName     string          `json:"tier_name"`
	Reason       string          `json:"reason"`
	Degraded     bool            `json:"degraded"`
	Interrupted  bool            `json:"interrupted"`
	CoverageFull bool            `json:"coverage_full"`
	Attempts     []SolverAttempt `json:"attempts,omitempty"`
}

// LeakageInfo is the serialized form of fault.LeakageReport: how many
// closed-valve leaks the cut vectors expose under the quantitative
// pressure model, plus the engine's solve counters.
type LeakageInfo struct {
	Examined     int   `json:"examined"`
	Detectable   int   `json:"detectable"`
	Undetectable []int `json:"undetectable,omitempty"`
	Vectors      int   `json:"vectors"`
	Solves       int64 `json:"pressure_solves"`
	WarmSolves   int64 `json:"pressure_warm_solves"`
}

// SolverAttempt is one tier execution of the augmentation chain.
type SolverAttempt struct {
	Tier      int    `json:"tier"`
	Name      string `json:"name"`
	Reason    string `json:"reason"`
	Error     string `json:"error,omitempty"`
	Injected  string `json:"injected,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// ChipInfo describes the augmented architecture.
type ChipInfo struct {
	Name           string      `json:"name"`
	GridW          int         `json:"grid_w"`
	GridH          int         `json:"grid_h"`
	Devices        []Device    `json:"devices"`
	Ports          []Port      `json:"ports"`
	OriginalValves int         `json:"original_valves"`
	DFTValves      []ValveInfo `json:"dft_valves"`
}

// Device is one functional unit.
type Device struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// Port is one external port.
type Port struct {
	Name string `json:"name"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// ValveInfo locates a valve's channel segment on the grid.
type ValveInfo struct {
	ID int `json:"id"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
	X2 int `json:"x2"`
	Y2 int `json:"y2"`
}

// TestPorts names the single source and meter.
type TestPorts struct {
	Source string `json:"source"`
	Meter  string `json:"meter"`
}

// SharePair records one control-line sharing. OriginalValve is -1 when the
// DFT valve received its own control line (partial-sharing fallback).
type SharePair struct {
	DFTValve      int `json:"dft_valve"`
	OriginalValve int `json:"original_valve"`
}

// TestVector is one vector of the test program. For kind "path" the listed
// valves are driven open (all others closed); for kind "cut" they are
// driven closed (all others open).
type TestVector struct {
	Kind         string `json:"kind"`
	Valves       []int  `json:"valves"`
	ExpectsFlow  bool   `json:"expect_meter_pressure"`
	DetectsFault string `json:"detects"`
}

// Execution compares the schedule lengths.
type Execution struct {
	Original       int `json:"original"`
	DFTNoPSO       int `json:"dft_without_pso"`
	DFTPSO         int `json:"dft_with_pso"`
	DFTIndependent int `json:"dft_independent_control"`
}

// Build assembles the document from a flow result.
func Build(res *core.Result) Document {
	c := res.Aug.Chip
	doc := Document{
		Chip: ChipInfo{
			Name:           c.Name,
			GridW:          c.Grid.W,
			GridH:          c.Grid.H,
			OriginalValves: c.NumOriginalValves(),
		},
		TestPorts: TestPorts{
			Source: c.Ports[res.Aug.Source].Name,
			Meter:  c.Ports[res.Aug.Meter].Name,
		},
		Execution: Execution{
			Original:       res.ExecOriginal,
			DFTNoPSO:       res.ExecNoPSO,
			DFTPSO:         res.ExecPSO,
			DFTIndependent: res.ExecIndependent,
		},
		RuntimeMS: res.Runtime.Milliseconds(),
		Solver: SolverInfo{
			Tier:         res.Solve.Tier,
			TierName:     res.Solve.Name,
			Reason:       string(res.Solve.Reason),
			Degraded:     res.Solve.Degraded,
			Interrupted:  res.Interrupted,
			CoverageFull: res.CoverageFull,
		},
	}
	if l := res.Leakage; l != nil {
		doc.Leakage = &LeakageInfo{
			Examined:     l.Examined,
			Detectable:   l.Detectable,
			Undetectable: append([]int(nil), l.Undetectable...),
			Vectors:      l.Vectors,
			Solves:       l.Solves.Solves,
			WarmSolves:   l.Solves.Warm,
		}
	}
	if d := res.Diagnosis; d != nil {
		doc.Diagnosis = &DiagnosisInfo{
			Faults:            d.Faults,
			Localized:         d.Localized,
			ExhaustiveVectors: d.ExhaustiveVectors,
			TotalVectors:      d.TotalVectors,
			MaxVectors:        d.MaxVectors,
			MeanVectors:       d.MeanVectors,
			MaxSuspects:       d.MaxSuspects,
			MeanSuspects:      d.MeanSuspects,
			Degraded:          d.Degraded,
		}
	}
	if r := res.Reconfiguration; r != nil {
		doc.Reconfiguration = &ReconfigInfo{
			SuspectSets: r.SuspectSets,
			Groups:      r.Groups,
			Feasible:    r.Feasible,
			Infeasible:  r.Infeasible,
			Failed:      r.Failed,
			Relaxed:     r.Relaxed,
			Degraded:    r.Degraded,
			Baseline:    r.Baseline,
			MaxPenalty:  r.MaxPenalty,
			MeanPenalty: r.MeanPenalty,
		}
	}
	for _, a := range res.Solve.Attempts {
		doc.Solver.Attempts = append(doc.Solver.Attempts, SolverAttempt{
			Tier:      a.Tier,
			Name:      a.Name,
			Reason:    string(a.Reason),
			Error:     a.Error,
			Injected:  string(a.Injected),
			ElapsedMS: a.Elapsed.Milliseconds(),
		})
	}
	for _, d := range c.Devices {
		pos := c.Grid.CoordOf(d.Node)
		doc.Chip.Devices = append(doc.Chip.Devices, Device{Name: d.Name, Kind: d.Kind.String(), X: pos.X, Y: pos.Y})
	}
	for _, p := range c.Ports {
		pos := c.Grid.CoordOf(p.Node)
		doc.Chip.Ports = append(doc.Chip.Ports, Port{Name: p.Name, X: pos.X, Y: pos.Y})
	}
	for _, v := range c.Valves() {
		if !v.DFT {
			continue
		}
		a, b := c.Grid.EdgeEndpoints(v.Edge)
		doc.Chip.DFTValves = append(doc.Chip.DFTValves, ValveInfo{ID: v.ID, X1: a.X, Y1: a.Y, X2: b.X, Y2: b.Y})
	}
	for i, p := range res.Partners {
		doc.Sharing = append(doc.Sharing, SharePair{DFTValve: c.NumOriginalValves() + i, OriginalValve: p})
	}
	for _, v := range res.PathVectors {
		doc.PathVectors = append(doc.PathVectors, vectorJSON(v))
	}
	for _, v := range res.CutVectors {
		doc.CutVectors = append(doc.CutVectors, vectorJSON(v))
	}
	return doc
}

func vectorJSON(v fault.Vector) TestVector {
	out := TestVector{Valves: append([]int(nil), v.Valves...)}
	if v.Kind == fault.PathVector {
		out.Kind = "path"
		out.ExpectsFlow = true
		out.DetectsFault = "stuck-at-0 on listed valves"
	} else {
		out.Kind = "cut"
		out.ExpectsFlow = false
		out.DetectsFault = "stuck-at-1 on listed valves"
	}
	return out
}

// WriteJSON writes the document as indented JSON.
func WriteJSON(w io.Writer, res *core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Build(res))
}

// Summary writes a one-paragraph human summary.
func Summary(w io.Writer, res *core.Result) {
	c := res.Aug.Chip
	fmt.Fprintf(w, "%s: +%d DFT valves (%d sharing control lines), test with source %s and meter %s using %d vectors; execution %d s -> %d s (original -> DFT+PSO), flow runtime %v\n",
		c.Name, res.NumDFTValves, res.NumShared,
		c.Ports[res.Aug.Source].Name, c.Ports[res.Aug.Meter].Name,
		res.NumTestVectors, res.ExecOriginal, res.ExecPSO, res.Runtime)
	if d := res.Diagnosis; d != nil {
		fmt.Fprintf(w, "diagnosis: %d/%d faults localized, %.1f vectors/fault mean (max %d, exhaustive %d), %.2f suspects/fault mean\n",
			d.Localized, d.Faults, d.MeanVectors, d.MaxVectors, d.ExhaustiveVectors, d.MeanSuspects)
	}
	if r := res.Reconfiguration; r != nil {
		fmt.Fprintf(w, "reconfiguration: %d/%d ban groups feasible (%d infeasible, %d relaxed), penalty mean %.1f s / max %d s over baseline %d s\n",
			r.Feasible, r.Groups, r.Infeasible, r.Relaxed, r.MeanPenalty, r.MaxPenalty, r.Baseline)
	}
}

// Decode parses a JSON document (for tooling round-trips).
func Decode(r io.Reader) (Document, error) {
	var doc Document
	err := json.NewDecoder(r).Decode(&doc)
	return doc, err
}

// Validate sanity-checks a decoded document.
func (d Document) Validate() error {
	if d.Chip.Name == "" {
		return fmt.Errorf("report: missing chip name")
	}
	if d.TestPorts.Source == "" || d.TestPorts.Meter == "" {
		return fmt.Errorf("report: missing test ports")
	}
	if len(d.Sharing) != len(d.Chip.DFTValves) {
		return fmt.Errorf("report: %d sharing pairs for %d DFT valves", len(d.Sharing), len(d.Chip.DFTValves))
	}
	if len(d.PathVectors) == 0 {
		return fmt.Errorf("report: empty test program")
	}
	// Degraded repair-tier results may lack a complete stuck-at-1 cover;
	// a full-coverage document must have cut vectors.
	if len(d.CutVectors) == 0 && d.Solver.CoverageFull {
		return fmt.Errorf("report: empty cut-vector set in a full-coverage test program")
	}
	for _, v := range d.PathVectors {
		if v.Kind != "path" || !v.ExpectsFlow {
			return fmt.Errorf("report: malformed path vector")
		}
	}
	for _, v := range d.CutVectors {
		if v.Kind != "cut" || v.ExpectsFlow {
			return fmt.Errorf("report: malformed cut vector")
		}
	}
	return nil
}
