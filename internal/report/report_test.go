package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/pso"
)

func flowResult(t *testing.T) *core.Result {
	t.Helper()
	res, err := core.RunDFTFlow(chip.IVD(), assay.IVD(), core.Options{
		Outer: pso.Config{Particles: 3, Iterations: 4},
		Inner: pso.Config{Particles: 3, Iterations: 4},
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildDocument(t *testing.T) {
	res := flowResult(t)
	doc := Build(res)
	if doc.Chip.Name != "IVD_chip" {
		t.Fatalf("chip name %q", doc.Chip.Name)
	}
	if doc.Chip.OriginalValves != 12 {
		t.Fatalf("original valves %d", doc.Chip.OriginalValves)
	}
	if len(doc.Chip.DFTValves) != res.NumDFTValves {
		t.Fatalf("dft valves %d vs %d", len(doc.Chip.DFTValves), res.NumDFTValves)
	}
	if len(doc.Sharing) != res.NumDFTValves {
		t.Fatalf("sharing pairs %d", len(doc.Sharing))
	}
	if len(doc.PathVectors)+len(doc.CutVectors) != res.NumTestVectors {
		t.Fatal("vector counts mismatch")
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := flowResult(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"valve_sharing"`) {
		t.Fatal("JSON missing valve_sharing key")
	}
	doc, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Execution.DFTPSO != res.ExecPSO {
		t.Fatalf("exec round trip: %d vs %d", doc.Execution.DFTPSO, res.ExecPSO)
	}
	if doc.TestPorts.Source == doc.TestPorts.Meter {
		t.Fatal("source and meter must differ")
	}
}

func TestSummaryMentionsKeyNumbers(t *testing.T) {
	res := flowResult(t)
	var buf bytes.Buffer
	Summary(&buf, res)
	s := buf.String()
	if !strings.Contains(s, "IVD_chip") || !strings.Contains(s, "DFT valves") {
		t.Fatalf("summary %q", s)
	}
}

// A flow run with diagnosis and reconfiguration enabled must surface
// both blocks in the document and the summary; without the options the
// keys are omitted entirely.
func TestDiagnosisBlocksRoundTrip(t *testing.T) {
	res, err := core.RunDFTFlow(chip.IVD(), assay.IVD(), core.Options{
		Outer:       pso.Config{Particles: 3, Iterations: 4},
		Inner:       pso.Config{Particles: 3, Iterations: 4},
		Seed:        11,
		Diagnose:    true,
		Reconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnosis"`) || !strings.Contains(buf.String(), `"reconfiguration"`) {
		t.Fatal("JSON missing diagnosis/reconfiguration blocks")
	}
	doc, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Diagnosis == nil || doc.Diagnosis.Faults != res.Diagnosis.Faults ||
		doc.Diagnosis.Localized != res.Diagnosis.Localized {
		t.Fatalf("diagnosis round trip: %+v vs %+v", doc.Diagnosis, res.Diagnosis)
	}
	if doc.Reconfiguration == nil || doc.Reconfiguration.Groups != res.Reconfiguration.Groups ||
		doc.Reconfiguration.Feasible != res.Reconfiguration.Feasible {
		t.Fatalf("reconfiguration round trip: %+v vs %+v", doc.Reconfiguration, res.Reconfiguration)
	}
	var sum bytes.Buffer
	Summary(&sum, res)
	if !strings.Contains(sum.String(), "diagnosis:") || !strings.Contains(sum.String(), "reconfiguration:") {
		t.Fatalf("summary missing diagnosis lines: %q", sum.String())
	}

	// Without the options the keys must be absent.
	plain := flowResult(t)
	buf.Reset()
	if err := WriteJSON(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"diagnosis"`) || strings.Contains(buf.String(), `"reconfiguration"`) {
		t.Fatal("optional blocks present without the options")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	res := flowResult(t)
	doc := Build(res)
	bad := doc
	bad.Chip.Name = ""
	if bad.Validate() == nil {
		t.Fatal("missing name must fail")
	}
	bad = doc
	bad.Sharing = doc.Sharing[:0]
	if len(doc.Chip.DFTValves) > 0 && bad.Validate() == nil {
		t.Fatal("sharing/valve mismatch must fail")
	}
	bad = doc
	bad.PathVectors = nil
	if bad.Validate() == nil {
		t.Fatal("empty program must fail")
	}
	bad = Build(res)
	bad.PathVectors[0].Kind = "cut"
	if bad.Validate() == nil {
		t.Fatal("malformed path vector must fail")
	}
	bad = Build(res)
	bad.CutVectors[0].ExpectsFlow = true
	if bad.Validate() == nil {
		t.Fatal("malformed cut vector must fail")
	}
	bad = Build(res)
	bad.TestPorts.Meter = ""
	if bad.Validate() == nil {
		t.Fatal("missing meter must fail")
	}
}
