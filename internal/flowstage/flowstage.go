// Package flowstage turns a multi-phase solver flow into an explicit,
// instrumented stage pipeline. A Stage is a named unit of work with a
// typed artifact handoff (see Artifact); a Pipeline runs the stages in
// order, times each one, and reports per-stage statistics (solver
// iterations, cache hit rates, arbitrary counters) through an Observer.
//
// The pipeline deliberately does NOT abort between stages when the
// context expires: graceful-degradation flows (an interrupted search must
// still finalize its best-so-far result) own their cancellation semantics
// inside each stage. A stage that wants to stop the pipeline returns an
// error.
package flowstage

import (
	"context"
	"fmt"
	"time"
)

// StageStats is the per-stage breakdown a Pipeline run produces: where
// wall-clock, solver iterations and cache traffic went.
type StageStats struct {
	// Name is the stage's name.
	Name string `json:"name"`
	// Duration is the stage's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// SolverIters counts solver iteration ticks attributed to the stage
	// (PSO iterations at every level, for the DFT flow).
	SolverIters int64 `json:"solver_iterations"`
	// CacheHits and CacheMisses aggregate every cache the stage touched;
	// Counters breaks them down per cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Counters holds named stage-specific counters (ban rounds, ILP
	// nodes, chain attempts, per-cache hit/miss detail).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Err is the stage's error message when it failed, "" otherwise.
	Err string `json:"error,omitempty"`
}

// Count adds delta to the named counter.
func (s *StageStats) Count(name string, delta int64) {
	if delta == 0 {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	s.Counters[name] += delta
}

// Counter returns the named counter's value (0 when never counted).
func (s *StageStats) Counter(name string) int64 { return s.Counters[name] }

// CacheHitRate returns hits/(hits+misses), or 0 when the stage touched no
// cache.
func (s *StageStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stats is the whole pipeline's breakdown.
type Stats struct {
	// Total is the pipeline's wall-clock time. Callers that wrap the
	// pipeline in additional work (input validation, result decoration)
	// may overwrite it with the full operation's duration; StageSum then
	// tells how much of it the stages account for.
	Total time.Duration `json:"total_ns"`
	// Stages lists every stage that ran, in execution order.
	Stages []StageStats `json:"stages"`
}

// StageSum returns the sum of all stage durations. For a healthy pipeline
// it accounts for nearly all of Total — the difference is inter-stage
// glue.
func (s *Stats) StageSum() time.Duration {
	var sum time.Duration
	for i := range s.Stages {
		sum += s.Stages[i].Duration
	}
	return sum
}

// Stage returns the named stage's stats, or nil when it never ran.
func (s *Stats) Stage(name string) *StageStats {
	for i := range s.Stages {
		if s.Stages[i].Name == name {
			return &s.Stages[i]
		}
	}
	return nil
}

// Stage is one named unit of a pipeline. Run receives the pipeline
// context and the stage's stats sink; it reads and writes artifacts
// through whatever state it closes over (see Artifact for the typed
// handoff helper).
type Stage struct {
	Name string
	Run  func(ctx context.Context, st *StageStats) error
}

// Artifact is a typed slot for a stage handoff: an upstream stage fills
// it with Set, a downstream stage reads it with Get. Get panics when the
// artifact was never produced — that is a pipeline wiring bug, not a
// runtime condition.
type Artifact[T any] struct {
	value T
	set   bool
}

// Set stores the artifact value.
func (a *Artifact[T]) Set(v T) { a.value, a.set = v, true }

// Get returns the artifact value; it panics when no stage has Set it.
func (a *Artifact[T]) Get() T {
	if !a.set {
		panic("flowstage: artifact read before any stage produced it")
	}
	return a.value
}

// OK reports whether the artifact has been produced.
func (a *Artifact[T]) OK() bool { return a.set }

// Pipeline runs stages in order, recording per-stage stats and reporting
// progress to the Observer (nil = no observation).
type Pipeline struct {
	Stages   []Stage
	Observer Observer
}

// Run executes the stages sequentially. The first stage error stops the
// pipeline and is returned verbatim (it is not wrapped, so errors.Is/As
// on domain sentinels keep working); the returned Stats always describe
// every stage that ran, including the failing one. The context is handed
// to each stage but never checked between stages — degradation semantics
// (an interrupted search must still finalize) belong to the stages.
func (p *Pipeline) Run(ctx context.Context) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	obs := OrNop(p.Observer)
	stats := &Stats{}
	start := time.Now()
	for _, stage := range p.Stages {
		if stage.Run == nil {
			return stats, fmt.Errorf("flowstage: stage %q has no Run function", stage.Name)
		}
		obs.StageStart(stage.Name)
		st := StageStats{Name: stage.Name}
		t0 := time.Now()
		err := stage.Run(ctx, &st)
		st.Duration = time.Since(t0)
		if err != nil {
			st.Err = err.Error()
		}
		obs.StageEnd(stage.Name, st)
		stats.Stages = append(stats.Stages, st)
		if err != nil {
			stats.Total = time.Since(start)
			return stats, err
		}
	}
	stats.Total = time.Since(start)
	return stats, nil
}
