package flowstage

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestPipelineRunsStagesInOrder(t *testing.T) {
	var order []string
	rec := &Recorder{}
	p := &Pipeline{
		Observer: rec,
		Stages: []Stage{
			{Name: "a", Run: func(ctx context.Context, st *StageStats) error {
				order = append(order, "a")
				st.Count("widgets", 3)
				return nil
			}},
			{Name: "b", Run: func(ctx context.Context, st *StageStats) error {
				order = append(order, "b")
				return nil
			}},
		},
	}
	stats, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("stage order = %v, want %v", order, want)
	}
	if want := []string{"start:a", "end:a", "start:b", "end:b"}; !reflect.DeepEqual(rec.Events(), want) {
		t.Fatalf("observer events = %v, want %v", rec.Events(), want)
	}
	if len(stats.Stages) != 2 {
		t.Fatalf("got %d stage stats, want 2", len(stats.Stages))
	}
	if got := stats.Stage("a").Counter("widgets"); got != 3 {
		t.Fatalf("widgets counter = %d, want 3", got)
	}
	if stats.Stage("nope") != nil {
		t.Fatal("Stage(unknown) should be nil")
	}
	if stats.StageSum() > stats.Total {
		t.Fatalf("StageSum %v exceeds Total %v", stats.StageSum(), stats.Total)
	}
}

func TestPipelineStopsOnErrorVerbatim(t *testing.T) {
	sentinel := errors.New("boom")
	ran := false
	p := &Pipeline{Stages: []Stage{
		{Name: "fail", Run: func(ctx context.Context, st *StageStats) error { return sentinel }},
		{Name: "after", Run: func(ctx context.Context, st *StageStats) error { ran = true; return nil }},
	}}
	stats, err := p.Run(context.Background())
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel verbatim", err)
	}
	if ran {
		t.Fatal("stage after the failure ran")
	}
	if len(stats.Stages) != 1 || stats.Stages[0].Err != "boom" {
		t.Fatalf("failing stage stats not recorded: %+v", stats.Stages)
	}
}

func TestPipelineDoesNotAbortOnExpiredContext(t *testing.T) {
	// Degradation semantics: stages own cancellation; the pipeline keeps
	// running remaining stages even when the context is already dead.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	p := &Pipeline{Stages: []Stage{
		{Name: "a", Run: func(ctx context.Context, st *StageStats) error { ran++; return nil }},
		{Name: "b", Run: func(ctx context.Context, st *StageStats) error { ran++; return nil }},
	}}
	if _, err := p.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d stages under a cancelled context, want 2", ran)
	}
}

func TestPipelineNilRun(t *testing.T) {
	p := &Pipeline{Stages: []Stage{{Name: "hole"}}}
	if _, err := p.Run(nil); err == nil {
		t.Fatal("want error for a stage without Run")
	}
}

func TestArtifactPanicsBeforeSet(t *testing.T) {
	var a Artifact[int]
	if a.OK() {
		t.Fatal("OK before Set")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get before Set did not panic")
		}
	}()
	a.Get()
}

func TestArtifactRoundTrip(t *testing.T) {
	var a Artifact[string]
	a.Set("x")
	if !a.OK() || a.Get() != "x" {
		t.Fatalf("round trip failed: ok=%v get=%q", a.OK(), a.Get())
	}
}

func TestStageStatsHelpers(t *testing.T) {
	st := StageStats{}
	if st.CacheHitRate() != 0 {
		t.Fatal("hit rate of untouched cache should be 0")
	}
	st.CacheHits, st.CacheMisses = 3, 1
	if got := st.CacheHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
	st.Count("x", 0) // zero deltas are dropped
	if st.Counters != nil {
		t.Fatal("zero delta allocated the counter map")
	}
	st.Count("x", 2)
	st.Count("x", 2)
	if st.Counter("x") != 4 {
		t.Fatalf("counter = %d, want 4", st.Counter("x"))
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	m := Multi{a, b}
	m.StageStart("s")
	m.SolverTick("s", 1, 2.5)
	m.ChainAttempt("s", 0, "exact", "timeout", time.Millisecond)
	m.ILPAttempt("s", 2, 10, 1)
	m.CacheDelta("s", "memo", 5, 1)
	m.StageEnd("s", StageStats{Name: "s"})
	want := []string{"start:s", "tick:s:1", "chain:s:0:exact:timeout", "ilp:s:p2:n10", "cache:s:memo:5/1", "end:s"}
	if !reflect.DeepEqual(a.Events(), want) || !reflect.DeepEqual(b.Events(), want) {
		t.Fatalf("fan-out mismatch:\n a=%v\n b=%v\n want=%v", a.Events(), b.Events(), want)
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) should be Nop")
	}
	r := &Recorder{}
	if OrNop(r) != Observer(r) {
		t.Fatal("OrNop should pass a non-nil observer through")
	}
}
