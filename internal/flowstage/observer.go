package flowstage

import (
	"fmt"
	"sync"
	"time"
)

// Observer receives pipeline progress events. Implementations must be
// cheap and must not block: events fire from solver hot loops. During
// search stages events may be emitted from PSO worker goroutines, but
// the flow serializes every call behind one mutex — an Observer never
// sees two calls running concurrently and never sees an event for a
// stage after that stage's StageEnd.
//
// The event vocabulary mirrors what the DFT flow can say about itself:
//
//   - StageStart/StageEnd bracket each pipeline stage; StageEnd carries
//     the stage's final stats (duration, iterations, cache traffic).
//   - SolverTick fires once per search iteration (outer and inner PSO)
//     with the global-best fitness so far.
//   - ChainAttempt fires once per degradation-chain tier attempt
//     (exact → heuristic → repair) with the attempt's outcome.
//   - ILPAttempt fires once per ILP |P|-iteration with branch-and-bound
//     node and lazy-cut counts. The parallel-search statistics of those
//     solves (worker count, steals, idle waits, requeues) arrive as
//     ilp_* stage counters in the StageStats passed to StageEnd.
//   - CacheDelta fires at stage end, once per cache the stage touched.
type Observer interface {
	StageStart(stage string)
	StageEnd(stage string, stats StageStats)
	SolverTick(stage string, iteration int, best float64)
	ChainAttempt(stage string, tier int, tierName string, reason string, elapsed time.Duration)
	ILPAttempt(stage string, paths, nodes, lazyCuts int)
	CacheDelta(stage string, cache string, hits, misses int64)
}

// Nop is the no-op Observer.
type Nop struct{}

func (Nop) StageStart(string)                                       {}
func (Nop) StageEnd(string, StageStats)                             {}
func (Nop) SolverTick(string, int, float64)                         {}
func (Nop) ChainAttempt(string, int, string, string, time.Duration) {}
func (Nop) ILPAttempt(string, int, int, int)                        {}
func (Nop) CacheDelta(string, string, int64, int64)                 {}

// OrNop returns o, or a Nop observer when o is nil, so callers never need
// a nil check before emitting an event.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop{}
	}
	return o
}

// Multi fans every event out to several observers, in order.
type Multi []Observer

func (m Multi) StageStart(stage string) {
	for _, o := range m {
		o.StageStart(stage)
	}
}

func (m Multi) StageEnd(stage string, stats StageStats) {
	for _, o := range m {
		o.StageEnd(stage, stats)
	}
}

func (m Multi) SolverTick(stage string, iteration int, best float64) {
	for _, o := range m {
		o.SolverTick(stage, iteration, best)
	}
}

func (m Multi) ChainAttempt(stage string, tier int, tierName string, reason string, elapsed time.Duration) {
	for _, o := range m {
		o.ChainAttempt(stage, tier, tierName, reason, elapsed)
	}
}

func (m Multi) ILPAttempt(stage string, paths, nodes, lazyCuts int) {
	for _, o := range m {
		o.ILPAttempt(stage, paths, nodes, lazyCuts)
	}
}

func (m Multi) CacheDelta(stage string, cache string, hits, misses int64) {
	for _, o := range m {
		o.CacheDelta(stage, cache, hits, misses)
	}
}

// Recorder is an Observer that records a compact textual event log, for
// tests (event-ordering assertions) and debugging. Safe for concurrent
// use.
type Recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *Recorder) record(e string) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the log so far.
func (r *Recorder) Events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *Recorder) StageStart(stage string) { r.record("start:" + stage) }

func (r *Recorder) StageEnd(stage string, stats StageStats) {
	r.record("end:" + stage)
}

func (r *Recorder) SolverTick(stage string, iteration int, best float64) {
	r.record(fmt.Sprintf("tick:%s:%d", stage, iteration))
}

func (r *Recorder) ChainAttempt(stage string, tier int, tierName string, reason string, elapsed time.Duration) {
	r.record(fmt.Sprintf("chain:%s:%d:%s:%s", stage, tier, tierName, reason))
}

func (r *Recorder) ILPAttempt(stage string, paths, nodes, lazyCuts int) {
	r.record(fmt.Sprintf("ilp:%s:p%d:n%d", stage, paths, nodes))
}

func (r *Recorder) CacheDelta(stage string, cache string, hits, misses int64) {
	r.record(fmt.Sprintf("cache:%s:%s:%d/%d", stage, cache, hits, misses))
}
