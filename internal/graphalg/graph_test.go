package graphalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// grid builds a w×h grid graph and returns it plus a node indexer.
func grid(w, h int) (*Graph, func(x, y int) int) {
	g := NewGraph(w * h)
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(at(x, y), at(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(at(x, y), at(x, y+1))
			}
		}
	}
	return g, at
}

func TestAddEdgeEndpoints(t *testing.T) {
	g := NewGraph(3)
	id := g.AddEdge(0, 2)
	u, v := g.Endpoints(id)
	if u != 0 || v != 2 {
		t.Fatalf("Endpoints(%d) = (%d,%d), want (0,2)", id, u, v)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(1)
	id := g.AddNode()
	if id != 1 || g.NumNodes() != 2 {
		t.Fatalf("AddNode = %d, NumNodes = %d; want 1, 2", id, g.NumNodes())
	}
	g.AddEdge(0, 1)
	if !g.Reachable(0, 1, nil) {
		t.Fatal("new node should be reachable after AddEdge")
	}
}

func TestDegreeAndDeletion(t *testing.T) {
	g := NewGraph(3)
	e01 := g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := g.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d, want 2", got)
	}
	g.DeleteEdge(e01)
	if got := g.Degree(1); got != 1 {
		t.Fatalf("Degree(1) after delete = %d, want 1", got)
	}
	if g.Reachable(0, 2, nil) {
		t.Fatal("0 should not reach 2 after deleting edge 0-1")
	}
	g.RestoreEdge(e01)
	if !g.Reachable(0, 2, nil) {
		t.Fatal("0 should reach 2 after restore")
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g := NewGraph(1)
	g.AddEdge(0, 0)
	if got := g.Degree(0); got != 1 {
		t.Fatalf("self-loop Degree = %d, want 1", got)
	}
}

func TestBFSDistancesOnGrid(t *testing.T) {
	g, at := grid(4, 4)
	dist := g.BFSFrom(at(0, 0), nil)
	if dist[at(3, 3)] != 6 {
		t.Fatalf("dist corner-to-corner = %d, want 6", dist[at(3, 3)])
	}
	if dist[at(2, 1)] != 3 {
		t.Fatalf("dist to (2,1) = %d, want 3", dist[at(2, 1)])
	}
}

func TestBFSAllowFilter(t *testing.T) {
	g := NewGraph(3)
	e01 := g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	dist := g.BFSFrom(0, func(e int) bool { return e != e01 })
	if dist[1] != -1 || dist[2] != -1 {
		t.Fatalf("allow filter not honored: dist = %v", dist)
	}
}

func TestShortestPathFormsValidWalk(t *testing.T) {
	g, at := grid(5, 5)
	nodes, edges, ok := g.ShortestPath(at(0, 0), at(4, 4), nil)
	if !ok {
		t.Fatal("path should exist")
	}
	if len(nodes) != len(edges)+1 {
		t.Fatalf("len(nodes)=%d len(edges)=%d", len(nodes), len(edges))
	}
	if len(edges) != 8 {
		t.Fatalf("shortest path length = %d, want 8", len(edges))
	}
	for i, e := range edges {
		u, v := g.Endpoints(e)
		a, b := nodes[i], nodes[i+1]
		if !(u == a && v == b || u == b && v == a) {
			t.Fatalf("edge %d does not connect consecutive path nodes", e)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, _, ok := g.ShortestPath(0, 3, nil); ok {
		t.Fatal("0 and 3 are in different components; path must not exist")
	}
}

func TestShortestPathTrivial(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	nodes, edges, ok := g.ShortestPath(0, 0, nil)
	if !ok || len(nodes) != 1 || len(edges) != 0 {
		t.Fatalf("src==dst path: nodes=%v edges=%v ok=%v", nodes, edges, ok)
	}
}

func TestWeightedShortestPathPrefersLightEdges(t *testing.T) {
	// Triangle: 0-1 (w=10), 0-2 (w=1), 2-1 (w=1). Shortest 0->1 is via 2.
	g := NewGraph(3)
	e01 := g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	w := func(e int) float64 {
		if e == e01 {
			return 10
		}
		return 1
	}
	nodes, _, total, ok := g.WeightedShortestPath(0, 1, w)
	if !ok || total != 2 {
		t.Fatalf("total = %v, ok = %v; want 2, true", total, ok)
	}
	if len(nodes) != 3 || nodes[1] != 2 {
		t.Fatalf("path nodes = %v, want [0 2 1]", nodes)
	}
}

func TestWeightedShortestPathForbiddenEdge(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	_, _, _, ok := g.WeightedShortestPath(0, 1, func(int) float64 { return -1 })
	if ok {
		t.Fatal("all edges forbidden: no path should be found")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	labels, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[3] != labels[4] || labels[0] == labels[3] || labels[2] == labels[0] {
		t.Fatalf("bad labels: %v", labels)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1)
	c := g.Clone()
	c.DeleteEdge(e)
	if g.EdgeDeleted(e) {
		t.Fatal("deleting in clone must not affect original")
	}
	if !c.EdgeDeleted(e) {
		t.Fatal("clone deletion lost")
	}
}

func TestIncidentEdgesSorted(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	got := g.IncidentEdges(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("IncidentEdges(0) = %v", got)
	}
}

func TestEdgeSubgraphComponents(t *testing.T) {
	g, at := grid(4, 1) // path 0-1-2-3
	// Edges: 0:(0,1) 1:(1,2) 2:(2,3)
	comps := g.EdgeSubgraphComponents([]int{0, 2})
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (%v)", len(comps), comps)
	}
	_ = at
}

func TestPathDecompositionSeparatesCycle(t *testing.T) {
	// Path 0-1-2 plus disjoint triangle 3-4-5.
	g := NewGraph(6)
	p0 := g.AddEdge(0, 1)
	p1 := g.AddEdge(1, 2)
	c0 := g.AddEdge(3, 4)
	c1 := g.AddEdge(4, 5)
	c2 := g.AddEdge(5, 3)
	main, extras, ok := g.PathDecomposition(0, 2, []int{p0, p1, c0, c1, c2})
	if !ok {
		t.Fatal("main path should be found")
	}
	if len(main) != 2 || main[0] != p0 || main[1] != p1 {
		t.Fatalf("main = %v, want [%d %d]", main, p0, p1)
	}
	if len(extras) != 1 || len(extras[0]) != 3 {
		t.Fatalf("extras = %v, want one 3-edge cycle", extras)
	}
}

func TestPathDecompositionNoConnection(t *testing.T) {
	g := NewGraph(4)
	e := g.AddEdge(2, 3)
	_, extras, ok := g.PathDecomposition(0, 1, []int{e})
	if ok {
		t.Fatal("no component touches both s and t")
	}
	if len(extras) != 1 {
		t.Fatalf("extras = %v", extras)
	}
}

func TestIsSimplePath(t *testing.T) {
	g := NewGraph(5)
	e0 := g.AddEdge(0, 1)
	e1 := g.AddEdge(1, 2)
	e2 := g.AddEdge(2, 3)
	branch := g.AddEdge(1, 4)
	if !g.IsSimplePath(0, 3, []int{e0, e1, e2}) {
		t.Fatal("0-1-2-3 is a simple path")
	}
	if g.IsSimplePath(0, 3, []int{e0, e1, e2, branch}) {
		t.Fatal("branching edge set is not a simple path")
	}
	if g.IsSimplePath(0, 3, nil) {
		t.Fatal("empty edge set is not a path")
	}
	if g.IsSimplePath(0, 2, []int{e0, e2}) {
		t.Fatal("disconnected edge set is not a path")
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Two disjoint unit paths s(0) -> t(3).
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 1, -1)
	f.AddArc(1, 3, 1, -1)
	f.AddArc(0, 2, 1, -1)
	f.AddArc(2, 3, 1, -1)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Fatalf("MaxFlow = %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddArc(0, 1, 5, -1)
	f.AddArc(1, 2, 2, -1)
	if got := f.MaxFlow(0, 2); got != 2 {
		t.Fatalf("MaxFlow = %d, want 2", got)
	}
}

func TestMinEdgeCutOnGrid(t *testing.T) {
	g, at := grid(3, 3)
	cut, size := MinEdgeCut(g, at(0, 0), at(2, 2), nil)
	if size != 2 {
		t.Fatalf("corner min cut = %d, want 2", size)
	}
	if len(cut) != 2 {
		t.Fatalf("cut edges = %v, want 2 edges", cut)
	}
	// Removing the cut must disconnect.
	inCut := make(map[int]bool)
	for _, e := range cut {
		inCut[e] = true
	}
	if g.Reachable(at(0, 0), at(2, 2), func(e int) bool { return !inCut[e] }) {
		t.Fatal("cut does not disconnect s from t")
	}
}

func TestMinEdgeCutThroughContainsEdge(t *testing.T) {
	g, at := grid(3, 3)
	// Force the middle horizontal edge through the cut.
	var mid int = -1
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(e)
		if (u == at(1, 1) && v == at(2, 1)) || (u == at(2, 1) && v == at(1, 1)) {
			mid = e
		}
	}
	if mid < 0 {
		t.Fatal("middle edge not found")
	}
	cut, ok := MinEdgeCutThrough(g, at(0, 0), at(2, 2), mid, nil)
	if !ok {
		t.Fatal("cut should exist")
	}
	found := false
	inCut := make(map[int]bool)
	for _, e := range cut {
		inCut[e] = true
		if e == mid {
			found = true
		}
	}
	if !found {
		t.Fatalf("cut %v does not contain forced edge %d", cut, mid)
	}
	if g.Reachable(at(0, 0), at(2, 2), func(e int) bool { return !inCut[e] }) {
		t.Fatal("forced cut does not disconnect s from t")
	}
}

func TestMinEdgeCutThroughDisconnected(t *testing.T) {
	g := NewGraph(4)
	e := g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, ok := MinEdgeCutThrough(g, 0, 3, e, nil); ok {
		t.Fatal("s and t disconnected: must report !ok")
	}
}

// Property: on random connected graphs, removing a min cut always
// disconnects s from t, and the cut size equals max-flow.
func TestMinCutDisconnectsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := NewGraph(n)
		// Spanning chain for connectivity plus random extras.
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i)
		}
		for k := 0; k < n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		s, tt := 0, n-1
		cut, size := MinEdgeCut(g, s, tt, nil)
		if len(cut) == 0 && size > 0 {
			return false
		}
		inCut := make(map[int]bool)
		for _, e := range cut {
			inCut[e] = true
		}
		return !g.Reachable(s, tt, func(e int) bool { return !inCut[e] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance is symmetric on undirected graphs.
func TestBFSSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := NewGraph(n)
		for k := 0; k < 2*n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		a, b := rng.Intn(n), rng.Intn(n)
		return g.BFSFrom(a, nil)[b] == g.BFSFrom(b, nil)[a]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted shortest path total is never below hop count when all
// weights are >= 1.
func TestWeightedAtLeastHopsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := NewGraph(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i)
		}
		for k := 0; k < n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		weights := make([]float64, g.NumEdges())
		for i := range weights {
			weights[i] = 1 + rng.Float64()*4
		}
		_, edges, total, ok := g.WeightedShortestPath(0, n-1, func(e int) float64 { return weights[e] })
		if !ok {
			return false
		}
		return total >= float64(len(edges))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReachableScratch agrees with Reachable on random graphs with
// random deletions and allow filters, across reuse of one Scratch (epoch
// stamping) and graph growth (seen-slice resizing).
func TestReachableScratchEquivalenceProperty(t *testing.T) {
	var s Scratch
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewGraph(n)
		for k := 0; k < 3*n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Intn(4) == 0 {
				g.DeleteEdge(e)
			}
		}
		var allow func(edge int) bool
		if rng.Intn(2) == 0 {
			mask := make([]bool, g.NumEdges())
			for i := range mask {
				mask[i] = rng.Intn(3) > 0
			}
			allow = func(e int) bool { return mask[e] }
		}
		for q := 0; q < 6; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if g.ReachableScratch(&s, a, b, allow) != g.Reachable(a, b, allow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A Scratch must survive being moved to a larger graph mid-life.
func TestReachableScratchGrowth(t *testing.T) {
	var s Scratch
	small, at := grid(3, 3)
	if !small.ReachableScratch(&s, at(0, 0), at(2, 2), nil) {
		t.Fatal("3x3 grid corners must connect")
	}
	big, bat := grid(9, 9)
	if !big.ReachableScratch(&s, bat(0, 0), bat(8, 8), nil) {
		t.Fatal("9x9 grid corners must connect after scratch regrew")
	}
	if small.ReachableScratch(&s, at(0, 0), at(0, 0), nil) != true {
		t.Fatal("src == dst must be reachable")
	}
}
