package graphalg

import (
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random graph with some deleted edges
// so the scratch traversals see the same live-edge filtering the allocating
// ones do.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := NewGraph(n)
	// Spanning chain keeps most nodes reachable.
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		e := g.AddEdge(u, v)
		if rng.Intn(8) == 0 {
			g.DeleteEdge(e)
		}
	}
	return g
}

func TestBFSDistScratchMatchesBFSFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch Scratch
	var dist []int
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, n*2)
		blocked := make(map[int]bool)
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Intn(4) == 0 {
				blocked[e] = true
			}
		}
		allow := func(e int) bool { return !blocked[e] }
		for src := 0; src < n; src += 1 + rng.Intn(3) {
			want := g.BFSFrom(src, allow)
			dist = g.BFSDistScratch(&scratch, dist, src, allow)
			if len(dist) != len(want) {
				t.Fatalf("trial %d src %d: length %d vs %d", trial, src, len(dist), len(want))
			}
			for v := range want {
				if dist[v] != want[v] {
					t.Fatalf("trial %d src %d node %d: scratch %d, alloc %d",
						trial, src, v, dist[v], want[v])
				}
			}
		}
	}
}

func TestWeightedShortestPathScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch PathScratch
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, n*2)
		w := make([]float64, g.NumEdges())
		for e := range w {
			// Mix of unit weights, heavier penalties and forbidden edges —
			// the three weight classes the scheduler produces.
			switch rng.Intn(5) {
			case 0:
				w[e] = -1
			case 1:
				w[e] = 11
			default:
				w[e] = 1
			}
		}
		weight := func(e int) float64 { return w[e] }
		for pair := 0; pair < 12; pair++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			_, wantEdges, wantCost, wantOK := g.WeightedShortestPath(src, dst, weight)
			gotEdges, gotCost, gotOK := g.WeightedShortestPathScratch(&scratch, src, dst, weight)
			if wantOK != gotOK {
				t.Fatalf("trial %d %d->%d: ok %v vs %v", trial, src, dst, gotOK, wantOK)
			}
			if !wantOK {
				continue
			}
			if gotCost != wantCost {
				t.Fatalf("trial %d %d->%d: cost %v vs %v", trial, src, dst, gotCost, wantCost)
			}
			if len(gotEdges) != len(wantEdges) {
				t.Fatalf("trial %d %d->%d: path length %d vs %d", trial, src, dst, len(gotEdges), len(wantEdges))
			}
			for i := range wantEdges {
				if gotEdges[i] != wantEdges[i] {
					t.Fatalf("trial %d %d->%d: edge %d: %d vs %d — tie-breaks diverge",
						trial, src, dst, i, gotEdges[i], wantEdges[i])
				}
			}
		}
	}
}

// TestPathScratchReuseIsClean: a scratch carrying state from a previous
// query on a different graph size must not leak into the next result.
func TestPathScratchReuseIsClean(t *testing.T) {
	var scratch PathScratch
	var bfsScratch Scratch
	var dist []int
	big := randomGraph(rand.New(rand.NewSource(3)), 50, 100)
	unit := func(int) float64 { return 1 }
	all := func(int) bool { return true }
	big.WeightedShortestPathScratch(&scratch, 0, 49, unit)
	dist = big.BFSDistScratch(&bfsScratch, dist, 0, all)

	small := NewGraph(3)
	e0 := small.AddEdge(0, 1)
	e1 := small.AddEdge(1, 2)
	edges, cost, ok := small.WeightedShortestPathScratch(&scratch, 0, 2, unit)
	if !ok || cost != 2 || len(edges) != 2 || edges[0] != e0 || edges[1] != e1 {
		t.Fatalf("stale scratch state: edges=%v cost=%v ok=%v", edges, cost, ok)
	}
	dist = small.BFSDistScratch(&bfsScratch, dist, 2, all)
	if len(dist) != 3 || dist[0] != 2 || dist[1] != 1 || dist[2] != 0 {
		t.Fatalf("stale BFS scratch state: %v", dist)
	}
}
