package graphalg

import "sort"

// FlowNetwork is a directed flow network with integer capacities, used for
// minimum-cut computations in test-cut generation. It implements Dinic's
// algorithm, which is more than fast enough for biochip-sized instances
// (tens of nodes).
type FlowNetwork struct {
	n    int
	head [][]int // head[u] = indices into arcs
	arcs []flowArc
}

type flowArc struct {
	to, rev int // rev = index of reverse arc in arcs
	cap     int
	tag     int // caller tag (e.g. valve ID); -1 for plumbing arcs
}

// NewFlowNetwork returns a flow network with n nodes.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{n: n, head: make([][]int, n)}
}

// AddNode appends a node and returns its ID.
func (f *FlowNetwork) AddNode() int {
	f.head = append(f.head, nil)
	f.n++
	return f.n - 1
}

// NumNodes returns the node count.
func (f *FlowNetwork) NumNodes() int { return f.n }

// AddArc adds a directed arc u->v with the given capacity and caller tag.
// A residual arc with zero capacity is added automatically.
func (f *FlowNetwork) AddArc(u, v, capacity, tag int) {
	f.head[u] = append(f.head[u], len(f.arcs))
	f.arcs = append(f.arcs, flowArc{to: v, rev: len(f.arcs) + 1, cap: capacity, tag: tag})
	f.head[v] = append(f.head[v], len(f.arcs))
	f.arcs = append(f.arcs, flowArc{to: u, rev: len(f.arcs) - 1, cap: 0, tag: -1})
}

// MaxFlow computes the maximum s-t flow (Dinic). It mutates residual
// capacities; call on a fresh network per query.
func (f *FlowNetwork) MaxFlow(s, t int) int {
	const inf = int(^uint(0) >> 1)
	total := 0
	for {
		level := f.bfsLevel(s)
		if level[t] < 0 {
			return total
		}
		iter := make([]int, f.n)
		for {
			pushed := f.dfsAugment(s, t, inf, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
}

func (f *FlowNetwork) bfsLevel(s int) []int {
	level := make([]int, f.n)
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range f.head[u] {
			a := f.arcs[ai]
			if a.cap > 0 && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return level
}

func (f *FlowNetwork) dfsAugment(u, t, limit int, level, iter []int) int {
	if u == t {
		return limit
	}
	for ; iter[u] < len(f.head[u]); iter[u]++ {
		ai := f.head[u][iter[u]]
		a := &f.arcs[ai]
		if a.cap <= 0 || level[a.to] != level[u]+1 {
			continue
		}
		d := limit
		if a.cap < d {
			d = a.cap
		}
		pushed := f.dfsAugment(a.to, t, d, level, iter)
		if pushed > 0 {
			a.cap -= pushed
			f.arcs[a.rev].cap += pushed
			return pushed
		}
	}
	return 0
}

// MinCutArcs returns, after MaxFlow has run, the tags of saturated arcs that
// cross the residual s-side/t-side partition. Tags of plumbing arcs (-1) are
// skipped; duplicate tags are deduplicated and the result is sorted.
func (f *FlowNetwork) MinCutArcs(s int) []int {
	// Residual reachability from s.
	reach := make([]bool, f.n)
	reach[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range f.head[u] {
			a := f.arcs[ai]
			if a.cap > 0 && !reach[a.to] {
				reach[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	tagSet := make(map[int]bool)
	for u := 0; u < f.n; u++ {
		if !reach[u] {
			continue
		}
		for _, ai := range f.head[u] {
			a := f.arcs[ai]
			if a.tag >= 0 && a.cap == 0 && !reach[a.to] {
				tagSet[a.tag] = true
			}
		}
	}
	out := make([]int, 0, len(tagSet))
	for tag := range tagSet {
		out = append(out, tag)
	}
	sort.Ints(out)
	return out
}

// MinEdgeCut computes a minimum s-t cut of an undirected Graph where each
// live edge has unit capacity. It returns the cut's edge IDs (sorted) and
// the cut size. allow restricts the edges considered (nil = all live).
func MinEdgeCut(g *Graph, s, t int, allow func(edge int) bool) ([]int, int) {
	f := NewFlowNetwork(g.NumNodes())
	for id := 0; id < g.NumEdges(); id++ {
		if g.EdgeDeleted(id) {
			continue
		}
		if allow != nil && !allow(id) {
			continue
		}
		u, v := g.Endpoints(id)
		// Undirected unit edge = two directed unit arcs with the same tag.
		f.AddArc(u, v, 1, id)
		f.AddArc(v, u, 1, id)
	}
	size := f.MaxFlow(s, t)
	return f.MinCutArcs(s), size
}

// MinEdgeCutThrough computes a minimum s-t edge cut that is forced to
// contain the edge `through`. It works by giving every other edge unit
// capacity and the forced edge zero capacity, then adding the forced edge
// back into the returned cut. If removing `through` alone already
// disconnects s from t the returned cut is just {through}. ok is false when
// s and t are disconnected even with `through` present (degenerate input).
func MinEdgeCutThrough(g *Graph, s, t, through int, allow func(edge int) bool) (cut []int, ok bool) {
	if !g.Reachable(s, t, allow) {
		return nil, false
	}
	allowExcept := func(e int) bool {
		if e == through {
			return false
		}
		return allow == nil || allow(e)
	}
	rest, _ := MinEdgeCut(g, s, t, allowExcept)
	if g.Reachable(s, t, allowExcept) {
		cut = append(cut, rest...)
	}
	cut = append(cut, through)
	sort.Ints(cut)
	return cut, true
}
