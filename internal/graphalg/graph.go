// Package graphalg provides the graph-algorithm substrate used across the
// DFT flow: undirected graphs over dense integer node IDs, reachability,
// shortest paths, connectivity, cycle decomposition, and max-flow/min-cut
// (including vertex cuts via node splitting).
//
// The package is deliberately minimal and allocation-conscious: the fault
// simulator calls reachability once per (vector, fault) pair and the
// schedulers call shortest-path routing once per transport, so these
// routines sit on the hot path of every experiment in the paper.
package graphalg

import (
	"fmt"
	"sort"
)

// Graph is an undirected multigraph over nodes 0..N-1. Edges carry integer
// IDs so callers can attach attributes (valves, channels) externally.
type Graph struct {
	n     int
	adj   [][]Arc // adj[u] lists arcs leaving u
	edges []edgeRec
}

// Arc is one direction of an undirected edge.
type Arc struct {
	To   int // head node
	Edge int // edge ID shared by both directions
}

type edgeRec struct {
	u, v    int
	deleted bool
}

// NewGraph returns an empty graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graphalg: negative node count")
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges ever added, including deleted ones.
// Edge IDs are dense in [0, NumEdges()).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds an undirected edge between u and v and returns its edge ID.
// Self-loops and parallel edges are allowed.
func (g *Graph) AddEdge(u, v int) int {
	g.checkNode(u)
	g.checkNode(v)
	id := len(g.edges)
	g.edges = append(g.edges, edgeRec{u: u, v: v})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	if u != v {
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	}
	return id
}

// Endpoints returns the two endpoints of edge id.
func (g *Graph) Endpoints(id int) (u, v int) {
	e := g.edges[id]
	return e.u, e.v
}

// EdgeDeleted reports whether edge id has been marked deleted.
func (g *Graph) EdgeDeleted(id int) bool { return g.edges[id].deleted }

// DeleteEdge marks edge id deleted. Traversals skip deleted edges.
// Deletion is reversible with RestoreEdge; this supports the fault
// simulator's inject/heal cycle without rebuilding adjacency.
func (g *Graph) DeleteEdge(id int) { g.edges[id].deleted = true }

// RestoreEdge undoes DeleteEdge.
func (g *Graph) RestoreEdge(id int) { g.edges[id].deleted = false }

// Degree returns the number of live (non-deleted) edges incident to u.
// A self-loop counts once.
func (g *Graph) Degree(u int) int {
	g.checkNode(u)
	d := 0
	for _, a := range g.adj[u] {
		if !g.edges[a.Edge].deleted {
			d++
		}
	}
	return d
}

// Neighbors returns the arcs incident to u over live edges. The returned
// slice is freshly allocated.
func (g *Graph) Neighbors(u int) []Arc {
	g.checkNode(u)
	var out []Arc
	for _, a := range g.adj[u] {
		if !g.edges[a.Edge].deleted {
			out = append(out, a)
		}
	}
	return out
}

// Adjacency returns u's internal arc slice, including arcs of deleted
// edges — callers must filter with EdgeDeleted. The returned slice must
// not be modified and is valid until the next AddEdge or AddNode. It
// exists for allocation-free traversals (Neighbors copies).
func (g *Graph) Adjacency(u int) []Arc {
	g.checkNode(u)
	return g.adj[u]
}

// IncidentEdges returns the live edge IDs incident to u, sorted ascending.
func (g *Graph) IncidentEdges(u int) []int {
	arcs := g.Neighbors(u)
	out := make([]int, 0, len(arcs))
	for _, a := range arcs {
		out = append(out, a.Edge)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the graph, including deletion marks.
func (g *Graph) Clone() *Graph {
	ng := &Graph{n: g.n, adj: make([][]Arc, g.n), edges: append([]edgeRec(nil), g.edges...)}
	for u, arcs := range g.adj {
		ng.adj[u] = append([]Arc(nil), arcs...)
	}
	return ng
}

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graphalg: node %d out of range [0,%d)", u, g.n))
	}
}

// BFSFrom runs a breadth-first search from src over live edges, restricted
// to edges for which allow(edgeID) is true (nil allow means all live edges).
// It returns dist with dist[u] = hop count, or -1 if unreachable.
func (g *Graph) BFSFrom(src int, allow func(edge int) bool) []int {
	g.checkNode(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			if allow != nil && !allow(a.Edge) {
				continue
			}
			if dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// Reachable reports whether dst is reachable from src over live edges
// permitted by allow (nil allow means all live edges).
func (g *Graph) Reachable(src, dst int, allow func(edge int) bool) bool {
	if src == dst {
		return true
	}
	return g.BFSFrom(src, allow)[dst] >= 0
}

// Scratch holds reusable BFS buffers for repeated reachability queries on
// graphs of similar size. The zero value is ready to use. A Scratch may be
// reused across graphs but must not be shared between goroutines.
type Scratch struct {
	seen  []int // seen[u] == epoch means u was visited this query
	epoch int
	queue []int
}

// ReachableScratch is Reachable with caller-owned scratch buffers: repeated
// queries allocate nothing once the scratch has grown to the graph size.
// It also stops as soon as dst is dequeued, so it never does more work than
// Reachable.
func (g *Graph) ReachableScratch(s *Scratch, src, dst int, allow func(edge int) bool) bool {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst {
		return true
	}
	if len(s.seen) < g.n {
		s.seen = make([]int, g.n)
		s.epoch = 0
	}
	s.epoch++
	seen, epoch := s.seen, s.epoch
	queue := s.queue[:0]
	seen[src] = epoch
	queue = append(queue, src)
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			if allow != nil && !allow(a.Edge) {
				continue
			}
			if seen[a.To] == epoch {
				continue
			}
			if a.To == dst {
				found = true
				break
			}
			seen[a.To] = epoch
			queue = append(queue, a.To)
		}
	}
	s.queue = queue
	return found
}

// ShortestPath returns a minimum-hop path from src to dst over live edges
// permitted by allow, as (nodes, edges); nodes has one more element than
// edges. ok is false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int, allow func(edge int) bool) (nodes, edges []int, ok bool) {
	g.checkNode(src)
	g.checkNode(dst)
	prevNode := make([]int, g.n)
	prevEdge := make([]int, g.n)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		prevNode[i] = -1
		prevEdge[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 && dist[dst] < 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			if allow != nil && !allow(a.Edge) {
				continue
			}
			if dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				prevNode[a.To] = u
				prevEdge[a.To] = a.Edge
				queue = append(queue, a.To)
			}
		}
	}
	if src != dst && dist[dst] < 0 {
		return nil, nil, false
	}
	for u := dst; u != src; u = prevNode[u] {
		nodes = append(nodes, u)
		edges = append(edges, prevEdge[u])
	}
	nodes = append(nodes, src)
	reverseInts(nodes)
	reverseInts(edges)
	return nodes, edges, true
}

// WeightedShortestPath runs Dijkstra with nonnegative per-edge weights
// (weight(edgeID) < 0 means the edge is forbidden) and returns the path as
// (nodes, edges, totalWeight). ok is false if dst is unreachable.
func (g *Graph) WeightedShortestPath(src, dst int, weight func(edge int) float64) (nodes, edges []int, total float64, ok bool) {
	g.checkNode(src)
	g.checkNode(dst)
	const inf = 1e308
	dist := make([]float64, g.n)
	prevNode := make([]int, g.n)
	prevEdge := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
		prevNode[i] = -1
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &nodeHeap{}
	h.push(heapItem{node: src, dist: 0})
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			w := weight(a.Edge)
			if w < 0 {
				continue
			}
			nd := dist[u] + w
			if nd < dist[a.To] {
				dist[a.To] = nd
				prevNode[a.To] = u
				prevEdge[a.To] = a.Edge
				h.push(heapItem{node: a.To, dist: nd})
			}
		}
	}
	if dist[dst] >= inf {
		return nil, nil, 0, false
	}
	for u := dst; u != src; u = prevNode[u] {
		nodes = append(nodes, u)
		edges = append(edges, prevEdge[u])
	}
	nodes = append(nodes, src)
	reverseInts(nodes)
	reverseInts(edges)
	return nodes, edges, dist[dst], true
}

// BFSDistScratch is BFSFrom with caller-owned buffers: dist is resized (and
// returned) to the node count and filled exactly like BFSFrom's result, and
// repeated calls allocate nothing once the scratch queue has grown to the
// graph size. The traversal order — and therefore every distance — is
// identical to BFSFrom's.
func (g *Graph) BFSDistScratch(s *Scratch, dist []int, src int, allow func(edge int) bool) []int {
	g.checkNode(src)
	if cap(dist) < g.n {
		dist = make([]int, g.n)
	}
	dist = dist[:g.n]
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := s.queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			if allow != nil && !allow(a.Edge) {
				continue
			}
			if dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	s.queue = queue
	return dist
}

// PathScratch holds the reusable buffers of repeated weighted shortest-path
// queries. The zero value is ready to use; one PathScratch must not be
// shared between goroutines. The edge slice returned by
// WeightedShortestPathScratch aliases the scratch and is overwritten by the
// next query — callers that keep a path must copy it.
type PathScratch struct {
	dist     []float64
	prevNode []int
	prevEdge []int
	done     []bool
	heap     nodeHeap
	edges    []int
}

// WeightedShortestPathScratch is WeightedShortestPath restricted to the
// edge list (the schedulers never need the node list), with caller-owned
// scratch buffers: repeated queries allocate nothing once the scratch has
// grown to the graph size. The relaxation and heap order are identical to
// WeightedShortestPath's, so the returned path (not just its cost) matches
// it edge for edge.
func (g *Graph) WeightedShortestPathScratch(s *PathScratch, src, dst int, weight func(edge int) float64) (edges []int, total float64, ok bool) {
	g.checkNode(src)
	g.checkNode(dst)
	const inf = 1e308
	if len(s.dist) < g.n {
		s.dist = make([]float64, g.n)
		s.prevNode = make([]int, g.n)
		s.prevEdge = make([]int, g.n)
		s.done = make([]bool, g.n)
	}
	dist, prevNode, prevEdge, done := s.dist[:g.n], s.prevNode[:g.n], s.prevEdge[:g.n], s.done[:g.n]
	for i := 0; i < g.n; i++ {
		dist[i] = inf
		prevNode[i] = -1
		prevEdge[i] = -1
		done[i] = false
	}
	dist[src] = 0
	h := &s.heap
	h.items = h.items[:0]
	h.push(heapItem{node: src, dist: 0})
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, a := range g.adj[u] {
			if g.edges[a.Edge].deleted {
				continue
			}
			w := weight(a.Edge)
			if w < 0 {
				continue
			}
			nd := dist[u] + w
			if nd < dist[a.To] {
				dist[a.To] = nd
				prevNode[a.To] = u
				prevEdge[a.To] = a.Edge
				h.push(heapItem{node: a.To, dist: nd})
			}
		}
	}
	if dist[dst] >= inf {
		return nil, 0, false
	}
	out := s.edges[:0]
	for u := dst; u != src; u = prevNode[u] {
		out = append(out, prevEdge[u])
	}
	reverseInts(out)
	s.edges = out
	return out, dist[dst], true
}

// ConnectedComponents labels each node with a component ID in [0, k) and
// returns (labels, k), considering live edges only.
func (g *Graph) ConnectedComponents() ([]int, int) {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	k := 0
	for s := 0; s < g.n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = k
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.adj[u] {
				if g.edges[a.Edge].deleted {
					continue
				}
				if label[a.To] < 0 {
					label[a.To] = k
					stack = append(stack, a.To)
				}
			}
		}
		k++
	}
	return label, k
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// --- tiny binary heap for Dijkstra -----------------------------------------

type heapItem struct {
	node int
	dist float64
}

type nodeHeap struct{ items []heapItem }

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].dist <= h.items[i].dist {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *nodeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
