package graphalg

import "sort"

// EdgeSubgraphComponents partitions an edge subset into connected components.
// It returns one slice of edge IDs per component (components of isolated
// nodes are not reported). The input order of edge IDs is irrelevant; the
// output components and their edge lists are sorted for determinism.
func (g *Graph) EdgeSubgraphComponents(edgeIDs []int) [][]int {
	inSet := make(map[int]bool, len(edgeIDs))
	for _, e := range edgeIDs {
		inSet[e] = true
	}
	seen := make(map[int]bool, len(edgeIDs))
	var comps [][]int
	for _, start := range edgeIDs {
		if seen[start] {
			continue
		}
		// BFS over edges via shared endpoints.
		comp := []int{start}
		seen[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			u, v := g.Endpoints(e)
			for _, n := range [2]int{u, v} {
				for _, a := range g.adj[n] {
					if inSet[a.Edge] && !seen[a.Edge] {
						seen[a.Edge] = true
						comp = append(comp, a.Edge)
						queue = append(queue, a.Edge)
					}
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// PathDecomposition takes an edge set that is supposed to form one simple
// s-t path and splits it into the component that actually connects s to t
// (mainPath, in order from s) plus any disconnected extra components
// (typically cycles produced by degree-constrained ILP solutions). ok is
// false when no component connects s and t at all.
//
// This is the primitive behind lazy loop exclusion in the test-path ILP:
// the solver's degree constraints (eqs. (1)-(2) of the paper) admit an s-t
// path plus disjoint 2-regular cycles; the caller cuts the cycles off with
// additional constraints, as in ref. [16].
func (g *Graph) PathDecomposition(s, t int, edgeIDs []int) (mainPath []int, extras [][]int, ok bool) {
	comps := g.EdgeSubgraphComponents(edgeIDs)
	mainIdx := -1
	for i, comp := range comps {
		touchesS, touchesT := false, false
		for _, e := range comp {
			u, v := g.Endpoints(e)
			if u == s || v == s {
				touchesS = true
			}
			if u == t || v == t {
				touchesT = true
			}
		}
		if touchesS && touchesT {
			mainIdx = i
			break
		}
	}
	if mainIdx < 0 {
		return nil, comps, false
	}
	for i, comp := range comps {
		if i != mainIdx {
			extras = append(extras, comp)
		}
	}
	// Order the main component's edges by walking from s.
	mainSet := make(map[int]bool, len(comps[mainIdx]))
	for _, e := range comps[mainIdx] {
		mainSet[e] = true
	}
	cur := s
	used := make(map[int]bool, len(mainSet))
	for len(mainPath) < len(mainSet) {
		advanced := false
		for _, a := range g.adj[cur] {
			if mainSet[a.Edge] && !used[a.Edge] {
				used[a.Edge] = true
				mainPath = append(mainPath, a.Edge)
				cur = a.To
				advanced = true
				break
			}
		}
		if !advanced {
			break // not a simple walk; return what we ordered
		}
	}
	return mainPath, extras, true
}

// IsSimplePath reports whether edgeIDs form one simple path from s to t:
// connected, every interior node has degree 2 within the set, and s and t
// have degree 1.
func (g *Graph) IsSimplePath(s, t int, edgeIDs []int) bool {
	if len(edgeIDs) == 0 {
		return false
	}
	deg := make(map[int]int)
	for _, e := range edgeIDs {
		u, v := g.Endpoints(e)
		deg[u]++
		deg[v]++
	}
	if deg[s] != 1 || deg[t] != 1 {
		return false
	}
	for n, d := range deg {
		if n == s || n == t {
			continue
		}
		if d != 2 {
			return false
		}
	}
	comps := g.EdgeSubgraphComponents(edgeIDs)
	return len(comps) == 1
}
