package graphalg

import "testing"

func benchGrid(w, h int) *Graph {
	g := NewGraph(w * h)
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(at(x, y), at(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(at(x, y), at(x, y+1))
			}
		}
	}
	return g
}

func BenchmarkBFSGrid16(b *testing.B) {
	g := benchGrid(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSFrom(0, nil)
	}
}

func BenchmarkShortestPathGrid16(b *testing.B) {
	g := benchGrid(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := g.ShortestPath(0, g.NumNodes()-1, nil); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkDijkstraGrid16(b *testing.B) {
	g := benchGrid(16, 16)
	w := func(e int) float64 { return float64(e%5) + 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := g.WeightedShortestPath(0, g.NumNodes()-1, w); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkMinCutGrid12(b *testing.B) {
	g := benchGrid(12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, size := MinEdgeCut(g, 0, g.NumNodes()-1, nil); size == 0 {
			b.Fatal("unexpected zero cut")
		}
	}
}
