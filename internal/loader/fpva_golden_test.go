package loader

import (
	"bytes"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

// TestGenerateFPVAGoldenDeterminism: the same generator params must yield
// byte-identical chip JSON, and the chip must round-trip through the
// loader unchanged.
func TestGenerateFPVAGoldenDeterminism(t *testing.T) {
	params := chip.FPVAParams{W: 12, H: 9, Seed: 42, Ports: 7, Devices: 4}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		c, err := chip.GenerateFPVA(params)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteChip(&bufs[i], c); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same FPVA params produced different chip JSON")
	}
	back, err := ReadChip(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteChip(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), bufs[0].Bytes()) {
		t.Fatal("FPVA chip JSON changed across a loader round-trip")
	}
}

// TestSyntheticAssayGoldenDeterminism: same (ops, seed) → byte-identical
// assay JSON, loader round-trip stable.
func TestSyntheticAssayGoldenDeterminism(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		if err := WriteAssay(&bufs[i], assay.Synthetic(24, 7)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same synthetic-assay params produced different JSON")
	}
	back, err := ReadAssay(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteAssay(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), bufs[0].Bytes()) {
		t.Fatal("synthetic assay JSON changed across a loader round-trip")
	}
}

// FuzzGenerateFPVA: arbitrary (W, H, seed, port/device counts) must either
// be rejected with an error or produce a chip that survives a loader
// round-trip without panicking.
func FuzzGenerateFPVA(f *testing.F) {
	f.Add(4, 4, int64(0), 0, 0)
	f.Add(8, 8, int64(1), 4, 3)
	f.Add(12, 5, int64(-9), 100, 50)
	f.Add(3, 20, int64(7), 2, 1)
	f.Fuzz(func(t *testing.T, w, h int, seed int64, ports, devices int) {
		if w > 64 || h > 64 {
			t.Skip("grid too large for a fuzz iteration")
		}
		c, err := chip.GenerateFPVA(chip.FPVAParams{W: w, H: h, Seed: seed, Ports: ports, Devices: devices})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteChip(&buf, c); err != nil {
			t.Fatalf("generated chip does not serialize: %v", err)
		}
		back, err := ReadChip(&buf)
		if err != nil {
			t.Fatalf("generated chip does not round-trip: %v", err)
		}
		if back.NumValves() != c.NumValves() || len(back.Ports) != len(c.Ports) || len(back.Devices) != len(c.Devices) {
			t.Fatalf("round trip changed the chip: %v vs %v", back.Stats(), c.Stats())
		}
	})
}
