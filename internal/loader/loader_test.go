package loader

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/sched"
)

const chipJSON = `{
  "name": "json_chip",
  "grid_w": 6, "grid_h": 4,
  "devices": [
    {"name": "M1", "kind": "mixer", "x": 1, "y": 1},
    {"name": "D1", "kind": "detector", "x": 4, "y": 1}
  ],
  "ports": [
    {"name": "P0", "x": 0, "y": 1},
    {"name": "P1", "x": 5, "y": 1}
  ],
  "channels": [
    [[0,1],[1,1]],
    [[1,1],[2,1],[3,1],[4,1]],
    [[4,1],[5,1]]
  ]
}`

const assayJSON = `{
  "name": "json_assay",
  "ops": [
    {"name": "mix1", "kind": "mix", "duration": 40},
    {"name": "read1", "kind": "detect", "duration": 20}
  ],
  "deps": [[0,1]]
}`

func TestReadChip(t *testing.T) {
	c, err := ReadChip(strings.NewReader(chipJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "json_chip" || c.NumValves() != 5 || len(c.Ports) != 2 {
		t.Fatalf("chip loaded wrong: %v", c)
	}
	if c.CountDevices(chip.Mixer) != 1 || c.CountDevices(chip.Detector) != 1 {
		t.Fatal("device kinds wrong")
	}
}

func TestReadAssay(t *testing.T) {
	g, err := ReadAssay(strings.NewReader(assayJSON))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 2 || g.CountKind(assay.Mix) != 1 {
		t.Fatalf("assay loaded wrong: %v", g)
	}
	if len(g.Succs(0)) != 1 || g.Succs(0)[0] != 1 {
		t.Fatal("dependency lost")
	}
}

func TestLoadedDesignSchedules(t *testing.T) {
	c, err := ReadChip(strings.NewReader(chipJSON))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadAssay(strings.NewReader(assayJSON))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := sched.Run(c, nil, g, sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateSchedule(c, g, sch); err != nil {
		t.Fatal(err)
	}
}

func TestChipRoundTrip(t *testing.T) {
	orig := chip.IVD()
	var buf bytes.Buffer
	if err := WriteChip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumValves() != orig.NumValves() || len(back.Ports) != len(orig.Ports) ||
		len(back.Devices) != len(orig.Devices) {
		t.Fatalf("round trip lost structure: %v vs %v", back, orig)
	}
}

func TestAssayRoundTrip(t *testing.T) {
	orig := assay.CPA()
	var buf bytes.Buffer
	if err := WriteAssay(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAssay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOps() != orig.NumOps() || back.CriticalPath() != orig.CriticalPath() {
		t.Fatal("assay round trip changed the graph")
	}
}

func TestRejectBadKinds(t *testing.T) {
	if _, err := ReadChip(strings.NewReader(strings.Replace(chipJSON, "mixer", "blender", 1))); err == nil {
		t.Fatal("unknown device kind must fail")
	}
	if _, err := ReadAssay(strings.NewReader(strings.Replace(assayJSON, `"kind": "mix"`, `"kind": "stir"`, 1))); err == nil {
		t.Fatal("unknown op kind must fail")
	}
}

func TestRejectBadStructures(t *testing.T) {
	if _, err := ReadChip(strings.NewReader(`{"name":"x","grid_w":1,"grid_h":9}`)); err == nil {
		t.Fatal("tiny grid must fail")
	}
	if _, err := ReadAssay(strings.NewReader(`{"name":"x","ops":[{"name":"a","kind":"mix","duration":5}],"deps":[[0,0]]}`)); err == nil {
		t.Fatal("self-dependency must fail")
	}
	if _, err := ReadAssay(strings.NewReader(`{"name":"x","ops":[{"name":"a","kind":"mix","duration":0}]}`)); err == nil {
		t.Fatal("zero duration must fail")
	}
	if _, err := ReadChip(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := ReadChip(strings.NewReader(`{"name":"x","grid_w":5,"grid_h":5,"ports":[{"name":"P0","x":0,"y":1},{"name":"P1","x":0,"y":2}],"devices":[{"name":"M","kind":"mixer","x":1,"y":1}],"channels":[[[0,1]]]}`)); err == nil {
		t.Fatal("single-coordinate channel must fail")
	}
}
