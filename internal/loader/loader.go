// Package loader reads chip architectures and bioassay sequencing graphs
// from JSON, so custom designs can be fed to the DFT flow without
// recompiling. The schemas mirror the builder APIs:
//
//	chip JSON:
//	  {"name":"my_chip","grid_w":6,"grid_h":6,
//	   "devices":[{"name":"M1","kind":"mixer","x":1,"y":1}, ...],
//	   "ports":[{"name":"P0","x":0,"y":1}, ...],
//	   "channels":[[[0,1],[1,1]], [[1,1],[2,1],[3,1]], ...]}
//
//	assay JSON:
//	  {"name":"my_assay",
//	   "ops":[{"name":"mix1","kind":"mix","duration":60}, ...],
//	   "deps":[[0,2],[1,2], ...]}   // indices into ops
package loader

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/grid"
)

// ChipSpec is the JSON schema of a chip architecture.
type ChipSpec struct {
	Name     string       `json:"name"`
	GridW    int          `json:"grid_w"`
	GridH    int          `json:"grid_h"`
	Devices  []DeviceSpec `json:"devices"`
	Ports    []PortSpec   `json:"ports"`
	Channels [][][2]int   `json:"channels"` // walks of [x,y] coordinates
}

// DeviceSpec is one device.
type DeviceSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // mixer | detector | heater | filter
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// PortSpec is one boundary port.
type PortSpec struct {
	Name string `json:"name"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// AssaySpec is the JSON schema of a sequencing graph.
type AssaySpec struct {
	Name string   `json:"name"`
	Ops  []OpSpec `json:"ops"`
	Deps [][2]int `json:"deps"`
}

// OpSpec is one operation.
type OpSpec struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // dispense | mix | detect
	Duration int    `json:"duration"`
}

// ReadChip decodes and builds a chip from JSON.
func ReadChip(r io.Reader) (*chip.Chip, error) {
	var spec ChipSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("loader: chip JSON: %w", err)
	}
	return BuildChip(spec)
}

// BuildChip constructs a chip from a decoded spec.
func BuildChip(spec ChipSpec) (*chip.Chip, error) {
	if spec.GridW < 2 || spec.GridH < 2 {
		return nil, fmt.Errorf("loader: chip %q: grid %dx%d too small", spec.Name, spec.GridW, spec.GridH)
	}
	inBounds := func(x, y int) bool {
		return x >= 0 && x < spec.GridW && y >= 0 && y < spec.GridH
	}
	b := chip.NewBuilder(spec.Name, spec.GridW, spec.GridH)
	for _, d := range spec.Devices {
		kind, err := deviceKind(d.Kind)
		if err != nil {
			return nil, fmt.Errorf("loader: device %q: %w", d.Name, err)
		}
		if !inBounds(d.X, d.Y) {
			return nil, fmt.Errorf("loader: device %q at (%d,%d) outside %dx%d grid", d.Name, d.X, d.Y, spec.GridW, spec.GridH)
		}
		b.AddDevice(kind, d.Name, grid.Coord{X: d.X, Y: d.Y})
	}
	for _, p := range spec.Ports {
		if !inBounds(p.X, p.Y) {
			return nil, fmt.Errorf("loader: port %q at (%d,%d) outside %dx%d grid", p.Name, p.X, p.Y, spec.GridW, spec.GridH)
		}
		b.AddPort(p.Name, grid.Coord{X: p.X, Y: p.Y})
	}
	for i, walk := range spec.Channels {
		if len(walk) < 2 {
			return nil, fmt.Errorf("loader: channel %d has %d coordinates", i, len(walk))
		}
		coords := make([]grid.Coord, len(walk))
		for j, xy := range walk {
			if !inBounds(xy[0], xy[1]) {
				return nil, fmt.Errorf("loader: channel %d coordinate (%d,%d) outside %dx%d grid", i, xy[0], xy[1], spec.GridW, spec.GridH)
			}
			coords[j] = grid.Coord{X: xy[0], Y: xy[1]}
		}
		b.AddChannel(coords...)
	}
	return b.Build()
}

// ReadAssay decodes and builds a sequencing graph from JSON.
func ReadAssay(r io.Reader) (*assay.Graph, error) {
	var spec AssaySpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("loader: assay JSON: %w", err)
	}
	return BuildAssay(spec)
}

// BuildAssay constructs a sequencing graph from a decoded spec.
func BuildAssay(spec AssaySpec) (*assay.Graph, error) {
	g := assay.New(spec.Name)
	for _, op := range spec.Ops {
		kind, err := opKind(op.Kind)
		if err != nil {
			return nil, fmt.Errorf("loader: op %q: %w", op.Name, err)
		}
		if op.Duration <= 0 {
			return nil, fmt.Errorf("loader: op %q: duration %d", op.Name, op.Duration)
		}
		g.AddOp(kind, op.Name, op.Duration)
	}
	for i, d := range spec.Deps {
		if d[0] < 0 || d[0] >= g.NumOps() || d[1] < 0 || d[1] >= g.NumOps() || d[0] == d[1] {
			return nil, fmt.Errorf("loader: dep %d (%d->%d) out of range", i, d[0], d[1])
		}
		g.AddDep(d[0], d[1])
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	return g, nil
}

// WriteChip serializes a chip back to its JSON spec (channels are emitted
// one segment per entry).
func WriteChip(w io.Writer, c *chip.Chip) error {
	spec := ChipSpec{Name: c.Name, GridW: c.Grid.W, GridH: c.Grid.H}
	for _, d := range c.Devices {
		pos := c.Grid.CoordOf(d.Node)
		spec.Devices = append(spec.Devices, DeviceSpec{Name: d.Name, Kind: d.Kind.String(), X: pos.X, Y: pos.Y})
	}
	for _, p := range c.Ports {
		pos := c.Grid.CoordOf(p.Node)
		spec.Ports = append(spec.Ports, PortSpec{Name: p.Name, X: pos.X, Y: pos.Y})
	}
	for _, e := range c.ChannelEdges() {
		a, b := c.Grid.EdgeEndpoints(e)
		spec.Channels = append(spec.Channels, [][2]int{{a.X, a.Y}, {b.X, b.Y}})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// WriteAssay serializes a sequencing graph to its JSON spec.
func WriteAssay(w io.Writer, g *assay.Graph) error {
	spec := AssaySpec{Name: g.Name}
	for _, op := range g.Ops() {
		spec.Ops = append(spec.Ops, OpSpec{Name: op.Name, Kind: op.Kind.String(), Duration: op.Duration})
	}
	for _, op := range g.Ops() {
		for _, s := range g.Succs(op.ID) {
			spec.Deps = append(spec.Deps, [2]int{op.ID, s})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

func deviceKind(s string) (chip.DeviceKind, error) {
	switch s {
	case "mixer":
		return chip.Mixer, nil
	case "detector":
		return chip.Detector, nil
	case "heater":
		return chip.Heater, nil
	case "filter":
		return chip.Filter, nil
	}
	return 0, fmt.Errorf("unknown device kind %q", s)
}

func opKind(s string) (assay.OpKind, error) {
	switch s {
	case "dispense":
		return assay.Dispense, nil
	case "mix":
		return assay.Mix, nil
	case "detect":
		return assay.Detect, nil
	}
	return 0, fmt.Errorf("unknown op kind %q", s)
}
