package loader

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadChip: arbitrary bytes must never panic the chip loader; valid
// chips must round-trip.
func FuzzReadChip(f *testing.F) {
	f.Add([]byte(chipJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","grid_w":3,"grid_h":3}`))
	f.Add([]byte(`{"channels":[[[0,0],[9,9]]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadChip(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must survive re-serialization and re-loading.
		var buf bytes.Buffer
		if err := WriteChip(&buf, c); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, err := ReadChip(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzReadAssay: arbitrary bytes must never panic the assay loader.
func FuzzReadAssay(f *testing.F) {
	f.Add([]byte(assayJSON))
	f.Add([]byte(`{"ops":[{"kind":"mix","duration":-3}]}`))
	f.Add([]byte(`{"ops":[],"deps":[[0,1]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAssay(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader accepted an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteAssay(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadAssay(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumOps() != g.NumOps() {
			t.Fatal("round trip changed op count")
		}
	})
}

// The fuzz corpora above rely on AddDep/AddOp panics being converted to
// errors by the loader's validation; make sure a crafted near-valid input
// with an out-of-range coordinate errors instead of panicking.
func TestLoaderConvertsPanicsToErrors(t *testing.T) {
	bad := strings.Replace(chipJSON, `"x": 0, "y": 1`, `"x": 99, "y": 1`, 1)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("loader panicked: %v", r)
		}
	}()
	if _, err := ReadChip(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range coordinate must fail")
	}
}
