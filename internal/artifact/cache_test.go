package artifact

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Singleflight: concurrent Do calls for one key run compute exactly once
// and all share the value.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int](0, nil)
	var computes atomic.Int64
	var wg sync.WaitGroup
	vals := make([]int, 32)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _ = c.Do("k", func() int {
				computes.Add(1)
				return 42
			})
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Fatalf("hits/misses = %d/%d, want 31/1", st.Hits, st.Misses)
	}
}

// Eviction order is deterministic: coldest epoch first, ties broken by
// key, and the same access pattern always evicts the same entries.
func TestCacheDeterministicEviction(t *testing.T) {
	run := func() ([]string, CacheStats) {
		// Each entry costs ~entryOverhead+len(key)+8; budget fits ~3.
		c := NewCache[int](3*(entryOverhead+10), func(int) int64 { return 8 })
		for _, k := range []string{"a1", "b1", "c1", "d1"} {
			c.Do(k, func() int { return 1 })
		}
		c.AdvanceEpoch() // epoch 1; all entries are epoch-0 cold
		c.Do("b1", func() int { return 1 })
		c.Do("e1", func() int { return 1 })
		c.AdvanceEpoch()
		return c.SortedKeys(), c.Stats()
	}
	keys1, st1 := run()
	keys2, st2 := run()
	if fmt.Sprint(keys1) != fmt.Sprint(keys2) || st1.Evictions != st2.Evictions {
		t.Fatalf("eviction nondeterministic: %v (%d) vs %v (%d)", keys1, st1.Evictions, keys2, st2.Evictions)
	}
	// b1 was touched in epoch 1, so the epoch-0 leftovers go first in key
	// order; b1 and e1 (newest) must survive.
	for _, want := range []string{"b1", "e1"} {
		found := false
		for _, k := range keys1 {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("warm key %s evicted; resident: %v", want, keys1)
		}
	}
	if st1.Evictions == 0 {
		t.Fatal("budget never triggered eviction")
	}
}

// An evicted key is recomputed on next access (transparent for pure
// computes), and unbounded caches never evict.
func TestCacheEvictionRecompute(t *testing.T) {
	c := NewCache[int](1, func(int) int64 { return 1 << 20 })
	computes := 0
	c.Do("k", func() int { computes++; return 7 })
	c.AdvanceEpoch()
	if _, ok := c.Get("k"); ok {
		t.Fatal("over-budget entry survived trim")
	}
	v, hit := c.Do("k", func() int { computes++; return 7 })
	if hit || v != 7 || computes != 2 {
		t.Fatalf("recompute after eviction: v=%d hit=%v computes=%d", v, hit, computes)
	}

	u := NewCache[int](0, func(int) int64 { return 1 << 30 })
	for i := 0; i < 10; i++ {
		u.Do(fmt.Sprint(i), func() int { return i })
	}
	u.AdvanceEpoch()
	if u.Len() != 10 || u.Stats().Evictions != 0 {
		t.Fatalf("unbounded cache evicted: len=%d stats=%+v", u.Len(), u.Stats())
	}
}

// Byte accounting: used bytes match the sum of sizeOf + key + overhead
// and drop on eviction.
func TestCacheByteAccounting(t *testing.T) {
	c := NewCache[string](0, func(s string) int64 { return int64(len(s)) })
	c.Do("ab", func() string { return "xyz" })
	want := int64(2 + entryOverhead + 3)
	if c.Bytes() != want {
		t.Fatalf("bytes = %d, want %d", c.Bytes(), want)
	}
}

// Concurrent Do across many keys under -race, with a serial trim after.
func TestCacheConcurrentRace(t *testing.T) {
	c := NewCache[int](64*(entryOverhead+16), func(int) int64 { return 8 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%100)
				c.Do(k, func() int { return i })
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	c.AdvanceEpoch()
	if c.Len() == 0 {
		t.Fatal("cache empty after concurrent fill")
	}
}
