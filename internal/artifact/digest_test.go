package artifact

import (
	"math/rand"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/pso"
	"repro/internal/sched"
)

// Golden digests of the bundled designs. These pin the canonical
// encoding: any change to the hash layout, the walked field set, or the
// Version constant must change these values — and must bump Version, so
// stored artifacts invalidate instead of aliasing.
var goldenChips = map[string]string{
	"IVD_chip":  "901eb058f78806c2c19d89ff5d5b84bde01df0dfc55b6abb5f09055d12943268",
	"RA30_chip": "3f2cc60770e11a76eab676f275939e8524effd4076b8bb74896ff9d0adf96ff8",
	"mRNA_chip": "2845ae06944a520f9a4c68420a5f793680159b3946bc28c6284aa2fe7c00b07a",
}

var goldenAssays = map[string]string{
	"IVD": "77cd61687dac0f02aecf456192f71a095dba5cda357cd427606aab06c2b526aa",
	"PID": "833b200bf29476f49f905a45f894a95a185d1f949d9ce3947f967350ce6ab307",
	"CPA": "c947288a15cda6c85eff2d6cf2663c5c2fe6d12a724fa59953b69e157e0d012d",
}

func TestGoldenDigests(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		if got := HashChip(c).Hex(); got != goldenChips[c.Name] {
			t.Errorf("HashChip(%s) = %s, want %s (encoding changed: bump Version and regenerate)",
				c.Name, got, goldenChips[c.Name])
		}
	}
	for _, a := range assay.Benchmarks() {
		if got := HashAssay(a).Hex(); got != goldenAssays[a.Name] {
			t.Errorf("HashAssay(%s) = %s, want %s (encoding changed: bump Version and regenerate)",
				a.Name, got, goldenAssays[a.Name])
		}
	}
}

// Digests must be stable across construction paths: a cloned chip hashes
// identically, and repeated hashing never varies.
func TestChipDigestStability(t *testing.T) {
	c := chip.IVD()
	d1 := HashChip(c)
	d2 := HashChip(c.Clone())
	d3 := HashChip(chip.IVD())
	if d1 != d2 || d1 != d3 {
		t.Fatalf("digest varies across identical constructions: %s %s %s", d1.Hex(), d2.Hex(), d3.Hex())
	}
}

// Any semantic mutation must change the chip digest.
func TestChipDigestMutations(t *testing.T) {
	base := HashChip(chip.IVD())
	mutations := map[string]func(*chip.Chip){
		"rename":         func(c *chip.Chip) { c.Name = "IVD_chip2" },
		"device-kind":    func(c *chip.Chip) { c.Devices[0].Kind++ },
		"device-node":    func(c *chip.Chip) { c.Devices[0].Node++ },
		"port-node":      func(c *chip.Chip) { c.Ports[0].Node = c.Ports[1].Node },
		"add-dft-valve":  func(c *chip.Chip) { _, _ = c.AddDFTChannel(0) },
		"grid-dimension": func(c *chip.Chip) { c.Grid.W++ },
	}
	for name, mutate := range mutations {
		c := chip.IVD()
		mutate(c)
		if HashChip(c) == base {
			t.Errorf("mutation %q did not change the digest", name)
		}
	}
}

// Assay digests must be independent of edge insertion order but
// sensitive to every semantic field.
func TestAssayDigestOrderIndependence(t *testing.T) {
	build := func(order []int) *assay.Graph {
		g := assay.New("perm")
		a := g.AddOp(assay.Mix, "a", 10)
		b := g.AddOp(assay.Mix, "b", 20)
		c := g.AddOp(assay.Detect, "c", 30)
		targets := []int{b, c, c}
		sources := []int{a, a, b}
		for _, i := range order {
			g.AddDep(sources[i], targets[i])
		}
		return g
	}
	base := HashAssay(build([]int{0, 1, 2}))
	for _, order := range [][]int{{2, 1, 0}, {1, 2, 0}, {0, 2, 1}} {
		if HashAssay(build(order)) != base {
			t.Errorf("edge insertion order %v changed the digest", order)
		}
	}
	g := build([]int{0, 1, 2})
	g.Ops()[0].Duration++
	if HashAssay(g) == base {
		t.Error("duration mutation did not change the digest")
	}
}

// Option-set digests: zero values and explicit defaults must collide
// (canonicalization), semantic fields must distinguish, execution-only
// fields must not.
func TestOptionDigestCanonicalization(t *testing.T) {
	if HashSchedParams(sched.Params{}) != HashSchedParams(sched.Params{}.Canonical()) {
		t.Error("zero sched.Params digests differently from its canonical form")
	}
	if HashPSOConfig(pso.Config{}) != HashPSOConfig(pso.Config{}.Canonical()) {
		t.Error("zero pso.Config digests differently from its canonical form")
	}
	a := pso.Config{Particles: 5, Iterations: 100}
	b := a
	b.Workers = 8
	b.OnIteration = func(int, float64) {}
	if HashPSOConfig(a) != HashPSOConfig(b) {
		t.Error("execution-only PSO fields changed the digest")
	}
	b = a
	b.Seed = 99
	if HashPSOConfig(a) == HashPSOConfig(b) {
		t.Error("PSO seed did not change the digest")
	}
	p := sched.Params{BanClosed: []int{3, 1, 2}}
	q := sched.Params{BanClosed: []int{2, 3, 1}}
	if HashSchedParams(p) != HashSchedParams(q) {
		t.Error("ban-set order changed the digest")
	}
	q = sched.Params{BanClosed: []int{2, 3}}
	if HashSchedParams(p) == HashSchedParams(q) {
		t.Error("ban-set contents did not change the digest")
	}
}

// Kind and version tags must separate digests of identical payloads.
func TestDigestKindSeparation(t *testing.T) {
	if SumBytes("a", []byte("x")) == SumBytes("b", []byte("x")) {
		t.Error("kind tag does not separate digests")
	}
	h1 := NewHasher("k")
	h1.Str("ab")
	h1.Str("c")
	h2 := NewHasher("k")
	h2.Str("a")
	h2.Str("bc")
	if h1.Sum() == h2.Sum() {
		t.Error("adjacent strings alias across boundaries")
	}
}

// Randomized FPVA chips: digest equality must track semantic equality
// under the generator's determinism, and distinct parameters must never
// collide.
func TestFPVADigestFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[Digest]chip.FPVAParams{}
	for i := 0; i < 40; i++ {
		p := chip.FPVAParams{
			W:     4 + rng.Intn(4),
			H:     4 + rng.Intn(4),
			Ports: 2 + rng.Intn(3),
			Seed:  int64(rng.Intn(4)),
		}
		c1, err := chip.GenerateFPVA(p)
		if err != nil {
			continue
		}
		c2 := chip.MustGenerateFPVA(p)
		d1, d2 := HashChip(c1), HashChip(c2)
		if d1 != d2 {
			t.Fatalf("same params %+v digest differently", p)
		}
		if prev, dup := seen[d1]; dup && prev != p {
			t.Fatalf("collision: params %+v and %+v share digest %s", prev, p, d1.Hex())
		}
		seen[d1] = p
	}
}
