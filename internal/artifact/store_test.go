package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := SumBytes("flow", []byte("payload"))
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put("flow", d, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("flow", d)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: ok=%v got=%q", ok, got)
	}
	if _, ok := s.Get("suite", d); ok {
		t.Fatal("kind must be part of the address")
	}
	if _, ok := s.Get("flow", SumBytes("flow", []byte("other"))); ok {
		t.Fatal("unknown digest must miss")
	}
	// Reopen: artifacts persist across processes.
	s2, err := OpenStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("flow", d); !ok || !bytes.Equal(got, payload) {
		t.Fatal("artifact lost across reopen")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Every corruption mode must read as a miss (with the corrupt counter
// bumped), never as an error or wrong payload.
func TestStoreCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := SumBytes("flow", []byte("x"))
	payload := []byte("the payload bytes")
	if err := s.Put("flow", d, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "flow-"+d.Hex()+".art")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:3] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-40] },
		"bad-magic":         func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xFF; return b },
		"bad-version":       func(b []byte) []byte { b = append([]byte(nil), b...); b[11] ^= 0xFF; return b },
		"flipped-payload":   func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)-40] ^= 0x01; return b },
		"flipped-checksum":  func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)-1] ^= 0x01; return b },
		"empty":             func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		if err := os.WriteFile(path, corrupt(good), 0o644); err != nil {
			t.Fatal(err)
		}
		before := s.Stats().Corrupt
		if _, ok := s.Get("flow", d); ok {
			t.Errorf("%s: corrupted artifact served", name)
		}
		if s.Stats().Corrupt != before+1 {
			t.Errorf("%s: corrupt counter not bumped", name)
		}
	}
	// Restore: the original still reads back.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("flow", d); !ok || !bytes.Equal(got, payload) {
		t.Fatal("restored artifact unreadable")
	}
}

// Put leaves no temp files behind and overwrites atomically.
func TestStorePutAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := SumBytes("k", []byte("v"))
	for i := 0; i < 3; i++ {
		if err := s.Put("k", d, []byte("same payload")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store dir has %d entries %v, want 1", len(entries), names)
	}
}
