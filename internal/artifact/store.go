package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// storeMagic heads every artifact file; storeVersion is the on-disk
// container version (the payload schema is versioned separately by the
// codec that produced it, and Version is part of every digest).
var storeMagic = [4]byte{'D', 'F', 'T', 'A'}

const storeVersion = 1

// Store is the optional disk tier: one file per artifact, named by kind
// and digest, written atomically (temp file + rename) with an embedded
// checksum. Loads are corruption-tolerant — any truncated, altered or
// foreign file reads as a miss, never an error, so a damaged cache
// directory only costs recomputation.
type Store struct {
	dir string

	gets    atomic.Int64
	hits    atomic.Int64
	puts    atomic.Int64
	corrupt atomic.Int64
}

// StoreStats is a point-in-time counter snapshot.
type StoreStats struct {
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Puts    int64 `json:"puts"`
	Corrupt int64 `json:"corrupt"`
}

// OpenStore opens (creating if needed) a disk store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(kind string, d Digest) string {
	return filepath.Join(s.dir, kind+"-"+d.Hex()+".art")
}

// Put atomically persists payload under (kind, digest). Failures are
// returned but safe to ignore: the store is an accelerator, never the
// source of truth.
func (s *Store) Put(kind string, d Digest, payload []byte) error {
	buf := make([]byte, 0, len(storeMagic)+8+8+len(kind)+8+len(payload)+sha256.Size)
	buf = append(buf, storeMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, storeVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(kind)))
	buf = append(buf, kind...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put: %w", err)
	}
	if err := os.Rename(tmpName, s.path(kind, d)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Get loads the payload stored under (kind, digest). It returns
// (nil, false) on a miss or on any corruption: bad magic, wrong
// version, mismatched kind, truncation, or checksum failure.
func (s *Store) Get(kind string, d Digest) ([]byte, bool) {
	s.gets.Add(1)
	raw, err := os.ReadFile(s.path(kind, d))
	if err != nil {
		return nil, false
	}
	bad := func() ([]byte, bool) {
		s.corrupt.Add(1)
		return nil, false
	}
	if len(raw) < len(storeMagic)+16 {
		return bad()
	}
	if [4]byte(raw[:4]) != storeMagic {
		return bad()
	}
	raw = raw[4:]
	if binary.BigEndian.Uint64(raw[:8]) != storeVersion {
		return bad()
	}
	kl := binary.BigEndian.Uint64(raw[8:16])
	raw = raw[16:]
	if uint64(len(raw)) < kl+8 {
		return bad()
	}
	if string(raw[:kl]) != kind {
		return bad()
	}
	raw = raw[kl:]
	pl := binary.BigEndian.Uint64(raw[:8])
	raw = raw[8:]
	if uint64(len(raw)) != pl+sha256.Size {
		return bad()
	}
	payload := raw[:pl]
	var want [sha256.Size]byte
	copy(want[:], raw[pl:])
	if sha256.Sum256(payload) != want {
		return bad()
	}
	s.hits.Add(1)
	return payload, true
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Gets:    s.gets.Load(),
		Hits:    s.hits.Load(),
		Puts:    s.puts.Load(),
		Corrupt: s.corrupt.Load(),
	}
}
