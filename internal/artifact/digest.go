// Package artifact is the content-addressed caching substrate: canonical
// versioned digests for the domain objects a solve depends on (chips,
// assays, solver option sets), a sharded memory-bounded once-map with
// singleflight semantics, and an optional disk store with atomic writes
// and corruption-tolerant loads. Everything above it — the flow cache,
// suite cache, template persistence, batch dedup (internal/core) — keys
// work by these digests, so identical submissions cost one solve and a
// warm process can skip whole stages.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/pso"
	"repro/internal/sched"
)

// Version is the digest schema version. It is folded into every digest,
// so changing the canonical encoding (or the semantics of any hashed
// field) invalidates all previously stored artifacts instead of serving
// stale ones.
const Version = 1

// Digest is a 32-byte content address (SHA-256 of a canonical encoding).
type Digest [sha256.Size]byte

// Hex returns the digest as lowercase hex.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Hasher builds a digest from a canonical, type-tagged binary encoding.
// Every primitive is framed with a tag byte and a fixed-width or
// length-prefixed payload, so adjacent values never alias ("ab","c" vs
// "a","bc") and the encoding is independent of struct field order in the
// source: callers emit fields in a fixed documented order, and helpers
// that hash maps sort the keys first.
type Hasher struct {
	h   hash.Hash
	buf [9]byte
}

// NewHasher starts a digest of the given kind. The kind and the package
// Version are part of the hash, so digests of different artifact kinds
// (or schema versions) never collide by construction.
func NewHasher(kind string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.tag('A')
	h.Uint(Version)
	h.Str(kind)
	return h
}

func (h *Hasher) tag(t byte) {
	h.buf[0] = t
	h.h.Write(h.buf[:1])
}

func (h *Hasher) u64(v uint64) {
	binary.BigEndian.PutUint64(h.buf[1:9], v)
	h.h.Write(h.buf[1:9])
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) {
	h.tag('i')
	h.u64(uint64(v))
}

// Uint hashes an unsigned integer.
func (h *Hasher) Uint(v uint64) {
	h.tag('u')
	h.u64(v)
}

// Bool hashes a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.tag('T')
	} else {
		h.tag('F')
	}
}

// Float hashes a float64 by its IEEE-754 bits (so 0.7 hashes identically
// on every platform and -0 differs from +0; callers normalize NaNs if
// they can produce them).
func (h *Hasher) Float(f float64) {
	h.tag('f')
	h.u64(math.Float64bits(f))
}

// Str hashes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.tag('s')
	h.u64(uint64(len(s)))
	h.h.Write([]byte(s))
}

// Bytes hashes a length-prefixed byte slice.
func (h *Hasher) Bytes(b []byte) {
	h.tag('b')
	h.u64(uint64(len(b)))
	h.h.Write(b)
}

// Ints hashes a length-prefixed int slice.
func (h *Hasher) Ints(v []int) {
	h.tag('I')
	h.u64(uint64(len(v)))
	for _, x := range v {
		h.u64(uint64(int64(x)))
	}
}

// Digest folds another digest in (composition of sub-artifact hashes).
func (h *Hasher) Digest(d Digest) {
	h.tag('D')
	h.h.Write(d[:])
}

// Begin opens a named struct/section frame; End closes it. Frames keep
// optional trailing sections (added in later schema versions) from
// aliasing with preceding fields.
func (h *Hasher) Begin(label string) {
	h.tag('(')
	h.Str(label)
}

// End closes the innermost frame opened by Begin.
func (h *Hasher) End() { h.tag(')') }

// Sum finalizes and returns the digest. The Hasher must not be used
// after Sum.
func (h *Hasher) Sum() Digest {
	var d Digest
	h.h.Sum(d[:0])
	return d
}

// SortedStrs hashes a set of strings independent of input order.
func (h *Hasher) SortedStrs(v []string) {
	s := append([]string(nil), v...)
	sort.Strings(s)
	h.tag('S')
	h.u64(uint64(len(s)))
	for _, x := range s {
		h.Str(x)
	}
}

// HashChip digests a chip: name, grid dimensions, devices, ports, and
// every valve (original and DFT) with its guarded edge. Two chips with
// identical content always digest identically regardless of how they
// were constructed (loaded, generated, cloned, augmented edge-by-edge),
// because the encoding walks the canonical accessor order only.
func HashChip(c *chip.Chip) Digest {
	h := NewHasher("chip")
	h.Str(c.Name)
	h.Int(int64(c.Grid.W))
	h.Int(int64(c.Grid.H))
	h.Begin("devices")
	h.Uint(uint64(len(c.Devices)))
	for _, d := range c.Devices {
		h.Int(int64(d.ID))
		h.Int(int64(d.Kind))
		h.Str(d.Name)
		h.Int(int64(d.Node))
	}
	h.End()
	h.Begin("ports")
	h.Uint(uint64(len(c.Ports)))
	for _, p := range c.Ports {
		h.Int(int64(p.ID))
		h.Str(p.Name)
		h.Int(int64(p.Node))
	}
	h.End()
	h.Begin("valves")
	h.Uint(uint64(c.NumValves()))
	for _, v := range c.Valves() {
		h.Int(int64(v.ID))
		h.Int(int64(v.Edge))
		h.Bool(v.DFT)
	}
	h.End()
	h.Int(int64(c.NumOriginalValves()))
	return h.Sum()
}

// HashAssay digests an assay graph: name, operations (id, kind, name,
// duration) and the dependency edges. Successor lists are hashed in
// sorted order so the digest is independent of edge insertion order.
func HashAssay(g *assay.Graph) Digest {
	h := NewHasher("assay")
	h.Str(g.Name)
	ops := g.Ops()
	h.Uint(uint64(len(ops)))
	for _, op := range ops {
		h.Int(int64(op.ID))
		h.Int(int64(op.Kind))
		h.Str(op.Name)
		h.Int(int64(op.Duration))
	}
	h.Begin("edges")
	for _, op := range ops {
		succs := append([]int(nil), g.Succs(op.ID)...)
		sort.Ints(succs)
		h.Ints(succs)
	}
	h.End()
	return h.Sum()
}

// HashSchedParams digests scheduler parameters in canonical (defaulted)
// form, so a zero Params and an explicitly-defaulted Params digest
// identically.
func HashSchedParams(p sched.Params) Digest {
	p = p.Canonical()
	h := NewHasher("sched")
	h.Int(int64(p.TransportTimePerEdge))
	h.Int(int64(p.MaxTime))
	h.Int(int64(p.MaxReroutes))
	h.Int(int64(p.WashTimePerEdge))
	ban := func(v []int) {
		s := append([]int(nil), v...)
		sort.Ints(s)
		h.Ints(s)
	}
	ban(p.BanClosed)
	ban(p.BanOpen)
	h.Bool(p.RelaxStuckOpenSeal)
	return h.Sum()
}

// HashPSOConfig digests the semantic subset of a PSO configuration in
// canonical (defaulted) form. Execution-only fields — Workers and
// OnIteration — are excluded: they never change the search result (the
// engine is bit-identical for any worker count).
func HashPSOConfig(cfg pso.Config) Digest {
	cfg = cfg.Canonical()
	h := NewHasher("pso")
	h.Int(int64(cfg.Particles))
	h.Int(int64(cfg.Iterations))
	h.Float(cfg.Omega)
	h.Float(cfg.C1)
	h.Float(cfg.C2)
	h.Float(cfg.VMax)
	h.Int(cfg.Seed)
	return h.Sum()
}

// SumBytes digests a raw payload under a kind tag — used for artifacts
// whose natural key is already a canonical string (template signatures).
func SumBytes(kind string, payload []byte) Digest {
	h := NewHasher(kind)
	h.Bytes(payload)
	return h.Sum()
}
