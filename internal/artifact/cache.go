package artifact

import (
	"sort"
	"sync"
	"sync/atomic"
)

const cacheShards = 16

// Cache is a sharded, memory-bounded once-map with singleflight
// semantics: the first caller of Do for a key runs the compute, every
// concurrent duplicate blocks on it and shares the value. Entries carry
// an approximate byte size (sizeOf plus key and fixed overhead) and a
// last-access epoch; when the total exceeds the byte budget, Trim
// evicts the coldest entries (oldest epoch first, then lexicographic
// key order, so eviction is deterministic for any worker count).
//
// Trim and AdvanceEpoch must only be called from serial sections — a
// stage boundary, a batch fan-in barrier — never concurrently with Do.
// That restriction is what makes hit/miss/evict counters deterministic:
// within an epoch every access stamps the same epoch, so residency
// after a trim depends only on *which* keys each epoch touched (a
// deterministic workload property), not on goroutine timing.
//
// A budget <= 0 disables eviction entirely (unbounded, the zero-cost
// default for callers that want only the singleflight once-map).
type Cache[V any] struct {
	sizeOf func(V) int64
	budget int64

	epoch  atomic.Int64
	used   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64

	shards [cacheShards]cacheShard[V]
}

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once  sync.Once
	val   V
	size  int64
	epoch atomic.Int64
	done  atomic.Bool
}

// entryOverhead approximates the fixed per-entry bookkeeping cost.
const entryOverhead = 96

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// NewCache builds a cache with the given byte budget (<= 0 = unbounded)
// and value-size estimator (nil = count only key + fixed overhead).
func NewCache[V any](budget int64, sizeOf func(V) int64) *Cache[V] {
	c := &Cache[V]{sizeOf: sizeOf, budget: budget}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry[V])
	}
	return c
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Do returns the cached value for key, computing it via compute exactly
// once per residency: the first caller runs compute, concurrent callers
// for the same key block until it finishes and share the result. The
// second return reports whether the value was already resident (a hit).
// A key evicted by Trim is recomputed on next access — computes must be
// pure functions of the key for the cache to be transparent.
func (c *Cache[V]) Do(key string, compute func() V) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, hit := s.m[key]
	if !hit {
		e = &cacheEntry[V]{}
		s.m[key] = e
	}
	s.mu.Unlock()
	e.epoch.Store(c.epoch.Load())
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.val = compute()
		size := int64(len(key)) + entryOverhead
		if c.sizeOf != nil {
			size += c.sizeOf(e.val)
		}
		e.size = size
		c.used.Add(size)
		e.done.Store(true)
	})
	return e.val, hit
}

// Get returns the value for key if resident and fully computed.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok || !e.done.Load() {
		var zero V
		return zero, false
	}
	e.epoch.Store(c.epoch.Load())
	return e.val, true
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate resident size.
func (c *Cache[V]) Bytes() int64 { return c.used.Load() }

// Range calls fn for every fully-computed entry, in unspecified order.
func (c *Cache[V]) Range(fn func(key string, val V)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		keys := make([]string, 0, len(s.m))
		for k := range s.m {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		for _, k := range keys {
			if v, ok := c.Get(k); ok {
				fn(k, v)
			}
		}
	}
}

// SortedKeys returns every resident key in lexicographic order.
func (c *Cache[V]) SortedKeys() []string {
	var keys []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			keys = append(keys, k)
		}
		s.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// AdvanceEpoch starts a new recency epoch and then trims. Call from
// serial sections only (stage boundaries); see the type comment.
func (c *Cache[V]) AdvanceEpoch() {
	c.epoch.Add(1)
	c.Trim()
}

// Trim evicts the coldest entries (oldest last-access epoch, ties by
// key) until the resident size fits the budget. No-op when unbounded or
// already within budget. Serial sections only.
func (c *Cache[V]) Trim() {
	if c.budget <= 0 || c.used.Load() <= c.budget {
		return
	}
	type cand struct {
		key   string
		epoch int64
		size  int64
	}
	var cands []cand
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.m {
			if e.done.Load() { // never evict an in-flight compute
				cands = append(cands, cand{k, e.epoch.Load(), e.size})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].epoch != cands[j].epoch {
			return cands[i].epoch < cands[j].epoch
		}
		return cands[i].key < cands[j].key
	})
	for _, cd := range cands {
		if c.used.Load() <= c.budget {
			break
		}
		s := c.shard(cd.key)
		s.mu.Lock()
		if e, ok := s.m[cd.key]; ok && e.done.Load() {
			delete(s.m, cd.key)
			c.used.Add(-e.size)
			c.evicts.Add(1)
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
		Entries:   int64(c.Len()),
		Bytes:     c.used.Load(),
	}
}
