package assay

import (
	"fmt"
	"math/rand"
)

// Synthetic generates a deterministic layered bioassay sized for the FPVA
// campaign workloads: dispense roots feed layers of mix operations that
// drain into detect leaves, with cross-layer dependencies drawn from seed.
// The same (ops, seed) always yields the same graph, byte-identical
// through the loader; ops is clamped to at least 4 (two dispenses, one
// mix, one detect).
func Synthetic(ops int, seed int64) *Graph {
	if ops < 4 {
		ops = 4
	}
	g := New(fmt.Sprintf("synthetic_%d_s%d", ops, seed))
	rng := rand.New(rand.NewSource(seed))

	nDetect := ops / 8
	if nDetect < 1 {
		nDetect = 1
	}
	nDispense := ops / 4
	if nDispense < 2 {
		nDispense = 2
	}
	nMix := ops - nDetect - nDispense
	if nMix < 1 {
		nMix = 1
	}

	var dispense []int
	for i := 0; i < nDispense; i++ {
		dispense = append(dispense, g.AddOp(Dispense, fmt.Sprintf("S%d", i), DefaultDispenseTime))
	}
	// Mix layers of ~4; each mix consumes two products of earlier ops.
	prev := dispense
	var mixes []int
	for len(mixes) < nMix {
		width := 4
		if rem := nMix - len(mixes); rem < width {
			width = rem
		}
		var layer []int
		for i := 0; i < width; i++ {
			id := g.AddOp(Mix, fmt.Sprintf("M%d", len(mixes)+i), DefaultMixTime+5*rng.Intn(4))
			g.AddDep(prev[rng.Intn(len(prev))], id)
			g.AddDep(prev[rng.Intn(len(prev))], id)
			layer = append(layer, id)
		}
		mixes = append(mixes, layer...)
		prev = layer
	}
	for i := 0; i < nDetect; i++ {
		id := g.AddOp(Detect, fmt.Sprintf("D%d", i), DefaultDetectTime)
		g.AddDep(mixes[len(mixes)-1-i%len(mixes)], id)
	}
	mustValidate(g)
	return g
}
