package assay

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBenchmarkOpCounts(t *testing.T) {
	cases := []struct {
		g   *Graph
		ops int
		mix int
		det int
		dsp int
	}{
		{IVD(), 12, 6, 6, 0},
		{PID(), 38, 19, 19, 0},
		{CPA(), 55, 23, 8, 24},
	}
	for _, tc := range cases {
		if got := tc.g.NumOps(); got != tc.ops {
			t.Errorf("%s: ops = %d, want %d", tc.g.Name, got, tc.ops)
		}
		if got := tc.g.CountKind(Mix); got != tc.mix {
			t.Errorf("%s: mixes = %d, want %d", tc.g.Name, got, tc.mix)
		}
		if got := tc.g.CountKind(Detect); got != tc.det {
			t.Errorf("%s: detects = %d, want %d", tc.g.Name, got, tc.det)
		}
		if got := tc.g.CountKind(Dispense); got != tc.dsp {
			t.Errorf("%s: dispenses = %d, want %d", tc.g.Name, got, tc.dsp)
		}
	}
}

func TestBenchmarksValidate(t *testing.T) {
	for _, g := range Benchmarks() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	for _, name := range []string{"IVD", "PID", "CPA", "ivd", "pid", "cpa"} {
		if _, ok := BenchmarkByName(name); !ok {
			t.Errorf("BenchmarkByName(%q) failed", name)
		}
	}
	if _, ok := BenchmarkByName("bogus"); ok {
		t.Error("unknown assay must not resolve")
	}
}

func TestIVDStructure(t *testing.T) {
	g := IVD()
	roots := g.Roots()
	if len(roots) != 4 {
		t.Fatalf("IVD roots = %d, want 4 first-stage mixes", len(roots))
	}
	leaves := g.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("IVD leaves = %d, want 6 detects", len(leaves))
	}
	for _, l := range leaves {
		if g.Op(l).Kind != Detect {
			t.Fatalf("IVD leaf %d is %v, want detect", l, g.Op(l).Kind)
		}
	}
}

func TestPIDIsChain(t *testing.T) {
	g := PID()
	// The dilution chain: exactly one root mix, and each mix has at most
	// one mix successor.
	roots := g.Roots()
	if len(roots) != 1 {
		t.Fatalf("PID roots = %v, want single chain head", roots)
	}
	for _, op := range g.Ops() {
		if op.Kind != Mix {
			continue
		}
		mixSuccs := 0
		for _, s := range g.Succs(op.ID) {
			if g.Op(s).Kind == Mix {
				mixSuccs++
			}
		}
		if mixSuccs > 1 {
			t.Fatalf("PID mix %d has %d mix successors", op.ID, mixSuccs)
		}
	}
	// Critical path must be at least the 19 chained mixes.
	if cp := g.CriticalPath(); cp < 19*DefaultMixTime {
		t.Fatalf("PID critical path %d < %d", cp, 19*DefaultMixTime)
	}
}

func TestCPADispensesAreRoots(t *testing.T) {
	g := CPA()
	for _, op := range g.Ops() {
		if op.Kind == Dispense && len(g.Preds(op.ID)) != 0 {
			t.Fatalf("dispense %q has predecessors", op.Name)
		}
	}
	if len(g.Leaves()) != 8 {
		t.Fatalf("CPA leaves = %d, want 8 reads", len(g.Leaves()))
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := CPA()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumOps())
	for i, id := range order {
		pos[id] = i
	}
	for _, op := range g.Ops() {
		for _, s := range g.Succs(op.ID) {
			if pos[op.ID] >= pos[s] {
				t.Fatalf("topo order violates %d -> %d", op.ID, s)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyclic")
	a := g.AddOp(Mix, "a", 10)
	b := g.AddOp(Mix, "b", 10)
	g.AddDep(a, b)
	g.AddDep(b, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle must be detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic graph")
	}
}

func TestValidateRejectsDetectWithSuccessor(t *testing.T) {
	g := New("bad")
	d := g.AddOp(Detect, "d", 10)
	m := g.AddOp(Mix, "m", 10)
	g.AddDep(d, m)
	if err := g.Validate(); err == nil {
		t.Fatal("detect with successor must be rejected")
	}
}

func TestValidateRejectsDispenseWithPred(t *testing.T) {
	g := New("bad")
	m := g.AddOp(Mix, "m", 10)
	d := g.AddOp(Dispense, "d", 5)
	g.AddDep(m, d)
	if err := g.Validate(); err == nil {
		t.Fatal("dispense with predecessor must be rejected")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestCriticalPathSimple(t *testing.T) {
	g := New("cp")
	a := g.AddOp(Mix, "a", 10)
	b := g.AddOp(Mix, "b", 20)
	c := g.AddOp(Detect, "c", 5)
	g.AddDep(a, b)
	g.AddDep(b, c)
	if cp := g.CriticalPath(); cp != 35 {
		t.Fatalf("critical path = %d, want 35", cp)
	}
}

func TestStringMentionsCounts(t *testing.T) {
	s := IVD().String()
	if !strings.Contains(s, "12 ops") || !strings.Contains(s, "6 mix") {
		t.Fatalf("String() = %q", s)
	}
}

func TestOpKindString(t *testing.T) {
	if Dispense.String() != "dispense" || Mix.String() != "mix" || Detect.String() != "detect" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(9).String() != "unknown" {
		t.Fatal("unknown OpKind string")
	}
}

// Property: random layered DAGs always topo-sort, and the critical path is
// at least the maximum single op duration and at most the duration sum.
func TestCriticalPathBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New("rand")
		nLayers := 2 + rng.Intn(4)
		var prev []int
		sum, maxDur := 0, 0
		for l := 0; l < nLayers; l++ {
			width := 1 + rng.Intn(4)
			var cur []int
			for w := 0; w < width; w++ {
				d := 1 + rng.Intn(50)
				sum += d
				if d > maxDur {
					maxDur = d
				}
				id := g.AddOp(Mix, "m", d)
				cur = append(cur, id)
				for _, p := range prev {
					if rng.Intn(2) == 0 {
						g.AddDep(p, id)
					}
				}
			}
			prev = cur
		}
		if _, err := g.TopoOrder(); err != nil {
			return false
		}
		cp := g.CriticalPath()
		return cp >= maxDur && cp <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
