// Package assay models biochemical applications as sequencing graphs
// G = (O, E): nodes are operations (dispense, mix, detect) with durations,
// and an edge (i, j) means operation j consumes the fluid produced by
// operation i, so i must finish (and its product be transported) before j
// starts.
//
// The package ships reconstructions of the paper's three real-world
// bioassays with the published operation counts: IVD (12 ops), PID (38
// ops) and CPA (55 ops). The original graphs are unpublished; the
// structures below follow the standard forms used in the synthesis
// literature (diagnostic chains, serial dilution, colorimetric ladders).
package assay

import (
	"fmt"
)

// OpKind classifies operations.
type OpKind int

// Operation kinds. Dispense draws fluid in at a port; Mix runs on a mixer;
// Detect runs on a detector.
const (
	Dispense OpKind = iota
	Mix
	Detect
)

func (k OpKind) String() string {
	switch k {
	case Dispense:
		return "dispense"
	case Mix:
		return "mix"
	case Detect:
		return "detect"
	}
	return "unknown"
}

// Operation durations in seconds, per assay. They are calibrated so that
// the original-chip execution times land in the neighbourhood of the
// paper's Table 1; the evaluation compares relative times, which do not
// depend on the exact values.
const (
	DefaultDispenseTime = 5
	DefaultMixTime      = 40
	DefaultDetectTime   = 30

	IVDMixTime    = 60
	IVDDetectTime = 40

	PIDMixTime    = 40
	PIDDetectTime = 30

	CPAMixTime    = 90
	CPADetectTime = 45
)

// Op is one operation of a bioassay.
type Op struct {
	ID       int
	Kind     OpKind
	Name     string
	Duration int // seconds
}

// Graph is a sequencing graph (a DAG of operations).
type Graph struct {
	Name  string
	ops   []Op
	succs [][]int
	preds [][]int
}

// New returns an empty sequencing graph.
func New(name string) *Graph { return &Graph{Name: name} }

// AddOp appends an operation and returns its ID.
func (g *Graph) AddOp(kind OpKind, name string, duration int) int {
	if duration <= 0 {
		panic(fmt.Sprintf("assay %s: op %q has non-positive duration %d", g.Name, name, duration))
	}
	id := len(g.ops)
	g.ops = append(g.ops, Op{ID: id, Kind: kind, Name: name, Duration: duration})
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return id
}

// AddDep records that op to consumes the product of op from.
func (g *Graph) AddDep(from, to int) {
	if from < 0 || from >= len(g.ops) || to < 0 || to >= len(g.ops) {
		panic(fmt.Sprintf("assay %s: dependency %d->%d out of range", g.Name, from, to))
	}
	if from == to {
		panic(fmt.Sprintf("assay %s: self dependency on op %d", g.Name, from))
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// NumOps returns the operation count.
func (g *Graph) NumOps() int { return len(g.ops) }

// Op returns operation id.
func (g *Graph) Op(id int) Op { return g.ops[id] }

// Ops returns all operations; the slice is shared, do not mutate.
func (g *Graph) Ops() []Op { return g.ops }

// Preds returns the predecessor IDs of op id (shared slice).
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// Succs returns the successor IDs of op id (shared slice).
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Roots returns the ops with no predecessors.
func (g *Graph) Roots() []int {
	var out []int
	for i := range g.ops {
		if len(g.preds[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Leaves returns the ops with no successors.
func (g *Graph) Leaves() []int {
	var out []int
	for i := range g.ops {
		if len(g.succs[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns a topological order, or an error if the graph has a
// cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.preds[i])
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("assay %s: sequencing graph has a cycle", g.Name)
	}
	return order, nil
}

// Validate checks that the graph is a DAG, every op has a positive
// duration, and detect operations have no successors that feed mixers
// upstream (detects are terminal measurements in our model: they may chain
// to further detects but not produce fluid for mixes).
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("assay %s: empty graph", g.Name)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, op := range g.ops {
		if op.Duration <= 0 {
			return fmt.Errorf("assay %s: op %d duration %d", g.Name, op.ID, op.Duration)
		}
		if op.Kind == Detect && len(g.succs[op.ID]) > 0 {
			return fmt.Errorf("assay %s: detect op %q has successors", g.Name, op.Name)
		}
		if op.Kind == Dispense && len(g.preds[op.ID]) > 0 {
			return fmt.Errorf("assay %s: dispense op %q has predecessors", g.Name, op.Name)
		}
	}
	return nil
}

// CriticalPath returns the length in seconds of the longest
// duration-weighted path, a device- and transport-free lower bound on any
// schedule's execution time.
func (g *Graph) CriticalPath() int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	finish := make([]int, len(g.ops))
	best := 0
	for _, u := range order {
		start := 0
		for _, p := range g.preds[u] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + g.ops[u].Duration
		if finish[u] > best {
			best = finish[u]
		}
	}
	return best
}

// CountKind returns the number of ops of kind k.
func (g *Graph) CountKind(k OpKind) int {
	n := 0
	for _, op := range g.ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d ops (%d dispense, %d mix, %d detect), critical path %ds",
		g.Name, g.NumOps(), g.CountKind(Dispense), g.CountKind(Mix), g.CountKind(Detect), g.CriticalPath())
}
