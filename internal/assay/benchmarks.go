package assay

import "fmt"

// IVD returns the In-Vitro Diagnostics assay (12 operations): four
// sample-reagent mixes each followed by an optical detection, then two
// second-stage confirmation mixes combining pairs of first-stage products,
// each with its own detection.
//
//	mix1..mix4 -> det1..det4
//	(mix1,mix2) -> mix5 -> det5
//	(mix3,mix4) -> mix6 -> det6
func IVD() *Graph {
	g := New("IVD")
	var mix [7]int // 1-indexed
	for i := 1; i <= 4; i++ {
		mix[i] = g.AddOp(Mix, fmt.Sprintf("mix%d", i), IVDMixTime)
		det := g.AddOp(Detect, fmt.Sprintf("det%d", i), IVDDetectTime)
		g.AddDep(mix[i], det)
	}
	mix[5] = g.AddOp(Mix, "mix5", IVDMixTime)
	g.AddDep(mix[1], mix[5])
	g.AddDep(mix[2], mix[5])
	det5 := g.AddOp(Detect, "det5", IVDDetectTime)
	g.AddDep(mix[5], det5)
	mix[6] = g.AddOp(Mix, "mix6", IVDMixTime)
	g.AddDep(mix[3], mix[6])
	g.AddDep(mix[4], mix[6])
	det6 := g.AddOp(Detect, "det6", IVDDetectTime)
	g.AddDep(mix[6], det6)
	mustValidate(g)
	return g
}

// PID returns the Protein Interpolation Dilution assay (38 operations): a
// serial dilution chain of 19 mixes, each dilution step measured by a
// detection, for 19 + 19 = 38 operations. Each mix consumes the previous
// dilution; detections branch off the chain.
func PID() *Graph {
	g := New("PID")
	prev := -1
	for i := 1; i <= 19; i++ {
		m := g.AddOp(Mix, fmt.Sprintf("dil%d", i), PIDMixTime)
		if prev >= 0 {
			g.AddDep(prev, m)
		}
		d := g.AddOp(Detect, fmt.Sprintf("det%d", i), PIDDetectTime)
		g.AddDep(m, d)
		prev = m
	}
	mustValidate(g)
	return g
}

// CPA returns the Colorimetric Protein Assay (55 operations): 16 sample/
// buffer dispenses feed a complete binary mixing tree of 15 mixes producing
// one calibrated dilution; the product is split into 8 aliquots, each mixed
// with a dispensed reagent (8 dispenses + 8 mixes) and measured (8
// detects). 24 dispenses + 23 mixes + 8 detects = 55 operations.
func CPA() *Graph {
	g := New("CPA")
	// Level 0: 16 dispenses.
	level := make([]int, 16)
	for i := range level {
		level[i] = g.AddOp(Dispense, fmt.Sprintf("dsp%d", i+1), DefaultDispenseTime)
	}
	// Binary tree: 8 + 4 + 2 + 1 = 15 mixes.
	lvl := 1
	for len(level) > 1 {
		next := make([]int, 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			m := g.AddOp(Mix, fmt.Sprintf("tree%d_%d", lvl, i/2+1), CPAMixTime)
			g.AddDep(level[i], m)
			g.AddDep(level[i+1], m)
			next = append(next, m)
		}
		level = next
		lvl++
	}
	root := level[0]
	// 8 reagent dispenses, 8 assay mixes, 8 detects.
	for i := 1; i <= 8; i++ {
		r := g.AddOp(Dispense, fmt.Sprintf("reagent%d", i), DefaultDispenseTime)
		m := g.AddOp(Mix, fmt.Sprintf("assay%d", i), CPAMixTime)
		g.AddDep(root, m)
		g.AddDep(r, m)
		d := g.AddOp(Detect, fmt.Sprintf("read%d", i), CPADetectTime)
		g.AddDep(m, d)
	}
	mustValidate(g)
	return g
}

// Benchmarks returns fresh instances of the three paper assays in Table 1
// order.
func Benchmarks() []*Graph { return []*Graph{IVD(), PID(), CPA()} }

// BenchmarkByName returns a fresh instance of the named assay; ok is false
// for unknown names.
func BenchmarkByName(name string) (*Graph, bool) {
	switch name {
	case "IVD", "ivd":
		return IVD(), true
	case "PID", "pid":
		return PID(), true
	case "CPA", "cpa":
		return CPA(), true
	}
	return nil, false
}

func mustValidate(g *Graph) {
	if err := g.Validate(); err != nil {
		panic(err)
	}
}
