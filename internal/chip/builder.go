package chip

import (
	"fmt"

	"repro/internal/grid"
)

// Builder assembles a Chip incrementally and validates it at Build time.
// Coordinates refer to the chip's connection grid.
type Builder struct {
	name string
	grd  *grid.Grid
	chip *Chip
	errs []error
}

// NewBuilder starts a chip on a fresh w×h connection grid.
func NewBuilder(name string, w, h int) *Builder {
	g := grid.New(w, h)
	c := &Chip{Name: name, Grid: g, valveOfEdge: make([]int, g.NumEdges())}
	for i := range c.valveOfEdge {
		c.valveOfEdge[i] = -1
	}
	return &Builder{name: name, grd: g, chip: c}
}

// AddDevice places a device at coordinate c and returns its ID.
func (b *Builder) AddDevice(kind DeviceKind, name string, c grid.Coord) int {
	node := b.grd.NodeAt(c)
	if d, ok := b.chip.DeviceAt(node); ok {
		b.errs = append(b.errs, fmt.Errorf("device %q collides with %q at %v", name, d.Name, c))
	}
	if p, ok := b.chip.PortAt(node); ok {
		b.errs = append(b.errs, fmt.Errorf("device %q collides with port %q at %v", name, p.Name, c))
	}
	id := len(b.chip.Devices)
	b.chip.Devices = append(b.chip.Devices, Device{ID: id, Kind: kind, Name: name, Node: node})
	return id
}

// AddPort places an external port at boundary coordinate c and returns its ID.
func (b *Builder) AddPort(name string, c grid.Coord) int {
	if !b.grd.OnBoundary(c) {
		b.errs = append(b.errs, fmt.Errorf("port %q at %v is not on the grid boundary", name, c))
	}
	node := b.grd.NodeAt(c)
	if d, ok := b.chip.DeviceAt(node); ok {
		b.errs = append(b.errs, fmt.Errorf("port %q collides with device %q at %v", name, d.Name, c))
	}
	if p, ok := b.chip.PortAt(node); ok {
		b.errs = append(b.errs, fmt.Errorf("port %q collides with port %q at %v", name, p.Name, c))
	}
	id := len(b.chip.Ports)
	b.chip.Ports = append(b.chip.Ports, Port{ID: id, Name: name, Node: node})
	return id
}

// AddChannel routes a flow channel along the coordinate walk, placing one
// valve per grid edge. Edges already occupied are an error (channels meet
// only at nodes, forming switches).
func (b *Builder) AddChannel(walk ...grid.Coord) {
	edges, err := b.grd.PathEdges(walk)
	if err != nil {
		b.errs = append(b.errs, err)
		return
	}
	for _, e := range edges {
		if b.chip.valveOfEdge[e] >= 0 {
			a, c := b.grd.EdgeEndpoints(e)
			b.errs = append(b.errs, fmt.Errorf("channel edge %v-%v already occupied", a, c))
			continue
		}
		id := len(b.chip.valves)
		b.chip.valves = append(b.chip.valves, Valve{ID: id, Edge: e})
		b.chip.valveOfEdge[e] = id
	}
}

// Build validates and returns the chip:
//   - at least 2 ports and 1 device,
//   - every device and port touches at least one channel edge,
//   - the channel network is connected.
func (b *Builder) Build() (*Chip, error) {
	c := b.chip
	c.numOriginal = len(c.valves)
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("chip %s: %d build errors, first: %w", b.name, len(b.errs), b.errs[0])
	}
	if len(c.Ports) < 2 {
		return nil, fmt.Errorf("chip %s: needs at least 2 ports, has %d", b.name, len(c.Ports))
	}
	if len(c.Devices) == 0 {
		return nil, fmt.Errorf("chip %s: has no devices", b.name)
	}
	touches := func(node int) bool {
		for _, e := range c.Grid.IncidentEdges(node) {
			if c.valveOfEdge[e] >= 0 {
				return true
			}
		}
		return false
	}
	for _, d := range c.Devices {
		if !touches(d.Node) {
			return nil, fmt.Errorf("chip %s: device %q is not connected to any channel", b.name, d.Name)
		}
	}
	for _, p := range c.Ports {
		if !touches(p.Node) {
			return nil, fmt.Errorf("chip %s: port %q is not connected to any channel", b.name, p.Name)
		}
	}
	// Channel-network connectivity: all valved edges in one component.
	edges := c.ChannelEdges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("chip %s: has no channels", b.name)
	}
	comps := c.Grid.Graph().EdgeSubgraphComponents(edges)
	if len(comps) != 1 {
		return nil, fmt.Errorf("chip %s: channel network has %d disconnected parts", b.name, len(comps))
	}
	return c, nil
}

// MustBuild is Build that panics on error; for the built-in benchmarks.
func (b *Builder) MustBuild() *Chip {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
