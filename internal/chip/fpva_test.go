package chip

import (
	"testing"

	"repro/internal/grid"
)

func TestGenerateFPVAShape(t *testing.T) {
	c, err := GenerateFPVA(FPVAParams{W: 8, H: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Grid.W != 8 || c.Grid.H != 10 {
		t.Fatalf("grid %dx%d", c.Grid.W, c.Grid.H)
	}
	// Every lattice edge is a valved channel.
	if c.NumValves() != c.Grid.NumEdges() {
		t.Fatalf("valves %d != edges %d", c.NumValves(), c.Grid.NumEdges())
	}
	for _, p := range c.Ports {
		if !c.Grid.OnBoundary(c.Grid.CoordOf(p.Node)) {
			t.Fatalf("port %s not on boundary", p.Name)
		}
	}
	for _, d := range c.Devices {
		co := c.Grid.CoordOf(d.Node)
		if c.Grid.OnBoundary(co) {
			t.Fatalf("device %s on boundary at %v", d.Name, co)
		}
	}
	if c.CountDevices(Detector) == 0 {
		t.Fatal("no detector")
	}
}

func TestGenerateFPVAPortCounts(t *testing.T) {
	for _, tc := range []struct{ ports, want int }{
		{0, perimeter(8, 8) / 4}, // default spacing
		{2, 2},
		{5, 5},
		{1000, perimeter(8, 8)}, // clamped to the perimeter
	} {
		c, err := GenerateFPVA(FPVAParams{W: 8, H: 8, Seed: 1, Ports: tc.ports})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Ports) != tc.want {
			t.Fatalf("Ports=%d: got %d ports, want %d", tc.ports, len(c.Ports), tc.want)
		}
		seen := map[int]bool{}
		for _, p := range c.Ports {
			if seen[p.Node] {
				t.Fatalf("Ports=%d: duplicate port node %d", tc.ports, p.Node)
			}
			seen[p.Node] = true
		}
	}
}

func TestGenerateFPVARejectsTinyGrids(t *testing.T) {
	for _, p := range []FPVAParams{{W: 3, H: 8}, {W: 8, H: 3}, {W: 0, H: 0}, {W: -4, H: 4}} {
		if _, err := GenerateFPVA(p); err == nil {
			t.Fatalf("params %+v: expected error", p)
		}
	}
}

func TestBoundaryWalkCoversBoundaryOnce(t *testing.T) {
	g := grid.New(6, 5)
	walk := boundaryWalk(6, 5)
	if len(walk) != perimeter(6, 5) {
		t.Fatalf("walk length %d, want %d", len(walk), perimeter(6, 5))
	}
	seen := map[grid.Coord]bool{}
	for _, c := range walk {
		if !g.OnBoundary(c) {
			t.Fatalf("%v not on boundary", c)
		}
		if seen[c] {
			t.Fatalf("%v visited twice", c)
		}
		seen[c] = true
	}
}
