package chip

import (
	"math/rand"
	"testing"
)

func TestFPVAStructure(t *testing.T) {
	c := FPVA(5, 5)
	// Every lattice edge is a channel: 4*5*2 = 40 valves.
	if got := c.NumValves(); got != 40 {
		t.Fatalf("FPVA 5x5 valves = %d, want 40", got)
	}
	if len(c.Ports) != 4 {
		t.Fatalf("ports = %d, want 4", len(c.Ports))
	}
	if c.CountDevices(Mixer) != 2 || c.CountDevices(Detector) != 1 {
		t.Fatalf("devices: %d mixers, %d detectors", c.CountDevices(Mixer), c.CountDevices(Detector))
	}
	if c.Stats().FreeEdges != 0 {
		t.Fatalf("FPVA must have no free edges, got %d", c.Stats().FreeEdges)
	}
}

func TestFPVARejectsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FPVA(3,3) must panic")
		}
	}()
	FPVA(3, 3)
}

func TestFPVAFullyConnected(t *testing.T) {
	c := FPVA(6, 6)
	open := make([]bool, c.NumValves())
	for i := range open {
		open[i] = true
	}
	for i := 1; i < len(c.Ports); i++ {
		if !c.PressureReachable(c.Ports[0].Node, c.Ports[i].Node, open) {
			t.Fatalf("port %d unreachable", i)
		}
	}
}

func TestRandomChipsAreValid(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := Random(rng) // MustBuild panics on invalid chips
		if len(c.Ports) < 2 {
			t.Fatalf("seed %d: %d ports", seed, len(c.Ports))
		}
		if c.CountDevices(Detector) < 1 {
			t.Fatalf("seed %d: no detector", seed)
		}
		if c.CountDevices(Mixer) < 1 {
			t.Fatalf("seed %d: no mixer", seed)
		}
		// Channel network connected (already enforced by Build, but assert
		// pressure-level connectivity between all ports too).
		open := make([]bool, c.NumValves())
		for i := range open {
			open[i] = true
		}
		for i := 1; i < len(c.Ports); i++ {
			if !c.PressureReachable(c.Ports[0].Node, c.Ports[i].Node, open) {
				t.Fatalf("seed %d: port %d unreachable", seed, i)
			}
		}
	}
}

func TestRandomChipsDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)))
	b := Random(rand.New(rand.NewSource(7)))
	if a.NumValves() != b.NumValves() || a.Name != b.Name || len(a.Ports) != len(b.Ports) {
		t.Fatal("same seed must give the same chip")
	}
}
