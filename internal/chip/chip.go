// Package chip models continuous-flow microfluidic biochips mapped onto a
// virtual connection grid: devices (mixers, detectors) sit on grid nodes,
// flow channels occupy grid edges, and every channel edge is guarded by a
// microvalve. External ports sit on boundary nodes and are where pressure
// sources and meters attach during post-manufacture test.
//
// The package also models the control layer abstractly: each valve is
// actuated by a control line; DFT valves may share a line with an original
// valve (the paper's valve-sharing scheme), in which case the two always
// open and close together.
package chip

import (
	"fmt"
	"sort"

	"repro/internal/graphalg"
	"repro/internal/grid"
)

// DeviceKind classifies on-chip devices.
type DeviceKind int

// Device kinds. Mixer and Detector are the kinds used by the paper's
// benchmarks; Heater and Filter exist for custom chips.
const (
	Mixer DeviceKind = iota
	Detector
	Heater
	Filter
)

func (k DeviceKind) String() string {
	switch k {
	case Mixer:
		return "mixer"
	case Detector:
		return "detector"
	case Heater:
		return "heater"
	case Filter:
		return "filter"
	}
	return "unknown"
}

// Device is an on-chip functional unit occupying one grid node.
type Device struct {
	ID   int
	Kind DeviceKind
	Name string
	Node int
}

// Port is an external opening on the chip boundary where a pressure source
// or meter can attach during test, and where fluids enter/leave during
// operation.
type Port struct {
	ID   int
	Name string
	Node int
}

// Valve is a microvalve guarding one channel edge. DFT marks valves added
// by the design-for-testability augmentation.
type Valve struct {
	ID   int
	Edge int
	DFT  bool
}

// Chip is a biochip netlist on a connection grid.
type Chip struct {
	Name    string
	Grid    *grid.Grid
	Devices []Device
	Ports   []Port

	valves      []Valve
	valveOfEdge []int // grid edge -> valve ID, -1 if unoccupied
	numOriginal int   // valves[0:numOriginal] are original
}

// NumValves returns the total valve count (original + DFT).
func (c *Chip) NumValves() int { return len(c.valves) }

// NumOriginalValves returns the count of valves present before DFT.
func (c *Chip) NumOriginalValves() int { return c.numOriginal }

// NumDFTValves returns the count of valves added for DFT.
func (c *Chip) NumDFTValves() int { return len(c.valves) - c.numOriginal }

// Valves returns all valves; the slice is shared, do not mutate.
func (c *Chip) Valves() []Valve { return c.valves }

// Valve returns valve v.
func (c *Chip) Valve(v int) Valve { return c.valves[v] }

// ValveOnEdge returns the valve guarding a grid edge.
func (c *Chip) ValveOnEdge(edge int) (int, bool) {
	v := c.valveOfEdge[edge]
	return v, v >= 0
}

// ChannelEdges returns all occupied (valved) grid edges, sorted.
func (c *Chip) ChannelEdges() []int {
	out := make([]int, 0, len(c.valves))
	for _, v := range c.valves {
		out = append(out, v.Edge)
	}
	sort.Ints(out)
	return out
}

// OriginalEdges returns the grid edges occupied before DFT, sorted.
func (c *Chip) OriginalEdges() []int {
	out := make([]int, 0, c.numOriginal)
	for _, v := range c.valves[:c.numOriginal] {
		out = append(out, v.Edge)
	}
	sort.Ints(out)
	return out
}

// DFTEdges returns the grid edges added by DFT, sorted.
func (c *Chip) DFTEdges() []int {
	out := make([]int, 0, c.NumDFTValves())
	for _, v := range c.valves[c.numOriginal:] {
		out = append(out, v.Edge)
	}
	sort.Ints(out)
	return out
}

// AddDFTChannel occupies a previously free grid edge with a new channel and
// valve, returning the new valve's ID.
func (c *Chip) AddDFTChannel(edge int) (int, error) {
	if edge < 0 || edge >= c.Grid.NumEdges() {
		return 0, fmt.Errorf("chip %s: edge %d out of range", c.Name, edge)
	}
	if c.valveOfEdge[edge] >= 0 {
		return 0, fmt.Errorf("chip %s: edge %d already occupied by valve %d", c.Name, edge, c.valveOfEdge[edge])
	}
	id := len(c.valves)
	c.valves = append(c.valves, Valve{ID: id, Edge: edge, DFT: true})
	c.valveOfEdge[edge] = id
	return id, nil
}

// Clone deep-copies the chip (sharing the immutable grid).
func (c *Chip) Clone() *Chip {
	nc := &Chip{
		Name:        c.Name,
		Grid:        c.Grid,
		Devices:     append([]Device(nil), c.Devices...),
		Ports:       append([]Port(nil), c.Ports...),
		valves:      append([]Valve(nil), c.valves...),
		valveOfEdge: append([]int(nil), c.valveOfEdge...),
		numOriginal: c.numOriginal,
	}
	return nc
}

// DeviceAt returns the device occupying a node, if any.
func (c *Chip) DeviceAt(node int) (Device, bool) {
	for _, d := range c.Devices {
		if d.Node == node {
			return d, true
		}
	}
	return Device{}, false
}

// PortAt returns the port at a node, if any.
func (c *Chip) PortAt(node int) (Port, bool) {
	for _, p := range c.Ports {
		if p.Node == node {
			return p, true
		}
	}
	return Port{}, false
}

// DevicesOfKind returns the devices of the given kind, in ID order.
func (c *Chip) DevicesOfKind(k DeviceKind) []Device {
	var out []Device
	for _, d := range c.Devices {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// CountDevices returns the number of devices of kind k.
func (c *Chip) CountDevices(k DeviceKind) int { return len(c.DevicesOfKind(k)) }

// MaxDistantPortPair returns the two port IDs with the largest hop distance
// over the channel network, the pair the paper selects as test source and
// meter ("we used the two ports between which the distance is the largest").
// Unreachable pairs rank above all reachable ones (they force the DFT step
// to connect them). Ties break towards lower port IDs.
func (c *Chip) MaxDistantPortPair() (a, b int) {
	if len(c.Ports) < 2 {
		panic(fmt.Sprintf("chip %s: need at least 2 ports", c.Name))
	}
	g := c.Grid.Graph()
	allow := c.channelAllow()
	bestA, bestB, bestD := 0, 1, -1
	for i := 0; i < len(c.Ports); i++ {
		dist := g.BFSFrom(c.Ports[i].Node, allow)
		for j := i + 1; j < len(c.Ports); j++ {
			d := dist[c.Ports[j].Node]
			if d < 0 {
				// Disconnected: use grid Manhattan distance plus a large
				// offset so disconnected pairs dominate.
				d = c.Grid.NumNodes() + grid.Manhattan(c.Grid.CoordOf(c.Ports[i].Node), c.Grid.CoordOf(c.Ports[j].Node))
			}
			if d > bestD {
				bestA, bestB, bestD = i, j, d
			}
		}
	}
	return bestA, bestB
}

// channelAllow returns an edge filter admitting only valved (channel) edges.
func (c *Chip) channelAllow() func(edge int) bool {
	return func(e int) bool { return c.valveOfEdge[e] >= 0 }
}

// PressureReachable reports whether air pressure applied at srcNode reaches
// dstNode when exactly the valves with open[v]==true are open. Pressure
// propagates only through channel edges whose valve is open.
func (c *Chip) PressureReachable(srcNode, dstNode int, open []bool) bool {
	if len(open) != len(c.valves) {
		panic(fmt.Sprintf("chip %s: open vector has %d entries for %d valves", c.Name, len(open), len(c.valves)))
	}
	return c.Grid.Graph().Reachable(srcNode, dstNode, func(e int) bool {
		v := c.valveOfEdge[e]
		return v >= 0 && open[v]
	})
}

// ReachScratch holds the reusable buffers of repeated PressureReachable
// queries: the BFS state plus a pre-built edge filter, so the hot loop of a
// fault-simulation campaign allocates nothing per query. The zero value is
// ready to use and may be moved between chips, but one ReachScratch must
// not be shared between goroutines.
type ReachScratch struct {
	chip  *Chip
	open  []bool
	allow func(edge int) bool
	bfs   graphalg.Scratch
}

// PressureReachableScratch is PressureReachable with caller-owned scratch
// buffers. Results are identical to PressureReachable.
func (c *Chip) PressureReachableScratch(rs *ReachScratch, srcNode, dstNode int, open []bool) bool {
	if len(open) != len(c.valves) {
		panic(fmt.Sprintf("chip %s: open vector has %d entries for %d valves", c.Name, len(open), len(c.valves)))
	}
	if rs.chip != c {
		// Rebuild the filter closure once per chip; it reads the open
		// vector through the scratch so per-query calls stay allocation-free.
		rs.chip = c
		rs.allow = func(e int) bool {
			v := c.valveOfEdge[e]
			return v >= 0 && rs.open[v]
		}
	}
	rs.open = open
	return c.Grid.Graph().ReachableScratch(&rs.bfs, srcNode, dstNode, rs.allow)
}

// Stats summarizes the chip for reports.
type Stats struct {
	Name                         string
	Mixers, Detectors, OtherDevs int
	Ports                        int
	OriginalValves, DFTValves    int
	GridW, GridH                 int
	FreeEdges                    int // unoccupied grid edges (DFT candidates)
}

// Stats computes summary statistics.
func (c *Chip) Stats() Stats {
	s := Stats{
		Name:           c.Name,
		Ports:          len(c.Ports),
		OriginalValves: c.numOriginal,
		DFTValves:      c.NumDFTValves(),
		GridW:          c.Grid.W,
		GridH:          c.Grid.H,
	}
	for _, d := range c.Devices {
		switch d.Kind {
		case Mixer:
			s.Mixers++
		case Detector:
			s.Detectors++
		default:
			s.OtherDevs++
		}
	}
	s.FreeEdges = c.Grid.NumEdges() - len(c.valves)
	return s
}

func (c *Chip) String() string {
	s := c.Stats()
	return fmt.Sprintf("%s: %dx%d grid, %d mixers, %d detectors, %d ports, %d valves (%d DFT)",
		s.Name, s.GridW, s.GridH, s.Mixers, s.Detectors, s.Ports,
		s.OriginalValves+s.DFTValves, s.DFTValves)
}
