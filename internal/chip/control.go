package chip

import "fmt"

// Control assigns every valve to a control line. Original valves own lines
// 0..NumOriginalValves-1. A DFT valve either shares the line of an original
// valve (the paper's valve-sharing scheme, requiring no new control ports)
// or owns a fresh line (independent control, Fig. 7's scenario).
type Control struct {
	chip   *Chip
	lineOf []int // valve ID -> line
	nLines int
}

// IndependentControl gives every valve (original and DFT) its own line.
func IndependentControl(c *Chip) *Control {
	ct := &Control{chip: c, lineOf: make([]int, c.NumValves()), nLines: c.NumValves()}
	for i := range ct.lineOf {
		ct.lineOf[i] = i
	}
	return ct
}

// SharedControl builds a control assignment where DFT valve i (the i-th
// valve with ID >= NumOriginalValves) shares the control line of original
// valve partner[i]. Every original valve may host at most one DFT valve.
// A partner of -1 gives that DFT valve its own fresh control line (partial
// sharing — a fallback for chips where no full sharing scheme validates).
func SharedControl(c *Chip, partner []int) (*Control, error) {
	nOrig := c.NumOriginalValves()
	nDFT := c.NumDFTValves()
	if len(partner) != nDFT {
		return nil, fmt.Errorf("chip %s: %d partners for %d DFT valves", c.Name, len(partner), nDFT)
	}
	ct := &Control{chip: c, lineOf: make([]int, c.NumValves()), nLines: nOrig}
	for v := 0; v < nOrig; v++ {
		ct.lineOf[v] = v
	}
	used := make(map[int]int, nDFT)
	for i, p := range partner {
		if p == -1 {
			ct.lineOf[nOrig+i] = ct.nLines
			ct.nLines++
			continue
		}
		if p < 0 || p >= nOrig {
			return nil, fmt.Errorf("chip %s: DFT valve %d names invalid partner %d", c.Name, nOrig+i, p)
		}
		if prev, dup := used[p]; dup {
			return nil, fmt.Errorf("chip %s: original valve %d shared by DFT valves %d and %d", c.Name, p, prev, nOrig+i)
		}
		used[p] = nOrig + i
		ct.lineOf[nOrig+i] = p
	}
	return ct, nil
}

// Chip returns the chip this control layer drives.
func (ct *Control) Chip() *Chip { return ct.chip }

// NumLines returns the number of distinct control lines (= control ports).
func (ct *Control) NumLines() int { return ct.nLines }

// LineOf returns the control line actuating valve v.
func (ct *Control) LineOf(v int) int { return ct.lineOf[v] }

// SharedWith returns the valves on the same control line as v, excluding v.
func (ct *Control) SharedWith(v int) []int {
	var out []int
	for u, l := range ct.lineOf {
		if u != v && l == ct.lineOf[v] {
			out = append(out, u)
		}
	}
	return out
}

// NumShared returns how many DFT valves share a line with an original valve.
func (ct *Control) NumShared() int {
	nOrig := ct.chip.NumOriginalValves()
	n := 0
	for v := nOrig; v < ct.chip.NumValves(); v++ {
		if ct.lineOf[v] < nOrig {
			n++
		}
	}
	return n
}

// ExpandOpen maps an intended-open valve set to the actual valve states:
// a line is driven open iff it controls at least one intended-open valve;
// all valves on open lines open, everything else stays closed. This is the
// semantics of applying a test path under valve sharing.
func (ct *Control) ExpandOpen(intendedOpen []bool) []bool {
	ct.checkLen(intendedOpen)
	lineOpen := make([]bool, ct.nLines)
	for v, o := range intendedOpen {
		if o {
			lineOpen[ct.lineOf[v]] = true
		}
	}
	out := make([]bool, len(intendedOpen))
	for v := range out {
		out[v] = lineOpen[ct.lineOf[v]]
	}
	return out
}

// ExpandClosed maps an intended-closed valve set to actual valve states
// (returned as open flags): a line is driven closed iff it controls at
// least one intended-closed valve; everything else stays open. This is the
// semantics of applying a test cut under valve sharing.
func (ct *Control) ExpandClosed(intendedClosed []bool) []bool {
	ct.checkLen(intendedClosed)
	lineClosed := make([]bool, ct.nLines)
	for v, cl := range intendedClosed {
		if cl {
			lineClosed[ct.lineOf[v]] = true
		}
	}
	out := make([]bool, len(intendedClosed))
	for v := range out {
		out[v] = !lineClosed[ct.lineOf[v]]
	}
	return out
}

// Conflicts reports the valves that cannot satisfy the requested states:
// requireOpen and requireClosed are per-valve demands (both false = don't
// care). A conflict exists when one control line receives both demands.
// The scheduler uses this to reject transport snapshots under sharing.
func (ct *Control) Conflicts(requireOpen, requireClosed []bool) []int {
	ct.checkLen(requireOpen)
	ct.checkLen(requireClosed)
	lineOpen := make([]bool, ct.nLines)
	lineClosed := make([]bool, ct.nLines)
	for v := range requireOpen {
		if requireOpen[v] {
			lineOpen[ct.lineOf[v]] = true
		}
		if requireClosed[v] {
			lineClosed[ct.lineOf[v]] = true
		}
	}
	var out []int
	for v := range requireOpen {
		l := ct.lineOf[v]
		if lineOpen[l] && lineClosed[l] {
			out = append(out, v)
		}
	}
	return out
}

func (ct *Control) checkLen(s []bool) {
	if len(s) != ct.chip.NumValves() {
		panic(fmt.Sprintf("chip %s: state vector has %d entries for %d valves", ct.chip.Name, len(s), ct.chip.NumValves()))
	}
}
