package chip

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// FPVAParams parameterize GenerateFPVA. The zero value of every optional
// field selects a sensible default, so FPVAParams{W: 32, H: 32} is a
// complete specification.
type FPVAParams struct {
	// W, H are the grid dimensions; both must be at least 4.
	W, H int
	// Seed drives device placement. The same params always generate the
	// same chip, byte-identical through the loader.
	Seed int64
	// Ports is the number of perimeter ports, evenly spaced clockwise from
	// the origin corner. 0 selects max(4, perimeter/4); values are clamped
	// to [2, perimeter].
	Ports int
	// Devices is the number of interior devices. 0 selects
	// max(3, W*H/64); values are clamped so every device fits on a
	// distinct interior node.
	Devices int
}

// perimeter returns the boundary node count of a w×h grid.
func perimeter(w, h int) int { return 2*(w+h) - 4 }

// withDefaults validates and normalizes the params.
func (p FPVAParams) withDefaults() (FPVAParams, error) {
	if p.W < 4 || p.H < 4 {
		return p, fmt.Errorf("chip: FPVA needs at least a 4x4 grid, got %dx%d", p.W, p.H)
	}
	per := perimeter(p.W, p.H)
	if p.Ports == 0 {
		p.Ports = per / 4
		if p.Ports < 4 {
			p.Ports = 4
		}
	}
	if p.Ports < 2 {
		p.Ports = 2
	}
	if p.Ports > per {
		p.Ports = per
	}
	interior := (p.W - 2) * (p.H - 2)
	if p.Devices == 0 {
		p.Devices = p.W * p.H / 64
		if p.Devices < 3 {
			p.Devices = 3
		}
	}
	if p.Devices < 1 {
		p.Devices = 1
	}
	if p.Devices > interior {
		p.Devices = interior
	}
	return p, nil
}

// boundaryWalk returns the boundary coordinates of a w×h grid in clockwise
// order starting at (0,0).
func boundaryWalk(w, h int) []grid.Coord {
	out := make([]grid.Coord, 0, perimeter(w, h))
	for x := 0; x < w; x++ {
		out = append(out, grid.Coord{X: x, Y: 0})
	}
	for y := 1; y < h; y++ {
		out = append(out, grid.Coord{X: w - 1, Y: y})
	}
	for x := w - 2; x >= 0; x-- {
		out = append(out, grid.Coord{X: x, Y: h - 1})
	}
	for y := h - 2; y >= 1; y-- {
		out = append(out, grid.Coord{X: 0, Y: y})
	}
	return out
}

// GenerateFPVA builds a parametric fully programmable valve array (Liu et
// al.): a W×H sieve-valve grid in which every lattice edge is a valved
// channel, with Ports evenly spaced perimeter ports and Devices interior
// devices placed deterministically from Seed. The result is
// loader-compatible (WriteChip/ReadChip round-trips it) and identical for
// identical params. FPVA(w, h) remains as the fixed 4-port variant the
// earlier benchmarks use.
func GenerateFPVA(p FPVAParams) (*Chip, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	b := NewBuilder(fmt.Sprintf("FPVA_%dx%d_s%d_p%d", p.W, p.H, p.Seed, p.Ports), p.W, p.H)

	// Ports: evenly spaced along the clockwise boundary walk.
	walk := boundaryWalk(p.W, p.H)
	for i := 0; i < p.Ports; i++ {
		c := walk[i*len(walk)/p.Ports]
		b.AddPort(fmt.Sprintf("P%d", i), c)
	}

	// Devices: seeded placement on distinct interior nodes; at least one
	// mixer and one detector when two or more devices fit.
	rng := rand.New(rand.NewSource(p.Seed))
	used := make(map[grid.Coord]bool, p.Devices)
	for i := 0; i < p.Devices; i++ {
		var c grid.Coord
		for {
			c = grid.Coord{X: 1 + rng.Intn(p.W-2), Y: 1 + rng.Intn(p.H-2)}
			if !used[c] {
				break
			}
		}
		used[c] = true
		kind, name := Mixer, fmt.Sprintf("M%d", i)
		if i == p.Devices-1 || i%3 == 2 {
			kind, name = Detector, fmt.Sprintf("D%d", i)
		}
		b.AddDevice(kind, name, c)
	}

	// Every lattice edge is a valved channel: the FPVA's defining property.
	for y := 0; y < p.H; y++ {
		for x := 0; x+1 < p.W; x++ {
			b.AddChannel(grid.Coord{X: x, Y: y}, grid.Coord{X: x + 1, Y: y})
		}
	}
	for x := 0; x < p.W; x++ {
		for y := 0; y+1 < p.H; y++ {
			b.AddChannel(grid.Coord{X: x, Y: y}, grid.Coord{X: x, Y: y + 1})
		}
	}
	return b.Build()
}

// MustGenerateFPVA is GenerateFPVA for fixed literal params where failure
// is a programming error.
func MustGenerateFPVA(p FPVAParams) *Chip {
	c, err := GenerateFPVA(p)
	if err != nil {
		panic(err)
	}
	return c
}
