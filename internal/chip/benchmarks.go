package chip

import "repro/internal/grid"

// The three benchmark chips of the paper's Table 1. Their exact netlists
// ([6], [21]) are unpublished, so the layouts below are reconstructions on
// connection grids that match the published device and valve counts:
//
//	IVD_chip : 3 mixers, 2 detectors, 12 valves
//	RA30_chip: 2 mixers, 3 detectors, 16 valves
//	mRNA_chip: 3 mixers, 1 detector,  28 valves
//
// One valve guards each channel grid-edge, so valve count equals channel
// edge count. The DFT algorithm consumes only the grid topology, device
// placement and port placement, so these reconstructions exercise the same
// code paths as the originals.

func xy(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }

// IVD returns the IVD_chip benchmark (3 mixers, 2 detectors, 12 valves,
// 3 ports on a 6×6 grid).
func IVD() *Chip {
	b := NewBuilder("IVD_chip", 6, 6)
	b.AddDevice(Mixer, "M1", xy(1, 1))
	b.AddDevice(Mixer, "M2", xy(3, 1))
	b.AddDevice(Mixer, "M3", xy(2, 3))
	b.AddDevice(Detector, "D1", xy(1, 3))
	b.AddDevice(Detector, "D2", xy(3, 3))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(0, 3))
	b.AddPort("P2", xy(5, 1))
	b.AddChannel(xy(0, 1), xy(1, 1))           // P0-M1
	b.AddChannel(xy(1, 1), xy(2, 1), xy(3, 1)) // M1-M2
	b.AddChannel(xy(1, 1), xy(1, 2), xy(1, 3)) // M1-D1
	b.AddChannel(xy(3, 1), xy(3, 2), xy(3, 3)) // M2-D2
	b.AddChannel(xy(1, 3), xy(2, 3))           // D1-M3
	b.AddChannel(xy(2, 3), xy(3, 3))           // M3-D2
	b.AddChannel(xy(1, 3), xy(0, 3))           // D1-P1
	b.AddChannel(xy(3, 1), xy(4, 1), xy(5, 1)) // M2-P2
	return b.MustBuild()
}

// RA30 returns the RA30_chip benchmark (2 mixers, 3 detectors, 16 valves,
// 3 ports on a 7×7 grid).
func RA30() *Chip {
	b := NewBuilder("RA30_chip", 7, 7)
	b.AddDevice(Mixer, "M1", xy(1, 2))
	b.AddDevice(Mixer, "M2", xy(4, 2))
	b.AddDevice(Detector, "D1", xy(1, 4))
	b.AddDevice(Detector, "D2", xy(4, 4))
	b.AddDevice(Detector, "D3", xy(2, 5))
	b.AddPort("P0", xy(0, 2))
	b.AddPort("P1", xy(2, 6))
	b.AddPort("P2", xy(6, 2))
	b.AddChannel(xy(0, 2), xy(1, 2))                     // P0-M1
	b.AddChannel(xy(1, 2), xy(2, 2), xy(3, 2), xy(4, 2)) // M1-M2
	b.AddChannel(xy(1, 2), xy(1, 3), xy(1, 4))           // M1-D1
	b.AddChannel(xy(4, 2), xy(4, 3), xy(4, 4))           // M2-D2
	b.AddChannel(xy(1, 4), xy(2, 4), xy(3, 4), xy(4, 4)) // D1-D2
	b.AddChannel(xy(1, 4), xy(1, 5), xy(2, 5))           // D1-D3
	b.AddChannel(xy(2, 5), xy(2, 6))                     // D3-P1
	b.AddChannel(xy(4, 2), xy(5, 2), xy(6, 2))           // M2-P2
	return b.MustBuild()
}

// MRNA returns the mRNA_chip benchmark (3 mixers, 1 detector, 28 valves,
// 4 ports on an 8×8 grid). The chip follows the single-cell mRNA isolation
// architecture of Marcus et al. [21]: long serpentine transport channels
// and a ring of devices.
func MRNA() *Chip {
	b := NewBuilder("mRNA_chip", 8, 8)
	b.AddDevice(Mixer, "M1", xy(2, 1))
	b.AddDevice(Mixer, "M2", xy(5, 1))
	b.AddDevice(Mixer, "M3", xy(2, 4))
	b.AddDevice(Detector, "D1", xy(5, 4))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(7, 6))
	b.AddPort("P2", xy(3, 7))
	b.AddPort("P3", xy(0, 5))
	b.AddChannel(xy(0, 1), xy(1, 1), xy(2, 1))                     // P0-M1
	b.AddChannel(xy(2, 1), xy(3, 1), xy(4, 1), xy(5, 1))           // M1-M2
	b.AddChannel(xy(5, 1), xy(5, 2), xy(5, 3), xy(5, 4))           // M2-D1
	b.AddChannel(xy(2, 1), xy(2, 2), xy(2, 3), xy(2, 4))           // M1-M3
	b.AddChannel(xy(2, 4), xy(3, 4), xy(4, 4), xy(5, 4))           // M3-D1
	b.AddChannel(xy(2, 4), xy(2, 5), xy(2, 6), xy(3, 6), xy(3, 7)) // M3-P2
	b.AddChannel(xy(5, 4), xy(6, 4), xy(6, 5), xy(6, 6), xy(7, 6)) // D1-P1
	b.AddChannel(xy(5, 4), xy(5, 5), xy(5, 6), xy(4, 6), xy(3, 6)) // D1 loop
	b.AddChannel(xy(2, 5), xy(1, 5), xy(0, 5))                     // junction-P3
	return b.MustBuild()
}

// Benchmarks returns fresh instances of all three benchmark chips in the
// paper's Table 1 order.
func Benchmarks() []*Chip {
	return []*Chip{IVD(), RA30(), MRNA()}
}

// BenchmarkByName returns a fresh instance of the named benchmark chip
// ("IVD_chip", "RA30_chip" or "mRNA_chip"); ok is false for unknown names.
func BenchmarkByName(name string) (*Chip, bool) {
	switch name {
	case "IVD_chip", "ivd", "IVD":
		return IVD(), true
	case "RA30_chip", "ra30", "RA30":
		return RA30(), true
	case "mRNA_chip", "mrna", "mRNA":
		return MRNA(), true
	}
	return nil, false
}
