package chip

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestBenchmarkValveCounts(t *testing.T) {
	cases := []struct {
		c                *Chip
		mixers, dets     int
		valves, minPorts int
	}{
		{IVD(), 3, 2, 12, 2},
		{RA30(), 2, 3, 16, 2},
		{MRNA(), 3, 1, 28, 2},
	}
	for _, tc := range cases {
		if got := tc.c.CountDevices(Mixer); got != tc.mixers {
			t.Errorf("%s: mixers = %d, want %d", tc.c.Name, got, tc.mixers)
		}
		if got := tc.c.CountDevices(Detector); got != tc.dets {
			t.Errorf("%s: detectors = %d, want %d", tc.c.Name, got, tc.dets)
		}
		if got := tc.c.NumValves(); got != tc.valves {
			t.Errorf("%s: valves = %d, want %d", tc.c.Name, got, tc.valves)
		}
		if got := tc.c.NumOriginalValves(); got != tc.valves {
			t.Errorf("%s: original valves = %d, want %d (no DFT yet)", tc.c.Name, got, tc.valves)
		}
		if len(tc.c.Ports) < tc.minPorts {
			t.Errorf("%s: ports = %d, want >= %d", tc.c.Name, len(tc.c.Ports), tc.minPorts)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	for _, name := range []string{"IVD_chip", "RA30_chip", "mRNA_chip", "ivd", "ra30", "mrna"} {
		if _, ok := BenchmarkByName(name); !ok {
			t.Errorf("BenchmarkByName(%q) not found", name)
		}
	}
	if _, ok := BenchmarkByName("nope"); ok {
		t.Error("BenchmarkByName(nope) should fail")
	}
}

func TestPortsAllConnectedWhenAllValvesOpen(t *testing.T) {
	for _, c := range Benchmarks() {
		open := make([]bool, c.NumValves())
		for i := range open {
			open[i] = true
		}
		for i := 1; i < len(c.Ports); i++ {
			if !c.PressureReachable(c.Ports[0].Node, c.Ports[i].Node, open) {
				t.Errorf("%s: port %s unreachable from %s with all valves open",
					c.Name, c.Ports[i].Name, c.Ports[0].Name)
			}
		}
	}
}

func TestNoPressureWithAllValvesClosed(t *testing.T) {
	for _, c := range Benchmarks() {
		closed := make([]bool, c.NumValves())
		for i := 1; i < len(c.Ports); i++ {
			if c.PressureReachable(c.Ports[0].Node, c.Ports[i].Node, closed) {
				t.Errorf("%s: pressure leaks with all valves closed", c.Name)
			}
		}
	}
}

func TestValveOnEdgeRoundTrip(t *testing.T) {
	c := IVD()
	for _, v := range c.Valves() {
		got, ok := c.ValveOnEdge(v.Edge)
		if !ok || got != v.ID {
			t.Fatalf("ValveOnEdge(%d) = (%d,%v), want (%d,true)", v.Edge, got, ok, v.ID)
		}
	}
	// A free edge must have no valve.
	for e := 0; e < c.Grid.NumEdges(); e++ {
		if _, ok := c.ValveOnEdge(e); !ok {
			return // found one free edge; done
		}
	}
	t.Fatal("expected at least one free edge on the IVD grid")
}

func TestAddDFTChannel(t *testing.T) {
	c := IVD()
	free := -1
	for e := 0; e < c.Grid.NumEdges(); e++ {
		if _, ok := c.ValveOnEdge(e); !ok {
			free = e
			break
		}
	}
	v, err := c.AddDFTChannel(free)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valve(v).DFT {
		t.Fatal("new valve must be marked DFT")
	}
	if c.NumDFTValves() != 1 || c.NumOriginalValves() != 12 {
		t.Fatalf("counts: dft=%d orig=%d", c.NumDFTValves(), c.NumOriginalValves())
	}
	if _, err := c.AddDFTChannel(free); err == nil {
		t.Fatal("double occupation must fail")
	}
	if _, err := c.AddDFTChannel(-1); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if got := c.DFTEdges(); len(got) != 1 || got[0] != free {
		t.Fatalf("DFTEdges = %v, want [%d]", got, free)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := IVD()
	cl := c.Clone()
	free := -1
	for e := 0; e < cl.Grid.NumEdges(); e++ {
		if _, ok := cl.ValveOnEdge(e); !ok {
			free = e
			break
		}
	}
	if _, err := cl.AddDFTChannel(free); err != nil {
		t.Fatal(err)
	}
	if c.NumValves() != 12 || cl.NumValves() != 13 {
		t.Fatalf("clone not independent: orig=%d clone=%d", c.NumValves(), cl.NumValves())
	}
}

func TestMaxDistantPortPair(t *testing.T) {
	c := IVD()
	a, b := c.MaxDistantPortPair()
	if a == b {
		t.Fatal("pair must be distinct")
	}
	// On the IVD layout, P1(0,3) and P2(5,1) are the farthest pair:
	// P1->D1->M1->M2->P2 = 1+2+2+2 = 7 hops; P0->P2 is 1+2+2=5; P0->P1 is 4.
	pa, pb := c.Ports[a], c.Ports[b]
	if !(pa.Name == "P1" && pb.Name == "P2" || pa.Name == "P2" && pb.Name == "P1") {
		t.Fatalf("farthest pair = %s,%s; want P1,P2", pa.Name, pb.Name)
	}
}

func TestStatsAndString(t *testing.T) {
	c := RA30()
	s := c.Stats()
	if s.Mixers != 2 || s.Detectors != 3 || s.OriginalValves != 16 || s.Ports != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FreeEdges != c.Grid.NumEdges()-16 {
		t.Fatalf("FreeEdges = %d", s.FreeEdges)
	}
	str := c.String()
	if !strings.Contains(str, "RA30_chip") || !strings.Contains(str, "2 mixers") {
		t.Fatalf("String() = %q", str)
	}
}

func TestDeviceKindString(t *testing.T) {
	for k, want := range map[DeviceKind]string{Mixer: "mixer", Detector: "detector", Heater: "heater", Filter: "filter"} {
		if k.String() != want {
			t.Fatalf("DeviceKind(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if DeviceKind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestDeviceAtPortAt(t *testing.T) {
	c := IVD()
	d, ok := c.DeviceAt(c.Devices[0].Node)
	if !ok || d.Name != "M1" {
		t.Fatalf("DeviceAt = %+v, %v", d, ok)
	}
	if _, ok := c.DeviceAt(c.Ports[0].Node); ok {
		t.Fatal("no device at a port node")
	}
	p, ok := c.PortAt(c.Ports[0].Node)
	if !ok || p.Name != "P0" {
		t.Fatalf("PortAt = %+v, %v", p, ok)
	}
}

// --- builder validation -----------------------------------------------------

func TestBuilderRejectsOffBoundaryPort(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M", xy(1, 1))
	b.AddPort("Pin", xy(2, 2)) // interior
	b.AddPort("P0", xy(0, 1))
	b.AddChannel(xy(0, 1), xy(1, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("interior port must be rejected")
	}
}

func TestBuilderRejectsCollision(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M1", xy(1, 1))
	b.AddDevice(Mixer, "M2", xy(1, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(0, 2))
	b.AddChannel(xy(0, 1), xy(1, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("device collision must be rejected")
	}
}

func TestBuilderRejectsDisconnectedChannels(t *testing.T) {
	b := NewBuilder("bad", 6, 6)
	b.AddDevice(Mixer, "M1", xy(1, 1))
	b.AddDevice(Mixer, "M2", xy(4, 4))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(5, 4))
	b.AddChannel(xy(0, 1), xy(1, 1))
	b.AddChannel(xy(4, 4), xy(5, 4))
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected channel network must be rejected")
	}
}

func TestBuilderRejectsUnconnectedDevice(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M1", xy(1, 1))
	b.AddDevice(Mixer, "M2", xy(3, 3)) // never wired
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(0, 2))
	b.AddChannel(xy(0, 1), xy(1, 1))
	b.AddChannel(xy(0, 2), xy(1, 2), xy(1, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("unwired device must be rejected")
	}
}

func TestBuilderRejectsDoubleOccupiedEdge(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M", xy(1, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(0, 2))
	b.AddChannel(xy(0, 1), xy(1, 1))
	b.AddChannel(xy(0, 1), xy(1, 1)) // same edge again
	b.AddChannel(xy(0, 2), xy(1, 2), xy(1, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("double-occupied edge must be rejected")
	}
}

func TestBuilderRejectsNonAdjacentWalk(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M", xy(1, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(0, 2))
	b.AddChannel(xy(0, 1), xy(2, 1)) // jump of 2
	if _, err := b.Build(); err == nil {
		t.Fatal("non-adjacent walk must be rejected")
	}
}

func TestBuilderRejectsTooFewPorts(t *testing.T) {
	b := NewBuilder("bad", 5, 5)
	b.AddDevice(Mixer, "M", xy(1, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddChannel(xy(0, 1), xy(1, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("single-port chip must be rejected")
	}
}

// --- control layer ----------------------------------------------------------

func chipWithDFT(t *testing.T, n int) *Chip {
	t.Helper()
	c := IVD()
	added := 0
	for e := 0; e < c.Grid.NumEdges() && added < n; e++ {
		if _, ok := c.ValveOnEdge(e); !ok {
			if _, err := c.AddDFTChannel(e); err != nil {
				t.Fatal(err)
			}
			added++
		}
	}
	return c
}

func TestIndependentControl(t *testing.T) {
	c := chipWithDFT(t, 2)
	ct := IndependentControl(c)
	if ct.NumLines() != c.NumValves() {
		t.Fatalf("lines = %d, want %d", ct.NumLines(), c.NumValves())
	}
	if ct.NumShared() != 0 {
		t.Fatalf("NumShared = %d, want 0", ct.NumShared())
	}
	for v := 0; v < c.NumValves(); v++ {
		if got := ct.SharedWith(v); len(got) != 0 {
			t.Fatalf("valve %d shares with %v under independent control", v, got)
		}
	}
}

func TestSharedControlValidation(t *testing.T) {
	c := chipWithDFT(t, 2)
	if _, err := SharedControl(c, []int{0}); err == nil {
		t.Fatal("wrong partner count must fail")
	}
	if _, err := SharedControl(c, []int{0, 0}); err == nil {
		t.Fatal("duplicate partner must fail")
	}
	if _, err := SharedControl(c, []int{0, 99}); err == nil {
		t.Fatal("out-of-range partner must fail")
	}
	ct, err := SharedControl(c, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if ct.NumLines() != 12 {
		t.Fatalf("lines = %d, want 12 (no new control ports)", ct.NumLines())
	}
	if ct.NumShared() != 2 {
		t.Fatalf("NumShared = %d, want 2", ct.NumShared())
	}
	if got := ct.SharedWith(12); len(got) != 1 || got[0] != 3 {
		t.Fatalf("SharedWith(12) = %v, want [3]", got)
	}
	if got := ct.SharedWith(3); len(got) != 1 || got[0] != 12 {
		t.Fatalf("SharedWith(3) = %v, want [12]", got)
	}
}

func TestExpandOpenForcesPartner(t *testing.T) {
	c := chipWithDFT(t, 1)
	ct, err := SharedControl(c, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	intended := make([]bool, c.NumValves())
	intended[12] = true // open the DFT valve only
	got := ct.ExpandOpen(intended)
	if !got[12] || !got[5] {
		t.Fatalf("opening DFT valve must force partner: got[12]=%v got[5]=%v", got[12], got[5])
	}
	for v := 0; v < c.NumValves(); v++ {
		if v != 12 && v != 5 && got[v] {
			t.Fatalf("valve %d unexpectedly open", v)
		}
	}
}

func TestExpandClosedForcesPartner(t *testing.T) {
	c := chipWithDFT(t, 1)
	ct, err := SharedControl(c, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	intended := make([]bool, c.NumValves())
	intended[5] = true // close the original valve only
	open := ct.ExpandClosed(intended)
	if open[5] || open[12] {
		t.Fatalf("closing valve 5 must also close DFT valve 12: open[5]=%v open[12]=%v", open[5], open[12])
	}
	for v := 0; v < c.NumValves(); v++ {
		if v != 12 && v != 5 && !open[v] {
			t.Fatalf("valve %d unexpectedly closed", v)
		}
	}
}

func TestConflicts(t *testing.T) {
	c := chipWithDFT(t, 1)
	ct, err := SharedControl(c, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	reqOpen := make([]bool, c.NumValves())
	reqClosed := make([]bool, c.NumValves())
	reqOpen[12] = true  // transport wants DFT valve open
	reqClosed[5] = true // occupied device wants valve 5 closed
	got := ct.Conflicts(reqOpen, reqClosed)
	if len(got) != 2 { // both valves on the conflicted line are reported
		t.Fatalf("conflicts = %v, want both valves on shared line", got)
	}
	// Independent control: no conflict.
	ict := IndependentControl(c)
	if got := ict.Conflicts(reqOpen, reqClosed); len(got) != 0 {
		t.Fatalf("independent control conflicts = %v, want none", got)
	}
}

func TestGridHelpers(t *testing.T) {
	g := grid.New(4, 3)
	if g.NumNodes() != 12 || g.NumEdges() != 4*2+3*3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	c := grid.Coord{X: 2, Y: 1}
	if g.CoordOf(g.NodeAt(c)) != c {
		t.Fatal("NodeAt/CoordOf roundtrip failed")
	}
	if !g.OnBoundary(grid.Coord{X: 0, Y: 1}) || g.OnBoundary(grid.Coord{X: 1, Y: 1}) {
		t.Fatal("OnBoundary wrong")
	}
	if _, ok := g.EdgeBetweenCoords(grid.Coord{X: 0, Y: 0}, grid.Coord{X: 1, Y: 0}); !ok {
		t.Fatal("adjacent edge must exist")
	}
	if _, ok := g.EdgeBetweenCoords(grid.Coord{X: 0, Y: 0}, grid.Coord{X: 2, Y: 0}); ok {
		t.Fatal("non-adjacent nodes must have no edge")
	}
	if _, err := g.PathEdges([]grid.Coord{{X: 0, Y: 0}}); err == nil {
		t.Fatal("single-coordinate walk must fail")
	}
	if grid.Manhattan(grid.Coord{X: 0, Y: 0}, grid.Coord{X: 3, Y: 4}) != 7 {
		t.Fatal("Manhattan distance wrong")
	}
}

// PressureReachableScratch must agree with PressureReachable for random
// valve states, including when one scratch is reused across queries and
// across different chips (the cached filter closure must rebind).
func TestPressureReachableScratchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var rs ReachScratch
	for _, c := range Benchmarks() {
		for trial := 0; trial < 30; trial++ {
			open := make([]bool, c.NumValves())
			for i := range open {
				open[i] = rng.Intn(2) == 0
			}
			src := c.Ports[rng.Intn(len(c.Ports))].Node
			dst := c.Ports[rng.Intn(len(c.Ports))].Node
			want := c.PressureReachable(src, dst, open)
			if got := c.PressureReachableScratch(&rs, src, dst, open); got != want {
				t.Fatalf("%s trial %d: scratch %v, plain %v", c.Name, trial, got, want)
			}
		}
	}
}

func TestPressureReachableScratchBadInput(t *testing.T) {
	c := IVD()
	var rs ReachScratch
	defer func() {
		if recover() == nil {
			t.Fatal("wrong open-slice length must panic")
		}
	}()
	c.PressureReachableScratch(&rs, c.Ports[0].Node, c.Ports[1].Node, make([]bool, 1))
}
