package chip

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// FPVA builds a fully programmable valve array (Liu et al., DATE'17, the
// paper's ref. [16]): a w×h region in which every grid edge is a valved
// channel, with a port in the middle of each side and devices assigned to
// interior nodes. FPVAs are the limiting case for test generation — no
// free edges remain for augmentation, and the dense mesh makes every
// valve reachable from every port.
func FPVA(w, h int) *Chip {
	if w < 4 || h < 4 {
		panic("chip: FPVA needs at least a 4x4 grid")
	}
	b := NewBuilder(fmt.Sprintf("FPVA_%dx%d", w, h), w, h)
	// Devices: two mixers and a detector on interior nodes.
	b.AddDevice(Mixer, "M1", grid.Coord{X: 1, Y: 1})
	b.AddDevice(Mixer, "M2", grid.Coord{X: w - 2, Y: h - 2})
	b.AddDevice(Detector, "D1", grid.Coord{X: w - 2, Y: 1})
	b.AddPort("PN", grid.Coord{X: w / 2, Y: 0})
	b.AddPort("PS", grid.Coord{X: w / 2, Y: h - 1})
	b.AddPort("PW", grid.Coord{X: 0, Y: h / 2})
	b.AddPort("PE", grid.Coord{X: w - 1, Y: h / 2})
	// Every horizontal and vertical segment is a channel.
	for y := 0; y < h; y++ {
		for x := 0; x+1 < w; x++ {
			b.AddChannel(grid.Coord{X: x, Y: y}, grid.Coord{X: x + 1, Y: y})
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y+1 < h; y++ {
			b.AddChannel(grid.Coord{X: x, Y: y}, grid.Coord{X: x, Y: y + 1})
		}
	}
	return b.MustBuild()
}

// Random generates a random valid chip for property-based testing: devices
// scattered over a grid, spanning-tree channels connecting them (so the
// network is connected), a few extra cross-links, and 2-4 boundary ports.
// The same rng always yields the same chip.
func Random(rng *rand.Rand) *Chip {
	w := 6 + rng.Intn(3)
	h := 6 + rng.Intn(3)
	b := NewBuilder(fmt.Sprintf("rand_%dx%d", w, h), w, h)

	// Device sites on odd interior coordinates so they never collide.
	type site struct{ c grid.Coord }
	var sites []site
	for y := 1; y < h-1; y += 2 {
		for x := 1; x < w-1; x += 2 {
			sites = append(sites, site{grid.Coord{X: x, Y: y}})
		}
	}
	rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
	nDev := 3 + rng.Intn(3)
	if nDev > len(sites) {
		nDev = len(sites)
	}
	var devCoords []grid.Coord
	for i := 0; i < nDev; i++ {
		kind := Mixer
		name := fmt.Sprintf("M%d", i)
		if i%3 == 2 || i == nDev-1 { // ensure at least one detector
			kind = Detector
			name = fmt.Sprintf("D%d", i)
		}
		b.AddDevice(kind, name, sites[i].c)
		devCoords = append(devCoords, sites[i].c)
	}

	// Ports on the boundary, aligned with device rows/columns for easy
	// wiring.
	nPorts := 2 + rng.Intn(3)
	var portCoords []grid.Coord
	for i := 0; i < nPorts; i++ {
		var c grid.Coord
		switch i % 4 {
		case 0:
			c = grid.Coord{X: 0, Y: devCoords[i%len(devCoords)].Y}
		case 1:
			c = grid.Coord{X: w - 1, Y: devCoords[i%len(devCoords)].Y}
		case 2:
			c = grid.Coord{X: devCoords[i%len(devCoords)].X, Y: 0}
		default:
			c = grid.Coord{X: devCoords[i%len(devCoords)].X, Y: h - 1}
		}
		dup := false
		for _, pc := range portCoords {
			if pc == c {
				dup = true
			}
		}
		for _, dc := range devCoords {
			if dc == c {
				dup = true
			}
		}
		if dup {
			continue
		}
		b.AddPort(fmt.Sprintf("P%d", len(portCoords)), c)
		portCoords = append(portCoords, c)
	}
	if len(portCoords) < 2 {
		// Guarantee two ports.
		for _, c := range []grid.Coord{{X: 0, Y: 1}, {X: w - 1, Y: h - 2}} {
			dup := false
			for _, pc := range portCoords {
				if pc == c {
					dup = true
				}
			}
			if !dup {
				b.AddPort(fmt.Sprintf("P%d", len(portCoords)), c)
				portCoords = append(portCoords, c)
			}
		}
	}

	// Wire everything with L-shaped channels to the first device, forming
	// a connected star/tree; then add a couple of extra links between
	// random device pairs for redundancy.
	used := map[[2]int]bool{} // occupied edges as node pairs
	addL := func(from, to grid.Coord) {
		// Walk horizontally then vertically, skipping already-used edges.
		cur := from
		var walk []grid.Coord
		walk = append(walk, cur)
		for cur.X != to.X {
			if cur.X < to.X {
				cur.X++
			} else {
				cur.X--
			}
			walk = append(walk, cur)
		}
		for cur.Y != to.Y {
			if cur.Y < to.Y {
				cur.Y++
			} else {
				cur.Y--
			}
			walk = append(walk, cur)
		}
		// Add each unit step as its own channel unless already occupied.
		for i := 1; i < len(walk); i++ {
			a, bb := walk[i-1], walk[i]
			key := edgeKey(w, a, bb)
			if used[key] {
				continue
			}
			used[key] = true
			b.AddChannel(a, bb)
		}
	}
	hub := devCoords[0]
	for _, dc := range devCoords[1:] {
		addL(dc, hub)
	}
	for _, pc := range portCoords {
		addL(pc, hub)
	}
	if len(devCoords) >= 3 && rng.Intn(2) == 0 {
		addL(devCoords[1], devCoords[2])
	}
	return b.MustBuild()
}

func edgeKey(w int, a, b grid.Coord) [2]int {
	na, nb := a.Y*w+a.X, b.Y*w+b.X
	if na > nb {
		na, nb = nb, na
	}
	return [2]int{na, nb}
}
