package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func TestWashDisabledByDefault(t *testing.T) {
	sch := mustRun(t, chip.IVD(), nil, assay.PID())
	for _, tr := range sch.Transports {
		if tr.WashedEdges != 0 {
			t.Fatalf("wash disabled but transport reports %d washed edges", tr.WashedEdges)
		}
	}
}

func TestWashExtendsExecution(t *testing.T) {
	base, err := Run(chip.IVD(), nil, assay.PID(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	washed, err := Run(chip.IVD(), nil, assay.PID(), Params{WashTimePerEdge: 10})
	if err != nil {
		t.Fatal(err)
	}
	// PID's dilution chain reuses the same channels with different fluids
	// constantly; washing must cost time.
	if washed.ExecutionTime <= base.ExecutionTime {
		t.Fatalf("wash model did not extend execution: %d vs %d", washed.ExecutionTime, base.ExecutionTime)
	}
	totalWashed := 0
	for _, tr := range washed.Transports {
		totalWashed += tr.WashedEdges
	}
	if totalWashed == 0 {
		t.Fatal("expected contaminated segments on the PID chain")
	}
	if err := ValidateSchedule(chip.IVD(), assay.PID(), washed); err != nil {
		t.Fatal(err)
	}
}

func TestWashSameFluidIsFree(t *testing.T) {
	// A single mix -> detect chain moves one fluid once; the first use of
	// every segment is clean, so washing costs nothing.
	c := lineChip(t)
	sch, err := Run(c, nil, miniAssay(), Params{WashTimePerEdge: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sch.Transports {
		if tr.WashedEdges != 0 {
			t.Fatalf("clean first-use transport reports %d washed edges", tr.WashedEdges)
		}
	}
	base, err := Run(c, nil, miniAssay(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.ExecutionTime != base.ExecutionTime {
		t.Fatalf("no contamination, but wash changed execution: %d vs %d", sch.ExecutionTime, base.ExecutionTime)
	}
}
