package sched

// Warm-engine channel-storage policy: the baseline's emergencyStorage /
// tryStartStorageMove / pickParkingEdge / parkingKeepsConnectivity with the
// per-call allocations replaced by pooled scratch. The selection order is
// unchanged — ascending product scans, the two-pass doorstep preference and
// the exact (distance, edge-ID) tie-break — so the chosen parking segments
// are bit-identical to the baseline's. The engine's holderOf index stands
// in for the baseline's edgeHolder product scan; its two invariant sites in
// this file (clearing the old segment when a stored product starts moving)
// pair with the arrival site in events.go.

// emergencyStorage fires only when the simulation is wedged (nothing
// running, nothing startable): it evacuates one held product into a free
// channel segment (distributed channel storage, ref. [6]) to release its
// device or port. It returns true iff a storage move actually started.
func (rs *runState) emergencyStorage() bool {
	// First choice: evacuate a product holding a device or port. Second
	// choice: re-park a stored product whose segment seal may be wedging
	// the chip. Ascending product scans reproduce the baseline's sorted
	// candidate order.
	buf := rs.evacBuf[:0]
	for i := range rs.products {
		pr := &rs.products[i]
		if !pr.exists || pr.started > 0 || pr.moving {
			continue
		}
		if pr.holdsDevice >= 0 || pr.holdsPort >= 0 {
			buf = append(buf, i)
		}
	}
	for i := range rs.products {
		pr := &rs.products[i]
		if !pr.exists || pr.started > 0 || pr.moving {
			continue
		}
		if pr.holdsDevice >= 0 || pr.holdsPort >= 0 {
			continue
		}
		if pr.loc.kind == atEdge {
			buf = append(buf, i)
		}
	}
	rs.evacBuf = buf
	for _, i := range buf {
		// Tasks are value entries: append tentatively, keep on success,
		// truncate on failure (the baseline only appends started tasks).
		ti := len(rs.tasks)
		rs.tasks = append(rs.tasks, engTask{producer: i, consumer: -1})
		if rs.tryStartTransport(ti) {
			return true
		}
		rs.tasks = rs.tasks[:ti]
	}
	return false
}

// tryStartStorageMove routes a held or stored product to the best free
// parking segment near it (stored products may be re-parked when their
// current segment's seal wedges the chip).
func (rs *runState) tryStartStorageMove(ti int) bool {
	e := rs.eng
	task := &rs.tasks[ti]
	pr := &rs.products[task.producer]
	if pr.started > 0 {
		task.done = true // aliquots already departing; storage no longer needed
		return false
	}
	fromNode := pr.loc.id
	if pr.loc.kind == atEdge {
		fromNode, _ = e.grid.Endpoints(pr.loc.id)
	}
	if target, ok := rs.pickParkingEdge(fromNode); ok && !(pr.loc.kind == atEdge && target == pr.loc.id) {
		to := location{kind: atEdge, id: target}
		if edges, ok2 := rs.routeAndValidate(pr.loc, to, task.producer); ok2 {
			if pr.loc.kind == atEdge {
				// The old segment frees once the move completes; while
				// moving, the fluid occupies the path (including the old
				// segment). holderOf mirrors the loc change.
				rs.holderOf[pr.loc.id] = -1
				rs.heldCount--
				pr.loc = location{kind: atNode, id: fromNode}
			}
			rs.launch(ti, edges, to)
			return true
		}
	}
	// Fallback tier: park the product at a free external port — a vial
	// waiting at the chip boundary.
	if pr.holdsPort >= 0 {
		return false // already at a port; nothing gained
	}
	for p := range e.chip.Ports {
		if rs.portBusy[p] {
			continue
		}
		to := location{kind: atNode, id: e.chip.Ports[p].Node}
		edges, ok2 := rs.routeAndValidate(pr.loc, to, task.producer)
		if !ok2 {
			continue
		}
		if pr.loc.kind == atEdge {
			rs.holderOf[pr.loc.id] = -1
			rs.heldCount--
			pr.loc = location{kind: atNode, id: fromNode}
		}
		rs.portBusy[p] = true // reserved for the incoming fluid
		rs.launch(ti, edges, to)
		return true
	}
	return false
}

// pickParkingEdge selects the closest free channel segment that is not a
// doorstep of any device or port (parking there would block it), falling
// back to doorstep parking on sparse chips. The engine's precomputed
// doorstep flags and the run's sharedValve flags replace the baseline's
// per-call resource map and SharedWith scans.
func (rs *runState) pickParkingEdge(fromNode int) (int, bool) {
	e := rs.eng
	rs.dist = e.grid.BFSDistScratch(&rs.bfs, rs.dist, fromNode, func(ed int) bool {
		v := e.valveOf[ed]
		if v < 0 || e.stuckClosed[v] {
			return false
		}
		if rs.edgeBusy[ed] {
			return false
		}
		return rs.holderOf[ed] < 0
	})
	dist := rs.dist
	for pass := 0; pass < 2; pass++ {
		best, bestD := -1, -1
		for ed := 0; ed < e.numEdges; ed++ {
			valve := e.valveOf[ed]
			if valve < 0 {
				continue
			}
			if e.bannedEdge[ed] {
				// A stuck-closed segment cannot receive fluid; a stuck-open
				// one can never seal it in.
				continue
			}
			if rs.sharedValve[valve] {
				// Never park on a shared-line segment: its seal would
				// force the partner valve closed for the whole storage
				// period and starve transports that need it.
				continue
			}
			if rs.edgeBusy[ed] {
				continue
			}
			if rs.holderOf[ed] >= 0 {
				continue
			}
			if pass == 0 && e.doorstep[ed] {
				continue
			}
			u, v := e.grid.Endpoints(ed)
			d := dist[u]
			if dist[v] >= 0 && (d < 0 || dist[v] < d) {
				d = dist[v]
			}
			if d < 0 {
				continue // unreachable
			}
			if (best < 0 || d < bestD || (d == bestD && ed < best)) && rs.parkingKeepsConnectivity(ed) {
				best, bestD = ed, d
			}
		}
		if best >= 0 {
			return best, true
		}
	}
	return -1, false
}

// parkingKeepsConnectivity reports whether storing fluid on edge ed (in
// addition to every segment already storing fluid) keeps the chip live:
// all devices and ports must remain mutually connected, and every stored
// segment (including ed) must keep an endpoint on that component so its
// fluid can be fetched. Runs on the secondary BFS buffer — the primary one
// holds pickParkingEdge's distance field while this is called.
func (rs *runState) parkingKeepsConnectivity(ed int) bool {
	e := rs.eng
	allow := func(e2 int) bool {
		if e2 == ed || rs.holderOf[e2] >= 0 {
			return false
		}
		v := e.valveOf[e2]
		return v >= 0 && !e.stuckClosed[v]
	}
	ref := e.chip.Devices[0].Node
	rs.dist2 = e.grid.BFSDistScratch(&rs.bfs, rs.dist2, ref, allow)
	dist := rs.dist2
	for _, d := range e.chip.Devices {
		if dist[d.Node] < 0 {
			return false
		}
	}
	for _, p := range e.chip.Ports {
		if dist[p.Node] < 0 {
			return false
		}
	}
	u, v := e.grid.Endpoints(ed)
	if dist[u] < 0 && dist[v] < 0 {
		return false
	}
	for i := range rs.products {
		pr := &rs.products[i]
		if pr.exists && pr.loc.kind == atEdge {
			su, sv := e.grid.Endpoints(pr.loc.id)
			if dist[su] < 0 && dist[sv] < 0 {
				return false
			}
		}
	}
	return true
}
