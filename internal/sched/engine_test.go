package sched

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

// designs returns the three bundled (chip, assay) pairs the paper evaluates.
func designs() []struct {
	name  string
	chip  *chip.Chip
	graph *assay.Graph
} {
	return []struct {
		name  string
		chip  *chip.Chip
		graph *assay.Graph
	}{
		{"IVD", chip.IVD(), assay.IVD()},
		{"RA30", chip.RA30(), assay.PID()},
		{"mRNA", chip.MRNA(), assay.CPA()},
	}
}

// augmented clones c and adds n DFT channels on the first free edges, so
// SharedControl has test valves to pair.
func augmented(t *testing.T, c *chip.Chip, n int) *chip.Chip {
	t.Helper()
	out := c.Clone()
	added := 0
	for e := 0; e < out.Grid.NumEdges() && added < n; e++ {
		if _, occ := out.ValveOnEdge(e); occ {
			continue
		}
		if _, err := out.AddDFTChannel(e); err != nil {
			t.Fatalf("AddDFTChannel: %v", err)
		}
		added++
	}
	if added < n {
		t.Fatalf("only %d of %d DFT channels fit", added, n)
	}
	return out
}

// randControl pairs each DFT valve with a random distinct original valve
// (or leaves it on a fresh line).
func randControl(t *testing.T, rng *rand.Rand, c *chip.Chip) *chip.Control {
	t.Helper()
	nOrig := c.NumOriginalValves()
	partner := make([]int, c.NumDFTValves())
	used := make(map[int]bool)
	for i := range partner {
		partner[i] = -1
		if rng.Intn(2) == 0 {
			p := rng.Intn(nOrig)
			if !used[p] {
				used[p] = true
				partner[i] = p
			}
		}
	}
	ctrl, err := chip.SharedControl(c, partner)
	if err != nil {
		t.Fatalf("SharedControl(%v): %v", partner, err)
	}
	return ctrl
}

// randBans draws up to maxN distinct valves from the chip's range.
func randBans(rng *rand.Rand, c *chip.Chip, maxN int) []int {
	n := rng.Intn(maxN + 1)
	out := make([]int, 0, n)
	seen := make(map[int]bool)
	for len(out) < n {
		v := rng.Intn(c.NumValves())
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// checkSameRun asserts the engine and the baseline agree bit for bit: same
// error disposition, same progress count, and — on success — deeply equal
// schedules (ops, transports, edges, wash counts).
func checkSameRun(t *testing.T, label string, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, p Params) {
	t.Helper()
	eng, err := NewEngine(c, g, p)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	warm, warmDone, warmErr := eng.RunProgress(ctrl, p)
	base, baseDone, baseErr := RunProgressBaseline(c, ctrl, g, p)
	if (warmErr == nil) != (baseErr == nil) {
		t.Fatalf("%s: error disposition differs: engine=%v baseline=%v", label, warmErr, baseErr)
	}
	if warmDone != baseDone {
		t.Fatalf("%s: progress differs: engine=%d baseline=%d", label, warmDone, baseDone)
	}
	if warmErr != nil {
		if warmErr.Error() != baseErr.Error() {
			t.Fatalf("%s: error text differs:\n engine:   %v\n baseline: %v", label, warmErr, baseErr)
		}
		return
	}
	if !reflect.DeepEqual(warm, base) {
		t.Fatalf("%s: schedules differ:\n engine:   %+v\n baseline: %+v", label, warm, base)
	}
	// Second warm run on the same engine must reproduce the schedule (pool
	// reuse and candidate-cache hits must not perturb anything).
	again, err := eng.Run(ctrl, p)
	if err != nil {
		t.Fatalf("%s: second engine run failed: %v", label, err)
	}
	if !reflect.DeepEqual(again, base) {
		t.Fatalf("%s: second engine run diverged from baseline", label)
	}
}

// TestEngineMatchesBaselineDesigns drives the property on all bundled
// designs under independent and randomized shared control, with and without
// the wash model, and under randomized ban sets.
func TestEngineMatchesBaselineDesigns(t *testing.T) {
	for _, d := range designs() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(2018 ^ int64(len(d.name))))
			aug := augmented(t, d.chip, 4)

			// Independent control, pristine chip, default params.
			checkSameRun(t, d.name+"/indep", d.chip, nil, d.graph, Params{})

			// Wash model on (nonzero WashTimePerEdge exercises duration
			// accounting on every transport).
			checkSameRun(t, d.name+"/wash", d.chip, nil, d.graph, Params{WashTimePerEdge: 3})

			// Randomized shared control on the augmented chip.
			for trial := 0; trial < 4; trial++ {
				ctrl := randControl(t, rng, aug)
				p := Params{}
				if trial%2 == 1 {
					p.WashTimePerEdge = 2
				}
				checkSameRun(t, fmt.Sprintf("%s/shared%d", d.name, trial), aug, ctrl, d.graph, p)
			}

			// Randomized ban sets (stuck-closed and stuck-open valves);
			// schedulable or not, both paths must agree.
			for trial := 0; trial < 4; trial++ {
				p := Params{
					BanClosed: randBans(rng, aug, 2),
					BanOpen:   randBans(rng, aug, 2),
				}
				ctrl := randControl(t, rng, aug)
				checkSameRun(t, fmt.Sprintf("%s/ban%d", d.name, trial), aug, ctrl, d.graph, p)
			}
		})
	}
}

// TestEngineRejectsForeignBans: an engine is built for one ban-set; runs
// naming a different set must fail loudly instead of silently using the
// baked-in routing state.
func TestEngineRejectsForeignBans(t *testing.T) {
	c, g := chip.IVD(), assay.IVD()
	eng, err := NewEngine(c, g, Params{BanClosed: []int{3}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Run(nil, Params{BanClosed: []int{3}}); err != nil {
		t.Fatalf("matching ban-set rejected: %v", err)
	}
	if _, err := eng.Run(nil, Params{BanClosed: []int{4}}); err == nil {
		t.Fatalf("foreign ban-set accepted")
	}
	if _, err := eng.Run(nil, Params{}); err == nil {
		t.Fatalf("empty ban-set accepted by banned engine")
	}
	// Duplicates and out-of-range entries canonicalize away.
	if _, err := eng.Run(nil, Params{BanClosed: []int{3, 3, -7, c.NumValves() + 5}}); err != nil {
		t.Fatalf("canonically equal ban-set rejected: %v", err)
	}
}

// TestEngineRejectsForeignControl mirrors the package-level chip check.
func TestEngineRejectsForeignControl(t *testing.T) {
	eng, err := NewEngine(chip.IVD(), assay.IVD(), Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	other := chip.IVD()
	if _, err := eng.Run(chip.IndependentControl(other), Params{}); err == nil {
		t.Fatalf("control for a different chip accepted")
	}
}

// TestEngineConcurrentRuns shares one engine across goroutines evaluating
// different control assignments — the PSO fitness-worker pattern. Run with
// -race in CI; every result must equal the baseline's.
func TestEngineConcurrentRuns(t *testing.T) {
	c, g := chip.RA30(), assay.PID()
	aug := augmented(t, c, 4)
	eng, err := NewEngine(aug, g, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	m := NewMetrics()
	eng.SetMetrics(m)

	rng := rand.New(rand.NewSource(42))
	const nCtrl = 6
	ctrls := make([]*chip.Control, nCtrl)
	want := make([]*Schedule, nCtrl)
	for i := range ctrls {
		ctrls[i] = randControl(t, rng, aug)
		sch, _, err := RunProgressBaseline(aug, ctrls[i], g, Params{})
		if err != nil {
			t.Fatalf("baseline ctrl %d: %v", i, err)
		}
		want[i] = sch
	}

	var wg sync.WaitGroup
	errs := make(chan error, nCtrl*4)
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < nCtrl; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sch, err := eng.Run(ctrls[i], Params{})
				if err != nil {
					errs <- fmt.Errorf("ctrl %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(sch, want[i]) {
					errs <- fmt.Errorf("ctrl %d: concurrent schedule diverged", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := m.Snapshot()
	if snap.EngineBuilds != 1 {
		t.Errorf("EngineBuilds = %d, want 1", snap.EngineBuilds)
	}
	if snap.WarmRuns != nCtrl*4 {
		t.Errorf("WarmRuns = %d, want %d", snap.WarmRuns, nCtrl*4)
	}
}

// TestEngineCandidateCacheCounts: on a pristine chip the very first
// transports of a second run are served from the candidate cache.
func TestEngineCandidateCacheCounts(t *testing.T) {
	c, g := chip.IVD(), assay.IVD()
	eng, err := NewEngine(c, g, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	m := NewMetrics()
	eng.SetMetrics(m)
	if _, err := eng.Run(nil, Params{}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	first := m.Snapshot()
	if _, err := eng.Run(nil, Params{}); err != nil {
		t.Fatalf("second run: %v", err)
	}
	second := m.Snapshot().Sub(first)
	if second.CandidateHits == 0 {
		t.Fatalf("second run on a warm engine recorded no candidate hits")
	}
}
