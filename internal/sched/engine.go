// Engine is the warm-start scheduler: everything that depends only on the
// chip, the assay and the fault ban-set — channel adjacency, valve lookup,
// critical-path priorities, storage doorsteps, pristine candidate paths —
// is computed once in NewEngine, and each Engine.Run performs only the
// control-dependent work: event simulation and per-snapshot valve-state
// validation. Run state lives in a sync.Pool so the hot loop is
// allocation-free, and schedules are bit-identical to RunBaseline's (the
// property tests in engine_test.go compare them on every design).
package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/graphalg"
)

// Engine schedules one (chip, assay, ban-set) combination under many
// control assignments. It is safe for concurrent Run calls — the PSO
// fitness workers share one engine per configuration.
type Engine struct {
	chip  *chip.Chip
	graph *assay.Graph
	grid  *graphalg.Graph

	// Canonical ban-set the engine was built for (sorted, deduplicated,
	// clipped to the valve range). Run rejects params naming a different
	// set: the precomputed routing state below bakes the bans in.
	banClosed, banOpen []int

	// Per-valve ban flags and the derived per-edge ban (see simState).
	stuckClosed, stuckOpen []bool
	bannedEdge             []bool

	// valveOf caches chip.ValveOnEdge per edge (-1 = unvalved).
	valveOf []int
	// baseWeight is the routing weight of each edge in a pristine snapshot
	// (no transport in flight, no stored product, no penalty): 1 for a
	// conducting channel, -1 for unvalved or stuck-closed segments. When a
	// run is in that snapshot, dynamic Dijkstra provably equals a search
	// under baseWeight, which is what makes the candidate cache sound.
	baseWeight []float64
	// incident[u] lists the live edge IDs at node u, sorted ascending —
	// the per-snapshot contamination guard walks these instead of
	// allocating IncidentEdges on every validation attempt.
	incident [][]int
	// doorstep marks edges with an endpoint on a device or port node;
	// portOfNode inverts chip.PortAt (-1 = no port).
	doorstep   []bool
	portOfNode []int
	// priority is the critical-path list-scheduling priority per op.
	priority []int

	numOps, numEdges, numValves int

	metrics *Metrics

	// indep is the lazily built all-independent control used when Run is
	// given a nil assignment.
	indepOnce sync.Once
	indep     *chip.Control

	// cand caches pristine candidate paths per (from, to) location pair,
	// filled lazily by the runs (candMu guards the map; entries are
	// immutable once stored).
	candMu sync.RWMutex
	cand   map[uint64]candidate

	pool sync.Pool // *runState
}

// candidate is one cached pristine path: the full edge list (including
// stored-segment entry/exit adjustments) or a cached routing failure.
type candidate struct {
	edges []int
	ok    bool
}

// NewEngine validates the assay graph and precomputes the
// control-independent scheduling state for one (chip, assay, ban-set)
// combination. The ban-set is taken from params.BanClosed/BanOpen; every
// subsequent Run must name the same set (the other Params fields remain
// free per call).
func NewEngine(c *chip.Chip, g *assay.Graph, params Params) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	grid := c.Grid.Graph()
	e := &Engine{
		chip:      c,
		graph:     g,
		grid:      grid,
		banClosed: canonicalBans(params.BanClosed, c.NumValves()),
		banOpen:   canonicalBans(params.BanOpen, c.NumValves()),
		numOps:    g.NumOps(),
		numEdges:  grid.NumEdges(),
		numValves: c.NumValves(),
		cand:      make(map[uint64]candidate),
	}
	e.stuckClosed = make([]bool, e.numValves)
	e.stuckOpen = make([]bool, e.numValves)
	e.bannedEdge = make([]bool, e.numEdges)
	for _, v := range e.banClosed {
		e.stuckClosed[v] = true
		e.bannedEdge[c.Valve(v).Edge] = true
	}
	for _, v := range e.banOpen {
		e.stuckOpen[v] = true
		e.bannedEdge[c.Valve(v).Edge] = true
	}
	e.valveOf = make([]int, e.numEdges)
	e.baseWeight = make([]float64, e.numEdges)
	for ed := 0; ed < e.numEdges; ed++ {
		v, ok := c.ValveOnEdge(ed)
		if !ok {
			e.valveOf[ed] = -1
			e.baseWeight[ed] = -1
			continue
		}
		e.valveOf[ed] = v
		if e.stuckClosed[v] {
			e.baseWeight[ed] = -1
		} else {
			e.baseWeight[ed] = 1
		}
	}
	e.incident = make([][]int, grid.NumNodes())
	for u := 0; u < grid.NumNodes(); u++ {
		e.incident[u] = grid.IncidentEdges(u)
	}
	e.doorstep = make([]bool, e.numEdges)
	e.portOfNode = make([]int, grid.NumNodes())
	for u := range e.portOfNode {
		e.portOfNode[u] = -1
	}
	resource := make([]bool, grid.NumNodes())
	for _, d := range c.Devices {
		resource[d.Node] = true
	}
	for _, p := range c.Ports {
		resource[p.Node] = true
		e.portOfNode[p.Node] = p.ID
	}
	for ed := 0; ed < e.numEdges; ed++ {
		u, v := grid.Endpoints(ed)
		e.doorstep[ed] = resource[u] || resource[v]
	}
	// Critical-path priorities (identical to newSimState's).
	e.priority = make([]int, e.numOps)
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := 0
		for _, v := range g.Succs(u) {
			if e.priority[v] > best {
				best = e.priority[v]
			}
		}
		e.priority[u] = best + g.Op(u).Duration
	}
	e.pool.New = func() any { return newRunState(e) }
	return e, nil
}

// Chip returns the chip the engine schedules onto.
func (e *Engine) Chip() *chip.Chip { return e.chip }

// Assay returns the sequencing graph the engine schedules.
func (e *Engine) Assay() *assay.Graph { return e.graph }

// independent returns the cached all-independent control assignment.
func (e *Engine) independent() *chip.Control {
	e.indepOnce.Do(func() { e.indep = chip.IndependentControl(e.chip) })
	return e.indep
}

// Run schedules the assay under the control assignment (nil = independent
// control). Safe for concurrent use.
func (e *Engine) Run(ctrl *chip.Control, params Params) (*Schedule, error) {
	sch, _, err := e.RunProgress(ctrl, params)
	return sch, err
}

// RunCtx is Run with cooperative cancellation.
func (e *Engine) RunCtx(ctx context.Context, ctrl *chip.Control, params Params) (*Schedule, error) {
	sch, _, err := e.RunProgressCtx(ctx, ctrl, params)
	return sch, err
}

// RunProgress is Run with the operations-completed count (see RunProgress
// at package level).
func (e *Engine) RunProgress(ctrl *chip.Control, params Params) (*Schedule, int, error) {
	return e.RunProgressCtx(context.Background(), ctrl, params)
}

// RunProgressCtx runs one control-dependent simulation. The schedule is
// bit-identical to RunProgressBaselineCtx with the same arguments.
func (e *Engine) RunProgressCtx(ctx context.Context, ctrl *chip.Control, params Params) (*Schedule, int, error) {
	params = params.withDefaults()
	if err := e.checkBans(params); err != nil {
		return nil, 0, err
	}
	if ctrl == nil {
		ctrl = e.independent()
	}
	if ctrl.Chip() != e.chip {
		return nil, 0, fmt.Errorf("sched: control assignment belongs to a different chip")
	}
	e.metrics.noteRun()
	rs := e.pool.Get().(*runState)
	rs.reset(ctrl, params, ctx)
	sch, done, err := rs.run()
	e.pool.Put(rs)
	return sch, done, err
}

// ExecutionTime is the makespan-only convenience, mirroring the package
// function; ok is false for unschedulable combinations.
func (e *Engine) ExecutionTime(ctrl *chip.Control, params Params) (int, bool) {
	sch, err := e.Run(ctrl, params)
	if err != nil {
		return 0, false
	}
	return sch.ExecutionTime, true
}

// checkBans rejects Run params whose ban-set differs from the engine's —
// the precomputed routing state bakes the bans in, so a different set
// needs a different engine.
func (e *Engine) checkBans(params Params) error {
	if !equalInts(canonicalBans(params.BanClosed, e.numValves), e.banClosed) ||
		!equalInts(canonicalBans(params.BanOpen, e.numValves), e.banOpen) {
		return fmt.Errorf("sched: engine built for ban set closed=%v open=%v, run requested closed=%v open=%v",
			e.banClosed, e.banOpen, params.BanClosed, params.BanOpen)
	}
	return nil
}

// canonicalBans sorts, deduplicates and range-clips a ban list (matching
// the tolerant markBan semantics of the baseline).
func canonicalBans(valves []int, numValves int) []int {
	out := make([]int, 0, len(valves))
	for _, v := range valves {
		if v >= 0 && v < numValves {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candKey packs a (from, to) location pair into the candidate-cache key.
// Location IDs are grid node or edge IDs — far below 2^30 — so the pair
// packs losslessly.
func candKey(from, to location) uint64 {
	return uint64(from.kind)<<63 | uint64(to.kind)<<62 | uint64(from.id)<<31 | uint64(to.id)
}

// lookupCandidate returns the cached pristine path for a location pair.
func (e *Engine) lookupCandidate(key uint64) (candidate, bool) {
	e.candMu.RLock()
	c, ok := e.cand[key]
	e.candMu.RUnlock()
	return c, ok
}

// storeCandidate publishes a computed pristine path. Concurrent runs may
// race on a key; both compute the identical pure-function value, so the
// first store wins and the rest are dropped.
func (e *Engine) storeCandidate(key uint64, c candidate) {
	e.candMu.Lock()
	if _, ok := e.cand[key]; !ok {
		e.cand[key] = c
	}
	e.candMu.Unlock()
}
