package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func TestTransportTimeScaling(t *testing.T) {
	c := lineChip(t)
	slow, err := Run(c, nil, miniAssay(), Params{TransportTimePerEdge: 10})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(c, nil, miniAssay(), Params{TransportTimePerEdge: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The M->D transport is 3 edges: 30 s vs 3 s difference must show in
	// the makespan (ops are sequential on the line chip).
	if slow.ExecutionTime-fast.ExecutionTime != 27 {
		t.Fatalf("transport scaling: slow %d, fast %d, want delta 27",
			slow.ExecutionTime, fast.ExecutionTime)
	}
}

func TestRunProgressReportsCompletion(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch, done, err := RunProgress(c, nil, g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if done != g.NumOps() {
		t.Fatalf("done = %d, want %d", done, g.NumOps())
	}
	if sch == nil || sch.ExecutionTime <= 0 {
		t.Fatal("schedule missing")
	}
}

func TestRunProgressReportsPartialOnWedge(t *testing.T) {
	// The known-blocking sharing on the line chip wedges after the mix op.
	c := lineChip(t)
	e, ok := c.Grid.EdgeBetweenCoords(xy(2, 1), xy(2, 0))
	if !ok {
		t.Fatal("missing stub edge")
	}
	if _, err := c.AddDFTChannel(e); err != nil {
		t.Fatal(err)
	}
	ctrl, err := chip.SharedControl(c, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := RunProgress(c, ctrl, miniAssay(), Params{MaxTime: 3600})
	if err == nil {
		t.Fatal("expected wedge")
	}
	if done != 1 {
		t.Fatalf("done = %d, want 1 (the mix completes, the detect cannot be fed)", done)
	}
}

func TestMaxTimeGuard(t *testing.T) {
	// An absurd horizon of 1 s cannot fit a 15 s assay.
	c := lineChip(t)
	if _, err := Run(c, nil, miniAssay(), Params{MaxTime: 1}); err == nil {
		t.Fatal("MaxTime guard did not fire")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{}.withDefaults()
	if p.TransportTimePerEdge != 2 || p.MaxTime != 24*3600 || p.MaxReroutes != 6 {
		t.Fatalf("defaults: %+v", p)
	}
	// Explicit values survive.
	p = Params{TransportTimePerEdge: 7, MaxTime: 99, MaxReroutes: 3, WashTimePerEdge: 4}.withDefaults()
	if p.TransportTimePerEdge != 7 || p.MaxTime != 99 || p.MaxReroutes != 3 || p.WashTimePerEdge != 4 {
		t.Fatalf("explicit params lost: %+v", p)
	}
}
