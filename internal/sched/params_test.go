package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func TestTransportTimeScaling(t *testing.T) {
	c := lineChip(t)
	slow, err := Run(c, nil, miniAssay(), Params{TransportTimePerEdge: 10})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(c, nil, miniAssay(), Params{TransportTimePerEdge: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The M->D transport is 3 edges: 30 s vs 3 s difference must show in
	// the makespan (ops are sequential on the line chip).
	if slow.ExecutionTime-fast.ExecutionTime != 27 {
		t.Fatalf("transport scaling: slow %d, fast %d, want delta 27",
			slow.ExecutionTime, fast.ExecutionTime)
	}
}

func TestRunProgressReportsCompletion(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch, done, err := RunProgress(c, nil, g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if done != g.NumOps() {
		t.Fatalf("done = %d, want %d", done, g.NumOps())
	}
	if sch == nil || sch.ExecutionTime <= 0 {
		t.Fatal("schedule missing")
	}
}

func TestRunProgressReportsPartialOnWedge(t *testing.T) {
	// The known-blocking sharing on the line chip wedges after the mix op.
	c := lineChip(t)
	e, ok := c.Grid.EdgeBetweenCoords(xy(2, 1), xy(2, 0))
	if !ok {
		t.Fatal("missing stub edge")
	}
	if _, err := c.AddDFTChannel(e); err != nil {
		t.Fatal(err)
	}
	ctrl, err := chip.SharedControl(c, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := RunProgress(c, ctrl, miniAssay(), Params{MaxTime: 3600})
	if err == nil {
		t.Fatal("expected wedge")
	}
	if done != 1 {
		t.Fatalf("done = %d, want 1 (the mix completes, the detect cannot be fed)", done)
	}
}

func TestMaxTimeGuard(t *testing.T) {
	// An absurd horizon of 1 s cannot fit a 15 s assay.
	c := lineChip(t)
	if _, err := Run(c, nil, miniAssay(), Params{MaxTime: 1}); err == nil {
		t.Fatal("MaxTime guard did not fire")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{}.withDefaults()
	if p.TransportTimePerEdge != 2 || p.MaxTime != 24*3600 || p.MaxReroutes != 6 {
		t.Fatalf("defaults: %+v", p)
	}
	// Explicit values survive.
	p = Params{TransportTimePerEdge: 7, MaxTime: 99, MaxReroutes: 3, WashTimePerEdge: 4}.withDefaults()
	if p.TransportTimePerEdge != 7 || p.MaxTime != 99 || p.MaxReroutes != 3 || p.WashTimePerEdge != 4 {
		t.Fatalf("explicit params lost: %+v", p)
	}
}

func TestExplicitZeroParams(t *testing.T) {
	// An intentional zero survives when its Has flag is set — the zero-value
	// ambiguity the flags exist to resolve. Zero transport time models
	// instantaneous moves (launch still charges the 1 s minimum beat); a
	// zero horizon rejects everything immediately.
	p := Params{HasTransportTimePerEdge: true, HasMaxTime: true}.withDefaults()
	if p.TransportTimePerEdge != 0 {
		t.Fatalf("explicit zero TransportTimePerEdge overridden to %d", p.TransportTimePerEdge)
	}
	if p.MaxTime != 0 {
		t.Fatalf("explicit zero MaxTime overridden to %d", p.MaxTime)
	}
	// Flags are recorded as set after defaulting, so a withDefaults round
	// trip is idempotent.
	q := p.withDefaults()
	if q.TransportTimePerEdge != p.TransportTimePerEdge || q.MaxTime != p.MaxTime ||
		!q.HasTransportTimePerEdge || !q.HasMaxTime {
		t.Fatalf("withDefaults not idempotent: %+v vs %+v", q, p)
	}

	// Negative values still mean "use the default" regardless of flags.
	p = Params{TransportTimePerEdge: -1, MaxTime: -1, HasTransportTimePerEdge: true, HasMaxTime: true}.withDefaults()
	if p.TransportTimePerEdge != 2 || p.MaxTime != 24*3600 {
		t.Fatalf("negative params not defaulted: %+v", p)
	}

	// A zero-transport-time schedule actually runs (every hop costs the
	// 1 s minimum) and is shorter than the 2 s/edge default.
	c := lineChip(t)
	fast, err := Run(c, nil, miniAssay(), Params{HasTransportTimePerEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(c, nil, miniAssay(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.ExecutionTime >= def.ExecutionTime {
		t.Fatalf("zero transport time (%d s) not faster than default (%d s)",
			fast.ExecutionTime, def.ExecutionTime)
	}

	// A zero horizon with the flag set must trip the MaxTime guard.
	if _, err := Run(c, nil, miniAssay(), Params{MaxTime: 0, HasMaxTime: true}); err == nil {
		t.Fatal("explicit zero MaxTime did not reject the schedule")
	}
}
