package sched

import (
	"testing"

	"repro/internal/chip"

	"repro/internal/assay"
)

// Banning every IVD valve in turn must yield, for each, either a schedule
// that provably avoids the banned segment or a clean error — never a panic
// and never a schedule that touches the fault. This is the substrate the
// reconfiguration chain builds on.
func TestBanClosedEveryValve(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	ok := 0
	for v := 0; v < c.NumValves(); v++ {
		sch, err := Run(c, nil, g, Params{BanClosed: []int{v}})
		if err != nil {
			continue
		}
		if err := ValidateScheduleAvoids(c, g, sch, []int{v}, nil); err != nil {
			t.Fatalf("valve %d: %v", v, err)
		}
		ok++
	}
	if ok == 0 {
		t.Fatal("no single valve ban was schedulable on IVD")
	}
	t.Logf("IVD: %d/%d single stuck-closed valves schedulable around", ok, c.NumValves())
}

// On the line chip the only M->D route runs through v2; banning it closed
// must fail cleanly, not hang or panic.
func TestBanClosedOnlyRouteFails(t *testing.T) {
	c := lineChip(t)
	e, ok := c.Grid.EdgeBetweenCoords(xy(2, 1), xy(3, 1))
	if !ok {
		t.Fatal("missing route edge")
	}
	v, ok := c.ValveOnEdge(e)
	if !ok {
		t.Fatal("route edge unvalved")
	}
	if _, err := Run(c, nil, miniAssay(), Params{MaxTime: 3600, BanClosed: []int{v}}); err == nil {
		t.Fatal("expected unschedulable with the only route banned")
	}
}

// A stuck-open stub valve next to the route must be rejected (it can never
// seal, so every passing transport is a contamination hazard) unless the
// last-resort RelaxStuckOpenSeal tier accepts the risk.
func TestBanOpenSealRelaxation(t *testing.T) {
	c := lineChip(t)
	e, ok := c.Grid.EdgeBetweenCoords(xy(2, 1), xy(2, 0))
	if !ok {
		t.Fatal("missing stub edge")
	}
	stub, err := c.AddDFTChannel(e)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{MaxTime: 3600, BanOpen: []int{stub}}
	if _, err := Run(c, nil, miniAssay(), p); err == nil {
		t.Fatal("expected unschedulable with unsealable stub on the route")
	}
	p.RelaxStuckOpenSeal = true
	sch, err := Run(c, nil, miniAssay(), p)
	if err != nil {
		t.Fatalf("relaxed tier should schedule: %v", err)
	}
	checkSchedule(t, c, miniAssay(), sch)
}

// Bans do not disturb determinism: same ban, same schedule.
func TestBanDeterminism(t *testing.T) {
	c := chip.RA30()
	g := assay.PID()
	p := Params{BanClosed: []int{3}, BanOpen: []int{7}}
	a, errA := Run(c, nil, g, p)
	b, errB := Run(c, nil, g, p)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("nondeterministic feasibility: %v vs %v", errA, errB)
	}
	if errA == nil && a.ExecutionTime != b.ExecutionTime {
		t.Fatalf("nondeterministic: %d vs %d", a.ExecutionTime, b.ExecutionTime)
	}
}

// ValidateScheduleAvoids must reject a schedule whose transport crosses the
// banned segment (here: the unbanned baseline checked against a ban on an
// edge it uses).
func TestValidateScheduleAvoidsRejects(t *testing.T) {
	c := lineChip(t)
	g := miniAssay()
	sch := mustRun(t, c, nil, g)
	if len(sch.Transports) == 0 || len(sch.Transports[0].Edges) == 0 {
		t.Fatal("expected a routed transport")
	}
	used := sch.Transports[0].Edges[0]
	v, ok := c.ValveOnEdge(used)
	if !ok {
		t.Fatal("transport edge unvalved")
	}
	if err := ValidateScheduleAvoids(c, g, sch, []int{v}, nil); err == nil {
		t.Fatal("expected avoids-violation for schedule crossing banned edge")
	}
	if err := ValidateScheduleAvoids(c, g, sch, nil, nil); err != nil {
		t.Fatalf("no bans should validate: %v", err)
	}
}
