// Package sched schedules bioassay sequencing graphs onto biochips. It
// implements the execution-time model the paper's PSO fitness function
// needs: list scheduling with device binding, shortest-path fluid transport
// over the channel network, distributed channel storage (the substrate of
// ref. [6]), and — crucially — per-snapshot validation of valve states
// under control sharing (Section 4.1): a transport may only start if the
// valves it must open and the valves that must stay closed around occupied
// resources can be actuated simultaneously, which sharing can make
// impossible.
//
// The scheduler is deterministic: identical inputs produce identical
// schedules, which the PSO relies on for reproducible fitness values.
package sched

import (
	"context"
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
)

// Params tunes the execution model.
type Params struct {
	// TransportTimePerEdge is the seconds a fluid sample needs to traverse
	// one channel edge (default 2). An explicit zero — instantaneous
	// transport in unit models — requires HasTransportTimePerEdge, because
	// the zero value alone is indistinguishable from "unset".
	TransportTimePerEdge int
	// HasTransportTimePerEdge marks TransportTimePerEdge as deliberately
	// set, so zero means zero instead of the default.
	HasTransportTimePerEdge bool
	// MaxTime aborts the simulation as unschedulable beyond this horizon in
	// seconds (default 24h). Valve sharing can make transports permanently
	// infeasible; the scheduler detects true deadlock earlier, but this is
	// the final guard. An explicit zero horizon (nothing may run past t=0)
	// requires HasMaxTime.
	MaxTime int
	// HasMaxTime marks MaxTime as deliberately set, so zero means zero
	// instead of the default.
	HasMaxTime bool
	// MaxReroutes bounds the alternative paths tried per transport per
	// attempt when conflicts arise (default 6).
	MaxReroutes int
	// WashTimePerEdge, when positive, models cross-contamination washing
	// (the concern of the paper's ref. [11]): a transport that reuses a
	// channel segment last wetted by a DIFFERENT fluid first flushes it,
	// paying this many extra seconds per contaminated segment. 0 disables
	// the wash model (the default, matching the paper's evaluation).
	WashTimePerEdge int

	// BanClosed lists valves to treat as stuck closed (stuck-at-0, or a
	// blocked channel): the guarded segment never conducts, so transports
	// cannot route through it and fluid cannot be stored in it. This is
	// the test-around-fault reconfiguration substrate — located faults are
	// banned and the assay rescheduled around them.
	BanClosed []int
	// BanOpen lists valves to treat as stuck open (stuck-at-1, or a
	// leaking membrane): the guarded segment always conducts and can never
	// be sealed. Fluid cannot be stored in it, and — unless
	// RelaxStuckOpenSeal is set — any snapshot that needs the segment
	// sealed (a transport or stored product adjacent to it) is rejected as
	// a contamination hazard.
	BanOpen []int
	// RelaxStuckOpenSeal accepts snapshots that require a stuck-open valve
	// sealed, trading contamination risk for schedulability — the
	// last-resort tier of the reconfiguration chain. It never relaxes
	// BanClosed routing.
	RelaxStuckOpenSeal bool
}

// withDefaults resolves the zero-value ambiguity the Has* flags exist for:
// a field defaults only when it is zero AND unflagged (or negative, which
// is never legal). The returned Params has both flags set, so resolving is
// idempotent.
func (p Params) withDefaults() Params {
	if p.TransportTimePerEdge < 0 || (p.TransportTimePerEdge == 0 && !p.HasTransportTimePerEdge) {
		p.TransportTimePerEdge = 2
	}
	p.HasTransportTimePerEdge = true
	if p.MaxTime < 0 || (p.MaxTime == 0 && !p.HasMaxTime) {
		p.MaxTime = 24 * 3600
	}
	p.HasMaxTime = true
	if p.MaxReroutes <= 0 {
		p.MaxReroutes = 6
	}
	return p
}

// Canonical returns the parameters in fully-defaulted form: every
// defaultable field resolved and every Has* flag set. Two Params that
// schedule identically always canonicalize identically, which is what
// content-addressed cache keys (internal/artifact) hash.
func (p Params) Canonical() Params { return p.withDefaults() }

// OpRecord reports when and where an operation executed.
type OpRecord struct {
	Op     int
	Device int // device ID, or port ID for dispense ops
	IsPort bool
	Start  int
	Finish int
}

// TransportRecord reports one fluid movement.
type TransportRecord struct {
	ProducerOp int
	ConsumerOp int // -1 for storage moves
	Edges      []int
	Start      int
	Finish     int
	// WashedEdges counts the contaminated segments flushed before this
	// transport (0 unless Params.WashTimePerEdge is set).
	WashedEdges int
}

// Schedule is the result of a successful run.
type Schedule struct {
	ExecutionTime int
	Ops           []OpRecord
	Transports    []TransportRecord
}

// Run schedules the assay on the chip under the control assignment and
// returns the schedule, or an error when the assay cannot complete (e.g.
// valve sharing permanently blocks a required transport).
//
// The Run* functions route through a freshly built Engine (a "cold" run);
// callers that schedule one (chip, assay, ban-set) under many control
// assignments should build the Engine once and call its Run methods
// instead — the schedules are bit-identical either way.
func Run(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, error) {
	sch, _, err := RunProgress(c, ctrl, g, params)
	return sch, err
}

// RunCtx is Run with cooperative cancellation (see RunProgressCtx).
func RunCtx(ctx context.Context, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, error) {
	sch, _, err := RunProgressCtx(ctx, c, ctrl, g, params)
	return sch, err
}

// RunProgress is Run that also reports how many operations completed; on
// failure the count tells how far the schedule got before wedging, which
// the PSO uses to grade nearly-schedulable sharing schemes.
func RunProgress(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, int, error) {
	return RunProgressCtx(context.Background(), c, ctrl, g, params)
}

// RunProgressCtx is RunProgress with cooperative cancellation: the context
// is polled at every simulated event time and, on expiry, the run stops
// with the context's error and the operations-completed count reached so
// far.
func RunProgressCtx(ctx context.Context, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, int, error) {
	eng, err := NewEngine(c, g, params)
	if err != nil {
		return nil, 0, err
	}
	return eng.RunProgressCtx(ctx, ctrl, params)
}

// --- the preserved seed scheduler (A/B reference) ---------------------------

// RunBaseline is the seed scheduler preserved verbatim (baseline_sim.go,
// baseline_transport.go): it rebuilds every piece of routing and validation
// state from scratch on each call. It exists as the A/B reference the
// engine's property tests and cmd/bench -sched compare against; Engine.Run
// is bit-identical to it for every design, control assignment and ban set.
func RunBaseline(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, error) {
	sch, _, err := RunProgressBaseline(c, ctrl, g, params)
	return sch, err
}

// RunBaselineCtx is RunBaseline with cooperative cancellation.
func RunBaselineCtx(ctx context.Context, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, error) {
	sch, _, err := RunProgressBaselineCtx(ctx, c, ctrl, g, params)
	return sch, err
}

// RunProgressBaseline is RunBaseline with the operations-completed count.
func RunProgressBaseline(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, int, error) {
	return RunProgressBaselineCtx(context.Background(), c, ctrl, g, params)
}

// RunProgressBaselineCtx is the seed RunProgressCtx path, preserved
// verbatim.
func RunProgressBaselineCtx(ctx context.Context, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (*Schedule, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	if ctrl == nil {
		ctrl = chip.IndependentControl(c)
	}
	if ctrl.Chip() != c {
		return nil, 0, fmt.Errorf("sched: control assignment belongs to a different chip")
	}
	s := newSimState(c, ctrl, g, params.withDefaults())
	s.ctx = ctx
	sch, err := s.run()
	return sch, s.doneOps, err
}

// ExecutionTime is a convenience wrapper returning only the makespan; it
// reports ok=false for unschedulable combinations (the PSO maps those to
// quality ∞).
func ExecutionTime(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (int, bool) {
	sch, err := Run(c, ctrl, g, params)
	if err != nil {
		return 0, false
	}
	return sch.ExecutionTime, true
}

// ExecutionTimeCtx is ExecutionTime with cooperative cancellation; an
// expired context reports ok=false.
func ExecutionTimeCtx(ctx context.Context, c *chip.Chip, ctrl *chip.Control, g *assay.Graph, params Params) (int, bool) {
	sch, err := RunCtx(ctx, c, ctrl, g, params)
	if err != nil {
		return 0, false
	}
	return sch.ExecutionTime, true
}

// --- locations ---------------------------------------------------------------

type locKind int

const (
	atNode locKind = iota // device or port grid node
	atEdge                // stored in a channel segment
)

type location struct {
	kind locKind
	id   int // node ID or edge ID
}

// --- op lifecycle -------------------------------------------------------------

type opPhase int

const (
	phaseWaitPreds opPhase = iota
	phaseWaitDevice
	phaseWaitDelivery
	phaseRunning
	phaseDone
)

type opCtl struct {
	phase    opPhase
	device   int // reserved device ID (or port ID for dispense)
	isPort   bool
	start    int
	finish   int
	pending  int // deliveries still missing
	priority int // critical-path priority (higher runs first)
}

type productCtl struct {
	exists         bool
	loc            location
	totalConsumers int
	started        int  // aliquot transports departed
	arrived        int  // aliquots delivered
	holdsDevice    int  // device ID still blocked by this product (-1 none)
	holdsPort      int  // port ID still blocked (-1 none)
	moving         bool // storage move in flight
}

type transportTask struct {
	producer int // op whose product moves
	consumer int // op that consumes it (-1 for storage move)
	started  bool
	done     bool
}

type activeTransport struct {
	task   *transportTask
	edges  []int
	finish int
	to     location
}
