package sched

import "sync/atomic"

// Metrics aggregates scheduler-engine counters across every Engine it is
// attached to. One Metrics instance is typically shared by all engines of
// a flow run, so the flow can attribute engine traffic per stage. All
// counters are atomic; a nil *Metrics is a valid no-op receiver for the
// increment methods used on hot paths.
type Metrics struct {
	engineBuilds     atomic.Int64
	warmRuns         atomic.Int64
	candidateHits    atomic.Int64
	fallbackReroutes atomic.Int64
}

// NewMetrics returns a zeroed Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) noteBuild() {
	if m == nil {
		return
	}
	m.engineBuilds.Add(1)
}

func (m *Metrics) noteRun() {
	if m == nil {
		return
	}
	m.warmRuns.Add(1)
}

func (m *Metrics) noteCandidateHit() {
	if m == nil {
		return
	}
	m.candidateHits.Add(1)
}

func (m *Metrics) noteFallbackReroute() {
	if m == nil {
		return
	}
	m.fallbackReroutes.Add(1)
}

// MetricsSnapshot is a point-in-time copy of the counters; subtract two
// snapshots to attribute traffic to a phase.
type MetricsSnapshot struct {
	// EngineBuilds counts NewEngine precomputations; WarmRuns the
	// Engine.Run simulations they amortize over.
	EngineBuilds, WarmRuns int64
	// CandidateHits counts transports routed from the precomputed
	// candidate-path cache without running Dijkstra.
	CandidateHits int64
	// FallbackReroutes counts penalized re-route attempts — a transport
	// whose first path failed snapshot validation and had to search again.
	FallbackReroutes int64
}

// Snapshot returns the current counter values. Snapshot on a nil Metrics
// returns zeros.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		EngineBuilds:     m.engineBuilds.Load(),
		WarmRuns:         m.warmRuns.Load(),
		CandidateHits:    m.candidateHits.Load(),
		FallbackReroutes: m.fallbackReroutes.Load(),
	}
}

// Sub returns the counter deltas since base.
func (s MetricsSnapshot) Sub(base MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		EngineBuilds:     s.EngineBuilds - base.EngineBuilds,
		WarmRuns:         s.WarmRuns - base.WarmRuns,
		CandidateHits:    s.CandidateHits - base.CandidateHits,
		FallbackReroutes: s.FallbackReroutes - base.FallbackReroutes,
	}
}

// SetMetrics attaches a shared metrics aggregator to the engine; every
// subsequent run, candidate-cache hit and reroute is counted on it. Attach
// before the engine is used concurrently (the pointer itself is
// unsynchronized). The already-performed build is counted retroactively.
func (e *Engine) SetMetrics(m *Metrics) {
	e.metrics = m
	m.noteBuild()
}
