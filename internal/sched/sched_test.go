package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/grid"
)

func xy(x, y int) grid.Coord { return grid.Coord{X: x, Y: y} }

func mustRun(t *testing.T, c *chip.Chip, ctrl *chip.Control, g *assay.Graph) *Schedule {
	t.Helper()
	sch, err := Run(c, ctrl, g, Params{})
	if err != nil {
		t.Fatalf("%s on %s: %v", g.Name, c.Name, err)
	}
	return sch
}

// checkSchedule verifies the structural invariants via the library's own
// validator (every op once, precedence, device and transport exclusivity,
// resource kinds, makespan).
func checkSchedule(t *testing.T, c *chip.Chip, g *assay.Graph, sch *Schedule) {
	t.Helper()
	if err := ValidateSchedule(c, g, sch); err != nil {
		t.Error(err)
	}
	if sch.ExecutionTime <= 0 {
		t.Error("non-positive execution time")
	}
}

func TestIVDOnIVDChip(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch := mustRun(t, c, nil, g)
	checkSchedule(t, c, g, sch)
	if cp := g.CriticalPath(); sch.ExecutionTime < cp {
		t.Fatalf("execution %d below critical path %d", sch.ExecutionTime, cp)
	}
	t.Logf("IVD on IVD_chip: %d s", sch.ExecutionTime)
}

func TestAllAssaysOnAllChips(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		for _, g := range assay.Benchmarks() {
			sch := mustRun(t, c, nil, g)
			checkSchedule(t, c, g, sch)
			t.Logf("%s on %s: %d s (%d transports)", g.Name, c.Name, sch.ExecutionTime, len(sch.Transports))
		}
	}
}

func TestDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := mustRun(t, chip.RA30(), nil, assay.PID())
		b := mustRun(t, chip.RA30(), nil, assay.PID())
		if a.ExecutionTime != b.ExecutionTime {
			t.Fatalf("nondeterministic: %d vs %d", a.ExecutionTime, b.ExecutionTime)
		}
	}
}

func TestExecutionTimeHelper(t *testing.T) {
	et, ok := ExecutionTime(chip.IVD(), nil, assay.IVD(), Params{})
	if !ok || et <= 0 {
		t.Fatalf("ExecutionTime = %d, %v", et, ok)
	}
}

// lineChip builds M(1,1) --- D(4,1) with ports on both ends; the single
// horizontal channel is the only route.
//
//	P0(0,1) -v0- M(1,1) -v1- (2,1) -v2- (3,1) -v3- D(4,1) -v4- P1(5,1)
func lineChip(t *testing.T) *chip.Chip {
	t.Helper()
	b := chip.NewBuilder("line", 6, 3)
	b.AddDevice(chip.Mixer, "M", xy(1, 1))
	b.AddDevice(chip.Detector, "D", xy(4, 1))
	b.AddPort("P0", xy(0, 1))
	b.AddPort("P1", xy(5, 1))
	b.AddChannel(xy(0, 1), xy(1, 1), xy(2, 1), xy(3, 1), xy(4, 1), xy(5, 1))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func miniAssay() *assay.Graph {
	g := assay.New("mini")
	m := g.AddOp(assay.Mix, "m", 10)
	d := g.AddOp(assay.Detect, "d", 5)
	g.AddDep(m, d)
	return g
}

func TestLineChipTransport(t *testing.T) {
	c := lineChip(t)
	sch := mustRun(t, c, nil, miniAssay())
	if len(sch.Transports) != 1 {
		t.Fatalf("expected 1 transport, got %d", len(sch.Transports))
	}
	tr := sch.Transports[0]
	if len(tr.Edges) != 3 {
		t.Fatalf("transport path %v, want the 3 edges between M and D", tr.Edges)
	}
	// Default 2 s/edge.
	if tr.Finish-tr.Start != 6 {
		t.Fatalf("transport took %d s, want 6", tr.Finish-tr.Start)
	}
}

// Sharing that blocks the only transport: the DFT stub valve hangs off the
// middle of the M->D route and shares control with a route valve. Moving
// fluid requires the route valve open and the stub closed (contamination
// guard) — impossible on one line, so the assay is unschedulable, which is
// exactly the scenario the paper's validation rejects with quality ∞.
func TestSharingBlocksTransport(t *testing.T) {
	c := lineChip(t)
	e, ok := c.Grid.EdgeBetweenCoords(xy(2, 1), xy(2, 0))
	if !ok {
		t.Fatal("missing stub edge")
	}
	if _, err := c.AddDFTChannel(e); err != nil {
		t.Fatal(err)
	}
	// Stub valve (ID 5) shares with route valve v2 (edge (2,1)-(3,1)).
	ctrl, err := chip.SharedControl(c, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, ctrl, miniAssay(), Params{MaxTime: 3600}); err == nil {
		t.Fatal("expected unschedulable under blocking valve sharing")
	}
	// Sharing with the port-side valve v0 instead: the transport M->D does
	// not pass v0's node... v0 is P0-M edge; its node M is the transport
	// source, so the stub (forced open with v0) is fine only if v0 stays
	// closed during the move — it does (off-path), so both close together.
	ctrl2, err := chip.SharedControl(c, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Run(c, ctrl2, miniAssay(), Params{MaxTime: 3600})
	if err != nil {
		t.Fatalf("benign sharing should schedule: %v", err)
	}
	checkSchedule(t, c, miniAssay(), sch)
}

// Fig. 7 scenario: DFT channels with independent control add transport
// resources, so execution time must not get worse.
func TestDFTIndependentControlNotWorse(t *testing.T) {
	orig := chip.IVD()
	g := assay.IVD()
	base := mustRun(t, orig, nil, g)

	dft := chip.IVD()
	// Add a couple of parallel detour edges near the devices.
	for _, pair := range [][2]grid.Coord{
		{xy(1, 1), xy(2, 1)}, // already occupied: skipped below
		{xy(2, 1), xy(2, 2)},
		{xy(2, 2), xy(2, 3)},
	} {
		e, ok := dft.Grid.EdgeBetweenCoords(pair[0], pair[1])
		if !ok {
			continue
		}
		if _, occupied := dft.ValveOnEdge(e); occupied {
			continue
		}
		if _, err := dft.AddDFTChannel(e); err != nil {
			t.Fatal(err)
		}
	}
	aug := mustRun(t, dft, chip.IndependentControl(dft), g)
	// List scheduling is not monotone in resources (Graham anomalies), so
	// allow a small regression; Fig. 7's claim is "comparable or better".
	if float64(aug.ExecutionTime) > 1.25*float64(base.ExecutionTime) {
		t.Fatalf("independent-control DFT much slower: %d vs %d", aug.ExecutionTime, base.ExecutionTime)
	}
	t.Logf("orig %d s, DFT+independent %d s", base.ExecutionTime, aug.ExecutionTime)
}

func TestUnvalidatedGraphRejected(t *testing.T) {
	g := assay.New("bad")
	a := g.AddOp(assay.Mix, "a", 10)
	b := g.AddOp(assay.Mix, "b", 10)
	g.AddDep(a, b)
	g.AddDep(b, a)
	if _, err := Run(chip.IVD(), nil, g, Params{}); err == nil {
		t.Fatal("cyclic graph must be rejected")
	}
}

func TestWrongControlChipRejected(t *testing.T) {
	c1, c2 := chip.IVD(), chip.IVD()
	ctrl := chip.IndependentControl(c2)
	if _, err := Run(c1, ctrl, assay.IVD(), Params{}); err == nil {
		t.Fatal("control for a different chip must be rejected")
	}
}

func TestCPAUsesDispensePorts(t *testing.T) {
	c := chip.MRNA()
	g := assay.CPA()
	sch := mustRun(t, c, nil, g)
	checkSchedule(t, c, g, sch)
	ports := 0
	for _, r := range sch.Ops {
		if r.IsPort {
			ports++
		}
	}
	if ports != g.CountKind(assay.Dispense) {
		t.Fatalf("%d port ops, want %d dispenses", ports, g.CountKind(assay.Dispense))
	}
}

func TestSchedulerReportsStorageMoves(t *testing.T) {
	// PID's long chain on a 2-mixer chip forces products to wait; expect at
	// least one storage move ( ConsumerOp == -1 ) or a clean schedule.
	sch := mustRun(t, chip.RA30(), nil, assay.PID())
	moves := 0
	for _, tr := range sch.Transports {
		if tr.ConsumerOp < 0 {
			moves++
		}
	}
	t.Logf("PID on RA30: %d storage moves", moves)
}
