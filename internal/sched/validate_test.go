package sched

import (
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func TestValidateAcceptsRealSchedules(t *testing.T) {
	for _, c := range chip.Benchmarks() {
		for _, g := range assay.Benchmarks() {
			sch, err := Run(c, nil, g, Params{})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name, g.Name, err)
			}
			if err := ValidateSchedule(c, g, sch); err != nil {
				t.Errorf("%s/%s: %v", c.Name, g.Name, err)
			}
		}
	}
}

func validBase(t *testing.T) (*chip.Chip, *assay.Graph, *Schedule) {
	t.Helper()
	c := chip.IVD()
	g := assay.IVD()
	sch, err := Run(c, nil, g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return c, g, sch
}

func cloneSchedule(s *Schedule) *Schedule {
	out := &Schedule{ExecutionTime: s.ExecutionTime}
	out.Ops = append([]OpRecord(nil), s.Ops...)
	out.Transports = append([]TransportRecord(nil), s.Transports...)
	return out
}

func TestValidateRejectsNil(t *testing.T) {
	c, g, _ := validBase(t)
	if err := ValidateSchedule(c, g, nil); err == nil {
		t.Fatal("nil schedule must fail")
	}
}

func TestValidateRejectsMissingOp(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	bad.Ops = bad.Ops[1:]
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("missing op must fail")
	}
}

func TestValidateRejectsDuplicateOp(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	bad.Ops[1] = bad.Ops[0]
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("duplicate op must fail")
	}
}

func TestValidateRejectsWrongDuration(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	bad.Ops[0].Finish += 5
	if err := ValidateSchedule(c, g, bad); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("wrong duration must fail with duration message, got %v", err)
	}
}

func TestValidateRejectsPrecedenceViolation(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	// Find an op with a predecessor and slide it before the pred.
	for i, r := range bad.Ops {
		if len(g.Preds(r.Op)) > 0 {
			d := g.Op(r.Op).Duration
			bad.Ops[i].Start = 0
			bad.Ops[i].Finish = d
			break
		}
	}
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("precedence violation must fail")
	}
}

func TestValidateRejectsDeviceOverlap(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	// Force two mix ops onto the same device at the same time.
	var mixIdx []int
	for i, r := range bad.Ops {
		if g.Op(r.Op).Kind == assay.Mix {
			mixIdx = append(mixIdx, i)
		}
	}
	if len(mixIdx) < 2 {
		t.Skip("need two mixes")
	}
	a, b := mixIdx[0], mixIdx[1]
	bad.Ops[b].Device = bad.Ops[a].Device
	bad.Ops[b].Start = bad.Ops[a].Start
	bad.Ops[b].Finish = bad.Ops[a].Start + g.Op(bad.Ops[b].Op).Duration
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("device overlap must fail")
	}
}

func TestValidateRejectsWrongResourceKind(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	for i, r := range bad.Ops {
		if g.Op(r.Op).Kind == assay.Mix {
			// Point the mix at a detector.
			for _, d := range c.Devices {
				if d.Kind == chip.Detector {
					bad.Ops[i].Device = d.ID
					break
				}
			}
			break
		}
	}
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("mix on detector must fail")
	}
}

func TestValidateRejectsSharedTransportEdge(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	if len(bad.Transports) < 2 {
		t.Skip("need two transports")
	}
	// Make transport 1 overlap transport 0 in time and share its edges.
	bad.Transports[1].Edges = bad.Transports[0].Edges
	bad.Transports[1].Start = bad.Transports[0].Start
	bad.Transports[1].Finish = bad.Transports[0].Finish
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("shared transport edge must fail")
	}
}

func TestValidateRejectsWrongExecutionTime(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	bad.ExecutionTime += 7
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("wrong makespan must fail")
	}
}

func TestValidateRejectsUnvalvedTransportEdge(t *testing.T) {
	c, g, sch := validBase(t)
	bad := cloneSchedule(sch)
	if len(bad.Transports) == 0 {
		t.Skip("no transports")
	}
	// Find a free (unvalved) grid edge.
	free := -1
	for e := 0; e < c.Grid.NumEdges(); e++ {
		if _, ok := c.ValveOnEdge(e); !ok {
			free = e
			break
		}
	}
	bad.Transports[0].Edges = append([]int(nil), bad.Transports[0].Edges...)
	bad.Transports[0].Edges[0] = free
	if err := ValidateSchedule(c, g, bad); err == nil {
		t.Fatal("unvalved transport edge must fail")
	}
}
