// This file and baseline_transport.go are the seed scheduler, preserved
// verbatim as the A/B reference behind RunBaseline: every run rebuilds its
// routing, storage and snapshot-validation state from scratch. The warm
// Engine (engine.go/routing.go/storage.go/snapshot.go/events.go) must stay
// bit-identical to this path; the property tests in engine_test.go enforce
// that. Do not "improve" this code — change the engine instead.
package sched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
)

// simState is the event-driven simulation. Time advances from one
// completion event to the next; at each event time the scheduler
// repeatedly tries to start operations and transports until a fixpoint.
//
// Fluid products live at a location (the device/port where they were made,
// or a channel segment after a storage move). Each consumer receives its
// own aliquot via a transport; the producing resource is released when the
// last aliquot departs.
type simState struct {
	chip   *chip.Chip
	ctrl   *chip.Control
	graph  *assay.Graph
	params Params
	ctx    context.Context // nil = never cancelled

	ops      []opCtl
	products []productCtl
	tasks    []*transportTask

	deviceBusy []bool // running or reserved
	portBusy   []bool
	edgeBusy   []bool // in-flight transport occupancy
	lastFluid  []int  // per edge: op whose product last wetted it (-1 clean)

	// Fault bans (Params.BanClosed/BanOpen). stuckClosed/stuckOpen are
	// per-valve; bannedEdge marks the guarded segments no transport may
	// route through (stuck closed: never conducts) and no product may park
	// in (either kind: a stuck-closed segment cannot receive fluid, a
	// stuck-open one cannot seal it).
	stuckClosed []bool
	stuckOpen   []bool
	bannedEdge  []bool

	active []*activeTransport

	doneOps int
	now     int

	recOps        []OpRecord
	recTransports []TransportRecord
}

func newSimState(c *chip.Chip, ctrl *chip.Control, g *assay.Graph, p Params) *simState {
	s := &simState{
		chip:       c,
		ctrl:       ctrl,
		graph:      g,
		params:     p,
		ops:        make([]opCtl, g.NumOps()),
		products:   make([]productCtl, g.NumOps()),
		deviceBusy: make([]bool, len(c.Devices)),
		portBusy:   make([]bool, len(c.Ports)),
		edgeBusy:   make([]bool, c.Grid.NumEdges()),
		lastFluid:  make([]int, c.Grid.NumEdges()),
	}
	for i := range s.lastFluid {
		s.lastFluid[i] = -1
	}
	s.stuckClosed = make([]bool, c.NumValves())
	s.stuckOpen = make([]bool, c.NumValves())
	s.bannedEdge = make([]bool, c.Grid.NumEdges())
	markBan := func(valves []int, state []bool) {
		for _, v := range valves {
			if v < 0 || v >= c.NumValves() {
				continue
			}
			state[v] = true
			s.bannedEdge[c.Valve(v).Edge] = true
		}
	}
	markBan(p.BanClosed, s.stuckClosed)
	markBan(p.BanOpen, s.stuckOpen)
	// Priorities: longest path to a leaf (classic list scheduling).
	prio := make([]int, g.NumOps())
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := 0
		for _, v := range g.Succs(u) {
			if prio[v] > best {
				best = prio[v]
			}
		}
		prio[u] = best + g.Op(u).Duration
	}
	for i := range s.ops {
		s.ops[i] = opCtl{phase: phaseWaitPreds, device: -1, priority: prio[i]}
		s.products[i] = productCtl{holdsDevice: -1, holdsPort: -1}
	}
	return s
}

func (s *simState) run() (*Schedule, error) {
	for s.doneOps < s.graph.NumOps() {
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return nil, fmt.Errorf("sched: cancelled at t=%d (%d/%d ops done): %w", s.now, s.doneOps, s.graph.NumOps(), err)
			}
		}
		if s.now > s.params.MaxTime {
			return nil, fmt.Errorf("sched: exceeded time horizon %ds at t=%d", s.params.MaxTime, s.now)
		}
		for s.step() {
		}
		if s.doneOps == s.graph.NumOps() {
			break
		}
		next := s.nextEvent()
		if next < 0 {
			// Nothing in flight and nothing startable: evacuate a parked
			// product into channel storage (distributed storage, ref. [6])
			// to break the resource wedge; give up only if even that is
			// impossible.
			if s.emergencyStorage() {
				continue
			}
			return nil, fmt.Errorf("sched: deadlock at t=%d: %d/%d ops done", s.now, s.doneOps, s.graph.NumOps())
		}
		s.now = next
		s.completeAt(next)
	}
	makespan := 0
	for _, r := range s.recOps {
		if r.Finish > makespan {
			makespan = r.Finish
		}
	}
	sort.Slice(s.recOps, func(i, j int) bool { return s.recOps[i].Op < s.recOps[j].Op })
	return &Schedule{ExecutionTime: makespan, Ops: s.recOps, Transports: s.recTransports}, nil
}

// nextEvent returns the earliest future completion time, or -1 if nothing
// is in flight.
func (s *simState) nextEvent() int {
	next := -1
	consider := func(t int) {
		if t > s.now && (next < 0 || t < next) {
			next = t
		}
	}
	for i := range s.ops {
		if s.ops[i].phase == phaseRunning {
			consider(s.ops[i].finish)
		}
	}
	for _, at := range s.active {
		consider(at.finish)
	}
	return next
}

// completeAt retires ops and transports finishing at time t.
func (s *simState) completeAt(t int) {
	for i := range s.ops {
		oc := &s.ops[i]
		if oc.phase != phaseRunning || oc.finish != t {
			continue
		}
		oc.phase = phaseDone
		s.doneOps++
		nCons := len(s.graph.Succs(i))
		pr := &s.products[i]
		if oc.isPort {
			if nCons > 0 {
				pr.exists = true
				pr.totalConsumers = nCons
				pr.loc = location{kind: atNode, id: s.chip.Ports[oc.device].Node}
				pr.holdsPort = oc.device
			} else {
				s.portBusy[oc.device] = false
			}
		} else {
			if nCons > 0 {
				pr.exists = true
				pr.totalConsumers = nCons
				pr.loc = location{kind: atNode, id: s.chip.Devices[oc.device].Node}
				pr.holdsDevice = oc.device
			} else {
				s.deviceBusy[oc.device] = false
			}
		}
	}
	var still []*activeTransport
	for _, at := range s.active {
		if at.finish != t {
			still = append(still, at)
			continue
		}
		for _, e := range at.edges {
			s.edgeBusy[e] = false
		}
		pr := &s.products[at.task.producer]
		at.task.done = true
		if at.task.consumer >= 0 {
			s.ops[at.task.consumer].pending--
			pr.arrived++
			if pr.arrived >= pr.totalConsumers {
				pr.exists = false
			}
		} else {
			// Storage move: the product now rests in the destination
			// segment or port, holding it until the last aliquot departs.
			pr.loc = at.to
			pr.moving = false
			if at.to.kind == atNode {
				if p, okPort := s.chip.PortAt(at.to.id); okPort {
					pr.holdsPort = p.ID
				}
			}
		}
	}
	s.active = still
}

// step attempts one round of state advancement; it reports whether
// anything changed (run until fixpoint).
func (s *simState) step() bool {
	changed := false
	// 1. Promote ops whose predecessors are all done.
	for i := range s.ops {
		if s.ops[i].phase != phaseWaitPreds {
			continue
		}
		ready := true
		for _, p := range s.graph.Preds(i) {
			if s.ops[p].phase != phaseDone {
				ready = false
				break
			}
		}
		if ready {
			s.ops[i].phase = phaseWaitDevice
			changed = true
		}
	}
	// 2. Bind devices in priority order.
	for _, i := range s.opsInPhase(phaseWaitDevice) {
		if s.bindDevice(i) {
			changed = true
		}
	}
	// 3. Start pending transports.
	for _, task := range s.tasks {
		if task.started || task.done {
			continue
		}
		if s.tryStartTransport(task) {
			changed = true
		}
	}
	// 4. Start ops whose deliveries completed.
	for _, i := range s.opsInPhase(phaseWaitDelivery) {
		if s.ops[i].pending == 0 {
			s.beginRun(i)
			changed = true
		}
	}
	return changed
}

// opsInPhase returns the op IDs in the given phase, highest priority first
// (ties by ID) — the list-scheduling order.
func (s *simState) opsInPhase(ph opPhase) []int {
	var out []int
	for i := range s.ops {
		if s.ops[i].phase == ph {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := s.ops[out[a]].priority, s.ops[out[b]].priority
		if pa != pb {
			return pa > pb
		}
		return out[a] < out[b]
	})
	return out
}

// bindDevice reserves an execution resource for op i and creates delivery
// tasks for its predecessors' products.
func (s *simState) bindDevice(i int) bool {
	op := s.graph.Op(i)
	if op.Kind == assay.Dispense {
		// Work-in-progress throttle: dispensing far ahead of the mixing
		// tree floods devices and channel storage with waiting products
		// (CPA has 24 dispenses for a handful of devices). A dispense may
		// start only when its product is consumable soon, or when the chip
		// has headroom.
		if !s.dispenseUseful(i) && s.liveProducts() >= len(s.chip.Devices) {
			return false
		}
		p := s.freePort()
		if p < 0 {
			return false
		}
		s.portBusy[p] = true
		oc := &s.ops[i]
		oc.device = p
		oc.isPort = true
		oc.phase = phaseWaitDelivery
		oc.pending = 0
		return true
	}
	kind := chip.Mixer
	if op.Kind == assay.Detect {
		kind = chip.Detector
	}
	d := s.pickDevice(kind, i)
	if d < 0 {
		return false
	}
	s.deviceBusy[d] = true
	oc := &s.ops[i]
	oc.device = d
	oc.isPort = false
	oc.phase = phaseWaitDelivery
	oc.pending = 0
	for _, p := range s.graph.Preds(i) {
		// Zero-distance delivery: the product already sits on this device.
		pr := &s.products[p]
		if pr.exists && pr.loc.kind == atNode && pr.loc.id == s.chip.Devices[d].Node {
			s.consumeInPlace(p, d)
			continue
		}
		s.tasks = append(s.tasks, &transportTask{producer: p, consumer: i})
		oc.pending++
	}
	return true
}

// consumeInPlace serves a consumer that bound the very device holding the
// product: no transport is needed.
func (s *simState) consumeInPlace(producer, device int) {
	pr := &s.products[producer]
	pr.started++
	pr.arrived++
	if pr.started >= pr.totalConsumers {
		s.releaseHold(producer)
	}
	if pr.arrived >= pr.totalConsumers {
		pr.exists = false
	}
	_ = device
}

// releaseHold frees the resource a product has been parked on (called when
// its last aliquot departs).
func (s *simState) releaseHold(producer int) {
	pr := &s.products[producer]
	if pr.holdsDevice >= 0 {
		s.deviceBusy[pr.holdsDevice] = false
		pr.holdsDevice = -1
	}
	if pr.holdsPort >= 0 {
		s.portBusy[pr.holdsPort] = false
		pr.holdsPort = -1
	}
}

// dispenseUseful reports whether some consumer of dispense op i has every
// other predecessor finished — meaning the dispensed product unblocks an
// operation immediately.
func (s *simState) dispenseUseful(i int) bool {
	for _, succ := range s.graph.Succs(i) {
		ready := true
		for _, p := range s.graph.Preds(succ) {
			if p == i {
				continue
			}
			if s.ops[p].phase != phaseDone {
				ready = false
				break
			}
		}
		if ready {
			return true
		}
	}
	return false
}

// liveProducts counts products that exist and have not been fully consumed.
func (s *simState) liveProducts() int {
	n := 0
	for i := range s.products {
		if s.products[i].exists {
			n++
		}
	}
	return n
}

func (s *simState) freePort() int {
	for p := range s.chip.Ports {
		if !s.portBusy[p] {
			return p
		}
	}
	return -1
}

// pickDevice returns a device of the kind usable by op i: a genuinely free
// one, or one held exclusively by a product that only op i consumes (so the
// op can run in place). Returns -1 if none.
func (s *simState) pickDevice(kind chip.DeviceKind, op int) int {
	// Prefer in-place reuse: a device held by a single-consumer pred
	// product of this op.
	for _, p := range s.graph.Preds(op) {
		pr := &s.products[p]
		if pr.exists && pr.holdsDevice >= 0 && pr.totalConsumers-pr.started == 1 &&
			s.chip.Devices[pr.holdsDevice].Kind == kind {
			d := pr.holdsDevice
			// Un-hold; bindDevice will re-busy it and consume in place.
			s.deviceBusy[d] = false
			pr.holdsDevice = -1
			return d
		}
	}
	for _, d := range s.chip.Devices {
		if d.Kind == kind && !s.deviceBusy[d.ID] {
			return d.ID
		}
	}
	return -1
}

// beginRun starts op i on its reserved resource.
func (s *simState) beginRun(i int) {
	oc := &s.ops[i]
	oc.phase = phaseRunning
	oc.start = s.now
	oc.finish = s.now + s.graph.Op(i).Duration
	s.recOps = append(s.recOps, OpRecord{
		Op: i, Device: oc.device, IsPort: oc.isPort, Start: oc.start, Finish: oc.finish,
	})
}
