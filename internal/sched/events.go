package sched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/graphalg"
)

// runState is one Engine.Run's control-dependent simulation state. It
// mirrors simState event for event — the schedules must be bit-identical —
// but every buffer is pooled and reused, the per-edge product index
// (holderOf) replaces the baseline's linear product scans, and tasks and
// active transports are value slices instead of per-run pointer
// allocations.
type runState struct {
	eng    *Engine
	ctrl   *chip.Control
	params Params
	ctx    context.Context

	ops      []opCtl
	products []productCtl
	tasks    []engTask
	active   []engActive

	deviceBusy []bool
	portBusy   []bool
	edgeBusy   []bool
	busyCount  int // edges currently occupied by in-flight transports
	lastFluid  []int

	// holderOf[e] is the product stored in segment e (-1 none), kept in
	// lockstep with products[i].exists/loc; heldCount counts the non-(-1)
	// entries. Together with busyCount they gate the pristine fast path.
	holderOf  []int
	heldCount int

	// sharedValve[v] reports whether v's control line drives another valve
	// under this run's assignment — the O(1) replacement for the
	// baseline's SharedWith scan in the parking policy.
	sharedValve []bool
	lineSize    []int

	doneOps int
	now     int

	recOps        []OpRecord
	recTransports []TransportRecord

	// Routing scratch (routing.go).
	path     graphalg.PathScratch
	pathBest []int
	pathOut  []int
	penalty  []float64
	penTouch []int

	// Snapshot-validation scratch (snapshot.go): epoch-stamped demand sets
	// over valves, per-member own-edge marks, product-on-the-move marks and
	// per-line demand marks.
	reqOpenEp   []int
	reqClosedEp []int
	touchedEp   []int
	touched     []int
	ownEp       []int
	prodMoveEp  []int
	lineOpenEp  []int
	snapEpoch   int
	memberEp    int

	// Storage scratch (storage.go). dist serves pickParkingEdge's distance
	// field; dist2 the nested connectivity BFS (both may be live at once).
	bfs     graphalg.Scratch
	dist    []int
	dist2   []int
	evacBuf []int

	// Event-loop scratch.
	phaseBuf []int
}

// engTask is transportTask by value; tasks are addressed by index into
// runState.tasks.
type engTask struct {
	producer int
	consumer int // -1 for storage moves
	started  bool
	done     bool
}

// engActive is activeTransport with a task index instead of a pointer.
type engActive struct {
	taskIdx int
	edges   []int
	finish  int
	to      location
}

func newRunState(e *Engine) *runState {
	nNodes := e.grid.NumNodes()
	return &runState{
		eng:         e,
		ops:         make([]opCtl, e.numOps),
		products:    make([]productCtl, e.numOps),
		deviceBusy:  make([]bool, len(e.chip.Devices)),
		portBusy:    make([]bool, len(e.chip.Ports)),
		edgeBusy:    make([]bool, e.numEdges),
		lastFluid:   make([]int, e.numEdges),
		holderOf:    make([]int, e.numEdges),
		sharedValve: make([]bool, e.numValves),
		penalty:     make([]float64, e.numEdges),
		reqOpenEp:   make([]int, e.numValves),
		reqClosedEp: make([]int, e.numValves),
		touchedEp:   make([]int, e.numValves),
		ownEp:       make([]int, e.numEdges),
		prodMoveEp:  make([]int, e.numOps),
		dist:        make([]int, nNodes),
	}
}

// reset rebinds the pooled state to one run. Everything cleared here is
// O(ops + edges + valves) — no allocation once the buffers exist.
func (rs *runState) reset(ctrl *chip.Control, p Params, ctx context.Context) {
	e := rs.eng
	rs.ctrl, rs.params, rs.ctx = ctrl, p, ctx
	for i := range rs.ops {
		rs.ops[i] = opCtl{phase: phaseWaitPreds, device: -1, priority: e.priority[i]}
		rs.products[i] = productCtl{holdsDevice: -1, holdsPort: -1}
	}
	rs.tasks = rs.tasks[:0]
	rs.active = rs.active[:0]
	for i := range rs.deviceBusy {
		rs.deviceBusy[i] = false
	}
	for i := range rs.portBusy {
		rs.portBusy[i] = false
	}
	for i := range rs.edgeBusy {
		rs.edgeBusy[i] = false
		rs.lastFluid[i] = -1
		rs.holderOf[i] = -1
		rs.penalty[i] = 0
	}
	rs.busyCount, rs.heldCount = 0, 0
	rs.penTouch = rs.penTouch[:0]
	rs.doneOps, rs.now = 0, 0
	rs.recOps = rs.recOps[:0]
	rs.recTransports = rs.recTransports[:0]

	// Per-run control-derived state: line sizes → shared-valve flags.
	nLines := ctrl.NumLines()
	if cap(rs.lineSize) < nLines {
		rs.lineSize = make([]int, nLines)
		rs.lineOpenEp = make([]int, nLines)
	}
	rs.lineSize = rs.lineSize[:nLines]
	rs.lineOpenEp = rs.lineOpenEp[:nLines]
	for i := range rs.lineSize {
		rs.lineSize[i] = 0
		rs.lineOpenEp[i] = 0
	}
	for v := 0; v < e.numValves; v++ {
		rs.lineSize[ctrl.LineOf(v)]++
	}
	for v := 0; v < e.numValves; v++ {
		rs.sharedValve[v] = rs.lineSize[ctrl.LineOf(v)] > 1
	}
	// Epoch counters restart per run; the stamp arrays were zeroed on
	// creation and every stale stamp is < the new epoch sequence only if
	// we also clear them — cheaper to keep the epochs monotonic across
	// runs instead, so explicitly zero the stamps once here.
	for v := range rs.reqOpenEp {
		rs.reqOpenEp[v] = 0
		rs.reqClosedEp[v] = 0
		rs.touchedEp[v] = 0
	}
	for ed := range rs.ownEp {
		rs.ownEp[ed] = 0
	}
	for i := range rs.prodMoveEp {
		rs.prodMoveEp[i] = 0
	}
	rs.snapEpoch, rs.memberEp = 0, 0
}

// run is the event loop, step for step the baseline's simState.run.
func (rs *runState) run() (*Schedule, int, error) {
	numOps := rs.eng.numOps
	for rs.doneOps < numOps {
		if rs.ctx != nil {
			if err := rs.ctx.Err(); err != nil {
				return nil, rs.doneOps, fmt.Errorf("sched: cancelled at t=%d (%d/%d ops done): %w", rs.now, rs.doneOps, numOps, err)
			}
		}
		if rs.now > rs.params.MaxTime {
			return nil, rs.doneOps, fmt.Errorf("sched: exceeded time horizon %ds at t=%d", rs.params.MaxTime, rs.now)
		}
		for rs.step() {
		}
		if rs.doneOps == numOps {
			break
		}
		next := rs.nextEvent()
		if next < 0 {
			if rs.emergencyStorage() {
				continue
			}
			return nil, rs.doneOps, fmt.Errorf("sched: deadlock at t=%d: %d/%d ops done", rs.now, rs.doneOps, numOps)
		}
		rs.now = next
		rs.completeAt(next)
	}
	makespan := 0
	for _, r := range rs.recOps {
		if r.Finish > makespan {
			makespan = r.Finish
		}
	}
	// The schedule escapes the pooled state: hand out fresh copies.
	ops := append([]OpRecord(nil), rs.recOps...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Op < ops[j].Op })
	transports := append([]TransportRecord(nil), rs.recTransports...)
	return &Schedule{ExecutionTime: makespan, Ops: ops, Transports: transports}, rs.doneOps, nil
}

func (rs *runState) nextEvent() int {
	next := -1
	for i := range rs.ops {
		if rs.ops[i].phase == phaseRunning {
			if t := rs.ops[i].finish; t > rs.now && (next < 0 || t < next) {
				next = t
			}
		}
	}
	for i := range rs.active {
		if t := rs.active[i].finish; t > rs.now && (next < 0 || t < next) {
			next = t
		}
	}
	return next
}

// completeAt retires ops and transports finishing at time t, maintaining
// the holderOf index at every product-location mutation.
func (rs *runState) completeAt(t int) {
	e := rs.eng
	for i := range rs.ops {
		oc := &rs.ops[i]
		if oc.phase != phaseRunning || oc.finish != t {
			continue
		}
		oc.phase = phaseDone
		rs.doneOps++
		nCons := len(e.graph.Succs(i))
		pr := &rs.products[i]
		if oc.isPort {
			if nCons > 0 {
				pr.exists = true
				pr.totalConsumers = nCons
				pr.loc = location{kind: atNode, id: e.chip.Ports[oc.device].Node}
				pr.holdsPort = oc.device
			} else {
				rs.portBusy[oc.device] = false
			}
		} else {
			if nCons > 0 {
				pr.exists = true
				pr.totalConsumers = nCons
				pr.loc = location{kind: atNode, id: e.chip.Devices[oc.device].Node}
				pr.holdsDevice = oc.device
			} else {
				rs.deviceBusy[oc.device] = false
			}
		}
	}
	keep := rs.active[:0]
	for idx := range rs.active {
		at := rs.active[idx]
		if at.finish != t {
			keep = append(keep, at)
			continue
		}
		for _, ed := range at.edges {
			rs.edgeBusy[ed] = false
		}
		rs.busyCount -= len(at.edges)
		task := &rs.tasks[at.taskIdx]
		pr := &rs.products[task.producer]
		task.done = true
		if task.consumer >= 0 {
			rs.ops[task.consumer].pending--
			pr.arrived++
			if pr.arrived >= pr.totalConsumers {
				pr.exists = false
				if pr.loc.kind == atEdge {
					rs.holderOf[pr.loc.id] = -1
					rs.heldCount--
				}
			}
		} else {
			pr.loc = at.to
			pr.moving = false
			if at.to.kind == atEdge {
				rs.holderOf[at.to.id] = task.producer
				rs.heldCount++
			} else if p := e.portOfNode[at.to.id]; p >= 0 {
				pr.holdsPort = p
			}
		}
	}
	rs.active = keep
}

// step is one fixpoint round: promote ready ops, bind devices, start
// transports, begin delivered runs.
func (rs *runState) step() bool {
	e := rs.eng
	changed := false
	for i := range rs.ops {
		if rs.ops[i].phase != phaseWaitPreds {
			continue
		}
		ready := true
		for _, p := range e.graph.Preds(i) {
			if rs.ops[p].phase != phaseDone {
				ready = false
				break
			}
		}
		if ready {
			rs.ops[i].phase = phaseWaitDevice
			changed = true
		}
	}
	for _, i := range rs.opsInPhase(phaseWaitDevice) {
		if rs.bindDevice(i) {
			changed = true
		}
	}
	for ti := 0; ti < len(rs.tasks); ti++ {
		if rs.tasks[ti].started || rs.tasks[ti].done {
			continue
		}
		if rs.tryStartTransport(ti) {
			changed = true
		}
	}
	for _, i := range rs.opsInPhase(phaseWaitDelivery) {
		if rs.ops[i].pending == 0 {
			rs.beginRun(i)
			changed = true
		}
	}
	return changed
}

// opsInPhase fills the reused phase buffer with the op IDs in the given
// phase ordered by (priority desc, ID asc) — the comparator is a total
// order, so the insertion sort reproduces sort.Slice's result exactly.
func (rs *runState) opsInPhase(ph opPhase) []int {
	out := rs.phaseBuf[:0]
	for i := range rs.ops {
		if rs.ops[i].phase == ph {
			out = append(out, i)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			pa, pb := rs.ops[a].priority, rs.ops[b].priority
			if pa > pb || (pa == pb && a < b) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	rs.phaseBuf = out
	return out
}

func (rs *runState) bindDevice(i int) bool {
	e := rs.eng
	op := e.graph.Op(i)
	if op.Kind == assay.Dispense {
		if !rs.dispenseUseful(i) && rs.liveProducts() >= len(e.chip.Devices) {
			return false
		}
		p := rs.freePort()
		if p < 0 {
			return false
		}
		rs.portBusy[p] = true
		oc := &rs.ops[i]
		oc.device = p
		oc.isPort = true
		oc.phase = phaseWaitDelivery
		oc.pending = 0
		return true
	}
	kind := chip.Mixer
	if op.Kind == assay.Detect {
		kind = chip.Detector
	}
	d := rs.pickDevice(kind, i)
	if d < 0 {
		return false
	}
	rs.deviceBusy[d] = true
	oc := &rs.ops[i]
	oc.device = d
	oc.isPort = false
	oc.phase = phaseWaitDelivery
	oc.pending = 0
	for _, p := range e.graph.Preds(i) {
		pr := &rs.products[p]
		if pr.exists && pr.loc.kind == atNode && pr.loc.id == e.chip.Devices[d].Node {
			rs.consumeInPlace(p)
			continue
		}
		rs.tasks = append(rs.tasks, engTask{producer: p, consumer: i})
		oc.pending++
	}
	return true
}

func (rs *runState) consumeInPlace(producer int) {
	pr := &rs.products[producer]
	pr.started++
	pr.arrived++
	if pr.started >= pr.totalConsumers {
		rs.releaseHold(producer)
	}
	if pr.arrived >= pr.totalConsumers {
		pr.exists = false
	}
}

func (rs *runState) releaseHold(producer int) {
	pr := &rs.products[producer]
	if pr.holdsDevice >= 0 {
		rs.deviceBusy[pr.holdsDevice] = false
		pr.holdsDevice = -1
	}
	if pr.holdsPort >= 0 {
		rs.portBusy[pr.holdsPort] = false
		pr.holdsPort = -1
	}
}

func (rs *runState) dispenseUseful(i int) bool {
	e := rs.eng
	for _, succ := range e.graph.Succs(i) {
		ready := true
		for _, p := range e.graph.Preds(succ) {
			if p == i {
				continue
			}
			if rs.ops[p].phase != phaseDone {
				ready = false
				break
			}
		}
		if ready {
			return true
		}
	}
	return false
}

func (rs *runState) liveProducts() int {
	n := 0
	for i := range rs.products {
		if rs.products[i].exists {
			n++
		}
	}
	return n
}

func (rs *runState) freePort() int {
	for p := range rs.eng.chip.Ports {
		if !rs.portBusy[p] {
			return p
		}
	}
	return -1
}

func (rs *runState) pickDevice(kind chip.DeviceKind, op int) int {
	e := rs.eng
	for _, p := range e.graph.Preds(op) {
		pr := &rs.products[p]
		if pr.exists && pr.holdsDevice >= 0 && pr.totalConsumers-pr.started == 1 &&
			e.chip.Devices[pr.holdsDevice].Kind == kind {
			d := pr.holdsDevice
			rs.deviceBusy[d] = false
			pr.holdsDevice = -1
			return d
		}
	}
	for _, d := range e.chip.Devices {
		if d.Kind == kind && !rs.deviceBusy[d.ID] {
			return d.ID
		}
	}
	return -1
}

func (rs *runState) beginRun(i int) {
	oc := &rs.ops[i]
	oc.phase = phaseRunning
	oc.start = rs.now
	oc.finish = rs.now + rs.eng.graph.Op(i).Duration
	rs.recOps = append(rs.recOps, OpRecord{
		Op: i, Device: oc.device, IsPort: oc.isPort, Start: oc.start, Finish: oc.finish,
	})
}
