// Seed transport/storage policy, preserved verbatim for RunBaseline — see
// the note atop baseline_sim.go. The warm engine's equivalents live in
// routing.go (path search), snapshot.go (valve-state validation) and
// storage.go (parking policy).
package sched

import (
	"sort"
)

// tryStartTransport attempts to launch the fluid movement for a pending
// task at the current time. It returns true when the transport started.
func (s *simState) tryStartTransport(task *transportTask) bool {
	pr := &s.products[task.producer]
	if !pr.exists || pr.moving {
		return false
	}
	if task.consumer < 0 {
		return s.tryStartStorageMove(task)
	}
	oc := &s.ops[task.consumer]
	toNode := s.chip.Devices[oc.device].Node
	if oc.isPort {
		toNode = s.chip.Ports[oc.device].Node
	}
	edges, ok := s.routeAndValidate(pr.loc, location{kind: atNode, id: toNode}, task.producer)
	if !ok {
		return false
	}
	s.launch(task, edges, location{kind: atNode, id: toNode})
	return true
}

// launch commits a transport: occupies edges, updates product bookkeeping,
// and records it. With the wash model enabled, segments last wetted by a
// different fluid are flushed first, extending the transport.
func (s *simState) launch(task *transportTask, edges []int, to location) {
	pr := &s.products[task.producer]
	dur := len(edges) * s.params.TransportTimePerEdge
	washed := 0
	if s.params.WashTimePerEdge > 0 {
		for _, e := range edges {
			if s.lastFluid[e] >= 0 && s.lastFluid[e] != task.producer {
				washed++
			}
		}
		dur += washed * s.params.WashTimePerEdge
	}
	for _, e := range edges {
		s.lastFluid[e] = task.producer
	}
	if dur == 0 {
		dur = 1 // same-node move still takes a beat
	}
	at := &activeTransport{
		task:   task,
		edges:  edges,
		finish: s.now + dur,
		to:     to,
	}
	for _, e := range edges {
		s.edgeBusy[e] = true
	}
	task.started = true
	if task.consumer >= 0 {
		pr.started++
		if pr.started >= pr.totalConsumers {
			s.releaseHold(task.producer)
		}
	} else {
		pr.moving = true
		s.releaseHold(task.producer)
	}
	s.active = append(s.active, at)
	s.recTransports = append(s.recTransports, TransportRecord{
		ProducerOp:  task.producer,
		ConsumerOp:  task.consumer,
		Edges:       edges,
		Start:       s.now,
		Finish:      at.finish,
		WashedEdges: washed,
	})
}

// routeAndValidate finds a path for moving product `producer` from `from`
// to `to` that is free right now and whose valve demands are compatible
// with every in-flight transport, stored product and occupied resource
// under the control assignment (sharing included). It retries with
// penalized edges when the only obstacle is a control conflict.
func (s *simState) routeAndValidate(from, to location, producer int) ([]int, bool) {
	penalty := make(map[int]float64)
	for attempt := 0; attempt < s.params.MaxReroutes; attempt++ {
		edges, ok := s.findPath(from, to, producer, penalty)
		if !ok {
			return nil, false
		}
		if s.conflictFree(edges, from, to, producer) {
			return edges, true
		}
		for _, e := range edges {
			penalty[e] += 10
		}
	}
	return nil, false
}

// findPath computes a minimum-cost path of channel edges between two
// locations, avoiding busy edges and segments holding other products.
// Occupied device nodes do NOT block a path: a device chamber is sealed by
// its own valves and the junction at its node routes fluid around it (the
// bypass switches of Fig. 1(b)); contamination is enforced at the valve
// level by conflictFree.
func (s *simState) findPath(from, to location, producer int, penalty map[int]float64) ([]int, bool) {
	g := s.chip.Grid.Graph()
	fromNodes := s.locationNodes(from)
	toNodes := s.locationNodes(to)
	weight := func(e int) float64 {
		v, valved := s.chip.ValveOnEdge(e)
		if !valved {
			return -1
		}
		if s.stuckClosed[v] {
			return -1 // stuck-closed segment never conducts
		}
		if s.edgeBusy[e] {
			return -1
		}
		if holder, held := s.edgeHolder(e); held && holder != producer {
			return -1
		}
		return 1 + penalty[e]
	}
	best := []int(nil)
	bestCost := -1.0
	for _, fn := range fromNodes {
		for _, tn := range toNodes {
			_, edges, cost, ok := g.WeightedShortestPath(fn, tn, weight)
			if !ok {
				continue
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = edges, cost
			}
		}
	}
	if bestCost < 0 {
		return nil, false
	}
	// Moving out of (or into) a stored segment traverses that segment too.
	if from.kind == atEdge && (len(best) == 0 || best[0] != from.id) {
		best = append([]int{from.id}, best...)
	}
	if to.kind == atEdge && (len(best) == 0 || best[len(best)-1] != to.id) {
		best = append(best, to.id)
	}
	return best, true
}

// locationNodes returns the grid nodes a location touches.
func (s *simState) locationNodes(l location) []int {
	if l.kind == atNode {
		return []int{l.id}
	}
	u, v := s.chip.Grid.Graph().Endpoints(l.id)
	return []int{u, v}
}

// edgeHolder reports whether a channel segment currently stores a product.
func (s *simState) edgeHolder(e int) (producer int, held bool) {
	for i := range s.products {
		pr := &s.products[i]
		if pr.exists && pr.loc.kind == atEdge && pr.loc.id == e {
			return i, true
		}
	}
	return 0, false
}

// occupiedNodes returns the grid nodes that hold fluid right now: devices
// and ports with a running operation or a parked product. Reserved-but-idle
// devices are passable — fluid may traverse an empty chamber — which keeps
// sparse chips deadlock-free.
func (s *simState) occupiedNodes() map[int]bool {
	out := make(map[int]bool)
	for i := range s.ops {
		oc := &s.ops[i]
		if oc.phase != phaseRunning {
			continue
		}
		if oc.isPort {
			out[s.chip.Ports[oc.device].Node] = true
		} else {
			out[s.chip.Devices[oc.device].Node] = true
		}
	}
	for i := range s.products {
		pr := &s.products[i]
		if !pr.exists {
			continue
		}
		if pr.holdsDevice >= 0 {
			out[s.chip.Devices[pr.holdsDevice].Node] = true
		}
		if pr.holdsPort >= 0 {
			out[s.chip.Ports[pr.holdsPort].Node] = true
		}
	}
	return out
}

// conflictFree validates the valve snapshot if `edges` were opened now for
// a movement of `producer` from `from` to `to`, alongside all active
// transports, stored products and occupied resources (Section 4.1 of the
// paper). It returns false when any control line would need to be both
// open and closed — the contamination/blocking hazard of valve sharing.
func (s *simState) conflictFree(edges []int, from, to location, producer int) bool {
	n := s.chip.NumValves()
	reqOpen := make([]bool, n)
	reqClosed := make([]bool, n)

	type member struct {
		edges   []int
		nodes   map[int]bool
		ends    map[int]bool
		product int
	}
	var members []member
	mk := func(edges []int, from, to location, product int) member {
		g := s.chip.Grid.Graph()
		m := member{edges: edges, nodes: map[int]bool{}, ends: map[int]bool{}, product: product}
		for _, e := range edges {
			u, v := g.Endpoints(e)
			m.nodes[u] = true
			m.nodes[v] = true
		}
		for _, nd := range s.locationNodes(from) {
			m.ends[nd] = true
		}
		for _, nd := range s.locationNodes(to) {
			m.ends[nd] = true
		}
		return m
	}
	members = append(members, mk(edges, from, to, producer))
	for _, at := range s.active {
		atFrom := s.products[at.task.producer].loc
		members = append(members, mk(at.edges, atFrom, at.to, at.task.producer))
	}

	g := s.chip.Grid.Graph()
	for _, m := range members {
		own := make(map[int]bool, len(m.edges))
		for _, e := range m.edges {
			own[e] = true
			v, _ := s.chip.ValveOnEdge(e)
			reqOpen[v] = true
		}
		// Contamination guard: every off-path channel edge incident to a
		// path node must stay closed.
		for nd := range m.nodes {
			for _, e2 := range g.IncidentEdges(nd) {
				if own[e2] {
					continue
				}
				if v, ok := s.chip.ValveOnEdge(e2); ok {
					reqClosed[v] = true
				}
			}
		}
	}
	// Stored products keep their segment sealed, except the one being moved.
	for i := range s.products {
		pr := &s.products[i]
		if !pr.exists || pr.loc.kind != atEdge {
			continue
		}
		onMove := false
		for _, m := range members {
			if m.product == i {
				onMove = true
				break
			}
		}
		if onMove {
			continue
		}
		if v, ok := s.chip.ValveOnEdge(pr.loc.id); ok {
			reqClosed[v] = true
		}
	}
	// Physical bans override control: a stuck-closed valve cannot open no
	// matter what its line does (routing already avoids it; this guards
	// the stored-segment insertion paths too), and a stuck-open valve
	// cannot seal — any snapshot demanding that seal is a contamination
	// hazard unless the relaxed tier explicitly accepts it.
	for v := range reqOpen {
		if reqOpen[v] && s.stuckClosed[v] {
			return false
		}
		if reqClosed[v] && s.stuckOpen[v] && !s.params.RelaxStuckOpenSeal {
			return false
		}
	}
	// Conflicts: a control line demanded both open and closed by the
	// constraints above — a path valve whose shared partner must seal an
	// adjacent branch (the Fig. 6 hazard), two adjacent concurrent
	// transports, or a stored segment pried open by sharing. Forced-open
	// valves far away from every active path are harmless: a dead-end
	// branch carries no pressure-driven flow.
	return len(s.ctrl.Conflicts(reqOpen, reqClosed)) == 0
}

// --- channel storage ----------------------------------------------------------

// emergencyStorage fires only when the simulation is wedged (nothing
// running, nothing startable): it evacuates one held product into a free
// channel segment (distributed channel storage, ref. [6]) to release its
// device or port. It returns true iff a storage move actually started.
func (s *simState) emergencyStorage() bool {
	// First choice: evacuate a product holding a device or port. Second
	// choice: re-park a stored product whose segment seal may be wedging
	// the chip (its control line could be forcing a partner valve shut).
	var holders, stored []int
	for i := range s.products {
		pr := &s.products[i]
		if !pr.exists || pr.started > 0 || pr.moving {
			continue
		}
		switch {
		case pr.holdsDevice >= 0 || pr.holdsPort >= 0:
			holders = append(holders, i)
		case pr.loc.kind == atEdge:
			stored = append(stored, i)
		}
	}
	sort.Ints(holders)
	sort.Ints(stored)
	for _, i := range append(holders, stored...) {
		task := &transportTask{producer: i, consumer: -1}
		if s.tryStartTransport(task) {
			s.tasks = append(s.tasks, task)
			return true
		}
	}
	return false
}

// tryStartStorageMove routes a held or stored product to the best free
// parking segment near it (stored products may be re-parked when their
// current segment's seal wedges the chip).
func (s *simState) tryStartStorageMove(task *transportTask) bool {
	pr := &s.products[task.producer]
	if pr.started > 0 {
		task.done = true // aliquots already departing; storage no longer needed
		return false
	}
	fromNode := pr.loc.id
	if pr.loc.kind == atEdge {
		fromNode, _ = s.chip.Grid.Graph().Endpoints(pr.loc.id)
	}
	if target, ok := s.pickParkingEdge(fromNode, task.producer); ok && !(pr.loc.kind == atEdge && target == pr.loc.id) {
		to := location{kind: atEdge, id: target}
		if edges, ok2 := s.routeAndValidate(pr.loc, to, task.producer); ok2 {
			if pr.loc.kind == atEdge {
				// The old segment frees once the move completes; while
				// moving, the fluid occupies the path (including the old
				// segment).
				pr.loc = location{kind: atNode, id: fromNode}
			}
			s.launch(task, edges, to)
			return true
		}
	}
	// Fallback tier: park the product at a free external port — a vial
	// waiting at the chip boundary.
	if pr.holdsPort >= 0 {
		return false // already at a port; nothing gained
	}
	for p := range s.chip.Ports {
		if s.portBusy[p] {
			continue
		}
		to := location{kind: atNode, id: s.chip.Ports[p].Node}
		edges, ok2 := s.routeAndValidate(pr.loc, to, task.producer)
		if !ok2 {
			continue
		}
		if pr.loc.kind == atEdge {
			pr.loc = location{kind: atNode, id: fromNode}
		}
		s.portBusy[p] = true // reserved for the incoming fluid
		s.launch(task, edges, to)
		return true
	}
	return false
}

// pickParkingEdge selects the closest free channel segment that is not a
// doorstep of any device or port (parking there would block it).
func (s *simState) pickParkingEdge(fromNode, producer int) (int, bool) {
	g := s.chip.Grid.Graph()
	resourceNode := make(map[int]bool)
	for _, d := range s.chip.Devices {
		resourceNode[d.Node] = true
	}
	for _, p := range s.chip.Ports {
		resourceNode[p.Node] = true
	}
	dist := g.BFSFrom(fromNode, func(e int) bool {
		v, ok := s.chip.ValveOnEdge(e)
		if !ok || s.stuckClosed[v] {
			return false
		}
		if s.edgeBusy[e] {
			return false
		}
		if _, held := s.edgeHolder(e); held {
			return false
		}
		return true
	})
	// Two passes: prefer segments away from any device/port doorstep, but
	// fall back to doorstep parking on sparse chips where every channel
	// edge touches a resource node. A segment is only eligible if blocking
	// it (together with all currently stored segments) leaves every device
	// and port mutually reachable — otherwise parked fluid would wall off
	// part of the chip and deadlock the schedule.
	for pass := 0; pass < 2; pass++ {
		best, bestD := -1, -1
		for e := 0; e < g.NumEdges(); e++ {
			valve, okValve := s.chip.ValveOnEdge(e)
			if !okValve {
				continue
			}
			if s.bannedEdge[e] {
				// A stuck-closed segment cannot receive fluid; a stuck-open
				// one can never seal it in.
				continue
			}
			if len(s.ctrl.SharedWith(valve)) > 0 {
				// Never park on a shared-line segment: its seal would
				// force the partner valve closed for the whole storage
				// period and starve transports that need it.
				continue
			}
			if s.edgeBusy[e] {
				continue
			}
			if _, held := s.edgeHolder(e); held {
				continue
			}
			u, v := g.Endpoints(e)
			if pass == 0 && (resourceNode[u] || resourceNode[v]) {
				continue
			}
			d := dist[u]
			if dist[v] >= 0 && (d < 0 || dist[v] < d) {
				d = dist[v]
			}
			if d < 0 {
				continue // unreachable
			}
			if (best < 0 || d < bestD || (d == bestD && e < best)) && s.parkingKeepsConnectivity(e) {
				best, bestD = e, d
			}
		}
		if best >= 0 {
			return best, true
		}
	}
	return -1, false
}

// parkingKeepsConnectivity reports whether storing fluid on edge e (in
// addition to every segment already storing fluid) keeps the chip live:
// all devices and ports must remain mutually connected (a walled-off port
// strands any product waiting there), and every stored segment (including
// e) must keep an endpoint on that component so its fluid can be fetched.
func (s *simState) parkingKeepsConnectivity(e int) bool {
	g := s.chip.Grid.Graph()
	stored := map[int]bool{e: true}
	for i := range s.products {
		pr := &s.products[i]
		if pr.exists && pr.loc.kind == atEdge {
			stored[pr.loc.id] = true
		}
	}
	allow := func(e2 int) bool {
		if stored[e2] {
			return false
		}
		v, ok := s.chip.ValveOnEdge(e2)
		return ok && !s.stuckClosed[v]
	}
	ref := s.chip.Devices[0].Node
	dist := g.BFSFrom(ref, allow)
	for _, d := range s.chip.Devices {
		if dist[d.Node] < 0 {
			return false
		}
	}
	for _, p := range s.chip.Ports {
		if dist[p.Node] < 0 {
			return false
		}
	}
	for se := range stored {
		u, v := g.Endpoints(se)
		if dist[u] < 0 && dist[v] < 0 {
			return false
		}
	}
	return true
}
