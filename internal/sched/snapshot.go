package sched

// Warm-engine snapshot validation: the baseline's conflictFree (Section 4.1
// of the paper) rebuilt on epoch-stamped scratch arrays so a validation
// attempt allocates nothing. The demand sets it derives — valves required
// open by some moving fluid, valves required closed by the contamination
// guard or a stored-segment seal — are identical to the baseline's; only
// their representation (epoch stamps instead of fresh bool slices and maps)
// differs. The baseline's member `ends` sets were never read and are
// dropped here.

// conflictFree validates the valve snapshot if `edges` were opened now for
// a movement of `producer`, alongside all active transports and stored
// products. It returns false when a ban overrides a demand (stuck-closed
// valve required open; stuck-open valve required to seal, unless relaxed)
// or when any control line would be demanded both open and closed — the
// contamination/blocking hazard of valve sharing.
func (rs *runState) conflictFree(edges []int, producer int) bool {
	e := rs.eng
	rs.snapEpoch++
	ep := rs.snapEpoch
	rs.touched = rs.touched[:0]

	markOpen := func(v int) {
		if rs.touchedEp[v] != ep {
			rs.touchedEp[v] = ep
			rs.touched = append(rs.touched, v)
		}
		rs.reqOpenEp[v] = ep
	}
	markClosed := func(v int) {
		if rs.touchedEp[v] != ep {
			rs.touchedEp[v] = ep
			rs.touched = append(rs.touched, v)
		}
		rs.reqClosedEp[v] = ep
	}

	// One member per concurrently moving fluid: the candidate path plus
	// every active transport. Each member's own edges must open; every
	// off-path valved edge incident to a member node must stay closed (the
	// contamination guard). Member products are exempt from the stored-seal
	// pass below.
	member := func(medges []int, product int) {
		rs.memberEp++
		me := rs.memberEp
		for _, ed := range medges {
			rs.ownEp[ed] = me
			if v := e.valveOf[ed]; v >= 0 {
				markOpen(v)
			}
		}
		for _, ed := range medges {
			u, v := e.grid.Endpoints(ed)
			for _, e2 := range e.incident[u] {
				if rs.ownEp[e2] != me {
					if vv := e.valveOf[e2]; vv >= 0 {
						markClosed(vv)
					}
				}
			}
			for _, e2 := range e.incident[v] {
				if rs.ownEp[e2] != me {
					if vv := e.valveOf[e2]; vv >= 0 {
						markClosed(vv)
					}
				}
			}
		}
		rs.prodMoveEp[product] = ep
	}
	member(edges, producer)
	for i := range rs.active {
		at := &rs.active[i]
		member(at.edges, rs.tasks[at.taskIdx].producer)
	}

	// Stored products keep their segment sealed, except the ones on the move.
	for i := range rs.products {
		pr := &rs.products[i]
		if !pr.exists || pr.loc.kind != atEdge || rs.prodMoveEp[i] == ep {
			continue
		}
		if v := e.valveOf[pr.loc.id]; v >= 0 {
			markClosed(v)
		}
	}

	// Physical bans override control: a stuck-closed valve cannot open no
	// matter what its line does, and a stuck-open valve cannot seal — any
	// snapshot demanding that seal is a contamination hazard unless the
	// relaxed tier explicitly accepts it.
	for _, v := range rs.touched {
		if rs.reqOpenEp[v] == ep && e.stuckClosed[v] {
			return false
		}
		if rs.reqClosedEp[v] == ep && e.stuckOpen[v] && !rs.params.RelaxStuckOpenSeal {
			return false
		}
	}

	// Line conflicts (chip.Control.Conflicts without the allocation): a
	// control line demanded both open and closed. Forced-open valves far
	// away from every active path are harmless — a dead-end branch carries
	// no pressure-driven flow — so only the demand sets above participate.
	for _, v := range rs.touched {
		if rs.reqOpenEp[v] == ep {
			rs.lineOpenEp[rs.ctrl.LineOf(v)] = ep
		}
	}
	for _, v := range rs.touched {
		if rs.reqClosedEp[v] == ep && rs.lineOpenEp[rs.ctrl.LineOf(v)] == ep {
			return false
		}
	}
	return true
}
