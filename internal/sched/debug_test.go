package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

// TestDebugCPADeadlock dumps the simulation state at deadlock to aid
// development; it is skipped when the schedule completes.
func TestDebugCPADeadlock(t *testing.T) {
	c := chip.IVD()
	g := assay.CPA()
	s := newSimState(c, chip.IndependentControl(c), g, Params{}.withDefaults())
	_, err := s.run()
	if err == nil {
		t.Skip("no deadlock")
	}
	t.Logf("error: %v", err)
	phaseName := []string{"waitPreds", "waitDevice", "waitDelivery", "running", "done"}
	for i := range s.ops {
		oc := &s.ops[i]
		if oc.phase == phaseDone {
			continue
		}
		t.Logf("op %d (%s %s) phase=%s device=%d isPort=%v pending=%d",
			i, g.Op(i).Kind, g.Op(i).Name, phaseName[oc.phase], oc.device, oc.isPort, oc.pending)
	}
	for i := range s.products {
		pr := &s.products[i]
		if pr.exists {
			t.Logf("product %d loc={%d %d} total=%d started=%d arrived=%d holdsDev=%d holdsPort=%d moving=%v",
				i, pr.loc.kind, pr.loc.id, pr.totalConsumers, pr.started, pr.arrived, pr.holdsDevice, pr.holdsPort, pr.moving)
		}
	}
	for _, task := range s.tasks {
		if task.done || task.started {
			continue
		}
		t.Logf("pending task producer=%d consumer=%d", task.producer, task.consumer)
	}
	t.Logf("deviceBusy=%v portBusy=%v", s.deviceBusy, s.portBusy)
	t.Fail()
}
