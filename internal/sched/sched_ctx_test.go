package sched

import (
	"context"
	"errors"
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func TestRunCtxPreCancelled(t *testing.T) {
	c := chip.IVD()
	_, err := RunCtx(nil1(), c, nil, assay.IVD(), Params{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func nil1() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunProgressCtxReportsPartialProgress(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	sch, done, err := RunProgress(c, nil, g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if done != g.NumOps() || sch == nil {
		t.Fatalf("reference run: %d/%d ops", done, g.NumOps())
	}
	_, doneC, err := RunProgressCtx(nil1(), c, nil, g, Params{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if doneC >= done {
		t.Fatalf("cancelled run completed %d ops, reference %d; want a strict early stop", doneC, done)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	c := chip.IVD()
	g := assay.IVD()
	a, errA := Run(c, nil, g, Params{})
	b, errB := RunCtx(context.Background(), c, nil, g, Params{})
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if a.ExecutionTime != b.ExecutionTime {
		t.Fatalf("Run time %d, RunCtx time %d", a.ExecutionTime, b.ExecutionTime)
	}
}
