package sched

import (
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
)

// ValidateSchedule checks a schedule against the chip and assay it claims
// to implement. It verifies the invariants any physically meaningful
// schedule must satisfy:
//
//   - every operation appears exactly once, with the correct duration and
//     a resource of the right kind;
//   - precedence: no operation starts before all of its predecessors have
//     finished;
//   - device exclusivity: operations overlapping in time use different
//     devices/ports;
//   - transport exclusivity: transports overlapping in time use disjoint
//     channel edges, and every transport path consists of valved edges;
//   - the reported execution time equals the latest finish.
//
// It returns nil when all invariants hold.
func ValidateSchedule(c *chip.Chip, g *assay.Graph, sch *Schedule) error {
	if sch == nil {
		return fmt.Errorf("sched: nil schedule")
	}
	if len(sch.Ops) != g.NumOps() {
		return fmt.Errorf("sched: %d op records for %d operations", len(sch.Ops), g.NumOps())
	}
	seen := make([]bool, g.NumOps())
	start := make([]int, g.NumOps())
	finish := make([]int, g.NumOps())
	maxFinish := 0
	for _, r := range sch.Ops {
		if r.Op < 0 || r.Op >= g.NumOps() {
			return fmt.Errorf("sched: op record references unknown op %d", r.Op)
		}
		if seen[r.Op] {
			return fmt.Errorf("sched: op %d scheduled twice", r.Op)
		}
		seen[r.Op] = true
		op := g.Op(r.Op)
		if r.Finish-r.Start != op.Duration {
			return fmt.Errorf("sched: op %d ran %ds, duration is %ds", r.Op, r.Finish-r.Start, op.Duration)
		}
		if r.Start < 0 {
			return fmt.Errorf("sched: op %d starts at negative time %d", r.Op, r.Start)
		}
		if err := checkResourceKind(c, op, r); err != nil {
			return err
		}
		start[r.Op], finish[r.Op] = r.Start, r.Finish
		if r.Finish > maxFinish {
			maxFinish = r.Finish
		}
	}
	for _, op := range g.Ops() {
		for _, succ := range g.Succs(op.ID) {
			if start[succ] < finish[op.ID] {
				return fmt.Errorf("sched: op %d starts at %d before predecessor %d finishes at %d",
					succ, start[succ], op.ID, finish[op.ID])
			}
		}
	}
	for i, a := range sch.Ops {
		for _, b := range sch.Ops[i+1:] {
			if a.IsPort != b.IsPort || a.Device != b.Device {
				continue
			}
			if a.Start < b.Finish && b.Start < a.Finish {
				return fmt.Errorf("sched: ops %d and %d overlap on resource %d", a.Op, b.Op, a.Device)
			}
		}
	}
	for i, a := range sch.Transports {
		for _, e := range a.Edges {
			if _, ok := c.ValveOnEdge(e); !ok {
				return fmt.Errorf("sched: transport %d uses unvalved edge %d", i, e)
			}
		}
		for _, b := range sch.Transports[i+1:] {
			if a.Start >= b.Finish || b.Start >= a.Finish {
				continue
			}
			inA := make(map[int]bool, len(a.Edges))
			for _, e := range a.Edges {
				inA[e] = true
			}
			for _, e := range b.Edges {
				if inA[e] {
					return fmt.Errorf("sched: concurrent transports share edge %d", e)
				}
			}
		}
	}
	if sch.ExecutionTime != maxFinish {
		return fmt.Errorf("sched: execution time %d != latest finish %d", sch.ExecutionTime, maxFinish)
	}
	return nil
}

// ValidateScheduleAvoids is ValidateSchedule plus the test-around-fault
// invariants: no transport may route through the segment of a
// stuck-closed (banClosed) valve — it never conducts — and no storage
// move may park fluid in the segment of any banned valve (stuck-closed
// segments cannot receive fluid; stuck-open segments can never be sealed).
// The reconfiguration chain runs every candidate schedule through this
// checker before accepting a tier's result.
func ValidateScheduleAvoids(c *chip.Chip, g *assay.Graph, sch *Schedule, banClosed, banOpen []int) error {
	if err := ValidateSchedule(c, g, sch); err != nil {
		return err
	}
	closedEdge := make(map[int]bool, len(banClosed))
	parkEdge := make(map[int]bool, len(banClosed)+len(banOpen))
	for _, v := range banClosed {
		if v >= 0 && v < c.NumValves() {
			closedEdge[c.Valve(v).Edge] = true
			parkEdge[c.Valve(v).Edge] = true
		}
	}
	for _, v := range banOpen {
		if v >= 0 && v < c.NumValves() {
			parkEdge[c.Valve(v).Edge] = true
		}
	}
	for i, tr := range sch.Transports {
		for _, e := range tr.Edges {
			if closedEdge[e] {
				return fmt.Errorf("sched: transport %d routes through stuck-closed segment %d", i, e)
			}
		}
		if tr.ConsumerOp < 0 && len(tr.Edges) > 0 {
			// Storage move: the fluid comes to rest in the last path edge
			// (unless it parked at a port node, in which case the final
			// segment was only traversed — still forbidden for
			// stuck-closed edges by the loop above, harmless otherwise).
			if last := tr.Edges[len(tr.Edges)-1]; parkEdge[last] {
				return fmt.Errorf("sched: storage move %d parks fluid in banned segment %d", i, last)
			}
		}
	}
	return nil
}

func checkResourceKind(c *chip.Chip, op assay.Op, r OpRecord) error {
	switch op.Kind {
	case assay.Dispense:
		if !r.IsPort {
			return fmt.Errorf("sched: dispense op %d ran on a device", op.ID)
		}
		if r.Device < 0 || r.Device >= len(c.Ports) {
			return fmt.Errorf("sched: dispense op %d on unknown port %d", op.ID, r.Device)
		}
	case assay.Mix:
		if r.IsPort {
			return fmt.Errorf("sched: mix op %d ran on a port", op.ID)
		}
		if r.Device < 0 || r.Device >= len(c.Devices) || c.Devices[r.Device].Kind != chip.Mixer {
			return fmt.Errorf("sched: mix op %d bound to non-mixer %d", op.ID, r.Device)
		}
	case assay.Detect:
		if r.IsPort {
			return fmt.Errorf("sched: detect op %d ran on a port", op.ID)
		}
		if r.Device < 0 || r.Device >= len(c.Devices) || c.Devices[r.Device].Kind != chip.Detector {
			return fmt.Errorf("sched: detect op %d bound to non-detector %d", op.ID, r.Device)
		}
	}
	return nil
}
