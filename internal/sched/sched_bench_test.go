package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

func benchSchedule(b *testing.B, mkChip func() *chip.Chip, mkAssay func() *assay.Graph) {
	for i := 0; i < b.N; i++ {
		c := mkChip()
		g := mkAssay()
		sch, err := Run(c, nil, g, Params{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(sch.ExecutionTime), "exec-s")
		}
	}
}

func BenchmarkScheduleIVDonIVD(b *testing.B)  { benchSchedule(b, chip.IVD, assay.IVD) }
func BenchmarkSchedulePIDonRA30(b *testing.B) { benchSchedule(b, chip.RA30, assay.PID) }
func BenchmarkScheduleCPAonMRNA(b *testing.B) { benchSchedule(b, chip.MRNA, assay.CPA) }
