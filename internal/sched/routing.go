package sched

// Warm-engine routing: the per-transport path search of the baseline's
// findPath/routeAndValidate, with two differences that change cost but not
// results. First, Dijkstra runs on pooled scratch (graphalg.PathScratch)
// instead of allocating per call. Second, a transport requested while the
// chip is pristine — no edge busy, no product stored in a segment, no
// reroute penalty — sees a routing weight identical to the engine's
// precomputed baseWeight, so its path is a pure function of the (from, to)
// pair and is served from the engine's candidate cache.

// tryStartTransport attempts to launch the fluid movement for the pending
// task at index ti. It returns true when the transport started.
func (rs *runState) tryStartTransport(ti int) bool {
	task := &rs.tasks[ti]
	pr := &rs.products[task.producer]
	if !pr.exists || pr.moving {
		return false
	}
	if task.consumer < 0 {
		return rs.tryStartStorageMove(ti)
	}
	oc := &rs.ops[task.consumer]
	toNode := rs.eng.chip.Devices[oc.device].Node
	if oc.isPort {
		toNode = rs.eng.chip.Ports[oc.device].Node
	}
	edges, ok := rs.routeAndValidate(pr.loc, location{kind: atNode, id: toNode}, task.producer)
	if !ok {
		return false
	}
	rs.launch(ti, edges, location{kind: atNode, id: toNode})
	return true
}

// launch commits a transport: occupies edges, updates product bookkeeping,
// and records it. With the wash model enabled, segments last wetted by a
// different fluid are flushed first, extending the transport. The edge list
// is copied: the argument may alias routing scratch or a shared candidate-
// cache entry, while the copy escapes into the returned Schedule.
func (rs *runState) launch(ti int, edges []int, to location) {
	task := &rs.tasks[ti]
	pr := &rs.products[task.producer]
	ed := append([]int(nil), edges...)
	dur := len(ed) * rs.params.TransportTimePerEdge
	washed := 0
	if rs.params.WashTimePerEdge > 0 {
		for _, e := range ed {
			if rs.lastFluid[e] >= 0 && rs.lastFluid[e] != task.producer {
				washed++
			}
		}
		dur += washed * rs.params.WashTimePerEdge
	}
	for _, e := range ed {
		rs.lastFluid[e] = task.producer
	}
	if dur == 0 {
		dur = 1 // same-node move still takes a beat
	}
	for _, e := range ed {
		rs.edgeBusy[e] = true
	}
	rs.busyCount += len(ed)
	task.started = true
	if task.consumer >= 0 {
		pr.started++
		if pr.started >= pr.totalConsumers {
			rs.releaseHold(task.producer)
		}
	} else {
		pr.moving = true
		rs.releaseHold(task.producer)
	}
	rs.active = append(rs.active, engActive{
		taskIdx: ti,
		edges:   ed,
		finish:  rs.now + dur,
		to:      to,
	})
	rs.recTransports = append(rs.recTransports, TransportRecord{
		ProducerOp:  task.producer,
		ConsumerOp:  task.consumer,
		Edges:       ed,
		Start:       rs.now,
		Finish:      rs.now + dur,
		WashedEdges: washed,
	})
}

// routeAndValidate finds a path that is free right now and whose valve
// demands are snapshot-compatible with every in-flight transport and stored
// product under the control assignment. It retries with penalized edges
// when the only obstacle is a control conflict; each retry is a fallback
// reroute on the engine metrics.
func (rs *runState) routeAndValidate(from, to location, producer int) ([]int, bool) {
	rs.clearPenalties()
	for attempt := 0; attempt < rs.params.MaxReroutes; attempt++ {
		if attempt > 0 {
			rs.eng.metrics.noteFallbackReroute()
		}
		edges, ok := rs.findPath(from, to, producer, attempt > 0)
		if !ok {
			return nil, false
		}
		if rs.conflictFree(edges, producer) {
			return edges, true
		}
		for _, e := range edges {
			if rs.penalty[e] == 0 {
				rs.penTouch = append(rs.penTouch, e)
			}
			rs.penalty[e] += 10
		}
	}
	return nil, false
}

// clearPenalties resets the reroute penalties touched by the previous
// routeAndValidate call (the baseline allocates a fresh map per call).
func (rs *runState) clearPenalties() {
	for _, e := range rs.penTouch {
		rs.penalty[e] = 0
	}
	rs.penTouch = rs.penTouch[:0]
}

// findPath computes a minimum-cost path of channel edges between two
// locations. In a pristine snapshot (nothing busy, nothing stored, no
// penalties) the dynamic weight function collapses to the engine's
// baseWeight, so the result depends only on (from, to) and is served from —
// or inserted into — the engine's candidate cache. Otherwise it runs the
// dynamic Dijkstra the baseline always runs. The returned slice aliases run
// scratch or cache memory; callers must copy before retaining it.
func (rs *runState) findPath(from, to location, producer int, penalized bool) ([]int, bool) {
	e := rs.eng
	if !penalized && rs.busyCount == 0 && rs.heldCount == 0 {
		key := candKey(from, to)
		if c, hit := e.lookupCandidate(key); hit {
			e.metrics.noteCandidateHit()
			return c.edges, c.ok
		}
		edges, ok := rs.searchPath(from, to, func(ed int) float64 { return e.baseWeight[ed] })
		c := candidate{ok: ok}
		if ok {
			c.edges = append([]int(nil), edges...)
		}
		e.storeCandidate(key, c)
		return edges, ok
	}
	weight := func(ed int) float64 {
		v := e.valveOf[ed]
		if v < 0 || e.stuckClosed[v] {
			return -1 // unvalved or stuck-closed segment never conducts
		}
		if rs.edgeBusy[ed] {
			return -1
		}
		if h := rs.holderOf[ed]; h >= 0 && h != producer {
			return -1
		}
		return 1 + rs.penalty[ed]
	}
	return rs.searchPath(from, to, weight)
}

// searchPath is the cross-product shortest-path search shared by the
// pristine and dynamic tiers, including the stored-segment entry/exit
// adjustments. Node enumeration order and the strict `cost < best`
// comparison replicate the baseline exactly.
func (rs *runState) searchPath(from, to location, weight func(edge int) float64) ([]int, bool) {
	e := rs.eng
	var fromBuf, toBuf [2]int
	fromNodes := rs.locationNodes(from, &fromBuf)
	toNodes := rs.locationNodes(to, &toBuf)
	best := rs.pathBest[:0]
	bestCost := -1.0
	for _, fn := range fromNodes {
		for _, tn := range toNodes {
			edges, cost, ok := e.grid.WeightedShortestPathScratch(&rs.path, fn, tn, weight)
			if !ok {
				continue
			}
			if bestCost < 0 || cost < bestCost {
				best = append(best[:0], edges...)
				bestCost = cost
			}
		}
	}
	rs.pathBest = best
	if bestCost < 0 {
		return nil, false
	}
	// Moving out of (or into) a stored segment traverses that segment too.
	out := rs.pathOut[:0]
	if from.kind == atEdge && (len(best) == 0 || best[0] != from.id) {
		out = append(out, from.id)
	}
	out = append(out, best...)
	if to.kind == atEdge && (len(out) == 0 || out[len(out)-1] != to.id) {
		out = append(out, to.id)
	}
	rs.pathOut = out
	return out, true
}

// locationNodes writes the grid nodes a location touches into buf.
func (rs *runState) locationNodes(l location, buf *[2]int) []int {
	if l.kind == atNode {
		buf[0] = l.id
		return buf[:1]
	}
	u, v := rs.eng.grid.Endpoints(l.id)
	buf[0], buf[1] = u, v
	return buf[:2]
}
