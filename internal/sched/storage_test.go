package sched

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
)

// engineRunState builds a warm engine for (c, g) and checks out a zeroed
// runState bound to the control assignment — the harness for poking the
// storage policy directly.
func engineRunState(t *testing.T, c *chip.Chip, g *assay.Graph, p Params) (*Engine, *runState) {
	t.Helper()
	eng, err := NewEngine(c, g, p)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rs := newRunState(eng)
	rs.reset(chip.IndependentControl(c), p.withDefaults(), nil)
	return eng, rs
}

// TestStorageMoveRecords: CPA's 24 dispenses on the 2-device RA30 chip
// force products into channel storage. Every ConsumerOp == -1 record must
// be a well-formed evacuation: a real producer, a non-empty route, and a
// destination segment that is valved (fluid can be sealed in) — and the
// engine's records must match the baseline's exactly.
func TestStorageMoveRecords(t *testing.T) {
	c, g := chip.RA30(), assay.CPA()
	sch := mustRun(t, c, nil, g)
	base, err := RunBaseline(c, nil, g, Params{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	moves := 0
	for i, tr := range sch.Transports {
		bt := base.Transports[i]
		if tr.ProducerOp != bt.ProducerOp || tr.ConsumerOp != bt.ConsumerOp {
			t.Fatalf("transport %d differs from baseline: %+v vs %+v", i, tr, bt)
		}
		if tr.ConsumerOp >= 0 {
			continue
		}
		moves++
		if tr.ProducerOp < 0 || tr.ProducerOp >= g.NumOps() {
			t.Fatalf("storage move %d: bad producer %d", i, tr.ProducerOp)
		}
		if len(tr.Edges) == 0 {
			t.Fatalf("storage move %d: empty route", i)
		}
		if tr.Finish <= tr.Start {
			t.Fatalf("storage move %d: non-positive duration", i)
		}
		last := tr.Edges[len(tr.Edges)-1]
		if _, ok := c.ValveOnEdge(last); !ok {
			t.Fatalf("storage move %d: destination edge %d unvalved", i, last)
		}
	}
	if moves == 0 {
		t.Fatalf("CPA on RA30 scheduled without storage moves; the policy is untested")
	}
}

// TestEmergencyStorageEvictionOrder: the wedge-breaking pass evacuates
// device/port holders before re-parking stored products, lowest op ID
// first. Product 5 holds a device and product 2 sits in a segment; the
// holder must move even though the stored product has the lower ID.
func TestEmergencyStorageEvictionOrder(t *testing.T) {
	c, g := chip.RA30(), assay.PID()
	_, rs := engineRunState(t, c, g, Params{})

	// Product 5: parked on device 0, no aliquots departed.
	rs.products[5] = productCtl{
		exists: true, totalConsumers: 1,
		loc:         location{kind: atNode, id: c.Devices[0].Node},
		holdsDevice: 0, holdsPort: -1,
	}
	rs.deviceBusy[0] = true
	// Product 2: already in channel storage.
	seg := -1
	for e := 0; e < c.Grid.NumEdges(); e++ {
		if _, ok := c.ValveOnEdge(e); ok && !rs.eng.doorstep[e] {
			seg = e
			break
		}
	}
	if seg < 0 {
		t.Fatal("no free non-doorstep segment on RA30")
	}
	rs.products[2] = productCtl{
		exists: true, totalConsumers: 1,
		loc:         location{kind: atEdge, id: seg},
		holdsDevice: -1, holdsPort: -1,
	}
	rs.holderOf[seg] = 2
	rs.heldCount++

	if !rs.emergencyStorage() {
		t.Fatal("emergencyStorage found no move")
	}
	if len(rs.recTransports) != 1 {
		t.Fatalf("recorded %d transports, want 1", len(rs.recTransports))
	}
	tr := rs.recTransports[0]
	if tr.ConsumerOp != -1 {
		t.Fatalf("ConsumerOp = %d, want -1", tr.ConsumerOp)
	}
	if tr.ProducerOp != 5 {
		t.Fatalf("evacuated product %d, want the device holder 5", tr.ProducerOp)
	}
	if !rs.products[5].moving || rs.products[5].holdsDevice != -1 || rs.deviceBusy[0] {
		t.Fatalf("holder not released: %+v deviceBusy=%v", rs.products[5], rs.deviceBusy[0])
	}
}

// TestEmergencyStorageSkipsDeparted: a product whose aliquots already
// started departing must not be evacuated (its task is marked done), and a
// failed candidate must not leave a phantom task behind.
func TestEmergencyStorageSkipsDeparted(t *testing.T) {
	c, g := chip.RA30(), assay.PID()
	_, rs := engineRunState(t, c, g, Params{})
	rs.products[3] = productCtl{
		exists: true, totalConsumers: 2, started: 1,
		loc:         location{kind: atNode, id: c.Devices[0].Node},
		holdsDevice: 0, holdsPort: -1,
	}
	if rs.emergencyStorage() {
		t.Fatal("evacuated a product already feeding consumers")
	}
	if len(rs.tasks) != 0 {
		t.Fatalf("%d phantom tasks left behind", len(rs.tasks))
	}
}

// TestPickParkingEdgeMatchesBaseline mirrors randomized occupancy states
// into both the engine runState and the baseline simState and demands the
// identical parking decision from each — the policy pair the warm path must
// never diverge from.
func TestPickParkingEdgeMatchesBaseline(t *testing.T) {
	c, g := chip.MRNA(), assay.CPA()
	p := Params{}.withDefaults()
	_, rs := engineRunState(t, c, g, Params{})
	s := newSimState(c, chip.IndependentControl(c), g, p)

	// Occupancy pattern: a couple of busy edges and one stored product.
	busy := []int{3, 17, 31}
	for _, e := range busy {
		if e < c.Grid.NumEdges() {
			rs.edgeBusy[e] = true
			s.edgeBusy[e] = true
		}
	}
	seg := -1
	for e := 40; e < c.Grid.NumEdges(); e++ {
		if _, ok := c.ValveOnEdge(e); ok {
			seg = e
			break
		}
	}
	if seg < 0 {
		t.Fatal("no valved segment found")
	}
	pc := productCtl{exists: true, totalConsumers: 1, loc: location{kind: atEdge, id: seg}, holdsDevice: -1, holdsPort: -1}
	rs.products[1], s.products[1] = pc, pc
	rs.holderOf[seg] = 1
	rs.heldCount++

	for _, d := range c.Devices {
		wantEdge, wantOK := s.pickParkingEdge(d.Node, 0)
		gotEdge, gotOK := rs.pickParkingEdge(d.Node)
		if wantOK != gotOK || (wantOK && wantEdge != gotEdge) {
			t.Fatalf("from node %d: engine picked (%d,%v), baseline (%d,%v)",
				d.Node, gotEdge, gotOK, wantEdge, wantOK)
		}
		if gotOK && rs.eng.doorstep[gotEdge] {
			t.Fatalf("from node %d: parked on doorstep edge %d with free segments available", d.Node, gotEdge)
		}
	}
}

// TestStorageUnderBans: with a stuck-closed and a stuck-open valve the
// parking policy must keep fluid out of the guarded segments; the resulting
// schedules (engine and baseline) must validate against the ban set and
// never route through the banned edges.
func TestStorageUnderBans(t *testing.T) {
	c, g := chip.RA30(), assay.CPA()
	p := Params{BanClosed: []int{2}, BanOpen: []int{7}}
	closedEdge := c.Valve(2).Edge // never conducts: no transport may cross it
	openEdge := c.Valve(7).Edge   // conducts but cannot seal: no fluid may park there

	eng, err := NewEngine(c, g, p)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	warm, err := eng.Run(nil, p)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	base, err := RunBaseline(c, nil, g, p)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	for name, sch := range map[string]*Schedule{"engine": warm, "baseline": base} {
		if err := ValidateScheduleAvoids(c, g, sch, p.BanClosed, p.BanOpen); err != nil {
			t.Fatalf("%s schedule violates ban set: %v", name, err)
		}
		moves := 0
		for i, tr := range sch.Transports {
			for _, e := range tr.Edges {
				if e == closedEdge {
					t.Fatalf("%s transport %d routed through stuck-closed edge %d", name, i, e)
				}
			}
			if tr.ConsumerOp < 0 {
				moves++
				if last := tr.Edges[len(tr.Edges)-1]; last == closedEdge || last == openEdge {
					t.Fatalf("%s storage move %d parked on banned edge %d", name, i, last)
				}
			}
		}
		if moves == 0 {
			t.Fatalf("%s: ban scenario produced no storage moves; the guarded policy is untested", name)
		}
	}
	if warm.ExecutionTime != base.ExecutionTime {
		t.Fatalf("makespans diverge under bans: engine %d, baseline %d", warm.ExecutionTime, base.ExecutionTime)
	}
}
