// Package grid implements the virtual connection grid of the DAC'18 DFT
// paper (Fig. 5): a W×H lattice of nodes connected by unit edges. A chip is
// mapped onto the grid by assigning devices to nodes and channels to edges;
// the unoccupied nodes and edges are the candidate locations for DFT
// channels and valves.
package grid

import (
	"fmt"

	"repro/internal/graphalg"
)

// Coord is a lattice coordinate. X grows rightwards, Y downwards.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the L1 distance between two coordinates.
func Manhattan(a, b Coord) int { return abs(a.X-b.X) + abs(a.Y-b.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Grid is a W×H connection grid. Node IDs are dense (y*W + x); edge IDs are
// dense and shared with the embedded graphalg.Graph, which exposes the full
// lattice (all edges live).
type Grid struct {
	W, H  int
	graph *graphalg.Graph
	// edgeAt[(a,b)] for a < b caches edge lookup.
	edgeAt map[[2]int]int
}

// New constructs a W×H grid with all lattice edges present.
func New(w, h int) *Grid {
	if w < 2 || h < 2 {
		panic("grid: dimensions must be at least 2x2")
	}
	g := &Grid{W: w, H: h, graph: graphalg.NewGraph(w * h), edgeAt: make(map[[2]int]int)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := g.NodeAt(Coord{x, y})
			if x+1 < w {
				v := g.NodeAt(Coord{x + 1, y})
				g.edgeAt[key(u, v)] = g.graph.AddEdge(u, v)
			}
			if y+1 < h {
				v := g.NodeAt(Coord{x, y + 1})
				g.edgeAt[key(u, v)] = g.graph.AddEdge(u, v)
			}
		}
	}
	return g
}

func key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Graph exposes the underlying lattice graph. Callers must not delete
// edges; use allow-filters instead.
func (g *Grid) Graph() *graphalg.Graph { return g.graph }

// NumNodes returns W*H.
func (g *Grid) NumNodes() int { return g.W * g.H }

// NumEdges returns the number of lattice edges.
func (g *Grid) NumEdges() int { return g.graph.NumEdges() }

// NodeAt maps a coordinate to its node ID.
func (g *Grid) NodeAt(c Coord) int {
	if !g.InBounds(c) {
		panic(fmt.Sprintf("grid: coordinate %v outside %dx%d", c, g.W, g.H))
	}
	return c.Y*g.W + c.X
}

// CoordOf maps a node ID back to its coordinate.
func (g *Grid) CoordOf(node int) Coord {
	if node < 0 || node >= g.NumNodes() {
		panic(fmt.Sprintf("grid: node %d outside %dx%d", node, g.W, g.H))
	}
	return Coord{X: node % g.W, Y: node / g.W}
}

// InBounds reports whether c lies on the grid.
func (g *Grid) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H
}

// OnBoundary reports whether c lies on the grid boundary (where external
// ports may be placed).
func (g *Grid) OnBoundary(c Coord) bool {
	return c.X == 0 || c.Y == 0 || c.X == g.W-1 || c.Y == g.H-1
}

// EdgeBetween returns the edge ID connecting two adjacent nodes.
func (g *Grid) EdgeBetween(u, v int) (int, bool) {
	e, ok := g.edgeAt[key(u, v)]
	return e, ok
}

// EdgeBetweenCoords returns the edge ID connecting two adjacent coordinates.
func (g *Grid) EdgeBetweenCoords(a, b Coord) (int, bool) {
	return g.EdgeBetween(g.NodeAt(a), g.NodeAt(b))
}

// EdgeEndpoints returns the coordinates of edge id's endpoints.
func (g *Grid) EdgeEndpoints(id int) (Coord, Coord) {
	u, v := g.graph.Endpoints(id)
	return g.CoordOf(u), g.CoordOf(v)
}

// IncidentEdges returns the lattice edges incident to a node.
func (g *Grid) IncidentEdges(node int) []int {
	return g.graph.IncidentEdges(node)
}

// PathEdges converts a coordinate walk into edge IDs, validating adjacency.
func (g *Grid) PathEdges(walk []Coord) ([]int, error) {
	if len(walk) < 2 {
		return nil, fmt.Errorf("grid: walk needs at least 2 coordinates, got %d", len(walk))
	}
	edges := make([]int, 0, len(walk)-1)
	for i := 1; i < len(walk); i++ {
		if Manhattan(walk[i-1], walk[i]) != 1 {
			return nil, fmt.Errorf("grid: walk step %v -> %v is not a unit move", walk[i-1], walk[i])
		}
		e, ok := g.EdgeBetweenCoords(walk[i-1], walk[i])
		if !ok {
			return nil, fmt.Errorf("grid: no edge between %v and %v", walk[i-1], walk[i])
		}
		edges = append(edges, e)
	}
	return edges, nil
}
